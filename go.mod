module github.com/opera-net/opera

go 1.24
