// Package opera is a from-scratch Go implementation of Opera, the
// datacenter network architecture of Mellette et al., "Expanding across
// time to deliver bandwidth efficiency and low latency" (NSDI 2020),
// together with every substrate its evaluation depends on: an
// htsim-style packet-level simulator, the NDP and RotorLB transports, the
// static expander / folded-Clos / RotorNet baselines, the cost
// normalization model, and the failure and spectral analyses.
//
// The central abstraction is the Cluster: a simulated datacenter of a
// chosen architecture, to which workloads are submitted as flow lists.
// Clusters are assembled with functional options:
//
//	cl, err := opera.New(opera.KindOpera,
//		opera.WithRacks(16),
//		opera.WithHostsPerRack(4),
//		opera.WithUplinks(4),
//		opera.WithSeed(1),
//	)
//	if err != nil { ... }
//	cl.AddFlows(workload.Shuffle(cl.NumHosts(), 100_000, 0, 1))
//	cl.RunUntilDone(eventsim.Time(5 * eventsim.Millisecond))
//	fct := cl.Metrics().FCTSample(nil)
//
// Architectures are pluggable: each fabric registers a constructor in the
// internal/sim builder registry under its Kind's name, and the Cluster
// attaches transports by capability — NDP wherever the fabric has an
// always-on packet path, RotorLB wherever it exposes slice-driven circuits
// (sim.CircuitNetwork). Flows smaller than BulkThreshold (default 15 MB,
// §4.1) are latency-sensitive and ride NDP over the current expander
// slice; larger flows wait at hosts and ride RotorLB over direct circuits.
// Baselines use the transports the paper gives them: NDP everywhere for
// the static networks, RotorLB (plus NDP over the hybrid packet fabric)
// for RotorNet.
//
// For parameter sweeps, the scenario package fans whole clusters out
// across goroutines: build a []scenario.Scenario and hand it to
// scenario.RunScenarios.
package opera

import (
	"fmt"
	"sort"
	"sync"

	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/ndp"
	"github.com/opera-net/opera/internal/rotorlb"
	"github.com/opera-net/opera/internal/sim"
	"github.com/opera-net/opera/internal/workload"
)

// Kind selects a network architecture.
type Kind int

// Supported architectures (§5's comparison set).
const (
	// KindOpera is the paper's contribution: rotor circuit switches with
	// staggered reconfiguration forming time-varying expanders.
	KindOpera Kind = iota
	// KindExpander is the cost-equivalent static expander (u = 7 flavor).
	KindExpander
	// KindFoldedClos is the 3:1-oversubscribed three-tier folded Clos.
	KindFoldedClos
	// KindRotorNet is non-hybrid RotorNet: all uplinks on synchronized
	// rotor switches, no packet fabric (bulk-only connectivity).
	KindRotorNet
	// KindRotorNetHybrid diverts one uplink to an always-on packet fabric
	// for low-latency traffic (+33% cost in the paper's accounting).
	KindRotorNetHybrid
)

// kindNames maps Kinds to their registered architecture names. Built-in
// fabrics are listed here; additional ones join through RegisterKind.
// kindMu guards it: clusters may be built from many goroutines (the
// scenario runner) while a fabric registers.
var (
	kindMu    sync.RWMutex
	kindNames = map[Kind]string{
		KindOpera:          "opera",
		KindExpander:       "expander",
		KindFoldedClos:     "foldedclos",
		KindRotorNet:       "rotornet",
		KindRotorNetHybrid: "rotornet-hybrid",
	}
)

// RegisterKind binds a Kind value to an architecture name previously
// registered with the internal/sim builder registry, making it buildable
// through New and NewCluster. Because that registry (and the sim.Network
// contract a fabric implements) lives under internal/, new fabrics are
// added from within this module — a fork or an in-tree package — rather
// than from external modules. Pick Kind values well above the built-ins
// (e.g. iota from 100) to stay clear of future additions. RegisterKind
// panics if either the Kind or the name is already bound.
func RegisterKind(k Kind, name string) {
	kindMu.Lock()
	defer kindMu.Unlock()
	if existing, ok := kindNames[k]; ok {
		panic(fmt.Sprintf("opera: Kind %d already registered as %q", int(k), existing))
	}
	for kk, n := range kindNames {
		if n == name {
			panic(fmt.Sprintf("opera: name %q already registered as Kind %d", name, int(kk)))
		}
	}
	kindNames[k] = name
}

// kindName resolves a Kind to its architecture name.
func kindName(k Kind) (string, bool) {
	kindMu.RLock()
	defer kindMu.RUnlock()
	name, ok := kindNames[k]
	return name, ok
}

func (k Kind) String() string {
	if name, ok := kindName(k); ok {
		return name
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ParseKind resolves an architecture name ("opera", "expander",
// "foldedclos", "rotornet", "rotornet-hybrid", or any name added through
// RegisterKind) to its Kind.
func ParseKind(name string) (Kind, error) {
	kindMu.RLock()
	defer kindMu.RUnlock()
	known := make([]string, 0, len(kindNames))
	for k, n := range kindNames {
		if n == name {
			return k, nil
		}
		known = append(known, n)
	}
	sort.Strings(known)
	return 0, fmt.Errorf("opera: unknown network %q (have %v)", name, known)
}

// DefaultBulkThreshold is the flow-size boundary between latency-sensitive
// and bulk service (§4.1: flows ≥ 15 MB can amortize waiting for direct
// circuits).
const DefaultBulkThreshold = 15_000_000

// ClusterConfig assembles a simulated datacenter. New code should prefer
// New with functional options; NewCluster remains as a thin shim over the
// same builder.
type ClusterConfig struct {
	Kind Kind

	// Racks, HostsPerRack and Uplinks size Opera/RotorNet/expander
	// networks. For KindExpander, Uplinks is the fabric degree u and
	// HostsPerRack is d. For KindFoldedClos, ClosK and ClosF are used
	// instead.
	Racks        int
	HostsPerRack int
	Uplinks      int

	// ClosK and ClosF size the folded Clos (radix, oversubscription).
	ClosK, ClosF int

	// BulkThreshold classifies flows; zero means DefaultBulkThreshold.
	// Flows at or above it are bulk (§4.1).
	BulkThreshold int64

	// AppTaggedBulk forces every flow to bulk service regardless of size
	// (§5.2's application-tagged shuffle).
	AppTaggedBulk bool

	// Retention selects how Metrics treats completed flows: the zero value
	// (RetainAll) keeps every flow for exact statistics; RetainSketch
	// streams completions into quantile sketches and releases all per-flow
	// state, keeping unbounded soaks flat-memory. See WithRetention.
	Retention RetentionPolicy

	// Sim, NDP and RotorLB override protocol parameters when non-nil.
	Sim     *sim.Config
	NDP     *ndp.Params
	RotorLB *rotorlb.Params

	// MaxSliceDiameter bounds Opera slice diameters at build time (0 = no
	// bound; 5 reproduces the paper's ε sizing).
	MaxSliceDiameter int

	Seed int64
}

// Cluster is a simulated datacenter network plus attached transports: one
// sim.Network and a service-class → Transport dispatch table.
type Cluster struct {
	cfg      ClusterConfig
	eng      *eventsim.Engine
	net      sim.Network
	metrics  *sim.Metrics
	hosts    []*sim.Host
	registry map[int64]*sim.Flow
	nextID   int64

	// transports dispatches flow admission by service class.
	transports map[sim.Class]sim.Transport
	lb         *rotorlb.LB // nil unless the fabric has circuits

	// pumps counts sources added with AddSource that are not yet
	// exhausted; RunUntilDone keeps running while any remain.
	pumps int

	hostsPerRack int
}

// New builds and starts a cluster of the given architecture. Options apply
// over defaults sized like the examples' small testbed: 16 racks × 4
// hosts, 4 uplinks (folded Clos: k=8, F=3), seed 1.
func New(kind Kind, opts ...Option) (*Cluster, error) {
	cfg := ClusterConfig{
		Kind:         kind,
		Racks:        16,
		HostsPerRack: 4,
		Uplinks:      4,
		ClosK:        8,
		ClosF:        3,
		Seed:         1,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	return build(cfg)
}

// NewCluster builds and starts a cluster from a fully specified config —
// the legacy construction path, kept as a shim over the same builder New
// uses.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return build(cfg) }

// build assembles the cluster: the architecture comes out of the builder
// registry, and transports attach by capability rather than by Kind.
func build(cfg ClusterConfig) (*Cluster, error) {
	if cfg.BulkThreshold == 0 {
		cfg.BulkThreshold = DefaultBulkThreshold
	}
	simCfg := sim.DefaultConfig()
	if cfg.Sim != nil {
		simCfg = *cfg.Sim
	}
	ndpParams := ndp.DefaultParams()
	if cfg.NDP != nil {
		ndpParams = *cfg.NDP
	}
	lbParams := rotorlb.DefaultParams()
	if cfg.RotorLB != nil {
		lbParams = *cfg.RotorLB
	}

	name, ok := kindName(cfg.Kind)
	if !ok {
		return nil, fmt.Errorf("opera: unknown network kind %v", cfg.Kind)
	}
	if err := cfg.Retention.Validate(); err != nil {
		return nil, fmt.Errorf("opera: retention: %w", err)
	}

	c := &Cluster{
		cfg:        cfg,
		eng:        eventsim.New(),
		registry:   make(map[int64]*sim.Flow),
		transports: make(map[sim.Class]sim.Transport),
	}
	net, err := sim.Build(name, sim.BuildParams{
		Engine:           c.eng,
		Sim:              simCfg,
		Racks:            cfg.Racks,
		HostsPerRack:     cfg.HostsPerRack,
		Uplinks:          cfg.Uplinks,
		ClosK:            cfg.ClosK,
		ClosF:            cfg.ClosF,
		MaxSliceDiameter: cfg.MaxSliceDiameter,
		Seed:             cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	c.net = net
	c.metrics = net.Metrics()
	c.hosts = net.Hosts()
	c.hostsPerRack = net.HostsPerRack()

	// Retention is installed before any transport attaches or flow
	// registers. Under streaming retention the cluster also stops holding
	// completed flows: the registry entry is dropped the moment Metrics
	// absorbs the completion, so a million-flow soak holds only its active
	// flows (the transports release their own per-flow state the same way).
	c.metrics.SetRetention(cfg.Retention)
	if cfg.Retention.Streaming() {
		c.metrics.ReleaseHook(func(f *sim.Flow) { delete(c.registry, f.ID) })
	}

	// Bulk rides RotorLB wherever the fabric exposes circuits. RotorLB must
	// attach before NDP: NDP chains packets it does not own back to the
	// handler installed before it.
	if cn, ok := net.(sim.CircuitNetwork); ok {
		c.lb = rotorlb.Attach(cn, lbParams, c.registry)
		c.transports[sim.ClassBulk] = c.lb
	}
	// Low-latency traffic rides NDP wherever an always-on packet path
	// exists; on the static fabrics NDP carries bulk too (Class then only
	// drives priority queueing, §5's "ideal priority queuing").
	if net.PacketCapable() {
		fab := ndp.AttachFabric(c.hosts, c.metrics, ndpParams, c.registry)
		c.transports[sim.ClassLowLatency] = fab
		if c.transports[sim.ClassBulk] == nil {
			c.transports[sim.ClassBulk] = fab
		}
	}
	// Circuit-only fabrics (non-hybrid RotorNet) have no packet path:
	// everything is reclassified bulk and waits for circuits.
	if c.transports[sim.ClassLowLatency] == nil {
		if c.lb == nil {
			return nil, fmt.Errorf("opera: network %q offers neither packet nor circuit transport", name)
		}
		c.transports[sim.ClassLowLatency] = forceBulk{c.lb}
	}
	net.Start()
	return c, nil
}

// forceBulk reclassifies every flow as bulk before admission — the service
// model of circuit-only fabrics.
type forceBulk struct{ t sim.Transport }

func (fb forceBulk) StartFlow(f *sim.Flow) {
	f.Class = sim.ClassBulk
	fb.t.StartFlow(f)
}

// Engine exposes the simulation engine (for custom event scheduling).
func (c *Cluster) Engine() *eventsim.Engine { return c.eng }

// Metrics exposes flow and throughput accounting.
func (c *Cluster) Metrics() *sim.Metrics { return c.metrics }

// Network exposes the underlying fabric.
func (c *Cluster) Network() sim.Network { return c.net }

// Transport returns the transport admitting flows of the given class.
func (c *Cluster) Transport(class sim.Class) sim.Transport { return c.transports[class] }

// NumHosts returns the host count.
func (c *Cluster) NumHosts() int { return len(c.hosts) }

// HostsPerRack returns hosts per rack (ToR).
func (c *Cluster) HostsPerRack() int { return c.hostsPerRack }

// HostRack returns the rack of a host.
func (c *Cluster) HostRack(h int) int { return h / c.hostsPerRack }

// Kind returns the cluster's architecture.
func (c *Cluster) Kind() Kind { return c.cfg.Kind }

// OperaNet exposes the underlying Opera fabric (nil for other kinds), for
// failure injection and slice-level instrumentation.
func (c *Cluster) OperaNet() *sim.OperaNet {
	n, _ := c.net.(*sim.OperaNet)
	return n
}

// Faults returns the fabric's runtime failure-injection surface, or nil
// when the architecture does not model runtime faults. All four
// registered architectures do: Opera implements the §3.6.2
// detection-and-epidemic recovery of its rotor fabric, the static
// expander and the folded Clos model instant link-state reconvergence
// (see sim.ExpanderFaults and sim.ClosFaults), and RotorNet routes
// around dead circuits over its out-of-band management channel. Faults
// are structured: a sim.Target (link, ToR, or switch coordinate) plus a
// sim.Fault (hard down, lossy, degraded, or flapping), scheduled at a
// virtual time:
//
//	inj := cl.Faults()
//	inj.Inject(sim.LinkTarget(sim.FlatLink(3, 2)), sim.DownFault(), 500*eventsim.Microsecond)
//	inj.Inject(sim.LinkTarget(sim.FlatLink(4, 0)), sim.LossyFault(0.01), eventsim.Millisecond)
//	inj.Recover(sim.LinkTarget(sim.FlatLink(3, 2)), 2*eventsim.Millisecond)
//
// On circuit fabrics the injector's StrandedBytes counter is wired to
// RotorLB's stranded-VLB accounting.
func (c *Cluster) Faults() sim.FaultInjector {
	fn, ok := c.net.(sim.FaultNetwork)
	if !ok {
		return nil
	}
	inj := fn.FaultInjector()
	if c.lb != nil {
		if sp, ok := inj.(interface{ SetStrandedProbe(func() int64) }); ok {
			sp.SetStrandedProbe(c.lb.StrandedBytes)
		}
	}
	return inj
}

// NDPFabric exposes the NDP transport's endpoint fabric, or nil when the
// architecture has no always-on packet path (non-hybrid RotorNet). The
// observability plane reads its flow-state pool gauges from here.
func (c *Cluster) NDPFabric() *ndp.Fabric {
	for _, tr := range []sim.Class{sim.ClassLowLatency, sim.ClassBulk} {
		if fab, ok := c.transports[tr].(*ndp.Fabric); ok {
			return fab
		}
	}
	return nil
}

// RotorLB exposes the bulk circuit transport, or nil when the fabric has
// no circuits (static expander, folded Clos).
func (c *Cluster) RotorLB() *rotorlb.LB { return c.lb }

// BulkNACKCount reports §4.2.2 NACK retransmissions observed (circuit
// networks only).
func (c *Cluster) BulkNACKCount() uint64 {
	if c.lb == nil {
		return 0
	}
	return c.lb.NACKs
}

// classify picks the service class for a flow: bulk when the whole
// cluster or the individual spec is application-tagged (§3.4), or when
// the flow can amortize waiting for direct circuits (§4.1).
func (c *Cluster) classify(spec workload.FlowSpec) sim.Class {
	if c.cfg.AppTaggedBulk || spec.Bulk {
		return sim.ClassBulk
	}
	if spec.Bytes >= c.cfg.BulkThreshold {
		return sim.ClassBulk
	}
	return sim.ClassLowLatency
}

// addFlow registers a flow of the given class and schedules its start.
func (c *Cluster) addFlow(spec workload.FlowSpec, class sim.Class) *sim.Flow {
	if spec.Src < 0 || spec.Src >= len(c.hosts) || spec.Dst < 0 || spec.Dst >= len(c.hosts) {
		// Fail loudly at the boundary: an out-of-range host would otherwise
		// surface as an opaque index panic deep inside a transport.
		panic(fmt.Sprintf("opera: flow %d->%d outside cluster with %d hosts", spec.Src, spec.Dst, len(c.hosts)))
	}
	c.nextID++
	f := &sim.Flow{
		ID:      c.nextID,
		SrcHost: int32(spec.Src),
		DstHost: int32(spec.Dst),
		SrcRack: int32(c.HostRack(spec.Src)),
		DstRack: int32(c.HostRack(spec.Dst)),
		Size:    spec.Bytes,
		Class:   class,
		Tag:     spec.Tag,
		Start:   spec.Arrival,
	}
	c.registry[f.ID] = f
	c.metrics.AddFlow(f)
	start := func() { c.startFlow(f) }
	if spec.Arrival <= c.eng.Now() {
		start()
	} else {
		c.eng.At(spec.Arrival, start)
	}
	return f
}

// AddFlow registers and schedules a single flow; it starts at spec.Arrival
// (virtual time, which must not be in the past).
func (c *Cluster) AddFlow(spec workload.FlowSpec) *sim.Flow {
	return c.addFlow(spec, c.classify(spec))
}

// AddFlows schedules a batch of flows.
func (c *Cluster) AddFlows(specs []workload.FlowSpec) {
	for _, s := range specs {
		c.AddFlow(s)
	}
}

// AddBulkFlow schedules a flow that is application-tagged as bulk
// regardless of its size (§3.4's application-based tagging).
func (c *Cluster) AddBulkFlow(spec workload.FlowSpec) *sim.Flow {
	return c.addFlow(spec, sim.ClassBulk)
}

// AddSource drives a lazy flow source: instead of materializing the flow
// list up front (AddFlows), the cluster schedules one arrival event at a
// time — when it fires, every flow due at that instant is admitted, the
// source is pulled for the next arrival, and a single new event is
// scheduled for it. A source of a million flows therefore costs one
// pending event and one spec of lookahead, keeping workload memory
// O(active flows) for unbounded-duration runs; only Metrics' per-flow
// completion records grow with the total count.
//
// Sources yield flows in nondecreasing arrival order (see
// workload.Source); a flow arriving out of order is admitted immediately,
// like AddFlow with a past arrival. RunUntilDone treats an unexhausted
// source as pending work, so a run cannot end early during a lull between
// arrivals.
//
// A source that already holds its complete flow list
// (workload.Materialized, e.g. workload.FromSpecs) is scheduled in one
// shot instead: the list is O(n) memory either way, and one-shot
// scheduling keeps results identical to the historical AddFlows path.
func (c *Cluster) AddSource(src workload.Source) {
	if m, ok := src.(workload.Materialized); ok {
		c.AddFlows(m.Specs())
		return
	}
	spec, ok := src.Next()
	if !ok {
		return
	}
	c.pumps++
	var pump func()
	pump = func() {
		now := c.eng.Now()
		for {
			c.AddFlow(spec)
			spec, ok = src.Next()
			if !ok {
				c.pumps--
				return
			}
			if spec.Arrival > now {
				break
			}
		}
		c.eng.At(spec.Arrival, pump)
	}
	at := spec.Arrival
	if at < c.eng.Now() {
		at = c.eng.Now()
	}
	c.eng.At(at, pump)
}

// PendingSources reports how many sources added with AddSource still have
// flows to yield.
func (c *Cluster) PendingSources() int { return c.pumps }

// startFlow hands the flow to the transport serving its class.
func (c *Cluster) startFlow(f *sim.Flow) {
	c.transports[f.Class].StartFlow(f)
}

// Run advances the simulation to the given absolute virtual time.
func (c *Cluster) Run(until eventsim.Time) { c.eng.RunUntil(until) }

// RunUntilDone advances until every registered flow completes or the
// deadline passes, checking at 100 µs granularity; it returns early when
// the event queue drains, since no pending event means no flow can make
// further progress. While a source added with AddSource still has flows to
// yield, the run continues even if everything admitted so far is done — a
// lull between arrivals is not completion. It reports completion: all
// admitted flows done and every source exhausted.
func (c *Cluster) RunUntilDone(deadline eventsim.Time) bool {
	const step = 100 * eventsim.Microsecond
	for c.eng.Now() < deadline {
		c.eng.RunUntil(c.eng.Now() + step)
		done, total := c.metrics.DoneCount()
		if done == total && c.pumps == 0 {
			return true
		}
		if c.eng.Len() == 0 {
			break
		}
	}
	done, total := c.metrics.DoneCount()
	return done == total && c.pumps == 0
}

// Stop halts circuit clocks so a finished simulation can drain.
func (c *Cluster) Stop() { c.net.Stop() }
