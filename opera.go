// Package opera is a from-scratch Go implementation of Opera, the
// datacenter network architecture of Mellette et al., "Expanding across
// time to deliver bandwidth efficiency and low latency" (NSDI 2020),
// together with every substrate its evaluation depends on: an
// htsim-style packet-level simulator, the NDP and RotorLB transports, the
// static expander / folded-Clos / RotorNet baselines, the cost
// normalization model, and the failure and spectral analyses.
//
// The central abstraction is the Cluster: a simulated datacenter of a
// chosen architecture, to which workloads are submitted as flow lists. A
// minimal experiment looks like:
//
//	cl, err := opera.NewCluster(opera.ClusterConfig{
//		Kind:  opera.KindOpera,
//		Racks: 16, HostsPerRack: 4, Uplinks: 4,
//	})
//	if err != nil { ... }
//	cl.AddFlows(workload.Shuffle(cl.NumHosts(), 100_000, 0, 1))
//	cl.RunUntilDone(eventsim.Time(5 * eventsim.Millisecond))
//	fct := cl.Metrics().FCTSample(nil)
//
// Flows smaller than BulkThreshold (default 15 MB, §4.1) are treated as
// latency-sensitive and ride NDP over the current expander slice; larger
// flows wait at hosts and ride RotorLB over direct circuits. Baselines use
// the transports the paper gives them: NDP everywhere for the static
// networks, RotorLB (plus NDP over the hybrid packet fabric) for RotorNet.
package opera

import (
	"fmt"

	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/ndp"
	"github.com/opera-net/opera/internal/rotorlb"
	"github.com/opera-net/opera/internal/sim"
	"github.com/opera-net/opera/internal/topology"
	"github.com/opera-net/opera/internal/workload"
)

// Kind selects a network architecture.
type Kind int

// Supported architectures (§5's comparison set).
const (
	// KindOpera is the paper's contribution: rotor circuit switches with
	// staggered reconfiguration forming time-varying expanders.
	KindOpera Kind = iota
	// KindExpander is the cost-equivalent static expander (u = 7 flavor).
	KindExpander
	// KindFoldedClos is the 3:1-oversubscribed three-tier folded Clos.
	KindFoldedClos
	// KindRotorNet is non-hybrid RotorNet: all uplinks on synchronized
	// rotor switches, no packet fabric (bulk-only connectivity).
	KindRotorNet
	// KindRotorNetHybrid diverts one uplink to an always-on packet fabric
	// for low-latency traffic (+33% cost in the paper's accounting).
	KindRotorNetHybrid
)

func (k Kind) String() string {
	switch k {
	case KindOpera:
		return "opera"
	case KindExpander:
		return "expander"
	case KindFoldedClos:
		return "foldedclos"
	case KindRotorNet:
		return "rotornet"
	case KindRotorNetHybrid:
		return "rotornet-hybrid"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// DefaultBulkThreshold is the flow-size boundary between latency-sensitive
// and bulk service (§4.1: flows ≥ 15 MB can amortize waiting for direct
// circuits).
const DefaultBulkThreshold = 15_000_000

// ClusterConfig assembles a simulated datacenter.
type ClusterConfig struct {
	Kind Kind

	// Racks, HostsPerRack and Uplinks size Opera/RotorNet/expander
	// networks. For KindExpander, Uplinks is the fabric degree u and
	// HostsPerRack is d. For KindFoldedClos, ClosK and ClosF are used
	// instead.
	Racks        int
	HostsPerRack int
	Uplinks      int

	// ClosK and ClosF size the folded Clos (radix, oversubscription).
	ClosK, ClosF int

	// BulkThreshold classifies flows; zero means DefaultBulkThreshold.
	// Flows at or above it are bulk (§4.1).
	BulkThreshold int64

	// AppTaggedBulk forces every flow to bulk service regardless of size
	// (§5.2's application-tagged shuffle).
	AppTaggedBulk bool

	// Sim, NDP and RotorLB override protocol parameters when non-nil.
	Sim     *sim.Config
	NDP     *ndp.Params
	RotorLB *rotorlb.Params

	// MaxSliceDiameter bounds Opera slice diameters at build time (0 = no
	// bound; 5 reproduces the paper's ε sizing).
	MaxSliceDiameter int

	Seed int64
}

// Cluster is a simulated datacenter network plus attached transports.
type Cluster struct {
	cfg      ClusterConfig
	eng      *eventsim.Engine
	metrics  *sim.Metrics
	hosts    []*sim.Host
	registry map[int64]*sim.Flow
	nextID   int64

	eps []*ndp.Endpoint
	lb  *rotorlb.LB

	operaNet    *sim.OperaNet
	expanderNet *sim.ExpanderNet
	closNet     *sim.ClosNet
	rotorNet    *sim.RotorNetSim

	hostsPerRack int
}

// NewCluster builds and starts a cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.BulkThreshold == 0 {
		cfg.BulkThreshold = DefaultBulkThreshold
	}
	simCfg := sim.DefaultConfig()
	if cfg.Sim != nil {
		simCfg = *cfg.Sim
	}
	ndpParams := ndp.DefaultParams()
	if cfg.NDP != nil {
		ndpParams = *cfg.NDP
	}
	lbParams := rotorlb.DefaultParams()
	if cfg.RotorLB != nil {
		lbParams = *cfg.RotorLB
	}

	c := &Cluster{
		cfg:      cfg,
		eng:      eventsim.New(),
		registry: make(map[int64]*sim.Flow),
	}

	switch cfg.Kind {
	case KindOpera:
		topo, err := topology.NewOpera(topology.Config{
			NumRacks:     cfg.Racks,
			HostsPerRack: cfg.HostsPerRack,
			NumSwitches:  cfg.Uplinks,
			Seed:         cfg.Seed,
			MaxDiameter:  cfg.MaxSliceDiameter,
		})
		if err != nil {
			return nil, err
		}
		c.operaNet = sim.NewOperaNet(c.eng, simCfg, topo, cfg.Seed+1)
		c.metrics = c.operaNet.Metrics()
		c.hosts = c.operaNet.Hosts()
		c.lb = rotorlb.Attach(c.operaNet, lbParams, c.registry)
		c.eps = ndp.Attach(c.hosts, c.metrics, ndpParams, c.registry)
		c.operaNet.Start()
		c.hostsPerRack = cfg.HostsPerRack

	case KindExpander:
		topo, err := topology.NewExpander(cfg.Racks, cfg.HostsPerRack, cfg.Uplinks, cfg.Seed)
		if err != nil {
			return nil, err
		}
		c.expanderNet = sim.NewExpanderNet(c.eng, simCfg, topo, cfg.Seed+1)
		c.metrics = c.expanderNet.Metrics()
		c.hosts = c.expanderNet.Hosts()
		c.eps = ndp.Attach(c.hosts, c.metrics, ndpParams, c.registry)
		c.hostsPerRack = cfg.HostsPerRack

	case KindFoldedClos:
		topo, err := topology.NewFoldedClos(cfg.ClosK, cfg.ClosF)
		if err != nil {
			return nil, err
		}
		c.closNet = sim.NewClosNet(c.eng, simCfg, topo, cfg.Seed+1)
		c.metrics = c.closNet.Metrics()
		c.hosts = c.closNet.Hosts()
		c.eps = ndp.Attach(c.hosts, c.metrics, ndpParams, c.registry)
		c.hostsPerRack = topo.HostsPerToR

	case KindRotorNet, KindRotorNetHybrid:
		topo, err := topology.NewRotorNet(topology.RotorConfig{
			NumRacks:     cfg.Racks,
			HostsPerRack: cfg.HostsPerRack,
			Uplinks:      cfg.Uplinks,
			Hybrid:       cfg.Kind == KindRotorNetHybrid,
			Seed:         cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		c.rotorNet = sim.NewRotorNetSim(c.eng, simCfg, topo)
		c.metrics = c.rotorNet.Metrics()
		c.hosts = c.rotorNet.Hosts()
		c.lb = rotorlb.Attach(c.rotorNet, lbParams, c.registry)
		if cfg.Kind == KindRotorNetHybrid {
			c.eps = ndp.Attach(c.hosts, c.metrics, ndpParams, c.registry)
		}
		c.rotorNet.Start()
		c.hostsPerRack = cfg.HostsPerRack

	default:
		return nil, fmt.Errorf("opera: unknown network kind %v", cfg.Kind)
	}
	return c, nil
}

// Engine exposes the simulation engine (for custom event scheduling).
func (c *Cluster) Engine() *eventsim.Engine { return c.eng }

// Metrics exposes flow and throughput accounting.
func (c *Cluster) Metrics() *sim.Metrics { return c.metrics }

// NumHosts returns the host count.
func (c *Cluster) NumHosts() int { return len(c.hosts) }

// HostsPerRack returns hosts per rack (ToR).
func (c *Cluster) HostsPerRack() int { return c.hostsPerRack }

// HostRack returns the rack of a host.
func (c *Cluster) HostRack(h int) int { return h / c.hostsPerRack }

// Kind returns the cluster's architecture.
func (c *Cluster) Kind() Kind { return c.cfg.Kind }

// OperaNet exposes the underlying Opera fabric (nil for other kinds), for
// failure injection and slice-level instrumentation.
func (c *Cluster) OperaNet() *sim.OperaNet { return c.operaNet }

// BulkNACKCount reports §4.2.2 NACK retransmissions observed (circuit
// networks only).
func (c *Cluster) BulkNACKCount() uint64 {
	if c.lb == nil {
		return 0
	}
	return c.lb.NACKs
}

// classify picks the service class for a flow of the given size.
func (c *Cluster) classify(bytes int64) sim.Class {
	if c.cfg.AppTaggedBulk {
		return sim.ClassBulk
	}
	if bytes >= c.cfg.BulkThreshold {
		return sim.ClassBulk
	}
	return sim.ClassLowLatency
}

// AddFlow registers and schedules a single flow; it starts at spec.Arrival
// (virtual time, which must not be in the past).
func (c *Cluster) AddFlow(spec workload.FlowSpec) *sim.Flow {
	c.nextID++
	f := &sim.Flow{
		ID:      c.nextID,
		SrcHost: int32(spec.Src),
		DstHost: int32(spec.Dst),
		SrcRack: int32(c.HostRack(spec.Src)),
		DstRack: int32(c.HostRack(spec.Dst)),
		Size:    spec.Bytes,
		Class:   c.classify(spec.Bytes),
		Start:   spec.Arrival,
	}
	c.registry[f.ID] = f
	c.metrics.AddFlow(f)
	start := func() { c.startFlow(f) }
	if spec.Arrival <= c.eng.Now() {
		start()
	} else {
		c.eng.At(spec.Arrival, start)
	}
	return f
}

// AddFlows schedules a batch of flows.
func (c *Cluster) AddFlows(specs []workload.FlowSpec) {
	for _, s := range specs {
		c.AddFlow(s)
	}
}

// AddBulkFlow schedules a flow that is application-tagged as bulk
// regardless of its size (§3.4's application-based tagging).
func (c *Cluster) AddBulkFlow(spec workload.FlowSpec) *sim.Flow {
	c.nextID++
	f := &sim.Flow{
		ID:      c.nextID,
		SrcHost: int32(spec.Src),
		DstHost: int32(spec.Dst),
		SrcRack: int32(c.HostRack(spec.Src)),
		DstRack: int32(c.HostRack(spec.Dst)),
		Size:    spec.Bytes,
		Class:   sim.ClassBulk,
		Start:   spec.Arrival,
	}
	c.registry[f.ID] = f
	c.metrics.AddFlow(f)
	start := func() { c.startFlow(f) }
	if spec.Arrival <= c.eng.Now() {
		start()
	} else {
		c.eng.At(spec.Arrival, start)
	}
	return f
}

// startFlow hands the flow to the right transport for this architecture.
func (c *Cluster) startFlow(f *sim.Flow) {
	switch c.cfg.Kind {
	case KindOpera:
		if f.Class == sim.ClassBulk {
			c.lb.StartFlow(f)
		} else {
			c.eps[f.SrcHost].StartFlow(f)
		}
	case KindExpander, KindFoldedClos:
		// Static networks carry everything over NDP; Class drives only
		// priority queueing (§5's "ideal priority queuing").
		c.eps[f.SrcHost].StartFlow(f)
	case KindRotorNet:
		// No packet fabric: everything waits for circuits.
		f.Class = sim.ClassBulk
		c.lb.StartFlow(f)
	case KindRotorNetHybrid:
		if f.Class == sim.ClassBulk {
			c.lb.StartFlow(f)
		} else {
			c.eps[f.SrcHost].StartFlow(f)
		}
	}
}

// Run advances the simulation to the given absolute virtual time.
func (c *Cluster) Run(until eventsim.Time) { c.eng.RunUntil(until) }

// RunUntilDone advances until every registered flow completes or the
// deadline passes, checking at 100 µs granularity. It reports completion.
func (c *Cluster) RunUntilDone(deadline eventsim.Time) bool {
	const step = 100 * eventsim.Microsecond
	for c.eng.Now() < deadline {
		c.eng.RunUntil(c.eng.Now() + step)
		done, total := c.metrics.DoneCount()
		if done == total {
			return true
		}
	}
	done, total := c.metrics.DoneCount()
	return done == total
}

// Stop halts circuit clocks so a finished simulation can drain.
func (c *Cluster) Stop() {
	if c.operaNet != nil {
		c.operaNet.Stop()
	}
	if c.rotorNet != nil {
		c.rotorNet.Stop()
	}
}
