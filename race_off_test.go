//go:build !race

package opera_test

// raceEnabled reports whether this test binary was built with -race.
const raceEnabled = false
