package opera_test

import (
	"math"
	"runtime"
	"sort"
	"testing"

	opera "github.com/opera-net/opera"
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/workload"
)

// soakFlows is the flow count of the flat-memory gate — large enough that
// retained per-flow state (flows, registry entries, NDP bitmaps) would
// show up as tens of megabytes of heap growth.
const soakFlows = 120_000

// soakSource streams soakFlows small low-latency flows open-loop: one
// arrival every 800 ns round-robin across hosts (~3% offered load on the
// small testbed), deterministic and cheap enough for the CI fast lane.
func soakSource(numHosts int) workload.Source {
	i := 0
	return workload.SourceFunc(func() (workload.FlowSpec, bool) {
		if i >= soakFlows {
			return workload.FlowSpec{}, false
		}
		src := i % numHosts
		dst := (src + 1 + (i/numHosts)%(numHosts-1)) % numHosts
		spec := workload.FlowSpec{
			Src: src, Dst: dst, Bytes: 2_000,
			Arrival: eventsim.Time(i) * 800 * eventsim.Nanosecond,
		}
		i++
		return spec, true
	})
}

func heapAlloc() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// TestRetainSketchFlatMemorySoak is the flat-memory gate CI's fast lane
// runs: a 120k-flow open-loop soak under RetainSketch must hold
// steady-state heap flat (every per-flow record is released on
// completion), and its p99 FCT must sit within the sketch's pinned error
// bound of the exact value from an identical RetainAll run. Under
// RetainAll the same soak accrues tens of megabytes — the growth bound
// fails loudly if any owner of per-flow state stops releasing.
func TestRetainSketchFlatMemorySoak(t *testing.T) {
	if raceEnabled {
		t.Skip("heap-growth bound is distorted by the race allocator; nothing concurrent here")
	}
	cl, err := opera.New(opera.KindOpera,
		opera.WithSeed(1),
		opera.WithRetention(opera.RetainSketch(opera.SketchOptions{})))
	if err != nil {
		t.Fatal(err)
	}
	cl.AddSource(soakSource(cl.NumHosts()))

	// Warm up through the first third so event pools, port rings and the
	// sketch's bucket span reach steady state, then measure growth to the
	// end of the run.
	warmup := eventsim.Time(soakFlows/3) * 800 * eventsim.Nanosecond
	cl.Run(warmup)
	doneAtWarmup, _ := cl.Metrics().DoneCount()
	if doneAtWarmup < soakFlows/4 {
		t.Fatalf("warmup completed only %d flows; soak is not in steady state", doneAtWarmup)
	}
	before := heapAlloc()
	if !cl.RunUntilDone(2000 * eventsim.Millisecond) {
		done, total := cl.Metrics().DoneCount()
		t.Fatalf("soak incomplete: %d/%d", done, total)
	}
	growth := int64(heapAlloc()) - int64(before)
	cl.Stop()

	done, total := cl.Metrics().DoneCount()
	if total != soakFlows || done != soakFlows {
		t.Fatalf("DoneCount = (%d, %d), want (%d, %d)", done, total, soakFlows, soakFlows)
	}
	if n := len(cl.Metrics().Flows()); n != 0 {
		t.Fatalf("streaming retention kept %d flows", n)
	}
	// 8 MB of headroom for allocator noise; retained per-flow state for
	// the final two thirds of the soak would cost ~30 MB+.
	if growth > 8<<20 {
		t.Fatalf("heap grew %d bytes across the soak steady state (bound 8 MiB) — per-flow state is leaking", growth)
	}

	tel := cl.Metrics().Telemetry()
	sk := tel.Merged()
	if sk.Count() != soakFlows {
		t.Fatalf("sketch absorbed %d flows, want %d", sk.Count(), soakFlows)
	}

	// Exact twin: identical workload under RetainAll. Retention changes
	// no packet-level behavior, so the FCT multiset is the same and the
	// sketch's p99 must sit within its pinned bound of the exact one.
	if testing.Short() {
		return // the memory gate ran; skip the exact twin in the fast lane
	}
	ref, err := opera.New(opera.KindOpera, opera.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	ref.AddSource(soakSource(ref.NumHosts()))
	if !ref.RunUntilDone(2000 * eventsim.Millisecond) {
		t.Fatal("exact twin incomplete")
	}
	ref.Stop()
	exact := ref.Metrics().FCTSample(nil)
	if exact.N() != soakFlows {
		t.Fatalf("exact twin completed %d flows, want %d", exact.N(), soakFlows)
	}
	if mean := sk.Mean(); math.Abs(mean-exact.Mean())/exact.Mean() > 1e-9 {
		t.Fatalf("means diverge: sketch %v vs exact %v — retention changed behavior", mean, exact.Mean())
	}
	sorted := exact.Values()
	for _, p := range []float64{50, 99, 99.9} {
		got := sk.Quantile(p / 100)
		h := p / 100 * float64(len(sorted)-1)
		lo := sorted[int(math.Floor(h))] * (1 - sk.Alpha())
		hi := sorted[int(math.Ceil(h))] * (1 + sk.Alpha())
		if got < lo-1e-9 || got > hi+1e-9 {
			t.Fatalf("p%v = %v outside sketch bound [%v, %v] (exact %v)", p, got, lo, hi, exact.Percentile(p))
		}
	}
	// Paranoia: the sorted copy really is the full soak.
	if !sort.Float64sAreSorted(sorted) {
		t.Fatal("exact sample unsorted")
	}
}
