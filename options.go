package opera

import (
	"github.com/opera-net/opera/internal/ndp"
	"github.com/opera-net/opera/internal/rotorlb"
	"github.com/opera-net/opera/internal/sim"
	"github.com/opera-net/opera/internal/telemetry"
)

// RetentionPolicy selects how cluster metrics treat completed flows; see
// RetainAll and RetainSketch.
type RetentionPolicy = sim.RetentionPolicy

// SketchOptions tunes RetainSketch: the quantile sketches' relative-error
// bound (Alpha, default 1%) and the trailing throughput/tax window
// (WindowBin seconds × WindowBins bins, default 1 ms × 128).
type SketchOptions = telemetry.Opts

// RetainAll is the default retention policy: every completed flow is kept,
// so statistics are exact and figure CSVs byte-reproducible — at the cost
// of memory that grows with total flow count.
func RetainAll() RetentionPolicy { return sim.RetainAll() }

// RetainSketch is the streaming retention policy: completed flows feed
// per-class and per-tag quantile sketches (pinned relative error
// SketchOptions.Alpha) plus trailing windowed counters, and every per-flow
// record — metrics, cluster registry, transport state — is released.
// Steady-state memory becomes O(active flows + sketch), which is what
// lets month-long soaks run flat; counts, means, min/max, throughput and
// bandwidth tax remain exact, and the sketches merge across process
// shards.
func RetainSketch(opts SketchOptions) RetentionPolicy { return sim.RetainSketch(opts) }

// Option adjusts one knob of a cluster under construction; pass Options to
// New. Options are applied in order over the defaults, so later options
// win.
type Option func(*ClusterConfig)

// WithRacks sets the rack count (Opera/RotorNet/expander fabrics).
func WithRacks(n int) Option {
	return func(cfg *ClusterConfig) { cfg.Racks = n }
}

// WithHostsPerRack sets hosts per rack d.
func WithHostsPerRack(n int) Option {
	return func(cfg *ClusterConfig) { cfg.HostsPerRack = n }
}

// WithUplinks sets uplinks per ToR (the expander's fabric degree u).
func WithUplinks(n int) Option {
	return func(cfg *ClusterConfig) { cfg.Uplinks = n }
}

// WithClos sizes the folded Clos: radix k and oversubscription F.
func WithClos(k, f int) Option {
	return func(cfg *ClusterConfig) { cfg.ClosK, cfg.ClosF = k, f }
}

// WithBulkThreshold sets the flow-size boundary between latency-sensitive
// and bulk service (§4.1).
func WithBulkThreshold(bytes int64) Option {
	return func(cfg *ClusterConfig) { cfg.BulkThreshold = bytes }
}

// WithAppTaggedBulk forces every flow to bulk service regardless of size
// (§5.2's application-tagged shuffle).
func WithAppTaggedBulk(tagged bool) Option {
	return func(cfg *ClusterConfig) { cfg.AppTaggedBulk = tagged }
}

// WithSeed seeds topology generation and per-ToR packet spraying.
func WithSeed(seed int64) Option {
	return func(cfg *ClusterConfig) { cfg.Seed = seed }
}

// WithSimConfig overrides the simulator's physical constants.
func WithSimConfig(sc sim.Config) Option {
	return func(cfg *ClusterConfig) { cfg.Sim = &sc }
}

// WithNDPParams overrides NDP protocol parameters.
func WithNDPParams(p ndp.Params) Option {
	return func(cfg *ClusterConfig) { cfg.NDP = &p }
}

// WithRotorLBParams overrides RotorLB protocol parameters.
func WithRotorLBParams(p rotorlb.Params) Option {
	return func(cfg *ClusterConfig) { cfg.RotorLB = &p }
}

// WithMaxSliceDiameter bounds Opera slice diameters at build time (5
// reproduces the paper's ε sizing; 0 means no bound).
func WithMaxSliceDiameter(d int) Option {
	return func(cfg *ClusterConfig) { cfg.MaxSliceDiameter = d }
}

// WithRetention selects the metrics retention policy: RetainAll (default,
// exact) or RetainSketch (streaming, flat-memory). Scenario sweeps opt in
// per Scenario through Options; the scenario Result then carries sketch
// quantile summaries and the trailing throughput window in
// Result.Telemetry.
func WithRetention(r RetentionPolicy) Option {
	return func(cfg *ClusterConfig) { cfg.Retention = r }
}
