package eventsim

import "testing"

// TestStatsPinnedSchedule pins every EngineStats counter across a known
// schedule: pushes, a cancellation, partial execution, and drain. The
// exact values are part of the observability contract — a refactor that
// changes them silently changes what /status reports.
func TestStatsPinnedSchedule(t *testing.T) {
	eng := New()

	if st := eng.Stats(); st != (EngineStats{}) {
		t.Fatalf("fresh engine stats = %+v, want zero", st)
	}

	noop := func() {}
	eng.At(1*Microsecond, noop)
	eng.At(2*Microsecond, noop)
	ev := eng.At(3*Microsecond, noop)
	eng.At(2*Millisecond, noop) // beyond the wheel horizon: overflow tier

	st := eng.Stats()
	if st.Scheduled != 4 || st.Fired != 0 || st.Cancelled != 0 || st.Pending != 4 {
		t.Fatalf("after 4 pushes: %+v", st)
	}
	if st.Sched.Resident != 3 || st.Sched.Buckets != 3 || st.Sched.Overflow != 1 {
		t.Fatalf("wheel occupancy after 4 pushes: %+v", st.Sched)
	}

	if !ev.Cancel() {
		t.Fatal("Cancel returned false on a pending event")
	}
	// Cancelled events drain lazily: still Pending until their time comes.
	if st = eng.Stats(); st.Pending != 4 || st.Cancelled != 0 {
		t.Fatalf("after cancel, before drain: %+v", st)
	}

	eng.Step() // fires t=1µs
	eng.Step() // fires t=2µs
	eng.Step() // drains the cancelled t=3µs slot, fires t=2ms
	st = eng.Stats()
	if st.Fired != 3 || st.Cancelled != 1 || st.Pending != 0 {
		t.Fatalf("after drain: %+v", st)
	}
	if st.Sched != (SchedStats{}) {
		t.Fatalf("occupancy after drain: %+v", st.Sched)
	}
	// All four Event objects are back in the free pool.
	if st.FreePool != 4 {
		t.Fatalf("free pool = %d, want 4", st.FreePool)
	}
	if eng.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

// TestStatsHeapScheduler pins the heap scheduler's occupancy convention:
// everything is overflow.
func TestStatsHeapScheduler(t *testing.T) {
	eng := NewWith(NewHeapScheduler())
	eng.At(5*Microsecond, func() {})
	eng.At(7*Microsecond, func() {})
	if st := eng.Stats(); st.Sched != (SchedStats{Overflow: 2}) {
		t.Fatalf("heap occupancy = %+v, want Overflow: 2", st.Sched)
	}
}

// metaSampler is a minimal periodic meta-event handler: it records the
// times it fires at and re-arms itself until a deadline, following the
// AtMetaCall contract (MetaStep first, reschedule via ContinueMetaCall).
type metaSampler struct {
	eng   *Engine
	every Time
	until Time
	fired []Time
}

func (m *metaSampler) OnEvent(any) {
	m.eng.MetaStep()
	m.fired = append(m.fired, m.eng.Now())
	if m.eng.Now()+m.every <= m.until {
		m.eng.ContinueMetaCall(m.every, m, nil)
	}
}

// TestMetaEventsInvisible asserts the observer invariant: a periodic meta
// sampler leaves Len and Steps exactly as an unobserved run would have
// them, while Stats still accounts for the meta activity separately.
func TestMetaEventsInvisible(t *testing.T) {
	run := func(observe bool) (*Engine, *metaSampler) {
		eng := New()
		fired := 0
		for i := Time(1); i <= 10; i++ {
			eng.At(i*100*Microsecond, func() { fired++ })
		}
		var ms *metaSampler
		if observe {
			ms = &metaSampler{eng: eng, every: 100 * Microsecond, until: Millisecond}
			eng.AtMetaCall(50*Microsecond, ms, nil)
		}
		eng.RunUntil(Millisecond)
		if fired != 10 {
			t.Fatalf("fired %d simulation events, want 10", fired)
		}
		return eng, ms
	}

	plain, _ := run(false)
	observed, ms := run(true)

	if got, want := len(ms.fired), 10; got != want {
		t.Fatalf("sampler fired %d times, want %d", got, want)
	}
	if plain.Steps() != observed.Steps() {
		t.Fatalf("Steps diverged: plain %d, observed %d", plain.Steps(), observed.Steps())
	}
	if plain.Len() != observed.Len() {
		t.Fatalf("Len diverged: plain %d, observed %d", plain.Len(), observed.Len())
	}
	st := observed.Stats()
	if st.MetaFired != 10 {
		t.Fatalf("MetaFired = %d, want 10", st.MetaFired)
	}
	if st.Fired != plain.Stats().Fired {
		t.Fatalf("Fired diverged under observation: %d vs %d", st.Fired, plain.Stats().Fired)
	}
}
