package eventsim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// schedulers enumerates every Scheduler implementation; ordering-sensitive
// tests run against each, and the differential tests compare them pairwise.
var schedulers = map[string]func() Scheduler{
	"wheel": NewWheelScheduler,
	"heap":  NewHeapScheduler,
}

// fireRec is one observed callback invocation.
type fireRec struct {
	id int
	at Time
}

type fireRecorder struct {
	e    *Engine
	recs []fireRec
}

func (r *fireRecorder) OnEvent(arg any) {
	r.recs = append(r.recs, fireRec{arg.(int), r.e.Now()})
}

// runSchedWorkload drives one seeded schedule/cancel/reschedule workload —
// equal-time ties, dense bursts, horizon-crossing and MaxTime-parked events,
// cancel churn — and returns the exact fire sequence.
func runSchedWorkload(mk func() Scheduler, seed int64) []fireRec {
	e := NewWith(mk())
	rng := rand.New(rand.NewSource(seed))
	rec := &fireRecorder{e: e}
	type schedRec struct {
		ev *Event
		at Time
	}
	var pending []schedRec
	id := 0
	sched := func() {
		var d Time
		switch rng.Intn(8) {
		case 0:
			d = 0 // tie with anything else scheduled this instant
		case 1, 2:
			d = Time(rng.Intn(64)) // intra-bucket dense
		case 3, 4:
			d = Time(rng.Intn(4096)) // a few buckets out
		case 5:
			d = Time(rng.Intn(2_000_000)) // straddles the wheel horizon
		case 6:
			d = Time(rng.Intn(80_000_000)) // far future: overflow tier
		case 7:
			d = MaxTime - e.Now() // parked timer
		}
		pending = append(pending, schedRec{e.AfterCall(d, rec, id), e.Now() + d})
		id++
	}
	for round := 0; round < 30; round++ {
		for i, n := 0, rng.Intn(24); i < n; i++ {
			sched()
		}
		// Cancel some pending events; reschedule half of those (the
		// cancel+schedule pattern Timer.Arm produces).
		for i := 0; i < len(pending)/5; i++ {
			j := rng.Intn(len(pending))
			pending[j].ev.Cancel()
			pending[j] = pending[len(pending)-1]
			pending = pending[:len(pending)-1]
			if rng.Intn(2) == 0 {
				sched()
			}
		}
		e.RunUntil(e.Now() + Time(rng.Intn(3_000_000)))
		// Drop fired entries: everything at or before now has popped, and
		// its Event object may already back an unrelated schedule.
		live := pending[:0]
		for _, p := range pending {
			if p.at > e.Now() {
				live = append(live, p)
			}
		}
		pending = live
	}
	e.Run()
	return rec.recs
}

// The differential property: for any seeded workload, heap and wheel must
// produce byte-for-byte identical fire sequences — same callbacks, same
// order, same virtual times. This is the engine-level guarantee behind the
// figure CSVs' byte-identity across scheduler implementations.
func TestSchedulerDifferentialProperty(t *testing.T) {
	f := func(seed int64) bool {
		h := runSchedWorkload(NewHeapScheduler, seed)
		w := runSchedWorkload(NewWheelScheduler, seed)
		if len(h) != len(w) {
			t.Logf("seed %d: heap fired %d, wheel fired %d", seed, len(h), len(w))
			return false
		}
		for i := range h {
			if h[i] != w[i] {
				t.Logf("seed %d: diverge at %d: heap %+v, wheel %+v", seed, i, h[i], w[i])
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 15
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Far-future events (MaxTime parks, blackout recoveries) must take the
// overflow tier, not force the wheel cursor to crawl empty revolutions —
// and must still fire in exact order relative to wheel residents.
func TestWheelOverflowTier(t *testing.T) {
	e := New()
	w := e.sched.(*wheelSched)
	var got []int
	oh := &orderHandler{got: &got}
	e.AtCall(MaxTime, oh, 99) // parked: way beyond the horizon
	e.AtCall(500, oh, 0)
	e.AtCall(90*Millisecond, oh, 2) // beyond the ~1 ms horizon
	e.AtCall(700*Microsecond, oh, 1)
	if w.overflow.Len() != 2 {
		t.Fatalf("overflow holds %d events, want 2 (MaxTime park + 90ms)", w.overflow.Len())
	}
	e.RunUntil(Second)
	want := []int{0, 1, 2}
	if len(got) != 3 {
		t.Fatalf("fired %v, want %v (MaxTime still parked)", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
	if e.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (the MaxTime park)", e.Len())
	}
}

// Scheduling behind an advanced cursor must rewind it: peeking at a distant
// next event moves the cursor forward, and a subsequent near-future schedule
// must still fire first.
func TestWheelRewindAfterPeek(t *testing.T) {
	e := New()
	var got []Time
	rec := func() { got = append(got, e.Now()) }
	e.At(10_000, rec)
	e.At(500_000, rec)
	e.RunUntil(10_000) // fires the first; the trailing peek advances the cursor
	e.At(20_000, rec)  // behind the cursor now: forces a rewind
	e.Run()
	want := []Time{10_000, 20_000, 500_000}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire times %v, want %v", got, want)
		}
	}
}

// A bucket holding residents from different wheel revolutions (reachable
// through the raw Scheduler interface after deep cursor rewinds) must serve
// only the revolution that is due: the head-bucket-number check skips the
// bucket, and the slowMin fallback still finds the true minimum.
func TestWheelMultiRevolutionBucket(t *testing.T) {
	w := NewWheelScheduler().(*wheelSched)
	w.cur = 1800                           // as if the cursor had advanced to bucket number 1800
	far := &Event{at: 2000 * 1024, seq: 1} // bucket number 2000 → slot 976
	w.Push(far)
	near := &Event{at: 976 * 1024, seq: 2} // bucket number 976 → same slot, rewinds cur
	w.Push(near)
	if w.count != 2 {
		t.Fatalf("wheel count = %d, want 2 (same slot, two revolutions)", w.count)
	}
	if got := w.Pop(); got != near {
		t.Fatalf("first Pop = %+v, want the near-revolution event", got)
	}
	// Only `far` remains, a full revolution ahead of cur: the bitmap walk
	// must not serve it early, and slowMin must locate it.
	if got := w.Peek(); got != far {
		t.Fatalf("Peek = %+v, want the far-revolution event", got)
	}
	if got := w.Pop(); got != far {
		t.Fatalf("second Pop = %+v, want the far-revolution event", got)
	}
	if w.Len() != 0 {
		t.Fatalf("Len = %d after draining, want 0", w.Len())
	}
}

// chainHop hops via ContinueCall, recording the firing event's identity at
// each hop (white-box) and the event returned by ContinueCall.
type chainHop struct {
	e        *Engine
	hopsLeft int
	entered  []*Event // e.firing observed at each hop entry
	armed    []*Event // what ContinueCall returned at each hop
	times    []Time
}

func (c *chainHop) OnEvent(any) {
	c.entered = append(c.entered, c.e.firing)
	c.times = append(c.times, c.e.Now())
	if c.hopsLeft > 0 {
		c.hopsLeft--
		c.armed = append(c.armed, c.e.ContinueCall(7, c, nil))
	}
}

// ContinueCall must re-arm the very event object that is firing — the whole
// chain rides one Event — while firing at exactly the AfterCall times.
func TestContinueCallReusesFiringEvent(t *testing.T) {
	e := New()
	c := &chainHop{e: e, hopsLeft: 5}
	e.AfterCall(3, c, nil)
	e.Run()
	if len(c.entered) != 6 {
		t.Fatalf("chain ran %d hops, want 6", len(c.entered))
	}
	for i, at := range c.times {
		if want := Time(3 + 7*i); at != want {
			t.Fatalf("hop %d fired at %v, want %v", i, at, want)
		}
	}
	for i, armed := range c.armed {
		if armed != c.entered[i] {
			t.Fatalf("hop %d: ContinueCall returned a different object than the firing event", i)
		}
		if armed != c.entered[i+1] {
			t.Fatalf("hop %d: next hop fired on a different object", i)
		}
	}
}

// ContinueCall's tie-order must be exactly AfterCall's at the same program
// point: competitors scheduled at the same instant fire in call order, no
// matter which form each call used.
func TestContinueCallTieOrderMatchesAfterCall(t *testing.T) {
	e := New()
	var got []int
	oh := &orderHandler{got: &got}
	e.At(0, func() {
		e.AfterCall(10, oh, 0)
		e.ContinueCall(10, oh, 1) // claims the firing event; seq follows the AfterCall
		e.AfterCall(10, oh, 2)
		e.ContinueCall(10, oh, 3) // firing already claimed: falls back to pooled path
	})
	e.Run()
	want := []int{0, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tie order %v, want %v", got, want)
		}
	}
}

// Outside any callback there is no firing event; ContinueCall must degrade
// to a plain scheduled call.
func TestContinueCallOutsideCallback(t *testing.T) {
	e := New()
	var got []int
	oh := &orderHandler{got: &got}
	e.ContinueCall(5, oh, 7)
	e.Run()
	if len(got) != 1 || got[0] != 7 || e.Now() != 5 {
		t.Fatalf("got %v at %v, want [7] at 5", got, e.Now())
	}
}

// Timer bound via BindCall (the form pooled structs embed) must dispatch to
// the handler and re-arm without allocating.
func TestTimerBindCall(t *testing.T) {
	e := New()
	h := &countHandler{}
	arg := new(int)
	var tm Timer
	tm.BindCall(e, h, arg)
	tm.Arm(10)
	tm.Arm(20)
	e.Run()
	if h.n != 1 {
		t.Fatalf("bound timer fired %d times, want 1", h.n)
	}
	if h.args[0] != any(arg) {
		t.Fatalf("bound timer arg = %v, want %p", h.args[0], arg)
	}
	if tm.Pending() {
		t.Fatal("timer still pending after firing")
	}
}

type nopHandler struct{}

func (*nopHandler) OnEvent(any) {}

// denseDeltas replays the hot path's near-monotonic pattern: every schedule
// is now+d for a d from the handful of scales the simulator actually emits —
// serialization times, propagation delays, pacing gaps, slice ticks —
// spanning from sub-µs to just under the wheel horizon.
var denseDeltas = []Time{
	720, 500, 1500, 5 * Microsecond, 720, 40 * Microsecond, 1200,
	180 * Microsecond, 500, 950 * Microsecond, 9 * Microsecond, 720,
}

// benchSchedule measures one push+pop round trip at a steady backlog, with
// per-op deltas drawn from next.
func benchSchedule(b *testing.B, mk func() Scheduler, next func(i int) Time, backlog int) {
	e := NewWith(mk())
	h := &nopHandler{}
	for i := 0; i < backlog; i++ {
		e.AfterCall(next(i), h, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.AfterCall(next(i), h, nil)
		e.Step()
	}
}

// BenchmarkEngineSchedule is the scheduler acceptance benchmark: on the
// dense workload the wheel must beat the heap by ≥25% ns/op (tracked in
// BENCH_engine.json via `make bench`). Sparse scatters events uniformly
// across 50 ms — mostly beyond the horizon, exercising the overflow tier,
// where the wheel is expected to roughly match the heap, not beat it.
func BenchmarkEngineSchedule(b *testing.B) {
	dense := func(i int) Time { return denseDeltas[i%len(denseDeltas)] }
	sparseRng := rand.New(rand.NewSource(1))
	sparse := func(int) Time { return Time(sparseRng.Int63n(int64(50*Millisecond))) + 1 }
	cases := []struct {
		name    string
		mk      func() Scheduler
		next    func(i int) Time
		backlog int
	}{
		{"dense/wheel", NewWheelScheduler, dense, 4096},
		{"dense/heap", NewHeapScheduler, dense, 4096},
		{"sparse/wheel", NewWheelScheduler, sparse, 4096},
		{"sparse/heap", NewHeapScheduler, sparse, 4096},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) { benchSchedule(b, c.mk, c.next, c.backlog) })
	}
}
