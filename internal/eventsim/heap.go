package eventsim

// heapSched is the binary-heap Scheduler: the straightforward O(log n)
// implementation that served as the engine's only queue before the timing
// wheel landed. It is retained as the differential-testing oracle — its
// ordering is a direct transcription of Event.before, so the property tests
// compare the wheel's fire sequences against it — and as the fallback for
// workloads whose timestamps are too sparse for the wheel to pay off.
type heapSched struct {
	evs []*Event
}

// NewHeapScheduler returns the binary-heap pending-event store.
func NewHeapScheduler() Scheduler { return &heapSched{} }

func (h *heapSched) Len() int { return len(h.evs) }

// SchedStats implements SchedulerStats. A bare heap has no wheel tier, so
// every resident counts as overflow — the convention that keeps "wheel vs
// overflow occupancy" comparable across scheduler choices.
func (h *heapSched) SchedStats() SchedStats { return SchedStats{Overflow: len(h.evs)} }

func (h *heapSched) Peek() *Event {
	if len(h.evs) == 0 {
		return nil
	}
	return h.evs[0]
}

func (h *heapSched) Push(ev *Event) {
	h.evs = append(h.evs, ev)
	h.up(len(h.evs) - 1)
}

func (h *heapSched) Pop() *Event {
	n := len(h.evs)
	if n == 0 {
		return nil
	}
	ev := h.evs[0]
	h.evs[0] = h.evs[n-1]
	h.evs[n-1] = nil
	h.evs = h.evs[:n-1]
	if len(h.evs) > 0 {
		h.down(0)
	}
	return ev
}

// up and down are the classic sift operations, specialized to []*Event to
// avoid container/heap's interface dispatch on every comparison.
func (h *heapSched) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.evs[i].before(h.evs[parent]) {
			break
		}
		h.evs[i], h.evs[parent] = h.evs[parent], h.evs[i]
		i = parent
	}
}

func (h *heapSched) down(i int) {
	n := len(h.evs)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h.evs[r].before(h.evs[l]) {
			m = r
		}
		if !h.evs[m].before(h.evs[i]) {
			break
		}
		h.evs[i], h.evs[m] = h.evs[m], h.evs[i]
		i = m
	}
}
