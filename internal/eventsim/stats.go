package eventsim

// This file is the engine's observability surface: cheap point-in-time
// counter reads (Stats) and the meta-event scheduling entry points an
// observer uses to sample a running simulation without perturbing it.
//
// The accounting deliberately lives off the hot path. Step gains no
// observer branch: nSteps counts every fired event (meta included) exactly
// as before, and the meta split is maintained by the meta entry points at
// schedule time plus MetaStep at fire time — both called only by observer
// code. When no observer is attached, metaPending and nMetaSteps stay
// zero and every method below degenerates to the pre-observability
// counters.

// EngineStats is a point-in-time view of the engine's internal counters.
// All fields are plain reads — capturing one is allocation-free and O(wheel
// words), safe to do from inside an engine callback.
type EngineStats struct {
	// Scheduled counts events ever pushed (the seq high-water mark),
	// including cancelled events, meta events and ContinueCall re-arms.
	Scheduled uint64
	// Fired counts simulation (non-meta) events executed — Engine.Steps.
	Fired uint64
	// MetaFired counts meta (observer) events executed.
	MetaFired uint64
	// Cancelled counts cancelled events drained from the scheduler. Events
	// cancelled but not yet due are still Pending.
	Cancelled uint64
	// Pending counts simulation events currently scheduled — Engine.Len.
	Pending int
	// FreePool is the engine's event free-list size: pooled Event objects
	// parked between firings.
	FreePool int
	// Sched reports pending-event-store occupancy when the scheduler
	// implements SchedulerStats (both built-ins do); zero otherwise.
	Sched SchedStats
}

// SchedStats describes pending-event-store occupancy. For the default
// timing wheel, Resident counts wheel-held events, Buckets the occupied
// wheel buckets, and Overflow the far-future events parked in the heap
// tier. The plain heap scheduler reports everything under Overflow.
type SchedStats struct {
	Resident int
	Buckets  int
	Overflow int
}

// SchedulerStats is the optional occupancy-reporting extension of
// Scheduler. Engine.Stats consults it when present.
type SchedulerStats interface {
	SchedStats() SchedStats
}

// Stats captures the engine's counters. The caller owns the returned value;
// it is a copy, never a live view.
func (e *Engine) Stats() EngineStats {
	st := EngineStats{
		Scheduled: e.seq,
		Fired:     e.nSteps - e.nMetaSteps,
		MetaFired: e.nMetaSteps,
		Cancelled: e.nCancelled,
		Pending:   e.sched.Len() - e.metaPending,
		FreePool:  e.free.Len(),
	}
	if ss, ok := e.sched.(SchedulerStats); ok {
		st.Sched = ss.SchedStats()
	}
	return st
}

// AtMetaCall schedules h.OnEvent(arg) at absolute virtual time t as a meta
// event: bookkeeping that observes the simulation without being part of
// it. Meta events are excluded from Len and Steps, so a periodic sampler
// cannot change done-detection ("queue drained") or reported effort — the
// invariant behind byte-identical results with and without an observer.
//
// The contract: the handler MUST call MetaStep before anything else in
// OnEvent, must reschedule itself only via AtMetaCall/ContinueMetaCall,
// and the returned event must never be cancelled (a cancelled meta event
// would drain without MetaStep and skew Len). Meta handlers must be
// read-only with respect to simulation state; they consume seq numbers,
// which preserves the relative order of all simulation events.
func (e *Engine) AtMetaCall(t Time, h Handler, arg any) *Event {
	e.metaPending++
	return e.AtCall(t, h, arg)
}

// ContinueMetaCall is the meta counterpart of ContinueCall: it re-arms the
// currently firing event object as the next meta sample, so a periodic
// observer rides one pooled Event for the whole run. The AtMetaCall
// contract applies.
func (e *Engine) ContinueMetaCall(d Time, h Handler, arg any) *Event {
	e.metaPending++
	return e.ContinueCall(d, h, arg)
}

// MetaStep records that the currently firing event is a meta event,
// rebalancing the pending and fired counts Len and Steps exclude. It must
// be the first call in a meta handler's OnEvent, exactly once per firing.
func (e *Engine) MetaStep() {
	e.metaPending--
	e.nMetaSteps++
}
