package eventsim

// Timer is a restartable one-shot timer bound to an engine. Unlike raw
// events, a Timer can be re-armed repeatedly without allocating, which suits
// per-flow retransmission timeouts that are usually cancelled before firing.
//
// A Timer carries either a closure (NewTimer) or a pre-bound Handler + arg
// (BindCall). The latter exists for timers embedded by value in pooled
// structs — an NDP flow's RTO, for example — where a closure would allocate
// once per pool miss and capture state that outlives the flow; binding the
// owning struct as the handler keeps the whole flow object reusable.
type Timer struct {
	eng     *Engine
	fn      func()
	h       Handler // pre-bound form; takes precedence over fn
	arg     any
	pending *Event
}

// NewTimer returns a stopped timer that will invoke fn when it fires.
func NewTimer(eng *Engine, fn func()) *Timer {
	return &Timer{eng: eng, fn: fn}
}

// BindCall initializes (or rebinds) the timer in place to invoke
// h.OnEvent(arg) when it fires — the closure-free counterpart of NewTimer,
// for timers embedded by value in pooled structs. The timer must not be
// armed when rebound.
func (t *Timer) BindCall(eng *Engine, h Handler, arg any) {
	t.eng = eng
	t.fn = nil
	t.h, t.arg = h, arg
	t.pending = nil
}

// Arm (re)schedules the timer to fire d after now, replacing any pending
// schedule. Arming uses the engine's pooled closure-free path, so re-arming
// a hot timer (e.g. an RTO bumped on every ACK) does not allocate.
func (t *Timer) Arm(d Time) {
	t.Stop()
	t.pending = t.eng.AfterCall(d, t, nil)
}

// ArmAt (re)schedules the timer to fire at absolute time at.
func (t *Timer) ArmAt(at Time) {
	t.Stop()
	t.pending = t.eng.AtCall(at, t, nil)
}

// Stop cancels any pending schedule. It reports whether a pending schedule
// was cancelled.
func (t *Timer) Stop() bool {
	if t.pending != nil {
		ok := t.pending.Cancel()
		t.pending = nil
		return ok
	}
	return false
}

// Pending reports whether the timer is armed.
func (t *Timer) Pending() bool { return t.pending != nil }

// Deadline returns the time at which the timer will fire, or MaxTime if it
// is not armed.
func (t *Timer) Deadline() Time {
	if t.pending == nil {
		return MaxTime
	}
	return t.pending.At()
}

// OnEvent implements Handler; the timer is its own pre-bound callback.
func (t *Timer) OnEvent(any) {
	t.pending = nil
	if t.h != nil {
		t.h.OnEvent(t.arg)
		return
	}
	t.fn()
}
