// Package eventsim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock with nanosecond resolution and a
// priority queue of pending events. Events scheduled for the same instant
// fire in FIFO order of scheduling, which—together with explicit seeding of
// all random number generators—makes every simulation in this repository
// fully deterministic and reproducible.
//
// The engine is intentionally single-threaded: datacenter packet simulation
// is dominated by fine-grained causally-ordered events, and a lock-free
// single-goroutine loop is both faster and easier to reason about than a
// parallel scheduler. Callers that want parallelism run independent engines
// (e.g. one per benchmark scenario) in separate goroutines.
package eventsim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, measured in integer nanoseconds from the
// start of the simulation. Durations are also expressed as Time; the zero
// value is the simulation epoch.
type Time int64

// Convenient duration units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time. It is used as an
// "infinitely far in the future" sentinel (e.g. for disabled timers).
const MaxTime Time = math.MaxInt64

// String formats the time with an adaptive unit, e.g. "13.200µs" or "1.5ms".
func (t Time) String() string {
	switch {
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", float64(t)/float64(Second))
	}
}

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns the time as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Handler is a pre-bound event callback. Scheduling a Handler with AtCall
// or AfterCall avoids the per-event closure allocation of At/After: the
// handler is a long-lived object (a port, a pacer, a transmission session)
// and arg carries the per-event state — typically a pointer, which converts
// to the any interface without allocating. Together with the engine's event
// free list this makes steady-state scheduling allocation-free.
type Handler interface {
	OnEvent(arg any)
}

// Event is a scheduled callback. Events are returned by the scheduling
// methods of Engine and may be cancelled until they fire. Event objects are
// pooled: once an event has fired (or its cancelled slot has drained from
// the queue) the engine recycles the object for a future schedule, so
// callers must not retain or use an Event past its scheduled time — which
// was already the contract.
type Event struct {
	at        Time
	seq       uint64 // scheduling order; breaks ties at equal time
	fn        func()
	h         Handler // pre-bound form; takes precedence over fn
	arg       any
	index     int // heap index; -1 once fired or cancelled
	cancelled bool
}

// At reports the virtual time at which the event is (or was) scheduled.
func (e *Event) At() Time { return e.at }

// Cancel prevents a pending event from firing, reporting whether it was
// still pending. Cancelling twice is a no-op. Cancel must not be called on
// an event that has already fired: events are pooled, so the object may by
// then back a different, unrelated schedule, and a stale Cancel would
// silently cancel that one instead. Holders that may outlive their event
// must drop the reference when it fires (as Timer does).
func (e *Event) Cancel() bool {
	if e.cancelled || e.index == -1 {
		return false
	}
	e.cancelled = true
	return true
}

// Engine is a discrete-event scheduler. The zero value is not usable; call
// New.
type Engine struct {
	now    Time
	queue  eventHeap
	seq    uint64
	nSteps uint64 // total events executed

	// free is the event free list. The engine is single-goroutine by
	// design, so a plain slice beats sync.Pool: no locking, and the pool
	// survives garbage collections (GC clears sync.Pools, which would
	// reintroduce steady-state allocations).
	free []*Event
}

// New returns an empty engine with the clock at the epoch.
func New() *Engine {
	e := &Engine{}
	e.queue = make(eventHeap, 0, 1024)
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Len returns the number of pending (non-cancelled) events. Cancelled events
// still occupy queue slots until their scheduled time, so Len is an upper
// bound on the number of callbacks that will actually run.
func (e *Engine) Len() int { return len(e.queue) }

// Steps returns the total number of events executed so far. It is useful for
// reporting simulation effort in benchmarks.
func (e *Engine) Steps() uint64 { return e.nSteps }

// alloc draws an event from the free list, falling back to the heap only
// when the pool is dry (startup, or a new high-water mark of concurrently
// pending events).
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return new(Event)
}

// recycle zeroes an event (dropping callback and arg references so they can
// be collected) and returns it to the free list.
func (e *Engine) recycle(ev *Event) {
	*ev = Event{index: -1}
	e.free = append(e.free, ev)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: such bugs silently corrupt causality and must not be masked.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("eventsim: scheduling at %v before now %v", t, e.now))
	}
	ev := e.alloc()
	ev.at, ev.seq, ev.fn = t, e.seq, fn
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d nanoseconds after the current time.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("eventsim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// AtCall schedules h.OnEvent(arg) at absolute virtual time t — the
// closure-free counterpart of At. Tie-order semantics are identical: events
// at equal times fire in scheduling order regardless of which form
// scheduled them.
func (e *Engine) AtCall(t Time, h Handler, arg any) *Event {
	if t < e.now {
		panic(fmt.Sprintf("eventsim: scheduling at %v before now %v", t, e.now))
	}
	ev := e.alloc()
	ev.at, ev.seq, ev.h, ev.arg = t, e.seq, h, arg
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// AfterCall schedules h.OnEvent(arg) d nanoseconds after the current time —
// the closure-free counterpart of After.
func (e *Engine) AfterCall(d Time, h Handler, arg any) *Event {
	if d < 0 {
		panic(fmt.Sprintf("eventsim: negative delay %v", d))
	}
	return e.AtCall(e.now+d, h, arg)
}

// Step executes the single next pending event, advancing the clock to its
// timestamp. It reports false if the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		ev.index = -1
		if ev.cancelled {
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		e.nSteps++
		// Copy the callback out and recycle before invoking, so schedules
		// made inside the callback can reuse this slot immediately.
		h, arg, fn := ev.h, ev.arg, ev.fn
		e.recycle(ev)
		if h != nil {
			h.OnEvent(arg)
		} else {
			fn()
		}
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then sets the clock
// to exactly deadline. Events scheduled after deadline remain pending.
func (e *Engine) RunUntil(deadline Time) {
	for {
		ev := e.peek()
		if ev == nil || ev.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor advances the simulation by d nanoseconds of virtual time.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// peek returns the next non-cancelled event without executing it, discarding
// any cancelled events encountered on the way.
func (e *Engine) peek() *Event {
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if !ev.cancelled {
			return ev
		}
		heap.Pop(&e.queue)
		ev.index = -1
		e.recycle(ev)
	}
	return nil
}

// eventHeap implements heap.Interface ordered by (time, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
