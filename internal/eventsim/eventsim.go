// Package eventsim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock with nanosecond resolution and a
// priority queue of pending events. Events scheduled for the same instant
// fire in FIFO order of scheduling, which—together with explicit seeding of
// all random number generators—makes every simulation in this repository
// fully deterministic and reproducible.
//
// The engine is intentionally single-threaded: datacenter packet simulation
// is dominated by fine-grained causally-ordered events, and a lock-free
// single-goroutine loop is both faster and easier to reason about than a
// parallel scheduler. Callers that want parallelism run independent engines
// (e.g. one per benchmark scenario) in separate goroutines.
package eventsim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, measured in integer nanoseconds from the
// start of the simulation. Durations are also expressed as Time; the zero
// value is the simulation epoch.
type Time int64

// Convenient duration units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time. It is used as an
// "infinitely far in the future" sentinel (e.g. for disabled timers).
const MaxTime Time = math.MaxInt64

// String formats the time with an adaptive unit, e.g. "13.200µs" or "1.5ms".
func (t Time) String() string {
	switch {
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", float64(t)/float64(Second))
	}
}

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns the time as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Event is a scheduled callback. Events are returned by the scheduling
// methods of Engine and may be cancelled until they fire.
type Event struct {
	at        Time
	seq       uint64 // scheduling order; breaks ties at equal time
	fn        func()
	index     int // heap index; -1 once fired or cancelled
	cancelled bool
}

// At reports the virtual time at which the event is (or was) scheduled.
func (e *Event) At() Time { return e.at }

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired or been cancelled is a no-op. Cancel reports whether the
// event was still pending.
func (e *Event) Cancel() bool {
	if e.cancelled || e.index == -1 {
		return false
	}
	e.cancelled = true
	return true
}

// Engine is a discrete-event scheduler. The zero value is not usable; call
// New.
type Engine struct {
	now    Time
	queue  eventHeap
	seq    uint64
	nSteps uint64 // total events executed
}

// New returns an empty engine with the clock at the epoch.
func New() *Engine {
	e := &Engine{}
	e.queue = make(eventHeap, 0, 1024)
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Len returns the number of pending (non-cancelled) events. Cancelled events
// still occupy queue slots until their scheduled time, so Len is an upper
// bound on the number of callbacks that will actually run.
func (e *Engine) Len() int { return len(e.queue) }

// Steps returns the total number of events executed so far. It is useful for
// reporting simulation effort in benchmarks.
func (e *Engine) Steps() uint64 { return e.nSteps }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: such bugs silently corrupt causality and must not be masked.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("eventsim: scheduling at %v before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d nanoseconds after the current time.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("eventsim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Step executes the single next pending event, advancing the clock to its
// timestamp. It reports false if the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		ev.index = -1
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		e.nSteps++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then sets the clock
// to exactly deadline. Events scheduled after deadline remain pending.
func (e *Engine) RunUntil(deadline Time) {
	for {
		ev := e.peek()
		if ev == nil || ev.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor advances the simulation by d nanoseconds of virtual time.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// peek returns the next non-cancelled event without executing it, discarding
// any cancelled events encountered on the way.
func (e *Engine) peek() *Event {
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if !ev.cancelled {
			return ev
		}
		heap.Pop(&e.queue)
		ev.index = -1
	}
	return nil
}

// eventHeap implements heap.Interface ordered by (time, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
