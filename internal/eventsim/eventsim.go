// Package eventsim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock with nanosecond resolution and a
// pluggable pending-event store (see Scheduler): by default a hierarchical
// timing wheel that schedules and pops the dense, near-monotonic timestamp
// streams of packet simulation in O(1), with a binary-heap implementation
// retained as a differential-testing oracle. Events scheduled for the same
// instant fire in FIFO order of scheduling — every Scheduler must preserve
// the (time, seq) total order exactly — which, together with explicit
// seeding of all random number generators, makes every simulation in this
// repository fully deterministic and reproducible.
//
// The engine is intentionally single-threaded: datacenter packet simulation
// is dominated by fine-grained causally-ordered events, and a lock-free
// single-goroutine loop is both faster and easier to reason about than a
// parallel scheduler. Callers that want parallelism run independent engines
// (e.g. one per benchmark scenario) in separate goroutines.
package eventsim

import (
	"fmt"
	"math"

	"github.com/opera-net/opera/internal/freelist"
)

// Time is a point in virtual time, measured in integer nanoseconds from the
// start of the simulation. Durations are also expressed as Time; the zero
// value is the simulation epoch.
type Time int64

// Convenient duration units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time. It is used as an
// "infinitely far in the future" sentinel (e.g. for disabled timers).
const MaxTime Time = math.MaxInt64

// String formats the time with an adaptive unit, e.g. "13.200µs" or "1.5ms".
func (t Time) String() string {
	switch {
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", float64(t)/float64(Second))
	}
}

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns the time as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Handler is a pre-bound event callback. Scheduling a Handler with AtCall
// or AfterCall avoids the per-event closure allocation of At/After: the
// handler is a long-lived object (a port, a pacer, a transmission session)
// and arg carries the per-event state — typically a pointer, which converts
// to the any interface without allocating. Together with the engine's event
// free list this makes steady-state scheduling allocation-free.
type Handler interface {
	OnEvent(arg any)
}

// Event is a scheduled callback. Events are returned by the scheduling
// methods of Engine and may be cancelled until they fire. Event objects are
// pooled: once an event has fired (or its cancelled slot has drained from
// the queue) the engine recycles the object for a future schedule, so
// callers must not retain or use an Event past its scheduled time — which
// was already the contract. The fields an implementation of Scheduler
// orders by are at and seq; nothing in the Event records which scheduler
// holds it.
type Event struct {
	at        Time
	seq       uint64 // scheduling order; breaks ties at equal time
	fn        func()
	h         Handler // pre-bound form; takes precedence over fn
	arg       any
	pending   bool // in a scheduler and not yet popped
	cancelled bool
}

// At reports the virtual time at which the event is (or was) scheduled.
func (e *Event) At() Time { return e.at }

// Cancel prevents a pending event from firing, reporting whether it was
// still pending. Cancelling twice is a no-op. Cancel must not be called on
// an event that has already fired: events are pooled, so the object may by
// then back a different, unrelated schedule, and a stale Cancel would
// silently cancel that one instead. Holders that may outlive their event
// must drop the reference when it fires (as Timer does).
func (e *Event) Cancel() bool {
	if e.cancelled || !e.pending {
		return false
	}
	e.cancelled = true
	return true
}

// before reports whether e is ordered before o in the engine's total event
// order: ascending time, ties broken by ascending seq (scheduling order).
// This is the one ordering every Scheduler implementation must agree on.
func (e *Event) before(o *Event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Scheduler is the engine's pending-event store. Push inserts an event;
// Pop removes and returns the minimum event in (time, seq) order, nil when
// empty; Peek returns that minimum without removing it; Len reports how
// many events are stored (including cancelled ones, which drain lazily).
//
// The ordering contract is exact, not approximate: two schedulers fed the
// same Push sequence must Pop the identical event sequence, including FIFO
// order among events at the same instant (the intra-bucket seq-FIFO
// invariant). The wheel implementation (NewWheelScheduler, the default) is
// O(1) for the dense near-monotonic common case; the heap implementation
// (NewHeapScheduler) is the simple O(log n) oracle the differential tests
// compare against. Implementations are not safe for concurrent use.
type Scheduler interface {
	Push(*Event)
	Pop() *Event
	Peek() *Event
	Len() int
}

// Engine is a discrete-event scheduler. The zero value is not usable; call
// New or NewWith.
type Engine struct {
	now    Time
	sched  Scheduler
	seq    uint64
	nSteps uint64 // total events executed, meta events included

	// nMetaSteps and metaPending account for meta events (AtMetaCall):
	// observer bookkeeping that must stay invisible to Len and Steps so
	// attaching an observer cannot perturb done-detection or reported
	// effort. They are maintained by the meta scheduling entry points and
	// MetaStep — not on the Step hot path, which stays branch-free.
	nMetaSteps  uint64
	metaPending int

	// nCancelled counts cancelled events drained from the scheduler
	// (in Step and peek, where the cancellation branch already exists).
	nCancelled uint64

	// firing is the event whose callback is currently executing. Holding
	// it (instead of recycling before the callback runs) lets ContinueCall
	// re-arm the same object for the next hop of a deterministic chain —
	// serialize→propagate→deliver, pacer and pump self-rescheduling —
	// without a free-list round trip.
	firing *Event

	// free is the event free list. The engine is single-goroutine by
	// design, so a plain LIFO beats sync.Pool: no locking, and the pool
	// survives garbage collections (GC clears sync.Pools, which would
	// reintroduce steady-state allocations).
	free freelist.Pool[Event]
}

// New returns an empty engine with the clock at the epoch, using the
// default timing-wheel scheduler.
func New() *Engine {
	return NewWith(NewWheelScheduler())
}

// NewWith returns an empty engine using the given pending-event store.
// Simulation results are scheduler-independent by contract; NewWith exists
// for differential testing (wheel vs heap) and benchmarking.
func NewWith(s Scheduler) *Engine {
	return &Engine{sched: s}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Len returns the number of pending (non-cancelled) simulation events.
// Cancelled events still occupy scheduler slots until their scheduled time,
// so Len is an upper bound on the number of callbacks that will actually
// run. Meta events (AtMetaCall) are excluded: an attached observer must not
// keep "the queue is non-empty" true on its own, or done-detection loops
// like Cluster.RunUntilDone would behave differently under observation.
func (e *Engine) Len() int { return e.sched.Len() - e.metaPending }

// Steps returns the total number of simulation events executed so far. It
// is useful for reporting simulation effort in benchmarks. Meta events are
// excluded so reported effort is identical with and without an observer.
func (e *Engine) Steps() uint64 { return e.nSteps - e.nMetaSteps }

// alloc draws an event from the free list, falling back to the heap only
// when the pool is dry (startup, or a new high-water mark of concurrently
// pending events).
func (e *Engine) alloc() *Event {
	if ev := e.free.Get(); ev != nil {
		return ev
	}
	return new(Event)
}

// recycle zeroes an event (dropping callback and arg references so they can
// be collected) and returns it to the free list.
func (e *Engine) recycle(ev *Event) {
	*ev = Event{}
	e.free.Put(ev)
}

// push stamps the next seq onto the event and hands it to the scheduler.
func (e *Engine) push(ev *Event) {
	ev.seq = e.seq
	e.seq++
	ev.pending = true
	e.sched.Push(ev)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: such bugs silently corrupt causality and must not be masked.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("eventsim: scheduling at %v before now %v", t, e.now))
	}
	ev := e.alloc()
	ev.at, ev.fn = t, fn
	e.push(ev)
	return ev
}

// After schedules fn to run d nanoseconds after the current time.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("eventsim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// AtCall schedules h.OnEvent(arg) at absolute virtual time t — the
// closure-free counterpart of At. Tie-order semantics are identical: events
// at equal times fire in scheduling order regardless of which form
// scheduled them.
func (e *Engine) AtCall(t Time, h Handler, arg any) *Event {
	if t < e.now {
		panic(fmt.Sprintf("eventsim: scheduling at %v before now %v", t, e.now))
	}
	ev := e.alloc()
	ev.at, ev.h, ev.arg = t, h, arg
	e.push(ev)
	return ev
}

// AfterCall schedules h.OnEvent(arg) d nanoseconds after the current time —
// the closure-free counterpart of After.
func (e *Engine) AfterCall(d Time, h Handler, arg any) *Event {
	if d < 0 {
		panic(fmt.Sprintf("eventsim: negative delay %v", d))
	}
	return e.AtCall(e.now+d, h, arg)
}

// ContinueCall schedules h.OnEvent(arg) d nanoseconds after the current
// time by re-arming the event object that is currently firing — the
// batched form for deterministic per-packet chains (a port's
// serialize→propagate→deliver hops, a pacer or session pump rescheduling
// itself). The chain then rides a single Event end to end: each hop is one
// scheduler push, with no recycle/alloc round trip between hops.
//
// Tie-order semantics are exactly those of AfterCall at the same program
// point — the seq is assigned at the moment of the call — so replacing an
// AfterCall inside a callback with ContinueCall cannot change any event
// ordering, only the object that backs it. At most one ContinueCall can
// claim the firing event; later schedules in the same callback, and calls
// made outside any callback, fall back to the pooled AfterCall path.
func (e *Engine) ContinueCall(d Time, h Handler, arg any) *Event {
	if d < 0 {
		panic(fmt.Sprintf("eventsim: negative delay %v", d))
	}
	ev := e.firing
	if ev == nil {
		return e.AtCall(e.now+d, h, arg)
	}
	e.firing = nil
	ev.at, ev.h, ev.arg = e.now+d, h, arg
	ev.fn = nil
	e.push(ev)
	return ev
}

// Step executes the single next pending event, advancing the clock to its
// timestamp. It reports false if the queue is empty.
func (e *Engine) Step() bool {
	for {
		ev := e.sched.Pop()
		if ev == nil {
			return false
		}
		ev.pending = false
		if ev.cancelled {
			e.nCancelled++
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		e.nSteps++
		// Hold the event as the firing slot while the callback runs: a
		// ContinueCall inside the callback re-arms it for the chain's next
		// hop; otherwise it is recycled afterwards.
		h, arg, fn := ev.h, ev.arg, ev.fn
		e.firing = ev
		if h != nil {
			h.OnEvent(arg)
		} else {
			fn()
		}
		if e.firing != nil {
			e.recycle(e.firing)
			e.firing = nil
		}
		return true
	}
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then sets the clock
// to exactly deadline. Events scheduled after deadline remain pending.
func (e *Engine) RunUntil(deadline Time) {
	for {
		ev := e.peek()
		if ev == nil || ev.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor advances the simulation by d nanoseconds of virtual time.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// peek returns the next non-cancelled event without executing it, discarding
// any cancelled events encountered on the way.
func (e *Engine) peek() *Event {
	for {
		ev := e.sched.Peek()
		if ev == nil {
			return nil
		}
		if !ev.cancelled {
			return ev
		}
		e.sched.Pop()
		ev.pending = false
		e.nCancelled++
		e.recycle(ev)
	}
}
