package eventsim

import "math/bits"

// wheelSched is the default Scheduler: a single-level timing wheel (a
// calendar queue with power-of-two bucket width) backed by a binary-heap
// overflow tier for events beyond the wheel's horizon.
//
// The simulator's event streams — slot/slice clock ticks, per-packet
// serialize→propagate→deliver chains, NDP pacing — are dense and
// near-monotonic: almost every event is scheduled within a few microseconds
// of the current time and pops in nearly the order it was pushed. The wheel
// exploits that: an event lands in bucket (at >> wheelShift) mod
// wheelBuckets with an O(1) append in the common case (sorted insert with a
// tail fast path), and Pop walks an occupancy bitmap with
// bits.TrailingZeros64, so both operations are constant-time for the dense
// workload where a binary heap pays O(log n) per op.
//
// Far-future events — timers parked at MaxTime, blackout recoveries —
// would force the cursor to crawl across empty revolutions, so anything
// scheduled at or beyond a full horizon from the cursor goes to the
// overflow heap instead. Overflow events are never migrated into the
// wheel: Pop and Peek simply compare the wheel's minimum candidate against
// the overflow top with Event.before and serve the smaller, which keeps
// the (time, seq) order exact without any rebucketing pass.
//
// Invariants:
//   - cur never exceeds the bucket number of any wheel-resident event
//     (Push rewinds it), so the bitmap walk cannot pass an unfired event.
//   - an overflow event was at least a full horizon ahead of cur when
//     pushed; the cursor advancing later is harmless because overflow is
//     served by direct comparison, not by horizon membership.
//   - within a bucket events are kept sorted by (at, seq), so the bucket
//     head is the bucket's minimum and FIFO order among equal-time events
//     is preserved exactly (the intra-bucket seq-FIFO invariant).
//
// A bucket can hold events from different wheel revolutions after the
// cursor rewinds; the bitmap walk detects this by checking whether the
// bucket head's bucket number matches the position being scanned, and
// falls back to an exact scan of all occupied buckets (slowMin) in the
// rare case that every resident is more than a full revolution ahead.
type wheelSched struct {
	buckets [wheelBuckets]wbucket
	occ     [wheelWords]uint64 // occupancy bitmap, one bit per bucket
	occSum  uint16             // summary: bit i set iff occ[i] != 0
	cur     int64              // absolute bucket number the walk resumes from
	count   int                // events resident in the wheel (not overflow)

	// minEv caches the last findWheelMin result (with cur at its bucket).
	// A Peek immediately followed by a Pop — the engine's stepping
	// pattern — then costs one bitmap walk, not two. Invalidated when the
	// min is popped; a Push can only keep it or replace it with the pushed
	// event (anything landing in an earlier bucket necessarily sorts
	// before the cached min, and the rewind leaves cur at its bucket).
	minEv *Event

	// overflow holds events ≥ one horizon ahead of cur at push time. A
	// concrete heapSched (not Scheduler) so its ops stay devirtualized.
	overflow heapSched
}

const (
	// wheelShift gives 1.024 µs buckets: wide enough that a port's
	// serialize+propagate chain usually stays within a few buckets,
	// narrow enough that a bucket rarely holds more than a handful of
	// events at datacenter link rates.
	wheelShift = 10
	// wheelBuckets × bucket width ≈ 1.05 ms of horizon — comfortably
	// beyond slice periods and NDP RTOs, so only genuinely far-future
	// events (MaxTime parks, blackout recoveries) hit the overflow heap.
	wheelBuckets = 1024
	wheelMask    = wheelBuckets - 1
	wheelWords   = wheelBuckets / 64
)

// wbucket is one wheel slot: events sorted ascending by (at, seq), consumed
// from the front via head so a pop is O(1).
type wbucket struct {
	evs  []*Event
	head int
}

// compact shifts the live region to the front of the slice, reclaiming the
// popped prefix so the backing array's capacity is bounded by the bucket's
// live high-water mark.
func (b *wbucket) compact() {
	if b.head == 0 {
		return
	}
	n := copy(b.evs, b.evs[b.head:])
	clear(b.evs[n:])
	b.evs = b.evs[:n]
	b.head = 0
}

// NewWheelScheduler returns the timing-wheel pending-event store, the
// engine default.
func NewWheelScheduler() Scheduler { return &wheelSched{} }

func (w *wheelSched) Len() int { return w.count + w.overflow.Len() }

// SchedStats implements SchedulerStats: wheel residents, occupied buckets
// (the occupancy bitmap's popcount), and the overflow heap's length.
func (w *wheelSched) SchedStats() SchedStats {
	buckets := 0
	for _, word := range w.occ {
		buckets += bits.OnesCount64(word)
	}
	return SchedStats{Resident: w.count, Buckets: buckets, Overflow: w.overflow.Len()}
}

func (w *wheelSched) Push(ev *Event) {
	abs := int64(ev.at) >> wheelShift
	if abs < w.cur {
		// Rewind: the walk must never resume past a resident event.
		w.cur = abs
	}
	if abs >= w.cur+wheelBuckets {
		w.overflow.Push(ev)
		return
	}
	if w.minEv != nil && ev.before(w.minEv) {
		// cur is already at ev's bucket: abs < cur would contradict the
		// rewind above, abs > cur would contradict ev preceding the min.
		w.minEv = ev
	}
	b := &w.buckets[abs&wheelMask]
	if n := len(b.evs); n == b.head {
		// Bucket empty (fresh or fully consumed): restart it.
		b.evs = append(b.evs[:0], ev)
		b.head = 0
		wi := (abs & wheelMask) >> 6
		w.occ[wi] |= 1 << (uint(abs) & 63)
		w.occSum |= 1 << uint(wi)
		w.count++
		if w.count == 1 {
			// Sole resident: trivially the wheel minimum. Park the
			// cursor on it so the next Peek/Pop skips the bitmap walk —
			// the common shape for a lightly loaded engine alternating
			// one push with one pop.
			w.cur = abs
			w.minEv = ev
		}
		return
	}
	if len(b.evs) == cap(b.evs) && b.head > 0 {
		// About to grow while a dead prefix of popped slots exists — a
		// bucket that interleaves pops and pushes (sub-µs event chains
		// landing in the current bucket) would otherwise grow without
		// bound. Compact the live region to the front instead.
		b.compact()
	}
	if !ev.before(b.evs[len(b.evs)-1]) {
		// Near-monotonic fast path: new event sorts last.
		b.evs = append(b.evs, ev)
		w.count++
		return
	}
	lo, hi := b.head, len(b.evs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b.evs[mid].before(ev) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	b.evs = append(b.evs, nil)
	copy(b.evs[lo+1:], b.evs[lo:])
	b.evs[lo] = ev
	w.count++
}

func (w *wheelSched) Pop() *Event {
	wm := w.findWheelMin()
	if om := w.overflow.Peek(); om != nil && (wm == nil || om.before(wm)) {
		ev := w.overflow.Pop()
		if w.count == 0 {
			// Empty wheel: let the cursor track time through an
			// overflow-only phase so the next near-future Push lands in
			// the wheel instead of chasing a stale horizon.
			if abs := int64(ev.at) >> wheelShift; abs > w.cur {
				w.cur = abs
			}
		}
		return ev
	}
	if wm == nil {
		return nil
	}
	// findWheelMin left cur at wm's bucket.
	w.minEv = nil
	b := &w.buckets[w.cur&wheelMask]
	b.evs[b.head] = nil
	b.head++
	if b.head == len(b.evs) {
		b.evs = b.evs[:0]
		b.head = 0
		wi := (w.cur & wheelMask) >> 6
		w.occ[wi] &^= 1 << (uint(w.cur) & 63)
		if w.occ[wi] == 0 {
			w.occSum &^= 1 << uint(wi)
		}
	}
	w.count--
	return wm
}

func (w *wheelSched) Peek() *Event {
	wm := w.findWheelMin()
	if om := w.overflow.Peek(); om != nil && (wm == nil || om.before(wm)) {
		return om
	}
	return wm
}

// findWheelMin returns the minimum wheel-resident event and advances cur to
// its bucket number, or nil if the wheel is empty. The walk scans at most
// one full revolution of the bitmap; if every occupied bucket it passes
// holds only later-revolution residents (possible after deep cursor
// rewinds), it falls back to the exact slowMin scan.
func (w *wheelSched) findWheelMin() *Event {
	if w.count == 0 {
		return nil
	}
	if w.minEv != nil {
		return w.minEv
	}
	abs := w.cur
	limit := abs + wheelBuckets
	for abs < limit {
		d := w.nextOccupied(int(abs & wheelMask))
		if d < 0 {
			break
		}
		abs += int64(d)
		if abs >= limit {
			break
		}
		b := &w.buckets[abs&wheelMask]
		head := b.evs[b.head]
		if int64(head.at)>>wheelShift == abs {
			w.cur = abs
			w.minEv = head
			return head
		}
		// Head belongs to a later revolution; nothing in this bucket is
		// due at this position. Keep walking.
		abs++
	}
	return w.slowMin()
}

// nextOccupied returns the cyclic distance from bucket position p to the
// nearest occupied bucket at or after it, or -1 if the bitmap is empty. The
// occSum summary makes this O(1) even on a nearly empty wheel: rotating it
// so the words after p's come first turns "nearest non-empty word" into a
// single TrailingZeros16.
func (w *wheelSched) nextOccupied(p int) int {
	wi := p >> 6
	if word := w.occ[wi] >> (uint(p) & 63); word != 0 {
		return bits.TrailingZeros64(word)
	}
	rot := bits.RotateLeft16(w.occSum, -(wi + 1))
	if rot == 0 {
		return -1
	}
	tz := bits.TrailingZeros16(rot)
	// tz == wheelWords-1 wraps back to p's own word: its remaining bits
	// are all below p, i.e. a full revolution ahead, which the unmasked
	// TrailingZeros64 handles.
	wj := (wi + 1 + tz) & (wheelWords - 1)
	return 64 - int(uint(p)&63) + tz<<6 + bits.TrailingZeros64(w.occ[wj])
}

// slowMin scans every occupied bucket, returns the overall minimum head by
// (at, seq), and jumps cur to its bucket. O(occupied buckets), reached only
// when rewind churn has pushed every resident beyond a revolution from cur.
func (w *wheelSched) slowMin() *Event {
	var best *Event
	for wi, word := range w.occ {
		for word != 0 {
			b := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			bk := &w.buckets[b]
			if head := bk.evs[bk.head]; best == nil || head.before(best) {
				best = head
			}
		}
	}
	if best != nil {
		w.cur = int64(best.at) >> wheelShift
		w.minEv = best
	}
	return best
}
