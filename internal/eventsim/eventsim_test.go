package eventsim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := New()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(42, func() { got = append(got, i) })
	}
	e.Run()
	if len(got) != 100 {
		t.Fatalf("executed %d events, want 100", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: got[%d] = %d", i, v)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := New()
	ran := false
	ev := e.At(5, func() { ran = true })
	if !ev.Cancel() {
		t.Fatal("Cancel returned false for pending event")
	}
	if ev.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := New()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %d events by t=25, want 2", len(fired))
	}
	if e.Now() != 25 {
		t.Fatalf("Now = %v, want 25", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("fired %d events total, want 4", len(fired))
	}
}

func TestEngineRunFor(t *testing.T) {
	e := New()
	e.RunFor(100)
	if e.Now() != 100 {
		t.Fatalf("Now = %v, want 100", e.Now())
	}
	n := 0
	e.After(50, func() { n++ })
	e.RunFor(49)
	if n != 0 || e.Now() != 149 {
		t.Fatalf("n=%d now=%v, want 0/149", n, e.Now())
	}
	e.RunFor(1)
	if n != 1 {
		t.Fatalf("event at exact deadline did not fire")
	}
}

func TestSchedulingInsideEvents(t *testing.T) {
	e := New()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 10 {
			e.After(1, recurse)
		}
	}
	e.At(0, recurse)
	e.Run()
	if depth != 10 {
		t.Fatalf("depth = %d, want 10", depth)
	}
	if e.Now() != 9 {
		t.Fatalf("Now = %v, want 9", e.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

// Property: for any batch of events with random times, execution order is a
// stable sort by time (FIFO among equal times).
func TestEventOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		if len(times) == 0 {
			return true
		}
		e := New()
		type rec struct {
			at  Time
			seq int
		}
		var got []rec
		for i, ti := range times {
			at := Time(ti)
			i := i
			e.At(at, func() { got = append(got, rec{at, i}) })
		}
		e.Run()
		if len(got) != len(times) {
			return false
		}
		if !sort.SliceIsSorted(got, func(a, b int) bool {
			if got[a].at != got[b].at {
				return got[a].at < got[b].at
			}
			return got[a].seq < got[b].seq
		}) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimerRearm(t *testing.T) {
	e := New()
	fired := 0
	tm := NewTimer(e, func() { fired++ })
	tm.Arm(10)
	tm.Arm(20) // replaces the first schedule
	if !tm.Pending() {
		t.Fatal("timer should be pending")
	}
	if tm.Deadline() != 20 {
		t.Fatalf("Deadline = %v, want 20", tm.Deadline())
	}
	e.Run()
	if fired != 1 {
		t.Fatalf("fired %d times, want 1", fired)
	}
	if tm.Pending() {
		t.Fatal("timer still pending after firing")
	}
	if tm.Deadline() != MaxTime {
		t.Fatalf("idle Deadline = %v, want MaxTime", tm.Deadline())
	}
}

func TestTimerStop(t *testing.T) {
	e := New()
	fired := 0
	tm := NewTimer(e, func() { fired++ })
	tm.Arm(10)
	if !tm.Stop() {
		t.Fatal("Stop returned false for armed timer")
	}
	if tm.Stop() {
		t.Fatal("Stop returned true for stopped timer")
	}
	e.Run()
	if fired != 0 {
		t.Fatal("stopped timer fired")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500µs"},
		{90 * Microsecond, "90.000µs"},
		{Time(10.7 * float64(Millisecond)), "10.700ms"},
		{2 * Second, "2.000000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		e := New()
		rng := rand.New(rand.NewSource(seed))
		var trace []Time
		var step func()
		step = func() {
			trace = append(trace, e.Now())
			if len(trace) < 1000 {
				e.After(Time(rng.Intn(100)), step)
			}
		}
		e.At(0, step)
		e.Run()
		return trace
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatal("traces differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	e := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%64), func() {})
		if e.Len() > 4096 {
			e.RunFor(64)
		}
	}
	e.Run()
}

// countHandler is a pre-bound Handler recording how it was invoked.
type countHandler struct {
	n    int
	args []any
}

func (h *countHandler) OnEvent(arg any) { h.n++; h.args = append(h.args, arg) }

func TestAtCallDeliversArg(t *testing.T) {
	e := New()
	h := &countHandler{}
	p := &struct{ x int }{42}
	e.AtCall(10, h, p)
	e.AfterCall(20, h, nil)
	e.Run()
	if h.n != 2 {
		t.Fatalf("handler ran %d times, want 2", h.n)
	}
	if h.args[0] != any(p) || h.args[1] != nil {
		t.Fatalf("args = %v, want [%p nil]", h.args, p)
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %v, want 20", e.Now())
	}
}

// orderHandler appends its arg (an int index) to a shared trace.
type orderHandler struct{ got *[]int }

func (h *orderHandler) OnEvent(arg any) { *h.got = append(*h.got, arg.(int)) }

// Ties at equal times must fire in scheduling order regardless of which
// form — closure or pre-bound — scheduled them, and regardless of how much
// the event pool has churned beforehand. This is the fig08 determinism
// canary at engine level, run against every Scheduler implementation.
func TestTieOrderStableAcrossFormsAndChurn(t *testing.T) {
	for name, mk := range schedulers {
		t.Run(name, func(t *testing.T) {
			e := NewWith(mk())
			// Churn the pool: schedule, cancel half, run everything.
			for i := 0; i < 500; i++ {
				ev := e.After(Time(i%7), func() {})
				if i%2 == 0 {
					ev.Cancel()
				}
			}
			e.Run()
			base := e.Now()
			var got []int
			oh := &orderHandler{got: &got}
			for i := 0; i < 100; i++ {
				i := i
				if i%3 == 0 {
					e.AtCall(base+42, oh, i)
				} else {
					e.At(base+42, func() { got = append(got, i) })
				}
			}
			e.Run()
			if len(got) != 100 {
				t.Fatalf("executed %d events, want 100", len(got))
			}
			for i, v := range got {
				if v != i {
					t.Fatalf("same-time events not FIFO after churn: got[%d] = %d", i, v)
				}
			}
		})
	}
}

// A cancelled event's object must drain back to the free list once its
// scheduled time passes, and reuse must not resurrect the cancelled
// callback.
func TestPoolRecycleAfterCancel(t *testing.T) {
	e := New()
	cancelledRan := false
	ev := e.At(10, func() { cancelledRan = true })
	if !ev.Cancel() {
		t.Fatal("Cancel failed")
	}
	ran := 0
	e.At(20, func() { ran++ })
	e.Run()
	if cancelledRan {
		t.Fatal("cancelled event ran")
	}
	if ran != 1 {
		t.Fatalf("live event ran %d times, want 1", ran)
	}
	// The cancelled slot has drained: a new schedule must reuse a pooled
	// object (white-box: the free list is non-empty) and fire normally.
	if e.free.Len() == 0 {
		t.Fatal("free list empty after cancelled event drained")
	}
	ev2 := e.At(30, func() { ran++ })
	if ev2.cancelled {
		t.Fatal("recycled event carried stale cancelled flag")
	}
	e.Run()
	if ran != 2 {
		t.Fatalf("recycled event did not fire: ran = %d", ran)
	}
}

// TestAllocsPooledScheduling is the engine-level allocation gate: steady-
// state closure-free scheduling must not allocate at all. (The name matches
// CI's `-run 'TestAllocs'` regression step.)
func TestAllocsPooledScheduling(t *testing.T) {
	e := New()
	h := &countHandler{}
	arg := new(int)
	// Warm the pool.
	for i := 0; i < 64; i++ {
		e.AfterCall(1, h, arg)
	}
	e.Run()
	h.args = h.args[:0]
	avg := testing.AllocsPerRun(200, func() {
		e.AfterCall(1, h, arg)
		e.Run()
		h.args = h.args[:0]
	})
	if avg != 0 {
		t.Fatalf("pooled scheduling allocates %.1f/op, want 0", avg)
	}
	// Timer re-arming rides the same pooled path.
	tm := NewTimer(e, func() {})
	tm.Arm(1)
	e.Run()
	avg = testing.AllocsPerRun(200, func() {
		tm.Arm(1)
		tm.Arm(2) // replaces: exercises cancel + recycle
		e.Run()
	})
	if avg != 0 {
		t.Fatalf("Timer.Arm allocates %.1f/op, want 0", avg)
	}
}
