package sim_test

import (
	"testing"

	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/sim"
	"github.com/opera-net/opera/internal/workload"

	opera "github.com/opera-net/opera"
)

// rotorTestbed builds a small RotorNet cluster via the public API so
// RotorLB (and, for the hybrid, NDP) attach, and exposes its fault state.
func rotorTestbed(t *testing.T, kind opera.Kind) (*opera.Cluster, *sim.RotorFaults) {
	t.Helper()
	cl, err := opera.New(kind,
		opera.WithRacks(8), opera.WithHostsPerRack(2), opera.WithUplinks(4), opera.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	rn := cl.Network().(*sim.RotorNetSim)
	return cl, rn.Faults()
}

func TestRotorNetFaultInjectorExposed(t *testing.T) {
	for _, kind := range []opera.Kind{opera.KindRotorNet, opera.KindRotorNetHybrid} {
		cl, _ := rotorTestbed(t, kind)
		if cl.Faults() == nil {
			t.Fatalf("%v cluster should expose a FaultInjector", kind)
		}
	}
	// The folded Clos exposes one too, on multi-tier link coordinates.
	clos, err := opera.New(opera.KindFoldedClos)
	if err != nil {
		t.Fatal(err)
	}
	if clos.Faults() == nil {
		t.Fatal("folded Clos should expose a FaultInjector")
	}
}

// addBulkPairs schedules one bulk flow from every host to its counterpart
// five racks over, staggered to avoid a synchronized burst.
func addBulkPairs(cl *opera.Cluster, bytes int64) {
	n := cl.NumHosts()
	for i := 0; i < n; i++ {
		cl.AddBulkFlow(workload.FlowSpec{
			Src: i, Dst: (i + 5*cl.HostsPerRack()) % n, Bytes: bytes,
			Arrival: eventsim.Time(i+1) * 50 * eventsim.Microsecond,
		})
	}
}

// Bulk keeps completing after link failures: the direct circuit of an
// affected pair is vetoed (instant OOB knowledge), so RotorLB offloads
// the bytes over two-hop VLB paths through surviving circuits. The
// failures precede the first arrival: bytes already stored at a VLB relay
// when the relay's second leg dies wait for recovery instead (RotorLB has
// no re-offload of stored relay traffic — same model as Opera).
func TestRotorNetBulkSurvivesLinkFailures(t *testing.T) {
	cl, rf := rotorTestbed(t, opera.KindRotorNet)
	rf.FailLink(0, 1, 0)
	rf.FailLink(5, 2, 0)
	addBulkPairs(cl, 200_000)
	if !cl.RunUntilDone(2000 * eventsim.Millisecond) {
		done, total := cl.Metrics().DoneCount()
		t.Fatalf("only %d/%d flows survived link failures", done, total)
	}
	if rf.LinkUp(0, 1) || rf.LinkUp(5, 2) {
		t.Fatal("failed links still reported up")
	}
}

// A failed rotor switch takes one uplink per ToR out of rotation; every
// pair it served reroutes via VLB and traffic still completes.
func TestRotorNetSwitchFailureAndRecovery(t *testing.T) {
	cl, rf := rotorTestbed(t, opera.KindRotorNet)
	rf.FailSwitch(3, 100*eventsim.Microsecond)
	rf.RecoverSwitch(3, 5*eventsim.Millisecond)
	addBulkPairs(cl, 200_000)
	if !cl.RunUntilDone(2000 * eventsim.Millisecond) {
		done, total := cl.Metrics().DoneCount()
		t.Fatalf("only %d/%d flows survived the switch outage", done, total)
	}
}

// A dead ToR strands traffic toward its rack — DirectReachable goes false
// for every pair involving it, so RotorLB holds the bytes rather than
// relaying into the dark — and recovery drains the backlog.
func TestRotorNetToRFailureStrandsUntilRecovery(t *testing.T) {
	cl, rf := rotorTestbed(t, opera.KindRotorNet)
	rn := cl.Network().(*sim.RotorNetSim)
	rf.FailToR(3, 50*eventsim.Microsecond)
	rf.RecoverToR(3, 20*eventsim.Millisecond)

	// One bulk flow into the doomed rack, one between healthy racks.
	cl.AddBulkFlow(workload.FlowSpec{Src: 0, Dst: 6, Bytes: 200_000, Arrival: eventsim.Millisecond})
	cl.AddBulkFlow(workload.FlowSpec{Src: 2, Dst: 10, Bytes: 200_000, Arrival: eventsim.Millisecond})

	cl.Run(10 * eventsim.Millisecond)
	if rn.DirectReachable(0, 3) {
		t.Fatal("rack 3 should be unreachable while its ToR is down")
	}
	healthy := cl.Metrics().Flows()[1]
	if !healthy.Done {
		t.Fatal("flow between healthy racks should finish during the outage")
	}
	if !cl.RunUntilDone(2000 * eventsim.Millisecond) {
		done, total := cl.Metrics().DoneCount()
		t.Fatalf("only %d/%d flows completed after ToR recovery", done, total)
	}
	if !rn.DirectReachable(0, 3) {
		t.Fatal("rack 3 should be reachable again after recovery")
	}
}

// The injector's StrandedBytes counter surfaces the known RotorLB model
// gap: VLB bytes stored at a relay are never re-offloaded to a third
// rack, so when the destination becomes unreachable they sit at the
// relay until recovery. The counter reads zero on a healthy fabric,
// positive during the outage, and zero again once the backlog drains.
func TestRotorNetStrandedBytesFaultCounter(t *testing.T) {
	cl, rf := rotorTestbed(t, opera.KindRotorNet)
	sb, ok := cl.Faults().(interface{ StrandedBytes() int64 })
	if !ok {
		t.Fatal("rotor injector should expose StrandedBytes")
	}
	mustOK(t, rf.Inject(sim.ToRTarget(3), sim.DownFault(), 2*eventsim.Millisecond))
	mustOK(t, rf.Recover(sim.ToRTarget(3), 30*eventsim.Millisecond))
	cl.AddBulkFlow(workload.FlowSpec{Src: 0, Dst: 6, Bytes: 5_000_000})

	cl.Run(eventsim.Millisecond) // ToR still up: everything is reachable
	if got := sb.StrandedBytes(); got != 0 {
		t.Fatalf("healthy fabric reports %d stranded bytes", got)
	}
	cl.Run(3 * eventsim.Millisecond) // outage: relay bytes toward rack 3 are stuck
	if sb.StrandedBytes() == 0 {
		t.Fatal("relay bytes toward the dead rack should read as stranded")
	}
	if !cl.RunUntilDone(2000 * eventsim.Millisecond) {
		t.Fatal("flow should complete after ToR recovery")
	}
	if got := sb.StrandedBytes(); got != 0 {
		t.Fatalf("drained fabric reports %d stranded bytes", got)
	}
}

// The hybrid variant's packet fabric is a separate network: low-latency
// traffic into a rack keeps flowing while the rack's rotor circuits are
// dark.
func TestRotorNetHybridPacketPathSurvivesRotorFaults(t *testing.T) {
	cl, rf := rotorTestbed(t, opera.KindRotorNetHybrid)
	for sw := 0; sw < cl.Network().(*sim.RotorNetSim).Uplinks(); sw++ {
		rf.FailLink(3, sw, 0)
	}
	cl.AddFlow(workload.FlowSpec{Src: 0, Dst: 6, Bytes: 50_000, Arrival: 10 * eventsim.Microsecond})
	if !cl.RunUntilDone(500 * eventsim.Millisecond) {
		t.Fatal("low-latency flow should ride the hybrid packet fabric past rotor faults")
	}
}

// Packets already queued on a dead circuit are NACKed (bulk) or counted
// lost rather than delivered into the dark.
func TestRotorNetDeadCircuitTakesNACKPath(t *testing.T) {
	cl, rf := rotorTestbed(t, opera.KindRotorNet)
	// Fail everything mid-slot (slots are 100 µs), mid-flight: sessions
	// already pumping into the now-dead circuits have their packets NACKed
	// at the ToR. Recover shortly after so the run completes.
	rn := cl.Network().(*sim.RotorNetSim)
	for sw := 0; sw < rn.Uplinks(); sw++ {
		rf.FailLink(0, sw, 1050*eventsim.Microsecond)
		rf.RecoverLink(0, sw, 10*eventsim.Millisecond)
	}
	cl.AddBulkFlow(workload.FlowSpec{Src: 0, Dst: 9, Bytes: 2_000_000})
	if !cl.RunUntilDone(2000 * eventsim.Millisecond) {
		t.Fatal("flow should complete after link recovery")
	}
	if cl.BulkNACKCount() == 0 {
		t.Fatal("expected NACKs from the mid-flight outage")
	}
}
