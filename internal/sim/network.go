package sim

import (
	"fmt"
	"sort"
	"sync"

	"github.com/opera-net/opera/internal/eventsim"
)

// Network is the top-level fabric abstraction: a fully wired simulated
// datacenter (hosts, switches, links and — for rotor fabrics — circuit
// clocks) ready to carry traffic. The Cluster in the root package drives
// exactly one Network and attaches transports to it based on its
// capabilities: NDP when PacketCapable reports an always-on packet path,
// RotorLB when the Network also implements CircuitNetwork.
type Network interface {
	// Engine returns the discrete-event engine the fabric schedules on.
	Engine() *eventsim.Engine
	// Config returns the physical constants (link rate, MTU, queue sizes).
	Config() *Config
	// Hosts returns all hosts, indexed by host ID.
	Hosts() []*Host
	// Metrics returns the fabric's flow and throughput accounting.
	Metrics() *Metrics
	// NumRacks returns the rack (ToR) count.
	NumRacks() int
	// HostsPerRack returns hosts per rack.
	HostsPerRack() int
	// Kind returns the architecture's registered name (e.g. "opera").
	Kind() string
	// PacketCapable reports whether the fabric has an always-on
	// packet-switched path, i.e. whether NDP low-latency traffic can be
	// carried. Circuit-only fabrics (non-hybrid RotorNet) return false.
	PacketCapable() bool
	// Start begins any circuit clocks; call once, after transports attach.
	Start()
	// Stop halts circuit clocks so a finished simulation can drain.
	Stop()
}

// Transport admits flows into a Network. Both transports implement it:
// NDP through the per-host endpoint fan-out (ndp.Fabric) and RotorLB
// directly (rotorlb.LB).
type Transport interface {
	StartFlow(f *Flow)
}

// FaultNetwork is the capability interface for runtime failure injection:
// a Network that can expose a FaultInjector (see faultapi.go) over its
// live state. All four built-in fabrics implement it — OperaNet
// (§3.6.2's detection-and-epidemic model, FailureState), ExpanderNet
// (instant link-state reconvergence, ExpanderFaults), RotorNetSim
// (instant global knowledge over the OOB management channel, RotorFaults)
// and ClosNet (instant local link-state with tier-addressed coordinates,
// ClosFaults).
type FaultNetwork interface {
	Network
	// FaultInjector returns the fabric's failure-injection surface.
	FaultInjector() FaultInjector
}

// BuildParams carries everything a registered architecture needs to
// assemble itself: the shared event engine, physical constants, and the
// sizing knobs of the root package's ClusterConfig.
type BuildParams struct {
	Engine *eventsim.Engine
	Sim    Config

	// Racks, HostsPerRack and Uplinks size Opera/RotorNet/expander
	// fabrics; ClosK and ClosF size the folded Clos.
	Racks        int
	HostsPerRack int
	Uplinks      int
	ClosK, ClosF int

	// MaxSliceDiameter bounds Opera slice diameters at build time.
	MaxSliceDiameter int

	Seed int64
}

// Builder constructs a wired (but not yet started) Network.
type Builder func(p BuildParams) (Network, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Builder{}
)

// Register installs a Network constructor under an architecture name.
// The four built-in fabrics register themselves from their init functions;
// additional fabrics register the same way and become buildable through
// the root package without modifying it. Register panics on a duplicate
// name — architecture names are a flat global namespace.
func Register(kind string, b Builder) {
	if b == nil {
		panic("sim: Register with nil builder")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[kind]; dup {
		panic(fmt.Sprintf("sim: duplicate network registration %q", kind))
	}
	registry[kind] = b
}

// Build constructs the named architecture.
func Build(kind string, p BuildParams) (Network, error) {
	registryMu.RLock()
	b := registry[kind]
	registryMu.RUnlock()
	if b == nil {
		return nil, fmt.Errorf("sim: no network architecture registered as %q (have %v)", kind, RegisteredKinds())
	}
	return b(p)
}

// RegisteredKinds lists all registered architecture names, sorted.
func RegisteredKinds() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	kinds := make([]string, 0, len(registry))
	for k := range registry {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// The built-in fabrics satisfy Network (and, for the rotor fabrics,
// CircuitNetwork).
var (
	_ Network        = (*OperaNet)(nil)
	_ Network        = (*ExpanderNet)(nil)
	_ Network        = (*ClosNet)(nil)
	_ Network        = (*RotorNetSim)(nil)
	_ CircuitNetwork = (*OperaNet)(nil)
	_ CircuitNetwork = (*RotorNetSim)(nil)
	_ FaultNetwork   = (*OperaNet)(nil)
	_ FaultNetwork   = (*ExpanderNet)(nil)
	_ FaultNetwork   = (*RotorNetSim)(nil)
	_ FaultNetwork   = (*ClosNet)(nil)
	_ FaultInjector  = (*FailureState)(nil)
	_ FaultInjector  = (*ExpanderFaults)(nil)
	_ FaultInjector  = (*RotorFaults)(nil)
	_ FaultInjector  = (*ClosFaults)(nil)
)
