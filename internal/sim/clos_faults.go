package sim

import (
	"fmt"

	"github.com/opera-net/opera/internal/eventsim"
)

// This file closes the folded Clos fault gap: ClosFaults is the fourth
// FaultInjector, built on the structured coordinate space the flat
// (rack, sw) surface could not express. Cables live on two tiers —
// ClosTierToR (ToR→agg uplinks, Switch = ToR index) and ClosTierAgg
// (agg→core uplinks, Switch = agg index) — and switch targets address
// aggregation (ClosTierAgg) and core (ClosTierCore) switches; ToRs use
// ToRTarget like every other fabric. Tier-0 link coordinates are
// normalized to ClosTierToR so flat schedules (FlatLink(rack, up)) run
// unchanged on the Clos.
//
// The failure model matches the expander's: a static packet fabric where
// link-state knowledge is instant. ECMP spraying is failure-aware at
// each hop's local ports — a ToR sprays only over live uplinks, an agg
// only over live core uplinks — and the deterministic downward path
// drops packets at a dead hop (counted in LostToDeadLinks; NDP's
// trim/RTO machinery retransmits). When an element fails, every queue
// draining into it is emptied with failed-cable semantics through
// Port.DropAll, per tier: a tier-1 cut drains the ToR uplink and the
// agg's reverse down-port, a tier-2 cut drains the agg uplink and the
// core's reverse down-port, and switch failures drain every port
// touching the switch.

// ClosFaults implements FaultInjector for ClosNet.
type ClosFaults struct {
	faultCore
	net *ClosNet

	torLinkDown [][]bool // [tor][uplink]        (tier 1 cables)
	aggLinkDown [][]bool // [agg][core uplink]   (tier 2 cables)
	torDown     []bool
	aggDown     []bool
	coreDown    []bool

	// LostToDeadLinks counts packets dropped at a hop with no live next
	// hop plus control/low-latency packets drained from failed elements'
	// queues (bulk-class drops land in PortStats.BulkDrop).
	LostToDeadLinks uint64
}

func newClosFaults(n *ClosNet) *ClosFaults {
	cf := &ClosFaults{net: n}
	topo := n.topo
	cf.torLinkDown = make([][]bool, topo.NumToRs)
	for t := range cf.torLinkDown {
		cf.torLinkDown[t] = make([]bool, topo.UplinksPerToR)
	}
	cf.aggLinkDown = make([][]bool, topo.NumAgg)
	for a := range cf.aggLinkDown {
		cf.aggLinkDown[a] = make([]bool, topo.K/2)
	}
	cf.torDown = make([]bool, topo.NumToRs)
	cf.aggDown = make([]bool, topo.NumAgg)
	cf.coreDown = make([]bool, topo.NumCore)
	cf.faultCore.init(n.eng, n.faultSeed, cf)
	return cf
}

// Faults returns the network's failure state, creating it lazily. A nil
// (never-created) state keeps the no-fault forwarding paths untouched.
func (n *ClosNet) Faults() *ClosFaults {
	if n.faults == nil {
		n.faults = newClosFaults(n)
	}
	return n.faults
}

// FaultInjector implements FaultNetwork.
func (n *ClosNet) FaultInjector() FaultInjector { return n.Faults() }

// Wiring arithmetic. NewFoldedClos guarantees AggPerPod == UplinksPerToR
// (each ToR has exactly one cable to each agg of its pod) and
// NumCore == AggPerPod·(K/2) (each agg position's uplinks land on a
// disjoint group of K/2 cores), so every reverse port is unique.

// aggOf returns the agg index terminating ToR t's uplink i.
func (cf *ClosFaults) aggOf(t, i int) int {
	topo := cf.net.topo
	return topo.ToRPod(t)*topo.AggPerPod + i
}

// coreOf returns the core index terminating agg a's uplink j.
func (cf *ClosFaults) coreOf(a, j int) int {
	topo := cf.net.topo
	return (a%topo.AggPerPod)*(topo.K/2) + j
}

// torUplinkUp reports whether ToR t can launch up its uplink i.
func (cf *ClosFaults) torUplinkUp(t, i int) bool {
	return !cf.torDown[t] && !cf.torLinkDown[t][i] && !cf.aggDown[cf.aggOf(t, i)]
}

// aggUplinkUp reports whether agg a can launch up its core uplink j.
func (cf *ClosFaults) aggUplinkUp(a, j int) bool {
	return !cf.aggDown[a] && !cf.aggLinkDown[a][j] && !cf.coreDown[cf.coreOf(a, j)]
}

// aggDownToTor reports whether agg a can deliver down to ToR t (the
// reverse direction of t's tier-1 cable to a).
func (cf *ClosFaults) aggDownToTor(a, t int) bool {
	return !cf.aggDown[a] && !cf.torDown[t] && !cf.torLinkDown[t][a%cf.net.topo.AggPerPod]
}

// coreDownToAgg reports whether core c can deliver down to the agg of
// the given pod (the reverse direction of that agg's tier-2 cable to c).
func (cf *ClosFaults) coreDownToAgg(c, pod int) bool {
	topo := cf.net.topo
	a := pod*topo.AggPerPod + (c/(topo.K/2))%topo.AggPerPod
	return !cf.coreDown[c] && !cf.aggDown[a] && !cf.aggLinkDown[a][c%(topo.K/2)]
}

// canon normalizes flat Tier-0 link coordinates to the ToR-uplink tier,
// so flat fault schedules address Clos ToR uplinks like any other
// fabric's rack uplinks. Canonicalizing before dispatch keeps flap
// generations and recoveries keyed consistently.
func (cf *ClosFaults) canon(t Target) Target {
	if t.Kind == TargetLink && t.Link.Tier == 0 {
		t.Link.Tier = ClosTierToR
	}
	return t
}

// Inject implements FaultInjector.
func (cf *ClosFaults) Inject(t Target, f Fault, at eventsim.Time) error {
	return cf.faultCore.inject(cf.canon(t), f, at)
}

// Recover implements FaultInjector.
func (cf *ClosFaults) Recover(t Target, at eventsim.Time) error {
	return cf.faultCore.recover(cf.canon(t), at)
}

// Links enumerates every cable: all tier-1 ToR uplinks (ToR-major), then
// all tier-2 agg uplinks (agg-major).
func (cf *ClosFaults) Links() []LinkID {
	topo := cf.net.topo
	out := make([]LinkID, 0, topo.NumToRs*topo.UplinksPerToR+topo.NumAgg*(topo.K/2))
	for t := 0; t < topo.NumToRs; t++ {
		for i := 0; i < topo.UplinksPerToR; i++ {
			out = append(out, LinkID{Tier: ClosTierToR, Switch: t, Port: i})
		}
	}
	for a := 0; a < topo.NumAgg; a++ {
		for j := 0; j < topo.K/2; j++ {
			out = append(out, LinkID{Tier: ClosTierAgg, Switch: a, Port: j})
		}
	}
	return out
}

// checkTarget implements fabricFaultOps.
func (cf *ClosFaults) checkTarget(t Target) error {
	topo := cf.net.topo
	switch t.Kind {
	case TargetLink:
		switch t.Link.Tier {
		case ClosTierToR:
			if t.Link.Switch < 0 || t.Link.Switch >= topo.NumToRs {
				return fmt.Errorf("sim: %v: ToR %d out of range [0,%d)", t, t.Link.Switch, topo.NumToRs)
			}
			if t.Link.Port < 0 || t.Link.Port >= topo.UplinksPerToR {
				return fmt.Errorf("sim: %v: ToR uplink %d out of range [0,%d)", t, t.Link.Port, topo.UplinksPerToR)
			}
		case ClosTierAgg:
			if t.Link.Switch < 0 || t.Link.Switch >= topo.NumAgg {
				return fmt.Errorf("sim: %v: agg %d out of range [0,%d)", t, t.Link.Switch, topo.NumAgg)
			}
			if t.Link.Port < 0 || t.Link.Port >= topo.K/2 {
				return fmt.Errorf("sim: %v: agg uplink %d out of range [0,%d)", t, t.Link.Port, topo.K/2)
			}
		default:
			return fmt.Errorf("sim: %v: clos cables live on tiers %d (ToR uplinks) and %d (agg uplinks)",
				t, ClosTierToR, ClosTierAgg)
		}
	case TargetToR:
		if t.ID < 0 || t.ID >= topo.NumToRs {
			return fmt.Errorf("sim: %v: ToR %d out of range [0,%d)", t, t.ID, topo.NumToRs)
		}
	case TargetSwitch:
		switch t.Tier {
		case ClosTierAgg:
			if t.ID < 0 || t.ID >= topo.NumAgg {
				return fmt.Errorf("sim: %v: agg %d out of range [0,%d)", t, t.ID, topo.NumAgg)
			}
		case ClosTierCore:
			if t.ID < 0 || t.ID >= topo.NumCore {
				return fmt.Errorf("sim: %v: core %d out of range [0,%d)", t, t.ID, topo.NumCore)
			}
		default:
			return fmt.Errorf("sim: %v on foldedclos: %w (switch targets need an explicit tier: %d = agg, %d = core; ToRs use ToRTarget)",
				t, ErrUnsupportedTarget, ClosTierAgg, ClosTierCore)
		}
	default:
		return fmt.Errorf("sim: %v: unknown target kind", t)
	}
	return nil
}

// linkPorts implements fabricFaultOps: one physical cable, two
// directional ports.
func (cf *ClosFaults) linkPorts(l LinkID) []*Port {
	n := cf.net
	topo := n.topo
	if l.Tier == ClosTierToR {
		t, i := l.Switch, l.Port
		agg := n.aggs[cf.aggOf(t, i)]
		return []*Port{n.tors[t].up[i], agg.down[t%topo.ToRsPerPod]}
	}
	a, j := l.Switch, l.Port
	core := n.cores[cf.coreOf(a, j)]
	return []*Port{n.aggs[a].up[j], core.down[a/topo.AggPerPod]}
}

// drop runs a failed-element drain on a port, folding control and
// low-latency losses into LostToDeadLinks.
func (cf *ClosFaults) drop(pt *Port) { cf.LostToDeadLinks += pt.DropAll() }

// lose counts and releases a packet that reached a hop with no live next
// hop; transports recover through retransmission.
func (cf *ClosFaults) lose(p *Packet) {
	cf.LostToDeadLinks++
	p.Release()
}

// setDown implements fabricFaultOps: instant link-state knowledge (the
// forwarding paths read the liveness helpers live), plus per-tier drains
// through Port.DropAll on the way down. Recoveries are pure state flips.
func (cf *ClosFaults) setDown(t Target, down bool) {
	n := cf.net
	topo := n.topo
	switch t.Kind {
	case TargetLink:
		if t.Link.Tier == ClosTierToR {
			tor, i := t.Link.Switch, t.Link.Port
			cf.torLinkDown[tor][i] = down
			if down {
				cf.drop(n.tors[tor].up[i])
				cf.drop(n.aggs[cf.aggOf(tor, i)].down[tor%topo.ToRsPerPod])
			}
		} else {
			a, j := t.Link.Switch, t.Link.Port
			cf.aggLinkDown[a][j] = down
			if down {
				cf.drop(n.aggs[a].up[j])
				cf.drop(n.cores[cf.coreOf(a, j)].down[a/topo.AggPerPod])
			}
		}
	case TargetToR:
		tor := t.ID
		cf.torDown[tor] = down
		if down {
			for i, pt := range n.tors[tor].up {
				cf.drop(pt)
				cf.drop(n.aggs[cf.aggOf(tor, i)].down[tor%topo.ToRsPerPod])
			}
		}
	case TargetSwitch:
		if t.Tier == ClosTierAgg {
			a := t.ID
			cf.aggDown[a] = down
			if down {
				agg := n.aggs[a]
				pod, inPod := a/topo.AggPerPod, a%topo.AggPerPod
				for _, pt := range agg.down {
					cf.drop(pt)
				}
				for j, pt := range agg.up {
					cf.drop(pt)
					cf.drop(n.cores[cf.coreOf(a, j)].down[pod])
				}
				for tt := pod * topo.ToRsPerPod; tt < (pod+1)*topo.ToRsPerPod; tt++ {
					cf.drop(n.tors[tt].up[inPod])
				}
			}
		} else {
			c := t.ID
			cf.coreDown[c] = down
			if down {
				core := n.cores[c]
				for pod, pt := range core.down {
					cf.drop(pt)
					a := pod*topo.AggPerPod + (c/(topo.K/2))%topo.AggPerPod
					cf.drop(n.aggs[a].up[c%(topo.K/2)])
				}
			}
		}
	}
}
