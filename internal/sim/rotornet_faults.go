package sim

import (
	"fmt"

	"github.com/opera-net/opera/internal/eventsim"
)

// This file brings runtime fault injection to RotorNet. The
// failure-information model is simpler than Opera's epidemic: RotorNet
// assumes an out-of-band management channel to keep its rotors
// slot-synchronized (this simulator models that channel explicitly — the
// 2 µs path RotorLB NACKs ride in the non-hybrid variant), and failure
// news is assumed to travel it too. Knowledge is therefore global and
// immediate: from the failure instant every ToR routes around dead
// circuits. Concretely, when a rack↔rotor-switch cable fails:
//
//   - ToRs stop selecting the dead circuit (DirectSwitch hits are vetoed,
//     ActiveCircuits excludes it), so RotorLB offloads stranded queues via
//     VLB relays or NACKs mistimed packets as usual (§4.2.2);
//   - packets already queued on the dead uplink are lost when their
//     transmission resolves no peer (bulk takes the NACK path, counted in
//     LostToDeadCircuits otherwise);
//   - a transmission already on the wire still delivers.
//
// ToR failures darken every rotor circuit of the rack; its hosts become
// unreachable from other racks while rack-local traffic still flows. In
// the hybrid variant the dedicated packet fabric is a separate network
// (the +33%-cost addition of §5.1) and is not modelled as failing with
// the rotor side. Switch failures take a whole rotor switch — one uplink
// per ToR — out of rotation.
//
// One RotorLB model gap is surfaced rather than fixed: VLB bytes parked
// at a relay whose second leg then dies are not re-offloaded to a third
// rack — they wait at the relay until the destination becomes directly
// reachable again. StrandedBytes (wired by Cluster.Faults) reports them.

// RotorFaults implements FaultInjector for RotorNetSim. Tier-0 link
// coordinates are {rack, rotor switch} with the switch in
// [0, NumSwitches) — the hybrid variant's packet uplink is not a fault
// coordinate. Gray impairments (lossy/degraded) apply to the named
// rack's uplink port.
type RotorFaults struct {
	faultCore
	net *RotorNetSim

	linkDown [][]bool // [rack][switch]
	torDown  []bool
	swDown   []bool

	// LostToDeadCircuits counts packets that sailed into a failed circuit
	// (all classes, like Opera's LostToDeadLinks): bulk ones are then
	// recovered through the §4.2.2 NACK path, control/low-latency ones
	// rely on transport retransmission.
	LostToDeadCircuits uint64
}

func newRotorFaults(n *RotorNetSim) *RotorFaults {
	rf := &RotorFaults{net: n}
	rf.linkDown = make([][]bool, n.topo.NumRacks)
	for r := range rf.linkDown {
		rf.linkDown[r] = make([]bool, n.topo.NumSwitches)
	}
	rf.torDown = make([]bool, n.topo.NumRacks)
	rf.swDown = make([]bool, n.topo.NumSwitches)
	rf.faultCore.init(n.eng, n.faultSeed, rf)
	return rf
}

// Faults returns the network's failure state, creating it lazily.
func (n *RotorNetSim) Faults() *RotorFaults {
	if n.faults == nil {
		n.faults = newRotorFaults(n)
	}
	return n.faults
}

// FaultInjector implements FaultNetwork.
func (n *RotorNetSim) FaultInjector() FaultInjector { return n.Faults() }

// Uplinks returns the rotor-switch count — the range of the flat link and
// switch coordinates.
func (n *RotorNetSim) Uplinks() int { return n.topo.NumSwitches }

// LinkUp reports whether the rack↔rotor-switch cable is intact and both
// ends functional.
func (rf *RotorFaults) LinkUp(rack, sw int) bool {
	return !rf.linkDown[rack][sw] && !rf.torDown[rack] && !rf.swDown[sw]
}

// Inject implements FaultInjector.
func (rf *RotorFaults) Inject(t Target, f Fault, at eventsim.Time) error {
	return rf.faultCore.inject(t, f, at)
}

// Recover implements FaultInjector.
func (rf *RotorFaults) Recover(t Target, at eventsim.Time) error {
	return rf.faultCore.recover(t, at)
}

// Links enumerates every rack↔rotor-switch cable, rack-major.
func (rf *RotorFaults) Links() []LinkID {
	topo := rf.net.topo
	out := make([]LinkID, 0, topo.NumRacks*topo.NumSwitches)
	for rack := 0; rack < topo.NumRacks; rack++ {
		for sw := 0; sw < topo.NumSwitches; sw++ {
			out = append(out, FlatLink(rack, sw))
		}
	}
	return out
}

// checkTarget implements fabricFaultOps.
func (rf *RotorFaults) checkTarget(t Target) error {
	topo := rf.net.topo
	switch t.Kind {
	case TargetLink:
		if t.Link.Tier != 0 {
			return fmt.Errorf("sim: rotornet links are flat {rack, rotor switch}; got %v", t.Link)
		}
		if t.Link.Switch < 0 || t.Link.Switch >= topo.NumRacks {
			return fmt.Errorf("sim: %v: rack %d out of range [0,%d)", t, t.Link.Switch, topo.NumRacks)
		}
		if t.Link.Port < 0 || t.Link.Port >= topo.NumSwitches {
			return fmt.Errorf("sim: %v: rotor switch %d out of range [0,%d)", t, t.Link.Port, topo.NumSwitches)
		}
	case TargetToR:
		if t.ID < 0 || t.ID >= topo.NumRacks {
			return fmt.Errorf("sim: %v: rack %d out of range [0,%d)", t, t.ID, topo.NumRacks)
		}
	case TargetSwitch:
		if t.Tier != 0 {
			return fmt.Errorf("sim: %v: rotornet switches live on tier 0 (the rotor plane)", t)
		}
		if t.ID < 0 || t.ID >= topo.NumSwitches {
			return fmt.Errorf("sim: %v: rotor switch %d out of range [0,%d)", t, t.ID, topo.NumSwitches)
		}
	default:
		return fmt.Errorf("sim: %v: unknown target kind", t)
	}
	return nil
}

// linkPorts implements fabricFaultOps: gray impairments ride the named
// rack's uplink port toward the rotor switch.
func (rf *RotorFaults) linkPorts(l LinkID) []*Port {
	return []*Port{rf.net.tors[l.Switch].up[l.Port]}
}

// setDown implements fabricFaultOps: instant global knowledge, so the
// transition is a pure state flip — routing reads LinkUp live.
func (rf *RotorFaults) setDown(t Target, down bool) {
	switch t.Kind {
	case TargetLink:
		rf.linkDown[t.Link.Switch][t.Link.Port] = down
	case TargetToR:
		rf.torDown[t.ID] = down
	case TargetSwitch:
		rf.swDown[t.ID] = down
	}
}

// FailLink schedules the rack↔rotor-switch cable to fail at the given
// time.
//
// Deprecated: use Inject(LinkTarget(FlatLink(rack, sw)), DownFault(), at).
func (rf *RotorFaults) FailLink(rack, sw int, at eventsim.Time) {
	mustInject(rf.Inject(LinkTarget(FlatLink(rack, sw)), DownFault(), at))
}

// RecoverLink schedules the cable back up; circuits over it are used
// again from the next slot that installs them.
//
// Deprecated: use Recover(LinkTarget(FlatLink(rack, sw)), at).
func (rf *RotorFaults) RecoverLink(rack, sw int, at eventsim.Time) {
	mustInject(rf.Recover(LinkTarget(FlatLink(rack, sw)), at))
}

// FailToR schedules a whole ToR to fail: all of its rotor circuits go
// dark and its hosts become unreachable from other racks (rack-local
// traffic still flows).
//
// Deprecated: use Inject(ToRTarget(rack), DownFault(), at).
func (rf *RotorFaults) FailToR(rack int, at eventsim.Time) {
	mustInject(rf.Inject(ToRTarget(rack), DownFault(), at))
}

// RecoverToR schedules a failed ToR back online.
//
// Deprecated: use Recover(ToRTarget(rack), at).
func (rf *RotorFaults) RecoverToR(rack int, at eventsim.Time) {
	mustInject(rf.Recover(ToRTarget(rack), at))
}

// FailSwitch schedules a rotor switch to fail entirely: one uplink per
// ToR leaves the rotation.
//
// Deprecated: use Inject(SwitchTarget(sw), DownFault(), at).
func (rf *RotorFaults) FailSwitch(sw int, at eventsim.Time) {
	mustInject(rf.Inject(SwitchTarget(sw), DownFault(), at))
}

// RecoverSwitch schedules a failed rotor switch back into rotation.
//
// Deprecated: use Recover(SwitchTarget(sw), at).
func (rf *RotorFaults) RecoverSwitch(sw int, at eventsim.Time) {
	mustInject(rf.Recover(SwitchTarget(sw), at))
}
