package sim

import "github.com/opera-net/opera/internal/eventsim"

// This file brings runtime fault injection to RotorNet — the third fabric
// to implement FaultInjector after Opera (§3.6.2's detection-and-epidemic
// model) and the static expander (instant link-state reconvergence). The
// folded Clos remains the one fabric without an injector: its links need
// multi-tier coordinates (tier, switch, port) that the flat (rack, sw)
// FaultInjector surface cannot name, so it stays deferred.
//
// The failure-information model is simpler than Opera's epidemic: RotorNet
// assumes an out-of-band management channel to keep its rotors
// slot-synchronized (this simulator models that channel explicitly — the
// 2 µs path RotorLB NACKs ride in the non-hybrid variant), and failure
// news is assumed to travel it too. Knowledge is therefore global and
// immediate: from the failure instant every ToR routes around dead
// circuits. Concretely, when a rack↔rotor-switch cable fails:
//
//   - ToRs stop selecting the dead circuit (DirectSwitch hits are vetoed,
//     ActiveCircuits excludes it), so RotorLB offloads stranded queues via
//     VLB relays or NACKs mistimed packets as usual (§4.2.2);
//   - packets already queued on the dead uplink are lost when their
//     transmission resolves no peer (bulk takes the NACK path, counted in
//     LostToDeadCircuits otherwise);
//   - a transmission already on the wire still delivers.
//
// ToR failures darken every rotor circuit of the rack; its hosts become
// unreachable from other racks while rack-local traffic still flows. In
// the hybrid variant the dedicated packet fabric is a separate network
// (the +33%-cost addition of §5.1) and is not modelled as failing with
// the rotor side. Switch failures take a whole rotor switch — one uplink
// per ToR — out of rotation.

// RotorFaults implements FaultInjector for RotorNetSim. The sw coordinate
// of FailLink/FailSwitch names a rotor switch in [0, NumSwitches) — the
// hybrid variant's packet uplink is not a fault coordinate.
type RotorFaults struct {
	net *RotorNetSim

	linkDown [][]bool // [rack][switch]
	torDown  []bool
	swDown   []bool

	// LostToDeadCircuits counts packets that sailed into a failed circuit
	// (all classes, like Opera's LostToDeadLinks): bulk ones are then
	// recovered through the §4.2.2 NACK path, control/low-latency ones
	// rely on transport retransmission.
	LostToDeadCircuits uint64
}

func newRotorFaults(n *RotorNetSim) *RotorFaults {
	rf := &RotorFaults{net: n}
	rf.linkDown = make([][]bool, n.topo.NumRacks)
	for r := range rf.linkDown {
		rf.linkDown[r] = make([]bool, n.topo.NumSwitches)
	}
	rf.torDown = make([]bool, n.topo.NumRacks)
	rf.swDown = make([]bool, n.topo.NumSwitches)
	return rf
}

// Faults returns the network's failure state, creating it lazily.
func (n *RotorNetSim) Faults() *RotorFaults {
	if n.faults == nil {
		n.faults = newRotorFaults(n)
	}
	return n.faults
}

// FaultInjector implements FaultNetwork.
func (n *RotorNetSim) FaultInjector() FaultInjector { return n.Faults() }

// Uplinks returns the rotor-switch count — the range of the FailLink and
// FailSwitch sw coordinate.
func (n *RotorNetSim) Uplinks() int { return n.topo.NumSwitches }

// LinkUp reports whether the rack↔rotor-switch cable is intact and both
// ends functional.
func (rf *RotorFaults) LinkUp(rack, sw int) bool {
	return !rf.linkDown[rack][sw] && !rf.torDown[rack] && !rf.swDown[sw]
}

// FailLink schedules the rack↔rotor-switch cable to fail at the given
// time.
func (rf *RotorFaults) FailLink(rack, sw int, at eventsim.Time) {
	rf.net.eng.At(at, func() { rf.linkDown[rack][sw] = true })
}

// RecoverLink schedules the cable back up; circuits over it are used
// again from the next slot that installs them.
func (rf *RotorFaults) RecoverLink(rack, sw int, at eventsim.Time) {
	rf.net.eng.At(at, func() { rf.linkDown[rack][sw] = false })
}

// FailToR schedules a whole ToR to fail: all of its rotor circuits go
// dark and its hosts become unreachable from other racks (rack-local
// traffic still flows).
func (rf *RotorFaults) FailToR(rack int, at eventsim.Time) {
	rf.net.eng.At(at, func() { rf.torDown[rack] = true })
}

// RecoverToR schedules a failed ToR back online.
func (rf *RotorFaults) RecoverToR(rack int, at eventsim.Time) {
	rf.net.eng.At(at, func() { rf.torDown[rack] = false })
}

// FailSwitch schedules a rotor switch to fail entirely: one uplink per
// ToR leaves the rotation.
func (rf *RotorFaults) FailSwitch(sw int, at eventsim.Time) {
	rf.net.eng.At(at, func() { rf.swDown[sw] = true })
}

// RecoverSwitch schedules a failed rotor switch back into rotation.
func (rf *RotorFaults) RecoverSwitch(sw int, at eventsim.Time) {
	rf.net.eng.At(at, func() { rf.swDown[sw] = false })
}
