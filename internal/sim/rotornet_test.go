package sim_test

import (
	"testing"

	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/sim"
	"github.com/opera-net/opera/internal/topology"
)

func rotorSim(t *testing.T, hybrid bool) *sim.RotorNetSim {
	t.Helper()
	topo := topology.MustNewRotorNet(topology.RotorConfig{
		NumRacks: 16, HostsPerRack: 4, Uplinks: 4, Hybrid: hybrid, Seed: 1,
	})
	eng := eventsim.New()
	return sim.NewRotorNetSim(eng, sim.DefaultConfig(), topo, 1)
}

func TestRotorNetActiveCircuits(t *testing.T) {
	n := rotorSim(t, false)
	for slot := int64(0); slot < int64(n.Topology().SlotsPerCycle()); slot++ {
		for rack := 0; rack < 16; rack++ {
			cs := n.ActiveCircuits(slot, rack)
			// Up to 4 circuits (self-loops excluded), all sharing the
			// unison window.
			if len(cs) > 4 {
				t.Fatalf("slot %d rack %d: %d circuits", slot, rack, len(cs))
			}
			for _, c := range cs {
				if c.Peer == rack {
					t.Fatal("self circuit listed")
				}
				ws, we := n.Topology().BulkWindow()
				if c.WindowStart != ws || c.WindowEnd != we {
					t.Fatalf("window mismatch: [%v,%v] vs [%v,%v]", c.WindowStart, c.WindowEnd, ws, we)
				}
			}
		}
	}
}

func TestRotorNetDirectReachable(t *testing.T) {
	n := rotorSim(t, false)
	if n.DirectReachable(3, 3) {
		t.Fatal("self pair reachable")
	}
	if !n.DirectReachable(0, 5) {
		t.Fatal("pair should be reachable without failures")
	}
}

func TestRotorNetSlotClockUnison(t *testing.T) {
	n := rotorSim(t, false)
	n.Start()
	eng := n.Engine()
	topo := n.Topology()
	// Mid-slot: every rotor uplink of every ToR enabled.
	eng.RunUntil(topo.SlotDuration / 2)
	for r := 0; r < 16; r++ {
		tor := torOf(n, r)
		for sw := 0; sw < 4; sw++ {
			if !tor.Uplink(sw).Enabled() {
				t.Fatalf("rack %d uplink %d disabled mid-slot", r, sw)
			}
		}
	}
	// During the unison blackout (final r of the slot): all disabled.
	eng.RunUntil(topo.SlotDuration - topo.ReconfDelay/2)
	for r := 0; r < 16; r++ {
		tor := torOf(n, r)
		for sw := 0; sw < 4; sw++ {
			if tor.Uplink(sw).Enabled() {
				t.Fatalf("rack %d uplink %d enabled during blackout", r, sw)
			}
		}
	}
	// Next slot: re-enabled.
	eng.RunUntil(topo.SlotDuration + topo.SlotDuration/4)
	for sw := 0; sw < 4; sw++ {
		if !torOf(n, 0).Uplink(sw).Enabled() {
			t.Fatalf("uplink %d not re-enabled after boundary", sw)
		}
	}
}

func TestRotorNetSliceListener(t *testing.T) {
	n := rotorSim(t, false)
	var slots []int64
	n.OnSlice(func(s int64) { slots = append(slots, s) })
	n.Start()
	n.Engine().RunUntil(5 * n.Topology().SlotDuration)
	if len(slots) < 5 {
		t.Fatalf("listener saw %d slots", len(slots))
	}
	for i, s := range slots {
		if s != int64(i) {
			t.Fatalf("slot sequence %v", slots)
		}
	}
	n.Stop()
}

func TestRotorNetHybridFabricPorts(t *testing.T) {
	n := rotorSim(t, true)
	if n.Topology().NumSwitches != 3 {
		t.Fatalf("hybrid should run 3 rotor switches, got %d", n.Topology().NumSwitches)
	}
}

// torOf exposes the package-internal ToR accessor via the exported uplink
// API on RotorToR.
func torOf(n *sim.RotorNetSim, rack int) *sim.RotorToR { return n.ToR(rack) }
