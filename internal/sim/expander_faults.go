package sim

import (
	"fmt"

	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/routing"
)

// This file brings runtime link and ToR failures to the static expander,
// so fault scenarios (scenario.At(t, FailLink…)) run on the baselines too.
//
// The failure model is simpler than Opera's §3.6.2 epidemic: a static
// fabric's ToRs sit on an always-on packet network, where link-state
// flooding converges within a handful of RTTs — far below this
// simulator's 100 µs observation granularity — so recomputation is
// modelled as instant. Concretely, when a cable fails:
//
//   - every ToR immediately routes around it (the shared shortest-path
//     tables are rebuilt against the surviving topology);
//   - packets queued on the dead cable are lost (bulk-class NDP data
//     takes the usual drop path; NDP's trimming/RTO machinery
//     retransmits what was lost);
//   - a transmission already on the wire still delivers.
//
// ToR failures are modelled as all of the ToR's fabric cables going dark.
// Switch targets have no referent here — the expander has no fabric
// switches — so Inject/Recover on a switch target return an
// ErrUnsupportedTarget diagnostic (the deprecated FailSwitch shim stays a
// silent no-op for compatibility with the old flat surface).

// ExpanderFaults implements FaultInjector for ExpanderNet. Tier-0 link
// coordinates name a ToR's neighbor slot: FlatLink(r, i) is the cable
// between rack r and its i-th expander neighbor (both directions — it is
// one physical cable, and gray impairments apply to both end ports).
type ExpanderFaults struct {
	faultCore
	net *ExpanderNet

	linkDown [][]bool // [rack][neighbor slot], marked symmetrically
	torDown  []bool

	// LostToFailedLinks counts control/low-latency packets dropped from
	// failed cables' queues (bulk-class drops land in PortStats.BulkDrop).
	LostToFailedLinks uint64
}

func newExpanderFaults(n *ExpanderNet) *ExpanderFaults {
	ef := &ExpanderFaults{net: n}
	ef.linkDown = make([][]bool, n.topo.NumRacks)
	for r := range ef.linkDown {
		ef.linkDown[r] = make([]bool, len(n.topo.G.Neighbors(r)))
	}
	ef.torDown = make([]bool, n.topo.NumRacks)
	ef.faultCore.init(n.eng, n.faultSeed, ef)
	return ef
}

// Faults returns the network's failure state, creating it lazily.
func (n *ExpanderNet) Faults() *ExpanderFaults {
	if n.faults == nil {
		n.faults = newExpanderFaults(n)
	}
	return n.faults
}

// FaultInjector implements FaultNetwork.
func (n *ExpanderNet) FaultInjector() FaultInjector { return n.Faults() }

// Uplinks returns the fabric degree u — the number of neighbor slots the
// flat link coordinate ranges over.
func (n *ExpanderNet) Uplinks() int { return n.topo.Degree }

// LinkUp reports whether rack's i-th fabric cable is intact and both end
// ToRs are alive.
func (ef *ExpanderFaults) LinkUp(rack, slot int) bool {
	peer := int(ef.net.topo.G.Neighbors(rack)[slot])
	return !ef.linkDown[rack][slot] && !ef.torDown[rack] && !ef.torDown[peer]
}

// peerSlot finds the reverse slot: the index of rack in peer's neighbor
// list (the graph is simple, so it is unique).
func (ef *ExpanderFaults) peerSlot(rack, slot int) (peer, rev int) {
	peer = int(ef.net.topo.G.Neighbors(rack)[slot])
	for j, nb := range ef.net.topo.G.Neighbors(peer) {
		if int(nb) == rack {
			return peer, j
		}
	}
	panic("sim: expander neighbor lists asymmetric")
}

// Inject implements FaultInjector. Switch targets return an
// ErrUnsupportedTarget diagnostic: the expander has no fabric switches.
func (ef *ExpanderFaults) Inject(t Target, f Fault, at eventsim.Time) error {
	return ef.faultCore.inject(t, f, at)
}

// Recover implements FaultInjector.
func (ef *ExpanderFaults) Recover(t Target, at eventsim.Time) error {
	return ef.faultCore.recover(t, at)
}

// Links enumerates one canonical coordinate per physical cable (from the
// lower-numbered end ToR), in deterministic order. The expander's
// (rack, slot) space names every cable twice — once from each end — and
// a Down fault cuts the whole cable, so random-failure sweeps must
// sample from this deduplicated universe or they would fail roughly
// twice the requested fraction.
func (ef *ExpanderFaults) Links() []LinkID {
	var out []LinkID
	for r := 0; r < ef.net.topo.NumRacks; r++ {
		for slot, nb := range ef.net.topo.G.Neighbors(r) {
			if int(nb) > r {
				out = append(out, FlatLink(r, slot))
			}
		}
	}
	return out
}

// checkTarget implements fabricFaultOps.
func (ef *ExpanderFaults) checkTarget(t Target) error {
	topo := ef.net.topo
	switch t.Kind {
	case TargetLink:
		if t.Link.Tier != 0 {
			return fmt.Errorf("sim: expander links are flat {rack, neighbor slot}; got %v", t.Link)
		}
		if t.Link.Switch < 0 || t.Link.Switch >= topo.NumRacks {
			return fmt.Errorf("sim: %v: rack %d out of range [0,%d)", t, t.Link.Switch, topo.NumRacks)
		}
		if n := len(topo.G.Neighbors(t.Link.Switch)); t.Link.Port < 0 || t.Link.Port >= n {
			return fmt.Errorf("sim: %v: neighbor slot %d out of range [0,%d)", t, t.Link.Port, n)
		}
	case TargetToR:
		if t.ID < 0 || t.ID >= topo.NumRacks {
			return fmt.Errorf("sim: %v: rack %d out of range [0,%d)", t, t.ID, topo.NumRacks)
		}
	case TargetSwitch:
		return fmt.Errorf("sim: %v on expander: %w (its links connect ToRs directly; use a link or ToR target)",
			t, ErrUnsupportedTarget)
	default:
		return fmt.Errorf("sim: %v: unknown target kind", t)
	}
	return nil
}

// linkPorts implements fabricFaultOps: one physical cable, two ports.
func (ef *ExpanderFaults) linkPorts(l LinkID) []*Port {
	peer, rev := ef.peerSlot(l.Switch, l.Port)
	return []*Port{ef.net.tors[l.Switch].up[l.Port], ef.net.tors[peer].up[rev]}
}

// setDown implements fabricFaultOps: instant reconvergence plus
// failed-cable drains (see the file comment).
func (ef *ExpanderFaults) setDown(t Target, down bool) {
	switch t.Kind {
	case TargetLink:
		rack, slot := t.Link.Switch, t.Link.Port
		peer, rev := ef.peerSlot(rack, slot)
		ef.linkDown[rack][slot] = down
		ef.linkDown[peer][rev] = down
		ef.rebuild()
		if down {
			ef.LostToFailedLinks += ef.net.tors[rack].up[slot].DropAll()
			ef.LostToFailedLinks += ef.net.tors[peer].up[rev].DropAll()
		}
	case TargetToR:
		rack := t.ID
		ef.torDown[rack] = down
		ef.rebuild()
		if down {
			for slot, pt := range ef.net.tors[rack].up {
				ef.LostToFailedLinks += pt.DropAll()
				peer, rev := ef.peerSlot(rack, slot)
				ef.LostToFailedLinks += ef.net.tors[peer].up[rev].DropAll()
			}
		}
	}
}

// FailLink schedules the rack↔neighbor-slot cable to fail at the given
// time.
//
// Deprecated: use Inject(LinkTarget(FlatLink(rack, slot)), DownFault(), at).
func (ef *ExpanderFaults) FailLink(rack, slot int, at eventsim.Time) {
	mustInject(ef.Inject(LinkTarget(FlatLink(rack, slot)), DownFault(), at))
}

// RecoverLink schedules the cable back up.
//
// Deprecated: use Recover(LinkTarget(FlatLink(rack, slot)), at).
func (ef *ExpanderFaults) RecoverLink(rack, slot int, at eventsim.Time) {
	mustInject(ef.Recover(LinkTarget(FlatLink(rack, slot)), at))
}

// FailToR schedules a whole ToR to drop off the fabric: every one of its
// expander cables goes dark and its hosts become unreachable from other
// racks (rack-local traffic still flows).
//
// Deprecated: use Inject(ToRTarget(rack), DownFault(), at).
func (ef *ExpanderFaults) FailToR(rack int, at eventsim.Time) {
	mustInject(ef.Inject(ToRTarget(rack), DownFault(), at))
}

// RecoverToR schedules a failed ToR back online.
//
// Deprecated: use Recover(ToRTarget(rack), at).
func (ef *ExpanderFaults) RecoverToR(rack int, at eventsim.Time) {
	mustInject(ef.Recover(ToRTarget(rack), at))
}

// FailSwitch is a no-op: the expander has no fabric switches to fail.
//
// Deprecated: the structured surface reports this properly —
// Inject(SwitchTarget(sw), …) returns ErrUnsupportedTarget instead of
// silently doing nothing.
func (ef *ExpanderFaults) FailSwitch(sw int, at eventsim.Time) {}

// RecoverSwitch is a no-op; see FailSwitch.
//
// Deprecated: see FailSwitch.
func (ef *ExpanderFaults) RecoverSwitch(sw int, at eventsim.Time) {}

// DistinctLinks enumerates one canonical (rack, slot) coordinate per
// physical cable, in deterministic order.
//
// Deprecated: use Links, which returns the same universe as LinkIDs.
func (ef *ExpanderFaults) DistinctLinks() [][2]int {
	links := ef.Links()
	out := make([][2]int, len(links))
	for i, l := range links {
		out[i] = [2]int{l.Switch, l.Port}
	}
	return out
}

// rebuild recomputes the shared shortest-path tables against the
// surviving topology — instant convergence, per the model above.
func (ef *ExpanderFaults) rebuild() {
	maps := routing.ExpanderPortMap(ef.net.topo)
	pm := maps[0]
	for r := range pm {
		for slot, peer := range pm[r] {
			if peer < 0 {
				continue
			}
			if !ef.LinkUp(r, slot) {
				pm[r][slot] = -1
			}
		}
	}
	ef.net.tables = routing.MustBuild(maps)
}
