package sim

import (
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/routing"
)

// This file brings runtime link and ToR failures to the static expander —
// the first FaultInjector beyond Opera's rotor fabric, so fault scenarios
// (scenario.At(t, FailLink…)) run on the baselines too.
//
// The failure model is simpler than Opera's §3.6.2 epidemic: a static
// fabric's ToRs sit on an always-on packet network, where link-state
// flooding converges within a handful of RTTs — far below this
// simulator's 100 µs observation granularity — so recomputation is
// modelled as instant. Concretely, when a cable fails:
//
//   - every ToR immediately routes around it (the shared shortest-path
//     tables are rebuilt against the surviving topology);
//   - packets queued on the dead cable are lost (bulk-class NDP data
//     takes the usual drop path; NDP's trimming/RTO machinery
//     retransmits what was lost);
//   - a transmission already on the wire still delivers.
//
// ToR failures are modelled as all of the ToR's fabric cables going dark.
// Switch failures have no referent here — the expander has no fabric
// switches — so FailSwitch/RecoverSwitch are documented no-ops.

// ExpanderFaults implements FaultInjector for ExpanderNet. The "switch"
// coordinate of FailLink names the ToR's neighbor slot: FailLink(r, i)
// cuts the cable between rack r and its i-th expander neighbor (both
// directions — it is one physical cable).
type ExpanderFaults struct {
	net *ExpanderNet

	linkDown [][]bool // [rack][neighbor slot], marked symmetrically
	torDown  []bool

	// LostToFailedLinks counts control/low-latency packets dropped from
	// failed cables' queues (bulk-class drops land in PortStats.BulkDrop).
	LostToFailedLinks uint64
}

func newExpanderFaults(n *ExpanderNet) *ExpanderFaults {
	ef := &ExpanderFaults{net: n}
	ef.linkDown = make([][]bool, n.topo.NumRacks)
	for r := range ef.linkDown {
		ef.linkDown[r] = make([]bool, len(n.topo.G.Neighbors(r)))
	}
	ef.torDown = make([]bool, n.topo.NumRacks)
	return ef
}

// Faults returns the network's failure state, creating it lazily.
func (n *ExpanderNet) Faults() *ExpanderFaults {
	if n.faults == nil {
		n.faults = newExpanderFaults(n)
	}
	return n.faults
}

// FaultInjector implements FaultNetwork.
func (n *ExpanderNet) FaultInjector() FaultInjector { return n.Faults() }

// Uplinks returns the fabric degree u — the number of neighbor slots the
// FailLink switch coordinate ranges over.
func (n *ExpanderNet) Uplinks() int { return n.topo.Degree }

// LinkUp reports whether rack's i-th fabric cable is intact and both end
// ToRs are alive.
func (ef *ExpanderFaults) LinkUp(rack, slot int) bool {
	peer := int(ef.net.topo.G.Neighbors(rack)[slot])
	return !ef.linkDown[rack][slot] && !ef.torDown[rack] && !ef.torDown[peer]
}

// peerSlot finds the reverse slot: the index of rack in peer's neighbor
// list (the graph is simple, so it is unique).
func (ef *ExpanderFaults) peerSlot(rack, slot int) (peer, rev int) {
	peer = int(ef.net.topo.G.Neighbors(rack)[slot])
	for j, nb := range ef.net.topo.G.Neighbors(peer) {
		if int(nb) == rack {
			return peer, j
		}
	}
	panic("sim: expander neighbor lists asymmetric")
}

// FailLink schedules the rack↔neighbor-slot cable to fail at the given
// time.
func (ef *ExpanderFaults) FailLink(rack, slot int, at eventsim.Time) {
	ef.net.eng.At(at, func() {
		peer, rev := ef.peerSlot(rack, slot)
		ef.linkDown[rack][slot] = true
		ef.linkDown[peer][rev] = true
		ef.rebuild()
		ef.LostToFailedLinks += ef.net.tors[rack].up[slot].DropAll()
		ef.LostToFailedLinks += ef.net.tors[peer].up[rev].DropAll()
	})
}

// RecoverLink schedules the cable back up.
func (ef *ExpanderFaults) RecoverLink(rack, slot int, at eventsim.Time) {
	ef.net.eng.At(at, func() {
		peer, rev := ef.peerSlot(rack, slot)
		ef.linkDown[rack][slot] = false
		ef.linkDown[peer][rev] = false
		ef.rebuild()
	})
}

// FailToR schedules a whole ToR to drop off the fabric: every one of its
// expander cables goes dark and its hosts become unreachable from other
// racks (rack-local traffic still flows).
func (ef *ExpanderFaults) FailToR(rack int, at eventsim.Time) {
	ef.net.eng.At(at, func() {
		ef.torDown[rack] = true
		ef.rebuild()
		for slot, pt := range ef.net.tors[rack].up {
			ef.LostToFailedLinks += pt.DropAll()
			peer, rev := ef.peerSlot(rack, slot)
			ef.LostToFailedLinks += ef.net.tors[peer].up[rev].DropAll()
		}
	})
}

// RecoverToR schedules a failed ToR back online.
func (ef *ExpanderFaults) RecoverToR(rack int, at eventsim.Time) {
	ef.net.eng.At(at, func() {
		ef.torDown[rack] = false
		ef.rebuild()
	})
}

// FailSwitch is a no-op: the expander has no fabric switches to fail (its
// "switch" coordinate names per-ToR neighbor slots). Use FailLink or
// FailToR.
func (ef *ExpanderFaults) FailSwitch(sw int, at eventsim.Time) {}

// RecoverSwitch is a no-op; see FailSwitch.
func (ef *ExpanderFaults) RecoverSwitch(sw int, at eventsim.Time) {}

// DistinctLinks enumerates one canonical (rack, slot) coordinate per
// physical cable, in deterministic order. The expander's (rack, slot)
// coordinate space names every cable twice — once from each end ToR —
// and FailLink cuts the whole cable, so random-failure sweeps must
// sample from this deduplicated universe or they would fail roughly
// twice the requested fraction.
func (ef *ExpanderFaults) DistinctLinks() [][2]int {
	var out [][2]int
	for r := 0; r < ef.net.topo.NumRacks; r++ {
		for slot, nb := range ef.net.topo.G.Neighbors(r) {
			if int(nb) > r {
				out = append(out, [2]int{r, slot})
			}
		}
	}
	return out
}

// rebuild recomputes the shared shortest-path tables against the
// surviving topology — instant convergence, per the model above.
func (ef *ExpanderFaults) rebuild() {
	maps := routing.ExpanderPortMap(ef.net.topo)
	pm := maps[0]
	for r := range pm {
		for slot, peer := range pm[r] {
			if peer < 0 {
				continue
			}
			if !ef.LinkUp(r, slot) {
				pm[r][slot] = -1
			}
		}
	}
	ef.net.tables = routing.MustBuild(maps)
}
