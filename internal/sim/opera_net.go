package sim

import (
	"fmt"
	"math/rand"

	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/routing"
	"github.com/opera-net/opera/internal/topology"
)

// OperaNet assembles a full Opera fabric: hosts, ToRs, rotor-switch uplinks
// with staggered reconfiguration, per-slice routing tables, and the slice
// clock that drives reconfiguration blackouts and transport notifications.
type OperaNet struct {
	eng     *eventsim.Engine
	cfg     *Config
	topo    *topology.Opera
	tables  *routing.Tables
	hosts   []*Host
	tors    []*OperaToR
	metrics *Metrics

	curSlice  int64
	listeners []func(absSlice int64)
	stopped   bool

	// tick and blackouts are the pre-bound slice-clock handlers
	// (eventsim.Handler), one blackout handler per rotor switch, so the
	// clock schedules without per-slice closures.
	tick      operaSliceTick
	blackouts []operaBlackout

	// failures tracks runtime failures and the §3.6.2 hello-protocol
	// epidemic; nil until Failures() is first used.
	failures *FailureState
	// faultSeed seeds deterministic gray-failure (lossy-link) draws.
	faultSeed int64
}

// operaSliceTick advances the slice clock; the next slice number is always
// curSlice+1, so the event needs no argument.
type operaSliceTick struct{ n *OperaNet }

func (h *operaSliceTick) OnEvent(any) { h.n.sliceBoundary(h.n.curSlice + 1) }

// operaBlackout darkens one rotor switch's ports for its reconfiguration.
type operaBlackout struct {
	n  *OperaNet
	sw int
}

func (h *operaBlackout) OnEvent(any) {
	for _, tor := range h.n.tors {
		tor.up[h.sw].SetEnabled(false)
		tor.up[h.sw].FlushForReconfig(tor.requeue)
	}
}

func init() {
	Register("opera", func(p BuildParams) (Network, error) {
		topo, err := topology.NewOpera(topology.Config{
			NumRacks:     p.Racks,
			HostsPerRack: p.HostsPerRack,
			NumSwitches:  p.Uplinks,
			Seed:         p.Seed,
			MaxDiameter:  p.MaxSliceDiameter,
		})
		if err != nil {
			return nil, err
		}
		return NewOperaNet(p.Engine, p.Sim, topo, p.Seed+1), nil
	})
}

// NewOperaNet wires an Opera network over the given topology. seed drives
// per-ToR packet spraying.
func NewOperaNet(eng *eventsim.Engine, cfg Config, topo *topology.Opera, seed int64) *OperaNet {
	n := &OperaNet{
		eng:       eng,
		cfg:       &cfg,
		topo:      topo,
		tables:    routing.MustBuild(routing.OperaPortMaps(topo)),
		metrics:   NewMetrics(),
		faultSeed: seed,
	}
	d := topo.HostsPerRack()
	numRacks := topo.NumRacks()
	n.hosts = make([]*Host, topo.NumHosts())
	n.tors = make([]*OperaToR, numRacks)
	for r := 0; r < numRacks; r++ {
		n.tors[r] = newOperaToR(n, int32(r), rand.New(rand.NewSource(seed+int64(r)+1)))
	}
	for h := range n.hosts {
		host := NewHost(eng, n.cfg, int32(h), int32(h/d))
		n.hosts[h] = host
		tor := n.tors[host.Rack]
		host.SetNIC(NewPort(eng, n.cfg, fmt.Sprintf("host%d->tor%d", h, host.Rack), tor))
	}
	for r := 0; r < numRacks; r++ {
		n.tors[r].wire()
	}
	n.tick.n = n
	n.blackouts = make([]operaBlackout, topo.Uplinks())
	for sw := range n.blackouts {
		n.blackouts[sw] = operaBlackout{n: n, sw: sw}
	}
	return n
}

// Start begins the slice clock; call once before running the engine.
func (n *OperaNet) Start() {
	n.sliceBoundary(0)
}

// Stop halts the slice clock after the current slice (used to end
// simulations cleanly so the engine can drain).
func (n *OperaNet) Stop() { n.stopped = true }

// Kind implements Network.
func (n *OperaNet) Kind() string { return "opera" }

// PacketCapable implements Network: the non-transitioning rotor matchings
// form an expander carrying packet-switched low-latency traffic (§3.2).
func (n *OperaNet) PacketCapable() bool { return true }

// Engine returns the simulation engine.
func (n *OperaNet) Engine() *eventsim.Engine { return n.eng }

// Config returns the physical constants.
func (n *OperaNet) Config() *Config { return n.cfg }

// Metrics returns the metrics collector.
func (n *OperaNet) Metrics() *Metrics { return n.metrics }

// Hosts returns all hosts.
func (n *OperaNet) Hosts() []*Host { return n.hosts }

// Topology returns the underlying Opera topology.
func (n *OperaNet) Topology() *topology.Opera { return n.topo }

// Uplinks returns the rotor-switch (uplink) count per ToR.
func (n *OperaNet) Uplinks() int { return n.topo.Uplinks() }

// Tables returns the per-slice routing tables.
func (n *OperaNet) Tables() *routing.Tables { return n.tables }

// ToR returns the ToR switch of the given rack.
func (n *OperaNet) ToR(rack int) *OperaToR { return n.tors[rack] }

// CurrentSlice returns the absolute slice number.
func (n *OperaNet) CurrentSlice() int64 { return n.curSlice }

// OnSlice registers a callback invoked at every slice boundary (after port
// state has been updated for the new slice).
func (n *OperaNet) OnSlice(fn func(absSlice int64)) {
	n.listeners = append(n.listeners, fn)
}

// sliceBoundary runs at the start of absolute slice S.
func (n *OperaNet) sliceBoundary(S int64) {
	n.curSlice = S
	slices := n.topo.SlicesPerCycle()
	sc := int(S % int64(slices))
	// Switches that reconfigured at this boundary come back up with their
	// new matchings.
	if S > 0 {
		prev := (sc - 1 + slices) % slices
		for _, sw := range n.topo.Transitioning(prev) {
			for _, tor := range n.tors {
				// Bulk that straggled in during the blackout was admitted
				// against the old circuit: NACK it rather than deliver it
				// to the wrong rack.
				tor.up[sw].FlushForReconfig(tor.requeue)
				tor.up[sw].SetEnabled(true)
			}
		}
	}
	// Switches transitioning during this slice go dark for its final r.
	dur := n.topo.SliceDuration()
	r := n.topo.Config().ReconfDelay
	for _, sw := range n.topo.Transitioning(sc) {
		n.eng.AfterCall(dur-r, &n.blackouts[sw], nil)
	}
	// Hello exchange on every fresh circuit spreads failure news (§3.6.2).
	if n.failures != nil {
		n.failures.spread(sc)
	}
	for _, fn := range n.listeners {
		fn(S)
	}
	if !n.stopped {
		// The slice clock rides one Event for the whole run (unless a port
		// kicked inside this tick claimed the firing object first).
		n.eng.ContinueCall(dur, &n.tick, nil)
	}
}

// OperaToR is a top-of-rack switch in an Opera network. It forwards
// low-latency packets along the tagged slice's expander paths and bulk
// packets out the direct circuit of the current slice (§4.3).
type OperaToR struct {
	net     *OperaNet
	rack    int32
	up      []*Port // one per rotor switch
	down    []*Port // one per local host
	rng     *rand.Rand
	relayRR int // round-robin selector for VLB storage hosts

	// BulkNACKs counts §4.2.2 NACKs issued by this ToR.
	BulkNACKs uint64
}

func newOperaToR(n *OperaNet, rack int32, rng *rand.Rand) *OperaToR {
	return &OperaToR{net: n, rack: rack, rng: rng}
}

// wire builds the ToR's ports (hosts must exist already).
func (t *OperaToR) wire() {
	n := t.net
	topo := n.topo
	d := topo.HostsPerRack()
	t.down = make([]*Port, d)
	lo, _ := topo.RackHosts(int(t.rack))
	for i := 0; i < d; i++ {
		host := n.hosts[lo+i]
		t.down[i] = NewPort(n.eng, n.cfg, fmt.Sprintf("tor%d->host%d", t.rack, host.ID), host)
		// Several circuits can converge on one downlink; overflowing bulk
		// is NACKed back to its sender like any other ToR drop (§4.2.2).
		t.down[i].SetBulkDropHandler(t.bulkNACK)
	}
	t.up = make([]*Port, topo.Uplinks())
	for sw := 0; sw < topo.Uplinks(); sw++ {
		sw := sw
		resolve := func(at eventsim.Time) Node {
			sc, _, _ := topo.SliceAt(at)
			peer := topo.SwitchMatching(sw, sc).Peer(int(t.rack))
			if peer == int(t.rack) {
				return nil // self-loop: dark port this configuration
			}
			if fs := n.failures; fs != nil && (!fs.LinkUp(int(t.rack), sw) || !fs.LinkUp(peer, sw)) {
				fs.LostToDeadLinks++
				return nil // failed cable, switch, or peer ToR
			}
			return n.tors[peer]
		}
		t.up[sw] = NewDynamicPort(n.eng, n.cfg, fmt.Sprintf("tor%d-up%d", t.rack, sw), resolve)
		t.up[sw].SetBulkDropHandler(t.bulkNACK)
	}
}

// Uplink returns the port to the given rotor switch.
func (t *OperaToR) Uplink(sw int) *Port { return t.up[sw] }

// Downlink returns the port to the i-th local host.
func (t *OperaToR) Downlink(i int) *Port { return t.down[i] }

// Receive implements Node.
func (t *OperaToR) Receive(p *Packet, from *Port) {
	n := t.net
	if p.Kind == KindBulk {
		t.receiveBulk(p)
		return
	}
	// Control and low-latency forwarding over the expander.
	if p.DstRack == t.rack {
		t.deliverLocal(p)
		return
	}
	// Stamp the configuration tag at the first ToR (§4.3); refresh a stale
	// tag (older than the previous slice) so lookups stay meaningful.
	cur := n.curSlice
	if p.SliceTag < 0 || cur-p.SliceTag > 1 {
		p.SliceTag = cur
	}
	slices := int64(n.topo.SlicesPerCycle())
	sc := int(p.SliceTag % slices)
	tables := n.tables
	if n.failures != nil {
		tables = n.failures.tablesFor(int(t.rack))
	}
	uplink := tables.PickUplink(sc, int(t.rack), int(p.DstRack), t.rng.Uint32())
	if uplink < 0 {
		// Unreachable under this slice's tables (can only happen with
		// failures); retry against the current slice before giving up.
		p.SliceTag = cur
		uplink = tables.PickUplink(int(cur%slices), int(t.rack), int(p.DstRack), t.rng.Uint32())
		if uplink < 0 {
			p.Release()
			return
		}
	}
	p.Hops++
	t.up[uplink].Enqueue(p)
}

// receiveBulk forwards a RotorLB packet: down if local or at its relay
// rack, else out the direct circuit of the current slice; mistimed packets
// are NACKed back to their sender (§4.2.2).
func (t *OperaToR) receiveBulk(p *Packet) {
	if p.RelayRack == t.rack {
		// VLB first leg complete: hand to a local host for storage.
		d := len(t.down)
		t.down[t.relayRR%d].Enqueue(p)
		t.relayRR++
		return
	}
	if p.DstRack == t.rack {
		t.deliverLocal(p)
		return
	}
	target := int(p.DstRack)
	if p.RelayRack >= 0 {
		target = int(p.RelayRack)
	}
	sc, _, _ := t.net.topo.SliceAt(t.net.eng.Now())
	// Transitioning switches remain usable until their blackout; the port's
	// disable/flush enforces the actual deadline (§4.2.2).
	sw := t.net.topo.DirectSwitchInstalled(sc, int(t.rack), target)
	if sw < 0 {
		t.bulkNACK(p)
		return
	}
	// A ToR knows its own links' state immediately (signal loss, §3.5).
	if fs := t.net.failures; fs != nil && !fs.LinkUp(int(t.rack), sw) {
		t.bulkNACK(p)
		return
	}
	p.Hops++
	t.up[sw].Enqueue(p)
}

func (t *OperaToR) deliverLocal(p *Packet) {
	d := len(t.down)
	idx := int(p.DstHost) - int(t.rack)*d
	if idx < 0 || idx >= d {
		p.Release()
		return
	}
	t.down[idx].Enqueue(p)
}

// bulkNACK converts a failed bulk packet into a §4.2.2 NACK routed back to
// the sending host so it can requeue the bytes.
func (t *OperaToR) bulkNACK(p *Packet) {
	t.BulkNACKs++
	nack := NewPacket()
	nack.Kind = KindBulkNack
	nack.Class = ClassControl
	nack.Size = int32(t.net.cfg.HeaderBytes)
	nack.SrcHost = p.DstHost // nominal; unused on arrival
	nack.SrcRack = p.DstRack
	nack.DstHost = p.SrcHost
	nack.DstRack = p.SrcRack
	nack.FlowID = p.FlowID
	nack.Seq = p.Seq
	nack.PayloadSize = p.PayloadSize
	nack.PullNo = p.DstRack      // final destination rack, for requeueing
	nack.RelayRack = p.RelayRack // ≥0 ⇒ the failed send was a VLB first leg
	nack.OrigHops = p.Hops
	p.Release()
	t.Receive(nack, nil) // routes like control traffic
}

// requeue re-injects a packet flushed from a reconfiguring port.
func (t *OperaToR) requeue(p *Packet) {
	p.SliceTag = -1
	t.Receive(p, nil)
}
