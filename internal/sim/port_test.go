package sim

import (
	"testing"

	"github.com/opera-net/opera/internal/eventsim"
)

// sinkNode records received packets.
type sinkNode struct {
	pkts  []*Packet
	times []eventsim.Time
	eng   *eventsim.Engine
}

func (s *sinkNode) Receive(p *Packet, _ *Port) {
	s.pkts = append(s.pkts, p)
	s.times = append(s.times, s.eng.Now())
}

func testConfig() Config {
	return DefaultConfig()
}

func mkData(size int, class Class) *Packet {
	p := NewPacket()
	p.Kind = KindData
	p.Class = class
	p.Size = int32(size)
	p.PayloadSize = int32(size)
	return p
}

func TestPortSerializationAndPropagation(t *testing.T) {
	eng := eventsim.New()
	cfg := testConfig()
	sink := &sinkNode{eng: eng}
	pt := NewPort(eng, &cfg, "t", sink)
	pt.Enqueue(mkData(1500, ClassLowLatency))
	eng.Run()
	if len(sink.pkts) != 1 {
		t.Fatalf("delivered %d packets", len(sink.pkts))
	}
	// 1500 B at 10 Gb/s = 1200 ns; + 500 ns propagation = 1700 ns.
	if got := sink.times[0]; got != 1700 {
		t.Fatalf("arrival at %v, want 1700ns", got)
	}
}

func TestPortPriorityOrder(t *testing.T) {
	eng := eventsim.New()
	cfg := testConfig()
	sink := &sinkNode{eng: eng}
	pt := NewPort(eng, &cfg, "t", sink)
	pt.SetEnabled(false) // hold so all three queue up
	bulk := mkData(1500, ClassBulk)
	bulk.Kind = KindBulk
	ll := mkData(1500, ClassLowLatency)
	ctrl := NewPacket()
	ctrl.Kind = KindAck
	ctrl.Class = ClassControl
	ctrl.Size = 64
	pt.Enqueue(bulk)
	pt.Enqueue(ll)
	pt.Enqueue(ctrl)
	pt.SetEnabled(true)
	eng.Run()
	if len(sink.pkts) != 3 {
		t.Fatalf("delivered %d packets", len(sink.pkts))
	}
	if sink.pkts[0].Kind != KindAck || sink.pkts[1].Class != ClassLowLatency || sink.pkts[2].Kind != KindBulk {
		t.Fatalf("priority order wrong: %v %v %v", sink.pkts[0].Kind, sink.pkts[1].Class, sink.pkts[2].Kind)
	}
}

func TestPortTrimOnOverflow(t *testing.T) {
	eng := eventsim.New()
	cfg := testConfig() // 12 KB LL queue = 8 × 1500
	sink := &sinkNode{eng: eng}
	pt := NewPort(eng, &cfg, "t", sink)
	pt.SetEnabled(false)
	for i := 0; i < 10; i++ {
		pt.Enqueue(mkData(1500, ClassLowLatency))
	}
	if pt.Stats.Trims != 2 {
		t.Fatalf("trims = %d, want 2", pt.Stats.Trims)
	}
	pt.SetEnabled(true)
	eng.Run()
	var trimmed, full int
	for _, p := range sink.pkts {
		if p.Trimmed {
			trimmed++
			if p.Size != 64 {
				t.Fatalf("trimmed size = %d", p.Size)
			}
			if p.PayloadSize != 1500 {
				t.Fatalf("trimmed PayloadSize = %d, want original 1500", p.PayloadSize)
			}
		} else {
			full++
		}
	}
	if full != 8 || trimmed != 2 {
		t.Fatalf("full=%d trimmed=%d, want 8/2", full, trimmed)
	}
	// Trimmed headers overtake queued full packets (control priority).
	if !sink.pkts[0].Trimmed || !sink.pkts[1].Trimmed {
		t.Fatal("headers did not jump the data queue")
	}
}

func TestPortHeaderQueueDrops(t *testing.T) {
	eng := eventsim.New()
	cfg := testConfig()
	cfg.HeaderQueueBytes = 128 // room for just 2 headers
	sink := &sinkNode{eng: eng}
	pt := NewPort(eng, &cfg, "t", sink)
	pt.SetEnabled(false)
	for i := 0; i < 12; i++ {
		pt.Enqueue(mkData(1500, ClassLowLatency))
	}
	// 8 queued, 4 trims attempted, 2 fit as headers, 2 dropped.
	if pt.Stats.Trims != 4 || pt.Stats.HdrDrops != 2 {
		t.Fatalf("trims=%d hdrDrops=%d, want 4/2", pt.Stats.Trims, pt.Stats.HdrDrops)
	}
}

func TestPortBulkDropHandler(t *testing.T) {
	eng := eventsim.New()
	cfg := testConfig()
	cfg.BulkQueueBytes = 3000 // 2 packets
	sink := &sinkNode{eng: eng}
	pt := NewPort(eng, &cfg, "t", sink)
	pt.SetEnabled(false)
	var dropped []*Packet
	pt.SetBulkDropHandler(func(p *Packet) { dropped = append(dropped, p) })
	for i := 0; i < 4; i++ {
		b := mkData(1500, ClassBulk)
		b.Kind = KindBulk
		b.Seq = int32(i)
		pt.Enqueue(b)
	}
	if len(dropped) != 2 {
		t.Fatalf("dropped %d, want 2", len(dropped))
	}
	if pt.Stats.BulkDrop != 2 {
		t.Fatalf("BulkDrop stat = %d", pt.Stats.BulkDrop)
	}
}

func TestPortBulkClassNDPDataTrims(t *testing.T) {
	// Bulk-class NDP data (static networks) must trim, not drop.
	eng := eventsim.New()
	cfg := testConfig()
	cfg.BulkQueueBytes = 3000
	sink := &sinkNode{eng: eng}
	pt := NewPort(eng, &cfg, "t", sink)
	pt.SetEnabled(false)
	for i := 0; i < 4; i++ {
		pt.Enqueue(mkData(1500, ClassBulk)) // KindData
	}
	if pt.Stats.Trims != 2 || pt.Stats.BulkDrop != 0 {
		t.Fatalf("trims=%d bulkdrops=%d, want 2/0", pt.Stats.Trims, pt.Stats.BulkDrop)
	}
}

func TestPortFlushForReconfig(t *testing.T) {
	eng := eventsim.New()
	cfg := testConfig()
	sink := &sinkNode{eng: eng}
	pt := NewPort(eng, &cfg, "t", sink)
	pt.SetEnabled(false)
	var nacked, requeued []*Packet
	pt.SetBulkDropHandler(func(p *Packet) { nacked = append(nacked, p) })
	b := mkData(1500, ClassBulk)
	b.Kind = KindBulk
	pt.Enqueue(b)
	pt.Enqueue(mkData(1500, ClassLowLatency))
	pt.FlushForReconfig(func(p *Packet) { requeued = append(requeued, p) })
	if len(nacked) != 1 || len(requeued) != 1 {
		t.Fatalf("nacked=%d requeued=%d, want 1/1", len(nacked), len(requeued))
	}
	if pt.QueuedBytes(ClassBulk) != 0 || pt.QueuedBytes(ClassLowLatency) != 0 {
		t.Fatal("queues not empty after flush")
	}
	if pt.Stats.Stale != 1 {
		t.Fatalf("stale = %d", pt.Stats.Stale)
	}
}

func TestPortDynamicResolveNil(t *testing.T) {
	// A dark circuit (self-loop) swallows the packet.
	eng := eventsim.New()
	cfg := testConfig()
	pt := NewDynamicPort(eng, &cfg, "t", func(eventsim.Time) Node { return nil })
	var dropped int
	pt.SetBulkDropHandler(func(p *Packet) { dropped++; p.Release() })
	b := mkData(1500, ClassBulk)
	b.Kind = KindBulk
	pt.Enqueue(b)
	pt.Enqueue(mkData(1500, ClassLowLatency))
	eng.Run()
	if dropped != 1 {
		t.Fatalf("bulk to dark port should hit the drop handler, got %d", dropped)
	}
}

func TestPortBackToBackThroughput(t *testing.T) {
	eng := eventsim.New()
	cfg := testConfig()
	cfg.DataQueueBytes = 1 << 20 // deep queue: this test measures pacing
	sink := &sinkNode{eng: eng}
	pt := NewPort(eng, &cfg, "t", sink)
	for i := 0; i < 100; i++ {
		pt.Enqueue(mkData(1500, ClassLowLatency))
	}
	eng.Run()
	if len(sink.pkts) != 100 {
		t.Fatalf("delivered %d", len(sink.pkts))
	}
	// 100 × 1200 ns serialization + 500 ns propagation.
	want := eventsim.Time(100*1200 + 500)
	if got := sink.times[99]; got != want {
		t.Fatalf("last arrival %v, want %v", got, want)
	}
	if pt.Stats.Tx[ClassLowLatency].Packets != 100 {
		t.Fatalf("tx counter = %d", pt.Stats.Tx[ClassLowLatency].Packets)
	}
}

func TestConfigSerialization(t *testing.T) {
	cfg := testConfig()
	if d := cfg.SerializationDelay(1500); d != 1200 {
		t.Fatalf("1500B at 10G = %v, want 1200ns", d)
	}
	if n := cfg.BytesIn(1200); n != 1500 {
		t.Fatalf("BytesIn(1200ns) = %d, want 1500", n)
	}
	if cfg.BytesIn(-5) != 0 {
		t.Fatal("negative duration should carry 0 bytes")
	}
}

func TestMetricsTax(t *testing.T) {
	m := NewMetrics()
	f := &Flow{ID: 1, Size: 3000, Class: ClassLowLatency}
	m.AddFlow(f)
	m.RecordDelivery(f, 1500, 2, 0) // 2 hops: 100% tax on these bytes
	m.RecordDelivery(f, 1500, 1, 0) // direct
	tax := m.BandwidthTax(ClassLowLatency)
	if tax < 0.49 || tax > 0.51 {
		t.Fatalf("tax = %v, want 0.5", tax)
	}
	if m.AggregateTax() != tax {
		t.Fatalf("aggregate tax mismatch")
	}
	m.FlowDone(f, 100)
	m.FlowDone(f, 200) // idempotent
	if f.End != 100 {
		t.Fatalf("End = %v", f.End)
	}
	done, total := m.DoneCount()
	if done != 1 || total != 1 {
		t.Fatalf("done=%d total=%d", done, total)
	}
}

func TestPacketPool(t *testing.T) {
	p := NewPacket()
	p.FlowID = 42
	p.Hops = 3
	p.Release()
	q := NewPacket()
	// Pool may or may not reuse; fields must be zeroed either way.
	if q.FlowID != 0 || q.Hops != 0 || q.SliceTag != -1 || q.RelayRack != -1 {
		t.Fatalf("pool packet not reset: %+v", q)
	}
	q.Release()
}

// A drop/NACK handler may legally route a packet straight back into the
// port being flushed (the NACK's path can pick the same uplink). The flush
// must drain a snapshot: freshly re-enqueued packets stay queued for the
// new configuration instead of being re-dropped — or chased forever.
func TestFlushForReconfigReentrancy(t *testing.T) {
	eng := eventsim.New()
	cfg := testConfig()
	sink := &sinkNode{eng: eng}
	pt := NewPort(eng, &cfg, "t", sink)
	pt.SetEnabled(false)
	var nacks int
	// NACK path that re-enqueues a control packet into this same port —
	// the §4.2.2 shape when the NACK routes back over the flushed uplink.
	pt.SetBulkDropHandler(func(p *Packet) {
		nacks++
		nack := NewPacket()
		nack.Kind = KindBulkNack
		nack.Class = ClassControl
		nack.Size = 64
		p.Release()
		pt.Enqueue(nack)
	})
	b := mkData(1500, ClassBulk)
	b.Kind = KindBulk
	pt.Enqueue(b)
	// Requeue handler that also re-enqueues into the same port (the new
	// tables picked the same uplink for a stale low-latency packet).
	pt.Enqueue(mkData(1500, ClassLowLatency))
	requeued := 0
	pt.FlushForReconfig(func(p *Packet) {
		requeued++
		if requeued > 10 {
			t.Fatal("flush is chasing its own re-enqueued packets")
		}
		pt.Enqueue(p)
	})
	if nacks != 1 {
		t.Fatalf("bulk NACKed %d times, want exactly 1 (no re-drop)", nacks)
	}
	if requeued != 1 {
		t.Fatalf("low-latency requeued %d times, want exactly 1", requeued)
	}
	// Both re-enqueued packets survived the flush, queued for the new
	// configuration.
	if pt.QueuedBytes(ClassControl) != 64 {
		t.Fatalf("ctrl bytes = %d, want the re-enqueued NACK (64)", pt.QueuedBytes(ClassControl))
	}
	if pt.QueuedBytes(ClassLowLatency) != 1500 {
		t.Fatalf("ll bytes = %d, want the requeued packet (1500)", pt.QueuedBytes(ClassLowLatency))
	}
	if pt.Stats.Stale != 1 {
		t.Fatalf("stale = %d, want 1", pt.Stats.Stale)
	}
}

// DropAll has the same re-entrancy hazard through its bulk NACK path.
func TestDropAllReentrancy(t *testing.T) {
	eng := eventsim.New()
	cfg := testConfig()
	sink := &sinkNode{eng: eng}
	pt := NewPort(eng, &cfg, "t", sink)
	pt.SetEnabled(false)
	drops := 0
	pt.SetBulkDropHandler(func(p *Packet) {
		drops++
		if drops > 10 {
			t.Fatal("DropAll re-dropping re-enqueued bulk")
		}
		requeue := NewPacket()
		requeue.Kind = KindBulk
		requeue.Class = ClassBulk
		requeue.Size = 1500
		p.Release()
		pt.Enqueue(requeue)
	})
	b := mkData(1500, ClassBulk)
	b.Kind = KindBulk
	pt.Enqueue(b)
	pt.Enqueue(mkData(1500, ClassLowLatency))
	if lost := pt.DropAll(); lost != 1 {
		t.Fatalf("lost = %d, want 1", lost)
	}
	if drops != 1 {
		t.Fatalf("bulk dropped %d times, want exactly 1", drops)
	}
	if pt.QueuedBytes(ClassBulk) != 1500 {
		t.Fatalf("bulk bytes = %d, want re-enqueued 1500", pt.QueuedBytes(ClassBulk))
	}
}
