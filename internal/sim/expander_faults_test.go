package sim_test

import (
	"testing"

	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/sim"
	"github.com/opera-net/opera/internal/workload"

	opera "github.com/opera-net/opera"
)

// expanderTestbed builds an expander cluster via the public API so NDP is
// attached, and exposes its failure state.
func expanderTestbed(t *testing.T) (*opera.Cluster, *sim.ExpanderFaults) {
	t.Helper()
	cl, err := opera.NewCluster(opera.ClusterConfig{
		Kind: opera.KindExpander, Racks: 16, HostsPerRack: 4, Uplinks: 5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	en := cl.Network().(*sim.ExpanderNet)
	return cl, en.Faults()
}

func TestExpanderFaultInjectorExposed(t *testing.T) {
	cl, _ := expanderTestbed(t)
	if cl.Faults() == nil {
		t.Fatal("expander cluster should expose a FaultInjector")
	}
}

// Flows keep completing after link failures: routing reconverges around
// the dead cables and NDP retransmits whatever was queued on them.
func TestExpanderFlowsSurviveLinkFailure(t *testing.T) {
	cl, ef := expanderTestbed(t)
	ef.FailLink(0, 1, 1*eventsim.Millisecond)
	ef.FailLink(7, 3, 1*eventsim.Millisecond)
	n := cl.NumHosts()
	for i := 0; i < n; i++ {
		cl.AddFlow(workload.FlowSpec{
			Src: i, Dst: (i + 19) % n, Bytes: 30_000,
			Arrival: eventsim.Time(i) * 50 * eventsim.Microsecond,
		})
	}
	if !cl.RunUntilDone(500 * eventsim.Millisecond) {
		done, total := cl.Metrics().DoneCount()
		t.Fatalf("only %d/%d flows survived link failures", done, total)
	}
	if ef.LinkUp(0, 1) || ef.LinkUp(7, 3) {
		t.Fatal("failed links still reported up")
	}
}

// A failed link recovers: traffic crossing it completes both during the
// outage (around it) and after recovery (over it again).
func TestExpanderLinkRecovery(t *testing.T) {
	cl, ef := expanderTestbed(t)
	ef.FailLink(2, 0, 500*eventsim.Microsecond)
	ef.RecoverLink(2, 0, 5*eventsim.Millisecond)
	n := cl.NumHosts()
	for i := 0; i < n; i += 2 {
		cl.AddFlow(workload.FlowSpec{
			Src: i, Dst: (i + 9) % n, Bytes: 20_000,
			Arrival: eventsim.Time(i) * 100 * eventsim.Microsecond,
		})
	}
	if !cl.RunUntilDone(500 * eventsim.Millisecond) {
		done, total := cl.Metrics().DoneCount()
		t.Fatalf("only %d/%d flows completed across fail+recover", done, total)
	}
	if !ef.LinkUp(2, 0) {
		t.Fatal("recovered link still reported down")
	}
}

// A dead ToR takes its hosts off the fabric; the rest of the cluster
// keeps working, and recovery brings the rack back.
func TestExpanderToRFailureIsolatesRack(t *testing.T) {
	cl, ef := expanderTestbed(t)
	ef.FailToR(3, 1*eventsim.Millisecond)
	n := cl.NumHosts()
	d := cl.HostsPerRack()
	for i := 0; i < n; i++ {
		src, dst := i, (i+2*d)%n
		if src/d == 3 || dst/d == 3 {
			continue // skip the doomed rack
		}
		cl.AddFlow(workload.FlowSpec{
			Src: src, Dst: dst, Bytes: 20_000,
			Arrival: eventsim.Time(i) * 100 * eventsim.Microsecond,
		})
	}
	if !cl.RunUntilDone(500 * eventsim.Millisecond) {
		done, total := cl.Metrics().DoneCount()
		t.Fatalf("only %d/%d flows completed around the dead ToR", done, total)
	}
}

// Determinism: the same failure schedule over the same workload yields
// identical outcomes run-to-run (the injector draws no hidden state).
func TestExpanderFaultDeterminism(t *testing.T) {
	run := func() (int, uint64) {
		cl, ef := expanderTestbed(t)
		ef.FailLink(1, 2, 700*eventsim.Microsecond)
		cl.AddSource(workload.FromSpecs(workload.Shuffle(12, 25_000, eventsim.Millisecond, 1)))
		cl.RunUntilDone(500 * eventsim.Millisecond)
		done, _ := cl.Metrics().DoneCount()
		return done, cl.Engine().Steps()
	}
	d1, s1 := run()
	d2, s2 := run()
	if d1 != d2 || s1 != s2 {
		t.Fatalf("fault runs diverge: (%d,%d) vs (%d,%d)", d1, s1, d2, s2)
	}
}
