package sim_test

import (
	"testing"

	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/sim"
	"github.com/opera-net/opera/internal/workload"

	opera "github.com/opera-net/opera"
)

// failureTestbed builds an Opera cluster via the public API so transports
// are attached, and exposes the failure state.
func failureTestbed(t *testing.T) (*opera.Cluster, *sim.FailureState) {
	t.Helper()
	cl, err := opera.NewCluster(opera.ClusterConfig{
		Kind: opera.KindOpera, Racks: 16, HostsPerRack: 4, Uplinks: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl, cl.OperaNet().Failures()
}

func TestHelloEpidemicConvergesWithinTwoCycles(t *testing.T) {
	cl, fs := failureTestbed(t)
	// Fail one link early on.
	fs.FailLink(3, 2, 500*eventsim.Microsecond)
	// Cycle time: 16 slices × 100 µs = 1.6 ms. §3.6.2: any connected ToR
	// learns within at most two cycles.
	cl.Run(500*eventsim.Microsecond + 2*1600*eventsim.Microsecond)
	informed, survivors := fs.InformedCount()
	if informed != survivors {
		t.Fatalf("only %d/%d ToRs informed after two cycles", informed, survivors)
	}
}

func TestFlowsSurviveLinkFailure(t *testing.T) {
	cl, fs := failureTestbed(t)
	fs.FailLink(0, 1, 1*eventsim.Millisecond)
	fs.FailLink(7, 3, 1*eventsim.Millisecond)
	n := cl.NumHosts()
	for i := 0; i < n; i++ {
		cl.AddFlow(workload.FlowSpec{
			Src: i, Dst: (i + 19) % n, Bytes: 30_000,
			Arrival: eventsim.Time(i) * 50 * eventsim.Microsecond,
		})
	}
	if !cl.RunUntilDone(500 * eventsim.Millisecond) {
		done, total := cl.Metrics().DoneCount()
		t.Fatalf("only %d/%d flows survived link failures", done, total)
	}
}

func TestFlowsSurviveSwitchFailure(t *testing.T) {
	cl, fs := failureTestbed(t)
	fs.FailSwitch(2, 2*eventsim.Millisecond)
	n := cl.NumHosts()
	for i := 0; i < n; i += 2 {
		cl.AddFlow(workload.FlowSpec{Src: i, Dst: (i + 9) % n, Bytes: 15_000})
	}
	if !cl.RunUntilDone(500 * eventsim.Millisecond) {
		done, total := cl.Metrics().DoneCount()
		t.Fatalf("only %d/%d flows survived switch failure", done, total)
	}
	// With u=4 switches and one failed, slices where a second switch
	// transitions leave only 2 active matchings: possibly disconnected
	// moments, but NDP + rerouting must still deliver.
}

func TestBulkSurvivesLinkFailure(t *testing.T) {
	cl, fs := failureTestbed(t)
	fs.FailLink(0, 0, 500*eventsim.Microsecond)
	fs.FailLink(0, 1, 500*eventsim.Microsecond)
	f := cl.AddBulkFlow(workload.FlowSpec{Src: 0, Dst: 60, Bytes: 1 << 20})
	if !cl.RunUntilDone(3000 * eventsim.Millisecond) {
		t.Fatalf("bulk flow incomplete after failures: %d/%d (NACKs %d)",
			f.BytesRcvd, f.Size, cl.BulkNACKCount())
	}
}

func TestLostToDeadLinksCounted(t *testing.T) {
	cl, fs := failureTestbed(t)
	// Continuous traffic while a link dies: some packets in flight or
	// routed by uninformed ToRs are lost and counted.
	n := cl.NumHosts()
	for i := 0; i < n; i++ {
		cl.AddFlow(workload.FlowSpec{Src: i, Dst: (i + 31) % n, Bytes: 100_000})
	}
	fs.FailLink(5, 2, 300*eventsim.Microsecond)
	fs.FailLink(9, 0, 400*eventsim.Microsecond)
	cl.RunUntilDone(1000 * eventsim.Millisecond)
	// The counter is advisory; it must not panic and is usually nonzero
	// under load. Completion is the hard requirement.
	done, total := cl.Metrics().DoneCount()
	if done != total {
		t.Fatalf("%d/%d flows done", done, total)
	}
	t.Logf("packets lost to dead links: %d", fs.LostToDeadLinks)
}

func TestRecoveryRestoresLinks(t *testing.T) {
	cl, fs := failureTestbed(t)
	fs.FailLink(3, 2, 500*eventsim.Microsecond)
	fs.FailSwitch(1, 500*eventsim.Microsecond)
	fs.FailToR(7, 500*eventsim.Microsecond)
	fs.RecoverLink(3, 2, 2*eventsim.Millisecond)
	fs.RecoverSwitch(1, 2*eventsim.Millisecond)
	fs.RecoverToR(7, 2*eventsim.Millisecond)
	cl.Run(1 * eventsim.Millisecond)
	if fs.LinkUp(3, 2) || fs.LinkUp(0, 1) || fs.LinkUp(7, 0) {
		t.Fatal("failures not in effect at 1ms")
	}
	// Two cycles after recovery every ToR has relearned the full topology.
	cl.Run(2*eventsim.Millisecond + 2*1600*eventsim.Microsecond)
	if !fs.LinkUp(3, 2) || !fs.LinkUp(0, 1) || !fs.LinkUp(7, 0) {
		t.Fatal("recovery did not restore links")
	}
	informed, survivors := fs.InformedCount()
	if survivors != 16 || informed != survivors {
		t.Fatalf("informed=%d survivors=%d after recovery epidemic", informed, survivors)
	}
}

func TestFlowsCompleteAcrossFailAndRecover(t *testing.T) {
	cl, fs := failureTestbed(t)
	fs.FailSwitch(2, 1*eventsim.Millisecond)
	fs.RecoverSwitch(2, 4*eventsim.Millisecond)
	n := cl.NumHosts()
	for i := 0; i < n; i++ {
		cl.AddFlow(workload.FlowSpec{
			Src: i, Dst: (i + 13) % n, Bytes: 40_000,
			Arrival: eventsim.Time(i) * 100 * eventsim.Microsecond,
		})
	}
	if !cl.RunUntilDone(500 * eventsim.Millisecond) {
		done, total := cl.Metrics().DoneCount()
		t.Fatalf("only %d/%d flows completed across fail+recover", done, total)
	}
}

func TestLinkUpAccessors(t *testing.T) {
	_, fs := failureTestbed(t)
	if !fs.LinkUp(0, 0) {
		t.Fatal("fresh network should have all links up")
	}
	informed, survivors := fs.InformedCount()
	if informed != 0 || survivors != 16 {
		t.Fatalf("initial informed=%d survivors=%d", informed, survivors)
	}
}
