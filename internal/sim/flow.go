package sim

import (
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/stats"
	"github.com/opera-net/opera/internal/telemetry"
)

// Flow is one transfer between two hosts. Transports update its progress;
// Metrics aggregates completion times.
type Flow struct {
	ID      int64
	SrcHost int32
	DstHost int32
	SrcRack int32
	DstRack int32
	Size    int64 // application bytes
	Class   Class // LowLatency (NDP) or Bulk (RotorLB / bulk-class NDP)

	// Tag is an application-assigned label ("" = untagged) carried
	// end-to-end so results can be broken down per workload component
	// (§5.2's app-tagged shuffle vs its competing traffic).
	Tag string

	Start     eventsim.Time
	End       eventsim.Time
	BytesRcvd int64
	Done      bool

	// Retransmits counts NDP NACK-triggered resends and RotorLB NACK
	// requeues.
	Retransmits int
}

// FCT returns the flow completion time, valid once Done.
func (f *Flow) FCT() eventsim.Time { return f.End - f.Start }

// Metrics aggregates simulation-wide observations. The simulator is
// single-threaded, so no locking is needed.
//
// Completed flows are retained according to the RetentionPolicy (see
// SetRetention): RetainAll (the default) keeps every *Flow for exact
// statistics; RetainSketch absorbs each completion into streaming
// sketches and releases the flow, keeping memory flat on unbounded runs.
type Metrics struct {
	flows []*Flow // retained completions (RetainAll only)
	total int     // flows registered, maintained incrementally by AddFlow
	done  int     // flows completed, maintained incrementally by FlowDone

	// DeliveredBytes tracks application bytes arriving at receivers over
	// time (Figure 8's throughput series), binned at 1 ms. It is nil under
	// RetainSketch — the unbounded per-bin series is what streaming
	// retention avoids; use DeliveredTotal or Telemetry().Delivered().
	DeliveredBytes *stats.TimeSeries

	// UplinkBytes counts ToR-to-ToR traversals per class — the denominator
	// of the bandwidth-tax accounting: a byte delivered over h ToR hops
	// contributes h times here and once to goodput.
	UplinkBytes [numClasses]uint64
	// GoodputBytes counts inter-rack application bytes delivered, per class.
	GoodputBytes [numClasses]uint64

	// OnFlowDone, when set, is invoked as flows complete.
	OnFlowDone func(*Flow)

	// tel absorbs completions under RetainSketch; release runs afterwards
	// so per-flow state owners can drop their references.
	tel     *telemetry.Collector
	release []func(*Flow)
}

// NewMetrics returns an empty metrics collector.
func NewMetrics() *Metrics {
	return &Metrics{DeliveredBytes: stats.NewTimeSeries(0.001)}
}

// AddFlow registers a flow. Under RetainSketch only counters (and the
// flow's tag tally) are updated — the *Flow is never retained here.
func (m *Metrics) AddFlow(f *Flow) {
	m.total++
	if m.tel != nil {
		m.tel.FlowAdded(f.Tag)
		return
	}
	m.flows = append(m.flows, f)
}

// Flows returns all retained flows. Under RetainSketch nothing is
// retained and the slice is empty; consume Telemetry() instead.
func (m *Metrics) Flows() []*Flow { return m.flows }

// FlowDone marks f complete at time now. Under RetainSketch the flow's
// statistics are absorbed into the collector and the release hooks fire —
// after this call no Metrics state references f.
func (m *Metrics) FlowDone(f *Flow, now eventsim.Time) {
	if f.Done {
		return
	}
	f.Done = true
	f.End = now
	m.done++
	if m.OnFlowDone != nil {
		m.OnFlowDone(f)
	}
	if m.tel != nil {
		m.tel.FlowDone(int(f.Class), f.Tag, f.FCT().Micros(), f.BytesRcvd)
		for _, fn := range m.release {
			fn(f)
		}
	}
}

// RecordDelivery accounts app bytes arriving at a receiver: hops is the
// number of ToR-to-ToR traversals the bytes took (0 for rack-local).
func (m *Metrics) RecordDelivery(f *Flow, bytes int, hops int, now eventsim.Time) {
	f.BytesRcvd += int64(bytes)
	if m.tel != nil {
		m.tel.RecordDelivered(now.Seconds(), float64(bytes))
	} else {
		m.DeliveredBytes.Record(now.Seconds(), float64(bytes))
	}
	if hops > 0 {
		m.GoodputBytes[f.Class] += uint64(bytes)
		m.UplinkBytes[f.Class] += uint64(bytes * hops)
		if m.tel != nil {
			m.tel.RecordTax(now.Seconds(), float64(bytes), float64(bytes*hops))
		}
	}
}

// DeliveredTotal returns the total application bytes delivered, exact
// under both retention policies.
func (m *Metrics) DeliveredTotal() float64 {
	if m.tel != nil {
		return m.tel.Delivered().Total()
	}
	return m.DeliveredBytes.Total()
}

// BandwidthTax returns the effective bandwidth-tax rate for a class: extra
// in-network bytes divided by goodput ((k−1)·x per §1). Zero if no traffic.
func (m *Metrics) BandwidthTax(c Class) float64 {
	if m.GoodputBytes[c] == 0 {
		return 0
	}
	return float64(m.UplinkBytes[c])/float64(m.GoodputBytes[c]) - 1
}

// AggregateTax returns the tax rate across low-latency and bulk classes.
func (m *Metrics) AggregateTax() float64 {
	good := m.GoodputBytes[ClassLowLatency] + m.GoodputBytes[ClassBulk]
	up := m.UplinkBytes[ClassLowLatency] + m.UplinkBytes[ClassBulk]
	if good == 0 {
		return 0
	}
	return float64(up)/float64(good) - 1
}

// FCTSample collects completion times (in µs) of done flows matching the
// filter (nil = all). Exact samples exist only under RetainAll; under
// RetainSketch the sample is empty — query Telemetry() sketches instead.
func (m *Metrics) FCTSample(filter func(*Flow) bool) *stats.Sample {
	var s stats.Sample
	for _, f := range m.flows {
		if !f.Done {
			continue
		}
		if filter == nil || filter(f) {
			s.Add(f.FCT().Micros())
		}
	}
	return &s
}

// DoneCount returns completed and total flow counts. It is O(1): the done
// counter is maintained incrementally by FlowDone, so completion polling
// (Cluster.RunUntilDone checks every 100 µs) costs nothing per registered
// flow — the old per-call rescan made long soaks quadratic in flow count.
func (m *Metrics) DoneCount() (done, total int) {
	return m.done, m.total
}
