package sim

import (
	"testing"

	"github.com/opera-net/opera/internal/eventsim"
)

// TestAllocsPortEnqueueRoundTrip enforces the zero-alloc packet hot path:
// one enqueue–serialize–propagate–deliver round trip through a port must
// average ≤2 allocations (the PR-3 baseline was 4: two event objects and
// two closures per packet). The budget of 2 absorbs rare packet-pool misses
// (sync.Pool is cleared by GC); the steady-state count is 0. CI runs this
// via `-run 'TestAllocs'` on every PR.
func TestAllocsPortEnqueueRoundTrip(t *testing.T) {
	eng := eventsim.New()
	cfg := DefaultConfig()
	pt := NewPort(eng, &cfg, "alloc", drainNode{})
	step := cfg.SerializationDelay(cfg.MTU) + cfg.PropDelay
	send := func() {
		p := NewPacket()
		p.Kind = KindData
		p.Class = ClassLowLatency
		p.Size = int32(cfg.MTU)
		p.PayloadSize = int32(cfg.MTU)
		pt.Enqueue(p)
		eng.RunUntil(eng.Now() + step)
	}
	// Warm the event free list and the packet pool.
	for i := 0; i < 64; i++ {
		send()
	}
	if avg := testing.AllocsPerRun(200, send); avg > 2 {
		t.Fatalf("enqueue–transmit round trip allocates %.1f/op, want <= 2", avg)
	}
}

// TestAllocsBulkDropPath keeps the overflow NACK trigger allocation-lean
// too: a bulk drop hands the packet to the handler without any event
// scheduling of its own.
func TestAllocsBulkDropPath(t *testing.T) {
	eng := eventsim.New()
	cfg := DefaultConfig()
	cfg.BulkQueueBytes = 0 // every bulk arrival overflows
	pt := NewPort(eng, &cfg, "alloc", drainNode{})
	pt.SetEnabled(false)
	pt.SetBulkDropHandler(func(p *Packet) { p.Release() })
	send := func() {
		p := NewPacket()
		p.Kind = KindBulk
		p.Class = ClassBulk
		p.Size = int32(cfg.MTU)
		p.PayloadSize = int32(cfg.MTU)
		pt.Enqueue(p)
	}
	for i := 0; i < 64; i++ {
		send()
	}
	if avg := testing.AllocsPerRun(200, send); avg > 1 {
		t.Fatalf("bulk drop path allocates %.1f/op, want <= 1", avg)
	}
}

// TestAllocsFlushCycle pins the reconfiguration flush path: a non-empty
// port flushed twice per slice must not shed and regrow its ring buffers —
// drained snapshots hand their backing arrays back to the live queues.
func TestAllocsFlushCycle(t *testing.T) {
	eng := eventsim.New()
	cfg := DefaultConfig()
	pt := NewPort(eng, &cfg, "alloc", drainNode{})
	pt.SetEnabled(false)
	pt.SetBulkDropHandler(func(p *Packet) { p.Release() })
	cycle := func() {
		for i := 0; i < 3; i++ {
			p := NewPacket()
			p.Kind = KindBulk
			p.Class = ClassBulk
			p.Size = int32(cfg.MTU)
			p.PayloadSize = int32(cfg.MTU)
			pt.Enqueue(p)
			q := NewPacket()
			q.Kind = KindData
			q.Class = ClassLowLatency
			q.Size = int32(cfg.MTU)
			q.PayloadSize = int32(cfg.MTU)
			pt.Enqueue(q)
		}
		pt.FlushForReconfig(func(p *Packet) { p.Release() })
	}
	for i := 0; i < 16; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(100, cycle); avg > 1 {
		t.Fatalf("flush cycle allocates %.1f/op, want <= 1", avg)
	}
}
