package sim

import (
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/topology"
)

// Config carries the physical constants of a simulation. The zero value is
// not usable; call DefaultConfig and override fields as needed.
type Config struct {
	// LinkRateGbps is the line rate of every link (hosts and fabric); the
	// paper evaluates 10 Gb/s throughout.
	LinkRateGbps float64
	// PropDelay is the one-way propagation delay per hop (500 ns ≈ 100 m).
	PropDelay eventsim.Time
	// MTU is the maximum (and default data) packet size in bytes.
	MTU int
	// HeaderBytes is the wire size of trimmed headers and control packets.
	HeaderBytes int
	// DataQueueBytes bounds each port's low-latency data queue; arrivals
	// beyond it are trimmed to headers (§4.2.1: 12 KB ≈ 8 full packets).
	DataQueueBytes int
	// HeaderQueueBytes bounds each port's header/control queue (§4.2.1).
	HeaderQueueBytes int
	// BulkQueueBytes bounds each port's bulk staging queue; overflow drops
	// trigger RotorLB NACKs (§4.2.2).
	BulkQueueBytes int
}

// DefaultConfig returns the paper's physical constants. The bulk staging
// bound is sized to absorb one slice of full circuit convergence on a
// downlink (u−1 inbound circuits can momentarily target one host; the
// §4.2.2 NACK path handles anything beyond).
func DefaultConfig() Config {
	return Config{
		LinkRateGbps:     topology.DefaultLinkRateGbps,
		PropDelay:        topology.DefaultPropDelay,
		MTU:              topology.DefaultMTU,
		HeaderBytes:      topology.DefaultHeaderBytes,
		DataQueueBytes:   topology.DefaultDataQueueBytes,
		HeaderQueueBytes: topology.DefaultHeaderQueue,
		BulkQueueBytes:   1 << 20,
	}
}

// SerializationDelay returns the time to clock the given bytes onto a link.
func (c *Config) SerializationDelay(bytes int) eventsim.Time {
	ns := float64(bytes) * 8 / c.LinkRateGbps // Gb/s ⇒ bits/ns
	return eventsim.Time(ns + 0.5)
}

// BytesIn returns how many bytes the link can carry in d.
func (c *Config) BytesIn(d eventsim.Time) int {
	if d <= 0 {
		return 0
	}
	return int(float64(d) * c.LinkRateGbps / 8)
}
