package sim

import (
	"fmt"
	"math/rand"

	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/topology"
)

// ClosNet assembles the M:1-oversubscribed three-tier folded-Clos baseline
// with NDP transport and per-packet ECMP spraying: packets travel
// host → ToR → (random pod agg) → (random core) → agg → ToR → host, with
// the downward path determined by the destination.
type ClosNet struct {
	eng     *eventsim.Engine
	cfg     *Config
	topo    *topology.FoldedClos
	hosts   []*Host
	tors    []*ClosToR
	aggs    []*ClosAgg
	cores   []*ClosCore
	metrics *Metrics
	faults  *ClosFaults // lazily created; see clos_faults.go
	// faultSeed seeds deterministic gray-failure (lossy-link) draws.
	faultSeed int64
}

func init() {
	Register("foldedclos", func(p BuildParams) (Network, error) {
		topo, err := topology.NewFoldedClos(p.ClosK, p.ClosF)
		if err != nil {
			return nil, err
		}
		return NewClosNet(p.Engine, p.Sim, topo, p.Seed+1), nil
	})
}

// NewClosNet wires the folded-Clos fabric.
func NewClosNet(eng *eventsim.Engine, cfg Config, topo *topology.FoldedClos, seed int64) *ClosNet {
	n := &ClosNet{eng: eng, cfg: &cfg, topo: topo, metrics: NewMetrics(), faultSeed: seed}
	n.hosts = make([]*Host, topo.NumHosts())
	n.tors = make([]*ClosToR, topo.NumToRs)
	n.aggs = make([]*ClosAgg, topo.NumAgg)
	n.cores = make([]*ClosCore, topo.NumCore)

	for i := range n.tors {
		n.tors[i] = &ClosToR{net: n, id: int32(i), rng: rand.New(rand.NewSource(seed + int64(i) + 1))}
	}
	for i := range n.aggs {
		n.aggs[i] = &ClosAgg{net: n, id: int32(i), rng: rand.New(rand.NewSource(seed + 10_000 + int64(i)))}
	}
	for i := range n.cores {
		n.cores[i] = &ClosCore{net: n, id: int32(i)}
	}
	d := topo.HostsPerToR
	for h := range n.hosts {
		host := NewHost(eng, n.cfg, int32(h), int32(h/d))
		n.hosts[h] = host
		host.SetNIC(NewPort(eng, n.cfg, fmt.Sprintf("host%d->tor%d", h, host.Rack), n.tors[host.Rack]))
	}
	// ToR ports: d down to hosts, u up — one to each agg in its pod.
	for t, tor := range n.tors {
		tor.down = make([]*Port, d)
		for i := 0; i < d; i++ {
			host := n.hosts[t*d+i]
			tor.down[i] = NewPort(eng, n.cfg, fmt.Sprintf("tor%d->host%d", t, host.ID), host)
		}
		pod := topo.ToRPod(t)
		tor.up = make([]*Port, topo.UplinksPerToR)
		for i := 0; i < topo.UplinksPerToR; i++ {
			agg := n.aggs[pod*topo.AggPerPod+i%topo.AggPerPod]
			tor.up[i] = NewPort(eng, n.cfg, fmt.Sprintf("tor%d->agg%d", t, agg.id), agg)
		}
	}
	// Agg ports: k/2 down to pod ToRs, k/2 up to its core group.
	corePerAgg := topo.K / 2
	for a, agg := range n.aggs {
		pod := a / topo.AggPerPod
		inPod := a % topo.AggPerPod
		agg.pod = int32(pod)
		agg.down = make([]*Port, topo.ToRsPerPod)
		for i := 0; i < topo.ToRsPerPod; i++ {
			tor := n.tors[pod*topo.ToRsPerPod+i]
			agg.down[i] = NewPort(eng, n.cfg, fmt.Sprintf("agg%d->tor%d", a, tor.id), tor)
		}
		agg.up = make([]*Port, corePerAgg)
		for i := 0; i < corePerAgg; i++ {
			core := n.cores[(inPod*corePerAgg+i)%topo.NumCore]
			agg.up[i] = NewPort(eng, n.cfg, fmt.Sprintf("agg%d->core%d", a, core.id), core)
		}
	}
	// Core ports: one down to the corresponding agg of every pod.
	for c, core := range n.cores {
		inPodPos := c / corePerAgg // which in-pod agg position this core serves
		core.down = make([]*Port, topo.NumPods)
		for pod := 0; pod < topo.NumPods; pod++ {
			agg := n.aggs[pod*topo.AggPerPod+inPodPos%topo.AggPerPod]
			core.down[pod] = NewPort(eng, n.cfg, fmt.Sprintf("core%d->agg%d", c, agg.id), agg)
		}
	}
	return n
}

// Engine returns the simulation engine.
func (n *ClosNet) Engine() *eventsim.Engine { return n.eng }

// Kind implements Network.
func (n *ClosNet) Kind() string { return "foldedclos" }

// PacketCapable implements Network: the Clos is all packet switching.
func (n *ClosNet) PacketCapable() bool { return true }

// NumRacks implements Network.
func (n *ClosNet) NumRacks() int { return n.topo.NumToRs }

// HostsPerRack implements Network.
func (n *ClosNet) HostsPerRack() int { return n.topo.HostsPerToR }

// Start implements Network; a static fabric has no circuit clock.
func (n *ClosNet) Start() {}

// Stop implements Network.
func (n *ClosNet) Stop() {}

// Config returns the physical constants.
func (n *ClosNet) Config() *Config { return n.cfg }

// Metrics returns the metrics collector.
func (n *ClosNet) Metrics() *Metrics { return n.metrics }

// Hosts returns all hosts.
func (n *ClosNet) Hosts() []*Host { return n.hosts }

// Topology returns the Clos dimensions.
func (n *ClosNet) Topology() *topology.FoldedClos { return n.topo }

// ClosToR is a ToR switch: up for non-local, down for local.
type ClosToR struct {
	net  *ClosNet
	id   int32
	up   []*Port
	down []*Port
	rng  *rand.Rand
}

// Receive implements Node. With no injector attached the no-fault path
// is taken verbatim (same RNG draws); with one attached, spraying is
// restricted to live uplinks — the draw count stays identical while
// nothing is down, so attaching an idle injector preserves byte-identity.
func (t *ClosToR) Receive(p *Packet, _ *Port) {
	cf := t.net.faults
	if cf != nil && cf.torDown[int(t.id)] {
		cf.lose(p)
		return
	}
	if p.DstRack == t.id {
		d := len(t.down)
		idx := int(p.DstHost) - int(t.id)*d
		if idx < 0 || idx >= d {
			p.Release()
			return
		}
		t.down[idx].Enqueue(p)
		return
	}
	if cf == nil {
		p.Hops++
		t.up[t.rng.Intn(len(t.up))].Enqueue(p)
		return
	}
	live := 0
	for i := range t.up {
		if cf.torUplinkUp(int(t.id), i) {
			live++
		}
	}
	if live == 0 {
		cf.lose(p)
		return
	}
	k := t.rng.Intn(live)
	for i := range t.up {
		if cf.torUplinkUp(int(t.id), i) {
			if k == 0 {
				p.Hops++
				t.up[i].Enqueue(p)
				return
			}
			k--
		}
	}
}

// ClosAgg is a pod aggregation switch.
type ClosAgg struct {
	net  *ClosNet
	id   int32
	pod  int32
	up   []*Port
	down []*Port
	rng  *rand.Rand
}

// Receive implements Node; see ClosToR.Receive on fault gating.
func (a *ClosAgg) Receive(p *Packet, _ *Port) {
	topo := a.net.topo
	cf := a.net.faults
	if cf != nil && cf.aggDown[int(a.id)] {
		cf.lose(p)
		return
	}
	dstPod := topo.ToRPod(int(p.DstRack))
	if int32(dstPod) == a.pod {
		if cf != nil && !cf.aggDownToTor(int(a.id), int(p.DstRack)) {
			cf.lose(p)
			return
		}
		a.down[int(p.DstRack)%topo.ToRsPerPod].Enqueue(p)
		return
	}
	if cf == nil {
		a.up[a.rng.Intn(len(a.up))].Enqueue(p)
		return
	}
	live := 0
	for j := range a.up {
		if cf.aggUplinkUp(int(a.id), j) {
			live++
		}
	}
	if live == 0 {
		cf.lose(p)
		return
	}
	k := a.rng.Intn(live)
	for j := range a.up {
		if cf.aggUplinkUp(int(a.id), j) {
			if k == 0 {
				a.up[j].Enqueue(p)
				return
			}
			k--
		}
	}
}

// ClosCore is a core switch; the downward pod is determined by the
// destination.
type ClosCore struct {
	net  *ClosNet
	id   int32
	down []*Port // indexed by pod
}

// Receive implements Node; the downward hop is deterministic, so a dead
// core or dead tier-2 reverse cable drops the packet (NDP retransmits).
func (c *ClosCore) Receive(p *Packet, _ *Port) {
	pod := c.net.topo.ToRPod(int(p.DstRack))
	if cf := c.net.faults; cf != nil && !cf.coreDownToAgg(int(c.id), pod) {
		cf.lose(p)
		return
	}
	c.down[pod].Enqueue(p)
}
