package sim_test

import (
	"testing"

	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/ndp"
	"github.com/opera-net/opera/internal/rotorlb"
	"github.com/opera-net/opera/internal/sim"
	"github.com/opera-net/opera/internal/topology"
)

// testbed bundles a small Opera network with both transports attached.
type testbed struct {
	eng      *eventsim.Engine
	net      *sim.OperaNet
	lb       *rotorlb.LB
	eps      []*ndp.Endpoint
	registry map[int64]*sim.Flow
	nextID   int64
}

func newTestbed(t *testing.T, racks, hostsPer, switches int) *testbed {
	t.Helper()
	topo, err := topology.NewOpera(topology.Config{
		NumRacks:     racks,
		HostsPerRack: hostsPer,
		NumSwitches:  switches,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := eventsim.New()
	net := sim.NewOperaNet(eng, sim.DefaultConfig(), topo, 7)
	registry := make(map[int64]*sim.Flow)
	lb := rotorlb.Attach(net, rotorlb.DefaultParams(), registry)
	eps := ndp.Attach(net.Hosts(), net.Metrics(), ndp.DefaultParams(), registry)
	net.Start()
	return &testbed{eng: eng, net: net, lb: lb, eps: eps, registry: registry}
}

func (tb *testbed) flow(src, dst int, size int64, class sim.Class) *sim.Flow {
	tb.nextID++
	f := &sim.Flow{
		ID:      tb.nextID,
		SrcHost: int32(src),
		DstHost: int32(dst),
		SrcRack: int32(tb.net.Topology().HostRack(src)),
		DstRack: int32(tb.net.Topology().HostRack(dst)),
		Size:    size,
		Class:   class,
	}
	tb.registry[f.ID] = f
	tb.net.Metrics().AddFlow(f)
	return f
}

func (tb *testbed) startLL(f *sim.Flow)   { tb.eps[f.SrcHost].StartFlow(f) }
func (tb *testbed) startBulk(f *sim.Flow) { tb.lb.StartFlow(f) }

// runUntilDone drives the simulation until all flows complete or the
// deadline passes, returning whether all completed.
func (tb *testbed) runUntilDone(t *testing.T, deadline eventsim.Time) bool {
	t.Helper()
	step := 100 * eventsim.Microsecond
	for tb.eng.Now() < deadline {
		tb.eng.RunUntil(tb.eng.Now() + step)
		done, total := tb.net.Metrics().DoneCount()
		if done == total {
			return true
		}
	}
	return false
}

func TestLLSingleSmallFlow(t *testing.T) {
	tb := newTestbed(t, 16, 4, 4)
	f := tb.flow(0, 63, 4500, sim.ClassLowLatency) // rack 0 → rack 15, 3 packets
	tb.startLL(f)
	if !tb.runUntilDone(t, 50*eventsim.Millisecond) {
		t.Fatalf("flow did not complete: rcvd %d/%d", f.BytesRcvd, f.Size)
	}
	// 3 packets over ≤5 hops: minimum ~ a few µs; must be well under 100 µs.
	if fct := f.FCT(); fct > 100*eventsim.Microsecond {
		t.Fatalf("FCT = %v, want < 100µs", fct)
	}
	if f.BytesRcvd != f.Size {
		t.Fatalf("received %d bytes, want %d", f.BytesRcvd, f.Size)
	}
}

func TestLLRackLocalFlow(t *testing.T) {
	tb := newTestbed(t, 16, 4, 4)
	f := tb.flow(0, 1, 1500, sim.ClassLowLatency)
	tb.startLL(f)
	if !tb.runUntilDone(t, 10*eventsim.Millisecond) {
		t.Fatal("rack-local flow did not complete")
	}
	// host→ToR→host: 2 serializations + 2 props ≈ 3.4 µs.
	if fct := f.FCT(); fct > 10*eventsim.Microsecond {
		t.Fatalf("local FCT = %v", fct)
	}
}

func TestLLManyFlowsAllComplete(t *testing.T) {
	tb := newTestbed(t, 16, 4, 4)
	n := tb.net.Topology().NumHosts()
	var flows []*sim.Flow
	for i := 0; i < n; i++ {
		f := tb.flow(i, (i+17)%n, 30000, sim.ClassLowLatency)
		flows = append(flows, f)
		tb.startLL(f)
	}
	if !tb.runUntilDone(t, 200*eventsim.Millisecond) {
		done, total := tb.net.Metrics().DoneCount()
		t.Fatalf("only %d/%d flows completed", done, total)
	}
	for _, f := range flows {
		if f.BytesRcvd != f.Size {
			t.Fatalf("flow %d: %d/%d bytes", f.ID, f.BytesRcvd, f.Size)
		}
	}
	// Low-latency traffic pays a bandwidth tax (multi-hop paths).
	if tax := tb.net.Metrics().BandwidthTax(sim.ClassLowLatency); tax <= 0 {
		t.Fatalf("LL tax = %v, want > 0", tax)
	}
}

func TestBulkSingleFlowDirectOnly(t *testing.T) {
	tb := newTestbed(t, 16, 4, 4)
	f := tb.flow(0, 60, 2<<20, sim.ClassBulk) // 2 MB rack 0 → rack 15
	tb.startBulk(f)
	if !tb.runUntilDone(t, 2000*eventsim.Millisecond) {
		t.Fatalf("bulk flow incomplete: %d/%d bytes (NACKs %d)",
			f.BytesRcvd, f.Size, tb.lb.NACKs)
	}
	if f.BytesRcvd != f.Size {
		t.Fatalf("byte mismatch: %d/%d", f.BytesRcvd, f.Size)
	}
}

func TestBulkTaxIsLowAllToAll(t *testing.T) {
	// True all-to-all bulk: every rack pair has demand, so no circuit has
	// spare capacity to offer and nearly all bytes ride direct (tax ≈ 0).
	// This is the Figure 8 regime where Opera avoids the bandwidth tax.
	tb := newTestbed(t, 16, 4, 4)
	topo := tb.net.Topology()
	n := topo.NumHosts()
	for i := 0; i < n; i++ {
		for r := 0; r < topo.NumRacks(); r++ {
			if r == topo.HostRack(i) {
				continue
			}
			dst := r*topo.HostsPerRack() + i%topo.HostsPerRack()
			f := tb.flow(i, dst, 100_000, sim.ClassBulk)
			tb.startBulk(f)
		}
	}
	if !tb.runUntilDone(t, 3000*eventsim.Millisecond) {
		done, total := tb.net.Metrics().DoneCount()
		t.Fatalf("only %d/%d bulk flows completed (NACKs %d)", done, total, tb.lb.NACKs)
	}
	tax := tb.net.Metrics().BandwidthTax(sim.ClassBulk)
	if tax > 0.15 {
		t.Fatalf("all-to-all bulk tax = %v, want ≈0 (direct paths)", tax)
	}
}

func TestBulkSkewUsesVLB(t *testing.T) {
	// One hot rack pair with everything else idle: VLB should engage and
	// beat the single direct circuit's time share.
	tb := newTestbed(t, 16, 4, 4)
	var flows []*sim.Flow
	for i := 0; i < 4; i++ { // all hosts of rack 0 → rack 8
		f := tb.flow(i, 32+i, 4<<20, sim.ClassBulk)
		flows = append(flows, f)
		tb.startBulk(f)
	}
	if !tb.runUntilDone(t, 5000*eventsim.Millisecond) {
		done, total := tb.net.Metrics().DoneCount()
		t.Fatalf("only %d/%d flows completed", done, total)
	}
	// VLB bytes were relayed.
	var vlb uint64
	for r := 0; r < 16; r++ {
		vlb += tb.lb.Agent(r).SentVLB
	}
	if vlb == 0 {
		t.Fatal("skewed workload sent no VLB traffic")
	}
}

func TestMixedLLAndBulk(t *testing.T) {
	// LL flows must retain low FCT while bulk saturates the fabric.
	tb := newTestbed(t, 16, 4, 4)
	n := tb.net.Topology().NumHosts()
	for i := 0; i < n; i++ {
		dst := (i + 29) % n
		if tb.net.Topology().HostRack(dst) == tb.net.Topology().HostRack(i) {
			dst = (dst + 5) % n
		}
		tb.startBulk(tb.flow(i, dst, 1<<20, sim.ClassBulk))
	}
	var llFlows []*sim.Flow
	for i := 0; i < 32; i++ {
		src := (i * 7) % n
		dst := (src + n/2) % n
		f := tb.flow(src, dst, 6000, sim.ClassLowLatency)
		llFlows = append(llFlows, f)
	}
	// Start LL mid-way so they contend with bulk in flight.
	tb.eng.After(500*eventsim.Microsecond, func() {
		for _, f := range llFlows {
			tb.startLL(f)
		}
	})
	if !tb.runUntilDone(t, 5000*eventsim.Millisecond) {
		done, total := tb.net.Metrics().DoneCount()
		t.Fatalf("only %d/%d flows completed", done, total)
	}
	for _, f := range llFlows {
		if fct := f.FCT(); fct > 1*eventsim.Millisecond {
			t.Fatalf("LL flow FCT = %v under bulk load, want << 1ms", fct)
		}
	}
}

func TestSliceClockAdvances(t *testing.T) {
	tb := newTestbed(t, 16, 4, 4)
	var seen []int64
	tb.net.OnSlice(func(s int64) { seen = append(seen, s) })
	tb.eng.RunUntil(1050 * eventsim.Microsecond)
	// Slice duration 100µs: boundaries at 100,200,...,1000 plus none for 0
	// (Start already ran at attach time before OnSlice registration).
	if len(seen) < 10 {
		t.Fatalf("saw %d slice boundaries, want >= 10", len(seen))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] != seen[i-1]+1 {
			t.Fatalf("slice sequence broken: %v", seen)
		}
	}
	if tb.net.CurrentSlice() < 10 {
		t.Fatalf("current slice = %d", tb.net.CurrentSlice())
	}
}
