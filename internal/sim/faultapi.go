package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"github.com/opera-net/opera/internal/eventsim"
)

// This file is the structured fault-injection surface shared by every
// fabric: coordinates (LinkID, Target), fault descriptors (Fault), the
// FaultInjector interface, and the dispatch core (faultCore) the four
// per-fabric injectors build on. The old flat FailLink/FailToR/... calls
// survive as thin Deprecated shims on the concrete injector types.
//
// Coordinates are fabric-interpreted. Flat fabrics (Opera, RotorNet, the
// expander) name links as {Tier: 0, Switch: rack, Port: uplink}; the
// folded Clos names its two cable tiers explicitly (ClosTierToR,
// ClosTierAgg) and normalizes Tier 0 to the ToR-uplink tier so flat
// schedules run unchanged. Switch targets carry a tier too: Tier 0 is the
// fabric's default switch plane (the rotor switches on Opera/RotorNet);
// the Clos requires an explicit tier (ClosTierAgg or ClosTierCore), and
// the expander — which has no fabric switches at all — rejects switch
// targets with ErrUnsupportedTarget.

// LinkID names one physical cable in a fabric-interpreted coordinate
// space. Flat fabrics use {Tier: 0, Switch: rack, Port: uplink} (see
// FlatLink); the folded Clos uses ClosTierToR/ClosTierAgg tiers where
// Switch indexes the switch whose uplink the cable is.
type LinkID struct {
	Tier   int
	Switch int
	Port   int
}

// FlatLink names a link in the flat fabrics' {rack, uplink} coordinate
// space: Opera and RotorNet's rack↔rotor-switch cables, the expander's
// rack↔neighbor-slot cables, and (normalized to ClosTierToR) a Clos ToR's
// uplink.
func FlatLink(rack, uplink int) LinkID { return LinkID{Tier: 0, Switch: rack, Port: uplink} }

// Clos link and switch tiers. Tier 1 cables are ToR uplinks (Switch is
// the ToR index), tier 2 cables are aggregation-switch uplinks (Switch is
// the agg index). Switch targets use ClosTierAgg and ClosTierCore; a Clos
// ToR is addressed with ToRTarget like on every other fabric.
const (
	ClosTierToR  = 1
	ClosTierAgg  = 2
	ClosTierCore = 3
)

// String renders the coordinate; tier 0 prints in the flat form.
func (l LinkID) String() string {
	if l.Tier == 0 {
		return fmt.Sprintf("link(rack=%d,up=%d)", l.Switch, l.Port)
	}
	return fmt.Sprintf("link(tier=%d,sw=%d,port=%d)", l.Tier, l.Switch, l.Port)
}

// TargetKind discriminates what a Target names.
type TargetKind uint8

const (
	// TargetLink names one physical cable.
	TargetLink TargetKind = iota
	// TargetToR names a whole top-of-rack switch (all its fabric cables).
	TargetToR
	// TargetSwitch names a fabric switch: a rotor switch on Opera and
	// RotorNet (Tier 0), an aggregation or core switch on the Clos
	// (ClosTierAgg / ClosTierCore).
	TargetSwitch
)

func (k TargetKind) String() string {
	switch k {
	case TargetLink:
		return "link"
	case TargetToR:
		return "tor"
	case TargetSwitch:
		return "switch"
	}
	return fmt.Sprintf("TargetKind(%d)", uint8(k))
}

// Target is the injection coordinate: one link, one ToR, or one fabric
// switch. Build with LinkTarget, ToRTarget, SwitchTarget or
// TierSwitchTarget.
type Target struct {
	Kind TargetKind
	// Link is the cable coordinate when Kind == TargetLink.
	Link LinkID
	// Tier qualifies switch targets on multi-tier fabrics (0 = the
	// fabric's default switch plane).
	Tier int
	// ID is the rack (TargetToR) or switch (TargetSwitch) index.
	ID int
}

// LinkTarget targets one physical cable.
func LinkTarget(l LinkID) Target { return Target{Kind: TargetLink, Link: l} }

// ToRTarget targets a whole top-of-rack switch.
func ToRTarget(rack int) Target { return Target{Kind: TargetToR, ID: rack} }

// SwitchTarget targets a fabric switch on the default switch plane
// (Opera/RotorNet rotor switches). Multi-tier fabrics require
// TierSwitchTarget.
func SwitchTarget(sw int) Target { return Target{Kind: TargetSwitch, ID: sw} }

// TierSwitchTarget targets a switch on an explicit tier (the folded
// Clos: ClosTierAgg or ClosTierCore).
func TierSwitchTarget(tier, sw int) Target {
	return Target{Kind: TargetSwitch, Tier: tier, ID: sw}
}

// String renders the target.
func (t Target) String() string {
	switch t.Kind {
	case TargetLink:
		return t.Link.String()
	case TargetToR:
		return fmt.Sprintf("tor(%d)", t.ID)
	case TargetSwitch:
		if t.Tier == 0 {
			return fmt.Sprintf("switch(%d)", t.ID)
		}
		return fmt.Sprintf("switch(tier=%d,%d)", t.Tier, t.ID)
	}
	return fmt.Sprintf("target(kind=%d)", t.Kind)
}

// FaultKind discriminates fault descriptors.
type FaultKind uint8

const (
	// FaultDown is a clean cut: the target goes dark until recovered.
	FaultDown FaultKind = iota
	// FaultLossy is a gray failure: the link stays up but drops each
	// transmitted packet independently with probability Rate.
	FaultLossy
	// FaultDegraded is a gray failure: the link stays up but serializes
	// at RateFraction of its nominal rate.
	FaultDegraded
	// FaultFlapping cycles the target down for Down, up for Up,
	// repeating until recovered.
	FaultFlapping
)

func (k FaultKind) String() string {
	switch k {
	case FaultDown:
		return "down"
	case FaultLossy:
		return "lossy"
	case FaultDegraded:
		return "degraded"
	case FaultFlapping:
		return "flapping"
	}
	return fmt.Sprintf("FaultKind(%d)", uint8(k))
}

// Fault describes what goes wrong at a target. Build with DownFault,
// LossyFault, DegradedFault or FlappingFault.
type Fault struct {
	Kind FaultKind
	// Rate is the per-packet drop probability of a lossy link, in (0,1].
	Rate float64
	// RateFraction is the fraction of nominal serialization rate a
	// degraded link retains, in (0,1).
	RateFraction float64
	// Up and Down are the phase lengths of a flapping target.
	Up, Down eventsim.Time
}

// DownFault is a clean cut.
func DownFault() Fault { return Fault{Kind: FaultDown} }

// LossyFault drops each transmitted packet with probability rate while
// the link stays nominally up (transports see unexplained loss, not a
// dead cable).
func LossyFault(rate float64) Fault { return Fault{Kind: FaultLossy, Rate: rate} }

// DegradedFault derates the link to the given fraction of its nominal
// serialization rate (a slow port: dirty optics, a failing transceiver).
func DegradedFault(fraction float64) Fault {
	return Fault{Kind: FaultDegraded, RateFraction: fraction}
}

// FlappingFault cycles the target: down for down, up for up, repeating
// from the injection time until Recover cancels the cycle.
func FlappingFault(up, down eventsim.Time) Fault {
	return Fault{Kind: FaultFlapping, Up: up, Down: down}
}

// String renders the descriptor.
func (f Fault) String() string {
	switch f.Kind {
	case FaultLossy:
		return fmt.Sprintf("lossy(%g)", f.Rate)
	case FaultDegraded:
		return fmt.Sprintf("degraded(%g)", f.RateFraction)
	case FaultFlapping:
		return fmt.Sprintf("flapping(up=%v,down=%v)", f.Up, f.Down)
	}
	return f.Kind.String()
}

// Validate checks the descriptor's parameters.
func (f Fault) Validate() error {
	switch f.Kind {
	case FaultDown:
		return nil
	case FaultLossy:
		if !(f.Rate > 0 && f.Rate <= 1) { // also rejects NaN
			return fmt.Errorf("sim: lossy fault rate %g must be in (0,1]", f.Rate)
		}
		return nil
	case FaultDegraded:
		if !(f.RateFraction > 0 && f.RateFraction < 1) {
			return fmt.Errorf("sim: degraded fault rate fraction %g must be in (0,1)", f.RateFraction)
		}
		return nil
	case FaultFlapping:
		if f.Up <= 0 || f.Down <= 0 {
			return fmt.Errorf("sim: flapping fault phases (up=%v, down=%v) must be positive", f.Up, f.Down)
		}
		return nil
	}
	return fmt.Errorf("sim: unknown fault kind %d", f.Kind)
}

// ErrUnsupportedTarget marks a target kind a fabric cannot express (the
// expander has no fabric switches; the Clos has no Tier-0 switch plane).
// Test with errors.Is.
var ErrUnsupportedTarget = errors.New("fault target unsupported on this fabric")

// FaultInjector schedules runtime failures (and recoveries) into a live
// fabric using structured coordinates. All four built-in fabrics
// implement it: Opera (§3.6.2's detection-and-epidemic model,
// FailureState), the expander (instant link-state reconvergence,
// ExpanderFaults), RotorNet (instant global knowledge over the OOB
// management channel, RotorFaults) and the folded Clos (instant local
// link-state, ClosFaults).
//
// Inject validates the target and descriptor synchronously — bad
// coordinates or an unsupported target kind return an error before
// anything is scheduled — and then schedules the fault to take effect at
// the given virtual time. Recover clears every effect on the target
// (down state, gray impairments, an active flap cycle) at the given
// time. Links enumerates the fabric's physical-cable universe, one
// canonical LinkID per cable, in deterministic order — the sampling
// space for random-failure sweeps.
type FaultInjector interface {
	Inject(t Target, f Fault, at eventsim.Time) error
	Recover(t Target, at eventsim.Time) error
	Links() []LinkID
}

// fabricFaultOps is the per-fabric primitive set faultCore drives: pure
// coordinate validation, link→endpoint-port resolution (for gray
// impairments), and the fabric's own up/down state transition (which
// runs inside the scheduled event and carries the fabric's failure
// semantics — Opera's epidemic, the expander's rebuild, Clos drains).
type fabricFaultOps interface {
	// checkTarget validates coordinates; it must not mutate anything.
	checkTarget(t Target) error
	// linkPorts resolves a (validated) link to the output ports that
	// carry its gray impairments.
	linkPorts(l LinkID) []*Port
	// setDown applies or clears the fabric's down state for a validated
	// target. It runs inside the engine at the scheduled time.
	setDown(t Target, down bool)
}

// faultCore is the shared dispatch engine embedded by every injector:
// it validates, schedules, seeds gray impairments deterministically, and
// runs flap cycles with generation-counted cancellation.
type faultCore struct {
	eng  *eventsim.Engine
	seed int64
	ops  fabricFaultOps

	// flapGen cancels flap cycles: each new fault or recovery on a
	// target bumps its generation at its scheduled time, and a flap
	// transition whose generation is stale stops rescheduling. Only
	// engine callbacks touch it, so no locking is needed.
	flapGen map[Target]uint64

	// active tracks the fault currently applied to each target,
	// maintained at fire time by faultOp.OnEvent (latest fault wins per
	// target; Recover deletes) so it reflects what the fabric actually
	// sees, not what has merely been scheduled. Only engine callbacks
	// touch it. Read through ActiveFaults.
	active map[Target]Fault

	// strandedProbe, when wired (Cluster.Faults does it for circuit
	// fabrics), reports RotorLB VLB bytes stranded at relays whose
	// second leg is unreachable. See StrandedBytes.
	strandedProbe func() int64
}

func (fc *faultCore) init(eng *eventsim.Engine, seed int64, ops fabricFaultOps) {
	fc.eng = eng
	fc.seed = seed
	fc.ops = ops
	fc.flapGen = make(map[Target]uint64)
	fc.active = make(map[Target]Fault)
}

func (fc *faultCore) bumpGen(t Target) uint64 {
	fc.flapGen[t]++
	return fc.flapGen[t]
}

// linkSeed derives a per-link, per-endpoint deterministic seed for lossy
// draws: stable across runs and independent of scheduling parallelism,
// decorrelated across links and from the workload generators (which
// consume the fabric seed directly).
func (fc *faultCore) linkSeed(l LinkID, end int) int64 {
	const grayFaultSalt = int64(-0x61c8864680b583eb) // 0x9e3779b97f4a7c15
	z := fc.seed ^ grayFaultSalt
	z ^= int64(l.Tier)<<48 ^ int64(l.Switch)<<24 ^ int64(l.Port)<<8 ^ int64(end)
	// splitmix64 finalizer to spread the structured bits.
	z = (z ^ (z >> 30)) * -0x40a7b892e31b1a47
	z = (z ^ (z >> 27)) * -0x6b2fb644ecceee15
	return z ^ (z >> 31)
}

// faultOpKind discriminates the scheduled fault transitions a faultOp
// can carry.
type faultOpKind uint8

const (
	opGray      faultOpKind = iota // apply lossy/degraded impairments
	opDown                         // cut the target
	opFlapStart                    // begin a flap cycle (first transition is down)
	opFlapStep                     // one flap transition; reschedules itself
	opRecover                      // clear down state, impairments, flap cycle
)

// faultOp is the pre-bound eventsim.Handler for one scheduled fault
// transition: one allocation per Inject/Recover call instead of one
// closure per event. A flap cycle reuses its single faultOp across every
// transition — the engine guarantees an event fires at most once, and a
// flap schedules exactly one successor, so the op is never doubly
// pending.
type faultOp struct {
	fc   *faultCore
	kind faultOpKind
	t    Target
	f    Fault
	gen  uint64 // flap-cycle generation; stale ⇒ the cycle is over
	down bool   // phase the next flap transition applies
}

// OnEvent implements eventsim.Handler.
func (op *faultOp) OnEvent(any) {
	fc := op.fc
	switch op.kind {
	case opGray:
		for end, pt := range fc.ops.linkPorts(op.t.Link) {
			if op.f.Kind == FaultLossy {
				pt.SetLossRate(op.f.Rate, fc.linkSeed(op.t.Link, end))
			} else {
				pt.SetRateDerating(op.f.RateFraction)
			}
		}
		fc.active[op.t] = op.f
	case opDown:
		fc.bumpGen(op.t) // an explicit cut overrides an active flap
		fc.ops.setDown(op.t, true)
		fc.active[op.t] = op.f
	case opFlapStart:
		// The generation is claimed at fire time, not at Inject time, so
		// an earlier-scheduled fault on the same target stays overridden.
		op.kind = opFlapStep
		op.gen = fc.bumpGen(op.t)
		op.down = true
		fc.active[op.t] = op.f
		op.flapStep()
	case opFlapStep:
		op.flapStep()
	case opRecover:
		fc.bumpGen(op.t)
		if op.t.Kind == TargetLink {
			for _, pt := range fc.ops.linkPorts(op.t.Link) {
				pt.ClearImpairments()
			}
		}
		fc.ops.setDown(op.t, false)
		delete(fc.active, op.t)
	}
}

// flapStep applies one flap transition and schedules the next; a stale
// generation (a newer fault or a recovery reached the target) ends the
// cycle without touching the fabric.
func (op *faultOp) flapStep() {
	fc := op.fc
	if fc.flapGen[op.t] != op.gen {
		return
	}
	fc.ops.setDown(op.t, op.down)
	d := op.f.Up
	if op.down {
		d = op.f.Down
	}
	op.down = !op.down
	fc.eng.AfterCall(d, op, nil)
}

// inject implements FaultInjector.Inject over the fabric ops.
func (fc *faultCore) inject(t Target, f Fault, at eventsim.Time) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if at < 0 {
		return fmt.Errorf("sim: inject %v at negative time %v", t, at)
	}
	if err := fc.ops.checkTarget(t); err != nil {
		return err
	}
	if f.Kind == FaultLossy || f.Kind == FaultDegraded {
		if t.Kind != TargetLink {
			return fmt.Errorf("sim: %v fault applies to links, not %v targets", f.Kind, t.Kind)
		}
		fc.eng.AtCall(at, &faultOp{fc: fc, kind: opGray, t: t, f: f}, nil)
		return nil
	}
	if f.Kind == FaultFlapping && t.Kind != TargetLink {
		return fmt.Errorf("sim: flapping fault applies to links, not %v targets", t.Kind)
	}
	switch f.Kind {
	case FaultDown:
		fc.eng.AtCall(at, &faultOp{fc: fc, kind: opDown, t: t, f: f}, nil)
	case FaultFlapping:
		fc.eng.AtCall(at, &faultOp{fc: fc, kind: opFlapStart, t: t, f: f}, nil)
	}
	return nil
}

// recover implements FaultInjector.Recover over the fabric ops: at the
// scheduled time the target's down state, gray impairments and any flap
// cycle are all cleared.
func (fc *faultCore) recover(t Target, at eventsim.Time) error {
	if at < 0 {
		return fmt.Errorf("sim: recover %v at negative time %v", t, at)
	}
	if err := fc.ops.checkTarget(t); err != nil {
		return err
	}
	fc.eng.AtCall(at, &faultOp{fc: fc, kind: opRecover, t: t}, nil)
	return nil
}

// SetStrandedProbe wires the injector's StrandedBytes counter to a live
// transport-layer probe. Cluster.Faults installs RotorLB's stranded-VLB
// accounting on circuit fabrics; fabrics without RotorLB leave it unset.
func (fc *faultCore) SetStrandedProbe(fn func() int64) { fc.strandedProbe = fn }

// StrandedBytes reports VLB bytes currently parked at relay racks that
// cannot reach the bytes' final destination over any direct circuit —
// the known RotorLB model gap: such bytes are not re-offloaded to a
// third rack, they wait for recovery (see rotorlb.LB.StrandedBytes).
// Zero when no probe is wired or nothing is stranded.
func (fc *faultCore) StrandedBytes() int64 {
	if fc.strandedProbe == nil {
		return 0
	}
	return fc.strandedProbe()
}

// ActiveFault pairs a target with the fault currently applied to it — one
// row of the observability plane's fault-state view.
type ActiveFault struct {
	Target Target
	Fault  Fault
}

// ActiveFaults returns the faults currently applied to the fabric, in a
// deterministic coordinate order (kind, tier, ID, link coordinates). A
// fault is listed from the virtual time its injection fires until its
// recovery fires; per target the latest-applied fault wins, exactly
// mirroring the fabric's state. A flapping target is listed for the whole
// cycle, through both phases. Like every injector method, ActiveFaults is
// only safe from the engine goroutine (e.g. an observer's sampling event).
//
// ActiveFaults is not part of the FaultInjector interface — reach it with
// a type assertion, like SetStrandedProbe:
//
//	if af, ok := inj.(interface{ ActiveFaults() []ActiveFault }); ok { ... }
func (fc *faultCore) ActiveFaults() []ActiveFault {
	if len(fc.active) == 0 {
		return nil
	}
	out := make([]ActiveFault, 0, len(fc.active))
	//operalint:allow maporder -- sorted into canonical coordinate order below
	for t, f := range fc.active {
		out = append(out, ActiveFault{Target: t, Fault: f})
	}
	sort.Slice(out, func(i, j int) bool { return targetLess(out[i].Target, out[j].Target) })
	return out
}

// targetLess orders targets by (kind, tier, ID, link tier, link switch,
// link port) — the canonical coordinate order of fault-state listings.
func targetLess(a, b Target) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Tier != b.Tier {
		return a.Tier < b.Tier
	}
	if a.ID != b.ID {
		return a.ID < b.ID
	}
	if a.Link.Tier != b.Link.Tier {
		return a.Link.Tier < b.Link.Tier
	}
	if a.Link.Switch != b.Link.Switch {
		return a.Link.Switch < b.Link.Switch
	}
	return a.Link.Port < b.Link.Port
}

// grayRand builds the deterministic generator behind a lossy port. Kept
// here (not in port.go) so the seeding policy lives with the rest of the
// fault machinery.
func grayRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// mustInject backs the deprecated flat shims: they have no error return,
// and the old surface paniced (at fire time) on bad coordinates, so a
// synchronous validation failure panics too.
func mustInject(err error) {
	if err != nil {
		panic(err)
	}
}
