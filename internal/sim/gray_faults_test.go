package sim_test

import (
	"math"
	"testing"

	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/sim"
	"github.com/opera-net/opera/internal/workload"
)

// Gray failures: lossy, degraded and flapping links through the
// structured injector, observed at the impaired ports.

// txPackets sums a port's transmitted packets across service classes.
func txPackets(pt *sim.Port) uint64 {
	var n uint64
	for _, c := range []sim.Class{sim.ClassControl, sim.ClassLowLatency, sim.ClassBulk} {
		n += pt.Stats.Tx[c].Packets
	}
	return n
}

// At loss rate 1.0 the accounting bound is exact: the loss draw runs
// after the Tx counter update, so every packet transmitted on the
// impaired port is counted lost — LinkLoss == Tx, no slack.
func TestLossyLinkExactLossAccounting(t *testing.T) {
	cl, fs := failureTestbed(t)
	mustOK(t, fs.Inject(sim.LinkTarget(sim.FlatLink(2, 1)), sim.LossyFault(1.0), 0))
	cl.AddSource(workload.FromSpecs(workload.Shuffle(16, 25_000, eventsim.Millisecond, 1)))
	cl.Run(5 * eventsim.Millisecond)
	pt := cl.OperaNet().ToR(2).Uplink(1)
	tx, lost := txPackets(pt), pt.Stats.LinkLoss
	if tx == 0 {
		t.Fatal("impaired uplink carried no traffic; test is vacuous")
	}
	if lost != tx {
		t.Fatalf("LinkLoss = %d, want exactly Tx = %d at rate 1.0", lost, tx)
	}
}

// At rate 0.5 losses follow the seeded per-link generator: the observed
// fraction sits inside a wide binomial bound, and a rerun reproduces the
// byte-identical count (determinism of the gray draw stream).
func TestLossyLinkStatisticalBoundAndDeterminism(t *testing.T) {
	run := func() (tx, lost uint64) {
		cl, fs := failureTestbed(t)
		mustOK(t, fs.Inject(sim.LinkTarget(sim.FlatLink(2, 1)), sim.LossyFault(0.5), 0))
		cl.AddSource(workload.FromSpecs(workload.Shuffle(16, 25_000, eventsim.Millisecond, 1)))
		cl.Run(5 * eventsim.Millisecond)
		pt := cl.OperaNet().ToR(2).Uplink(1)
		return txPackets(pt), pt.Stats.LinkLoss
	}
	tx, lost := run()
	if tx < 100 {
		t.Fatalf("only %d packets crossed the lossy uplink; not enough signal", tx)
	}
	frac := float64(lost) / float64(tx)
	// 5-sigma binomial bound around p = 0.5.
	margin := 5 * math.Sqrt(0.25/float64(tx))
	if math.Abs(frac-0.5) > margin {
		t.Fatalf("loss fraction %.4f outside %.4f ± %.4f (%d/%d)", frac, 0.5, margin, lost, tx)
	}
	tx2, lost2 := run()
	if tx2 != tx || lost2 != lost {
		t.Fatalf("lossy run not deterministic: (%d,%d) vs (%d,%d)", tx, lost, tx2, lost2)
	}
}

// A degraded link stays up — flows complete with zero link loss — but
// the rack behind it finishes measurably later than at full rate.
func TestDegradedLinkFaultSlowsButDelivers(t *testing.T) {
	run := func(derate bool) float64 {
		cl, fs := failureTestbed(t)
		if derate {
			for sw := 0; sw < 4; sw++ {
				mustOK(t, fs.Inject(sim.LinkTarget(sim.FlatLink(0, sw)), sim.DegradedFault(0.25), 0))
			}
		}
		d := cl.HostsPerRack()
		for i := 0; i < d; i++ {
			cl.AddFlow(workload.FlowSpec{
				Src: i, Dst: 9*d + i, Bytes: 200_000,
				Arrival: 10 * eventsim.Microsecond,
			})
		}
		if !cl.RunUntilDone(3000 * eventsim.Millisecond) {
			done, total := cl.Metrics().DoneCount()
			t.Fatalf("degraded=%v: only %d/%d flows done", derate, done, total)
		}
		if derate {
			for sw := 0; sw < 4; sw++ {
				if loss := cl.OperaNet().ToR(0).Uplink(sw).Stats.LinkLoss; loss != 0 {
					t.Fatalf("degraded link should not lose packets, uplink %d lost %d", sw, loss)
				}
			}
		}
		return cl.Metrics().FCTSample(nil).Max()
	}
	healthy, degraded := run(false), run(true)
	if !(degraded > healthy) {
		t.Fatalf("degraded max FCT %.0f ns should exceed healthy %.0f ns", degraded, healthy)
	}
}

// A flapping link alternates down/up phases on schedule, and Recover
// cancels the cycle, pinning the link up.
func TestFlappingLinkCycleAndRecovery(t *testing.T) {
	cl, fs := failureTestbed(t)
	link := sim.FlatLink(4, 2)
	mustOK(t, fs.Inject(sim.LinkTarget(link), sim.FlappingFault(eventsim.Millisecond, eventsim.Millisecond), 0))
	// Cycle: down at 0, up at 1 ms, down at 2 ms, …
	steps := []struct {
		at eventsim.Time
		up bool
	}{
		{500 * eventsim.Microsecond, false},
		{1500 * eventsim.Microsecond, true},
		{2500 * eventsim.Microsecond, false},
	}
	for _, s := range steps {
		cl.Run(s.at)
		if got := fs.LinkUp(4, 2); got != s.up {
			t.Fatalf("at %v: LinkUp = %v, want %v", s.at, got, s.up)
		}
	}
	mustOK(t, fs.Recover(sim.LinkTarget(link), 3200*eventsim.Microsecond))
	for _, at := range []eventsim.Time{3500 * eventsim.Microsecond, 7 * eventsim.Millisecond} {
		cl.Run(at)
		if !fs.LinkUp(4, 2) {
			t.Fatalf("at %v: link should stay up after Recover cancelled the flap", at)
		}
	}
}

// Gray kinds reach every fabric's ports through the shared core: the
// folded Clos takes a lossy tier-2 cable and a flapping tier-1 cable.
func TestClosGrayFaultsApply(t *testing.T) {
	cl, cf := closTestbed(t)
	mustOK(t, cf.Inject(sim.LinkTarget(sim.LinkID{Tier: sim.ClosTierAgg, Switch: 0, Port: 0}),
		sim.LossyFault(1.0), 0))
	mustOK(t, cf.Inject(sim.LinkTarget(sim.FlatLink(0, 1)),
		sim.FlappingFault(500*eventsim.Microsecond, 500*eventsim.Microsecond), 0))
	crossPodFlows(cl, 30_000, 13)
	if !cl.RunUntilDone(3000 * eventsim.Millisecond) {
		done, total := cl.Metrics().DoneCount()
		t.Fatalf("only %d/%d flows survived gray faults", done, total)
	}
}
