package sim

import (
	"github.com/opera-net/opera/internal/eventsim"
)

// Circuit describes one usable direct rack-to-rack circuit during a slice,
// with its admission window as offsets from the slice boundary.
type Circuit struct {
	Switch      int
	Peer        int
	WindowStart eventsim.Time
	WindowEnd   eventsim.Time
}

// CircuitNetwork is implemented by slice-driven fabrics (Opera, RotorNet);
// the RotorLB bulk transport drives itself off this interface.
type CircuitNetwork interface {
	Engine() *eventsim.Engine
	Config() *Config
	Hosts() []*Host
	Metrics() *Metrics
	NumRacks() int
	HostsPerRack() int
	// OnSlice registers a slice-boundary callback.
	OnSlice(fn func(absSlice int64))
	// SliceDuration returns the slice/slot length.
	SliceDuration() eventsim.Time
	// PairWindowsPerCycle returns how many slices per cycle a given rack
	// pair is directly connected (Opera: the schedule's GroupSize; RotorNet:
	// one slot). It sizes RotorLB's skew threshold: a queue exceeding one
	// cycle's direct drainage is a candidate for two-hop offloading.
	PairWindowsPerCycle() int
	// DirectReachable reports whether rack will (ever) get a working
	// direct circuit to dst — false when failures have severed the pair's
	// matching. RotorLB uses it to fully offload stranded queues via VLB
	// and to decline relaying toward unreachable destinations.
	DirectReachable(rack, dst int) bool
	// ActiveCircuits lists the circuits rack may use during absSlice.
	ActiveCircuits(absSlice int64, rack int) []Circuit
}

// NumRacks implements CircuitNetwork.
func (n *OperaNet) NumRacks() int { return n.topo.NumRacks() }

// HostsPerRack implements CircuitNetwork.
func (n *OperaNet) HostsPerRack() int { return n.topo.HostsPerRack() }

// SliceDuration implements CircuitNetwork.
func (n *OperaNet) SliceDuration() eventsim.Time { return n.topo.SliceDuration() }

// PairWindowsPerCycle implements CircuitNetwork.
func (n *OperaNet) PairWindowsPerCycle() int { return n.topo.Config().GroupSize }

// DirectReachable implements CircuitNetwork.
func (n *OperaNet) DirectReachable(rack, dst int) bool {
	if rack == dst {
		return false
	}
	if n.failures == nil {
		return true
	}
	sw := n.topo.PairSwitch(rack, dst)
	return sw >= 0 && n.failures.LinkUp(rack, sw) && n.failures.LinkUp(dst, sw)
}

// ActiveCircuits implements CircuitNetwork: every installed matching's peer
// (self-loops excluded), with the bulk admission window of §3.5/§4.1 —
// full slice minus guards for stable switches, truncated before the
// reconfiguration blackout for the transitioning one.
func (n *OperaNet) ActiveCircuits(absSlice int64, rack int) []Circuit {
	topo := n.topo
	sc := int(absSlice % int64(topo.SlicesPerCycle()))
	out := make([]Circuit, 0, topo.Uplinks())
	for sw := 0; sw < topo.Uplinks(); sw++ {
		peer := topo.SwitchMatching(sw, sc).Peer(rack)
		if peer == rack {
			continue
		}
		// Dead circuits (either end's cable, the switch, or the peer ToR)
		// are excluded: the ToR sees its own signal loss immediately and
		// learns the rest through hellos (§3.5, §3.6.2).
		if n.failures != nil && (!n.failures.LinkUp(rack, sw) || !n.failures.LinkUp(peer, sw)) {
			continue
		}
		start, end := topo.BulkWindow(sw, sc)
		if end <= start {
			continue
		}
		out = append(out, Circuit{Switch: sw, Peer: peer, WindowStart: start, WindowEnd: end})
	}
	return out
}
