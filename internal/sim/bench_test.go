package sim

import (
	"testing"

	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/telemetry"
)

// drainNode releases everything it receives — a pure sink for hot-path
// benchmarks.
type drainNode struct{}

func (drainNode) Receive(p *Packet, _ *Port) { p.Release() }

// BenchmarkPortEnqueue measures the packet hot path the ROADMAP wants
// profiled: Enqueue (classify, queue, kick) plus the serialize/propagate
// event chain, one MTU packet per iteration through an uncontended port.
func BenchmarkPortEnqueue(b *testing.B) {
	eng := eventsim.New()
	cfg := DefaultConfig()
	pt := NewPort(eng, &cfg, "bench", drainNode{})
	step := cfg.SerializationDelay(cfg.MTU) + cfg.PropDelay
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := NewPacket()
		p.Kind = KindData
		p.Class = ClassLowLatency
		p.Size = int32(cfg.MTU)
		p.PayloadSize = int32(cfg.MTU)
		pt.Enqueue(p)
		eng.RunUntil(eng.Now() + step)
	}
}

// BenchmarkPortEnqueueBacklogged measures the same path with the queue
// non-empty, so every transmit completion immediately picks a successor —
// the steady-state shape of a loaded port.
func BenchmarkPortEnqueueBacklogged(b *testing.B) {
	eng := eventsim.New()
	cfg := DefaultConfig()
	pt := NewPort(eng, &cfg, "bench", drainNode{})
	step := cfg.SerializationDelay(cfg.MTU) + cfg.PropDelay
	// Keep ~4 packets of standing backlog (within the 12 KB data bound).
	for i := 0; i < 4; i++ {
		p := NewPacket()
		p.Kind = KindData
		p.Class = ClassLowLatency
		p.Size = int32(cfg.MTU)
		p.PayloadSize = int32(cfg.MTU)
		pt.Enqueue(p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := NewPacket()
		p.Kind = KindData
		p.Class = ClassLowLatency
		p.Size = int32(cfg.MTU)
		p.PayloadSize = int32(cfg.MTU)
		pt.Enqueue(p)
		eng.RunUntil(eng.Now() + step)
	}
}

// benchFlowDone drives AddFlow+FlowDone through b.N synthetic flows — the
// per-completion Metrics cost a soak pays — under the given retention.
func benchFlowDone(b *testing.B, r RetentionPolicy) {
	m := NewMetrics()
	m.SetRetention(r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := &Flow{ID: int64(i), Size: 10_000, Class: ClassLowLatency, Start: eventsim.Time(i)}
		m.AddFlow(f)
		m.FlowDone(f, eventsim.Time(i)+1500)
	}
}

// BenchmarkMetricsFlowDone compares the completion hot path across
// retention policies: RetainAll appends to the flow table; RetainSketch
// feeds the quantile sketch and retains nothing.
func BenchmarkMetricsFlowDone(b *testing.B) {
	b.Run("retain-all", func(b *testing.B) { benchFlowDone(b, RetainAll()) })
	b.Run("retain-sketch", func(b *testing.B) { benchFlowDone(b, RetainSketch(telemetry.Opts{})) })
}
