// Package sim is the packet-level network simulator underlying the Opera
// evaluation — a from-scratch reconstruction of the modelling layer the
// paper borrowed from htsim [26]: store-and-forward output-queued switches,
// links with serialization and propagation delay, bounded priority queues
// with NDP-style packet trimming, and hosts with strict-priority NICs.
//
// The simulator is deliberately protocol-agnostic: transport logic (NDP for
// low-latency traffic, RotorLB for bulk) lives in the ndp and rotorlb
// packages and attaches to hosts through callbacks. Network assemblies
// (Opera, static expander, folded Clos, RotorNet) are built from the same
// parts in this package's network files.
package sim

import (
	"fmt"
	"sync"

	"github.com/opera-net/opera/internal/eventsim"
)

// Class is a packet's scheduling class; smaller is served first.
type Class uint8

// Scheduling classes, in strict priority order at every port.
const (
	ClassControl Class = iota // ACK/NACK/PULL and trimmed headers
	ClassLowLatency
	ClassBulk
	numClasses
)

func (c Class) String() string {
	switch c {
	case ClassControl:
		return "ctrl"
	case ClassLowLatency:
		return "lowlat"
	case ClassBulk:
		return "bulk"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Kind discriminates packet roles within the transports.
type Kind uint8

// Packet kinds.
const (
	KindData     Kind = iota // NDP data (full or trimmed)
	KindAck                  // NDP per-packet ACK
	KindNack                 // NDP NACK (trimmed header arrived)
	KindPull                 // NDP pull (receiver-paced credit)
	KindBulk                 // RotorLB bulk data
	KindBulkNack             // RotorLB ToR-drop NACK (§4.2.2)
)

func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindAck:
		return "ack"
	case KindNack:
		return "nack"
	case KindPull:
		return "pull"
	case KindBulk:
		return "bulk"
	case KindBulkNack:
		return "bulknack"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Packet is the unit of simulation. Packets are pooled; they must be
// released exactly once (by the component that consumes them) and never
// referenced afterwards.
type Packet struct {
	Kind  Kind
	Class Class

	SrcHost, DstHost int32
	SrcRack, DstRack int32

	// Size is the wire size in bytes, including headers. Trimmed packets
	// carry HeaderBytes on the wire; PayloadSize remembers the original.
	Size        int32
	PayloadSize int32
	Trimmed     bool

	// FlowID identifies the transport flow; Seq is the packet index within
	// it (NDP) or a monotonically increasing bulk chunk counter (RotorLB).
	FlowID int64
	Seq    int32

	// PullNo is the pull counter for KindPull; for KindBulk it carries the
	// final destination rack while the packet rides a two-hop VLB detour.
	PullNo int32

	// RelayRack is the intermediate rack for VLB bulk (-1 when direct).
	RelayRack int32

	// SliceTag is the topology slice annotated at the first ToR (§4.3);
	// -1 until stamped.
	SliceTag int64

	// Hops counts ToR-to-ToR traversals, used for bandwidth-tax accounting.
	Hops int8

	// OrigHops preserves, on a KindBulkNack, the hop count of the failed
	// packet (the NACK's own Hops field mutates as it is routed back).
	OrigHops int8

	// EnqueuedAt supports queue-latency metrics.
	EnqueuedAt eventsim.Time

	// dst is the resolved far-end node while the packet is in flight on a
	// link (set at transmit-completion, cleared on delivery). Carrying it
	// here lets ports schedule deliveries without a per-packet closure.
	dst Node
}

var packetPool = sync.Pool{New: func() any { return new(Packet) }}

// NewPacket draws a zeroed packet from the pool.
func NewPacket() *Packet {
	p := packetPool.Get().(*Packet)
	*p = Packet{SliceTag: -1, RelayRack: -1}
	return p
}

// Release returns the packet to the pool.
func (p *Packet) Release() { packetPool.Put(p) }

// IsControl reports whether the packet is transport signalling (always
// forwarded at highest priority and never trimmed or dropped by data-queue
// limits).
func (p *Packet) IsControl() bool {
	switch p.Kind {
	case KindAck, KindNack, KindPull, KindBulkNack:
		return true
	}
	return p.Trimmed
}
