package sim_test

import (
	"testing"

	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/ndp"
	"github.com/opera-net/opera/internal/rotorlb"
	"github.com/opera-net/opera/internal/sim"
	"github.com/opera-net/opera/internal/topology"
)

func runFlows(t *testing.T, eng *eventsim.Engine, m *sim.Metrics, deadline eventsim.Time) bool {
	t.Helper()
	step := 100 * eventsim.Microsecond
	for eng.Now() < deadline {
		eng.RunUntil(eng.Now() + step)
		done, total := m.DoneCount()
		if done == total {
			return true
		}
	}
	return false
}

func TestExpanderNetDelivery(t *testing.T) {
	topo := topology.MustNewExpander(32, 4, 5, 1)
	eng := eventsim.New()
	net := sim.NewExpanderNet(eng, sim.DefaultConfig(), topo, 7)
	registry := make(map[int64]*sim.Flow)
	eps := ndp.Attach(net.Hosts(), net.Metrics(), ndp.DefaultParams(), registry)

	n := topo.NumHosts()
	var flows []*sim.Flow
	for i := 0; i < n; i++ {
		f := &sim.Flow{
			ID: int64(i + 1), SrcHost: int32(i), DstHost: int32((i + 37) % n),
			SrcRack: int32(topo.HostRack(i)), DstRack: int32(topo.HostRack((i + 37) % n)),
			Size: 50000, Class: sim.ClassLowLatency,
		}
		registry[f.ID] = f
		net.Metrics().AddFlow(f)
		flows = append(flows, f)
	}
	for _, f := range flows {
		eps[f.SrcHost].StartFlow(f)
	}
	if !runFlows(t, eng, net.Metrics(), 500*eventsim.Millisecond) {
		done, total := net.Metrics().DoneCount()
		t.Fatalf("%d/%d flows completed", done, total)
	}
	// Expander pays a bandwidth tax: average hops > 1.
	if tax := net.Metrics().BandwidthTax(sim.ClassLowLatency); tax <= 0.2 {
		t.Fatalf("expander tax = %v, want substantial (multi-hop)", tax)
	}
}

func TestClosNetDelivery(t *testing.T) {
	topo := topology.MustNewFoldedClos(8, 3) // 192 hosts: 24 ToRs × 8... (k=8,F=3: d=6,u=2)
	eng := eventsim.New()
	net := sim.NewClosNet(eng, sim.DefaultConfig(), topo, 7)
	registry := make(map[int64]*sim.Flow)
	eps := ndp.Attach(net.Hosts(), net.Metrics(), ndp.DefaultParams(), registry)

	n := topo.NumHosts()
	for i := 0; i < n; i += 3 {
		dst := (i + n/2) % n
		f := &sim.Flow{
			ID: int64(i + 1), SrcHost: int32(i), DstHost: int32(dst),
			SrcRack: int32(topo.HostToR(i)), DstRack: int32(topo.HostToR(dst)),
			Size: 30000, Class: sim.ClassLowLatency,
		}
		registry[f.ID] = f
		net.Metrics().AddFlow(f)
		eps[i].StartFlow(f)
	}
	if !runFlows(t, eng, net.Metrics(), 500*eventsim.Millisecond) {
		done, total := net.Metrics().DoneCount()
		t.Fatalf("%d/%d flows completed", done, total)
	}
	// Direct routing: no bandwidth tax in a folded Clos.
	if tax := net.Metrics().BandwidthTax(sim.ClassLowLatency); tax != 0 {
		t.Fatalf("Clos tax = %v, want 0", tax)
	}
}

func TestClosNetRackLocal(t *testing.T) {
	topo := topology.MustNewFoldedClos(8, 3)
	eng := eventsim.New()
	net := sim.NewClosNet(eng, sim.DefaultConfig(), topo, 7)
	registry := make(map[int64]*sim.Flow)
	eps := ndp.Attach(net.Hosts(), net.Metrics(), ndp.DefaultParams(), registry)
	f := &sim.Flow{ID: 1, SrcHost: 0, DstHost: 1, SrcRack: 0, DstRack: 0, Size: 1500, Class: sim.ClassLowLatency}
	registry[1] = f
	net.Metrics().AddFlow(f)
	eps[0].StartFlow(f)
	if !runFlows(t, eng, net.Metrics(), 10*eventsim.Millisecond) {
		t.Fatal("local flow incomplete")
	}
	if f.FCT() > 10*eventsim.Microsecond {
		t.Fatalf("local FCT = %v", f.FCT())
	}
}

func newRotorTestbed(t *testing.T, hybrid bool) (*eventsim.Engine, *sim.RotorNetSim, *rotorlb.LB, []*ndp.Endpoint, map[int64]*sim.Flow) {
	t.Helper()
	topo := topology.MustNewRotorNet(topology.RotorConfig{
		NumRacks: 16, HostsPerRack: 4, Uplinks: 4, Hybrid: hybrid, Seed: 1,
	})
	eng := eventsim.New()
	net := sim.NewRotorNetSim(eng, sim.DefaultConfig(), topo, 1)
	registry := make(map[int64]*sim.Flow)
	lb := rotorlb.Attach(net, rotorlb.DefaultParams(), registry)
	eps := ndp.Attach(net.Hosts(), net.Metrics(), ndp.DefaultParams(), registry)
	net.Start()
	return eng, net, lb, eps, registry
}

func TestRotorNetBulkDelivery(t *testing.T) {
	eng, net, lb, _, registry := newRotorTestbed(t, false)
	n := 64
	for i := 0; i < n; i++ {
		dst := (i + 20) % n
		if dst/4 == i/4 {
			dst = (dst + 4) % n
		}
		f := &sim.Flow{
			ID: int64(i + 1), SrcHost: int32(i), DstHost: int32(dst),
			SrcRack: int32(i / 4), DstRack: int32(dst / 4),
			Size: 300_000, Class: sim.ClassBulk,
		}
		registry[f.ID] = f
		net.Metrics().AddFlow(f)
		lb.StartFlow(f)
	}
	if !runFlows(t, eng, net.Metrics(), 3000*eventsim.Millisecond) {
		done, total := net.Metrics().DoneCount()
		t.Fatalf("%d/%d bulk flows completed (NACKs %d)", done, total, lb.NACKs)
	}
}

func TestRotorNetHybridLowLatency(t *testing.T) {
	eng, net, _, eps, registry := newRotorTestbed(t, true)
	f := &sim.Flow{
		ID: 1, SrcHost: 0, DstHost: 60, SrcRack: 0, DstRack: 15,
		Size: 6000, Class: sim.ClassLowLatency,
	}
	registry[1] = f
	net.Metrics().AddFlow(f)
	eps[0].StartFlow(f)
	if !runFlows(t, eng, net.Metrics(), 50*eventsim.Millisecond) {
		t.Fatal("hybrid LL flow incomplete")
	}
	// Through the packet fabric: a few serializations, well under 100 µs.
	if f.FCT() > 100*eventsim.Microsecond {
		t.Fatalf("hybrid LL FCT = %v", f.FCT())
	}
}

func TestRotorNetNonHybridShortFlowLatency(t *testing.T) {
	// Without a packet fabric, even a tiny flow waits for a direct
	// circuit: FCT is circuit-scale (~ms), the paper's three-orders gap.
	eng, net, lb, _, registry := newRotorTestbed(t, false)
	f := &sim.Flow{
		ID: 1, SrcHost: 0, DstHost: 60, SrcRack: 0, DstRack: 15,
		Size: 6000, Class: sim.ClassBulk,
	}
	registry[1] = f
	net.Metrics().AddFlow(f)
	lb.StartFlow(f)
	if !runFlows(t, eng, net.Metrics(), 100*eventsim.Millisecond) {
		t.Fatal("flow incomplete")
	}
	if f.FCT() < 50*eventsim.Microsecond {
		t.Fatalf("non-hybrid short-flow FCT = %v, expected circuit-wait scale", f.FCT())
	}
}
