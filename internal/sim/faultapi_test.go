package sim_test

import (
	"errors"
	"strings"
	"testing"

	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/sim"
	"github.com/opera-net/opera/internal/workload"

	opera "github.com/opera-net/opera"
)

// The structured fault surface: coordinate universes, validation, and
// the per-fabric target support matrix.

func newCluster(t *testing.T, cfg opera.ClusterConfig) *opera.Cluster {
	t.Helper()
	cl, err := opera.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// Satellite pin: switch targets on the expander surface a clean
// "unsupported on this fabric" error through the structured API — not a
// silent no-op like the deprecated FailSwitch shim.
func TestExpanderSwitchTargetUnsupported(t *testing.T) {
	_, ef := expanderTestbed(t)
	err := ef.Inject(sim.SwitchTarget(0), sim.DownFault(), eventsim.Millisecond)
	if !errors.Is(err, sim.ErrUnsupportedTarget) {
		t.Fatalf("Inject(switch) err = %v, want ErrUnsupportedTarget", err)
	}
	if !strings.Contains(err.Error(), "expander") {
		t.Fatalf("error should name the fabric: %v", err)
	}
	if err := ef.Recover(sim.SwitchTarget(0), eventsim.Millisecond); !errors.Is(err, sim.ErrUnsupportedTarget) {
		t.Fatalf("Recover(switch) err = %v, want ErrUnsupportedTarget", err)
	}
	// The structured error is sync: nothing was scheduled, ToR and link
	// targets still validate and work.
	if err := ef.Inject(sim.ToRTarget(0), sim.DownFault(), eventsim.Millisecond); err != nil {
		t.Fatalf("ToR target should stay supported: %v", err)
	}
}

// A tier-0 switch target on the folded Clos is rejected the same way:
// its switch planes are ClosTierAgg and ClosTierCore.
func TestClosDefaultSwitchPlaneUnsupported(t *testing.T) {
	cl := newCluster(t, opera.ClusterConfig{Kind: opera.KindFoldedClos, ClosK: 8, ClosF: 3, Seed: 1})
	inj := cl.Faults()
	if inj == nil {
		t.Fatal("folded Clos should expose a FaultInjector")
	}
	err := inj.Inject(sim.SwitchTarget(0), sim.DownFault(), eventsim.Millisecond)
	if !errors.Is(err, sim.ErrUnsupportedTarget) {
		t.Fatalf("Inject(tier-0 switch) err = %v, want ErrUnsupportedTarget", err)
	}
	for _, tier := range []int{sim.ClosTierAgg, sim.ClosTierCore} {
		if err := inj.Inject(sim.TierSwitchTarget(tier, 0), sim.DownFault(), eventsim.Millisecond); err != nil {
			t.Fatalf("tier %d switch should be supported: %v", tier, err)
		}
	}
}

// Links enumerates one canonical coordinate per physical cable, in a
// deterministic order, sized by the fabric's cable count.
func TestLinksUniverses(t *testing.T) {
	t.Run("opera", func(t *testing.T) {
		_, fs := failureTestbed(t)
		links := fs.Links()
		// failureTestbed: 16 racks × 4 uplinks, rack-major flat coords.
		if len(links) != 16*4 {
			t.Fatalf("opera universe = %d links, want 64", len(links))
		}
		if links[5] != sim.FlatLink(1, 1) {
			t.Fatalf("opera enumeration not rack-major: links[5] = %v", links[5])
		}
	})
	t.Run("expander", func(t *testing.T) {
		_, ef := expanderTestbed(t)
		links := ef.Links()
		// 16 racks × degree 5 names each cable twice: 40 physical cables.
		if len(links) != 16*5/2 {
			t.Fatalf("expander universe = %d links, want 40 deduplicated cables", len(links))
		}
		seen := map[sim.LinkID]bool{}
		for _, l := range links {
			if seen[l] {
				t.Fatalf("duplicate canonical link %v", l)
			}
			seen[l] = true
		}
	})
	t.Run("foldedclos", func(t *testing.T) {
		cl := newCluster(t, opera.ClusterConfig{Kind: opera.KindFoldedClos, ClosK: 8, ClosF: 3, Seed: 1})
		cn := cl.Network().(*sim.ClosNet)
		topo := cn.Topology()
		links := cl.Faults().Links()
		want := topo.NumToRs*topo.UplinksPerToR + topo.NumAgg*topo.K/2
		if len(links) != want {
			t.Fatalf("clos universe = %d links, want %d (tier-1 + tier-2 cables)", len(links), want)
		}
		var t1, t2 int
		for _, l := range links {
			switch l.Tier {
			case sim.ClosTierToR:
				t1++
			case sim.ClosTierAgg:
				t2++
			default:
				t.Fatalf("unexpected tier in clos universe: %v", l)
			}
		}
		if t1 != topo.NumToRs*topo.UplinksPerToR || t2 != topo.NumAgg*topo.K/2 {
			t.Fatalf("tier split = %d + %d, want %d + %d",
				t1, t2, topo.NumToRs*topo.UplinksPerToR, topo.NumAgg*topo.K/2)
		}
	})
	t.Run("rotornet", func(t *testing.T) {
		_, rf := rotorTestbed(t, opera.KindRotorNet)
		if links := rf.Links(); len(links) != 8*4 {
			t.Fatalf("rotornet universe = %d links, want 32", len(links))
		}
	})
}

// Inject validates synchronously: bad descriptors, bad coordinates and
// gray faults on non-link targets are errors before anything schedules.
func TestInjectValidation(t *testing.T) {
	_, fs := failureTestbed(t)
	cases := []struct {
		name string
		err  error
	}{
		{"bad-lossy-rate", fs.Inject(sim.LinkTarget(sim.FlatLink(0, 0)), sim.LossyFault(1.5), 0)},
		{"bad-degraded-frac", fs.Inject(sim.LinkTarget(sim.FlatLink(0, 0)), sim.DegradedFault(1.0), 0)},
		{"bad-flap-phase", fs.Inject(sim.LinkTarget(sim.FlatLink(0, 0)), sim.FlappingFault(0, eventsim.Millisecond), 0)},
		{"rack-range", fs.Inject(sim.LinkTarget(sim.FlatLink(99, 0)), sim.DownFault(), 0)},
		{"uplink-range", fs.Inject(sim.LinkTarget(sim.FlatLink(0, 99)), sim.DownFault(), 0)},
		{"tor-range", fs.Inject(sim.ToRTarget(-1), sim.DownFault(), 0)},
		{"negative-time", fs.Inject(sim.LinkTarget(sim.FlatLink(0, 0)), sim.DownFault(), -1)},
		{"gray-on-tor", fs.Inject(sim.ToRTarget(0), sim.LossyFault(0.1), 0)},
		{"gray-on-switch", fs.Inject(sim.SwitchTarget(0), sim.DegradedFault(0.5), 0)},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Errorf("%s: Inject succeeded, want error", tc.name)
		}
	}
}

// Flat Tier-0 coordinates normalize onto the Clos ToR-uplink tier: a
// flat injection can be recovered through its explicit tier-1 name (they
// are the same target), and traffic flows normally afterwards.
func TestClosFlatCoordinateNormalization(t *testing.T) {
	cl := newCluster(t, opera.ClusterConfig{Kind: opera.KindFoldedClos, ClosK: 8, ClosF: 3, Seed: 1})
	inj := cl.Faults()
	if err := inj.Inject(sim.LinkTarget(sim.FlatLink(2, 1)), sim.DownFault(), eventsim.Microsecond); err != nil {
		t.Fatal(err)
	}
	explicit := sim.LinkTarget(sim.LinkID{Tier: sim.ClosTierToR, Switch: 2, Port: 1})
	if err := inj.Recover(explicit, 2*eventsim.Microsecond); err != nil {
		t.Fatal(err)
	}
	d := cl.HostsPerRack()
	for i := 0; i < d; i++ {
		cl.AddFlow(workload.FlowSpec{
			Src: 2*d + i, Dst: (9*d + i) % cl.NumHosts(), Bytes: 20_000,
			Arrival: 10 * eventsim.Microsecond,
		})
	}
	if !cl.RunUntilDone(500 * eventsim.Millisecond) {
		done, total := cl.Metrics().DoneCount()
		t.Fatalf("only %d/%d flows after normalized fail+recover", done, total)
	}
}

// The deprecated flat shims still work and agree with the structured
// calls they delegate to (byte-identity of the old call sites).
func TestDeprecatedShimsDelegate(t *testing.T) {
	run := func(structured bool) uint64 {
		cl, fs := failureTestbed(t)
		if structured {
			mustOK(t, fs.Inject(sim.LinkTarget(sim.FlatLink(3, 2)), sim.DownFault(), 500*eventsim.Microsecond))
			mustOK(t, fs.Inject(sim.ToRTarget(5), sim.DownFault(), 700*eventsim.Microsecond))
			mustOK(t, fs.Recover(sim.LinkTarget(sim.FlatLink(3, 2)), 2*eventsim.Millisecond))
			mustOK(t, fs.Recover(sim.ToRTarget(5), 3*eventsim.Millisecond))
		} else {
			fs.FailLink(3, 2, 500*eventsim.Microsecond)
			fs.FailToR(5, 700*eventsim.Microsecond)
			fs.RecoverLink(3, 2, 2*eventsim.Millisecond)
			fs.RecoverToR(5, 3*eventsim.Millisecond)
		}
		cl.Run(5 * eventsim.Millisecond)
		return cl.Engine().Steps()
	}
	if a, b := run(true), run(false); a != b {
		t.Fatalf("structured (%d steps) and shim (%d steps) schedules diverge", a, b)
	}
}

func mustOK(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
