package sim_test

import (
	"reflect"
	"testing"

	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/sim"

	opera "github.com/opera-net/opera"
)

// activeFaulter is the type-assertion surface ActiveFaults is reached
// through — mirroring how SetStrandedProbe is wired, the interface stays
// narrow and observability rides an assertion.
type activeFaulter interface {
	ActiveFaults() []sim.ActiveFault
}

// TestActiveFaultsLifecycle walks a fault through its whole life on an
// Opera fabric and checks the live view at each stage: empty before the
// injection fires, listed (sorted) while applied, gone after recovery.
func TestActiveFaultsLifecycle(t *testing.T) {
	cl := newCluster(t, opera.ClusterConfig{Kind: opera.KindOpera, Racks: 8, HostsPerRack: 2, Uplinks: 4, Seed: 1})
	inj := cl.Faults()
	af, ok := inj.(activeFaulter)
	if !ok {
		t.Fatalf("%T should expose ActiveFaults via type assertion", inj)
	}

	// Injected later, sorted earlier: the listing must be coordinate
	// order, not injection order.
	linkB := sim.LinkTarget(sim.FlatLink(5, 1))
	linkA := sim.LinkTarget(sim.FlatLink(2, 0))
	if err := inj.Inject(linkB, sim.LossyFault(0.25), 100*eventsim.Microsecond); err != nil {
		t.Fatal(err)
	}
	if err := inj.Inject(linkA, sim.DownFault(), 200*eventsim.Microsecond); err != nil {
		t.Fatal(err)
	}
	if err := inj.Recover(linkB, 500*eventsim.Microsecond); err != nil {
		t.Fatal(err)
	}

	if got := af.ActiveFaults(); got != nil {
		t.Fatalf("before anything fires: %v, want nil", got)
	}

	cl.Run(300 * eventsim.Microsecond)
	want := []sim.ActiveFault{
		{Target: linkA, Fault: sim.DownFault()},
		{Target: linkB, Fault: sim.LossyFault(0.25)},
	}
	if got := af.ActiveFaults(); !reflect.DeepEqual(got, want) {
		t.Fatalf("while applied:\n got %v\nwant %v", got, want)
	}

	cl.Run(600 * eventsim.Microsecond)
	want = want[:1] // linkB recovered
	if got := af.ActiveFaults(); !reflect.DeepEqual(got, want) {
		t.Fatalf("after recovery:\n got %v\nwant %v", got, want)
	}
}

// TestActiveFaultsLatestWins pins the per-target policy: a later fault on
// the same target replaces the earlier entry, and a flapping target stays
// listed through both phases of the cycle.
func TestActiveFaultsLatestWins(t *testing.T) {
	cl := newCluster(t, opera.ClusterConfig{Kind: opera.KindOpera, Racks: 8, HostsPerRack: 2, Uplinks: 4, Seed: 1})
	inj := cl.Faults()
	af := inj.(activeFaulter)

	link := sim.LinkTarget(sim.FlatLink(1, 1))
	flap := sim.FlappingFault(50*eventsim.Microsecond, 50*eventsim.Microsecond)
	if err := inj.Inject(link, flap, 100*eventsim.Microsecond); err != nil {
		t.Fatal(err)
	}
	if err := inj.Inject(link, sim.DownFault(), eventsim.Millisecond); err != nil {
		t.Fatal(err)
	}

	// Mid-cycle, in an "up" phase, the flap is still the active fault.
	cl.Run(175 * eventsim.Microsecond)
	if got := af.ActiveFaults(); len(got) != 1 || got[0].Fault.Kind != sim.FaultFlapping {
		t.Fatalf("mid-flap: %v, want one flapping entry", got)
	}

	cl.Run(1100 * eventsim.Microsecond)
	if got := af.ActiveFaults(); len(got) != 1 || got[0].Fault.Kind != sim.FaultDown {
		t.Fatalf("after hard cut: %v, want one down entry", got)
	}
}
