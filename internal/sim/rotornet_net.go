package sim

import (
	"fmt"

	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/topology"
)

// RotorNetSim assembles the RotorNet [34] baseline: rotor switches
// reconfigured in unison every slot, RotorLB for bulk, and — in the hybrid
// variant — one ToR uplink diverted to an always-on packet-switched fabric
// for low-latency traffic (+33% cost, §5.1). The non-hybrid variant has no
// packet fabric: all traffic must ride circuits, which is what produces its
// three-orders-of-magnitude latency penalty for short flows (Figure 7c).
//
// Control packets (RotorLB NACKs) in the non-hybrid variant travel an
// out-of-band management channel modelled as a fixed 2 µs delay; their
// volume is negligible and RotorNet assumes such a channel for
// synchronization anyway.
type RotorNetSim struct {
	eng     *eventsim.Engine
	cfg     *Config
	topo    *topology.RotorNet
	hosts   []*Host
	tors    []*RotorToR
	fabric  *hybridFabric
	metrics *Metrics

	// faults tracks runtime failures; see rotornet_faults.go for the
	// instant-global-knowledge model (OOB management channel).
	faults *RotorFaults
	// faultSeed seeds deterministic gray-failure (lossy-link) draws.
	faultSeed int64

	curSlot   int64
	listeners []func(absSlot int64)
	stopped   bool

	// Pre-bound slot-clock and delivery handlers (eventsim.Handler):
	// RotorNet reconfigures all switches in unison, so one blackout handler
	// serves the whole fabric; oob delivers management-channel control
	// packets (the destination rides the packet's in-flight dst field).
	tick     rotorSlotTick
	blackout rotorBlackout
	oob      rotorOOBDeliver
}

type rotorSlotTick struct{ n *RotorNetSim }

func (h *rotorSlotTick) OnEvent(any) { h.n.slotBoundary(h.n.curSlot + 1) }

type rotorBlackout struct{ n *RotorNetSim }

func (h *rotorBlackout) OnEvent(any) {
	for _, tor := range h.n.tors {
		for _, pt := range tor.up {
			pt.SetEnabled(false)
			pt.FlushForReconfig(tor.requeue)
		}
	}
}

type rotorOOBDeliver struct{}

func (rotorOOBDeliver) OnEvent(arg any) {
	p := arg.(*Packet)
	dst := p.dst
	p.dst = nil
	dst.Receive(p, nil)
}

func init() {
	builder := func(hybrid bool) Builder {
		return func(p BuildParams) (Network, error) {
			topo, err := topology.NewRotorNet(topology.RotorConfig{
				NumRacks:     p.Racks,
				HostsPerRack: p.HostsPerRack,
				Uplinks:      p.Uplinks,
				Hybrid:       hybrid,
				Seed:         p.Seed,
			})
			if err != nil {
				return nil, err
			}
			return NewRotorNetSim(p.Engine, p.Sim, topo, p.Seed+1), nil
		}
	}
	Register("rotornet", builder(false))
	Register("rotornet-hybrid", builder(true))
}

// NewRotorNetSim wires a RotorNet fabric. seed drives deterministic
// gray-failure draws (lossy links); topology and scheduling are
// seed-independent.
func NewRotorNetSim(eng *eventsim.Engine, cfg Config, topo *topology.RotorNet, seed int64) *RotorNetSim {
	n := &RotorNetSim{eng: eng, cfg: &cfg, topo: topo, metrics: NewMetrics(), faultSeed: seed}
	d := topo.HostsPerRack
	n.hosts = make([]*Host, topo.NumHosts())
	n.tors = make([]*RotorToR, topo.NumRacks)
	for r := 0; r < topo.NumRacks; r++ {
		n.tors[r] = &RotorToR{net: n, rack: int32(r)}
	}
	if topo.Hybrid {
		n.fabric = &hybridFabric{net: n}
	}
	for h := range n.hosts {
		host := NewHost(eng, n.cfg, int32(h), int32(h/d))
		n.hosts[h] = host
		host.SetNIC(NewPort(eng, n.cfg, fmt.Sprintf("host%d->tor%d", h, host.Rack), n.tors[host.Rack]))
	}
	n.tick.n = n
	n.blackout.n = n
	for r := 0; r < topo.NumRacks; r++ {
		n.tors[r].wire()
	}
	if n.fabric != nil {
		n.fabric.out = make([]*Port, topo.NumRacks)
		for r := 0; r < topo.NumRacks; r++ {
			n.fabric.out[r] = NewPort(eng, n.cfg, fmt.Sprintf("fabric->tor%d", r), n.tors[r])
		}
	}
	return n
}

// Start begins the slot clock.
func (n *RotorNetSim) Start() { n.slotBoundary(0) }

// Stop halts the slot clock after the current slot.
func (n *RotorNetSim) Stop() { n.stopped = true }

// Engine returns the simulation engine.
func (n *RotorNetSim) Engine() *eventsim.Engine { return n.eng }

// Kind implements Network.
func (n *RotorNetSim) Kind() string {
	if n.topo.Hybrid {
		return "rotornet-hybrid"
	}
	return "rotornet"
}

// PacketCapable implements Network: only the hybrid variant diverts an
// uplink to an always-on packet fabric for low-latency traffic (§5.1).
func (n *RotorNetSim) PacketCapable() bool { return n.fabric != nil }

// Config returns the physical constants.
func (n *RotorNetSim) Config() *Config { return n.cfg }

// Metrics returns the metrics collector.
func (n *RotorNetSim) Metrics() *Metrics { return n.metrics }

// Hosts returns all hosts.
func (n *RotorNetSim) Hosts() []*Host { return n.hosts }

// Topology returns the RotorNet schedule.
func (n *RotorNetSim) Topology() *topology.RotorNet { return n.topo }

// ToR returns the ToR switch of the given rack.
func (n *RotorNetSim) ToR(rack int) *RotorToR { return n.tors[rack] }

// NumRacks implements CircuitNetwork.
func (n *RotorNetSim) NumRacks() int { return n.topo.NumRacks }

// HostsPerRack implements CircuitNetwork.
func (n *RotorNetSim) HostsPerRack() int { return n.topo.HostsPerRack }

// SliceDuration implements CircuitNetwork (RotorNet calls it a slot).
func (n *RotorNetSim) SliceDuration() eventsim.Time { return n.topo.SlotDuration }

// PairWindowsPerCycle implements CircuitNetwork: each pair connects for one
// slot per cycle.
func (n *RotorNetSim) PairWindowsPerCycle() int { return 1 }

// DirectReachable implements CircuitNetwork: whether some slot of the
// cycle still installs a working direct circuit between the racks. With
// no failures every distinct pair connects; under faults the pair's
// matching slots are checked against live links, which is what makes
// RotorLB fully offload stranded queues via VLB and decline relaying
// toward unreachable destinations.
func (n *RotorNetSim) DirectReachable(rack, dst int) bool {
	if rack == dst {
		return false
	}
	if n.faults == nil {
		return true
	}
	for slot := 0; slot < n.topo.SlotsPerCycle(); slot++ {
		// The 1-factorization installs at most one switch connecting a
		// pair per slot, so DirectSwitch's first hit is the only one.
		if sw := n.topo.DirectSwitch(slot, rack, dst); sw >= 0 &&
			n.faults.LinkUp(rack, sw) && n.faults.LinkUp(dst, sw) {
			return true
		}
	}
	return false
}

// OnSlice implements CircuitNetwork.
func (n *RotorNetSim) OnSlice(fn func(absSlot int64)) {
	n.listeners = append(n.listeners, fn)
}

// ActiveCircuits implements CircuitNetwork: every switch's current peer
// with the common unison window.
func (n *RotorNetSim) ActiveCircuits(absSlot int64, rack int) []Circuit {
	slot := int(absSlot % int64(n.topo.SlotsPerCycle()))
	start, end := n.topo.BulkWindow()
	out := make([]Circuit, 0, n.topo.NumSwitches)
	for sw := 0; sw < n.topo.NumSwitches; sw++ {
		peer := n.topo.SwitchMatching(sw, slot).Peer(rack)
		if peer == rack || end <= start {
			continue
		}
		// Dead circuits are excluded — failure news is global and immediate
		// over the OOB management channel (see rotornet_faults.go).
		if n.faults != nil && (!n.faults.LinkUp(rack, sw) || !n.faults.LinkUp(peer, sw)) {
			continue
		}
		out = append(out, Circuit{Switch: sw, Peer: peer, WindowStart: start, WindowEnd: end})
	}
	return out
}

func (n *RotorNetSim) slotBoundary(s int64) {
	n.curSlot = s
	dur := n.topo.SlotDuration
	r := n.topo.ReconfDelay
	// All rotor ports come up on the new matchings.
	if s > 0 {
		for _, tor := range n.tors {
			for _, pt := range tor.up {
				pt.FlushForReconfig(tor.requeue)
				pt.SetEnabled(true)
			}
		}
	}
	// And all go dark together before the next boundary.
	n.eng.AfterCall(dur-r, &n.blackout, nil)
	for _, fn := range n.listeners {
		fn(s)
	}
	if !n.stopped {
		// The slot clock rides one Event for the whole run (unless a port
		// kicked inside this tick claimed the firing object first).
		n.eng.ContinueCall(dur, &n.tick, nil)
	}
}

// RotorToR is a RotorNet top-of-rack switch.
type RotorToR struct {
	net      *RotorNetSim
	rack     int32
	up       []*Port // rotor uplinks
	fabricUp *Port   // hybrid only
	down     []*Port
	relayRR  int

	// BulkNACKs counts NACKs issued by this ToR.
	BulkNACKs uint64
}

func (t *RotorToR) wire() {
	n := t.net
	topo := n.topo
	d := topo.HostsPerRack
	t.down = make([]*Port, d)
	for i := 0; i < d; i++ {
		host := n.hosts[int(t.rack)*d+i]
		t.down[i] = NewPort(n.eng, n.cfg, fmt.Sprintf("tor%d->host%d", t.rack, host.ID), host)
		t.down[i].SetBulkDropHandler(t.bulkNACK)
	}
	t.up = make([]*Port, topo.NumSwitches)
	for sw := 0; sw < topo.NumSwitches; sw++ {
		sw := sw
		resolve := func(at eventsim.Time) Node {
			slot, _, _ := topo.SlotAt(at)
			peer := topo.SwitchMatching(sw, slot).Peer(int(t.rack))
			if peer == int(t.rack) {
				return nil
			}
			if fs := n.faults; fs != nil && (!fs.LinkUp(int(t.rack), sw) || !fs.LinkUp(peer, sw)) {
				fs.LostToDeadCircuits++
				return nil // failed cable, switch, or ToR: the photons are lost
			}
			return n.tors[peer]
		}
		t.up[sw] = NewDynamicPort(n.eng, n.cfg, fmt.Sprintf("tor%d-rotor%d", t.rack, sw), resolve)
		t.up[sw].SetBulkDropHandler(t.bulkNACK)
	}
	if n.fabric != nil {
		t.fabricUp = NewPort(n.eng, n.cfg, fmt.Sprintf("tor%d->fabric", t.rack), n.fabric)
	}
}

// Uplink returns the port to the given rotor switch.
func (t *RotorToR) Uplink(sw int) *Port { return t.up[sw] }

// Receive implements Node.
func (t *RotorToR) Receive(p *Packet, _ *Port) {
	if p.Kind == KindBulk {
		t.receiveBulk(p)
		return
	}
	if p.DstRack == t.rack {
		t.deliverLocal(p)
		return
	}
	if t.fabricUp != nil {
		p.Hops++
		t.fabricUp.Enqueue(p)
		return
	}
	// Non-hybrid: out-of-band control channel (NACKs only).
	p.dst = t.net.hosts[p.DstHost]
	t.net.eng.AfterCall(2*eventsim.Microsecond, t.net.oob, p)
}

func (t *RotorToR) receiveBulk(p *Packet) {
	if p.RelayRack == t.rack {
		t.down[t.relayRR%len(t.down)].Enqueue(p)
		t.relayRR++
		return
	}
	if p.DstRack == t.rack {
		t.deliverLocal(p)
		return
	}
	target := int(p.DstRack)
	if p.RelayRack >= 0 {
		target = int(p.RelayRack)
	}
	slot, _, _ := t.net.topo.SlotAt(t.net.eng.Now())
	sw := t.net.topo.DirectSwitch(slot, int(t.rack), target)
	if sw < 0 {
		t.bulkNACK(p)
		return
	}
	// Failure knowledge is global and immediate (OOB channel), so unlike
	// Opera — where only the near end is known locally — a ToR declines
	// circuits dead at either end and NACKs instead of transmitting into
	// the dark.
	if fs := t.net.faults; fs != nil && (!fs.LinkUp(int(t.rack), sw) || !fs.LinkUp(target, sw)) {
		t.bulkNACK(p)
		return
	}
	p.Hops++
	t.up[sw].Enqueue(p)
}

func (t *RotorToR) deliverLocal(p *Packet) {
	d := len(t.down)
	idx := int(p.DstHost) - int(t.rack)*d
	if idx < 0 || idx >= d {
		p.Release()
		return
	}
	t.down[idx].Enqueue(p)
}

func (t *RotorToR) bulkNACK(p *Packet) {
	t.BulkNACKs++
	nack := NewPacket()
	nack.Kind = KindBulkNack
	nack.Class = ClassControl
	nack.Size = int32(t.net.cfg.HeaderBytes)
	nack.SrcHost = p.DstHost
	nack.SrcRack = p.DstRack
	nack.DstHost = p.SrcHost
	nack.DstRack = p.SrcRack
	nack.FlowID = p.FlowID
	nack.Seq = p.Seq
	nack.PayloadSize = p.PayloadSize
	nack.PullNo = p.DstRack
	nack.RelayRack = p.RelayRack
	nack.OrigHops = p.Hops
	p.Release()
	t.Receive(nack, nil)
}

func (t *RotorToR) requeue(p *Packet) {
	p.SliceTag = -1
	t.Receive(p, nil)
}

// hybridFabric models the hybrid variant's packet-switched core as a
// non-blocking switch with a 10 Gb/s port per ToR — an optimistic stand-in
// for the multi-stage network the paper charges +33% cost for.
type hybridFabric struct {
	net *RotorNetSim
	out []*Port
}

// Receive implements Node.
func (f *hybridFabric) Receive(p *Packet, _ *Port) {
	f.out[p.DstRack].Enqueue(p)
}
