package sim_test

import (
	"testing"

	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/sim"
	"github.com/opera-net/opera/internal/workload"

	opera "github.com/opera-net/opera"
)

// closTestbed builds a folded-Clos cluster via the public API (k=8, F=3:
// 216 hosts over 24 ToRs) and exposes its failure state.
func closTestbed(t *testing.T) (*opera.Cluster, *sim.ClosFaults) {
	t.Helper()
	cl, err := opera.NewCluster(opera.ClusterConfig{
		Kind: opera.KindFoldedClos, ClosK: 8, ClosF: 3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cn := cl.Network().(*sim.ClosNet)
	return cl, cn.Faults()
}

// crossPodFlows schedules flows between distant racks so traffic
// traverses the full ToR→agg→core→agg→ToR path.
func crossPodFlows(cl *opera.Cluster, bytes int64, stride int) {
	n := cl.NumHosts()
	for i := 0; i < n; i += 2 {
		cl.AddFlow(workload.FlowSpec{
			Src: i, Dst: (i + stride*cl.HostsPerRack()) % n, Bytes: bytes,
			Arrival: eventsim.Time(i+1) * 20 * eventsim.Microsecond,
		})
	}
}

// Flows keep completing after tier-1 link failures: ToRs spray over the
// surviving uplinks and NDP retransmits what was queued on dead cables.
func TestClosFlowsSurviveLinkFailure(t *testing.T) {
	cl, cf := closTestbed(t)
	cf.Inject(sim.LinkTarget(sim.FlatLink(0, 1)), sim.DownFault(), 500*eventsim.Microsecond)
	cf.Inject(sim.LinkTarget(sim.LinkID{Tier: sim.ClosTierAgg, Switch: 2, Port: 3}),
		sim.DownFault(), 500*eventsim.Microsecond)
	crossPodFlows(cl, 30_000, 13)
	if !cl.RunUntilDone(3000 * eventsim.Millisecond) {
		done, total := cl.Metrics().DoneCount()
		t.Fatalf("only %d/%d flows survived link failures", done, total)
	}
}

// An aggregation-switch failure drains its queues and removes one of the
// pod's upward paths; spraying over the surviving aggs keeps every flow
// completing, and recovery restores the switch.
func TestClosAggFailureAndRecovery(t *testing.T) {
	cl, cf := closTestbed(t)
	mustOK(t, cf.Inject(sim.TierSwitchTarget(sim.ClosTierAgg, 0), sim.DownFault(), 500*eventsim.Microsecond))
	mustOK(t, cf.Recover(sim.TierSwitchTarget(sim.ClosTierAgg, 0), 20*eventsim.Millisecond))
	crossPodFlows(cl, 30_000, 13)
	if !cl.RunUntilDone(3000 * eventsim.Millisecond) {
		done, total := cl.Metrics().DoneCount()
		t.Fatalf("only %d/%d flows survived the agg failure", done, total)
	}
}

// A core-switch failure: aggs stop spraying onto it, packets already
// heading down through it are dropped and retransmitted.
func TestClosCoreFailure(t *testing.T) {
	cl, cf := closTestbed(t)
	mustOK(t, cf.Inject(sim.TierSwitchTarget(sim.ClosTierCore, 3), sim.DownFault(), 500*eventsim.Microsecond))
	crossPodFlows(cl, 30_000, 13)
	if !cl.RunUntilDone(3000 * eventsim.Millisecond) {
		done, total := cl.Metrics().DoneCount()
		t.Fatalf("only %d/%d flows survived the core failure", done, total)
	}
	if cf.LostToDeadLinks == 0 {
		t.Log("no packets caught in the dead core (timing-dependent; informational)")
	}
}

// A dead ToR takes its rack off the fabric; the rest of the cluster
// keeps working.
func TestClosToRFailureIsolatesRack(t *testing.T) {
	cl, cf := closTestbed(t)
	mustOK(t, cf.Inject(sim.ToRTarget(3), sim.DownFault(), 500*eventsim.Microsecond))
	n, d := cl.NumHosts(), cl.HostsPerRack()
	for i := 0; i < n; i += 2 {
		src, dst := i, (i+13*d)%n
		if src/d == 3 || dst/d == 3 {
			continue // skip the doomed rack
		}
		cl.AddFlow(workload.FlowSpec{
			Src: src, Dst: dst, Bytes: 20_000,
			Arrival: eventsim.Time(i+1) * 20 * eventsim.Microsecond,
		})
	}
	if !cl.RunUntilDone(3000 * eventsim.Millisecond) {
		done, total := cl.Metrics().DoneCount()
		t.Fatalf("only %d/%d flows completed around the dead ToR", done, total)
	}
}

// Determinism: the same Clos failure schedule over the same workload
// yields identical outcomes run-to-run.
func TestClosFaultDeterminism(t *testing.T) {
	run := func() (int, uint64) {
		cl, cf := closTestbed(t)
		mustOK(t, cf.Inject(sim.TierSwitchTarget(sim.ClosTierAgg, 1), sim.DownFault(), 700*eventsim.Microsecond))
		mustOK(t, cf.Inject(sim.LinkTarget(sim.FlatLink(5, 0)), sim.DownFault(), 900*eventsim.Microsecond))
		cl.AddSource(workload.FromSpecs(workload.Shuffle(12, 25_000, eventsim.Millisecond, 1)))
		cl.RunUntilDone(3000 * eventsim.Millisecond)
		done, _ := cl.Metrics().DoneCount()
		return done, cl.Engine().Steps()
	}
	d1, s1 := run()
	d2, s2 := run()
	if d1 != d2 || s1 != s2 {
		t.Fatalf("fault runs diverge: (%d,%d) vs (%d,%d)", d1, s1, d2, s2)
	}
}

// Attaching an idle injector must not change a fault-free run: the
// fault-aware spray consumes RNG draws identically while nothing is
// down (byte-identity of pre-injector results).
func TestClosIdleInjectorPreservesDeterminism(t *testing.T) {
	run := func(attach bool) (int, uint64) {
		cl, err := opera.NewCluster(opera.ClusterConfig{
			Kind: opera.KindFoldedClos, ClosK: 8, ClosF: 3, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if attach {
			cl.Network().(*sim.ClosNet).Faults()
		}
		cl.AddSource(workload.FromSpecs(workload.Shuffle(16, 25_000, eventsim.Millisecond, 1)))
		cl.RunUntilDone(3000 * eventsim.Millisecond)
		done, _ := cl.Metrics().DoneCount()
		return done, cl.Engine().Steps()
	}
	d1, s1 := run(false)
	d2, s2 := run(true)
	if d1 != d2 || s1 != s2 {
		t.Fatalf("idle injector changed the run: (%d,%d) vs (%d,%d)", d1, s1, d2, s2)
	}
}
