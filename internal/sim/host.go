package sim

import (
	"github.com/opera-net/opera/internal/eventsim"
)

// Host is an end host with a single NIC toward its ToR. Its NIC applies the
// same strict-priority queueing as switch ports (control > low-latency >
// bulk), which is what keeps latency-sensitive traffic ahead of bulk at the
// edge (§4.2).
type Host struct {
	ID   int32
	Rack int32

	eng *eventsim.Engine
	cfg *Config
	nic *Port

	// Handler demultiplexes delivered packets to the transports (set by
	// ndp/rotorlb attachment). Unclaimed packets are released.
	Handler func(*Packet)
}

// NewHost builds a host; the NIC is wired by the network assembly.
func NewHost(eng *eventsim.Engine, cfg *Config, id, rack int32) *Host {
	return &Host{ID: id, Rack: rack, eng: eng, cfg: cfg}
}

// Engine returns the simulation engine.
func (h *Host) Engine() *eventsim.Engine { return h.eng }

// Config returns the physical constants.
func (h *Host) Config() *Config { return h.cfg }

// SetNIC attaches the host's uplink port.
func (h *Host) SetNIC(p *Port) { h.nic = p }

// NIC returns the host's uplink port.
func (h *Host) NIC() *Port { return h.nic }

// Send enqueues a packet on the NIC.
func (h *Host) Send(p *Packet) { h.nic.Enqueue(p) }

// Receive implements Node.
func (h *Host) Receive(p *Packet, _ *Port) {
	if h.Handler != nil {
		h.Handler(p)
		return
	}
	p.Release()
}
