package sim

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/opera-net/opera/internal/eventsim"
)

func TestFCTSampleFilter(t *testing.T) {
	m := NewMetrics()
	a := &Flow{ID: 1, Size: 100, Class: ClassLowLatency, Start: 0}
	b := &Flow{ID: 2, Size: 100, Class: ClassBulk, Start: 0}
	m.AddFlow(a)
	m.AddFlow(b)
	m.FlowDone(a, 1000)
	m.FlowDone(b, 2000)
	ll := m.FCTSample(func(f *Flow) bool { return f.Class == ClassLowLatency })
	if ll.N() != 1 || ll.Mean() != 1.0 {
		t.Fatalf("LL sample: n=%d mean=%v", ll.N(), ll.Mean())
	}
	all := m.FCTSample(nil)
	if all.N() != 2 {
		t.Fatalf("all sample n=%d", all.N())
	}
}

func TestBandwidthTaxZeroWhenIdle(t *testing.T) {
	m := NewMetrics()
	if m.BandwidthTax(ClassBulk) != 0 || m.AggregateTax() != 0 {
		t.Fatal("idle metrics should have zero tax")
	}
}

func TestOnFlowDoneCallback(t *testing.T) {
	m := NewMetrics()
	var called int
	m.OnFlowDone = func(f *Flow) { called++ }
	f := &Flow{ID: 1}
	m.AddFlow(f)
	m.FlowDone(f, 10)
	m.FlowDone(f, 20) // idempotent: no second call
	if called != 1 {
		t.Fatalf("callback fired %d times", called)
	}
}

// Property: tax is (sum hops·bytes / sum bytes) − 1 for arbitrary delivery
// patterns, and never negative.
func TestTaxProperty(t *testing.T) {
	f := func(hops []uint8) bool {
		m := NewMetrics()
		fl := &Flow{ID: 1, Size: 1 << 40, Class: ClassBulk}
		m.AddFlow(fl)
		var up, good float64
		for _, h := range hops {
			hh := int(h%6) + 1
			m.RecordDelivery(fl, 1000, hh, 0)
			up += 1000 * float64(hh)
			good += 1000
		}
		if good == 0 {
			return m.BandwidthTax(ClassBulk) == 0
		}
		want := up/good - 1
		got := m.BandwidthTax(ClassBulk)
		return math.Abs(got-want) < 1e-9 && got >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRackLocalDeliveryNotTaxed(t *testing.T) {
	m := NewMetrics()
	fl := &Flow{ID: 1, Size: 1000, Class: ClassLowLatency}
	m.AddFlow(fl)
	m.RecordDelivery(fl, 1000, 0, 0) // zero hops: rack-local
	if m.GoodputBytes[ClassLowLatency] != 0 {
		t.Fatal("rack-local bytes should not count toward fabric goodput")
	}
	if fl.BytesRcvd != 1000 {
		t.Fatal("delivery bytes must still accrue to the flow")
	}
}

// DoneCount is O(1): the counter is maintained by FlowDone, never by
// rescanning the flow table. This pins the incremental bookkeeping —
// idempotent completion, interleaved registration, agreement with a full
// scan at every step.
func TestDoneCountIncremental(t *testing.T) {
	m := NewMetrics()
	scan := func() int {
		n := 0
		for _, f := range m.Flows() {
			if f.Done {
				n++
			}
		}
		return n
	}
	var flows []*Flow
	for i := 0; i < 100; i++ {
		f := &Flow{ID: int64(i), Size: 1000}
		m.AddFlow(f)
		flows = append(flows, f)
		if i%2 == 0 {
			m.FlowDone(f, eventsim.Time(i))
			m.FlowDone(f, eventsim.Time(i+1)) // idempotent: must not double count
		}
		done, total := m.DoneCount()
		if done != scan() || total != i+1 {
			t.Fatalf("after %d flows: DoneCount = (%d, %d), scan = %d", i+1, done, total, scan())
		}
	}
	// Finish the rest out of registration order.
	for i := len(flows) - 1; i >= 0; i-- {
		m.FlowDone(flows[i], 10_000)
	}
	done, total := m.DoneCount()
	if done != 100 || total != 100 {
		t.Fatalf("final DoneCount = (%d, %d), want (100, 100)", done, total)
	}
}
