package sim

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/telemetry"
)

func TestFCTSampleFilter(t *testing.T) {
	m := NewMetrics()
	a := &Flow{ID: 1, Size: 100, Class: ClassLowLatency, Start: 0}
	b := &Flow{ID: 2, Size: 100, Class: ClassBulk, Start: 0}
	m.AddFlow(a)
	m.AddFlow(b)
	m.FlowDone(a, 1000)
	m.FlowDone(b, 2000)
	ll := m.FCTSample(func(f *Flow) bool { return f.Class == ClassLowLatency })
	if ll.N() != 1 || ll.Mean() != 1.0 {
		t.Fatalf("LL sample: n=%d mean=%v", ll.N(), ll.Mean())
	}
	all := m.FCTSample(nil)
	if all.N() != 2 {
		t.Fatalf("all sample n=%d", all.N())
	}
}

func TestBandwidthTaxZeroWhenIdle(t *testing.T) {
	m := NewMetrics()
	if m.BandwidthTax(ClassBulk) != 0 || m.AggregateTax() != 0 {
		t.Fatal("idle metrics should have zero tax")
	}
}

func TestOnFlowDoneCallback(t *testing.T) {
	m := NewMetrics()
	var called int
	m.OnFlowDone = func(f *Flow) { called++ }
	f := &Flow{ID: 1}
	m.AddFlow(f)
	m.FlowDone(f, 10)
	m.FlowDone(f, 20) // idempotent: no second call
	if called != 1 {
		t.Fatalf("callback fired %d times", called)
	}
}

// Property: tax is (sum hops·bytes / sum bytes) − 1 for arbitrary delivery
// patterns, and never negative.
func TestTaxProperty(t *testing.T) {
	f := func(hops []uint8) bool {
		m := NewMetrics()
		fl := &Flow{ID: 1, Size: 1 << 40, Class: ClassBulk}
		m.AddFlow(fl)
		var up, good float64
		for _, h := range hops {
			hh := int(h%6) + 1
			m.RecordDelivery(fl, 1000, hh, 0)
			up += 1000 * float64(hh)
			good += 1000
		}
		if good == 0 {
			return m.BandwidthTax(ClassBulk) == 0
		}
		want := up/good - 1
		got := m.BandwidthTax(ClassBulk)
		return math.Abs(got-want) < 1e-9 && got >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRackLocalDeliveryNotTaxed(t *testing.T) {
	m := NewMetrics()
	fl := &Flow{ID: 1, Size: 1000, Class: ClassLowLatency}
	m.AddFlow(fl)
	m.RecordDelivery(fl, 1000, 0, 0) // zero hops: rack-local
	if m.GoodputBytes[ClassLowLatency] != 0 {
		t.Fatal("rack-local bytes should not count toward fabric goodput")
	}
	if fl.BytesRcvd != 1000 {
		t.Fatal("delivery bytes must still accrue to the flow")
	}
}

// DoneCount is O(1): the counter is maintained by FlowDone, never by
// rescanning the flow table. This pins the incremental bookkeeping —
// idempotent completion, interleaved registration, agreement with a full
// scan at every step.
func TestDoneCountIncremental(t *testing.T) {
	m := NewMetrics()
	scan := func() int {
		n := 0
		for _, f := range m.Flows() {
			if f.Done {
				n++
			}
		}
		return n
	}
	var flows []*Flow
	for i := 0; i < 100; i++ {
		f := &Flow{ID: int64(i), Size: 1000}
		m.AddFlow(f)
		flows = append(flows, f)
		if i%2 == 0 {
			m.FlowDone(f, eventsim.Time(i))
			m.FlowDone(f, eventsim.Time(i+1)) // idempotent: must not double count
		}
		done, total := m.DoneCount()
		if done != scan() || total != i+1 {
			t.Fatalf("after %d flows: DoneCount = (%d, %d), scan = %d", i+1, done, total, scan())
		}
	}
	// Finish the rest out of registration order.
	for i := len(flows) - 1; i >= 0; i-- {
		m.FlowDone(flows[i], 10_000)
	}
	done, total := m.DoneCount()
	if done != 100 || total != 100 {
		t.Fatalf("final DoneCount = (%d, %d), want (100, 100)", done, total)
	}
}

// Streaming retention releases every completed flow: Metrics retains
// nothing, the sketches absorb the statistics, and release hooks let
// other owners drop their references.
func TestRetainSketchReleasesFlows(t *testing.T) {
	m := NewMetrics()
	m.SetRetention(RetainSketch(telemetry.Opts{}))
	if !m.Streaming() || m.Telemetry() == nil {
		t.Fatal("RetainSketch should report Streaming with a collector")
	}
	var released []int64
	m.ReleaseHook(func(f *Flow) { released = append(released, f.ID) })

	a := &Flow{ID: 1, Size: 100, Class: ClassLowLatency, Tag: "ws"}
	b := &Flow{ID: 2, Size: 100, Class: ClassBulk, Tag: "ws"}
	c := &Flow{ID: 3, Size: 100, Class: ClassLowLatency}
	for _, f := range []*Flow{a, b, c} {
		m.AddFlow(f)
	}
	m.RecordDelivery(a, 100, 2, 500)
	m.FlowDone(a, 1000)
	m.FlowDone(a, 2000) // idempotent: no double absorb, no double release
	m.FlowDone(b, 3000)

	if n := len(m.Flows()); n != 0 {
		t.Fatalf("streaming retention kept %d flows", n)
	}
	done, total := m.DoneCount()
	if done != 2 || total != 3 {
		t.Fatalf("DoneCount = (%d, %d), want (2, 3)", done, total)
	}
	if len(released) != 2 || released[0] != 1 || released[1] != 2 {
		t.Fatalf("released = %v, want [1 2]", released)
	}
	tel := m.Telemetry()
	if got := tel.ClassSketch(int(ClassLowLatency)).Count(); got != 1 {
		t.Fatalf("low-latency sketch count = %d", got)
	}
	if got := tel.Merged().Count(); got != 2 {
		t.Fatalf("merged sketch count = %d", got)
	}
	ws := tel.Tags()["ws"]
	if ws == nil || ws.Done != 2 || ws.Total != 2 || ws.Bytes != 100 {
		t.Fatalf("tag tally = %+v", ws)
	}
	// FCTs entered in microseconds: flow a completed at 1000 ns = 1 µs.
	if p := tel.ClassSketch(int(ClassLowLatency)).Quantile(0.5); math.Abs(p-1) > 0.02 {
		t.Fatalf("LL p50 = %v µs, want ~1", p)
	}
}

// Delivered bytes stay exact under streaming retention even once bins
// rotate out of the trailing window, and the windowed tax matches the
// exact counters when everything fits the window.
func TestRetainSketchDeliveredAndTax(t *testing.T) {
	m := NewMetrics()
	m.SetRetention(RetainSketch(telemetry.Opts{WindowBin: 0.001, WindowBins: 4}))
	f := &Flow{ID: 1, Size: 1 << 30, Class: ClassBulk}
	m.AddFlow(f)
	for i := 0; i < 20; i++ { // 20 ms ≫ the 4 ms window
		m.RecordDelivery(f, 1000, 2, eventsim.Time(i)*eventsim.Millisecond)
	}
	if got := m.DeliveredTotal(); got != 20_000 {
		t.Fatalf("DeliveredTotal = %v, want 20000", got)
	}
	if m.DeliveredBytes != nil {
		t.Fatal("exact DeliveredBytes series should be nil under RetainSketch")
	}
	if tax := m.AggregateTax(); math.Abs(tax-1) > 1e-9 {
		t.Fatalf("exact tax = %v, want 1 (2 hops per byte)", tax)
	}
	tel := m.Telemetry()
	if good := tel.Goodput().WindowTotal(); good != 4_000 {
		t.Fatalf("windowed goodput = %v, want 4000 (4 retained bins)", good)
	}
	if up := tel.Uplink().WindowTotal(); up != 8_000 {
		t.Fatalf("windowed uplink bytes = %v, want 8000", up)
	}
}

func TestSetRetentionAfterFlowsPanics(t *testing.T) {
	m := NewMetrics()
	m.AddFlow(&Flow{ID: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("SetRetention after AddFlow should panic")
		}
	}()
	m.SetRetention(RetainSketch(telemetry.Opts{}))
}
