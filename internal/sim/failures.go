package sim

import (
	"fmt"

	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/routing"
)

// This file implements §3.6.2's failure handling in the running fabric:
//
//   - Links, ToRs and circuit switches can fail at any simulated time.
//   - The ToRs adjacent to a failure detect it through the hello exchange
//     at the start of the next matching (modelled as immediate detection —
//     within one slice — at the endpoints).
//   - Failure information spreads epidemically: each time a new circuit is
//     configured, the ToRs at its two ends exchange hello messages carrying
//     any failure news. Because all ToR pairs connect every cycle, every
//     surviving ToR learns of a failure within at most two cycles (§3.6.2:
//     1–10 ms).
//   - A ToR that has learned of the failures recomputes its routing tables
//     against the surviving topology; until then it may forward into dead
//     circuits, where packets are lost (bulk takes the NACK path, NDP
//     recovers low-latency traffic via retransmission timeouts).
//
// The post-failure tables are computed once per failure event (they are
// what distributed recomputation converges to); each ToR simply switches
// to them when the epidemic reaches it.

// FailureState tracks runtime failures and the information epidemic. It
// implements FaultInjector over flat {rack, rotor-switch} coordinates:
// Tier-0 links name rack uplinks, ToR targets name racks, Tier-0 switch
// targets name rotor switches. Gray impairments (lossy/degraded) apply to
// the named rack's uplink port — the rack side of the circuit.
type FailureState struct {
	faultCore
	net *OperaNet

	linkDown [][]bool // [rack][switch]
	torDown  []bool
	swDown   []bool

	// informed marks ToRs that have learned of the latest failure set and
	// therefore use the recovery tables.
	informed []bool
	// epoch counts failure events; Tables are rebuilt per epoch.
	epoch int

	recovery *routing.Tables

	// LostToDeadLinks counts packets that sailed into a failed circuit.
	LostToDeadLinks uint64
}

func newFailureState(n *OperaNet) *FailureState {
	fs := &FailureState{net: n}
	fs.linkDown = make([][]bool, n.topo.NumRacks())
	for i := range fs.linkDown {
		fs.linkDown[i] = make([]bool, n.topo.Uplinks())
	}
	fs.torDown = make([]bool, n.topo.NumRacks())
	fs.swDown = make([]bool, n.topo.Uplinks())
	fs.informed = make([]bool, n.topo.NumRacks())
	fs.faultCore.init(n.eng, n.faultSeed, fs)
	return fs
}

// Inject implements FaultInjector.
func (fs *FailureState) Inject(t Target, f Fault, at eventsim.Time) error {
	return fs.faultCore.inject(t, f, at)
}

// Recover implements FaultInjector: down state, gray impairments and flap
// cycles on the target all clear at the given time, and the epidemic
// spreads the good news like any other topology change.
func (fs *FailureState) Recover(t Target, at eventsim.Time) error {
	return fs.faultCore.recover(t, at)
}

// Links enumerates every rack↔rotor-switch cable, rack-major.
func (fs *FailureState) Links() []LinkID {
	topo := fs.net.topo
	out := make([]LinkID, 0, topo.NumRacks()*topo.Uplinks())
	for rack := 0; rack < topo.NumRacks(); rack++ {
		for sw := 0; sw < topo.Uplinks(); sw++ {
			out = append(out, FlatLink(rack, sw))
		}
	}
	return out
}

// checkTarget implements fabricFaultOps.
func (fs *FailureState) checkTarget(t Target) error {
	topo := fs.net.topo
	switch t.Kind {
	case TargetLink:
		if t.Link.Tier != 0 {
			return fmt.Errorf("sim: opera links are flat {rack, rotor switch}; got %v", t.Link)
		}
		if t.Link.Switch < 0 || t.Link.Switch >= topo.NumRacks() {
			return fmt.Errorf("sim: %v: rack %d out of range [0,%d)", t, t.Link.Switch, topo.NumRacks())
		}
		if t.Link.Port < 0 || t.Link.Port >= topo.Uplinks() {
			return fmt.Errorf("sim: %v: rotor switch %d out of range [0,%d)", t, t.Link.Port, topo.Uplinks())
		}
	case TargetToR:
		if t.ID < 0 || t.ID >= topo.NumRacks() {
			return fmt.Errorf("sim: %v: rack %d out of range [0,%d)", t, t.ID, topo.NumRacks())
		}
	case TargetSwitch:
		if t.Tier != 0 {
			return fmt.Errorf("sim: %v: opera switches live on tier 0 (the rotor plane)", t)
		}
		if t.ID < 0 || t.ID >= topo.Uplinks() {
			return fmt.Errorf("sim: %v: rotor switch %d out of range [0,%d)", t, t.ID, topo.Uplinks())
		}
	default:
		return fmt.Errorf("sim: %v: unknown target kind", t)
	}
	return nil
}

// linkPorts implements fabricFaultOps: gray impairments ride the named
// rack's uplink port toward the rotor switch.
func (fs *FailureState) linkPorts(l LinkID) []*Port {
	return []*Port{fs.net.tors[l.Switch].up[l.Port]}
}

// setDown implements fabricFaultOps, carrying §3.6.2's detection
// semantics for each coordinate kind (see the file comment).
func (fs *FailureState) setDown(t Target, down bool) {
	switch t.Kind {
	case TargetLink:
		rack := t.Link.Switch
		fs.linkDown[rack][t.Link.Port] = down
		fs.onFailure([]int{rack})
	case TargetToR:
		rack := t.ID
		fs.torDown[rack] = down
		// Detection: the racks currently circuit-connected to it notice at
		// their next hello; on recovery the rack itself also knows.
		sc := int(fs.net.curSlice % int64(fs.net.topo.SlicesPerCycle()))
		var detectors []int
		if !down {
			detectors = append(detectors, rack)
		}
		for sw := 0; sw < fs.net.topo.Uplinks(); sw++ {
			p := fs.net.topo.SwitchMatching(sw, sc).Peer(rack)
			if p != rack {
				detectors = append(detectors, p)
			}
		}
		fs.onFailure(detectors)
	case TargetSwitch:
		fs.swDown[t.ID] = down
		// Every ToR detects on its own uplink (signal loss, §3.5).
		all := make([]int, fs.net.topo.NumRacks())
		for i := range all {
			all[i] = i
		}
		fs.onFailure(all)
	}
}

// Failures returns the network's failure state, creating it lazily.
func (n *OperaNet) Failures() *FailureState {
	if n.failures == nil {
		n.failures = newFailureState(n)
	}
	return n.failures
}

// FaultInjector implements FaultNetwork.
func (n *OperaNet) FaultInjector() FaultInjector { return n.Failures() }

// LinkUp reports whether the rack↔switch cable is intact and both ends
// functional.
func (fs *FailureState) LinkUp(rack, sw int) bool {
	return !fs.linkDown[rack][sw] && !fs.torDown[rack] && !fs.swDown[sw]
}

// FailLink schedules the rack↔switch cable to fail at the given time.
//
// Deprecated: use Inject(LinkTarget(FlatLink(rack, sw)), DownFault(), at).
func (fs *FailureState) FailLink(rack, sw int, at eventsim.Time) {
	mustInject(fs.Inject(LinkTarget(FlatLink(rack, sw)), DownFault(), at))
}

// FailToR schedules a whole ToR to fail: its hosts drop off the network
// and its circuits go dark. Neighbors detect via missing hellos.
//
// Deprecated: use Inject(ToRTarget(rack), DownFault(), at).
func (fs *FailureState) FailToR(rack int, at eventsim.Time) {
	mustInject(fs.Inject(ToRTarget(rack), DownFault(), at))
}

// FailSwitch schedules a rotor switch to fail entirely.
//
// Deprecated: use Inject(SwitchTarget(sw), DownFault(), at).
func (fs *FailureState) FailSwitch(sw int, at eventsim.Time) {
	mustInject(fs.Inject(SwitchTarget(sw), DownFault(), at))
}

// RecoverLink schedules the rack↔switch cable to come back up at the
// given time. Both ends see the restored signal and start spreading the
// news; distant ToRs keep routing around the link until the epidemic
// reaches them.
//
// Deprecated: use Recover(LinkTarget(FlatLink(rack, sw)), at).
func (fs *FailureState) RecoverLink(rack, sw int, at eventsim.Time) {
	mustInject(fs.Recover(LinkTarget(FlatLink(rack, sw)), at))
}

// RecoverToR schedules a failed ToR to rejoin: its circuits light up
// again and its current-slice peers detect it through fresh hellos.
//
// Deprecated: use Recover(ToRTarget(rack), at).
func (fs *FailureState) RecoverToR(rack int, at eventsim.Time) {
	mustInject(fs.Recover(ToRTarget(rack), at))
}

// RecoverSwitch schedules a failed rotor switch back into rotation; every
// ToR sees its uplink signal return (§3.5).
//
// Deprecated: use Recover(SwitchTarget(sw), at).
func (fs *FailureState) RecoverSwitch(sw int, at eventsim.Time) {
	mustInject(fs.Recover(SwitchTarget(sw), at))
}

// onFailure starts a new epoch: rebuild recovery tables against the
// surviving topology and seed the epidemic with the detecting ToRs.
func (fs *FailureState) onFailure(detectors []int) {
	fs.epoch++
	for i := range fs.informed {
		fs.informed[i] = false
	}
	for _, d := range detectors {
		if !fs.torDown[d] {
			fs.informed[d] = true
		}
	}
	fs.recovery = routing.MustBuild(fs.portMaps())
}

// portMaps derives per-slice port maps of the surviving topology.
func (fs *FailureState) portMaps() []routing.PortMap {
	topo := fs.net.topo
	maps := routing.OperaPortMaps(topo)
	for s := range maps {
		for rack := range maps[s] {
			for sw := range maps[s][rack] {
				peer := maps[s][rack][sw]
				if peer < 0 {
					continue
				}
				if !fs.LinkUp(rack, sw) || !fs.LinkUp(int(peer), sw) {
					maps[s][rack][sw] = -1
				}
			}
		}
	}
	return maps
}

// spread runs the hello-protocol epidemic for one slice boundary: the two
// ends of every newly configured circuit exchange failure news (§3.6.2).
func (fs *FailureState) spread(sliceInCycle int) {
	if fs.epoch == 0 {
		return
	}
	topo := fs.net.topo
	for sw := 0; sw < topo.Uplinks(); sw++ {
		if fs.swDown[sw] {
			continue
		}
		m := topo.SwitchMatching(sw, sliceInCycle)
		for a := 0; a < topo.NumRacks(); a++ {
			b := m.Peer(a)
			if b <= a {
				continue
			}
			if !fs.LinkUp(a, sw) || !fs.LinkUp(b, sw) {
				continue
			}
			if fs.informed[a] || fs.informed[b] {
				fs.informed[a] = true
				fs.informed[b] = true
			}
		}
	}
}

// InformedCount returns how many surviving ToRs have learned the current
// failure set.
func (fs *FailureState) InformedCount() (informed, survivors int) {
	for r, up := range fs.torDown {
		if up {
			continue
		}
		survivors++
		if fs.informed[r] {
			informed++
		}
	}
	return informed, survivors
}

// tablesFor returns the routing tables ToR rack should use: the recovery
// tables once informed, the original ones otherwise.
func (fs *FailureState) tablesFor(rack int) *routing.Tables {
	if fs.epoch > 0 && fs.informed[rack] && fs.recovery != nil {
		return fs.recovery
	}
	return fs.net.tables
}
