package sim

import (
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/routing"
)

// This file implements §3.6.2's failure handling in the running fabric:
//
//   - Links, ToRs and circuit switches can fail at any simulated time.
//   - The ToRs adjacent to a failure detect it through the hello exchange
//     at the start of the next matching (modelled as immediate detection —
//     within one slice — at the endpoints).
//   - Failure information spreads epidemically: each time a new circuit is
//     configured, the ToRs at its two ends exchange hello messages carrying
//     any failure news. Because all ToR pairs connect every cycle, every
//     surviving ToR learns of a failure within at most two cycles (§3.6.2:
//     1–10 ms).
//   - A ToR that has learned of the failures recomputes its routing tables
//     against the surviving topology; until then it may forward into dead
//     circuits, where packets are lost (bulk takes the NACK path, NDP
//     recovers low-latency traffic via retransmission timeouts).
//
// The post-failure tables are computed once per failure event (they are
// what distributed recomputation converges to); each ToR simply switches
// to them when the epidemic reaches it.

// FailureState tracks runtime failures and the information epidemic.
type FailureState struct {
	net *OperaNet

	linkDown [][]bool // [rack][switch]
	torDown  []bool
	swDown   []bool

	// informed marks ToRs that have learned of the latest failure set and
	// therefore use the recovery tables.
	informed []bool
	// epoch counts failure events; Tables are rebuilt per epoch.
	epoch int

	recovery *routing.Tables

	// LostToDeadLinks counts packets that sailed into a failed circuit.
	LostToDeadLinks uint64
}

func newFailureState(n *OperaNet) *FailureState {
	fs := &FailureState{net: n}
	fs.linkDown = make([][]bool, n.topo.NumRacks())
	for i := range fs.linkDown {
		fs.linkDown[i] = make([]bool, n.topo.Uplinks())
	}
	fs.torDown = make([]bool, n.topo.NumRacks())
	fs.swDown = make([]bool, n.topo.Uplinks())
	fs.informed = make([]bool, n.topo.NumRacks())
	return fs
}

// Failures returns the network's failure state, creating it lazily.
func (n *OperaNet) Failures() *FailureState {
	if n.failures == nil {
		n.failures = newFailureState(n)
	}
	return n.failures
}

// FaultInjector implements FaultNetwork.
func (n *OperaNet) FaultInjector() FaultInjector { return n.Failures() }

// LinkUp reports whether the rack↔switch cable is intact and both ends
// functional.
func (fs *FailureState) LinkUp(rack, sw int) bool {
	return !fs.linkDown[rack][sw] && !fs.torDown[rack] && !fs.swDown[sw]
}

// FailLink schedules the rack↔switch cable to fail at the given time.
func (fs *FailureState) FailLink(rack, sw int, at eventsim.Time) {
	fs.net.eng.At(at, func() {
		fs.linkDown[rack][sw] = true
		fs.onFailure([]int{rack})
	})
}

// FailToR schedules a whole ToR to fail: its hosts drop off the network
// and its circuits go dark. Neighbors detect via missing hellos.
func (fs *FailureState) FailToR(rack int, at eventsim.Time) {
	fs.net.eng.At(at, func() {
		fs.torDown[rack] = true
		// Every rack currently circuit-connected to it detects at its next
		// hello; model: peers in the current slice are informed.
		sc := int(fs.net.curSlice % int64(fs.net.topo.SlicesPerCycle()))
		var detectors []int
		for sw := 0; sw < fs.net.topo.Uplinks(); sw++ {
			p := fs.net.topo.SwitchMatching(sw, sc).Peer(rack)
			if p != rack {
				detectors = append(detectors, p)
			}
		}
		fs.onFailure(detectors)
	})
}

// FailSwitch schedules a rotor switch to fail entirely.
func (fs *FailureState) FailSwitch(sw int, at eventsim.Time) {
	fs.net.eng.At(at, func() {
		fs.swDown[sw] = true
		// Every ToR detects on its own uplink (signal loss, §3.5).
		all := make([]int, fs.net.topo.NumRacks())
		for i := range all {
			all[i] = i
		}
		fs.onFailure(all)
	})
}

// RecoverLink schedules the rack↔switch cable to come back up at the
// given time. Both ends see the restored signal and start spreading the
// news; distant ToRs keep routing around the link until the epidemic
// reaches them.
func (fs *FailureState) RecoverLink(rack, sw int, at eventsim.Time) {
	fs.net.eng.At(at, func() {
		fs.linkDown[rack][sw] = false
		fs.onFailure([]int{rack})
	})
}

// RecoverToR schedules a failed ToR to rejoin: its circuits light up
// again and its current-slice peers detect it through fresh hellos.
func (fs *FailureState) RecoverToR(rack int, at eventsim.Time) {
	fs.net.eng.At(at, func() {
		fs.torDown[rack] = false
		sc := int(fs.net.curSlice % int64(fs.net.topo.SlicesPerCycle()))
		detectors := []int{rack}
		for sw := 0; sw < fs.net.topo.Uplinks(); sw++ {
			p := fs.net.topo.SwitchMatching(sw, sc).Peer(rack)
			if p != rack {
				detectors = append(detectors, p)
			}
		}
		fs.onFailure(detectors)
	})
}

// RecoverSwitch schedules a failed rotor switch back into rotation; every
// ToR sees its uplink signal return (§3.5).
func (fs *FailureState) RecoverSwitch(sw int, at eventsim.Time) {
	fs.net.eng.At(at, func() {
		fs.swDown[sw] = false
		all := make([]int, fs.net.topo.NumRacks())
		for i := range all {
			all[i] = i
		}
		fs.onFailure(all)
	})
}

// onFailure starts a new epoch: rebuild recovery tables against the
// surviving topology and seed the epidemic with the detecting ToRs.
func (fs *FailureState) onFailure(detectors []int) {
	fs.epoch++
	for i := range fs.informed {
		fs.informed[i] = false
	}
	for _, d := range detectors {
		if !fs.torDown[d] {
			fs.informed[d] = true
		}
	}
	fs.recovery = routing.MustBuild(fs.portMaps())
}

// portMaps derives per-slice port maps of the surviving topology.
func (fs *FailureState) portMaps() []routing.PortMap {
	topo := fs.net.topo
	maps := routing.OperaPortMaps(topo)
	for s := range maps {
		for rack := range maps[s] {
			for sw := range maps[s][rack] {
				peer := maps[s][rack][sw]
				if peer < 0 {
					continue
				}
				if !fs.LinkUp(rack, sw) || !fs.LinkUp(int(peer), sw) {
					maps[s][rack][sw] = -1
				}
			}
		}
	}
	return maps
}

// spread runs the hello-protocol epidemic for one slice boundary: the two
// ends of every newly configured circuit exchange failure news (§3.6.2).
func (fs *FailureState) spread(sliceInCycle int) {
	if fs.epoch == 0 {
		return
	}
	topo := fs.net.topo
	for sw := 0; sw < topo.Uplinks(); sw++ {
		if fs.swDown[sw] {
			continue
		}
		m := topo.SwitchMatching(sw, sliceInCycle)
		for a := 0; a < topo.NumRacks(); a++ {
			b := m.Peer(a)
			if b <= a {
				continue
			}
			if !fs.LinkUp(a, sw) || !fs.LinkUp(b, sw) {
				continue
			}
			if fs.informed[a] || fs.informed[b] {
				fs.informed[a] = true
				fs.informed[b] = true
			}
		}
	}
}

// InformedCount returns how many surviving ToRs have learned the current
// failure set.
func (fs *FailureState) InformedCount() (informed, survivors int) {
	for r, up := range fs.torDown {
		if up {
			continue
		}
		survivors++
		if fs.informed[r] {
			informed++
		}
	}
	return informed, survivors
}

// tablesFor returns the routing tables ToR rack should use: the recovery
// tables once informed, the original ones otherwise.
func (fs *FailureState) tablesFor(rack int) *routing.Tables {
	if fs.epoch > 0 && fs.informed[rack] && fs.recovery != nil {
		return fs.recovery
	}
	return fs.net.tables
}
