package sim

import (
	"fmt"
	"math/rand"

	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/routing"
	"github.com/opera-net/opera/internal/topology"
)

// ExpanderNet assembles the static expander baseline (§2.3): ToRs wired
// directly to u peer ToRs over a random regular graph, NDP for all traffic,
// per-packet spraying across equal-cost shortest paths.
type ExpanderNet struct {
	eng     *eventsim.Engine
	cfg     *Config
	topo    *topology.Expander
	tables  *routing.Tables
	hosts   []*Host
	tors    []*ExpanderToR
	metrics *Metrics
	faults  *ExpanderFaults // lazily created; see expander_faults.go
	// faultSeed seeds deterministic gray-failure (lossy-link) draws.
	faultSeed int64
}

func init() {
	Register("expander", func(p BuildParams) (Network, error) {
		topo, err := topology.NewExpander(p.Racks, p.HostsPerRack, p.Uplinks, p.Seed)
		if err != nil {
			return nil, err
		}
		return NewExpanderNet(p.Engine, p.Sim, topo, p.Seed+1), nil
	})
}

// NewExpanderNet wires the expander fabric.
func NewExpanderNet(eng *eventsim.Engine, cfg Config, topo *topology.Expander, seed int64) *ExpanderNet {
	n := &ExpanderNet{
		eng:       eng,
		cfg:       &cfg,
		topo:      topo,
		tables:    routing.MustBuild(routing.ExpanderPortMap(topo)),
		metrics:   NewMetrics(),
		faultSeed: seed,
	}
	n.hosts = make([]*Host, topo.NumHosts())
	n.tors = make([]*ExpanderToR, topo.NumRacks)
	for r := 0; r < topo.NumRacks; r++ {
		n.tors[r] = &ExpanderToR{
			net:  n,
			rack: int32(r),
			rng:  rand.New(rand.NewSource(seed + int64(r) + 1)),
		}
	}
	d := topo.HostsPerRack
	for h := range n.hosts {
		host := NewHost(eng, n.cfg, int32(h), int32(h/d))
		n.hosts[h] = host
		host.SetNIC(NewPort(eng, n.cfg, fmt.Sprintf("host%d->tor%d", h, host.Rack), n.tors[host.Rack]))
	}
	for r := 0; r < topo.NumRacks; r++ {
		tor := n.tors[r]
		tor.down = make([]*Port, d)
		for i := 0; i < d; i++ {
			host := n.hosts[r*d+i]
			tor.down[i] = NewPort(eng, n.cfg, fmt.Sprintf("tor%d->host%d", r, host.ID), host)
		}
		neighbors := topo.G.Neighbors(r)
		tor.up = make([]*Port, len(neighbors))
		for i, nb := range neighbors {
			tor.up[i] = NewPort(eng, n.cfg, fmt.Sprintf("tor%d->tor%d", r, nb), n.tors[nb])
		}
	}
	return n
}

// Engine returns the simulation engine.
func (n *ExpanderNet) Engine() *eventsim.Engine { return n.eng }

// Kind implements Network.
func (n *ExpanderNet) Kind() string { return "expander" }

// PacketCapable implements Network: the expander is all packet switching.
func (n *ExpanderNet) PacketCapable() bool { return true }

// NumRacks implements Network.
func (n *ExpanderNet) NumRacks() int { return n.topo.NumRacks }

// HostsPerRack implements Network.
func (n *ExpanderNet) HostsPerRack() int { return n.topo.HostsPerRack }

// Start implements Network; a static fabric has no circuit clock.
func (n *ExpanderNet) Start() {}

// Stop implements Network.
func (n *ExpanderNet) Stop() {}

// Config returns the physical constants.
func (n *ExpanderNet) Config() *Config { return n.cfg }

// Metrics returns the metrics collector.
func (n *ExpanderNet) Metrics() *Metrics { return n.metrics }

// Hosts returns all hosts.
func (n *ExpanderNet) Hosts() []*Host { return n.hosts }

// Topology returns the expander topology.
func (n *ExpanderNet) Topology() *topology.Expander { return n.topo }

// ExpanderToR forwards packets along shortest expander paths, spraying
// across equal-cost next hops per packet.
type ExpanderToR struct {
	net  *ExpanderNet
	rack int32
	up   []*Port // indexed like the topology's neighbor list
	down []*Port
	rng  *rand.Rand
}

// Receive implements Node.
func (t *ExpanderToR) Receive(p *Packet, _ *Port) {
	n := t.net
	if p.DstRack == t.rack {
		d := len(t.down)
		idx := int(p.DstHost) - int(t.rack)*d
		if idx < 0 || idx >= d {
			p.Release()
			return
		}
		t.down[idx].Enqueue(p)
		return
	}
	uplink := n.tables.PickUplink(0, int(t.rack), int(p.DstRack), t.rng.Uint32())
	if uplink < 0 {
		p.Release()
		return
	}
	p.Hops++
	t.up[uplink].Enqueue(p)
}
