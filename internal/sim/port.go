package sim

import (
	"math/rand"

	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/stats"
)

// Node is anything that can receive packets: hosts and switches.
type Node interface {
	// Receive handles a packet arriving from the given port's link.
	Receive(p *Packet, from *Port)
}

// pktFIFO is a simple ring-buffer packet queue.
type pktFIFO struct {
	buf  []*Packet
	head int
	n    int
}

func (q *pktFIFO) push(p *Packet) {
	if q.n == len(q.buf) {
		grow := make([]*Packet, max(8, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			grow[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf = grow
		q.head = 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = p
	q.n++
}

func (q *pktFIFO) pop() *Packet {
	if q.n == 0 {
		return nil
	}
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return p
}

func (q *pktFIFO) len() int { return q.n }

// take removes and returns the queue's current contents as a snapshot,
// leaving the queue empty. Packets pushed while the snapshot is processed
// land in the live queue and are NOT part of the snapshot — this is what
// makes the reconfiguration drains safe against handlers (NACK paths) that
// re-enqueue into the very queue being drained.
func (q *pktFIFO) take() pktFIFO {
	if q.n == 0 {
		return pktFIFO{}
	}
	snap := *q
	*q = pktFIFO{}
	return snap
}

// giveBack returns a fully drained snapshot's backing array to the queue,
// so per-slice reconfiguration flushes don't shed and regrow ring buffers.
// It is a no-op if the queue acquired a new buffer in the meantime (packets
// re-enqueued during the drain) or the snapshot still holds packets.
func (q *pktFIFO) giveBack(snap pktFIFO) {
	if q.buf == nil && snap.n == 0 && snap.buf != nil {
		q.buf = snap.buf
		q.head = 0
	}
}

// PortStats aggregates a port's counters.
type PortStats struct {
	Tx       [numClasses]stats.Counter // transmitted per class
	Trims    uint64                    // data packets cut to headers
	HdrDrops uint64                    // header-queue overflow drops
	BulkDrop uint64                    // bulk-queue overflow drops
	Stale    uint64                    // packets rerouted at reconfiguration
	LinkLoss uint64                    // packets lost to a lossy-link gray fault
}

// Port is an output port: three strict-priority queues (control/header,
// low-latency data, bulk) feeding a transmitter, connected by a
// fixed-latency link to a destination resolved at transmit time (static for
// packet networks, matching-dependent for rotor uplinks).
type Port struct {
	eng  *eventsim.Engine
	cfg  *Config
	name string

	// resolve returns the node at the far side of the link at transmit
	// time. For static links this is constant; for a rotor-switch uplink it
	// follows the installed matching.
	resolve func(eventsim.Time) Node
	prop    eventsim.Time

	ctrl pktFIFO // control + trimmed headers (highest priority)
	ll   pktFIFO // low-latency data
	bulk pktFIFO // bulk data (lowest priority)

	ctrlBytes, llBytes, bulkBytes int

	busy    bool
	enabled bool

	// onBulkDrop is invoked for bulk packets dropped by overflow, gating,
	// or reconfiguration flush; typically wired to the RotorLB NACK path
	// (§4.2.2). If nil the packet is counted and released.
	onBulkDrop func(*Packet)

	// inflight is the packet currently being serialized (busy implies
	// non-nil). Holding it in a field instead of a closure keeps the
	// per-packet transmit pipeline allocation-free.
	inflight *Packet
	txH      portTxDone
	dvH      portDeliver

	// Gray-failure state (FaultLossy / FaultDegraded). The zero values
	// mean healthy, so the hot path pays only a nil check and a zero
	// compare when no gray fault is active — no draws, no allocation.
	lossRate float64
	lossRng  *rand.Rand
	derate   float64 // serialization-rate fraction; 0 = full rate

	Stats PortStats
}

// portTxDone and portDeliver are the port's pre-bound event handlers
// (eventsim.Handler): serialization-complete and propagation-complete. They
// are fields of the Port so that &pt.txH / &pt.dvH convert to the Handler
// interface without allocating.
type portTxDone struct{ pt *Port }

func (h *portTxDone) OnEvent(any) { h.pt.txComplete() }

type portDeliver struct{ pt *Port }

func (h *portDeliver) OnEvent(arg any) { h.pt.deliver(arg.(*Packet)) }

// NewPort builds a port owned by eng with a static destination.
func NewPort(eng *eventsim.Engine, cfg *Config, name string, dst Node) *Port {
	return NewDynamicPort(eng, cfg, name, func(eventsim.Time) Node { return dst })
}

// NewDynamicPort builds a port whose destination is resolved per packet at
// transmit-completion time (rotor circuit semantics).
func NewDynamicPort(eng *eventsim.Engine, cfg *Config, name string, resolve func(eventsim.Time) Node) *Port {
	pt := &Port{
		eng:     eng,
		cfg:     cfg,
		name:    name,
		resolve: resolve,
		prop:    cfg.PropDelay,
		enabled: true,
	}
	pt.txH.pt = pt
	pt.dvH.pt = pt
	return pt
}

// Name returns the diagnostic name of the port.
func (pt *Port) Name() string { return pt.name }

// SetBulkDropHandler wires the bulk-drop NACK path.
func (pt *Port) SetBulkDropHandler(fn func(*Packet)) { pt.onBulkDrop = fn }

// QueuedBytes returns the bytes currently queued in the given class queue.
func (pt *Port) QueuedBytes(c Class) int {
	switch c {
	case ClassControl:
		return pt.ctrlBytes
	case ClassLowLatency:
		return pt.llBytes
	default:
		return pt.bulkBytes
	}
}

// Enabled reports whether the transmitter is running.
func (pt *Port) Enabled() bool { return pt.enabled }

// SetLossRate makes the port a lossy gray link: each packet completing
// serialization is independently lost with the given probability, drawn
// from a generator seeded here — so loss patterns are deterministic under
// the engine's tie-order rules regardless of scenario parallelism. A rate
// <= 0 clears the impairment. The generator is allocated at injection
// time, off the packet hot path.
func (pt *Port) SetLossRate(rate float64, seed int64) {
	if rate <= 0 {
		pt.lossRate, pt.lossRng = 0, nil
		return
	}
	pt.lossRate = rate
	pt.lossRng = grayRand(seed)
}

// SetRateDerating makes the port a degraded gray link serializing at the
// given fraction of nominal rate (in (0,1)); fractions outside that range
// clear the impairment. Queued and future packets all serialize slower —
// the transceiver is sick, not any one packet.
func (pt *Port) SetRateDerating(fraction float64) {
	if fraction <= 0 || fraction >= 1 {
		pt.derate = 0
		return
	}
	pt.derate = fraction
}

// ClearImpairments removes all gray-failure state (loss and derating).
func (pt *Port) ClearImpairments() {
	pt.lossRate, pt.lossRng, pt.derate = 0, nil, 0
}

// Enqueue admits a packet to the appropriate queue, applying NDP trimming
// and bulk drop policy, and kicks the transmitter.
func (pt *Port) Enqueue(p *Packet) {
	p.EnqueuedAt = pt.eng.Now()
	switch {
	case p.IsControl():
		if pt.ctrlBytes+int(p.Size) > pt.cfg.HeaderQueueBytes {
			pt.Stats.HdrDrops++
			p.Release()
			return
		}
		pt.ctrl.push(p)
		pt.ctrlBytes += int(p.Size)
	case p.Kind == KindBulk:
		if pt.bulkBytes+int(p.Size) > pt.cfg.BulkQueueBytes {
			pt.dropBulk(p)
			return
		}
		pt.bulk.push(p)
		pt.bulkBytes += int(p.Size)
	default: // NDP data
		if p.Class == ClassBulk {
			// Bulk-class NDP data (static networks' large flows): rides the
			// bulk queue but is trimmed, not dropped, on overflow.
			if pt.bulkBytes+int(p.Size) > pt.cfg.BulkQueueBytes {
				pt.trim(p)
				return
			}
			pt.bulk.push(p)
			pt.bulkBytes += int(p.Size)
		} else {
			if pt.llBytes+int(p.Size) > pt.cfg.DataQueueBytes {
				pt.trim(p)
				return
			}
			pt.ll.push(p)
			pt.llBytes += int(p.Size)
		}
	}
	pt.maybeTransmit()
}

// trim converts a data packet to a header and re-admits it at control
// priority (NDP packet trimming).
func (pt *Port) trim(p *Packet) {
	pt.Stats.Trims++
	p.Trimmed = true
	p.Size = int32(pt.cfg.HeaderBytes)
	if pt.ctrlBytes+int(p.Size) > pt.cfg.HeaderQueueBytes {
		pt.Stats.HdrDrops++
		p.Release()
		return
	}
	pt.ctrl.push(p)
	pt.ctrlBytes += int(p.Size)
}

func (pt *Port) dropBulk(p *Packet) {
	pt.Stats.BulkDrop++
	if pt.onBulkDrop != nil {
		pt.onBulkDrop(p)
		return
	}
	p.Release()
}

// SetEnabled gates the transmitter (rotor reconfiguration blackout). While
// disabled, arrivals still queue. Re-enabling kicks the transmitter.
func (pt *Port) SetEnabled(on bool) {
	pt.enabled = on
	if on {
		pt.maybeTransmit()
	}
}

// FlushForReconfig empties the port for a circuit change: bulk packets take
// the drop/NACK path (they were admitted against a circuit that no longer
// exists, §4.2.2); control and low-latency packets are handed to requeue
// for re-routing under the new configuration (stale-packet recovery).
//
// Each queue is drained from a snapshot: the drop/NACK and requeue handlers
// can legally route a packet straight back into this port (the NACK's
// expander path or the new tables may pick the same uplink), and a live
// drain would re-drop such freshly admitted packets — or chase its own tail
// indefinitely. Packets enqueued during the flush were routed with current
// knowledge and stay queued.
func (pt *Port) FlushForReconfig(requeue func(*Packet)) {
	// All three snapshots are taken before any handler runs: a NACK minted
	// while draining bulk is a freshly routed packet, not a stale one, and
	// must not be re-flushed by the control drain that follows.
	bulk, ctrl, ll := pt.bulk.take(), pt.ctrl.take(), pt.ll.take()
	for p := bulk.pop(); p != nil; p = bulk.pop() {
		pt.bulkBytes -= int(p.Size)
		pt.dropBulk(p)
	}
	for p := ctrl.pop(); p != nil; p = ctrl.pop() {
		pt.ctrlBytes -= int(p.Size)
		pt.Stats.Stale++
		requeue(p)
	}
	for p := ll.pop(); p != nil; p = ll.pop() {
		pt.llBytes -= int(p.Size)
		pt.Stats.Stale++
		requeue(p)
	}
	pt.bulk.giveBack(bulk)
	pt.ctrl.giveBack(ctrl)
	pt.ll.giveBack(ll)
}

// DropAll empties the port with failed-cable semantics: queued bulk
// packets take the drop/NACK path, control and low-latency packets are
// simply lost (their transports recover through retransmission). It
// returns how many control/low-latency packets were lost. A transmission
// already in progress still delivers — the cable fails behind it. Like
// FlushForReconfig, each queue drains from a snapshot so a NACK handler
// re-enqueueing into this port cannot get its fresh packets re-dropped.
func (pt *Port) DropAll() (lost uint64) {
	bulk, ctrl, ll := pt.bulk.take(), pt.ctrl.take(), pt.ll.take()
	for p := bulk.pop(); p != nil; p = bulk.pop() {
		pt.bulkBytes -= int(p.Size)
		pt.dropBulk(p)
	}
	for p := ctrl.pop(); p != nil; p = ctrl.pop() {
		pt.ctrlBytes -= int(p.Size)
		lost++
		p.Release()
	}
	for p := ll.pop(); p != nil; p = ll.pop() {
		pt.llBytes -= int(p.Size)
		lost++
		p.Release()
	}
	pt.bulk.giveBack(bulk)
	pt.ctrl.giveBack(ctrl)
	pt.ll.giveBack(ll)
	return lost
}

// pick dequeues the next packet by strict priority.
func (pt *Port) pick() *Packet {
	if p := pt.ctrl.pop(); p != nil {
		pt.ctrlBytes -= int(p.Size)
		return p
	}
	if p := pt.ll.pop(); p != nil {
		pt.llBytes -= int(p.Size)
		return p
	}
	if p := pt.bulk.pop(); p != nil {
		pt.bulkBytes -= int(p.Size)
		return p
	}
	return nil
}

func (pt *Port) maybeTransmit() {
	if pt.busy || !pt.enabled {
		return
	}
	p := pt.pick()
	if p == nil {
		return
	}
	pt.busy = true
	pt.inflight = p
	d := pt.cfg.SerializationDelay(int(p.Size))
	if pt.derate != 0 {
		// Degraded gray link: the transmitter runs at a fraction of its
		// nominal rate, so every packet stretches by 1/derate.
		d = eventsim.Time(float64(d) / pt.derate)
	}
	// ContinueCall: when the transmitter is kicked from inside an event
	// callback (a delivery that enqueued here, a reconfiguration tick), the
	// tx-done hop rides that event's object instead of a pool round trip.
	pt.eng.ContinueCall(d, &pt.txH, nil)
}

// txComplete fires when the in-flight packet's last bit leaves the
// transmitter: resolve the far end as of now (rotor semantics), launch the
// propagation-delay delivery, and start the next transmission.
func (pt *Port) txComplete() {
	p := pt.inflight
	pt.inflight = nil
	pt.Stats.Tx[p.Class].Add(int(p.Size))
	if pt.lossRng != nil && pt.lossRng.Float64() < pt.lossRate {
		// Lossy gray link: the bits left the transmitter but never arrive.
		// Same disposition as a dark link below — bulk takes the drop/NACK
		// path, everything else relies on transport retransmission.
		pt.Stats.LinkLoss++
		if p.Kind == KindBulk {
			pt.dropBulk(p)
		} else {
			p.Release()
		}
		pt.busy = false
		pt.maybeTransmit()
		return
	}
	dst := pt.resolve(pt.eng.Now())
	if dst != nil {
		p.dst = dst
		// The propagation hop rides the just-fired tx-done event: one Event
		// object carries the packet through serialize→propagate→deliver.
		pt.eng.ContinueCall(pt.prop, &pt.dvH, p)
	} else {
		// Link dark (no peer): the photons are lost.
		if p.Kind == KindBulk {
			pt.dropBulk(p)
		} else {
			p.Release()
		}
	}
	pt.busy = false
	pt.maybeTransmit()
}

// deliver fires when a packet's propagation delay elapses: hand it to the
// node that was at the far end of the link when transmission completed.
func (pt *Port) deliver(p *Packet) {
	dst := p.dst
	p.dst = nil
	dst.Receive(p, pt)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
