package sim

import (
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/stats"
)

// Node is anything that can receive packets: hosts and switches.
type Node interface {
	// Receive handles a packet arriving from the given port's link.
	Receive(p *Packet, from *Port)
}

// pktFIFO is a simple ring-buffer packet queue.
type pktFIFO struct {
	buf  []*Packet
	head int
	n    int
}

func (q *pktFIFO) push(p *Packet) {
	if q.n == len(q.buf) {
		grow := make([]*Packet, max(8, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			grow[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf = grow
		q.head = 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = p
	q.n++
}

func (q *pktFIFO) pop() *Packet {
	if q.n == 0 {
		return nil
	}
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return p
}

func (q *pktFIFO) len() int { return q.n }

// drain empties the queue, invoking fn on every packet.
func (q *pktFIFO) drain(fn func(*Packet)) {
	for {
		p := q.pop()
		if p == nil {
			return
		}
		fn(p)
	}
}

// PortStats aggregates a port's counters.
type PortStats struct {
	Tx       [numClasses]stats.Counter // transmitted per class
	Trims    uint64                    // data packets cut to headers
	HdrDrops uint64                    // header-queue overflow drops
	BulkDrop uint64                    // bulk-queue overflow drops
	Stale    uint64                    // packets rerouted at reconfiguration
}

// Port is an output port: three strict-priority queues (control/header,
// low-latency data, bulk) feeding a transmitter, connected by a
// fixed-latency link to a destination resolved at transmit time (static for
// packet networks, matching-dependent for rotor uplinks).
type Port struct {
	eng  *eventsim.Engine
	cfg  *Config
	name string

	// resolve returns the node at the far side of the link at transmit
	// time. For static links this is constant; for a rotor-switch uplink it
	// follows the installed matching.
	resolve func(eventsim.Time) Node
	prop    eventsim.Time

	ctrl pktFIFO // control + trimmed headers (highest priority)
	ll   pktFIFO // low-latency data
	bulk pktFIFO // bulk data (lowest priority)

	ctrlBytes, llBytes, bulkBytes int

	busy    bool
	enabled bool

	// onBulkDrop is invoked for bulk packets dropped by overflow, gating,
	// or reconfiguration flush; typically wired to the RotorLB NACK path
	// (§4.2.2). If nil the packet is counted and released.
	onBulkDrop func(*Packet)

	Stats PortStats
}

// NewPort builds a port owned by eng with a static destination.
func NewPort(eng *eventsim.Engine, cfg *Config, name string, dst Node) *Port {
	return NewDynamicPort(eng, cfg, name, func(eventsim.Time) Node { return dst })
}

// NewDynamicPort builds a port whose destination is resolved per packet at
// transmit-completion time (rotor circuit semantics).
func NewDynamicPort(eng *eventsim.Engine, cfg *Config, name string, resolve func(eventsim.Time) Node) *Port {
	return &Port{
		eng:     eng,
		cfg:     cfg,
		name:    name,
		resolve: resolve,
		prop:    cfg.PropDelay,
		enabled: true,
	}
}

// Name returns the diagnostic name of the port.
func (pt *Port) Name() string { return pt.name }

// SetBulkDropHandler wires the bulk-drop NACK path.
func (pt *Port) SetBulkDropHandler(fn func(*Packet)) { pt.onBulkDrop = fn }

// QueuedBytes returns the bytes currently queued in the given class queue.
func (pt *Port) QueuedBytes(c Class) int {
	switch c {
	case ClassControl:
		return pt.ctrlBytes
	case ClassLowLatency:
		return pt.llBytes
	default:
		return pt.bulkBytes
	}
}

// Enabled reports whether the transmitter is running.
func (pt *Port) Enabled() bool { return pt.enabled }

// Enqueue admits a packet to the appropriate queue, applying NDP trimming
// and bulk drop policy, and kicks the transmitter.
func (pt *Port) Enqueue(p *Packet) {
	p.EnqueuedAt = pt.eng.Now()
	switch {
	case p.IsControl():
		if pt.ctrlBytes+int(p.Size) > pt.cfg.HeaderQueueBytes {
			pt.Stats.HdrDrops++
			p.Release()
			return
		}
		pt.ctrl.push(p)
		pt.ctrlBytes += int(p.Size)
	case p.Kind == KindBulk:
		if pt.bulkBytes+int(p.Size) > pt.cfg.BulkQueueBytes {
			pt.dropBulk(p)
			return
		}
		pt.bulk.push(p)
		pt.bulkBytes += int(p.Size)
	default: // NDP data
		if p.Class == ClassBulk {
			// Bulk-class NDP data (static networks' large flows): rides the
			// bulk queue but is trimmed, not dropped, on overflow.
			if pt.bulkBytes+int(p.Size) > pt.cfg.BulkQueueBytes {
				pt.trim(p)
				return
			}
			pt.bulk.push(p)
			pt.bulkBytes += int(p.Size)
		} else {
			if pt.llBytes+int(p.Size) > pt.cfg.DataQueueBytes {
				pt.trim(p)
				return
			}
			pt.ll.push(p)
			pt.llBytes += int(p.Size)
		}
	}
	pt.maybeTransmit()
}

// trim converts a data packet to a header and re-admits it at control
// priority (NDP packet trimming).
func (pt *Port) trim(p *Packet) {
	pt.Stats.Trims++
	p.Trimmed = true
	p.Size = int32(pt.cfg.HeaderBytes)
	if pt.ctrlBytes+int(p.Size) > pt.cfg.HeaderQueueBytes {
		pt.Stats.HdrDrops++
		p.Release()
		return
	}
	pt.ctrl.push(p)
	pt.ctrlBytes += int(p.Size)
}

func (pt *Port) dropBulk(p *Packet) {
	pt.Stats.BulkDrop++
	if pt.onBulkDrop != nil {
		pt.onBulkDrop(p)
		return
	}
	p.Release()
}

// SetEnabled gates the transmitter (rotor reconfiguration blackout). While
// disabled, arrivals still queue. Re-enabling kicks the transmitter.
func (pt *Port) SetEnabled(on bool) {
	pt.enabled = on
	if on {
		pt.maybeTransmit()
	}
}

// FlushForReconfig empties the port for a circuit change: bulk packets take
// the drop/NACK path (they were admitted against a circuit that no longer
// exists, §4.2.2); control and low-latency packets are handed to requeue
// for re-routing under the new configuration (stale-packet recovery).
func (pt *Port) FlushForReconfig(requeue func(*Packet)) {
	pt.bulk.drain(func(p *Packet) {
		pt.bulkBytes -= int(p.Size)
		pt.dropBulk(p)
	})
	pt.ctrl.drain(func(p *Packet) {
		pt.ctrlBytes -= int(p.Size)
		pt.Stats.Stale++
		requeue(p)
	})
	pt.ll.drain(func(p *Packet) {
		pt.llBytes -= int(p.Size)
		pt.Stats.Stale++
		requeue(p)
	})
}

// DropAll empties the port with failed-cable semantics: queued bulk
// packets take the drop/NACK path, control and low-latency packets are
// simply lost (their transports recover through retransmission). It
// returns how many control/low-latency packets were lost. A transmission
// already in progress still delivers — the cable fails behind it.
func (pt *Port) DropAll() (lost uint64) {
	pt.bulk.drain(func(p *Packet) {
		pt.bulkBytes -= int(p.Size)
		pt.dropBulk(p)
	})
	pt.ctrl.drain(func(p *Packet) {
		pt.ctrlBytes -= int(p.Size)
		lost++
		p.Release()
	})
	pt.ll.drain(func(p *Packet) {
		pt.llBytes -= int(p.Size)
		lost++
		p.Release()
	})
	return lost
}

// pick dequeues the next packet by strict priority.
func (pt *Port) pick() *Packet {
	if p := pt.ctrl.pop(); p != nil {
		pt.ctrlBytes -= int(p.Size)
		return p
	}
	if p := pt.ll.pop(); p != nil {
		pt.llBytes -= int(p.Size)
		return p
	}
	if p := pt.bulk.pop(); p != nil {
		pt.bulkBytes -= int(p.Size)
		return p
	}
	return nil
}

func (pt *Port) maybeTransmit() {
	if pt.busy || !pt.enabled {
		return
	}
	p := pt.pick()
	if p == nil {
		return
	}
	pt.busy = true
	txDone := pt.cfg.SerializationDelay(int(p.Size))
	pt.eng.After(txDone, func() {
		pt.Stats.Tx[p.Class].Add(int(p.Size))
		dst := pt.resolve(pt.eng.Now())
		if dst != nil {
			prop := pt.prop
			pkt := p
			pt.eng.After(prop, func() { dst.Receive(pkt, pt) })
		} else {
			// Link dark (no peer): the photons are lost.
			if p.Kind == KindBulk {
				pt.dropBulk(p)
			} else {
				p.Release()
			}
		}
		pt.busy = false
		pt.maybeTransmit()
	})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
