package sim

import "github.com/opera-net/opera/internal/telemetry"

// RetentionPolicy selects how Metrics treats completed flows.
//
// RetainAll (the zero value, and the default) keeps every *Flow so exact
// percentiles, CDFs and raw-flow scans work — the right trade for figure
// reproduction, where results must be byte-exact, but memory then grows
// with total flow count.
//
// RetainSketch streams instead of retaining: each completed flow's
// statistics are absorbed into mergeable quantile sketches (per service
// class and per workload tag) and trailing-window counters, and the flow
// is then released — Metrics drops it, and registered release hooks let
// other owners (the cluster's flow registry, NDP endpoint state) drop
// theirs. Steady-state memory becomes O(active flows + sketch) no matter
// how long the run, which is what makes month-long soaks flat-memory.
// Quantiles carry the sketch's pinned relative-error bound (Opts.Alpha,
// default 1%); counts, means, min/max, throughput and bandwidth tax stay
// exact.
type RetentionPolicy struct {
	streaming bool
	opts      telemetry.Opts
}

// RetainAll returns the default exact retention policy.
func RetainAll() RetentionPolicy { return RetentionPolicy{} }

// RetainSketch returns the streaming retention policy with the given
// sketch options (zero-valued fields take defaults).
func RetainSketch(opts telemetry.Opts) RetentionPolicy {
	return RetentionPolicy{streaming: true, opts: opts}
}

// Streaming reports whether the policy releases flows into sketches.
func (r RetentionPolicy) Streaming() bool { return r.streaming }

// Validate reports whether the policy is usable: RetainAll always is;
// RetainSketch requires sketch options that pass telemetry validation
// (alpha bounds, positive window geometry). Cluster construction calls
// this so a bad bound is a clear error at opera.New rather than NaN
// quantiles downstream.
func (r RetentionPolicy) Validate() error {
	if !r.streaming {
		return nil
	}
	return r.opts.Validate()
}

// SketchOpts returns the sketch configuration (meaningful when Streaming).
func (r RetentionPolicy) SketchOpts() telemetry.Opts { return r.opts }

// SetRetention installs the retention policy. It must be called before the
// first flow is registered — switching policies mid-run would split the
// statistics — and panics otherwise. Under RetainSketch the exact
// DeliveredBytes series is replaced by the collector's trailing window
// (the unbounded per-bin series is exactly what streaming retention
// exists to avoid); use DeliveredTotal, which works under both policies.
func (m *Metrics) SetRetention(r RetentionPolicy) {
	if m.total != 0 {
		panic("sim: SetRetention after flows were registered")
	}
	if !r.streaming {
		m.tel = nil
		return
	}
	m.tel = telemetry.NewCollector(r.opts, int(numClasses))
	m.DeliveredBytes = nil
}

// Streaming reports whether the metrics release completed flows into
// sketches (RetainSketch) rather than retaining them (RetainAll).
func (m *Metrics) Streaming() bool { return m.tel != nil }

// Telemetry returns the streaming collector, or nil under RetainAll.
// Consumers (the scenario runner's Result assembly) read quantile
// summaries and trailing windows from it when no raw flows are retained.
func (m *Metrics) Telemetry() *telemetry.Collector { return m.tel }

// ReleaseHook registers fn to run each time streaming retention releases a
// completed flow — immediately after its statistics are absorbed into the
// sketches, still inside FlowDone. Owners of per-flow state keyed by flow
// ID (the cluster registry) use it to drop their references so long soaks
// stay flat-memory. Hooks never fire under RetainAll.
func (m *Metrics) ReleaseHook(fn func(*Flow)) {
	m.release = append(m.release, fn)
}
