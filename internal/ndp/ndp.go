// Package ndp implements the NDP transport protocol [24] at the level of
// detail the Opera evaluation depends on (§4.2.1): senders blast an initial
// window with zero-RTT start, switches trim overflowing data packets to
// headers that travel at control priority, receivers NACK trimmed packets
// (triggering retransmission) and clock the sender with paced PULLs so that
// aggregate arrival rate converges to the receiver's line rate, and a
// safety retransmission timer recovers from the rare loss of control
// packets. Opera uses NDP for all low-latency traffic; the static baselines
// (folded Clos, expander) use it for all traffic.
package ndp

import (
	"fmt"

	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/freelist"
	"github.com/opera-net/opera/internal/sim"
)

// Params tunes the protocol.
type Params struct {
	// InitialWindow is the number of packets sent unsolicited at flow
	// start (≈ one bandwidth-delay product; 8 × 1500 B at 10 Gb/s covers
	// ~9.6 µs of RTT).
	InitialWindow int
	// RTO is the safety retransmission timeout.
	RTO eventsim.Time
}

// DefaultParams returns the evaluation defaults.
func DefaultParams() Params {
	return Params{InitialWindow: 8, RTO: 1 * eventsim.Millisecond}
}

// Endpoint is the per-host NDP engine: sender state for outgoing flows,
// receiver state and the PULL pacer for incoming flows.
type Endpoint struct {
	host    *sim.Host
	params  Params
	metrics *sim.Metrics

	sendFlows map[int64]*sendFlow
	recvFlows map[int64]*recvFlow

	// PULL pacing: one pull per MTU serialization time, round-robin across
	// flows with credits. paceH is the pre-bound pacer tick
	// (eventsim.Handler), so per-pull scheduling allocates nothing. The
	// credit queue is consumed via pullHead (not by re-slicing) so its
	// backing array's capacity is reused instead of leaking one slot per
	// pull.
	pullCredits []int64 // flow IDs, one entry per credit
	pullHead    int
	pacing      bool
	paceH       pacerTick

	// registry maps flow IDs to flows so receivers can size their state on
	// first contact (shared across the cluster's endpoints).
	registry map[int64]*sim.Flow

	// Fallback handler for packets that are not NDP's (e.g. RotorLB bulk
	// sharing the host).
	next func(*sim.Packet)

	// pools is the fabric-wide flow-state free list, shared by every
	// endpoint of one Attach call (they all run on the cluster's single
	// engine goroutine).
	pools *flowPools
}

// flowPools recycles sendFlow/recvFlow structs — and, through them, their
// ACK/got bitmaps and rtx slices — across flows. Under streaming retention
// (RetainSketch) completed flows release their state immediately, so
// without pooling a flow-churn-heavy soak allocates and frees one of each
// per flow forever; with pooling the steady state is allocation-free.
// Under RetainAll nothing is ever released, so the pools stay empty and
// behavior is unchanged.
type flowPools struct {
	send freelist.Pool[sendFlow]
	recv freelist.Pool[recvFlow]
}

// resetBits returns a zeroed bitmap of the given word count, reusing b's
// backing array when it is large enough.
func resetBits(b []uint64, words int32) []uint64 {
	if cap(b) < int(words) {
		return make([]uint64, words)
	}
	b = b[:words]
	for i := range b {
		b[i] = 0
	}
	return b
}

// Attach installs NDP endpoints on every host, chaining to any existing
// handler for non-NDP packets. registry is the cluster's flow table, which
// receivers consult to size their state on first contact. It returns one
// endpoint per host, indexed by host ID.
func Attach(hosts []*sim.Host, metrics *sim.Metrics, params Params, registry map[int64]*sim.Flow) []*Endpoint {
	eps := make([]*Endpoint, len(hosts))
	pools := &flowPools{}
	for i, h := range hosts {
		ep := &Endpoint{
			host:      h,
			params:    params,
			metrics:   metrics,
			sendFlows: make(map[int64]*sendFlow),
			recvFlows: make(map[int64]*recvFlow),
			registry:  registry,
			next:      h.Handler,
			pools:     pools,
		}
		ep.paceH.ep = ep
		h.Handler = ep.handle
		eps[i] = ep
	}
	return eps
}

// Host returns the endpoint's host.
func (ep *Endpoint) Host() *sim.Host { return ep.host }

// sendFlow is pooled sender state: flows draw it from the fabric's free
// list and, under streaming retention, return it on completion. ep is
// rebound at acquisition; the embedded rto Timer dispatches to the
// sendFlow itself (it implements eventsim.Handler), so a recycled flow
// needs no per-flow closure or Timer allocation.
type sendFlow struct {
	ep      *Endpoint
	f       *sim.Flow
	total   int32 // packets
	nextNew int32
	rtx     []int32 // NACKed sequence numbers awaiting retransmission
	acked   []uint64
	nAcked  int32
	rto     eventsim.Timer
	done    bool
}

// OnEvent implements eventsim.Handler: the flow's RTO fired.
func (sf *sendFlow) OnEvent(any) { sf.ep.onRTO(sf) }

type recvFlow struct {
	f     *sim.Flow
	total int32
	got   []uint64
	nGot  int32
}

// StartFlow begins sending flow f from this endpoint's host. The flow must
// originate here.
func (ep *Endpoint) StartFlow(f *sim.Flow) {
	if f.SrcHost != ep.host.ID {
		panic(fmt.Sprintf("ndp: flow %d starts at host %d, not %d", f.ID, f.SrcHost, ep.host.ID))
	}
	mtu := int64(ep.host.Config().MTU)
	total := int32((f.Size + mtu - 1) / mtu)
	if total == 0 {
		total = 1
	}
	sf := ep.pools.send.Get()
	if sf == nil {
		sf = &sendFlow{}
	}
	*sf = sendFlow{
		ep:    ep,
		f:     f,
		total: total,
		rtx:   sf.rtx[:0],
		acked: resetBits(sf.acked, (total+63)/64),
	}
	sf.rto.BindCall(ep.host.Engine(), sf, nil)
	ep.sendFlows[f.ID] = sf
	f.Start = ep.host.Engine().Now()

	iw := int32(ep.params.InitialWindow)
	if iw > total {
		iw = total
	}
	for i := int32(0); i < iw; i++ {
		ep.sendData(sf, sf.nextNew)
		sf.nextNew++
	}
	sf.rto.Arm(ep.params.RTO)
}

// sendData emits one data packet of the flow.
func (ep *Endpoint) sendData(sf *sendFlow, seq int32) {
	cfg := ep.host.Config()
	f := sf.f
	mtu := int64(cfg.MTU)
	size := mtu
	if rem := f.Size - int64(seq)*mtu; rem < size {
		size = rem
	}
	if size <= 0 {
		size = 1
	}
	p := sim.NewPacket()
	p.Kind = sim.KindData
	p.Class = f.Class
	p.SrcHost, p.DstHost = f.SrcHost, f.DstHost
	p.SrcRack, p.DstRack = f.SrcRack, f.DstRack
	p.Size = int32(size)
	p.PayloadSize = int32(size)
	p.FlowID = f.ID
	p.Seq = seq
	ep.host.Send(p)
}

// handle demultiplexes a delivered packet.
func (ep *Endpoint) handle(p *sim.Packet) {
	switch p.Kind {
	case sim.KindData:
		ep.onData(p)
	case sim.KindAck:
		ep.onAck(p)
	case sim.KindNack:
		ep.onNack(p)
	case sim.KindPull:
		ep.onPull(p)
	default:
		if ep.next != nil {
			ep.next(p)
			return
		}
		p.Release()
	}
}

// recvState finds or creates receiver state, consulting the cluster flow
// registry on first contact.
func (ep *Endpoint) recvState(p *sim.Packet) *recvFlow {
	rf := ep.recvFlows[p.FlowID]
	if rf == nil {
		f := ep.registry[p.FlowID]
		if f == nil {
			return nil
		}
		mtu := int64(ep.host.Config().MTU)
		total := int32((f.Size + mtu - 1) / mtu)
		if total == 0 {
			total = 1
		}
		rf = ep.pools.recv.Get()
		if rf == nil {
			rf = &recvFlow{}
		}
		*rf = recvFlow{f: f, total: total, got: resetBits(rf.got, (total+63)/64)}
		ep.recvFlows[p.FlowID] = rf
	}
	return rf
}

// releaseSend returns completed sender state to the fabric pool. The RTO is
// stopped (idempotently) before the struct can back another flow: a live
// timer would otherwise fire into the wrong flow's state.
func (ep *Endpoint) releaseSend(sf *sendFlow) {
	sf.rto.Stop()
	sf.f = nil
	ep.pools.send.Put(sf)
}

func (ep *Endpoint) releaseRecv(rf *recvFlow) {
	rf.f = nil
	ep.pools.recv.Put(rf)
}

// onData handles arrival of a data packet (full or trimmed) at the
// receiver.
func (ep *Endpoint) onData(p *sim.Packet) {
	rf := ep.recvState(p)
	if rf == nil {
		// Under streaming retention a completed flow's state (registry
		// entry, receiver bitmap) has been released; a straggler
		// retransmission of an already-delivered packet still needs its
		// ACK — addressed from the packet's own header — or the sender's
		// RTO would retransmit forever. Under RetainAll the registry is
		// never pruned, so unknown flows are genuinely bogus and dropped.
		if ep.metrics.Streaming() && !p.Trimmed {
			ep.sendCtrlTo(sim.KindAck, p.FlowID, p.DstHost, p.DstRack, p.SrcHost, p.SrcRack, p.Seq, 0)
		}
		p.Release()
		return
	}
	if p.Trimmed {
		// Header survived; payload was cut: NACK for retransmission.
		ep.sendCtrl(sim.KindNack, rf.f, p.Seq, 0)
		if !rf.complete() {
			ep.addPullCredit(rf.f.ID)
		}
		p.Release()
		return
	}
	first := !rf.has(p.Seq)
	if first {
		rf.mark(p.Seq)
		ep.metrics.RecordDelivery(rf.f, int(p.PayloadSize), int(p.Hops), ep.host.Engine().Now())
		if rf.complete() {
			ep.metrics.FlowDone(rf.f, ep.host.Engine().Now())
		}
	}
	ep.sendCtrl(sim.KindAck, rf.f, p.Seq, 0)
	if !rf.complete() {
		ep.addPullCredit(rf.f.ID)
	} else if ep.metrics.Streaming() {
		// Streaming retention: the flow's statistics were absorbed at
		// FlowDone above, so drop the receiver state (bitmap, flow ref) —
		// the per-flow memory that would otherwise accumulate forever —
		// and recycle it through the fabric pool.
		delete(ep.recvFlows, p.FlowID)
		ep.releaseRecv(rf)
	}
	p.Release()
}

func (ep *Endpoint) onAck(p *sim.Packet) {
	sf := ep.sendFlows[p.FlowID]
	if sf != nil && !sf.done {
		idx, bit := p.Seq/64, uint(p.Seq%64)
		if sf.acked[idx]&(1<<bit) == 0 {
			sf.acked[idx] |= 1 << bit
			sf.nAcked++
		}
		if sf.nAcked == sf.total {
			sf.done = true
			sf.rto.Stop()
			if ep.metrics.Streaming() {
				// Fully acknowledged and timer stopped: nothing can need
				// this sender state again, so release it (streaming
				// retention keeps per-flow memory O(active flows)) and
				// recycle it through the fabric pool.
				delete(ep.sendFlows, p.FlowID)
				ep.releaseSend(sf)
			}
		} else {
			sf.rto.Arm(ep.params.RTO)
		}
	}
	p.Release()
}

func (ep *Endpoint) onNack(p *sim.Packet) {
	sf := ep.sendFlows[p.FlowID]
	if sf != nil && !sf.done {
		sf.rtx = append(sf.rtx, p.Seq)
		sf.f.Retransmits++
		sf.rto.Arm(ep.params.RTO)
	}
	p.Release()
}

func (ep *Endpoint) onPull(p *sim.Packet) {
	sf := ep.sendFlows[p.FlowID]
	if sf != nil && !sf.done {
		switch {
		case len(sf.rtx) > 0:
			seq := sf.rtx[0]
			sf.rtx = sf.rtx[1:]
			ep.sendData(sf, seq)
		case sf.nextNew < sf.total:
			ep.sendData(sf, sf.nextNew)
			sf.nextNew++
		}
	}
	p.Release()
}

// onRTO resends the lowest unacked packet — the safety net for lost
// control packets (header-queue overflow).
func (ep *Endpoint) onRTO(sf *sendFlow) {
	if sf.done {
		return
	}
	for seq := int32(0); seq < sf.total; seq++ {
		if sf.acked[seq/64]&(1<<uint(seq%64)) == 0 {
			ep.sendData(sf, seq)
			sf.f.Retransmits++
			break
		}
	}
	sf.rto.Arm(ep.params.RTO)
}

// sendCtrl emits a control packet (ACK/NACK/PULL) back to the flow's
// sender.
func (ep *Endpoint) sendCtrl(kind sim.Kind, f *sim.Flow, seq int32, pullNo int32) {
	ep.sendCtrlTo(kind, f.ID, f.DstHost, f.DstRack, f.SrcHost, f.SrcRack, seq, pullNo)
}

// sendCtrlTo is sendCtrl with explicit addressing — the form the
// streaming-retention straggler ACK uses once the flow record is gone.
func (ep *Endpoint) sendCtrlTo(kind sim.Kind, flowID int64, srcHost, srcRack, dstHost, dstRack, seq, pullNo int32) {
	p := sim.NewPacket()
	p.Kind = kind
	p.Class = sim.ClassControl
	p.SrcHost, p.DstHost = srcHost, dstHost
	p.SrcRack, p.DstRack = srcRack, dstRack
	p.Size = int32(ep.host.Config().HeaderBytes)
	p.FlowID = flowID
	p.Seq = seq
	p.PullNo = pullNo
	ep.host.Send(p)
}

// addPullCredit enqueues one pull credit for the flow and kicks the pacer.
func (ep *Endpoint) addPullCredit(flowID int64) {
	if len(ep.pullCredits) == cap(ep.pullCredits) && ep.pullHead > 0 {
		// Reclaim the consumed prefix instead of growing.
		n := copy(ep.pullCredits, ep.pullCredits[ep.pullHead:])
		ep.pullCredits = ep.pullCredits[:n]
		ep.pullHead = 0
	}
	ep.pullCredits = append(ep.pullCredits, flowID)
	ep.pace()
}

// pace emits pulls one MTU-time apart while credits remain.
func (ep *Endpoint) pace() {
	if ep.pacing || ep.pullHead == len(ep.pullCredits) {
		return
	}
	ep.pacing = true
	cfg := ep.host.Config()
	spacing := cfg.SerializationDelay(cfg.MTU)
	// ContinueCall: a pacer tick that re-arms itself (or a delivery that
	// granted the first credit) hands its just-fired event straight to the
	// next tick.
	ep.host.Engine().ContinueCall(spacing, &ep.paceH, nil)
}

// pacerTick is the endpoint's pre-bound pacer callback: issue the next pull
// and reschedule while credits remain.
type pacerTick struct{ ep *Endpoint }

func (h *pacerTick) OnEvent(any) {
	ep := h.ep
	ep.pacing = false
	if ep.pullHead == len(ep.pullCredits) {
		return
	}
	id := ep.pullCredits[ep.pullHead]
	ep.pullHead++
	if ep.pullHead == len(ep.pullCredits) {
		ep.pullCredits = ep.pullCredits[:0]
		ep.pullHead = 0
	}
	if rf := ep.recvFlows[id]; rf != nil && !rf.complete() {
		ep.sendCtrl(sim.KindPull, rf.f, 0, 0)
	}
	ep.pace()
}

func (rf *recvFlow) has(seq int32) bool {
	return rf.got[seq/64]&(1<<uint(seq%64)) != 0
}

func (rf *recvFlow) mark(seq int32) {
	rf.got[seq/64] |= 1 << uint(seq%64)
	rf.nGot++
}

func (rf *recvFlow) complete() bool { return rf.nGot == rf.total }
