package ndp

import (
	"testing"

	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/sim"
)

// miniSwitch is a single-output bottleneck: every packet goes out one port
// toward its destination host. It models an output-queued switch port so
// NDP's trimming and incast behaviour can be tested in isolation.
type miniSwitch struct {
	ports map[int32]*sim.Port // per destination host
}

func (s *miniSwitch) Receive(p *sim.Packet, _ *sim.Port) {
	pt := s.ports[p.DstHost]
	if pt == nil {
		p.Release()
		return
	}
	pt.Enqueue(p)
}

// rig builds n hosts all attached to one switch with per-host output
// ports, NDP everywhere.
type rig struct {
	eng      *eventsim.Engine
	cfg      sim.Config
	hosts    []*sim.Host
	sw       *miniSwitch
	metrics  *sim.Metrics
	eps      []*Endpoint
	registry map[int64]*sim.Flow
}

func newRig(t *testing.T, n int, cfg sim.Config) *rig {
	t.Helper()
	r := &rig{
		eng:      eventsim.New(),
		cfg:      cfg,
		metrics:  sim.NewMetrics(),
		registry: make(map[int64]*sim.Flow),
	}
	r.sw = &miniSwitch{ports: make(map[int32]*sim.Port)}
	for i := 0; i < n; i++ {
		h := sim.NewHost(r.eng, &r.cfg, int32(i), 0)
		h.SetNIC(sim.NewPort(r.eng, &r.cfg, "up", r.sw))
		r.sw.ports[int32(i)] = sim.NewPort(r.eng, &r.cfg, "down", h)
		r.hosts = append(r.hosts, h)
	}
	r.eps = Attach(r.hosts, r.metrics, DefaultParams(), r.registry)
	return r
}

func (r *rig) flow(id int64, src, dst int, size int64) *sim.Flow {
	f := &sim.Flow{ID: id, SrcHost: int32(src), DstHost: int32(dst), Size: size,
		Class: sim.ClassLowLatency}
	r.registry[id] = f
	r.metrics.AddFlow(f)
	return f
}

func TestSingleFlowCompletes(t *testing.T) {
	r := newRig(t, 2, sim.DefaultConfig())
	f := r.flow(1, 0, 1, 15000) // 10 packets
	r.eps[0].StartFlow(f)
	r.eng.RunUntil(10 * eventsim.Millisecond)
	if !f.Done {
		t.Fatalf("flow incomplete: %d/%d", f.BytesRcvd, f.Size)
	}
	// 10 packets over 2 serializations: ≥ 10 × 1.2 µs; the pull-paced tail
	// adds a little. Must be well under 100 µs on an idle path.
	if fct := f.FCT(); fct < 12*eventsim.Microsecond || fct > 100*eventsim.Microsecond {
		t.Fatalf("FCT = %v", fct)
	}
	if f.Retransmits != 0 {
		t.Fatalf("retransmits on clean path: %d", f.Retransmits)
	}
}

func TestTinyFlowSinglePacket(t *testing.T) {
	r := newRig(t, 2, sim.DefaultConfig())
	f := r.flow(1, 0, 1, 64)
	r.eps[0].StartFlow(f)
	r.eng.RunUntil(1 * eventsim.Millisecond)
	if !f.Done {
		t.Fatal("single-packet flow incomplete")
	}
}

func TestIncastTrimsAndCompletes(t *testing.T) {
	// 8 senders blast one receiver: initial windows overflow the 12 KB
	// data queue, headers survive, NACKs trigger retransmits, PULL pacing
	// drains everything at line rate.
	r := newRig(t, 9, sim.DefaultConfig())
	var flows []*sim.Flow
	for i := 1; i <= 8; i++ {
		f := r.flow(int64(i), i, 0, 45000) // 30 packets each
		flows = append(flows, f)
	}
	for i, f := range flows {
		_ = i
		r.eps[f.SrcHost].StartFlow(f)
	}
	r.eng.RunUntil(50 * eventsim.Millisecond)
	var retrans int
	for _, f := range flows {
		if !f.Done {
			t.Fatalf("incast flow %d incomplete (%d/%d)", f.ID, f.BytesRcvd, f.Size)
		}
		retrans += f.Retransmits
	}
	if retrans == 0 {
		t.Fatal("incast should have trimmed and retransmitted")
	}
	// Total 240 packets ≈ 360 KB at 10 Gb/s ≈ 288 µs minimum through the
	// single downlink; completion should be within a small factor.
	for _, f := range flows {
		if f.FCT() > 2*eventsim.Millisecond {
			t.Fatalf("flow %d FCT %v too slow", f.ID, f.FCT())
		}
	}
}

func TestHeaderLossRecoveredByRTO(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.DataQueueBytes = 3000  // trims quickly
	cfg.HeaderQueueBytes = 128 // and drops most headers
	r := newRig(t, 3, cfg)
	f1 := r.flow(1, 1, 0, 30000)
	f2 := r.flow(2, 2, 0, 30000)
	r.eps[1].StartFlow(f1)
	r.eps[2].StartFlow(f2)
	r.eng.RunUntil(100 * eventsim.Millisecond)
	if !f1.Done || !f2.Done {
		t.Fatalf("flows incomplete despite RTO: %v/%v", f1.Done, f2.Done)
	}
}

func TestReceiverCompletionTimeIsUsed(t *testing.T) {
	r := newRig(t, 2, sim.DefaultConfig())
	f := r.flow(1, 0, 1, 1500)
	r.eps[0].StartFlow(f)
	r.eng.RunUntil(1 * eventsim.Millisecond)
	// End must be after Start by at least two serializations + two props.
	min := 2*r.cfg.SerializationDelay(1500) + 2*r.cfg.PropDelay
	if f.End-f.Start < min {
		t.Fatalf("FCT %v below physical minimum %v", f.End-f.Start, min)
	}
}

func TestStartFlowWrongHostPanics(t *testing.T) {
	r := newRig(t, 2, sim.DefaultConfig())
	f := r.flow(1, 0, 1, 1500)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for wrong-host StartFlow")
		}
	}()
	r.eps[1].StartFlow(f)
}

func TestBulkClassFlowOverNDP(t *testing.T) {
	// Static networks carry bulk-class flows over NDP: they ride the bulk
	// queue but must still complete via trimming.
	r := newRig(t, 2, sim.DefaultConfig())
	f := r.flow(1, 0, 1, 150000)
	f.Class = sim.ClassBulk
	r.eps[0].StartFlow(f)
	r.eng.RunUntil(10 * eventsim.Millisecond)
	if !f.Done {
		t.Fatal("bulk-class NDP flow incomplete")
	}
}
