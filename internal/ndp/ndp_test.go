package ndp

import (
	"testing"

	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/sim"
	"github.com/opera-net/opera/internal/telemetry"
)

// miniSwitch is a single-output bottleneck: every packet goes out one port
// toward its destination host. It models an output-queued switch port so
// NDP's trimming and incast behaviour can be tested in isolation.
type miniSwitch struct {
	ports map[int32]*sim.Port // per destination host
}

func (s *miniSwitch) Receive(p *sim.Packet, _ *sim.Port) {
	pt := s.ports[p.DstHost]
	if pt == nil {
		p.Release()
		return
	}
	pt.Enqueue(p)
}

// rig builds n hosts all attached to one switch with per-host output
// ports, NDP everywhere.
type rig struct {
	eng      *eventsim.Engine
	cfg      sim.Config
	hosts    []*sim.Host
	sw       *miniSwitch
	metrics  *sim.Metrics
	eps      []*Endpoint
	registry map[int64]*sim.Flow
}

func newRig(t *testing.T, n int, cfg sim.Config) *rig {
	t.Helper()
	r := &rig{
		eng:      eventsim.New(),
		cfg:      cfg,
		metrics:  sim.NewMetrics(),
		registry: make(map[int64]*sim.Flow),
	}
	r.sw = &miniSwitch{ports: make(map[int32]*sim.Port)}
	for i := 0; i < n; i++ {
		h := sim.NewHost(r.eng, &r.cfg, int32(i), 0)
		h.SetNIC(sim.NewPort(r.eng, &r.cfg, "up", r.sw))
		r.sw.ports[int32(i)] = sim.NewPort(r.eng, &r.cfg, "down", h)
		r.hosts = append(r.hosts, h)
	}
	r.eps = Attach(r.hosts, r.metrics, DefaultParams(), r.registry)
	return r
}

func (r *rig) flow(id int64, src, dst int, size int64) *sim.Flow {
	f := &sim.Flow{ID: id, SrcHost: int32(src), DstHost: int32(dst), Size: size,
		Class: sim.ClassLowLatency}
	r.registry[id] = f
	r.metrics.AddFlow(f)
	return f
}

func TestSingleFlowCompletes(t *testing.T) {
	r := newRig(t, 2, sim.DefaultConfig())
	f := r.flow(1, 0, 1, 15000) // 10 packets
	r.eps[0].StartFlow(f)
	r.eng.RunUntil(10 * eventsim.Millisecond)
	if !f.Done {
		t.Fatalf("flow incomplete: %d/%d", f.BytesRcvd, f.Size)
	}
	// 10 packets over 2 serializations: ≥ 10 × 1.2 µs; the pull-paced tail
	// adds a little. Must be well under 100 µs on an idle path.
	if fct := f.FCT(); fct < 12*eventsim.Microsecond || fct > 100*eventsim.Microsecond {
		t.Fatalf("FCT = %v", fct)
	}
	if f.Retransmits != 0 {
		t.Fatalf("retransmits on clean path: %d", f.Retransmits)
	}
}

func TestTinyFlowSinglePacket(t *testing.T) {
	r := newRig(t, 2, sim.DefaultConfig())
	f := r.flow(1, 0, 1, 64)
	r.eps[0].StartFlow(f)
	r.eng.RunUntil(1 * eventsim.Millisecond)
	if !f.Done {
		t.Fatal("single-packet flow incomplete")
	}
}

func TestIncastTrimsAndCompletes(t *testing.T) {
	// 8 senders blast one receiver: initial windows overflow the 12 KB
	// data queue, headers survive, NACKs trigger retransmits, PULL pacing
	// drains everything at line rate.
	r := newRig(t, 9, sim.DefaultConfig())
	var flows []*sim.Flow
	for i := 1; i <= 8; i++ {
		f := r.flow(int64(i), i, 0, 45000) // 30 packets each
		flows = append(flows, f)
	}
	for i, f := range flows {
		_ = i
		r.eps[f.SrcHost].StartFlow(f)
	}
	r.eng.RunUntil(50 * eventsim.Millisecond)
	var retrans int
	for _, f := range flows {
		if !f.Done {
			t.Fatalf("incast flow %d incomplete (%d/%d)", f.ID, f.BytesRcvd, f.Size)
		}
		retrans += f.Retransmits
	}
	if retrans == 0 {
		t.Fatal("incast should have trimmed and retransmitted")
	}
	// Total 240 packets ≈ 360 KB at 10 Gb/s ≈ 288 µs minimum through the
	// single downlink; completion should be within a small factor.
	for _, f := range flows {
		if f.FCT() > 2*eventsim.Millisecond {
			t.Fatalf("flow %d FCT %v too slow", f.ID, f.FCT())
		}
	}
}

func TestHeaderLossRecoveredByRTO(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.DataQueueBytes = 3000  // trims quickly
	cfg.HeaderQueueBytes = 128 // and drops most headers
	r := newRig(t, 3, cfg)
	f1 := r.flow(1, 1, 0, 30000)
	f2 := r.flow(2, 2, 0, 30000)
	r.eps[1].StartFlow(f1)
	r.eps[2].StartFlow(f2)
	r.eng.RunUntil(100 * eventsim.Millisecond)
	if !f1.Done || !f2.Done {
		t.Fatalf("flows incomplete despite RTO: %v/%v", f1.Done, f2.Done)
	}
}

func TestReceiverCompletionTimeIsUsed(t *testing.T) {
	r := newRig(t, 2, sim.DefaultConfig())
	f := r.flow(1, 0, 1, 1500)
	r.eps[0].StartFlow(f)
	r.eng.RunUntil(1 * eventsim.Millisecond)
	// End must be after Start by at least two serializations + two props.
	min := 2*r.cfg.SerializationDelay(1500) + 2*r.cfg.PropDelay
	if f.End-f.Start < min {
		t.Fatalf("FCT %v below physical minimum %v", f.End-f.Start, min)
	}
}

func TestStartFlowWrongHostPanics(t *testing.T) {
	r := newRig(t, 2, sim.DefaultConfig())
	f := r.flow(1, 0, 1, 1500)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for wrong-host StartFlow")
		}
	}()
	r.eps[1].StartFlow(f)
}

func TestBulkClassFlowOverNDP(t *testing.T) {
	// Static networks carry bulk-class flows over NDP: they ride the bulk
	// queue but must still complete via trimming.
	r := newRig(t, 2, sim.DefaultConfig())
	f := r.flow(1, 0, 1, 150000)
	f.Class = sim.ClassBulk
	r.eps[0].StartFlow(f)
	r.eng.RunUntil(10 * eventsim.Millisecond)
	if !f.Done {
		t.Fatal("bulk-class NDP flow incomplete")
	}
}

// streamingRig is newRig under RetainSketch with the registry release hook
// the cluster installs: completed flows drop their registry entry, so
// NDP's straggler re-ACK path (recvState == nil) becomes reachable.
func streamingRig(t *testing.T, n int, cfg sim.Config) *rig {
	t.Helper()
	r := newRig(t, n, cfg)
	r.metrics.SetRetention(sim.RetainSketch(telemetry.Opts{}))
	r.metrics.ReleaseHook(func(f *sim.Flow) { delete(r.registry, f.ID) })
	return r
}

// TestAllocsFlowChurn is the flow-state pooling gate (CI fast lane runs it
// via -run 'TestAllocs'): one NDP flow setup/teardown round trip under
// streaming retention must cost at most 2 allocations — the *sim.Flow
// itself plus slack — because sendFlow, recvFlow, both bitmaps, the RTO
// timer and every event come from pools.
func TestAllocsFlowChurn(t *testing.T) {
	r := streamingRig(t, 2, sim.DefaultConfig())
	id := int64(0)
	// One full revolution of the engine's timing wheel (1024 buckets of
	// 1024 ns). Rounds are aligned to it so each round maps onto the same
	// wheel buckets at the same phase; otherwise phase drift between
	// rounds keeps discovering new per-bucket high-water marks and the
	// wheel's (amortized, bounded) capacity warmup never settles within
	// the measurement window. The gate targets flow-state pooling, not
	// bucket warmup.
	const wheelPeriod = eventsim.Time(1) << 20
	round := func() {
		id++
		f := r.flow(id, 0, 1, 6000) // 4 packets: inside the initial window
		r.eps[0].StartFlow(f)
		r.eng.Run()
		if !f.Done {
			t.Fatalf("flow %d incomplete", id)
		}
		r.eng.RunUntil((r.eng.Now()/wheelPeriod + 1) * wheelPeriod)
	}
	// Warm the pools, map buckets, telemetry bins and wheel buckets.
	for i := 0; i < 64; i++ {
		round()
	}
	avg := testing.AllocsPerRun(100, round)
	if avg > 2 {
		t.Fatalf("flow churn allocates %.1f/round-trip, want <= 2", avg)
	}
}

// A released recvFlow recycled into a different flow must serve that flow
// correctly, and a straggler data packet of the released flow must still
// get its re-ACK (from the packet's own header) without touching the
// recycled state.
func TestStragglerReACKWithPooledRecvFlow(t *testing.T) {
	r := streamingRig(t, 2, sim.DefaultConfig())
	fA := r.flow(1, 0, 1, 6000)
	r.eps[0].StartFlow(fA)
	r.eng.Run()
	if !fA.Done {
		t.Fatal("flow A incomplete")
	}
	ep1 := r.eps[1]
	if len(ep1.recvFlows) != 0 || r.registry[1] != nil {
		t.Fatal("streaming retention did not release flow A's receiver state")
	}
	// The released recvFlow is in the pool; flow B must draw it back out.
	pooled := ep1.pools.recv.Get()
	if pooled == nil {
		t.Fatal("flow A's recvFlow was not pooled")
	}
	ep1.pools.recv.Put(pooled)

	fB := r.flow(2, 0, 1, 30000) // 20 packets: still in flight below
	r.eps[0].StartFlow(fB)
	r.eng.RunUntil(r.eng.Now() + 5*eventsim.Microsecond)
	if got := ep1.recvFlows[2]; got != pooled {
		t.Fatalf("flow B's recvFlow = %p, want the pooled object %p", got, pooled)
	}

	// Straggler: a duplicate data packet of released flow A arrives while B
	// is in flight. The receiver must re-ACK it from header state alone.
	p := sim.NewPacket()
	p.Kind = sim.KindData
	p.Class = sim.ClassLowLatency
	p.SrcHost, p.DstHost = 0, 1
	p.Size, p.PayloadSize = 1500, 1500
	p.FlowID = 1
	p.Seq = 2
	ep1.handle(p)
	r.eng.Run()
	if !fB.Done || fB.BytesRcvd != fB.Size {
		t.Fatalf("flow B corrupted by straggler: done=%v rcvd=%d/%d", fB.Done, fB.BytesRcvd, fB.Size)
	}
	if len(ep1.recvFlows) != 0 {
		t.Fatal("flow B's state not released after completion")
	}
}

// A sender that lost every ACK of an already-delivered flow (receiver state
// released and possibly recycled) must converge through the streaming
// re-ACK path: each retransmitted packet is ACKed from its header, and the
// sender's state reaches done and returns to the pool.
func TestStragglerRetransmitConvergesAfterRelease(t *testing.T) {
	r := streamingRig(t, 2, sim.DefaultConfig())
	fA := r.flow(1, 0, 1, 6000)
	r.eps[0].StartFlow(fA)
	r.eng.Run()
	if !fA.Done {
		t.Fatal("flow A incomplete")
	}
	ep0 := r.eps[0]
	if len(ep0.sendFlows) != 0 {
		t.Fatal("sender state not released after full ACK")
	}
	// The sender restarts the whole flow, as if no ACK had ever arrived.
	// The receiver no longer knows the flow (registry pruned) and must
	// re-ACK every packet from headers; the sender must converge to done.
	r.eps[0].StartFlow(fA)
	if len(ep0.sendFlows) != 1 {
		t.Fatal("restart did not create sender state")
	}
	r.eng.RunUntil(r.eng.Now() + 50*eventsim.Millisecond)
	if len(ep0.sendFlows) != 0 {
		t.Fatal("sender did not converge via straggler re-ACKs")
	}
	if ep0.pools.send.Len() == 0 {
		t.Fatal("converged sender state did not return to the pool")
	}
}
