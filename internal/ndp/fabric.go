package ndp

import "github.com/opera-net/opera/internal/sim"

// Fabric bundles a cluster's per-host NDP endpoints behind the single
// flow-admission surface of sim.Transport: a started flow is handed to the
// endpoint of its source host.
type Fabric struct {
	eps []*Endpoint
}

var _ sim.Transport = (*Fabric)(nil)

// AttachFabric installs NDP on every host (see Attach) and returns the
// endpoints wrapped as a Transport.
func AttachFabric(hosts []*sim.Host, metrics *sim.Metrics, params Params, registry map[int64]*sim.Flow) *Fabric {
	return &Fabric{eps: Attach(hosts, metrics, params, registry)}
}

// StartFlow implements sim.Transport.
func (fb *Fabric) StartFlow(f *sim.Flow) { fb.eps[f.SrcHost].StartFlow(f) }

// Endpoint returns the per-host engine of the given host.
func (fb *Fabric) Endpoint(host int) *Endpoint { return fb.eps[host] }

// Endpoints returns all endpoints, indexed by host ID.
func (fb *Fabric) Endpoints() []*Endpoint { return fb.eps }
