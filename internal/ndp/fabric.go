package ndp

import "github.com/opera-net/opera/internal/sim"

// Fabric bundles a cluster's per-host NDP endpoints behind the single
// flow-admission surface of sim.Transport: a started flow is handed to the
// endpoint of its source host.
type Fabric struct {
	eps []*Endpoint
}

var _ sim.Transport = (*Fabric)(nil)

// AttachFabric installs NDP on every host (see Attach) and returns the
// endpoints wrapped as a Transport.
func AttachFabric(hosts []*sim.Host, metrics *sim.Metrics, params Params, registry map[int64]*sim.Flow) *Fabric {
	return &Fabric{eps: Attach(hosts, metrics, params, registry)}
}

// StartFlow implements sim.Transport.
func (fb *Fabric) StartFlow(f *sim.Flow) { fb.eps[f.SrcHost].StartFlow(f) }

// Endpoint returns the per-host engine of the given host.
func (fb *Fabric) Endpoint(host int) *Endpoint { return fb.eps[host] }

// Endpoints returns all endpoints, indexed by host ID.
func (fb *Fabric) Endpoints() []*Endpoint { return fb.eps }

// PoolGauges reports the fabric-wide flow-state free lists: sendFlow and
// recvFlow objects parked between flows. Under streaming retention these
// grow to the active-flow high-water mark and then hold steady — the
// observability plane charts them to confirm a soak really is
// allocation-flat. Both are zero under RetainAll (nothing is released).
type PoolGauges struct {
	SendFree int
	RecvFree int
}

// PoolStats reads the shared free-list sizes. Like every fabric method it
// is only safe from the engine goroutine.
func (fb *Fabric) PoolStats() PoolGauges {
	if len(fb.eps) == 0 {
		return PoolGauges{}
	}
	p := fb.eps[0].pools
	return PoolGauges{SendFree: p.send.Len(), RecvFree: p.recv.Len()}
}
