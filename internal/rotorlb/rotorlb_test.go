package rotorlb

import (
	"testing"

	"github.com/opera-net/opera/internal/sim"
)

func seg(host int32, bytes int64) segment {
	return segment{f: &sim.Flow{ID: 1}, host: host, bytes: bytes}
}

func TestSegQueueCarve(t *testing.T) {
	var q segQueue
	q.push(seg(1, 4000))
	q.push(seg(2, 1000))
	if q.bytes != 5000 {
		t.Fatalf("bytes = %d", q.bytes)
	}
	c, ok := q.carve(1500)
	if !ok || c.bytes != 1500 || c.host != 1 {
		t.Fatalf("carve = %+v ok=%v", c, ok)
	}
	c, _ = q.carve(3000)
	if c.bytes != 2500 || c.host != 1 {
		t.Fatalf("second carve should drain the head segment: %+v", c)
	}
	c, _ = q.carve(1 << 40)
	if c.bytes != 1000 || c.host != 2 {
		t.Fatalf("third carve = %+v", c)
	}
	if _, ok := q.carve(1); ok {
		t.Fatal("carve from empty queue succeeded")
	}
	if q.bytes != 0 {
		t.Fatalf("residual bytes %d", q.bytes)
	}
}

func TestSegQueuePushFront(t *testing.T) {
	var q segQueue
	q.push(seg(1, 1000))
	q.pushFront(seg(9, 500)) // NACK requeue goes to the head
	c, _ := q.carve(1 << 40)
	if c.host != 9 || c.bytes != 500 {
		t.Fatalf("head = %+v, want the requeued segment", c)
	}
}

func TestSegQueuePeekHost(t *testing.T) {
	var q segQueue
	if _, ok := q.peekHost(); ok {
		t.Fatal("peek on empty queue")
	}
	q.push(segment{f: &sim.Flow{}, host: 3, bytes: 0}) // exhausted segment
	q.push(seg(7, 100))
	h, ok := q.peekHost()
	if !ok || h != 7 {
		t.Fatalf("peekHost = %d ok=%v, want 7 (skipping empty head)", h, ok)
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.RelayBufferBytes <= 0 || p.StartMargin <= 0 {
		t.Fatalf("params = %+v", p)
	}
}
