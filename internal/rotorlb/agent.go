package rotorlb

import (
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/sim"
)

// rackAgent coordinates the bulk traffic of one rack: it owns the rack's
// virtual output queues, negotiates VLB offers with peer racks, and paces
// polled host transmissions into each circuit's window (§3.5: "end hosts
// transmit when polled by their attached ToR").
type rackAgent struct {
	lb   *LB
	rack int

	voq   []segQueue // own traffic, by final destination rack
	relay []segQueue // stored VLB traffic, by final destination rack

	relayTotal int64

	// nicFree models when each local host's NIC drains its granted bulk,
	// so concurrent circuit sessions do not over-commit one host's uplink
	// (the ToR "polls" only hosts that can actually transmit, §3.5).
	nicFree map[int32]eventsim.Time

	// vlbBudget caps, per slice, how many VLB bytes may be carved from
	// each host — a host can physically transmit only one window's worth,
	// so offering more would strand carved bytes until the window closes.
	vlbBudget map[int32]int64

	// SentDirect/SentRelay/SentVLB count bytes launched per path type.
	SentDirect, SentRelay, SentVLB uint64
}

func newRackAgent(lb *LB, rack int) *rackAgent {
	n := lb.net.NumRacks()
	return &rackAgent{
		lb:      lb,
		rack:    rack,
		voq:     make([]segQueue, n),
		relay:   make([]segQueue, n),
		nicFree: make(map[int32]eventsim.Time),
	}
}

// hostReady reports whether host h's NIC backlog is shallow enough to grant
// another packet without risking queue overflow.
func (a *rackAgent) hostReady(h int32, now, txTime eventsim.Time) bool {
	return a.nicFree[h] <= now+4*txTime
}

// grantTo accounts one packet of granted NIC time at host h.
func (a *rackAgent) grantTo(h int32, now, txTime eventsim.Time) {
	t := a.nicFree[h]
	if t < now {
		t = now
	}
	a.nicFree[h] = t + txTime
}

// QueuedFor returns (own, relayed) bytes queued toward dst.
func (a *rackAgent) QueuedFor(dst int) (own, relayed int64) {
	return a.voq[dst].bytes, a.relay[dst].bytes
}

// openSessions starts one paced transmission session per active circuit at
// a slice boundary, after the offer/accept exchange for VLB admission.
func (a *rackAgent) openSessions(abs int64) {
	net := a.lb.net
	circuits := net.ActiveCircuits(abs, a.rack)
	now := net.Engine().Now()
	sliceBytes := int64(net.Config().BytesIn(net.SliceDuration()))
	a.vlbBudget = make(map[int32]int64, net.HostsPerRack())
	lo := a.rack * net.HostsPerRack()
	for i := 0; i < net.HostsPerRack(); i++ {
		a.vlbBudget[int32(lo+i)] = sliceBytes
	}
	for _, c := range circuits {
		c := c
		windowBytes := int64(net.Config().BytesIn(c.WindowEnd - c.WindowStart))
		// VLB offer/accept (§3.4, RotorLB phase 3): if this circuit's
		// direct demand leaves spare capacity and other queues are skewed,
		// ask the peer to relay. The exchange is modelled as in-band
		// control at slice start with negligible size.
		var vlbQ segQueue
		if !a.lb.params.DisableVLB {
			spare := windowBytes - a.relay[c.Peer].bytes - a.voq[c.Peer].bytes
			if spare > int64(net.Config().MTU) {
				a.negotiateVLB(c.Peer, spare, &vlbQ)
			}
		}
		sess := &session{
			agent:    a,
			circuit:  c,
			deadline: now + c.WindowEnd,
			vlbQ:     vlbQ,
		}
		startAt := c.WindowStart + a.lb.params.StartMargin
		net.Engine().AfterCall(startAt, sess, nil)
	}
}

// negotiateVLB proposes two-hop traffic to the peer rack and moves accepted
// bytes into the session's VLB queue.
func (a *rackAgent) negotiateVLB(peer int, spare int64, vlbQ *segQueue) {
	peerAgent := a.lb.agents[peer]
	net := a.lb.net
	for dst := range a.voq {
		if spare <= 0 {
			return
		}
		if dst == peer || dst == a.rack {
			continue
		}
		q := &a.voq[dst]
		threshold := a.lb.params.VLBThresholdBytes
		if !net.DirectReachable(a.rack, dst) {
			// Failures severed this pair's direct matching: no direct
			// window will ever drain the queue, so offload all of it
			// (§3.6.2 rerouting) — provided the relay can deliver.
			threshold = 0
		}
		if q.bytes <= threshold {
			continue // not skewed enough to pay the 2-hop tax
		}
		if !net.DirectReachable(peer, dst) {
			continue // the relay itself could never deliver: decline
		}
		// Offer the excess over what the direct circuit will drain.
		offer := q.bytes - threshold
		if offer > spare {
			offer = spare
		}
		granted := peerAgent.acceptVLB(offer)
		for granted > 0 {
			h, nonEmpty := q.peekHost()
			if !nonEmpty {
				break
			}
			budget := a.vlbBudget[h]
			if budget <= 0 {
				break // this host cannot physically send more this slice
			}
			limit := granted
			if budget < limit {
				limit = budget
			}
			seg, ok := q.carve(limit)
			if !ok {
				break
			}
			vlbQ.push(seg)
			a.vlbBudget[h] -= seg.bytes
			granted -= seg.bytes
			spare -= seg.bytes
		}
	}
}

// acceptVLB grants relay admission bounded by this rack's relay buffer.
func (a *rackAgent) acceptVLB(offer int64) int64 {
	space := a.lb.params.RelayBufferBytes - a.relayTotal
	if space <= 0 {
		return 0
	}
	if offer > space {
		offer = space
	}
	return offer
}

// sendLocal transmits a rack-local bulk flow straight through the ToR,
// self-paced at the NIC rate. The pacer is one localSender allocated per
// local flow; its per-packet rescheduling uses the pooled closure-free
// engine path.
func (a *rackAgent) sendLocal(f *sim.Flow) {
	(&localSender{a: a, f: f}).OnEvent(nil)
}

// localSender paces one rack-local flow, one MTU per serialization time.
type localSender struct {
	a    *rackAgent
	f    *sim.Flow
	sent int64
}

// OnEvent implements eventsim.Handler: emit the next chunk and reschedule.
func (s *localSender) OnEvent(any) {
	if s.sent >= s.f.Size {
		return
	}
	net := s.a.lb.net
	cfg := net.Config()
	n := int64(cfg.MTU)
	if s.f.Size-s.sent < n {
		n = s.f.Size - s.sent
	}
	p := s.a.newBulkPacket(segment{f: s.f, host: s.f.SrcHost, bytes: n}, -1)
	net.Hosts()[s.f.SrcHost].Send(p)
	s.sent += n
	// ContinueCall: the pump rides its own just-fired event to the next chunk.
	net.Engine().ContinueCall(cfg.SerializationDelay(int(n)), s, nil)
}

// session paces one circuit's transmissions across its window. It is its
// own eventsim.Handler, so the one-event-per-packet pump loop schedules
// without closures.
type session struct {
	agent    *rackAgent
	circuit  sim.Circuit
	deadline eventsim.Time
	vlbQ     segQueue
}

// OnEvent implements eventsim.Handler.
func (s *session) OnEvent(any) { s.pump() }

// pump emits one MTU-sized bulk packet per MTU serialization time until
// the window closes or all eligible queues drain. Service order follows
// RotorLB: stored relay traffic, then own direct, then admitted VLB.
func (s *session) pump() {
	a := s.agent
	net := a.lb.net
	cfg := net.Config()
	now := net.Engine().Now()
	txTime := cfg.SerializationDelay(cfg.MTU)
	// Stop early enough for the packet to clear the host NIC (which
	// hostReady lets run up to ~4 packets deep), serialize at the ToR and
	// propagate before the blackout.
	if now+7*txTime+2*cfg.PropDelay > s.deadline {
		s.close()
		return
	}
	mtu := int64(cfg.MTU)
	var seg segment
	var ok bool
	relayLeg := false
	vlb := false
	blocked := false
	ready := func(h int32) bool { return a.hostReady(h, now, txTime) }
	// Service order: stored relay, own direct, admitted VLB — carving from
	// the first segment whose host can transmit (the ToR polls whichever
	// host has data for this circuit, §3.5).
	if seg, ok = a.relay[s.circuit.Peer].carveReady(mtu, ready); ok {
		relayLeg = true
		a.relayTotal -= seg.bytes
	} else if !a.relay[s.circuit.Peer].empty() {
		blocked = true
	}
	if !ok {
		if seg, ok = a.voq[s.circuit.Peer].carveReady(mtu, ready); !ok && !a.voq[s.circuit.Peer].empty() {
			blocked = true
		}
	}
	if !ok {
		if seg, ok = s.vlbQ.carveReady(mtu, ready); ok {
			vlb = true
		} else if !s.vlbQ.empty() {
			blocked = true
		}
	}
	if !ok {
		// Nothing grantable right now. If a queue was merely blocked on
		// busy NICs, retry soon; otherwise poll for new arrivals.
		wait := 10 * txTime
		if blocked {
			wait = txTime
		}
		net.Engine().ContinueCall(wait, s, nil)
		return
	}
	a.grantTo(seg.host, now, txTime)

	relayRack := int32(-1)
	if vlb {
		relayRack = int32(s.circuit.Peer)
	}
	p := a.newBulkPacket(seg, relayRack)
	switch {
	case relayLeg:
		a.SentRelay += uint64(seg.bytes)
	case vlb:
		a.SentVLB += uint64(seg.bytes)
	default:
		a.SentDirect += uint64(seg.bytes)
	}
	// Poll the owning host: it enqueues on its NIC now; priority queueing
	// there lets low-latency traffic jump ahead (§4.2).
	net.Hosts()[seg.host].Send(p)
	// ContinueCall: per-packet pump rescheduling reuses the firing event
	// (or the pooled path when the host's NIC claimed it first).
	net.Engine().ContinueCall(txTime, s, nil)
}

// close returns any admitted-but-unsent VLB bytes to their origin queues;
// they never left their hosts, so they simply wait for a later circuit.
func (s *session) close() {
	a := s.agent
	for {
		seg, ok := s.vlbQ.carve(1 << 62)
		if !ok {
			return
		}
		seg.hops = 0
		a.voq[seg.f.DstRack].pushFront(seg)
	}
}

// newBulkPacket materializes a segment chunk as a wire packet.
func (a *rackAgent) newBulkPacket(seg segment, relayRack int32) *sim.Packet {
	p := sim.NewPacket()
	p.Kind = sim.KindBulk
	p.Class = sim.ClassBulk
	p.SrcHost = seg.host
	p.SrcRack = int32(a.rack)
	p.DstHost = seg.f.DstHost
	p.DstRack = seg.f.DstRack
	p.Size = int32(seg.bytes)
	p.PayloadSize = int32(seg.bytes)
	p.FlowID = seg.f.ID
	p.RelayRack = relayRack
	p.Hops = seg.hops
	return p
}
