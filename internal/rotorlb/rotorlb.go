// Package rotorlb implements the RotorLB bulk transport from RotorNet [34]
// as extended by Opera (§4.2.2): end hosts buffer bulk traffic in
// per-destination-rack virtual output queues and transmit — when polled in
// sync with the circuit schedule — over direct one-hop circuits, falling
// back to two-hop Valiant load balancing when traffic is skewed and spare
// circuit capacity exists elsewhere. Opera's contribution, the NACK
// mechanism for bulk packets stranded at a ToR when its circuit
// reconfigures, is implemented via the simulator's port-flush path feeding
// KindBulkNack packets back to senders, which requeue the bytes.
//
// Service order within a circuit's transmission window follows RotorNet's
// RotorLB: (1) stored non-local (relayed) traffic, (2) local direct
// traffic, (3) freshly admitted two-hop traffic negotiated by an
// offer/accept exchange at slice start.
package rotorlb

import (
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/sim"
)

// Params tunes RotorLB.
type Params struct {
	// RelayBufferBytes caps the relayed (VLB) bytes a rack will store.
	RelayBufferBytes int64
	// VLBThresholdBytes: a destination queue longer than this is eligible
	// for two-hop offloading (it exceeds what one direct window carries,
	// i.e. the traffic is skewed relative to the direct-circuit capacity).
	// Zero derives one slice window's worth.
	VLBThresholdBytes int64
	// DisableVLB turns two-hop offloading off (for ablations).
	DisableVLB bool
	// StartMargin delays the first transmission after a slice boundary to
	// cover host-to-ToR latency (grant propagation).
	StartMargin eventsim.Time
}

// DefaultParams returns evaluation defaults.
func DefaultParams() Params {
	return Params{
		RelayBufferBytes: 8 << 20,
		StartMargin:      2 * eventsim.Microsecond,
	}
}

// segment is a run of contiguous flow bytes awaiting transmission, resident
// at a specific host (the flow's origin, or the storage host for relayed
// bytes).
type segment struct {
	f     *sim.Flow
	host  int32 // host holding the bytes
	bytes int64
	hops  int8 // ToR-to-ToR hops already incurred (VLB first leg)
}

// segQueue is a FIFO of segments with byte accounting.
type segQueue struct {
	segs  []segment
	bytes int64
}

func (q *segQueue) push(s segment) {
	q.segs = append(q.segs, s)
	q.bytes += s.bytes
}

func (q *segQueue) pushFront(s segment) {
	q.segs = append([]segment{s}, q.segs...)
	q.bytes += s.bytes
}

// peekHost returns the host holding the queue's head bytes.
func (q *segQueue) peekHost() (int32, bool) {
	for len(q.segs) > 0 && q.segs[0].bytes == 0 {
		q.segs = q.segs[1:]
	}
	if len(q.segs) == 0 {
		return -1, false
	}
	return q.segs[0].host, true
}

// carve removes up to maxBytes from the queue head, returning the chunk.
func (q *segQueue) carve(maxBytes int64) (segment, bool) {
	return q.carveReady(maxBytes, nil)
}

// carveReady removes up to maxBytes from the first segment whose host
// satisfies ready (nil = any). Skipping busy hosts models the ToR polling
// whichever host has transmittable data for this circuit (§3.5) — without
// it, concurrent sessions head-of-line block on each other's hosts while
// other NICs idle. The scan is bounded to keep service near-FIFO.
func (q *segQueue) carveReady(maxBytes int64, ready func(host int32) bool) (segment, bool) {
	const scanLimit = 16
	scanned := 0
	for i := 0; i < len(q.segs); i++ {
		seg := &q.segs[i]
		if seg.bytes == 0 {
			continue
		}
		if ready != nil && !ready(seg.host) {
			if scanned++; scanned >= scanLimit {
				return segment{}, false
			}
			continue
		}
		n := seg.bytes
		if n > maxBytes {
			n = maxBytes
		}
		out := segment{f: seg.f, host: seg.host, bytes: n, hops: seg.hops}
		seg.bytes -= n
		q.bytes -= n
		if seg.bytes == 0 {
			q.segs = append(q.segs[:i], q.segs[i+1:]...)
		}
		return out, true
	}
	return segment{}, false
}

func (q *segQueue) empty() bool { return q.bytes == 0 }

// LB is the cluster-wide RotorLB instance: one rack agent per ToR plus the
// shared flow registry.
type LB struct {
	net      sim.CircuitNetwork
	params   Params
	registry map[int64]*sim.Flow
	agents   []*rackAgent

	// NACKs counts requeue events observed by senders.
	NACKs uint64
}

// LB admits bulk flows directly: it is the cluster-wide Transport for the
// bulk service class on circuit fabrics.
var _ sim.Transport = (*LB)(nil)

// Attach installs RotorLB on the network: host handlers for bulk delivery
// and NACKs, and a slice listener that opens transmission sessions. Call
// before installing NDP (NDP chains unknown packets back here).
func Attach(net sim.CircuitNetwork, params Params, registry map[int64]*sim.Flow) *LB {
	lb := &LB{net: net, params: params, registry: registry}
	if lb.params.VLBThresholdBytes == 0 {
		// One cycle's worth of direct drainage for a rack pair: a shorter
		// queue will clear on its own circuits, so indirecting it would
		// pay a 100% tax for nothing.
		w := net.Config().BytesIn(net.SliceDuration())
		lb.params.VLBThresholdBytes = int64(w) * int64(net.PairWindowsPerCycle())
	}
	n := net.NumRacks()
	lb.agents = make([]*rackAgent, n)
	for r := 0; r < n; r++ {
		lb.agents[r] = newRackAgent(lb, r)
	}
	for _, h := range net.Hosts() {
		h := h
		prev := h.Handler
		h.Handler = func(p *sim.Packet) {
			switch p.Kind {
			case sim.KindBulk:
				lb.onBulk(h, p)
			case sim.KindBulkNack:
				lb.onNack(h, p)
			default:
				if prev != nil {
					prev(p)
					return
				}
				p.Release()
			}
		}
		// A bulk packet squeezed out of the host's own NIC (low-latency
		// traffic monopolized the link) never left the host: requeue the
		// bytes locally instead of losing them.
		h.NIC().SetBulkDropHandler(func(p *sim.Packet) { lb.requeueLocal(h, p) })
	}
	net.OnSlice(lb.onSlice)
	return lb
}

// requeueLocal returns a bulk packet that never left its host to the
// appropriate queue.
func (lb *LB) requeueLocal(h *sim.Host, p *sim.Packet) {
	f := lb.registry[p.FlowID]
	if f == nil {
		p.Release()
		return
	}
	a := lb.agents[h.Rack]
	seg := segment{f: f, host: h.ID, bytes: int64(p.PayloadSize), hops: p.Hops}
	switch {
	case p.RelayRack >= 0:
		seg.hops = 0
		a.voq[p.DstRack].pushFront(seg)
	case f.SrcHost == h.ID:
		a.voq[p.DstRack].pushFront(seg)
	default:
		a.relay[p.DstRack].pushFront(seg)
		a.relayTotal += seg.bytes
	}
	p.Release()
}

// Agent returns the rack agent (exported for tests and metrics).
func (lb *LB) Agent(rack int) *rackAgent { return lb.agents[rack] }

// StartFlow admits a bulk flow at its source host's rack agent.
func (lb *LB) StartFlow(f *sim.Flow) {
	f.Start = lb.net.Engine().Now()
	a := lb.agents[f.SrcRack]
	if f.DstRack == f.SrcRack {
		a.sendLocal(f)
		return
	}
	a.voq[f.DstRack].push(segment{f: f, host: f.SrcHost, bytes: f.Size})
}

// QueuedBytes returns the bulk backlog (own + relayed) across all racks.
func (lb *LB) QueuedBytes() int64 {
	var total int64
	for _, a := range lb.agents {
		for r := range a.voq {
			total += a.voq[r].bytes + a.relay[r].bytes
		}
	}
	return total
}

// StrandedBytes returns VLB bytes parked at relay racks that cannot
// currently reach the bytes' final destination over any direct circuit.
// This surfaces a known model gap under failures: RotorLB never
// re-offloads stored relay traffic to a third rack (§4.2.2 covers only
// first-leg offload), so when a relay's second leg dies the bytes wait
// at the relay until the destination becomes directly reachable again.
// Zero in a fault-free fabric, where every rack cycles through direct
// circuits to every other rack.
func (lb *LB) StrandedBytes() int64 {
	var total int64
	for rack, a := range lb.agents {
		for dst := range a.relay {
			if a.relay[dst].bytes > 0 && !lb.net.DirectReachable(rack, dst) {
				total += a.relay[dst].bytes
			}
		}
	}
	return total
}

func (lb *LB) onSlice(abs int64) {
	for _, a := range lb.agents {
		a.openSessions(abs)
	}
}

// onBulk handles a bulk packet delivered to a host: final delivery or VLB
// storage.
func (lb *LB) onBulk(h *sim.Host, p *sim.Packet) {
	f := lb.registry[p.FlowID]
	if f == nil {
		p.Release()
		return
	}
	if p.DstRack == h.Rack && p.DstHost == h.ID {
		m := lb.net.Metrics()
		m.RecordDelivery(f, int(p.PayloadSize), int(p.Hops), lb.net.Engine().Now())
		if f.BytesRcvd >= f.Size {
			m.FlowDone(f, lb.net.Engine().Now())
		}
		p.Release()
		return
	}
	// VLB storage at the relay rack.
	a := lb.agents[h.Rack]
	a.relay[p.DstRack].push(segment{f: f, host: h.ID, bytes: int64(p.PayloadSize), hops: p.Hops})
	a.relayTotal += int64(p.PayloadSize)
	p.Release()
}

// onNack requeues bytes reported lost by a ToR (§4.2.2). The NACK arrives
// at the host that transmitted the failed packet.
func (lb *LB) onNack(h *sim.Host, p *sim.Packet) {
	f := lb.registry[p.FlowID]
	if f == nil {
		p.Release()
		return
	}
	lb.NACKs++
	f.Retransmits++
	a := lb.agents[h.Rack]
	finalDst := p.PullNo
	// OrigHops includes the uplink the packet was enqueued on but never
	// crossed; requeue with one hop less.
	hops := p.OrigHops - 1
	if hops < 0 {
		hops = 0
	}
	seg := segment{f: f, host: h.ID, bytes: int64(p.PayloadSize), hops: hops}
	switch {
	case p.RelayRack >= 0:
		// Failed VLB first leg: revert to the origin queue; the direct path
		// or a later offer will carry it.
		seg.hops = 0
		a.voq[finalDst].pushFront(seg)
	case f.SrcHost == h.ID:
		a.voq[finalDst].pushFront(seg)
	default:
		// Failed second leg from a storage host.
		a.relay[finalDst].pushFront(seg)
		a.relayTotal += seg.bytes
	}
	p.Release()
}
