package workload

import (
	"math/rand"

	"github.com/opera-net/opera/internal/eventsim"
)

// FlowSpec is one flow to inject: source and destination hosts, size, and
// arrival time, plus optional application metadata: a Tag carried
// end-to-end into per-tag result breakdowns, and a Bulk marker that
// application-tags the flow for bulk service regardless of its size
// (§3.4's application-based tagging).
type FlowSpec struct {
	Src, Dst int
	Bytes    int64
	Arrival  eventsim.Time

	// Tag labels the flow's workload component ("" = untagged).
	Tag string
	// Bulk forces bulk service for this flow regardless of size.
	Bulk bool
}

// Tagged returns a copy of the specs with every Tag set to tag. The
// input is left untouched — generators like scenario.Fixed hand out a
// shared slice, which concurrent scenarios may be reading.
func Tagged(tag string, specs []FlowSpec) []FlowSpec {
	out := append([]FlowSpec(nil), specs...)
	for i := range out {
		out[i].Tag = tag
	}
	return out
}

// Bulked returns a copy of the specs with every flow application-tagged
// as bulk; like Tagged, it never mutates its input.
func Bulked(specs []FlowSpec) []FlowSpec {
	out := append([]FlowSpec(nil), specs...)
	for i := range out {
		out[i].Bulk = true
	}
	return out
}

// PoissonConfig parameterizes an open-loop Poisson flow arrival process
// (§5.1): load is expressed relative to the aggregate bandwidth of all
// host links.
type PoissonConfig struct {
	NumHosts     int
	HostsPerRack int
	// Load is the offered load as a fraction of aggregate host bandwidth
	// (1.0 = every host driving its link at line rate).
	Load float64
	// LinkRateGbps is the host link rate.
	LinkRateGbps float64
	// Duration is the arrival window.
	Duration eventsim.Time
	// Dist draws flow sizes.
	Dist *FlowSizeDist
	// Seed drives arrivals, sizes and endpoint selection.
	Seed int64
	// AvoidRackLocal redraws destinations that land in the source's rack
	// (used when measuring inter-rack fabric behaviour).
	AvoidRackLocal bool
}

// Poisson generates flows with exponential inter-arrivals at the rate
// implied by the offered load and mean flow size, with uniform random
// source and destination hosts. It materializes the whole arrival window;
// long or high-load runs should use PoissonSource, which yields the same
// flows lazily.
func Poisson(cfg PoissonConfig) []FlowSpec {
	return Drain(PoissonSource(cfg))
}

// PoissonSource is the streaming form of Poisson: the same seeded arrival
// process, yielded one flow at a time so memory stays constant no matter
// how long the window is. At equal seeds it produces exactly the flow
// sequence Poisson materializes.
func PoissonSource(cfg PoissonConfig) Source {
	rng := rand.New(rand.NewSource(cfg.Seed))
	mean := cfg.Dist.Mean()
	// Aggregate offered bits/s = load × hosts × rate; flows/s = that / mean flow bits.
	bitsPerSec := cfg.Load * float64(cfg.NumHosts) * cfg.LinkRateGbps * 1e9
	flowsPerSec := bitsPerSec / (mean * 8)
	if flowsPerSec <= 0 {
		return SourceFunc(func() (FlowSpec, bool) { return FlowSpec{}, false })
	}
	meanGapNs := 1e9 / flowsPerSec

	t := eventsim.Time(0)
	done := false
	return SourceFunc(func() (FlowSpec, bool) {
		if done {
			return FlowSpec{}, false
		}
		gap := eventsim.Time(rng.ExpFloat64() * meanGapNs)
		t += gap
		if t >= cfg.Duration {
			done = true
			return FlowSpec{}, false
		}
		src := rng.Intn(cfg.NumHosts)
		dst := rng.Intn(cfg.NumHosts)
		for dst == src || (cfg.AvoidRackLocal && sameRack(src, dst, cfg.HostsPerRack)) {
			dst = rng.Intn(cfg.NumHosts)
		}
		return FlowSpec{
			Src:     src,
			Dst:     dst,
			Bytes:   cfg.Dist.Sample(rng),
			Arrival: t,
		}, true
	})
}

func sameRack(a, b, perRack int) bool { return a/perRack == b/perRack }

// Shuffle generates the §5.2 all-to-all shuffle: every host sends flowBytes
// to every other host (rack-local pairs included), all starting at time 0
// as RotorLB handles simultaneous starts gracefully; callers simulating
// static networks typically stagger arrivals over a few milliseconds to
// avoid their startup effects, which staggerOver provides.
func Shuffle(numHosts int, flowBytes int64, staggerOver eventsim.Time, seed int64) []FlowSpec {
	rng := rand.New(rand.NewSource(seed))
	var out []FlowSpec
	for src := 0; src < numHosts; src++ {
		for dst := 0; dst < numHosts; dst++ {
			if dst == src {
				continue
			}
			var at eventsim.Time
			if staggerOver > 0 {
				at = eventsim.Time(rng.Int63n(int64(staggerOver)))
			}
			out = append(out, FlowSpec{Src: src, Dst: dst, Bytes: flowBytes, Arrival: at})
		}
	}
	return out
}

// Permutation generates the §5.6 host permutation: each host sends to
// exactly one non-rack-local host (a fixed random derangement at rack
// granularity).
func Permutation(numHosts, hostsPerRack int, flowBytes int64, seed int64) []FlowSpec {
	rng := rand.New(rand.NewSource(seed))
	for attempt := 0; ; attempt++ {
		perm := rng.Perm(numHosts)
		ok := true
		for src, dst := range perm {
			if sameRack(src, dst, hostsPerRack) {
				ok = false
				break
			}
		}
		if !ok && attempt < 1000 {
			continue
		}
		out := make([]FlowSpec, 0, numHosts)
		for src, dst := range perm {
			out = append(out, FlowSpec{Src: src, Dst: dst, Bytes: flowBytes})
		}
		return out
	}
}

// HotRack generates the §5.6 hot-rack pattern: every host of rack 0 sends
// to its counterpart in rack 1, saturating one rack pair while the rest of
// the fabric idles.
func HotRack(hostsPerRack int, flowBytes int64) []FlowSpec {
	out := make([]FlowSpec, 0, hostsPerRack)
	for i := 0; i < hostsPerRack; i++ {
		out = append(out, FlowSpec{Src: i, Dst: hostsPerRack + i, Bytes: flowBytes})
	}
	return out
}

// Skew generates the skew[p,1] pattern of [29]/§5.6: a fraction p of racks
// are active and exchange all-to-all traffic at full load; the remainder
// are idle.
func Skew(numRacks, hostsPerRack int, activeFraction float64, flowBytes int64, seed int64) []FlowSpec {
	rng := rand.New(rand.NewSource(seed))
	nActive := int(activeFraction*float64(numRacks) + 0.5)
	if nActive < 2 {
		nActive = 2
	}
	racks := rng.Perm(numRacks)[:nActive]
	var out []FlowSpec
	for _, ra := range racks {
		for _, rb := range racks {
			if ra == rb {
				continue
			}
			for i := 0; i < hostsPerRack; i++ {
				out = append(out, FlowSpec{
					Src:   ra*hostsPerRack + i,
					Dst:   rb*hostsPerRack + i,
					Bytes: flowBytes,
				})
			}
		}
	}
	return out
}

// RackDemand aggregates a flow list into a rack-level demand matrix in
// bytes (row = source rack, column = destination rack), the input to the
// fluid throughput models.
func RackDemand(flows []FlowSpec, numRacks, hostsPerRack int) [][]float64 {
	m := make([][]float64, numRacks)
	for i := range m {
		m[i] = make([]float64, numRacks)
	}
	for _, f := range flows {
		a, b := f.Src/hostsPerRack, f.Dst/hostsPerRack
		if a != b {
			m[a][b] += float64(f.Bytes)
		}
	}
	return m
}
