// Package workload generates the traffic the Opera evaluation runs:
// empirical flow-size distributions (Figure 1), open-loop Poisson arrival
// processes (§5.1), and the synthetic patterns of §5.2–5.6 (all-to-all
// shuffle, hot rack, skew[p,1], host permutation).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// CDFAnchor is one point of an empirical flow-size CDF.
type CDFAnchor struct {
	Bytes float64
	F     float64 // cumulative fraction of flows with size <= Bytes
}

// FlowSizeDist is a piecewise log-linear empirical flow-size distribution.
// Sampling uses inverse-transform over the anchors with interpolation in
// log(size), the standard reconstruction of published trace CDFs.
type FlowSizeDist struct {
	Name    string
	anchors []CDFAnchor
}

// NewFlowSizeDist validates anchors (positive sizes, monotone in both
// coordinates, final F = 1) and returns the distribution.
func NewFlowSizeDist(name string, anchors []CDFAnchor) (*FlowSizeDist, error) {
	if len(anchors) < 2 {
		return nil, fmt.Errorf("workload: need >= 2 anchors, got %d", len(anchors))
	}
	for i, a := range anchors {
		if a.Bytes <= 0 {
			return nil, fmt.Errorf("workload: anchor %d: non-positive size %v", i, a.Bytes)
		}
		if a.F < 0 || a.F > 1 {
			return nil, fmt.Errorf("workload: anchor %d: F=%v out of range", i, a.F)
		}
		if i > 0 && (a.Bytes <= anchors[i-1].Bytes || a.F < anchors[i-1].F) {
			return nil, fmt.Errorf("workload: anchors not monotone at %d", i)
		}
	}
	if anchors[len(anchors)-1].F != 1 {
		return nil, fmt.Errorf("workload: last anchor F=%v, want 1", anchors[len(anchors)-1].F)
	}
	return &FlowSizeDist{Name: name, anchors: anchors}, nil
}

// MustNewFlowSizeDist is NewFlowSizeDist but panics on error.
func MustNewFlowSizeDist(name string, anchors []CDFAnchor) *FlowSizeDist {
	d, err := NewFlowSizeDist(name, anchors)
	if err != nil {
		panic(err)
	}
	return d
}

// Sample draws one flow size in bytes.
func (d *FlowSizeDist) Sample(rng *rand.Rand) int64 {
	return d.Quantile(rng.Float64())
}

// Quantile returns the flow size at cumulative probability p.
func (d *FlowSizeDist) Quantile(p float64) int64 {
	a := d.anchors
	if p <= a[0].F {
		return int64(a[0].Bytes)
	}
	i := sort.Search(len(a), func(i int) bool { return a[i].F >= p })
	if i >= len(a) {
		return int64(a[len(a)-1].Bytes)
	}
	lo, hi := a[i-1], a[i]
	if hi.F == lo.F {
		return int64(hi.Bytes)
	}
	t := (p - lo.F) / (hi.F - lo.F)
	logSize := math.Log(lo.Bytes) + t*(math.Log(hi.Bytes)-math.Log(lo.Bytes))
	return int64(math.Exp(logSize) + 0.5)
}

// CDF evaluates P(size <= x), interpolating in log-size.
func (d *FlowSizeDist) CDF(x float64) float64 {
	a := d.anchors
	if x <= a[0].Bytes {
		if x < a[0].Bytes {
			return 0
		}
		return a[0].F
	}
	if x >= a[len(a)-1].Bytes {
		return 1
	}
	i := sort.Search(len(a), func(i int) bool { return a[i].Bytes >= x })
	lo, hi := a[i-1], a[i]
	t := (math.Log(x) - math.Log(lo.Bytes)) / (math.Log(hi.Bytes) - math.Log(lo.Bytes))
	return lo.F + t*(hi.F-lo.F)
}

// Mean returns the expected flow size, integrated numerically over the
// quantile function (exact up to the 1e-4 quantile grid).
func (d *FlowSizeDist) Mean() float64 {
	const steps = 10000
	var sum float64
	for i := 0; i < steps; i++ {
		p := (float64(i) + 0.5) / steps
		sum += float64(d.Quantile(p))
	}
	return sum / steps
}

// ByteFractionBelow returns the fraction of total bytes carried by flows of
// size <= x — Figure 1's bottom panel, and the quantity that determines how
// much traffic Opera's 15 MB threshold routes over indirect paths.
func (d *FlowSizeDist) ByteFractionBelow(x float64) float64 {
	const steps = 10000
	var below, total float64
	for i := 0; i < steps; i++ {
		p := (float64(i) + 0.5) / steps
		s := float64(d.Quantile(p))
		total += s
		if s <= x {
			below += s
		}
	}
	if total == 0 {
		return 0
	}
	return below / total
}

// Anchors returns the distribution's anchor points.
func (d *FlowSizeDist) Anchors() []CDFAnchor { return d.anchors }

// The three published workloads of Figure 1. Anchor tables are digitized
// reconstructions of the published CDFs, matching the shapes the paper
// reports: Datamining [21] is extremely heavy-tailed (most bytes in >100 MB
// flows, so its bulk rides Opera's direct paths); Websearch [4] tops out
// near 30 MB (nearly all bytes below Opera's 15 MB threshold — the paper's
// all-indirect worst case); Hadoop [39] has a ~100 KB median inter-rack
// flow (the Figure 8 shuffle size).

// Datamining returns the Microsoft data-mining distribution (VL2 [21]).
func Datamining() *FlowSizeDist {
	return MustNewFlowSizeDist("datamining", []CDFAnchor{
		{100, 0},
		{180, 0.10},
		{250, 0.20},
		{560, 0.30},
		{900, 0.40},
		{1100, 0.50},
		{1870, 0.60},
		{3160, 0.70},
		{10_000, 0.80},
		{400_000, 0.90},
		{3.16e6, 0.95},
		{1e8, 0.98},
		{1e9, 1.0},
	})
}

// Websearch returns the Microsoft web-search distribution (DCTCP [4]).
func Websearch() *FlowSizeDist {
	return MustNewFlowSizeDist("websearch", []CDFAnchor{
		{1_000, 0},
		{10_000, 0.15},
		{20_000, 0.20},
		{30_000, 0.30},
		{50_000, 0.40},
		{80_000, 0.53},
		{200_000, 0.60},
		{1_000_000, 0.70},
		{2_000_000, 0.80},
		{5_000_000, 0.90},
		{10_000_000, 0.97},
		{30_000_000, 1.0},
	})
}

// Hadoop returns the Facebook Hadoop-cluster distribution [39].
func Hadoop() *FlowSizeDist {
	return MustNewFlowSizeDist("hadoop", []CDFAnchor{
		{100, 0},
		{1_000, 0.10},
		{10_000, 0.25},
		{50_000, 0.40},
		{100_000, 0.50},
		{300_000, 0.70},
		{1_000_000, 0.85},
		{10_000_000, 0.96},
		{100_000_000, 0.99},
		{1_000_000_000, 1.0},
	})
}

// Fixed returns a degenerate distribution (every flow the same size), used
// by the shuffle workloads.
func Fixed(bytes int64) *FlowSizeDist {
	return MustNewFlowSizeDist("fixed", []CDFAnchor{
		{float64(bytes) * (1 - 1e-9), 0},
		{float64(bytes), 1.0},
	})
}
