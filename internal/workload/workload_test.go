package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/opera-net/opera/internal/eventsim"
)

func TestDistributionsValid(t *testing.T) {
	for _, d := range []*FlowSizeDist{Datamining(), Websearch(), Hadoop(), Fixed(100_000)} {
		a := d.Anchors()
		if a[len(a)-1].F != 1 {
			t.Fatalf("%s: CDF does not reach 1", d.Name)
		}
	}
}

func TestNewFlowSizeDistRejects(t *testing.T) {
	bad := [][]CDFAnchor{
		{{100, 0}},               // too few
		{{100, 0}, {50, 1}},      // non-monotone sizes
		{{100, 0.5}, {200, 0.2}}, // non-monotone F
		{{-5, 0}, {200, 1}},      // negative size
		{{100, 0}, {200, 0.9}},   // doesn't reach 1
		{{100, 0}, {200, 1.5}},   // F out of range
	}
	for i, anchors := range bad {
		if _, err := NewFlowSizeDist("bad", anchors); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestQuantileCDFRoundTrip(t *testing.T) {
	for _, d := range []*FlowSizeDist{Datamining(), Websearch(), Hadoop()} {
		for _, p := range []float64{0.05, 0.25, 0.5, 0.75, 0.9, 0.99} {
			x := d.Quantile(p)
			back := d.CDF(float64(x))
			if math.Abs(back-p) > 0.02 {
				t.Errorf("%s: CDF(Quantile(%v)) = %v", d.Name, p, back)
			}
		}
	}
}

func TestPaperWorkloadShapes(t *testing.T) {
	// §5.1: with the 15 MB threshold, only a small fraction of Datamining
	// bytes is low-latency (the paper measures 4% of traffic indirect).
	dm := Datamining()
	if frac := dm.ByteFractionBelow(15e6); frac > 0.25 {
		t.Errorf("datamining bytes below 15MB = %v, want small", frac)
	}
	// §5.3: Websearch is the all-indirect worst case — bytes below 15 MB
	// dominate (the tail tops out at 30 MB).
	ws := Websearch()
	if frac := ws.ByteFractionBelow(15e6); frac < 0.7 {
		t.Errorf("websearch bytes below 15MB = %v, want dominant", frac)
	}
	// §5.2: Hadoop median inter-rack flow ≈ 100 KB.
	hd := Hadoop()
	med := hd.Quantile(0.5)
	if med < 50_000 || med > 200_000 {
		t.Errorf("hadoop median = %d, want ≈100KB", med)
	}
	// Figure 1 ranges: Datamining spans 100 B .. 1 GB.
	if dm.Quantile(0) != 100 || dm.Quantile(1) != 1e9 {
		t.Errorf("datamining range [%d, %d]", dm.Quantile(0), dm.Quantile(1))
	}
}

func TestFixedDist(t *testing.T) {
	d := Fixed(100_000)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		if s := d.Sample(rng); s != 100_000 {
			t.Fatalf("fixed sample = %d", s)
		}
	}
}

// Property: sampling stays within the anchor range and respects rough
// quantile ordering.
func TestSampleRangeProperty(t *testing.T) {
	dists := []*FlowSizeDist{Datamining(), Websearch(), Hadoop()}
	f := func(seed int64, which uint8) bool {
		d := dists[int(which)%len(dists)]
		rng := rand.New(rand.NewSource(seed))
		a := d.Anchors()
		lo, hi := int64(a[0].Bytes), int64(a[len(a)-1].Bytes)
		for i := 0; i < 50; i++ {
			s := d.Sample(rng)
			if s < lo || s > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleMatchesCDF(t *testing.T) {
	// Empirical check: fraction of samples ≤ median ≈ 0.5.
	d := Websearch()
	rng := rand.New(rand.NewSource(42))
	med := float64(d.Quantile(0.5))
	n, below := 20000, 0
	for i := 0; i < n; i++ {
		if float64(d.Sample(rng)) <= med {
			below++
		}
	}
	frac := float64(below) / float64(n)
	if math.Abs(frac-0.5) > 0.03 {
		t.Fatalf("P(X <= median) = %v", frac)
	}
}

func TestPoissonLoad(t *testing.T) {
	cfg := PoissonConfig{
		NumHosts:     64,
		HostsPerRack: 4,
		Load:         0.10,
		LinkRateGbps: 10,
		Duration:     50 * eventsim.Millisecond,
		Dist:         Websearch(),
		Seed:         1,
	}
	flows := Poisson(cfg)
	if len(flows) == 0 {
		t.Fatal("no flows generated")
	}
	var bytes float64
	for _, f := range flows {
		bytes += float64(f.Bytes)
		if f.Src == f.Dst {
			t.Fatal("self flow")
		}
		if f.Arrival < 0 || f.Arrival >= cfg.Duration {
			t.Fatalf("arrival %v outside window", f.Arrival)
		}
	}
	// Offered bits should be ≈ load × hosts × rate × duration.
	want := 0.10 * 64 * 10e9 * 0.050
	got := bytes * 8
	if got < 0.7*want || got > 1.3*want {
		t.Fatalf("offered bits = %.3g, want ≈ %.3g", got, want)
	}
}

func TestPoissonAvoidRackLocal(t *testing.T) {
	cfg := PoissonConfig{
		NumHosts: 32, HostsPerRack: 4, Load: 0.2, LinkRateGbps: 10,
		Duration: 10 * eventsim.Millisecond, Dist: Hadoop(), Seed: 2,
		AvoidRackLocal: true,
	}
	for _, f := range Poisson(cfg) {
		if f.Src/4 == f.Dst/4 {
			t.Fatal("rack-local flow generated with AvoidRackLocal")
		}
	}
}

func TestTaggedAndBulked(t *testing.T) {
	orig := Shuffle(4, 10_000, 0, 1)
	flows := Tagged("shuffle", Bulked(orig))
	if len(flows) != 4*3 {
		t.Fatalf("%d flows", len(flows))
	}
	for _, f := range flows {
		if f.Tag != "shuffle" || !f.Bulk {
			t.Fatalf("bad flow metadata %+v", f)
		}
	}
	// The input must be untouched: generators like scenario.Fixed hand the
	// same slice to concurrently running scenarios.
	for _, f := range orig {
		if f.Tag != "" || f.Bulk {
			t.Fatalf("input spec mutated: %+v", f)
		}
	}
}

func TestShuffle(t *testing.T) {
	flows := Shuffle(8, 100_000, 0, 1)
	if len(flows) != 8*7 {
		t.Fatalf("%d flows, want 56", len(flows))
	}
	for _, f := range flows {
		if f.Arrival != 0 || f.Bytes != 100_000 {
			t.Fatalf("bad flow %+v", f)
		}
	}
	staggered := Shuffle(8, 100_000, 10*eventsim.Millisecond, 1)
	var nonzero int
	for _, f := range staggered {
		if f.Arrival > 0 {
			nonzero++
		}
		if f.Arrival >= 10*eventsim.Millisecond {
			t.Fatal("stagger out of range")
		}
	}
	if nonzero == 0 {
		t.Fatal("stagger had no effect")
	}
}

func TestPermutation(t *testing.T) {
	flows := Permutation(32, 4, 1000, 3)
	if len(flows) != 32 {
		t.Fatalf("%d flows", len(flows))
	}
	seenDst := map[int]bool{}
	for _, f := range flows {
		if f.Src/4 == f.Dst/4 {
			t.Fatal("rack-local pair in permutation")
		}
		if seenDst[f.Dst] {
			t.Fatal("destination used twice")
		}
		seenDst[f.Dst] = true
	}
}

func TestHotRack(t *testing.T) {
	flows := HotRack(6, 5000)
	if len(flows) != 6 {
		t.Fatalf("%d flows", len(flows))
	}
	for i, f := range flows {
		if f.Src != i || f.Dst != 6+i {
			t.Fatalf("bad hot-rack flow %+v", f)
		}
	}
}

func TestSkew(t *testing.T) {
	flows := Skew(20, 4, 0.2, 1000, 4)
	// 4 active racks → 4×3 rack pairs × 4 hosts.
	if len(flows) != 4*3*4 {
		t.Fatalf("%d flows, want 48", len(flows))
	}
	racks := map[int]bool{}
	for _, f := range flows {
		racks[f.Src/4] = true
	}
	if len(racks) != 4 {
		t.Fatalf("%d active racks, want 4", len(racks))
	}
}

func TestRackDemand(t *testing.T) {
	flows := []FlowSpec{
		{Src: 0, Dst: 5, Bytes: 100}, // rack 0 → 1
		{Src: 1, Dst: 6, Bytes: 200}, // rack 0 → 1
		{Src: 2, Dst: 3, Bytes: 999}, // rack-local, excluded
	}
	m := RackDemand(flows, 2, 4)
	if m[0][1] != 300 || m[1][0] != 0 || m[0][0] != 0 {
		t.Fatalf("demand = %v", m)
	}
}
