package workload

import (
	"reflect"
	"strings"
	"testing"

	"github.com/opera-net/opera/internal/eventsim"
)

func testPoissonCfg(seed int64) PoissonConfig {
	return PoissonConfig{
		NumHosts:     64,
		HostsPerRack: 4,
		Load:         0.1,
		LinkRateGbps: 10,
		Duration:     5 * eventsim.Millisecond,
		Dist:         Hadoop(),
		Seed:         seed,
	}
}

// The streaming Poisson source must reproduce the materialized generator
// exactly — same seeds, same flows, same order — since the figure sweeps
// moved onto it and their CSVs are pinned.
func TestPoissonSourceMatchesMaterialized(t *testing.T) {
	for _, seed := range []int64{1, 2, 7} {
		want := Poisson(testPoissonCfg(seed))
		got := Drain(PoissonSource(testPoissonCfg(seed)))
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("seed %d: source and materialized Poisson diverge (%d vs %d flows)", seed, len(want), len(got))
		}
		if len(want) == 0 {
			t.Fatalf("seed %d: empty workload", seed)
		}
	}
}

// Sources yield nondecreasing arrivals; FromSpecs establishes the order
// for unsorted inputs while preserving input order among ties.
func TestFromSpecsOrdersByArrival(t *testing.T) {
	specs := []FlowSpec{
		{Src: 0, Dst: 1, Bytes: 1, Arrival: 300},
		{Src: 1, Dst: 2, Bytes: 2, Arrival: 100},
		{Src: 2, Dst: 3, Bytes: 3, Arrival: 100},
		{Src: 3, Dst: 4, Bytes: 4, Arrival: 0},
	}
	got := Drain(FromSpecs(specs))
	wantOrder := []int{3, 1, 2, 0} // by arrival, ties in input order
	for i, wi := range wantOrder {
		if got[i] != specs[wi] {
			t.Fatalf("position %d: got %+v, want %+v", i, got[i], specs[wi])
		}
	}
	// The input slice must be untouched (it may be shared across
	// concurrently running scenarios).
	if specs[0].Arrival != 300 || specs[3].Arrival != 0 {
		t.Fatal("FromSpecs mutated its input")
	}
}

func TestTakeUntilCapBytes(t *testing.T) {
	mk := func() Source { return PoissonSource(testPoissonCfg(1)) }
	all := Drain(mk())
	if got := Drain(Take(mk(), 5)); len(got) != 5 || !reflect.DeepEqual(got, all[:5]) {
		t.Fatalf("Take(5) = %d flows", len(got))
	}
	cut := all[len(all)/2].Arrival
	for _, f := range Drain(Until(mk(), cut)) {
		if f.Arrival >= cut {
			t.Fatalf("Until leaked arrival %v >= %v", f.Arrival, cut)
		}
	}
	for _, f := range Drain(CapBytes(mk(), 10_000)) {
		if f.Bytes > 10_000 {
			t.Fatalf("CapBytes leaked %d bytes", f.Bytes)
		}
	}
}

func TestTagAndBulkSource(t *testing.T) {
	for _, f := range Drain(TagSource("x", BulkSource(Take(PoissonSource(testPoissonCfg(1)), 10)))) {
		if f.Tag != "x" || !f.Bulk {
			t.Fatalf("wrapper lost metadata: %+v", f)
		}
	}
}

// Merge interleaves by arrival and is exhaustive and ordered.
func TestMergeOrdersAcrossSources(t *testing.T) {
	a := PoissonSource(testPoissonCfg(1))
	b := PoissonSource(testPoissonCfg(2))
	na := len(Drain(PoissonSource(testPoissonCfg(1))))
	nb := len(Drain(PoissonSource(testPoissonCfg(2))))
	merged := Drain(Merge(a, b))
	if len(merged) != na+nb {
		t.Fatalf("merged %d flows, want %d", len(merged), na+nb)
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].Arrival < merged[i-1].Arrival {
			t.Fatalf("merge out of order at %d", i)
		}
	}
}

// Mix assigns arrivals to components roughly by weight, carries their
// tags, and is deterministic per seed.
func TestMixWeightsAndDeterminism(t *testing.T) {
	cfg := testPoissonCfg(3)
	cfg.Duration = 20 * eventsim.Millisecond
	mk := func() Source {
		return Mix(cfg,
			MixComponent{Dist: Hadoop(), Weight: 3, Tag: "heavy"},
			MixComponent{Dist: Websearch(), Weight: 1, Tag: "light", Bulk: true},
		)
	}
	flows := Drain(mk())
	if !reflect.DeepEqual(flows, Drain(mk())) {
		t.Fatal("Mix not deterministic per seed")
	}
	var heavy, light int
	for _, f := range flows {
		switch f.Tag {
		case "heavy":
			heavy++
			if f.Bulk {
				t.Fatal("heavy component should not be bulk-tagged")
			}
		case "light":
			light++
			if !f.Bulk {
				t.Fatal("light component lost its bulk tag")
			}
		default:
			t.Fatalf("untagged flow %+v", f)
		}
	}
	if heavy == 0 || light == 0 {
		t.Fatalf("component counts heavy=%d light=%d", heavy, light)
	}
	ratio := float64(heavy) / float64(light)
	if ratio < 2 || ratio > 4.5 {
		t.Fatalf("weight ratio = %.2f, want ≈3", ratio)
	}
}

// Ramp with a constant load at the ceiling reduces to the ceiling-rate
// Poisson process; a ramp from 0 produces fewer early than late arrivals.
func TestRamp(t *testing.T) {
	cfg := testPoissonCfg(5)
	cfg.Duration = 20 * eventsim.Millisecond
	full := len(Drain(Ramp(cfg, func(eventsim.Time) float64 { return cfg.Load })))
	base := len(Drain(PoissonSource(cfg)))
	if full != base {
		t.Fatalf("constant ramp = %d flows, plain Poisson = %d", full, base)
	}
	ramped := Drain(Ramp(cfg, func(t eventsim.Time) float64 {
		return cfg.Load * float64(t) / float64(cfg.Duration)
	}))
	if len(ramped) == 0 || len(ramped) >= full {
		t.Fatalf("ramp produced %d of %d ceiling flows", len(ramped), full)
	}
	half := cfg.Duration / 2
	var early, late int
	for _, f := range ramped {
		if f.Arrival < half {
			early++
		} else {
			late++
		}
	}
	if early >= late {
		t.Fatalf("ramp not increasing: %d early vs %d late", early, late)
	}
}

func TestIncast(t *testing.T) {
	flows := Drain(Incast(IncastConfig{
		NumHosts: 64, Fanin: 8, Bytes: 10_000,
		Period: eventsim.Millisecond, Bursts: 3, Dst: -1, Seed: 1,
	}))
	if len(flows) != 24 {
		t.Fatalf("%d flows, want 3 bursts × 8", len(flows))
	}
	for b := 0; b < 3; b++ {
		burst := flows[b*8 : (b+1)*8]
		dst := burst[0].Dst
		seen := map[int]bool{}
		for _, f := range burst {
			// Bursts fire at Period, 2·Period, … (burst b is 1-indexed).
			if f.Arrival != eventsim.Time(b+1)*eventsim.Millisecond {
				t.Fatalf("burst %d arrival %v", b, f.Arrival)
			}
			if f.Dst != dst || f.Src == dst || seen[f.Src] {
				t.Fatalf("burst %d malformed flow %+v", b, f)
			}
			seen[f.Src] = true
		}
	}
}

func TestReplay(t *testing.T) {
	trace := `# comment
0 0 1 1000 web
500 1 2 2000
1500 2 3 3000 shuffle bulk
`
	rs := Replay(strings.NewReader(trace))
	flows := Drain(rs)
	if rs.Err() != nil {
		t.Fatal(rs.Err())
	}
	want := []FlowSpec{
		{Src: 0, Dst: 1, Bytes: 1000, Arrival: 0, Tag: "web"},
		{Src: 1, Dst: 2, Bytes: 2000, Arrival: 500},
		{Src: 2, Dst: 3, Bytes: 3000, Arrival: 1500, Tag: "shuffle", Bulk: true},
	}
	if !reflect.DeepEqual(flows, want) {
		t.Fatalf("replay = %+v", flows)
	}
}

func TestReplayRejectsMalformedAndUnordered(t *testing.T) {
	for _, trace := range []string{
		"0 0 1\n",                    // too few fields
		"0 0 1 -5\n",                 // bad bytes
		"x 0 1 100\n",                // bad arrival
		"0 3 3 100\n",                // self-flow
		"500 0 1 100\n100 1 2 100\n", // arrivals regress
	} {
		rs := Replay(strings.NewReader(trace))
		Drain(rs)
		if rs.Err() == nil {
			t.Fatalf("trace %q: expected error", trace)
		}
	}
}
