package workload

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"github.com/opera-net/opera/internal/eventsim"
)

// This file holds the composable open-loop generators the streaming
// Source API enables: weighted traffic blends (Mix), time-varying load
// (Ramp), synchronized fan-in (Incast), and trace replay (Replay). All of
// them yield flows lazily from seeded randomness, so arbitrarily long
// windows cost O(1) memory.

// MixComponent is one ingredient of a Mix blend: a flow-size distribution
// plus the metadata its flows carry.
type MixComponent struct {
	// Dist draws this component's flow sizes.
	Dist *FlowSizeDist
	// Weight is the component's share of arrivals (relative, need not sum
	// to 1).
	Weight float64
	// Tag labels the component's flows ("" = untagged), so Result.ByTag
	// separates the blend.
	Tag string
	// Bulk application-tags the component's flows for bulk service (§3.4).
	Bulk bool
	// MaxFlowBytes caps sampled sizes (0 = unlimited).
	MaxFlowBytes int64
}

// Mix is a weighted blend of traffic classes over one open-loop Poisson
// arrival process — §5.2's mixed workloads (a bulk shuffle component under
// latency-sensitive websearch) as a single source. Each arrival is
// assigned to a component with probability proportional to its Weight and
// draws its size from that component's distribution; the aggregate rate is
// set by cfg.Load against the weighted mean flow size (cfg.Dist is
// ignored).
func Mix(cfg PoissonConfig, comps ...MixComponent) Source {
	var totalW, meanBits float64
	for _, c := range comps {
		totalW += c.Weight
		meanBits += c.Weight * c.Dist.Mean() * 8
	}
	if totalW <= 0 {
		return SourceFunc(func() (FlowSpec, bool) { return FlowSpec{}, false })
	}
	meanBits /= totalW

	rng := rand.New(rand.NewSource(cfg.Seed))
	bitsPerSec := cfg.Load * float64(cfg.NumHosts) * cfg.LinkRateGbps * 1e9
	flowsPerSec := bitsPerSec / meanBits
	if flowsPerSec <= 0 {
		return SourceFunc(func() (FlowSpec, bool) { return FlowSpec{}, false })
	}
	meanGapNs := 1e9 / flowsPerSec

	t := eventsim.Time(0)
	done := false
	return SourceFunc(func() (FlowSpec, bool) {
		if done {
			return FlowSpec{}, false
		}
		t += eventsim.Time(rng.ExpFloat64() * meanGapNs)
		if t >= cfg.Duration {
			done = true
			return FlowSpec{}, false
		}
		pick := rng.Float64() * totalW
		comp := comps[len(comps)-1]
		for _, c := range comps {
			if pick < c.Weight {
				comp = c
				break
			}
			pick -= c.Weight
		}
		src := rng.Intn(cfg.NumHosts)
		dst := rng.Intn(cfg.NumHosts)
		for dst == src || (cfg.AvoidRackLocal && sameRack(src, dst, cfg.HostsPerRack)) {
			dst = rng.Intn(cfg.NumHosts)
		}
		bytes := comp.Dist.Sample(rng)
		if comp.MaxFlowBytes > 0 && bytes > comp.MaxFlowBytes {
			bytes = comp.MaxFlowBytes
		}
		return FlowSpec{Src: src, Dst: dst, Bytes: bytes, Arrival: t, Tag: comp.Tag, Bulk: comp.Bulk}, true
	})
}

// Ramp modulates a Poisson process with a time-varying load: loadAt
// returns the offered load at virtual time t, and cfg.Load is its ceiling.
// Implemented by Lewis–Shedler thinning — candidate arrivals are drawn at
// the ceiling rate and kept with probability loadAt(t)/cfg.Load — so the
// process is exact for any loadAt bounded by the ceiling, and a constant
// loadAt(t) = cfg.Load reduces to PoissonSource's arrival rate. Ramps,
// bursts, and diurnal patterns are all just choices of loadAt.
func Ramp(cfg PoissonConfig, loadAt func(t eventsim.Time) float64) Source {
	rng := rand.New(rand.NewSource(cfg.Seed))
	mean := cfg.Dist.Mean()
	bitsPerSec := cfg.Load * float64(cfg.NumHosts) * cfg.LinkRateGbps * 1e9
	flowsPerSec := bitsPerSec / (mean * 8)
	if flowsPerSec <= 0 {
		return SourceFunc(func() (FlowSpec, bool) { return FlowSpec{}, false })
	}
	meanGapNs := 1e9 / flowsPerSec

	t := eventsim.Time(0)
	done := false
	return SourceFunc(func() (FlowSpec, bool) {
		for !done {
			t += eventsim.Time(rng.ExpFloat64() * meanGapNs)
			if t >= cfg.Duration {
				done = true
				break
			}
			keep := loadAt(t) / cfg.Load
			if keep < 1 && rng.Float64() >= keep {
				continue // thinned away
			}
			src := rng.Intn(cfg.NumHosts)
			dst := rng.Intn(cfg.NumHosts)
			for dst == src || (cfg.AvoidRackLocal && sameRack(src, dst, cfg.HostsPerRack)) {
				dst = rng.Intn(cfg.NumHosts)
			}
			return FlowSpec{Src: src, Dst: dst, Bytes: cfg.Dist.Sample(rng), Arrival: t}, true
		}
		return FlowSpec{}, false
	})
}

// IncastConfig parameterizes periodic synchronized fan-in.
type IncastConfig struct {
	// NumHosts is the host pool senders and receivers are drawn from.
	NumHosts int
	// Fanin is how many senders fire per burst.
	Fanin int
	// Bytes is the per-sender payload.
	Bytes int64
	// Period spaces bursts; the first fires at Period.
	Period eventsim.Time
	// Bursts bounds the run (0 = unbounded; bound with Until or the
	// scenario deadline).
	Bursts int
	// Dst fixes the receiver (-1 = a fresh random receiver per burst).
	Dst  int
	Seed int64
}

// Incast generates the classic partition–aggregate pattern: every Period,
// Fanin random senders simultaneously send Bytes to one receiver. Each
// burst's flows share one arrival instant, which is what stresses the
// receiver's downlink and the fabric's buffering.
func Incast(cfg IncastConfig) Source {
	rng := rand.New(rand.NewSource(cfg.Seed))
	burst := 0
	idx := 0
	var senders []int
	dst := 0
	return SourceFunc(func() (FlowSpec, bool) {
		if cfg.Fanin <= 0 || cfg.NumHosts < 2 || cfg.Period <= 0 {
			return FlowSpec{}, false
		}
		if idx == len(senders) { // start the next burst
			if cfg.Bursts > 0 && burst >= cfg.Bursts {
				return FlowSpec{}, false
			}
			burst++
			idx = 0
			dst = cfg.Dst
			if dst < 0 {
				dst = rng.Intn(cfg.NumHosts)
			}
			fanin := cfg.Fanin
			if fanin > cfg.NumHosts-1 {
				fanin = cfg.NumHosts - 1
			}
			senders = senders[:0]
			for _, h := range rng.Perm(cfg.NumHosts) {
				if h == dst {
					continue
				}
				senders = append(senders, h)
				if len(senders) == fanin {
					break
				}
			}
		}
		src := senders[idx]
		idx++
		return FlowSpec{
			Src:     src,
			Dst:     dst,
			Bytes:   cfg.Bytes,
			Arrival: eventsim.Time(burst) * cfg.Period,
		}, true
	})
}

// ReplaySource streams flows from a trace. Like bufio.Scanner, it ends the
// stream on malformed input and reports the cause through Err.
type ReplaySource struct {
	sc   *bufio.Scanner
	line int
	err  error
	last eventsim.Time
	done bool
}

// Replay reads a flow trace from r, one flow per line:
//
//	arrival_ns src dst bytes [tag] [bulk]
//
// Fields are whitespace-separated; blank lines and lines starting with '#'
// are skipped. Arrivals must be nondecreasing (the trace is replayed as an
// open-loop schedule). The trace is consumed lazily, so replaying a
// million-flow trace holds one line in memory at a time.
func Replay(r io.Reader) *ReplaySource {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &ReplaySource{sc: sc}
}

// ReplayFile is Replay over a file; Close the returned closer when done
// (typically after the simulation drains the source).
func ReplayFile(path string) (*ReplaySource, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	return Replay(f), f, nil
}

// Next implements Source.
func (rs *ReplaySource) Next() (FlowSpec, bool) {
	if rs.done {
		return FlowSpec{}, false
	}
	for rs.sc.Scan() {
		rs.line++
		text := strings.TrimSpace(rs.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 4 {
			return rs.fail(fmt.Errorf("workload: trace line %d: want 'arrival_ns src dst bytes [tag] [bulk]', got %q", rs.line, text))
		}
		at, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil || at < 0 {
			return rs.fail(fmt.Errorf("workload: trace line %d: bad arrival %q", rs.line, fields[0]))
		}
		if eventsim.Time(at) < rs.last {
			return rs.fail(fmt.Errorf("workload: trace line %d: arrival %dns before previous %v", rs.line, at, rs.last))
		}
		src, err1 := strconv.Atoi(fields[1])
		dst, err2 := strconv.Atoi(fields[2])
		bytes, err3 := strconv.ParseInt(fields[3], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil || src < 0 || dst < 0 || src == dst || bytes <= 0 {
			return rs.fail(fmt.Errorf("workload: trace line %d: bad src/dst/bytes in %q", rs.line, text))
		}
		spec := FlowSpec{Src: src, Dst: dst, Bytes: bytes, Arrival: eventsim.Time(at)}
		if len(fields) > 4 {
			spec.Tag = fields[4]
		}
		if len(fields) > 5 && fields[5] == "bulk" {
			spec.Bulk = true
		}
		rs.last = spec.Arrival
		return spec, true
	}
	rs.done = true
	rs.err = rs.sc.Err()
	return FlowSpec{}, false
}

func (rs *ReplaySource) fail(err error) (FlowSpec, bool) {
	rs.done = true
	rs.err = err
	return FlowSpec{}, false
}

// Err returns the first parse or read error, or nil after a clean replay.
// Check it once Next has returned false.
func (rs *ReplaySource) Err() error { return rs.err }
