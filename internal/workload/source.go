package workload

import (
	"sort"

	"github.com/opera-net/opera/internal/eventsim"
)

// Source is a lazy, possibly unbounded stream of flows. Next returns the
// next FlowSpec (whose Arrival field is the absolute virtual arrival time)
// and reports whether one was produced; once it returns false the source
// is exhausted and must keep returning false.
//
// Sources yield flows in nondecreasing Arrival order, which is what lets
// the cluster drive them lazily — one pending arrival event at a time —
// instead of materializing the whole flow list up front. A source that
// violates the ordering still works (late flows are admitted immediately,
// like Cluster.AddFlow with a past arrival), but loses the O(active-flows)
// scheduling guarantee for the out-of-order prefix.
//
// Sources are single-use iterators: generators own RNG or file state that
// advances with every Next. Build a fresh Source per simulation.
type Source interface {
	Next() (FlowSpec, bool)
}

// SourceFunc adapts a plain function to the Source interface.
type SourceFunc func() (FlowSpec, bool)

// Next implements Source.
func (f SourceFunc) Next() (FlowSpec, bool) { return f() }

// Materialized is an optional Source capability: a source that already
// holds its complete flow list exposes it so the cluster can schedule
// every arrival in one shot. Lazy pumping earns nothing once the list
// exists in memory — and one-shot scheduling keeps the event interleaving
// (and therefore packet-level results) identical to the historical
// AddFlows path. Wrapping combinators (Take, TagSource, …) deliberately
// hide the capability, since they change the stream.
type Materialized interface {
	Source
	// Specs returns the full flow list in arrival order. Callers must not
	// mutate it.
	Specs() []FlowSpec
}

// specSource is FromSpecs' implementation: a Materialized list iterator.
type specSource struct {
	ordered []FlowSpec
	i       int
}

func (ss *specSource) Next() (FlowSpec, bool) {
	if ss.i >= len(ss.ordered) {
		return FlowSpec{}, false
	}
	s := ss.ordered[ss.i]
	ss.i++
	return s, true
}

func (ss *specSource) Specs() []FlowSpec { return ss.ordered }

// FromSpecs adapts a materialized flow list into a Source: the specs are
// copied, stably sorted by arrival time (preserving input order among
// simultaneous arrivals), and yielded one at a time. This is the bridge
// from every eager generator in this package — Shuffle, Permutation,
// HotRack, Skew — and from legacy []FlowSpec workloads. The result
// implements Materialized.
func FromSpecs(specs []FlowSpec) Source {
	ordered := append([]FlowSpec(nil), specs...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Arrival < ordered[j].Arrival })
	return &specSource{ordered: ordered}
}

// Drain materializes a source into a flow list. It is the inverse of
// FromSpecs, used by legacy []FlowSpec call sites and tests; draining an
// unbounded source does not terminate, so bound it with Take or Until
// first.
func Drain(s Source) []FlowSpec {
	var out []FlowSpec
	for {
		spec, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, spec)
	}
}

// Take caps a source at the first n flows.
func Take(s Source, n int) Source {
	return SourceFunc(func() (FlowSpec, bool) {
		if n <= 0 {
			return FlowSpec{}, false
		}
		n--
		return s.Next()
	})
}

// Until cuts a source off at the given virtual time: flows arriving at or
// after cutoff are discarded and the source ends. It bounds unbounded
// generators (a Ramp with no window, a Replay of a long trace).
func Until(s Source, cutoff eventsim.Time) Source {
	done := false
	return SourceFunc(func() (FlowSpec, bool) {
		if done {
			return FlowSpec{}, false
		}
		spec, ok := s.Next()
		if !ok || spec.Arrival >= cutoff {
			done = true
			return FlowSpec{}, false
		}
		return spec, true
	})
}

// CapBytes clamps every flow's size to at most maxBytes (0 = no cap) — the
// streaming form of the tail cap the small-scale Poisson sweeps apply so
// test runtimes stay bounded.
func CapBytes(s Source, maxBytes int64) Source {
	if maxBytes <= 0 {
		return s
	}
	return SourceFunc(func() (FlowSpec, bool) {
		spec, ok := s.Next()
		if ok && spec.Bytes > maxBytes {
			spec.Bytes = maxBytes
		}
		return spec, ok
	})
}

// TagSource labels every flow of a source with tag — the streaming form of
// Tagged.
func TagSource(tag string, s Source) Source {
	return SourceFunc(func() (FlowSpec, bool) {
		spec, ok := s.Next()
		if ok {
			spec.Tag = tag
		}
		return spec, ok
	})
}

// BulkSource application-tags every flow of a source for bulk service
// regardless of size (§3.4) — the streaming form of Bulked.
func BulkSource(s Source) Source {
	return SourceFunc(func() (FlowSpec, bool) {
		spec, ok := s.Next()
		if ok {
			spec.Bulk = true
		}
		return spec, ok
	})
}

// Merge interleaves sources into one stream ordered by arrival time. Ties
// go to the earliest-listed source, so merging deterministic sources is
// deterministic. Each input is consumed lazily with one spec of
// lookahead.
func Merge(sources ...Source) Source {
	type head struct {
		spec FlowSpec
		src  Source
	}
	heads := make([]head, 0, len(sources))
	for _, s := range sources {
		if spec, ok := s.Next(); ok {
			heads = append(heads, head{spec, s})
		}
	}
	return SourceFunc(func() (FlowSpec, bool) {
		if len(heads) == 0 {
			return FlowSpec{}, false
		}
		best := 0
		for i := 1; i < len(heads); i++ {
			if heads[i].spec.Arrival < heads[best].spec.Arrival {
				best = i
			}
		}
		out := heads[best].spec
		if next, ok := heads[best].src.Next(); ok {
			heads[best].spec = next
		} else {
			heads = append(heads[:best], heads[best+1:]...)
		}
		return out, true
	})
}
