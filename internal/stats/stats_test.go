package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Min()) || !math.IsNaN(s.Percentile(50)) {
		t.Fatal("empty sample should return NaN")
	}
	s.AddAll(3, 1, 2)
	if s.N() != 3 {
		t.Fatalf("N = %d, want 3", s.N())
	}
	if s.Sum() != 6 {
		t.Fatalf("Sum = %v, want 6", s.Sum())
	}
	if s.Mean() != 2 {
		t.Fatalf("Mean = %v, want 2", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 3 {
		t.Fatalf("Min/Max = %v/%v, want 1/3", s.Min(), s.Max())
	}
	if s.Median() != 2 {
		t.Fatalf("Median = %v, want 2", s.Median())
	}
}

func TestPercentileInterpolation(t *testing.T) {
	var s Sample
	s.AddAll(10, 20, 30, 40)
	// type-7 interpolation: p50 of [10,20,30,40] = 25.
	if got := s.Percentile(50); got != 25 {
		t.Fatalf("P50 = %v, want 25", got)
	}
	if got := s.Percentile(0); got != 10 {
		t.Fatalf("P0 = %v, want 10", got)
	}
	if got := s.Percentile(100); got != 40 {
		t.Fatalf("P100 = %v, want 40", got)
	}
}

func TestPercentileAfterInterleavedAdds(t *testing.T) {
	var s Sample
	s.AddAll(5, 1)
	_ = s.Median() // force a sort
	s.Add(3)       // then add more
	if got := s.Median(); got != 3 {
		t.Fatalf("Median = %v, want 3", got)
	}
}

func TestPercentileOutOfRangePanics(t *testing.T) {
	var s Sample
	s.Add(1)
	defer func() {
		if recover() == nil {
			t.Error("Percentile(101) did not panic")
		}
	}()
	s.Percentile(101)
}

func TestStddev(t *testing.T) {
	var s Sample
	s.AddAll(2, 4, 4, 4, 5, 5, 7, 9)
	want := 2.138089935299395 // sample (n-1) stddev
	if got := s.Stddev(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Stddev = %v, want %v", got, want)
	}
}

func TestReset(t *testing.T) {
	var s Sample
	s.AddAll(1, 2, 3)
	s.Reset()
	if s.N() != 0 || s.Sum() != 0 {
		t.Fatal("Reset did not clear sample")
	}
	s.Add(7)
	if s.Mean() != 7 {
		t.Fatal("sample unusable after Reset")
	}
}

func TestCDF(t *testing.T) {
	var s Sample
	s.AddAll(1, 1, 2, 4)
	cdf := s.CDF()
	want := []CDFPoint{{1, 0.5}, {2, 0.75}, {4, 1.0}}
	if len(cdf) != len(want) {
		t.Fatalf("CDF has %d points, want %d", len(cdf), len(want))
	}
	for i := range want {
		if cdf[i] != want[i] {
			t.Fatalf("CDF[%d] = %+v, want %+v", i, cdf[i], want[i])
		}
	}
}

func TestWeightedCDF(t *testing.T) {
	// One small flow of 1 byte, one big flow of 99 bytes: byte-weighted CDF
	// should jump to 0.01 at x=1 and 1.0 at x=99.
	cdf := WeightedCDF([]float64{99, 1}, []float64{99, 1})
	if len(cdf) != 2 {
		t.Fatalf("len = %d, want 2", len(cdf))
	}
	if cdf[0].X != 1 || math.Abs(cdf[0].F-0.01) > 1e-12 {
		t.Fatalf("first point = %+v", cdf[0])
	}
	if cdf[1].X != 99 || cdf[1].F != 1.0 {
		t.Fatalf("second point = %+v", cdf[1])
	}
}

func TestWeightedCDFMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched lengths did not panic")
		}
	}()
	WeightedCDF([]float64{1}, []float64{1, 2})
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		var s Sample
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			s.Add(x)
		}
		if s.N() == 0 {
			return true
		}
		p1 := float64(a % 101)
		p2 := float64(b % 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, v2 := s.Percentile(p1), s.Percentile(p2)
		return v1 <= v2 && v1 >= s.Min() && v2 <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: CDF is monotone in both X and F and ends at F=1.
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var s Sample
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			s.Add(x)
		}
		cdf := s.CDF()
		if s.N() == 0 {
			return cdf == nil
		}
		if cdf[len(cdf)-1].F != 1.0 {
			return false
		}
		return sort.SliceIsSorted(cdf, func(i, j int) bool { return cdf[i].X < cdf[j].X }) &&
			sort.SliceIsSorted(cdf, func(i, j int) bool { return cdf[i].F < cdf[j].F })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileAgainstSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var s Sample
	xs := make([]float64, 1001)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 100
		s.Add(xs[i])
	}
	sort.Float64s(xs)
	for _, p := range []float64{0, 25, 50, 75, 99, 100} {
		h := p / 100 * float64(len(xs)-1)
		lo, hi := int(math.Floor(h)), int(math.Ceil(h))
		want := xs[lo]
		if lo != hi {
			frac := h - float64(lo)
			want = xs[lo]*(1-frac) + xs[hi]*frac
		}
		if got := s.Percentile(p); math.Abs(got-want) > 1e-9 {
			t.Fatalf("P%v = %v, want %v", p, got, want)
		}
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(0.001) // 1 ms bins
	ts.Record(0.0005, 100)
	ts.Record(0.0007, 50)
	ts.Record(0.0025, 300)
	if ts.NumBins() != 3 {
		t.Fatalf("NumBins = %d, want 3", ts.NumBins())
	}
	if got := ts.Rate(0); got != 150000 {
		t.Fatalf("Rate(0) = %v, want 150000", got)
	}
	if got := ts.Rate(1); got != 0 {
		t.Fatalf("Rate(1) = %v, want 0", got)
	}
	if got := ts.Rate(2); got != 300000 {
		t.Fatalf("Rate(2) = %v, want 300000", got)
	}
	if got := ts.Total(); got != 450 {
		t.Fatalf("Total = %v, want 450", got)
	}
	if got := ts.Rate(99); got != 0 {
		t.Fatalf("out-of-range Rate = %v, want 0", got)
	}
	rates := ts.Rates()
	if len(rates) != 3 || rates[2] != 300000 {
		t.Fatalf("Rates = %v", rates)
	}
}

func TestTimeSeriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive bin width did not panic")
		}
	}()
	NewTimeSeries(0)
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(1500)
	c.Add(64)
	if c.Packets != 2 || c.Bytes != 1564 {
		t.Fatalf("counter = %+v", c)
	}
	var d Counter
	d.Add(100)
	c.Merge(d)
	if c.Packets != 3 || c.Bytes != 1664 {
		t.Fatalf("after merge = %+v", c)
	}
}

// TestPercentileType7Pinned locks down the quantile semantics every figure
// is generated with: linear interpolation between closest ranks (type 7,
// the numpy/R default), NOT nearest-rank — the doc comment once claimed
// nearest-rank while the implementation interpolated. Each case includes a
// value where the two conventions disagree, so a silent switch of either
// the code or the doc breaks this test.
func TestPercentileType7Pinned(t *testing.T) {
	var quartiles Sample
	quartiles.AddAll(10, 20, 30, 40)
	var decade Sample
	for i := 1; i <= 10; i++ {
		decade.Add(float64(i))
	}
	var centile Sample
	for i := 1; i <= 100; i++ {
		centile.Add(float64(i))
	}
	cases := []struct {
		name string
		s    *Sample
		p    float64
		want float64 // type-7; nearest-rank would differ where noted
	}{
		{"quartiles-p25", &quartiles, 25, 17.5}, // nearest-rank: 10
		{"quartiles-p50", &quartiles, 50, 25},   // nearest-rank: 20
		{"quartiles-p75", &quartiles, 75, 32.5}, // nearest-rank: 30
		{"quartiles-p10", &quartiles, 10, 13},
		{"decade-p90", &decade, 90, 9.1},     // nearest-rank: 9
		{"decade-p99", &decade, 99, 9.91},    // nearest-rank: 10
		{"centile-p99", &centile, 99, 99.01}, // nearest-rank: 99
		{"centile-p50", &centile, 50, 50.5},  // nearest-rank: 50
	}
	for _, c := range cases {
		if got := c.s.Percentile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: Percentile(%v) = %v, want type-7 value %v", c.name, c.p, got, c.want)
		}
	}
	// P99 and Median are aliases of the same interpolating quantile.
	if centile.P99() != centile.Percentile(99) || quartiles.Median() != 25 {
		t.Error("P99/Median do not alias the type-7 quantile")
	}
}
