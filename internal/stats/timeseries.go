package stats

// TimeSeries accumulates byte counts into fixed-width time bins and reports
// per-bin throughput. It backs the "throughput over time" plots (Figure 8).
type TimeSeries struct {
	binWidth float64 // seconds per bin
	bins     []float64
}

// NewTimeSeries returns a series with the given bin width in seconds.
func NewTimeSeries(binWidthSeconds float64) *TimeSeries {
	if binWidthSeconds <= 0 {
		panic("stats: non-positive bin width")
	}
	return &TimeSeries{binWidth: binWidthSeconds}
}

// Record adds amount (e.g. bytes) at time t seconds.
func (ts *TimeSeries) Record(t, amount float64) {
	if t < 0 {
		panic("stats: negative time")
	}
	bin := int(t / ts.binWidth)
	for len(ts.bins) <= bin {
		ts.bins = append(ts.bins, 0)
	}
	ts.bins[bin] += amount
}

// NumBins returns the number of bins touched so far.
func (ts *TimeSeries) NumBins() int { return len(ts.bins) }

// BinWidth returns the width of each bin in seconds.
func (ts *TimeSeries) BinWidth() float64 { return ts.binWidth }

// Rate returns the per-second rate in bin i (total amount / bin width).
func (ts *TimeSeries) Rate(i int) float64 {
	if i < 0 || i >= len(ts.bins) {
		return 0
	}
	return ts.bins[i] / ts.binWidth
}

// Total returns the sum over all bins.
func (ts *TimeSeries) Total() float64 {
	var sum float64
	for _, b := range ts.bins {
		sum += b
	}
	return sum
}

// Rates returns the per-second rate for every bin.
func (ts *TimeSeries) Rates() []float64 {
	out := make([]float64, len(ts.bins))
	for i := range ts.bins {
		out[i] = ts.Rate(i)
	}
	return out
}

// Counter is a monotonically increasing tally with byte/packet convenience
// methods, used by simulator components to expose counters cheaply.
type Counter struct {
	Packets uint64
	Bytes   uint64
}

// Add records one packet of the given size.
func (c *Counter) Add(bytes int) {
	c.Packets++
	c.Bytes += uint64(bytes)
}

// Merge accumulates other into c.
func (c *Counter) Merge(other Counter) {
	c.Packets += other.Packets
	c.Bytes += other.Bytes
}
