// Package stats provides the small set of statistics primitives the Opera
// evaluation needs: exact percentiles over sample batches, empirical CDFs,
// fixed-bin histograms, and throughput time series.
//
// Everything here is exact (no sketches): the simulations in this repository
// produce at most a few million samples per experiment, which comfortably
// fits in memory, and the paper reports tail percentiles (99th) for which
// approximate quantile sketches would add avoidable error.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates float64 observations and answers exact order-statistic
// queries. The zero value is ready to use.
type Sample struct {
	xs     []float64
	sorted bool
	sum    float64
}

// Add appends one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
	s.sum += x
}

// AddAll appends many observations.
func (s *Sample) AddAll(xs ...float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Sum returns the sum of all observations.
func (s *Sample) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or NaN if empty.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	return s.sum / float64(len(s.xs))
}

// Min returns the smallest observation, or NaN if empty.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.sort()
	return s.xs[0]
}

// Max returns the largest observation, or NaN if empty.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.sort()
	return s.xs[len(s.xs)-1]
}

// Stddev returns the sample standard deviation, or NaN for fewer than two
// observations.
func (s *Sample) Stddev() float64 {
	n := len(s.xs)
	if n < 2 {
		return math.NaN()
	}
	m := s.Mean()
	var ss float64
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks — quantile type 7, the numpy/R
// default: h = p/100·(n−1), interpolating between the floor(h)-th and
// ceil(h)-th order statistics — or NaN if empty. Percentile(50) is the
// median; Percentile(99) is the tail metric the paper reports. These are
// the semantics every figure in this repository is generated with.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	s.sort()
	if len(s.xs) == 1 {
		return s.xs[0]
	}
	// Linear interpolation between closest ranks (type 7, the numpy/R
	// default), so results vary smoothly with p.
	h := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(h))
	hi := int(math.Ceil(h))
	if lo == hi {
		return s.xs[lo]
	}
	frac := h - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns Percentile(50).
func (s *Sample) Median() float64 { return s.Percentile(50) }

// P99 returns Percentile(99), the paper's tail flow-completion-time metric.
func (s *Sample) P99() float64 { return s.Percentile(99) }

// Values returns a copy of the observations in sorted order.
func (s *Sample) Values() []float64 {
	s.sort()
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// Reset discards all observations, retaining capacity.
func (s *Sample) Reset() {
	s.xs = s.xs[:0]
	s.sorted = true
	s.sum = 0
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// CDFPoint is one point of an empirical CDF: a value x and the cumulative
// fraction F of observations <= x.
type CDFPoint struct {
	X float64
	F float64
}

// CDF returns the empirical CDF of the sample as a step function evaluated
// at every distinct observation.
func (s *Sample) CDF() []CDFPoint {
	if len(s.xs) == 0 {
		return nil
	}
	s.sort()
	n := float64(len(s.xs))
	var out []CDFPoint
	for i := 0; i < len(s.xs); i++ {
		// Collapse runs of equal values into one point at the run's end.
		if i+1 < len(s.xs) && s.xs[i+1] == s.xs[i] {
			continue
		}
		out = append(out, CDFPoint{X: s.xs[i], F: float64(i+1) / n})
	}
	return out
}

// WeightedCDF returns the CDF of values weighted by weights (e.g. the
// bytes-weighted flow-size CDF in Figure 1 of the paper). Both slices must
// have equal length.
func WeightedCDF(values, weights []float64) []CDFPoint {
	if len(values) != len(weights) {
		panic("stats: values and weights length mismatch")
	}
	if len(values) == 0 {
		return nil
	}
	type pair struct{ v, w float64 }
	ps := make([]pair, len(values))
	var total float64
	for i := range values {
		ps[i] = pair{values[i], weights[i]}
		total += weights[i]
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].v < ps[j].v })
	var out []CDFPoint
	var cum float64
	for i, p := range ps {
		cum += p.w
		if i+1 < len(ps) && ps[i+1].v == p.v {
			continue
		}
		out = append(out, CDFPoint{X: p.v, F: cum / total})
	}
	return out
}
