package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFactorizeCompleteSmall(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 108} {
		rng := rand.New(rand.NewSource(int64(n)))
		ms := FactorizeComplete(n, rng)
		if len(ms) != n {
			t.Fatalf("n=%d: got %d matchings, want %d", n, len(ms), n)
		}
		if err := VerifyFactorization(ms); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestFactorizeCompleteOddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("odd N did not panic")
		}
	}()
	FactorizeComplete(7, rand.New(rand.NewSource(1)))
}

func TestFactorizeSelfLoopCount(t *testing.T) {
	// Over the whole factorization the diagonal is covered exactly once, so
	// self-loop total over all matchings must equal N.
	n := 32
	ms := FactorizeComplete(n, rand.New(rand.NewSource(9)))
	total := 0
	for _, m := range ms {
		total += m.SelfLoops()
	}
	if total != n {
		t.Fatalf("total self-loops = %d, want %d", total, n)
	}
}

func TestMatchingValidate(t *testing.T) {
	good := Matching{1, 0, 3, 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid matching rejected: %v", err)
	}
	bad := Matching{1, 2, 0, 3}
	if err := bad.Validate(); err == nil {
		t.Fatal("non-involution accepted")
	}
	oob := Matching{5, 0}
	if err := oob.Validate(); err == nil {
		t.Fatal("out-of-range entry accepted")
	}
}

func TestMatchingClone(t *testing.T) {
	m := Matching{1, 0}
	c := m.Clone()
	c[0] = 0
	if m[0] != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestLiftDoubles(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := FactorizeComplete(8, rng)
	lifted := Lift(base, rng)
	if len(lifted) != 16 || lifted[0].N() != 16 {
		t.Fatalf("lift produced %d matchings of size %d", len(lifted), lifted[0].N())
	}
	if err := VerifyFactorization(lifted); err != nil {
		t.Fatal(err)
	}
}

func TestLiftTwice(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ms := FactorizeComplete(6, rng)
	ms = Lift(ms, rng)
	ms = Lift(ms, rng)
	if len(ms) != 24 {
		t.Fatalf("double lift gave %d matchings, want 24", len(ms))
	}
	if err := VerifyFactorization(ms); err != nil {
		t.Fatal(err)
	}
}

func TestLiftEmpty(t *testing.T) {
	if Lift(nil, rand.New(rand.NewSource(1))) != nil {
		t.Fatal("lifting nothing should give nothing")
	}
}

func TestFactorizeAuto(t *testing.T) {
	for _, n := range []int{4, 108, 432, 600, 1026, 2048} {
		rng := rand.New(rand.NewSource(int64(n) * 3))
		ms := FactorizeAuto(n, rng)
		if len(ms) != n {
			t.Fatalf("n=%d: %d matchings", n, len(ms))
		}
		if err := VerifyFactorization(ms); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// Property: any even size and seed yields a verifiable factorization.
func TestFactorizationProperty(t *testing.T) {
	f := func(seed int64, raw uint8) bool {
		n := 2 * (1 + int(raw%24)) // 2..48
		ms := FactorizeComplete(n, rand.New(rand.NewSource(seed)))
		return VerifyFactorization(ms) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: lifting preserves factorization validity for arbitrary seeds.
func TestLiftProperty(t *testing.T) {
	f := func(seed int64, raw uint8) bool {
		n := 2 * (1 + int(raw%12)) // 2..24
		rng := rand.New(rand.NewSource(seed))
		ms := Lift(FactorizeComplete(n, rng), rng)
		return VerifyFactorization(ms) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyFactorizationRejects(t *testing.T) {
	if VerifyFactorization(nil) == nil {
		t.Fatal("empty factorization accepted")
	}
	// Wrong count.
	ms := []Matching{{1, 0}}
	if VerifyFactorization(ms) == nil {
		t.Fatal("short factorization accepted")
	}
	// Duplicate coverage: two identity matchings on 2 racks.
	dup := []Matching{{0, 1}, {0, 1}}
	if VerifyFactorization(dup) == nil {
		t.Fatal("duplicate coverage accepted")
	}
}

func BenchmarkFactorize108(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		_ = FactorizeComplete(108, rng)
	}
}

func BenchmarkLiftTo4096(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		_ = FactorizeAuto(4096, rng)
	}
}
