package topology

import (
	"fmt"
	"math/rand"

	"github.com/opera-net/opera/internal/graph"
)

// Expander is a static expander-graph network (the paper's u = 7 baseline,
// built in the style of Jellyfish [42] / Xpander [43]): every ToR dedicates
// u ports to direct ToR-to-ToR links forming a random u-regular graph, and
// d = k - u ports to hosts.
type Expander struct {
	NumRacks     int
	HostsPerRack int // d
	Degree       int // u, ToR-to-ToR links per ToR
	G            *graph.Graph
}

// NewExpander builds a random u-regular graph over n racks, retrying
// realizations (deterministically from seed) until the graph is simple and
// connected. n*u must be even.
func NewExpander(n, hostsPerRack, degree int, seed int64) (*Expander, error) {
	if n < 2 || degree < 1 || degree >= n {
		return nil, fmt.Errorf("topology: invalid expander n=%d u=%d", n, degree)
	}
	if n*degree%2 != 0 {
		return nil, fmt.Errorf("topology: n*u must be even, got n=%d u=%d", n, degree)
	}
	if hostsPerRack <= 0 {
		return nil, fmt.Errorf("topology: HostsPerRack must be positive, got %d", hostsPerRack)
	}
	for attempt := 0; attempt < 50; attempt++ {
		rng := rand.New(rand.NewSource(seed + int64(attempt)*7919))
		g, ok := randomRegular(n, degree, rng)
		if ok && g.Connected() {
			return &Expander{NumRacks: n, HostsPerRack: hostsPerRack, Degree: degree, G: g}, nil
		}
	}
	return nil, fmt.Errorf("topology: no simple connected %d-regular graph found on %d nodes", degree, n)
}

// MustNewExpander is NewExpander but panics on error.
func MustNewExpander(n, hostsPerRack, degree int, seed int64) *Expander {
	e, err := NewExpander(n, hostsPerRack, degree, seed)
	if err != nil {
		panic(err)
	}
	return e
}

// randomRegular draws a simple d-regular graph via the configuration model
// followed by double-edge-swap repair: d stubs per node are paired
// uniformly, then self-loops and parallel edges are eliminated by swapping
// endpoints with randomly chosen good edges (a standard MCMC repair that
// preserves the degree sequence and near-uniformity).
func randomRegular(n, d int, rng *rand.Rand) (*graph.Graph, bool) {
	stubs := make([]int32, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, int32(v))
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })

	type edge struct{ a, b int32 }
	key := func(a, b int32) int64 {
		if a > b {
			a, b = b, a
		}
		return int64(a)<<32 | int64(b)
	}
	edges := make([]edge, 0, n*d/2)
	count := make(map[int64]int, n*d/2)
	for i := 0; i < len(stubs); i += 2 {
		e := edge{stubs[i], stubs[i+1]}
		edges = append(edges, e)
		count[key(e.a, e.b)]++
	}
	isBad := func(e edge) bool { return e.a == e.b || count[key(e.a, e.b)] > 1 }

	// Repair loop: repeatedly pick a bad edge and a random partner edge and
	// swap endpoints if that strictly removes the violation without
	// creating a new one.
	maxIters := 200 * n * d
	for iter := 0; iter < maxIters; iter++ {
		// Find a bad edge (scan from a random offset to avoid bias).
		badIdx := -1
		off := rng.Intn(len(edges))
		for i := range edges {
			j := (i + off) % len(edges)
			if isBad(edges[j]) {
				badIdx = j
				break
			}
		}
		if badIdx == -1 {
			// Simple graph achieved.
			g := graph.New(n)
			for _, e := range edges {
				g.AddEdge(int(e.a), int(e.b))
			}
			return g, true
		}
		e1 := edges[badIdx]
		otherIdx := rng.Intn(len(edges))
		if otherIdx == badIdx {
			continue
		}
		e2 := edges[otherIdx]
		// Proposed rewiring: (a,b),(c,d) → (a,d),(c,b).
		n1 := edge{e1.a, e2.b}
		n2 := edge{e2.a, e1.b}
		if n1.a == n1.b || n2.a == n2.b {
			continue
		}
		// Remove old edges from counts, then test the new ones.
		count[key(e1.a, e1.b)]--
		count[key(e2.a, e2.b)]--
		if count[key(n1.a, n1.b)] > 0 || count[key(n2.a, n2.b)] > 0 || key(n1.a, n1.b) == key(n2.a, n2.b) {
			count[key(e1.a, e1.b)]++
			count[key(e2.a, e2.b)]++
			continue
		}
		count[key(n1.a, n1.b)]++
		count[key(n2.a, n2.b)]++
		edges[badIdx] = n1
		edges[otherIdx] = n2
	}
	return nil, false
}

// NumHosts returns the total host count.
func (e *Expander) NumHosts() int { return e.NumRacks * e.HostsPerRack }

// HostRack returns the rack of host h.
func (e *Expander) HostRack(h int) int { return h / e.HostsPerRack }

// FoldedClos is an M:1-oversubscribed three-tier folded-Clos network built
// from uniform radix-k switches (§2.3 and the paper's 3:1 baseline).
//
// Dimensions for radix k and oversubscription F (d:u = F:1 at the ToR):
//
//	ToR:  d = kF/(F+1) hosts down, u = k/(F+1) uplinks
//	Pod:  k/2 ToRs, u·(k/2)/(k/2) = u aggregation switches (k/2 down, k/2 up)
//	Core: pods·u·(k/2)/k switches
//	Hosts: (4F/(F+1))·(k/2)³
//
// For k=12, F=3: 72 ToRs × 9 hosts = 648 hosts, 12 pods, 36 agg, 18 core.
type FoldedClos struct {
	K             int // switch radix
	F             int // oversubscription factor (F:1)
	HostsPerToR   int // d
	UplinksPerToR int // u
	ToRsPerPod    int
	AggPerPod     int
	NumPods       int
	NumToRs       int
	NumAgg        int
	NumCore       int
}

// NewFoldedClos derives a consistent three-tier folded Clos for the given
// radix and oversubscription factor.
func NewFoldedClos(k, f int) (*FoldedClos, error) {
	if k < 4 || k%2 != 0 {
		return nil, fmt.Errorf("topology: radix must be even and >= 4, got %d", k)
	}
	if f < 1 {
		return nil, fmt.Errorf("topology: oversubscription must be >= 1, got %d", f)
	}
	if k%(f+1) != 0 {
		return nil, fmt.Errorf("topology: radix %d not divisible by F+1=%d", k, f+1)
	}
	c := &FoldedClos{
		K:             k,
		F:             f,
		HostsPerToR:   k * f / (f + 1),
		UplinksPerToR: k / (f + 1),
		ToRsPerPod:    k / 2,
	}
	// Each pod's ToR uplinks (ToRsPerPod × u) terminate on agg switches
	// with k/2 down-facing ports each.
	if c.ToRsPerPod*c.UplinksPerToR%(k/2) != 0 {
		return nil, fmt.Errorf("topology: pod wiring does not divide evenly (k=%d, F=%d)", k, f)
	}
	c.AggPerPod = c.ToRsPerPod * c.UplinksPerToR / (k / 2)
	// Host count H = (4F/(F+1))(k/2)^3 (Appendix A); pods = H/(d·ToRsPerPod).
	h := 4 * f * (k / 2) * (k / 2) * (k / 2) / (f + 1)
	c.NumPods = h / (c.HostsPerToR * c.ToRsPerPod)
	c.NumToRs = c.NumPods * c.ToRsPerPod
	c.NumAgg = c.NumPods * c.AggPerPod
	aggUplinks := c.NumAgg * (k / 2)
	if aggUplinks%k != 0 {
		return nil, fmt.Errorf("topology: core wiring does not divide evenly (k=%d, F=%d)", k, f)
	}
	c.NumCore = aggUplinks / k
	return c, nil
}

// MustNewFoldedClos is NewFoldedClos but panics on error.
func MustNewFoldedClos(k, f int) *FoldedClos {
	c, err := NewFoldedClos(k, f)
	if err != nil {
		panic(err)
	}
	return c
}

// NumHosts returns the total host count.
func (c *FoldedClos) NumHosts() int { return c.NumToRs * c.HostsPerToR }

// HostToR returns the ToR index of host h.
func (c *FoldedClos) HostToR(h int) int { return h / c.HostsPerToR }

// ToRPod returns the pod of ToR t.
func (c *FoldedClos) ToRPod(t int) int { return t / c.ToRsPerPod }

// RackGraph returns the rack-level hop graph used for path-length CDFs
// (Figure 4): ToR–agg–core connectivity expanded into a node per switch.
// Node numbering: [0,NumToRs) ToRs, then agg, then core.
func (c *FoldedClos) RackGraph() *graph.Graph {
	nAgg := c.NumAgg
	g := graph.New(c.NumToRs + nAgg + c.NumCore)
	aggBase := c.NumToRs
	coreBase := c.NumToRs + nAgg
	// ToR ↔ every agg in its pod (uplinks spread across pod aggs).
	for t := 0; t < c.NumToRs; t++ {
		pod := c.ToRPod(t)
		for a := 0; a < c.AggPerPod; a++ {
			g.AddEdge(t, aggBase+pod*c.AggPerPod+a)
		}
	}
	// Agg ↔ core: agg a (global index) has k/2 uplinks striped across core
	// switches: agg with in-pod index p connects to core switches
	// [p·(k/2) … (p+1)·(k/2)) when cores are grouped per in-pod position.
	corePerAgg := c.K / 2
	for pod := 0; pod < c.NumPods; pod++ {
		for p := 0; p < c.AggPerPod; p++ {
			agg := aggBase + pod*c.AggPerPod + p
			for i := 0; i < corePerAgg; i++ {
				core := coreBase + (p*corePerAgg+i)%c.NumCore
				g.AddEdge(agg, core)
			}
		}
	}
	return g
}

// ToRPathStats computes hop-count statistics between ToR pairs over the
// folded-Clos: 2 hops within a pod (ToR-agg-ToR) and 4 hops across pods
// (ToR-agg-core-agg-ToR), per the standard up/down routing. (BFS over
// RackGraph counts switch-to-switch hops including the intermediate
// switches; this helper reports ToR-to-ToR hop counts as the paper does.)
func (c *FoldedClos) ToRPathStats() graph.PathStats {
	ps := graph.PathStats{Hist: make([]int, 5)}
	for a := 0; a < c.NumToRs; a++ {
		for b := 0; b < c.NumToRs; b++ {
			if a == b {
				continue
			}
			ps.Pairs++
			if c.ToRPod(a) == c.ToRPod(b) {
				ps.Hist[2]++
			} else {
				ps.Hist[4]++
			}
		}
	}
	return ps
}
