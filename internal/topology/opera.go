package topology

import (
	"fmt"
	"math/rand"

	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/graph"
)

// Default physical constants used throughout the paper's evaluation (§4.1,
// §5). All are overridable via Config.
const (
	DefaultLinkRateGbps   = 10.0
	DefaultMTU            = 1500
	DefaultHeaderBytes    = 64
	DefaultPropDelay      = 500 * eventsim.Nanosecond // 100 m of fiber
	DefaultEpsilon        = 90 * eventsim.Microsecond // worst-case end-to-end delay ε
	DefaultReconfDelay    = 10 * eventsim.Microsecond // rotor switch reconfiguration r
	DefaultGuardBand      = 1 * eventsim.Microsecond  // synchronization guard (§3.5)
	DefaultGroupSize      = 6                         // circuit switches per stagger group (App. B)
	DefaultDataQueueBytes = 12 * 1024                 // 8 full packets (§4.2.1)
	DefaultHeaderQueue    = 12 * 1024                 // equal-sized header queue (§4.2.1)
	DefaultBulkQueuePkts  = 256                       // deep per-uplink bulk staging at ToR
)

// Config parameterizes an Opera network build.
type Config struct {
	// NumRacks is N, the number of ToRs. Must be even and divisible by
	// NumSwitches.
	NumRacks int
	// HostsPerRack is d. Opera provisions ToRs 1:1, so d = u = k/2.
	HostsPerRack int
	// NumSwitches is the number of rotor circuit switches, equal to the
	// number of ToR uplinks u (one uplink per switch).
	NumSwitches int
	// GroupSize is the number of switches per stagger group (Appendix B).
	// Within a group reconfigurations are staggered; across groups they are
	// simultaneous, cutting cycle time by the number of groups. It must
	// divide NumSwitches. Zero selects min(NumSwitches, DefaultGroupSize).
	GroupSize int
	// Epsilon is the worst-case end-to-end delay budget ε; a circuit about
	// to reconfigure stops accepting traffic ε in advance (§4.1).
	Epsilon eventsim.Time
	// ReconfDelay is the circuit-switch reconfiguration delay r.
	ReconfDelay eventsim.Time
	// GuardBand is the de-synchronization guard band around each
	// configuration (§3.5).
	GuardBand eventsim.Time
	// Seed drives topology randomization. Builds are deterministic per seed.
	Seed int64
	// MaxAttempts bounds how many topology realizations are tried before
	// giving up on finding one whose every slice is connected (§3.3 notes
	// the first realization virtually always works). Zero means 16.
	MaxAttempts int
	// MaxDiameter, when positive, additionally requires every topology
	// slice's expander (u−1 active matchings) to have diameter at most this
	// many ToR-to-ToR hops. §3.3: realizations are tested at design time
	// until one with good properties is found; §4.1 sizes ε assuming a
	// worst-case path length of 5 hops for the 108-rack network.
	MaxDiameter int
	// UseLifting selects FactorizeAuto (graph lifting for large N) instead
	// of direct factorization.
	UseLifting bool
}

// Opera is an immutable Opera topology realization plus its reconfiguration
// schedule. It answers structural queries (current matchings, per-slice
// expander graphs, direct circuits) for any slice index; packet simulation
// and routing live in other packages.
type Opera struct {
	cfg       Config
	matchings []Matching // N total; switch j owns [j*m, (j+1)*m)
	perSwitch int        // m = N / NumSwitches
	slices    int        // slices per cycle = GroupSize * m
	groups    int        // NumSwitches / GroupSize

	pairSwitch []int8 // lazily built: which switch's matching holds (a,b)
}

// NewOpera builds an Opera topology from cfg, retrying realizations until
// every topology slice is connected.
func NewOpera(cfg Config) (*Opera, error) {
	if cfg.NumRacks <= 0 || cfg.NumRacks%2 != 0 {
		return nil, fmt.Errorf("topology: NumRacks must be positive even, got %d", cfg.NumRacks)
	}
	if cfg.NumSwitches <= 0 || cfg.NumRacks%cfg.NumSwitches != 0 {
		return nil, fmt.Errorf("topology: NumSwitches %d must divide NumRacks %d", cfg.NumSwitches, cfg.NumRacks)
	}
	if cfg.HostsPerRack <= 0 {
		return nil, fmt.Errorf("topology: HostsPerRack must be positive, got %d", cfg.HostsPerRack)
	}
	if cfg.GroupSize == 0 {
		cfg.GroupSize = DefaultGroupSize
		if cfg.NumSwitches < cfg.GroupSize {
			cfg.GroupSize = cfg.NumSwitches
		}
	}
	if cfg.NumSwitches%cfg.GroupSize != 0 {
		return nil, fmt.Errorf("topology: GroupSize %d must divide NumSwitches %d", cfg.GroupSize, cfg.NumSwitches)
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = DefaultEpsilon
	}
	if cfg.ReconfDelay == 0 {
		cfg.ReconfDelay = DefaultReconfDelay
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 16
	}

	for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(attempt)))
		var ms []Matching
		if cfg.UseLifting {
			ms = FactorizeAuto(cfg.NumRacks, rng)
		} else {
			ms = FactorizeComplete(cfg.NumRacks, rng)
		}
		o := &Opera{
			cfg:       cfg,
			matchings: ms,
			perSwitch: cfg.NumRacks / cfg.NumSwitches,
			groups:    cfg.NumSwitches / cfg.GroupSize,
		}
		o.slices = cfg.GroupSize * o.perSwitch
		if o.allSlicesConnected() {
			return o, nil
		}
	}
	return nil, fmt.Errorf("topology: no connected Opera realization found in %d attempts (N=%d, u=%d)",
		cfg.MaxAttempts, cfg.NumRacks, cfg.NumSwitches)
}

// MustNewOpera is NewOpera but panics on error, for tests and examples.
func MustNewOpera(cfg Config) *Opera {
	o, err := NewOpera(cfg)
	if err != nil {
		panic(err)
	}
	return o
}

func (o *Opera) allSlicesConnected() bool {
	for s := 0; s < o.slices; s++ {
		g := o.SliceGraph(s)
		if o.cfg.MaxDiameter > 0 {
			ps := g.AllPairs()
			if ps.Disconnected > 0 || ps.Max() > o.cfg.MaxDiameter {
				return false
			}
		} else if !g.Connected() {
			return false
		}
	}
	return true
}

// Config returns the (defaulted) configuration the topology was built with.
func (o *Opera) Config() Config { return o.cfg }

// NumRacks returns N.
func (o *Opera) NumRacks() int { return o.cfg.NumRacks }

// NumHosts returns N × d.
func (o *Opera) NumHosts() int { return o.cfg.NumRacks * o.cfg.HostsPerRack }

// HostsPerRack returns d.
func (o *Opera) HostsPerRack() int { return o.cfg.HostsPerRack }

// Uplinks returns u, the number of rotor uplinks per ToR (= NumSwitches).
func (o *Opera) Uplinks() int { return o.cfg.NumSwitches }

// MatchingsPerSwitch returns N/u, the rotor switch port-map count the paper
// highlights as Opera's scalability advantage over O(N!) crossbars (§3.6.1).
func (o *Opera) MatchingsPerSwitch() int { return o.perSwitch }

// SlicesPerCycle returns the number of topology slices in one full cycle,
// after which the schedule repeats: GroupSize × N/u.
func (o *Opera) SlicesPerCycle() int { return o.slices }

// SliceDuration returns ε + r, the length of one topology slice (§4.1).
func (o *Opera) SliceDuration() eventsim.Time { return o.cfg.Epsilon + o.cfg.ReconfDelay }

// CycleTime returns the time for every rack pair to have been directly
// connected: SlicesPerCycle × SliceDuration. For the paper's 108-rack
// network this is 10.8 ms (the paper reports 10.7 ms).
func (o *Opera) CycleTime() eventsim.Time {
	return eventsim.Time(o.slices) * o.SliceDuration()
}

// DutyCycle returns the fraction of time a circuit switch carries traffic:
// each switch loses r once per GroupSize slices.
func (o *Opera) DutyCycle() float64 {
	hold := eventsim.Time(o.cfg.GroupSize) * o.SliceDuration()
	return 1 - float64(o.cfg.ReconfDelay)/float64(hold)
}

// SliceAt maps a simulation time to (slice index within cycle, absolute
// slice number, offset within the slice).
func (o *Opera) SliceAt(t eventsim.Time) (sliceInCycle int, absSlice int64, offset eventsim.Time) {
	d := o.SliceDuration()
	abs := int64(t / d)
	return int(abs % int64(o.slices)), abs, t % d
}

// SliceStart returns the start time of absolute slice s.
func (o *Opera) SliceStart(absSlice int64) eventsim.Time {
	return eventsim.Time(absSlice) * o.SliceDuration()
}

// Transitioning returns the switches that reconfigure during slice s: one
// per stagger group. Their circuits must not accept new traffic during s
// (the drain window) and go dark for the final r of the slice.
func (o *Opera) Transitioning(slice int) []int {
	slice = o.norm(slice)
	phase := slice % o.cfg.GroupSize
	out := make([]int, o.groups)
	for h := 0; h < o.groups; h++ {
		out[h] = h*o.cfg.GroupSize + phase
	}
	return out
}

// IsTransitioning reports whether switch sw reconfigures during slice s.
func (o *Opera) IsTransitioning(sw, slice int) bool {
	slice = o.norm(slice)
	return sw%o.cfg.GroupSize == slice%o.cfg.GroupSize
}

// MatchingOrdinal returns which of switch sw's matchings (0..m-1) is
// physically installed during slice s. During a transition slice the old
// matching is reported: the switch reconfigures at the end of the slice.
func (o *Opera) MatchingOrdinal(sw, slice int) int {
	slice = o.norm(slice)
	phase := sw % o.cfg.GroupSize
	completed := 0
	if slice > phase {
		completed = (slice-phase-1)/o.cfg.GroupSize + 1
	}
	return completed % o.perSwitch
}

// SwitchMatching returns the matching installed on switch sw during slice s.
func (o *Opera) SwitchMatching(sw, slice int) Matching {
	return o.matchings[sw*o.perSwitch+o.MatchingOrdinal(sw, slice)]
}

// Matchings returns all N matchings; switch j owns the contiguous block
// [j*m, (j+1)*m). The caller must not modify them.
func (o *Opera) Matchings() []Matching { return o.matchings }

// SliceGraph returns the expander implemented during slice s for
// low-latency traffic: the union of the matchings of all switches that are
// not transitioning in s (the paper's "u−1 active matchings" guarantee).
func (o *Opera) SliceGraph(slice int) *graph.Graph {
	g := graph.New(o.cfg.NumRacks)
	for sw := 0; sw < o.cfg.NumSwitches; sw++ {
		if o.IsTransitioning(sw, slice) {
			continue
		}
		m := o.SwitchMatching(sw, slice)
		for i := 0; i < m.N(); i++ {
			if j := m.Peer(i); j > i {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// FullSliceGraph returns the union of all u installed matchings during
// slice s, including the transitioning switch's (usable by traffic that
// completes before the reconfiguration; used for path-length analysis with
// the paper's "one potentially down" caveat handled by SliceGraph).
func (o *Opera) FullSliceGraph(slice int) *graph.Graph {
	g := graph.New(o.cfg.NumRacks)
	for sw := 0; sw < o.cfg.NumSwitches; sw++ {
		m := o.SwitchMatching(sw, slice)
		for i := 0; i < m.N(); i++ {
			if j := m.Peer(i); j > i {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// DirectSwitch returns the switch whose installed matching directly
// connects racks a and b during slice s and is usable for bulk traffic
// (i.e. not transitioning), or -1 if none. This is the bulk-traffic routing
// query: "which uplink gives a one-hop path this slice?"
func (o *Opera) DirectSwitch(slice, a, b int) int {
	if a == b {
		return -1
	}
	for sw := 0; sw < o.cfg.NumSwitches; sw++ {
		if o.IsTransitioning(sw, slice) {
			continue
		}
		if o.SwitchMatching(sw, slice).Peer(a) == b {
			return sw
		}
	}
	return -1
}

// DirectSwitchInstalled is DirectSwitch but includes transitioning
// switches: their old matching remains physically connected until the final
// r of the slice, so bulk traffic may still use it subject to the truncated
// BulkWindow (the paper's 98% duty cycle counts only r as lost).
func (o *Opera) DirectSwitchInstalled(slice, a, b int) int {
	if a == b {
		return -1
	}
	for sw := 0; sw < o.cfg.NumSwitches; sw++ {
		if o.SwitchMatching(sw, slice).Peer(a) == b {
			return sw
		}
	}
	return -1
}

// DirectPeer returns the rack at the far end of rack a's uplink to switch
// sw during slice s (possibly a itself for a self-loop).
func (o *Opera) DirectPeer(slice, a, sw int) int {
	return o.SwitchMatching(sw, slice).Peer(a)
}

// PairSwitch returns the rotor switch whose matching set contains the pair
// (a, b) — each pair appears in exactly one matching of the factorization —
// or -1 for a == b. The map is built lazily on first use.
func (o *Opera) PairSwitch(a, b int) int {
	if a == b {
		return -1
	}
	if o.pairSwitch == nil {
		n := o.cfg.NumRacks
		ps := make([]int8, n*n)
		for i := range ps {
			ps[i] = -1
		}
		for sw := 0; sw < o.cfg.NumSwitches; sw++ {
			for ord := 0; ord < o.perSwitch; ord++ {
				m := o.matchings[sw*o.perSwitch+ord]
				for x := 0; x < n; x++ {
					y := m.Peer(x)
					if y != x {
						ps[x*n+y] = int8(sw)
					}
				}
			}
		}
		o.pairSwitch = ps
	}
	return int(o.pairSwitch[a*o.cfg.NumRacks+b])
}

// BulkWindow returns the interval within slice s (offsets from slice start)
// during which bulk traffic may be admitted into switch sw's circuits.
//
// A circuit persists across the GroupSize slices of its hold, so guard
// bands (§3.5) apply only at the hold's boundaries: the first slice after a
// reconfiguration starts GuardBand late, and the transitioning slice ends
// ReconfDelay + GuardBand early (the simulator adds its own serialization
// drain margin on top). Mid-hold slices use their full duration — this is
// what yields the paper's ≈0.2% bulk capacity loss per µs of guard versus
// 1% for low-latency traffic, which pays the guard every slice.
// A zero-length (start >= end) window means no bulk this slice.
func (o *Opera) BulkWindow(sw, slice int) (start, end eventsim.Time) {
	g := o.cfg.GuardBand
	end = o.SliceDuration()
	// First slice of the hold: the switch reconfigured at this boundary
	// (it was transitioning during the previous slice).
	slice = o.norm(slice)
	prev := (slice - 1 + o.slices) % o.slices
	if o.IsTransitioning(sw, prev) {
		start = g
	}
	if o.IsTransitioning(sw, slice) {
		end = o.SliceDuration() - o.cfg.ReconfDelay - g
	}
	if end < start {
		end = start
	}
	return start, end
}

// LowLatencyCapacityFactor returns the fraction of low-latency capacity
// surviving the guard band: latency-sensitive packets forgo the guard
// around every slice boundary, costing g/(ε+r) — 1% per µs at the paper's
// constants (§3.5).
func (o *Opera) LowLatencyCapacityFactor() float64 {
	return 1 - float64(o.cfg.GuardBand)/float64(o.SliceDuration())
}

// BulkCapacityFactor returns the fraction of a circuit's hold usable for
// bulk traffic: the hold of GroupSize slices loses the reconfiguration
// blackout r plus a guard band at each end — ≈0.2% per µs of guard at the
// paper's constants (§3.5).
func (o *Opera) BulkCapacityFactor() float64 {
	hold := eventsim.Time(o.cfg.GroupSize) * o.SliceDuration()
	usable := hold - o.cfg.ReconfDelay - 2*o.cfg.GuardBand
	if usable < 0 {
		usable = 0
	}
	return float64(usable) / float64(hold)
}

// HostRack returns the rack of host h (hosts are numbered rack-major).
func (o *Opera) HostRack(h int) int { return h / o.cfg.HostsPerRack }

// RackHosts returns the host ID range [lo, hi) of rack r.
func (o *Opera) RackHosts(r int) (lo, hi int) {
	return r * o.cfg.HostsPerRack, (r + 1) * o.cfg.HostsPerRack
}

func (o *Opera) norm(slice int) int {
	s := slice % o.slices
	if s < 0 {
		s += o.slices
	}
	return s
}

// RelativeCycleSlices returns the cycle length in slices for a ToR radix k
// under the paper's scaling family N = 3k²/4 racks (648 hosts at k=12),
// with and without Appendix B grouping. Used by Figure 14.
func RelativeCycleSlices(k int, groupSize int) int {
	n := 3 * k * k / 4
	c := k / 2
	g := groupSize
	if g <= 0 || g > c {
		g = c // "no groups": a single stagger group of all switches
	}
	// cycle = G × N/c slices
	return g * n / c
}
