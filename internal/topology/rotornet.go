package topology

import (
	"fmt"
	"math/rand"

	"github.com/opera-net/opera/internal/eventsim"
)

// RotorNet models the paper's RotorNet [34] baseline: the same rotor
// circuit switches as Opera, but reconfigured *in unison* — every switch
// swaps matchings at every slot boundary. This yields a much shorter cycle
// (all rack pairs connect once per N/c slots instead of Opera's
// GroupSize·N/c slices) at the cost of periodic global disruption: during
// reconfiguration no circuits exist at all, so RotorNet cannot carry
// low-latency traffic in-fabric and, in its hybrid form, dedicates one ToR
// uplink to a separate packet-switched network (+33% cost, §5.1).
type RotorNet struct {
	NumRacks     int
	HostsPerRack int
	NumSwitches  int // rotor switches (u for non-hybrid, u-1 for hybrid)
	Hybrid       bool
	// SlotDuration is the time a set of matchings is held (dark for
	// ReconfDelay at the end of each slot).
	SlotDuration eventsim.Time
	ReconfDelay  eventsim.Time
	GuardBand    eventsim.Time

	matchings []Matching // per switch: slotsPerCycle each, concatenated
	slots     int        // slots per cycle
}

// RotorConfig parameterizes NewRotorNet.
type RotorConfig struct {
	NumRacks     int
	HostsPerRack int
	// Uplinks is the total ToR uplink count u (= k/2). Non-hybrid RotorNet
	// attaches all u to rotor switches; hybrid attaches u-1 and reserves
	// one for the packet-switched network.
	Uplinks      int
	Hybrid       bool
	SlotDuration eventsim.Time // zero = DefaultEpsilon + DefaultReconfDelay
	ReconfDelay  eventsim.Time // zero = DefaultReconfDelay
	GuardBand    eventsim.Time
	Seed         int64
}

// NewRotorNet builds a RotorNet schedule: a complete-graph factorization
// distributed round-robin over the rotor switches so that a full cycle
// connects every rack pair at least once. When N is not divisible by the
// switch count, switches with fewer matchings pad their schedule by
// repeating their first matching (a slight duty-cycle inefficiency of the
// hybrid variant, which loses one uplink to the packet network).
func NewRotorNet(cfg RotorConfig) (*RotorNet, error) {
	if cfg.NumRacks <= 0 || cfg.NumRacks%2 != 0 {
		return nil, fmt.Errorf("topology: NumRacks must be positive even, got %d", cfg.NumRacks)
	}
	if cfg.Uplinks < 1 {
		return nil, fmt.Errorf("topology: Uplinks must be >= 1, got %d", cfg.Uplinks)
	}
	if cfg.HostsPerRack <= 0 {
		return nil, fmt.Errorf("topology: HostsPerRack must be positive, got %d", cfg.HostsPerRack)
	}
	numSwitches := cfg.Uplinks
	if cfg.Hybrid {
		numSwitches--
		if numSwitches < 1 {
			return nil, fmt.Errorf("topology: hybrid RotorNet needs >= 2 uplinks")
		}
	}
	if cfg.SlotDuration == 0 {
		cfg.SlotDuration = DefaultEpsilon + DefaultReconfDelay
	}
	if cfg.ReconfDelay == 0 {
		cfg.ReconfDelay = DefaultReconfDelay
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	fact := FactorizeComplete(cfg.NumRacks, rng)
	slots := (cfg.NumRacks + numSwitches - 1) / numSwitches
	r := &RotorNet{
		NumRacks:     cfg.NumRacks,
		HostsPerRack: cfg.HostsPerRack,
		NumSwitches:  numSwitches,
		Hybrid:       cfg.Hybrid,
		SlotDuration: cfg.SlotDuration,
		ReconfDelay:  cfg.ReconfDelay,
		GuardBand:    cfg.GuardBand,
		slots:        slots,
	}
	r.matchings = make([]Matching, numSwitches*slots)
	for sw := 0; sw < numSwitches; sw++ {
		for slot := 0; slot < slots; slot++ {
			idx := slot*numSwitches + sw // round-robin distribution
			if idx < len(fact) {
				r.matchings[sw*slots+slot] = fact[idx]
			} else {
				r.matchings[sw*slots+slot] = fact[sw] // pad
			}
		}
	}
	return r, nil
}

// MustNewRotorNet is NewRotorNet but panics on error.
func MustNewRotorNet(cfg RotorConfig) *RotorNet {
	r, err := NewRotorNet(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// SlotsPerCycle returns the number of slots after which the schedule
// repeats (every rack pair has been directly connected at least once).
func (r *RotorNet) SlotsPerCycle() int { return r.slots }

// CycleTime returns SlotsPerCycle × SlotDuration. For the paper's 108-rack
// non-hybrid network: 18 slots × 100 µs = 1.8 ms.
func (r *RotorNet) CycleTime() eventsim.Time {
	return eventsim.Time(r.slots) * r.SlotDuration
}

// SlotAt maps a time to (slot in cycle, absolute slot, offset).
func (r *RotorNet) SlotAt(t eventsim.Time) (slotInCycle int, absSlot int64, offset eventsim.Time) {
	abs := int64(t / r.SlotDuration)
	return int(abs % int64(r.slots)), abs, t % r.SlotDuration
}

// SwitchMatching returns the matching installed on switch sw during slot s.
func (r *RotorNet) SwitchMatching(sw, slot int) Matching {
	s := slot % r.slots
	if s < 0 {
		s += r.slots
	}
	return r.matchings[sw*r.slots+s]
}

// DirectSwitch returns a switch directly connecting racks a and b during
// slot s, or -1.
func (r *RotorNet) DirectSwitch(slot, a, b int) int {
	if a == b {
		return -1
	}
	for sw := 0; sw < r.NumSwitches; sw++ {
		if r.SwitchMatching(sw, slot).Peer(a) == b {
			return sw
		}
	}
	return -1
}

// BulkWindow returns the usable transmission window within a slot: all
// switches are dark for the final ReconfDelay of every slot (unison
// reconfiguration), plus guard bands.
func (r *RotorNet) BulkWindow() (start, end eventsim.Time) {
	start = r.GuardBand
	end = r.SlotDuration - r.ReconfDelay - r.GuardBand
	if end < start {
		end = start
	}
	return start, end
}

// DutyCycle returns the fraction of time circuits carry traffic.
func (r *RotorNet) DutyCycle() float64 {
	s, e := r.BulkWindow()
	return float64(e-s) / float64(r.SlotDuration)
}

// NumHosts returns the total host count.
func (r *RotorNet) NumHosts() int { return r.NumRacks * r.HostsPerRack }

// HostRack returns the rack of host h.
func (r *RotorNet) HostRack(h int) int { return h / r.HostsPerRack }
