// Package topology constructs the network topologies evaluated in the Opera
// paper: the Opera time-varying expander itself, static expander graphs,
// oversubscribed folded-Clos networks, and RotorNet. It also implements the
// complete-graph factorization and graph-lifting algorithms of §3.3 and the
// timing/scheduling model of §3.1.1, §4.1 and Appendix B.
package topology

import (
	"fmt"
	"math/rand"
)

// Matching is a symmetric permutation ("matching") over racks 0..N-1, the
// unit of rotor-switch configuration. m[i] is the rack whose uplink is
// circuit-connected to rack i's uplink; m[i] == i denotes a self-loop, i.e.
// an unused port for this configuration (these arise from factoring the
// all-ones N×N matrix, which includes the diagonal).
type Matching []int32

// Peer returns the rack connected to rack r (possibly r itself).
func (m Matching) Peer(r int) int { return int(m[r]) }

// N returns the number of racks the matching spans.
func (m Matching) N() int { return len(m) }

// Validate checks that m is an involution: m[m[i]] == i for all i.
func (m Matching) Validate() error {
	for i, p := range m {
		if p < 0 || int(p) >= len(m) {
			return fmt.Errorf("matching: entry %d out of range: %d", i, p)
		}
		if int(m[p]) != i {
			return fmt.Errorf("matching: not symmetric at %d: m[%d]=%d, m[%d]=%d", i, i, p, p, m[p])
		}
	}
	return nil
}

// SelfLoops returns the number of racks matched to themselves.
func (m Matching) SelfLoops() int {
	n := 0
	for i, p := range m {
		if int(p) == i {
			n++
		}
	}
	return n
}

// Clone returns a copy of the matching.
func (m Matching) Clone() Matching {
	out := make(Matching, len(m))
	copy(out, m)
	return out
}

// FactorizeComplete randomly factors the N×N all-ones matrix into N
// disjoint symmetric matchings (§3.3): every ordered rack pair (i, j),
// including i == j, appears in exactly one matching. N must be even and
// positive.
//
// The factorization must be genuinely random: structured factorizations
// (e.g. circulants) make slice unions into Cayley-like sum graphs whose
// diameter can blow up for unlucky matching subsets, destroying the
// expander property Opera relies on. Matchings are therefore built one at a
// time by randomized hill climbing: each matching is a random perfect
// matching (with self-loops allowed once per vertex across the whole
// factorization) over the pairs not yet used by earlier matchings. When the
// greedy walk gets stuck it performs random augmenting swaps — the standard
// technique for sampling 1-factorizations of K_n, which converges almost
// surely for dense remainder graphs.
func FactorizeComplete(n int, rng *rand.Rand) []Matching {
	if n <= 0 || n%2 != 0 {
		panic(fmt.Sprintf("topology: FactorizeComplete needs positive even N, got %d", n))
	}
	for attempt := 0; attempt < 100; attempt++ {
		if out, ok := tryFactorize(n, rng); ok {
			// Shuffle so matchings land on switches randomly.
			rng.Shuffle(n, func(a, b int) { out[a], out[b] = out[b], out[a] })
			return out
		}
		// Extremely rare at any n; retry with fresh randomness.
	}
	panic(fmt.Sprintf("topology: factorization of N=%d failed repeatedly", n))
}

// factorizer carries the incremental state of one factorization attempt:
// which pairs are consumed and, per vertex, the (lazily pruned) list of
// still-available partners.
type factorizer struct {
	n     int
	used  []bool    // used[i*n+j]: pair consumed by an earlier matching
	avail [][]int32 // avail[i]: partners j with (i,j) possibly unused
	rng   *rand.Rand
}

// tryFactorize attempts one full factorization; it can (very rarely) fail
// if a matching's hill climb exceeds its step budget.
func tryFactorize(n int, rng *rand.Rand) ([]Matching, bool) {
	f := &factorizer{
		n:     n,
		used:  make([]bool, n*n),
		avail: make([][]int32, n),
		rng:   rng,
	}
	flat := make([]int32, n*n) // single allocation backing all avail lists
	for i := 0; i < n; i++ {
		row := flat[i*n : (i+1)*n]
		for j := range row {
			row[j] = int32(j)
		}
		f.avail[i] = row
	}
	out := make([]Matching, 0, n)
	for k := 0; k < n; k++ {
		m, ok := f.randomMatching()
		if !ok {
			return nil, false
		}
		for i := 0; i < n; i++ {
			f.used[i*n+int(m[i])] = true
		}
		out = append(out, m)
	}
	return out, true
}

// pruneStale removes avail[i][idx], known to be consumed.
func (f *factorizer) pruneStale(i int32, idx int) {
	row := f.avail[i]
	row[idx] = row[len(row)-1]
	f.avail[i] = row[:len(row)-1]
}

// randomMatching builds one random symmetric matching (involution,
// self-loops allowed) over the unconsumed pairs. Hill climbing: match
// random free vertices to random available partners; when a vertex has no
// free available partner, steal a matched one and re-free its mate.
//
// Partner selection samples the availability list (pruning consumed
// entries on contact) and falls back to a full scan only when sampling
// fails to find a free partner, keeping the expected cost near O(1) per
// vertex instead of O(n).
func (f *factorizer) randomMatching() (Matching, bool) {
	n := f.n
	m := make(Matching, n)
	for i := range m {
		m[i] = -1
	}
	free := make([]int32, n)
	for i := range free {
		free[i] = int32(i)
	}
	f.rng.Shuffle(n, func(a, b int) { free[a], free[b] = free[b], free[a] })

	budget := 400*n + 20000
	freeCand := make([]int32, 0, 64)
	matchedCand := make([]int32, 0, 64)
	for len(free) > 0 {
		if budget--; budget < 0 {
			return nil, false
		}
		i := free[len(free)-1]
		free = free[:len(free)-1]
		if m[i] != -1 { // matched meanwhile as someone's partner
			continue
		}

		// Fast path: sample random available partners, hoping for a free
		// one. Consumed entries discovered along the way are pruned.
		matched := false
		for try := 0; try < 12 && len(f.avail[i]) > 0; try++ {
			idx := f.rng.Intn(len(f.avail[i]))
			j := f.avail[i][idx]
			if f.used[int(i)*n+int(j)] {
				f.pruneStale(i, idx)
				try--
				continue
			}
			if j == i || m[j] == -1 {
				m[i], m[j] = j, i // j == i yields the self-loop
				matched = true
				break
			}
		}
		if matched {
			continue
		}

		// Slow path: full scan with compaction to be certain whether a free
		// partner exists.
		freeCand = freeCand[:0]
		matchedCand = matchedCand[:0]
		row := f.avail[i]
		w := 0
		for _, j := range row {
			if f.used[int(i)*n+int(j)] {
				continue // drop consumed entry
			}
			row[w] = j
			w++
			if j == i || m[j] == -1 {
				freeCand = append(freeCand, j)
			} else {
				matchedCand = append(matchedCand, j)
			}
		}
		f.avail[i] = row[:w]
		switch {
		case len(freeCand) > 0:
			j := freeCand[f.rng.Intn(len(freeCand))]
			m[i], m[j] = j, i
		case len(matchedCand) > 0:
			// Steal: break j's current pairing, re-freeing its mate.
			j := matchedCand[f.rng.Intn(len(matchedCand))]
			p := m[j]
			m[p] = -1
			if p != j {
				free = append(free, p)
			}
			m[i], m[j] = j, i
		default:
			// i has no unconsumed pair left at all; this attempt is stuck.
			return nil, false
		}
	}
	return m, true
}

// Lift doubles a complete-graph factorization via a random 2-lift (§3.3's
// "graph lifting"): an exact factorization of the 2N×2N all-ones matrix is
// produced from one of the N×N matrix. Rack i of the base graph becomes
// racks i (copy 0) and i+N (copy 1).
//
// Each base matching yields two lifted matchings. A base edge (i, j) lifts
// either "straight" — (i₀,j₀),(i₁,j₁) — or "crossed" — (i₀,j₁),(i₁,j₀); one
// variant goes to the first output matching and the other to the second,
// chosen randomly per edge. A base self-loop at i lifts to the pair
// (i₀,i₁) in one output and self-loops (i₀,i₀),(i₁,i₁) in the other.
// Together these cover every lifted pair exactly once.
func Lift(base []Matching, rng *rand.Rand) []Matching {
	if len(base) == 0 {
		return nil
	}
	n := base[0].N()
	out := make([]Matching, 0, 2*len(base))
	for _, m := range base {
		a := make(Matching, 2*n)
		b := make(Matching, 2*n)
		for i := 0; i < n; i++ {
			j := m.Peer(i)
			if j < i {
				continue // handle each undirected pair once
			}
			if i == j {
				// Self-loop: one output gets the cross edge (i₀,i₁), the
				// other keeps both self-loops.
				if rng.Intn(2) == 0 {
					a[i], a[i+n] = int32(i+n), int32(i)
					b[i], b[i+n] = int32(i), int32(i+n)
				} else {
					b[i], b[i+n] = int32(i+n), int32(i)
					a[i], a[i+n] = int32(i), int32(i+n)
				}
				continue
			}
			straightA := rng.Intn(2) == 0
			if straightA {
				a[i], a[j] = int32(j), int32(i)
				a[i+n], a[j+n] = int32(j+n), int32(i+n)
				b[i], b[j+n] = int32(j+n), int32(i)
				b[i+n], b[j] = int32(j), int32(i+n)
			} else {
				b[i], b[j] = int32(j), int32(i)
				b[i+n], b[j+n] = int32(j+n), int32(i+n)
				a[i], a[j+n] = int32(j+n), int32(i)
				a[i+n], a[j] = int32(j), int32(i+n)
			}
		}
		out = append(out, a, b)
	}
	rng.Shuffle(len(out), func(x, y int) { out[x], out[y] = out[y], out[x] })
	return out
}

// FactorizeAuto builds a factorization of size n, using direct circulant
// construction for the base size and doubling by lifting while n is even
// and large, mirroring the paper's use of lifting for large networks. The
// result always has exactly n matchings of n racks each.
func FactorizeAuto(n int, rng *rand.Rand) []Matching {
	if n <= 0 || n%2 != 0 {
		panic(fmt.Sprintf("topology: FactorizeAuto needs positive even N, got %d", n))
	}
	// Halve while the result stays even (FactorizeComplete requires an even
	// base), build the base directly, then lift back up.
	lifts := 0
	m := n
	for m > 512 && m%2 == 0 && (m/2)%2 == 0 {
		m /= 2
		lifts++
	}
	fact := FactorizeComplete(m, rng)
	for i := 0; i < lifts; i++ {
		fact = Lift(fact, rng)
	}
	return fact
}

// VerifyFactorization checks the two invariants of a complete-graph
// factorization: every matching is a valid involution, and every ordered
// pair (i, j) — including the diagonal — is covered exactly once across all
// matchings. It returns nil if both hold.
func VerifyFactorization(ms []Matching) error {
	if len(ms) == 0 {
		return fmt.Errorf("topology: empty factorization")
	}
	n := ms[0].N()
	if len(ms) != n {
		return fmt.Errorf("topology: %d matchings for %d racks, want equal", len(ms), n)
	}
	seen := make([]bool, n*n)
	for k, m := range ms {
		if m.N() != n {
			return fmt.Errorf("topology: matching %d has size %d, want %d", k, m.N(), n)
		}
		if err := m.Validate(); err != nil {
			return fmt.Errorf("topology: matching %d: %w", k, err)
		}
		for i := 0; i < n; i++ {
			j := m.Peer(i)
			if seen[i*n+j] {
				return fmt.Errorf("topology: pair (%d,%d) covered twice (matching %d)", i, j, k)
			}
			seen[i*n+j] = true
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !seen[i*n+j] {
				return fmt.Errorf("topology: pair (%d,%d) never covered", i, j)
			}
		}
	}
	return nil
}
