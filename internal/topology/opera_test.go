package topology

import (
	"testing"
	"testing/quick"

	"github.com/opera-net/opera/internal/eventsim"
)

// paperConfig is the 108-rack, 648-host, k=12 network of §4.
func paperConfig() Config {
	return Config{
		NumRacks:     108,
		HostsPerRack: 6,
		NumSwitches:  6,
		Seed:         1,
	}
}

// smallConfig is a fast 16-rack network used across the test suite.
func smallConfig() Config {
	return Config{
		NumRacks:     16,
		HostsPerRack: 4,
		NumSwitches:  4,
		Seed:         1,
	}
}

func TestOperaPaperTimeConstants(t *testing.T) {
	o := MustNewOpera(paperConfig())
	if got := o.SliceDuration(); got != 100*eventsim.Microsecond {
		t.Fatalf("SliceDuration = %v, want 100µs", got)
	}
	if got := o.SlicesPerCycle(); got != 108 {
		t.Fatalf("SlicesPerCycle = %d, want 108", got)
	}
	// Paper: cycle time 10.7 ms (we model exactly 108 × 100 µs = 10.8 ms).
	if got := o.CycleTime(); got != 10800*eventsim.Microsecond {
		t.Fatalf("CycleTime = %v, want 10.8ms", got)
	}
	// Paper: duty cycle 98%.
	if duty := o.DutyCycle(); duty < 0.98 || duty > 0.99 {
		t.Fatalf("DutyCycle = %v, want ≈0.983", duty)
	}
	if got := o.MatchingsPerSwitch(); got != 18 {
		t.Fatalf("MatchingsPerSwitch = %d, want 18", got)
	}
	if o.NumHosts() != 648 {
		t.Fatalf("NumHosts = %d, want 648", o.NumHosts())
	}
}

func TestOperaInvalidConfigs(t *testing.T) {
	bad := []Config{
		{NumRacks: 7, HostsPerRack: 1, NumSwitches: 1},               // odd N
		{NumRacks: 8, HostsPerRack: 1, NumSwitches: 3},               // c ∤ N
		{NumRacks: 8, HostsPerRack: 0, NumSwitches: 4},               // no hosts
		{NumRacks: 8, HostsPerRack: 1, NumSwitches: 4, GroupSize: 3}, // G ∤ c
		{NumRacks: -2, HostsPerRack: 1, NumSwitches: 1},
	}
	for i, cfg := range bad {
		if _, err := NewOpera(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestOperaScheduleInvariants(t *testing.T) {
	o := MustNewOpera(smallConfig())
	cycle := o.SlicesPerCycle()
	m := o.MatchingsPerSwitch()
	g := o.Config().GroupSize

	for sw := 0; sw < o.Uplinks(); sw++ {
		// Each switch shows each of its matchings for exactly G slices per
		// cycle (counting with wraparound over one full period).
		counts := make(map[int]int)
		transitions := 0
		for s := 0; s < cycle; s++ {
			counts[o.MatchingOrdinal(sw, s)]++
			if o.IsTransitioning(sw, s) {
				transitions++
			}
			// Ordinal may only change at a boundary following a transition
			// slice.
			if s > 0 {
				prev := o.MatchingOrdinal(sw, s-1)
				cur := o.MatchingOrdinal(sw, s)
				if prev != cur && !o.IsTransitioning(sw, s-1) {
					t.Fatalf("switch %d changed matching after non-transition slice %d", sw, s-1)
				}
			}
		}
		if len(counts) != m {
			t.Fatalf("switch %d showed %d distinct matchings per cycle, want %d", sw, len(counts), m)
		}
		for ord, c := range counts {
			if c != g {
				t.Fatalf("switch %d matching %d shown %d slices, want %d", sw, ord, c, g)
			}
		}
		if transitions != m {
			t.Fatalf("switch %d transitioned %d times per cycle, want %d", sw, transitions, m)
		}
	}
}

func TestOperaSchedulePeriodicity(t *testing.T) {
	o := MustNewOpera(smallConfig())
	cycle := o.SlicesPerCycle()
	for sw := 0; sw < o.Uplinks(); sw++ {
		for s := 0; s < cycle; s++ {
			if o.MatchingOrdinal(sw, s) != o.MatchingOrdinal(sw, s+cycle) {
				t.Fatalf("schedule not periodic at switch %d slice %d", sw, s)
			}
		}
	}
}

func TestOperaTransitioningSets(t *testing.T) {
	// 6 switches in 2 groups of 3 → 2 switches transition per slice,
	// leaving 4 active matchings (enough for connectivity w.h.p.).
	cfg := Config{NumRacks: 36, HostsPerRack: 3, NumSwitches: 6, GroupSize: 3, Seed: 1}
	o := MustNewOpera(cfg)
	for s := 0; s < o.SlicesPerCycle(); s++ {
		tr := o.Transitioning(s)
		if len(tr) != 2 {
			t.Fatalf("slice %d: %d transitioning, want 2", s, len(tr))
		}
		seen := map[int]bool{}
		for _, sw := range tr {
			if !o.IsTransitioning(sw, s) {
				t.Fatalf("inconsistent transitioning report at slice %d switch %d", s, sw)
			}
			if seen[sw] {
				t.Fatalf("duplicate switch in transitioning set")
			}
			seen[sw] = true
		}
	}
}

func TestOperaDirectConnectivityOncePerCycle(t *testing.T) {
	// The core Opera guarantee (§3.1.2): integrated over one cycle, every
	// rack pair is directly connected by a usable (non-transitioning)
	// circuit.
	o := MustNewOpera(smallConfig())
	n := o.NumRacks()
	connected := make([][]bool, n)
	for i := range connected {
		connected[i] = make([]bool, n)
	}
	for s := 0; s < o.SlicesPerCycle(); s++ {
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a != b && o.DirectSwitch(s, a, b) >= 0 {
					connected[a][b] = true
				}
			}
		}
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b && !connected[a][b] {
				t.Fatalf("racks (%d,%d) never directly connected in a cycle", a, b)
			}
		}
	}
}

func TestOperaDirectSwitchSymmetry(t *testing.T) {
	o := MustNewOpera(smallConfig())
	for s := 0; s < o.SlicesPerCycle(); s++ {
		for a := 0; a < o.NumRacks(); a++ {
			for b := a + 1; b < o.NumRacks(); b++ {
				if o.DirectSwitch(s, a, b) != o.DirectSwitch(s, b, a) {
					t.Fatalf("DirectSwitch asymmetric at slice %d (%d,%d)", s, a, b)
				}
			}
		}
	}
	if o.DirectSwitch(0, 3, 3) != -1 {
		t.Fatal("self pair should have no direct switch")
	}
}

func TestOperaSliceGraphsConnectedAndExpanding(t *testing.T) {
	o := MustNewOpera(paperConfig())
	for s := 0; s < o.SlicesPerCycle(); s++ {
		g := o.SliceGraph(s)
		if !g.Connected() {
			t.Fatalf("slice %d graph disconnected", s)
		}
		// With u−1 = 5 active matchings, racks have degree ≤ 5 (self-loops
		// reduce it) and the graph must not be trivially sparse.
		for v := 0; v < g.N(); v++ {
			if d := g.Degree(v); d > 5 {
				t.Fatalf("slice %d rack %d degree %d > u-1", s, v, d)
			}
		}
	}
}

func TestOperaPaperPathLengths(t *testing.T) {
	// Figure 4: for the 648-host Opera network, virtually all rack pairs
	// are within 5 hops in every topology slice.
	o := MustNewOpera(paperConfig())
	for _, s := range []int{0, 17, 53, 107} {
		ps := o.SliceGraph(s).AllPairs()
		if ps.Disconnected > 0 {
			t.Fatalf("slice %d: %d disconnected pairs", s, ps.Disconnected)
		}
		if max := ps.Max(); max > 6 {
			t.Fatalf("slice %d: max path %d hops, want <= 6", s, max)
		}
		if avg := ps.Avg(); avg < 2 || avg > 4 {
			t.Fatalf("slice %d: avg path %.2f, want ~2.5-3.5", s, avg)
		}
	}
}

func TestOperaFullSliceGraphDenser(t *testing.T) {
	o := MustNewOpera(smallConfig())
	for s := 0; s < o.SlicesPerCycle(); s++ {
		full := o.FullSliceGraph(s).NumEdges()
		part := o.SliceGraph(s).NumEdges()
		if full < part {
			t.Fatalf("slice %d: full graph has fewer edges (%d) than partial (%d)", s, full, part)
		}
	}
}

func TestOperaSliceAt(t *testing.T) {
	o := MustNewOpera(paperConfig())
	d := o.SliceDuration()
	sl, abs, off := o.SliceAt(0)
	if sl != 0 || abs != 0 || off != 0 {
		t.Fatalf("SliceAt(0) = %d,%d,%v", sl, abs, off)
	}
	sl, abs, off = o.SliceAt(d*108 + 42)
	if sl != 0 || abs != 108 || off != 42 {
		t.Fatalf("SliceAt(cycle+42) = %d,%d,%v", sl, abs, off)
	}
	if o.SliceStart(108) != d*108 {
		t.Fatalf("SliceStart mismatch")
	}
}

func TestOperaBulkWindow(t *testing.T) {
	cfg := paperConfig()
	cfg.GuardBand = 1 * eventsim.Microsecond
	o := MustNewOpera(cfg)
	// Switch 0 transitions in slices ≡ 0; during slice 1 its hold just
	// began, so the window starts after the guard band and runs to the
	// slice end.
	s, e := o.BulkWindow(0, 1)
	if s != cfg.GuardBand || e != o.SliceDuration() {
		t.Fatalf("hold-start window = [%v, %v]", s, e)
	}
	// Mid-hold (slice 2 for switch 0): the circuit is unchanged across the
	// boundary — full slice, no guards.
	s, e = o.BulkWindow(0, 2)
	if s != 0 || e != o.SliceDuration() {
		t.Fatalf("mid-hold window = [%v, %v]", s, e)
	}
	// Transitioning slice: window ends r+guard early.
	if !o.IsTransitioning(1, 1) {
		t.Fatal("switch 1 should transition in slice 1")
	}
	s, e = o.BulkWindow(1, 1)
	wantEnd := o.SliceDuration() - DefaultReconfDelay - cfg.GuardBand
	if s != 0 || e != wantEnd {
		t.Fatalf("transition window = [%v, %v], want [0, %v]", s, e, wantEnd)
	}
}

func TestGuardBandCapacityFactors(t *testing.T) {
	// §3.5: "each µs of guard time contributes a 1% relative reduction in
	// low-latency capacity and a 0.2% reduction for bulk traffic."
	base := paperConfig()
	perMicro := func(factor func(g eventsim.Time) float64) float64 {
		return factor(0) - factor(1*eventsim.Microsecond)
	}
	llDrop := perMicro(func(g eventsim.Time) float64 {
		cfg := base
		cfg.GuardBand = g
		return MustNewOpera(cfg).LowLatencyCapacityFactor()
	})
	if llDrop < 0.009 || llDrop > 0.011 {
		t.Fatalf("LL capacity drop per µs = %v, want ≈1%%", llDrop)
	}
	bulkDrop := perMicro(func(g eventsim.Time) float64 {
		cfg := base
		cfg.GuardBand = g
		return MustNewOpera(cfg).BulkCapacityFactor()
	})
	if bulkDrop < 0.001 || bulkDrop > 0.005 {
		t.Fatalf("bulk capacity drop per µs = %v, want ≈0.2-0.33%%", bulkDrop)
	}
}

func TestOperaHostMapping(t *testing.T) {
	o := MustNewOpera(smallConfig())
	if o.HostRack(0) != 0 || o.HostRack(7) != 1 || o.HostRack(63) != 15 {
		t.Fatal("HostRack mapping wrong")
	}
	lo, hi := o.RackHosts(2)
	if lo != 8 || hi != 12 {
		t.Fatalf("RackHosts(2) = [%d,%d)", lo, hi)
	}
}

func TestOperaDeterminism(t *testing.T) {
	a := MustNewOpera(smallConfig())
	b := MustNewOpera(smallConfig())
	for i, m := range a.Matchings() {
		for r, p := range m {
			if b.Matchings()[i][r] != p {
				t.Fatalf("same seed produced different topologies at matching %d rack %d", i, r)
			}
		}
	}
}

func TestOperaGroupingCutsCycle(t *testing.T) {
	// Appendix B: grouped reconfiguration shortens the cycle linearly.
	cfg := Config{NumRacks: 48, HostsPerRack: 6, NumSwitches: 12, GroupSize: 12, Seed: 3}
	ungrouped := MustNewOpera(cfg)
	cfg.GroupSize = 6
	grouped := MustNewOpera(cfg)
	if ungrouped.SlicesPerCycle() != 48 {
		t.Fatalf("ungrouped cycle = %d, want 48", ungrouped.SlicesPerCycle())
	}
	if grouped.SlicesPerCycle() != 24 {
		t.Fatalf("grouped cycle = %d, want 24", grouped.SlicesPerCycle())
	}
	if len(grouped.Transitioning(0)) != 2 {
		t.Fatalf("grouped should transition 2 switches per slice")
	}
}

func TestRelativeCycleSlices(t *testing.T) {
	// Figure 14: k=12 ungrouped = 108 slices; grouping by 6 gives linear
	// scaling (9k slices).
	if got := RelativeCycleSlices(12, 0); got != 108 {
		t.Fatalf("k=12 ungrouped = %d, want 108", got)
	}
	if got := RelativeCycleSlices(12, 6); got != 108 {
		t.Fatalf("k=12 grouped = %d, want 108", got)
	}
	if got := RelativeCycleSlices(24, 6); got != 216 {
		t.Fatalf("k=24 grouped = %d, want 216", got)
	}
	if got := RelativeCycleSlices(64, 6); got != 576 {
		t.Fatalf("k=64 grouped = %d, want 576", got)
	}
	if got := RelativeCycleSlices(24, 0); got != 432 {
		t.Fatalf("k=24 ungrouped = %d, want 432", got)
	}
}

// Property: for random small Opera configs, every slice graph is connected
// and every pair gets a direct circuit each cycle.
func TestOperaInvariantsProperty(t *testing.T) {
	f := func(seed int64, rawN, rawC uint8) bool {
		c := 2 + int(rawC%3)           // 2..4 switches
		n := c * (2 + int(rawN%6)) * 2 // even multiple of c
		cfg := Config{NumRacks: n, HostsPerRack: 2, NumSwitches: c, Seed: seed}
		o, err := NewOpera(cfg)
		if err != nil {
			// Small topologies may legitimately fail the connectivity
			// search (e.g. N=2c edge cases); that is a reported error, not
			// an invariant violation.
			return true
		}
		for s := 0; s < o.SlicesPerCycle(); s++ {
			if !o.SliceGraph(s).Connected() {
				return false
			}
		}
		// direct connectivity over a cycle
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				found := false
				for s := 0; s < o.SlicesPerCycle() && !found; s++ {
					found = o.DirectSwitch(s, a, b) >= 0
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
