package topology

import (
	"math/rand"
	"testing"

	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/graph"
)

func TestExpanderPaperBaseline(t *testing.T) {
	// §5: 650-host u=7 expander on k=12 ToRs (d=5 hosts each, 130 racks).
	e := MustNewExpander(130, 5, 7, 1)
	if e.NumHosts() != 650 {
		t.Fatalf("hosts = %d, want 650", e.NumHosts())
	}
	for v := 0; v < e.NumRacks; v++ {
		if d := e.G.Degree(v); d != 7 {
			t.Fatalf("rack %d degree %d, want 7", v, d)
		}
	}
	if !e.G.Connected() {
		t.Fatal("expander disconnected")
	}
	ps := e.G.AllPairs()
	if ps.Avg() < 2 || ps.Avg() > 3.2 {
		t.Fatalf("avg path = %v, want ~2.5", ps.Avg())
	}
	if e.HostRack(12) != 2 {
		t.Fatalf("HostRack wrong")
	}
}

func TestExpanderSpectralQuality(t *testing.T) {
	// A random 7-regular graph should be near-Ramanujan: gap within ~60%
	// of 7 - 2*sqrt(6) ≈ 2.1 (random regular graphs are almost Ramanujan).
	e := MustNewExpander(130, 5, 7, 2)
	rng := rand.New(rand.NewSource(1))
	gap := e.G.SpectralGap(600, rng)
	ideal := graph.RamanujanGap(7)
	if gap < 0.5*ideal {
		t.Fatalf("spectral gap %.3f too small vs Ramanujan %.3f", gap, ideal)
	}
	if gap > 7 {
		t.Fatalf("spectral gap %.3f impossible", gap)
	}
}

func TestExpanderErrors(t *testing.T) {
	if _, err := NewExpander(1, 1, 1, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := NewExpander(5, 1, 3, 1); err == nil {
		t.Fatal("odd n*u accepted")
	}
	if _, err := NewExpander(10, 0, 3, 1); err == nil {
		t.Fatal("zero hosts accepted")
	}
	if _, err := NewExpander(10, 1, 10, 1); err == nil {
		t.Fatal("degree >= n accepted")
	}
}

func TestExpanderDeterminism(t *testing.T) {
	a := MustNewExpander(64, 4, 5, 42)
	b := MustNewExpander(64, 4, 5, 42)
	for v := 0; v < 64; v++ {
		na, nb := a.G.Neighbors(v), b.G.Neighbors(v)
		if len(na) != len(nb) {
			t.Fatal("same seed, different graphs")
		}
	}
}

func TestFoldedClosPaperBaseline(t *testing.T) {
	// §5: 648-host 3:1 folded Clos on k=12 switches.
	c := MustNewFoldedClos(12, 3)
	if c.NumHosts() != 648 {
		t.Fatalf("hosts = %d, want 648", c.NumHosts())
	}
	if c.HostsPerToR != 9 || c.UplinksPerToR != 3 {
		t.Fatalf("ToR split %d:%d, want 9:3", c.HostsPerToR, c.UplinksPerToR)
	}
	if c.NumToRs != 72 || c.NumPods != 12 || c.NumAgg != 36 || c.NumCore != 18 {
		t.Fatalf("dims = %d ToRs %d pods %d agg %d core", c.NumToRs, c.NumPods, c.NumAgg, c.NumCore)
	}
}

func TestFoldedClosK24(t *testing.T) {
	c := MustNewFoldedClos(24, 3)
	// H = (4·3/4)·12³ = 5184.
	if c.NumHosts() != 5184 {
		t.Fatalf("hosts = %d, want 5184", c.NumHosts())
	}
}

func TestFoldedClosFullyProvisioned(t *testing.T) {
	c := MustNewFoldedClos(8, 1)
	// F=1: d=u=4; H = 2·64 = 128.
	if c.NumHosts() != 128 {
		t.Fatalf("hosts = %d, want 128", c.NumHosts())
	}
}

func TestFoldedClosErrors(t *testing.T) {
	if _, err := NewFoldedClos(3, 1); err == nil {
		t.Fatal("odd radix accepted")
	}
	if _, err := NewFoldedClos(12, 0); err == nil {
		t.Fatal("F=0 accepted")
	}
	if _, err := NewFoldedClos(12, 4); err == nil {
		t.Fatal("F=4 with k=12 accepted (k not divisible by F+1)")
	}
}

func TestFoldedClosRackGraph(t *testing.T) {
	c := MustNewFoldedClos(12, 3)
	g := c.RackGraph()
	if !g.Connected() {
		t.Fatal("Clos rack graph disconnected")
	}
	// Every ToR reaches every other ToR in ≤ 4 switch-graph hops
	// (ToR-agg-core-agg-ToR).
	dist := g.BFS(0)
	for v := 1; v < c.NumToRs; v++ {
		if dist[v] > 4 {
			t.Fatalf("ToR 0 to ToR %d distance %d > 4", v, dist[v])
		}
	}
	// Core switch radix check: each core has exactly NumPods edges... each
	// core connects once per pod.
	coreBase := c.NumToRs + c.NumAgg
	for core := coreBase; core < coreBase+c.NumCore; core++ {
		if d := g.Degree(core); d != c.NumPods {
			t.Fatalf("core %d degree %d, want %d", core, d, c.NumPods)
		}
	}
}

func TestFoldedClosToRPathStats(t *testing.T) {
	c := MustNewFoldedClos(12, 3)
	ps := c.ToRPathStats()
	// 72 ToRs: per ToR, 5 intra-pod (2 hops) and 66 inter-pod (4 hops).
	if ps.Hist[2] != 72*5 || ps.Hist[4] != 72*66 {
		t.Fatalf("hist = %v", ps.Hist)
	}
	if ps.Pairs != 72*71 {
		t.Fatalf("pairs = %d", ps.Pairs)
	}
}

func TestRotorNetPaperBaseline(t *testing.T) {
	// Non-hybrid: 6 rotor switches, 108 racks → 18 slots, 1.8 ms cycle.
	r := MustNewRotorNet(RotorConfig{NumRacks: 108, HostsPerRack: 6, Uplinks: 6, Seed: 1})
	if r.SlotsPerCycle() != 18 {
		t.Fatalf("slots = %d, want 18", r.SlotsPerCycle())
	}
	if r.CycleTime() != 1800*eventsim.Microsecond {
		t.Fatalf("cycle = %v, want 1.8ms", r.CycleTime())
	}
	if r.NumSwitches != 6 || r.Hybrid {
		t.Fatalf("switches = %d hybrid=%v", r.NumSwitches, r.Hybrid)
	}
}

func TestRotorNetHybrid(t *testing.T) {
	r := MustNewRotorNet(RotorConfig{NumRacks: 108, HostsPerRack: 6, Uplinks: 6, Hybrid: true, Seed: 1})
	if r.NumSwitches != 5 {
		t.Fatalf("hybrid switches = %d, want 5", r.NumSwitches)
	}
	// 108/5 → 22 slots with padding.
	if r.SlotsPerCycle() != 22 {
		t.Fatalf("slots = %d, want 22", r.SlotsPerCycle())
	}
}

func TestRotorNetFullConnectivityPerCycle(t *testing.T) {
	r := MustNewRotorNet(RotorConfig{NumRacks: 32, HostsPerRack: 4, Uplinks: 4, Seed: 2})
	n := r.NumRacks
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			found := false
			for s := 0; s < r.SlotsPerCycle() && !found; s++ {
				found = r.DirectSwitch(s, a, b) >= 0
			}
			if !found {
				t.Fatalf("pair (%d,%d) never connected in a RotorNet cycle", a, b)
			}
		}
	}
	if r.DirectSwitch(0, 3, 3) != -1 {
		t.Fatal("self-pair connected")
	}
}

func TestRotorNetBulkWindowAndDuty(t *testing.T) {
	r := MustNewRotorNet(RotorConfig{
		NumRacks: 16, HostsPerRack: 2, Uplinks: 4,
		SlotDuration: 100 * eventsim.Microsecond,
		ReconfDelay:  10 * eventsim.Microsecond,
		GuardBand:    1 * eventsim.Microsecond,
		Seed:         1,
	})
	s, e := r.BulkWindow()
	if s != 1*eventsim.Microsecond || e != 89*eventsim.Microsecond {
		t.Fatalf("window = [%v, %v]", s, e)
	}
	if d := r.DutyCycle(); d < 0.87 || d > 0.89 {
		t.Fatalf("duty = %v, want 0.88", d)
	}
}

func TestRotorNetErrors(t *testing.T) {
	if _, err := NewRotorNet(RotorConfig{NumRacks: 7, HostsPerRack: 1, Uplinks: 2}); err == nil {
		t.Fatal("odd racks accepted")
	}
	if _, err := NewRotorNet(RotorConfig{NumRacks: 8, HostsPerRack: 1, Uplinks: 1, Hybrid: true}); err == nil {
		t.Fatal("hybrid with one uplink accepted")
	}
	if _, err := NewRotorNet(RotorConfig{NumRacks: 8, HostsPerRack: 0, Uplinks: 2}); err == nil {
		t.Fatal("zero hosts accepted")
	}
}

func TestRotorNetSlotAt(t *testing.T) {
	r := MustNewRotorNet(RotorConfig{NumRacks: 16, HostsPerRack: 2, Uplinks: 4, Seed: 1})
	d := r.SlotDuration
	slot, abs, off := r.SlotAt(d*5 + 7)
	if slot != 1 || abs != 5 || off != 7 {
		t.Fatalf("SlotAt = %d,%d,%v (slots=%d)", slot, abs, off, r.SlotsPerCycle())
	}
}
