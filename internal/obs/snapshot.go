package obs

import (
	"sort"
	"time"

	opera "github.com/opera-net/opera"
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/sim"
	"github.com/opera-net/opera/internal/telemetry"
)

// Snapshot is one immutable point-in-time view of a running simulation.
// Everything is plain data with JSON tags — a Snapshot crosses the
// goroutine boundary by pointer and is never mutated after Capture.
type Snapshot struct {
	// Seq increments with every published snapshot; /status/stream emits
	// on change.
	Seq uint64 `json:"seq"`
	// WallTime is when the snapshot was captured (observability metadata
	// only — nothing in the simulation reads it).
	WallTime time.Time `json:"wall_time"`
	// SimNanos is the virtual clock in nanoseconds; SimTime renders it.
	SimNanos int64  `json:"sim_nanos"`
	SimTime  string `json:"sim_time"`

	FlowsTotal  int `json:"flows_total"`
	FlowsDone   int `json:"flows_done"`
	FlowsActive int `json:"flows_active"`

	// DeliveredBytes and ThroughputGbps are exact over the whole run.
	DeliveredBytes int64   `json:"delivered_bytes"`
	ThroughputGbps float64 `json:"throughput_gbps"`

	// BulkQueuedBytes is RotorLB's bulk backlog (own + relayed) across all
	// racks; BulkNACKs counts circuit NACK requeues. Zero on fabrics
	// without circuits.
	BulkQueuedBytes int64  `json:"bulk_queued_bytes"`
	BulkNACKs       uint64 `json:"bulk_nacks"`

	// Window, Classes and Tags carry the streaming-telemetry views; nil
	// under RetainAll (no collector to read).
	Window  *WindowRates     `json:"window,omitempty"`
	Classes []ClassQuantiles `json:"classes,omitempty"`
	Tags    []TagCounts      `json:"tags,omitempty"`

	Engine EngineCounters `json:"engine"`
	Pools  PoolGauges     `json:"pools"`
	Faults *FaultState    `json:"faults,omitempty"`
}

// WindowRates summarizes the trailing telemetry windows as rates.
// DeliveredGbps/GoodputGbps/UplinkGbps average over the live window;
// LastBinGbps is the newest bin's instantaneous delivered rate; WindowTax
// is the bandwidth tax over the window (uplink/goodput − 1).
type WindowRates struct {
	BinMs         float64 `json:"bin_ms"`
	Bins          int     `json:"bins"`
	StartMs       float64 `json:"start_ms"`
	DeliveredGbps float64 `json:"delivered_gbps"`
	GoodputGbps   float64 `json:"goodput_gbps"`
	UplinkGbps    float64 `json:"uplink_gbps"`
	LastBinGbps   float64 `json:"last_bin_gbps"`
	WindowTax     float64 `json:"window_tax"`
}

// ClassQuantiles is one FCT sketch's live quantile readout, microseconds.
type ClassQuantiles struct {
	Class  string  `json:"class"`
	N      uint64  `json:"n"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P90Us  float64 `json:"p90_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`
}

// TagCounts is one workload tag's live tally.
type TagCounts struct {
	Tag   string  `json:"tag"`
	Done  int     `json:"done"`
	Total int     `json:"total"`
	Bytes int64   `json:"bytes"`
	P99Us float64 `json:"p99_us"`
}

// EngineCounters mirrors eventsim.EngineStats with JSON tags.
type EngineCounters struct {
	Scheduled     uint64 `json:"scheduled"`
	Fired         uint64 `json:"fired"`
	MetaFired     uint64 `json:"meta_fired"`
	Cancelled     uint64 `json:"cancelled"`
	Pending       int    `json:"pending"`
	FreePool      int    `json:"free_pool"`
	WheelResident int    `json:"wheel_resident"`
	WheelBuckets  int    `json:"wheel_buckets"`
	OverflowHeap  int    `json:"overflow_heap"`
}

// PoolGauges reports the flow-state free lists outside the engine — the
// NDP fabric's pooled sendFlow/recvFlow objects (internal/freelist). The
// engine's own event pool is Engine.FreePool.
type PoolGauges struct {
	NDPSendFree int `json:"ndp_send_free"`
	NDPRecvFree int `json:"ndp_recv_free"`
}

// FaultState is the live fault view: what is applied right now, plus the
// stranded-VLB gauge (the known RotorLB model gap made visible).
type FaultState struct {
	Active        []ActiveFault `json:"active,omitempty"`
	StrandedBytes int64         `json:"stranded_bytes"`
}

// ActiveFault is one applied fault, rendered in the coordinate grammar of
// sim.Target/sim.Fault.
type ActiveFault struct {
	Target string `json:"target"`
	Fault  string `json:"fault"`
}

// Capture builds a Snapshot of the cluster's current state. It is
// read-only and must run on the engine goroutine (a meta event, or after
// the run has returned); Seq is left for the publisher to stamp.
func Capture(cl *opera.Cluster) *Snapshot {
	eng := cl.Engine()
	m := cl.Metrics()
	done, total := m.DoneCount()

	s := &Snapshot{
		//operalint:allow determrand -- wall clock is display-only snapshot metadata
		WallTime:       time.Now(),
		SimNanos:       int64(eng.Now()),
		SimTime:        eng.Now().String(),
		FlowsTotal:     total,
		FlowsDone:      done,
		FlowsActive:    total - done,
		DeliveredBytes: int64(m.DeliveredTotal()),
	}
	if elapsed := eng.Now().Seconds(); elapsed > 0 {
		s.ThroughputGbps = m.DeliveredTotal() * 8 / elapsed / 1e9
	}
	s.Engine = engineCounters(eng.Stats())
	if fab := cl.NDPFabric(); fab != nil {
		pg := fab.PoolStats()
		s.Pools = PoolGauges{NDPSendFree: pg.SendFree, NDPRecvFree: pg.RecvFree}
	}
	if lb := cl.RotorLB(); lb != nil {
		s.BulkQueuedBytes = lb.QueuedBytes()
		s.BulkNACKs = lb.NACKs
	}
	if tel := m.Telemetry(); tel != nil {
		fillTelemetry(s, tel)
	}
	if inj := cl.Faults(); inj != nil {
		s.Faults = faultState(inj)
	}
	return s
}

func engineCounters(st eventsim.EngineStats) EngineCounters {
	return EngineCounters{
		Scheduled:     st.Scheduled,
		Fired:         st.Fired,
		MetaFired:     st.MetaFired,
		Cancelled:     st.Cancelled,
		Pending:       st.Pending,
		FreePool:      st.FreePool,
		WheelResident: st.Sched.Resident,
		WheelBuckets:  st.Sched.Buckets,
		OverflowHeap:  st.Sched.Overflow,
	}
}

// fillTelemetry reads the streaming collector: window rates, per-class
// quantiles, and per-tag tallies in sorted tag order.
func fillTelemetry(s *Snapshot, tel *telemetry.Collector) {
	w := tel.Delivered()
	wr := &WindowRates{BinMs: w.BinWidth() * 1000}
	if first, rates := w.Rates(); len(rates) > 0 {
		wr.Bins = len(rates)
		wr.StartMs = float64(first) * w.BinWidth() * 1000
		wr.LastBinGbps = rates[len(rates)-1] * 8 / 1e9
		span := float64(len(rates)) * w.BinWidth()
		wr.DeliveredGbps = w.WindowTotal() * 8 / span / 1e9
		wr.GoodputGbps = tel.Goodput().WindowTotal() * 8 / span / 1e9
		wr.UplinkGbps = tel.Uplink().WindowTotal() * 8 / span / 1e9
	}
	if good := tel.Goodput().WindowTotal(); good > 0 {
		wr.WindowTax = tel.Uplink().WindowTotal()/good - 1
	}
	s.Window = wr

	s.Classes = []ClassQuantiles{
		classQuantiles("all", tel.Merged()),
		classQuantiles("lowlat", tel.ClassSketch(int(sim.ClassLowLatency))),
		classQuantiles("bulk", tel.ClassSketch(int(sim.ClassBulk))),
	}

	tags := tel.Tags()
	if len(tags) == 0 {
		return
	}
	names := make([]string, 0, len(tags))
	for name := range tags {
		names = append(names, name)
	}
	sort.Strings(names)
	s.Tags = make([]TagCounts, 0, len(names))
	for _, name := range names {
		t := tags[name]
		tc := TagCounts{Tag: name, Done: t.Done, Total: t.Total, Bytes: t.Bytes}
		if t.Sketch.Count() > 0 {
			tc.P99Us = t.Sketch.Quantile(0.99)
		}
		s.Tags = append(s.Tags, tc)
	}
}

func classQuantiles(name string, sk *telemetry.Sketch) ClassQuantiles {
	cq := ClassQuantiles{Class: name, N: sk.Count()}
	if cq.N == 0 {
		return cq
	}
	cq.MeanUs = sk.Mean()
	cq.P50Us = sk.Quantile(0.50)
	cq.P90Us = sk.Quantile(0.90)
	cq.P99Us = sk.Quantile(0.99)
	cq.P999Us = sk.Quantile(0.999)
	cq.MaxUs = sk.Max()
	return cq
}

// faultState reads the injector's live view through the same optional
// type assertions Cluster.Faults uses for stranded-byte wiring.
func faultState(inj sim.FaultInjector) *FaultState {
	fs := &FaultState{}
	if af, ok := inj.(interface{ ActiveFaults() []sim.ActiveFault }); ok {
		for _, a := range af.ActiveFaults() {
			fs.Active = append(fs.Active, ActiveFault{Target: a.Target.String(), Fault: a.Fault.String()})
		}
	}
	if sb, ok := inj.(interface{ StrandedBytes() int64 }); ok {
		fs.StrandedBytes = sb.StrandedBytes()
	}
	return fs
}
