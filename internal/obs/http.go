package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// streamPoll is how often /status/stream checks the Source for a new
// sequence number. Wall-clock, serving-side only — the simulation never
// sees it.
const streamPoll = 200 * time.Millisecond

// srcBox wraps a Source behind one concrete type so the expvar hook can
// swap sources atomically (atomic.Pointer needs a single concrete type;
// Mailbox and SweepTracker differ).
type srcBox struct{ src Source }

var (
	expvarOnce sync.Once
	expvarSrc  atomic.Pointer[srcBox]
)

// publishExpvar registers the "opera_status" expvar exactly once per
// process (expvar.Publish panics on duplicates) and points it at src.
// Later muxes retarget the existing var.
func publishExpvar(src Source) {
	expvarSrc.Store(&srcBox{src: src})
	expvarOnce.Do(func() {
		expvar.Publish("opera_status", expvar.Func(func() any {
			if box := expvarSrc.Load(); box != nil {
				data, _ := box.src.StatusSnapshot()
				return data
			}
			return nil
		}))
	})
}

// NewMux builds the status mux for src:
//
//	/status          latest status as JSON (503 until the first publish)
//	/status/stream   server-sent events, one JSON payload per seq change
//	/debug/vars      expvar (includes opera_status)
//	/debug/pprof/    the standard pprof handlers
//
// pprof and expvar are mounted explicitly rather than via their package
// init side effects on http.DefaultServeMux, so embedding programs keep
// control over what is exposed.
func NewMux(src Source) *http.ServeMux {
	publishExpvar(src)
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		data, _ := src.StatusSnapshot()
		if data == nil {
			http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(data)
	})
	mux.HandleFunc("/status/stream", func(w http.ResponseWriter, r *http.Request) {
		flusher, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.WriteHeader(http.StatusOK)
		flusher.Flush()

		ticker := time.NewTicker(streamPoll)
		defer ticker.Stop()
		var last uint64
		for {
			data, seq := src.StatusSnapshot()
			if data != nil && seq != last {
				last = seq
				payload, err := json.Marshal(data)
				if err != nil {
					return
				}
				fmt.Fprintf(w, "data: %s\n\n", payload)
				flusher.Flush()
			}
			select {
			case <-r.Context().Done():
				return
			case <-ticker.C:
			}
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr (":0" picks a free port) and serves NewMux(src) on a
// background goroutine. The returned addr is the bound address; shut the
// server down with srv.Shutdown or srv.Close.
func Serve(addr string, src Source) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: NewMux(src)}
	go srv.Serve(ln)
	return srv, ln.Addr(), nil
}
