package obs_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/opera-net/opera/internal/obs"
)

func snap(seq uint64, done int) *obs.Snapshot {
	return &obs.Snapshot{Seq: seq, FlowsDone: done, FlowsTotal: done + 1}
}

func TestMailboxLatestWins(t *testing.T) {
	var box obs.Mailbox
	if s := box.Snapshot(); s != nil {
		t.Fatalf("empty mailbox returned %+v", s)
	}
	if data, seq := box.StatusSnapshot(); data != nil || seq != 0 {
		t.Fatalf("empty StatusSnapshot = (%v, %d)", data, seq)
	}
	box.Publish(snap(1, 10))
	box.Publish(snap(2, 20))
	s := box.Snapshot()
	if s.Seq != 2 || s.FlowsDone != 20 {
		t.Fatalf("want latest snapshot (2, 20), got (%d, %d)", s.Seq, s.FlowsDone)
	}
}

// TestStatusEndpoints exercises every endpoint kind the mux serves, with
// concurrent publishes racing the readers (the race lane makes this a
// mailbox safety proof).
func TestStatusEndpoints(t *testing.T) {
	var box obs.Mailbox
	srv := httptest.NewServer(obs.NewMux(&box))
	defer srv.Close()

	// Before any publish: 503.
	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty /status = %d, want 503", resp.StatusCode)
	}

	// Publisher goroutine racing all readers below.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			box.Publish(snap(i, int(i)))
		}
	}()
	defer func() { close(stop); wg.Wait() }()

	// Wait until something is published, then check /status JSON shape.
	var got obs.Snapshot
	for tries := 0; ; tries++ {
		resp, err := http.Get(srv.URL + "/status")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("/status Content-Type = %q", ct)
			}
			if err := json.Unmarshal(body, &got); err != nil {
				t.Fatalf("/status not JSON: %v\n%s", err, body)
			}
			var fields map[string]any
			json.Unmarshal(body, &fields)
			if _, ok := fields["flows_done"]; !ok {
				t.Fatalf("/status missing flows_done: %s", body)
			}
			break
		}
		if tries > 100 {
			t.Fatal("/status never became ready")
		}
		time.Sleep(time.Millisecond)
	}
	if got.Seq == 0 || got.FlowsDone == 0 {
		t.Fatalf("unexpected snapshot: %+v", got)
	}

	// SSE: read one event frame off the stream.
	resp, err = http.Get(srv.URL + "/status/stream")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("/status/stream Content-Type = %q", ct)
	}
	br := bufio.NewReader(resp.Body)
	line, err := br.ReadString('\n')
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading SSE frame: %v", err)
	}
	if !strings.HasPrefix(line, "data: ") {
		t.Fatalf("SSE frame = %q, want data: prefix", line)
	}
	var ev obs.Snapshot
	if err := json.Unmarshal([]byte(strings.TrimPrefix(strings.TrimSpace(line), "data: ")), &ev); err != nil {
		t.Fatalf("SSE payload not JSON: %v", err)
	}

	// expvar carries opera_status.
	resp, err = http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["opera_status"]; !ok {
		t.Fatal("/debug/vars missing opera_status")
	}

	// pprof index answers.
	resp, err = http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ = %d", resp.StatusCode)
	}
}

// TestSweepTracker folds a plausible progress sequence and checks the
// published status; a second mux registration proves the expvar hook
// tolerates multiple sources per process.
func TestSweepTracker(t *testing.T) {
	tr := obs.NewSweepTracker()
	if data, seq := tr.StatusSnapshot(); data != nil || seq != 0 {
		t.Fatalf("fresh tracker StatusSnapshot = (%v, %d)", data, seq)
	}

	tr.SweepStarted(8, 2, 4)
	tr.ShardDispatched(0, 0, []int{0, 1})
	tr.ShardDispatched(0, 1, []int{2, 3})
	tr.ShardDone(0, 1, []int{2, 3}, io.ErrUnexpectedEOF)
	tr.ShardDone(0, 0, []int{0, 1}, nil)
	tr.ShardDispatched(1, 0, []int{2, 3})
	tr.ShardDone(1, 0, []int{2, 3}, nil)
	tr.SweepDone(2, nil)

	data, seq := tr.StatusSnapshot()
	st, ok := data.(*obs.SweepStatus)
	if !ok {
		t.Fatalf("StatusSnapshot data = %T", data)
	}
	if seq == 0 || st.Seq != seq {
		t.Fatalf("seq mismatch: %d vs %d", seq, st.Seq)
	}
	if st.Specs != 8 || st.Workers != 2 || st.Shards != 4 {
		t.Fatalf("sizing: %+v", st)
	}
	if st.ShardsDispatched != 3 || st.ShardsCompleted != 2 || st.ShardsFailed != 1 || st.ShardsRetried != 1 {
		t.Fatalf("shard counters: %+v", st)
	}
	if st.Rounds != 2 || !st.Done {
		t.Fatalf("completion: %+v", st)
	}

	// Tracker serves through the same mux/expvar layer as Mailbox.
	srv := httptest.NewServer(obs.NewMux(tr))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var fields map[string]any
	if err := json.Unmarshal(body, &fields); err != nil {
		t.Fatalf("/status not JSON: %v", err)
	}
	if _, ok := fields["shards_dispatched"]; !ok {
		t.Fatalf("/status missing shards_dispatched: %s", body)
	}
}
