package obs

import (
	opera "github.com/opera-net/opera"
	"github.com/opera-net/opera/internal/eventsim"
)

// Publisher samples a running cluster into a Mailbox on a fixed virtual-
// time period. It implements scenario.Observer: Attach publishes an
// immediate snapshot (so /status serves before the first tick) and
// schedules the sampling chain as ONE pooled meta event that re-arms
// itself via ContinueMetaCall — zero allocations per sample beyond the
// immutable Snapshot itself, and zero perturbation of the simulation
// (meta events are excluded from Engine.Len and Steps, and capture is
// read-only).
type Publisher struct {
	box   *Mailbox
	every eventsim.Time

	cl    *opera.Cluster
	eng   *eventsim.Engine
	until eventsim.Time
	seq   uint64
}

// DefaultPeriod is the sampling period when NewPublisher gets every <= 0:
// 1 ms of virtual time, matching the telemetry windows' default bin.
const DefaultPeriod = eventsim.Millisecond

// NewPublisher returns a publisher sampling into box every period of
// virtual time.
func NewPublisher(box *Mailbox, every eventsim.Time) *Publisher {
	if every <= 0 {
		every = DefaultPeriod
	}
	return &Publisher{box: box, every: every}
}

// Attach implements scenario.Observer.
func (p *Publisher) Attach(cl *opera.Cluster, deadline eventsim.Time) {
	p.cl = cl
	p.eng = cl.Engine()
	p.until = deadline
	p.publish()
	p.eng.AtMetaCall(p.eng.Now()+p.every, p, nil)
}

// OnEvent implements eventsim.Handler: one sampling tick. Per the
// AtMetaCall contract, MetaStep runs first and rescheduling goes through
// ContinueMetaCall, riding the same pooled event for the whole run.
func (p *Publisher) OnEvent(any) {
	p.eng.MetaStep()
	p.publish()
	if p.eng.Now() < p.until {
		p.eng.ContinueMetaCall(p.every, p, nil)
	}
}

// Finalize publishes one last snapshot after the run has returned, so a
// lingering status endpoint serves the completed state (RunUntilDone may
// end between ticks). Harmless if the publisher was never attached.
func (p *Publisher) Finalize() {
	if p.cl != nil {
		p.publish()
	}
}

func (p *Publisher) publish() {
	p.seq++
	s := Capture(p.cl)
	s.Seq = p.seq
	p.box.Publish(s)
}
