// Package obs is the live observability plane: it turns a running
// simulation (or sweep coordinator) from a black box into something
// operated like the production fabrics it models.
//
// The design splits cleanly along the single-goroutine boundary of the
// engine. Inside the simulation, a Publisher rides one pooled meta event
// (eventsim.AtMetaCall / ContinueMetaCall) and, each sampling period,
// captures an immutable Snapshot — flow counts, trailing window rates,
// sketch quantiles, engine counters, pool gauges, live fault state — and
// hands it to a Mailbox: a lock-free latest-wins pointer swap, so the sim
// goroutine never blocks on a slow or absent reader. Outside, NewMux
// serves whatever the Mailbox holds over HTTP: /status (JSON),
// /status/stream (SSE), expvar and net/http/pprof. Sweep coordinators
// publish a SweepStatus through the same Source/serving layer.
//
// Observation must not perturb: meta events are excluded from
// Engine.Len/Steps, snapshot capture is read-only, and
// TestObserverDeterminism asserts an observed run's Result is
// byte-identical to the unobserved run. With no observer attached the hot
// path stays allocation-free and branch-free.
//
// Lint note (the PR 8 landmine): opera-lint analyzers match packages by
// import-path BASE, not full path. This package registers the base "obs"
// in the noclosuresched and maporder scopes, so any other package whose
// import path ends in /obs inherits those checks too — snapshot code must
// sort map iterations (tags) and must never schedule closures on the
// engine.
package obs

import "sync/atomic"

// Source is what the HTTP layer serves: the latest status value plus a
// sequence number that changes when the value does (the SSE stream polls
// the seq to decide when to emit). Implementations must be safe for
// concurrent use; both Mailbox and SweepTracker qualify.
type Source interface {
	StatusSnapshot() (data any, seq uint64)
}

// Mailbox hands snapshots from the simulation goroutine to any number of
// HTTP readers without blocking either side: Publish is one atomic pointer
// swap (latest wins, intermediate snapshots are simply dropped), and
// readers always see a complete, immutable Snapshot. The zero value is
// ready to use.
type Mailbox struct {
	cur atomic.Pointer[Snapshot]
}

// Publish installs s as the current snapshot. The caller must not mutate
// s afterwards — readers hold it without synchronization.
func (m *Mailbox) Publish(s *Snapshot) { m.cur.Store(s) }

// Snapshot returns the current snapshot, nil before the first Publish.
func (m *Mailbox) Snapshot() *Snapshot { return m.cur.Load() }

// StatusSnapshot implements Source.
func (m *Mailbox) StatusSnapshot() (any, uint64) {
	s := m.cur.Load()
	if s == nil {
		return nil, 0
	}
	return s, s.Seq
}
