package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/opera-net/opera/internal/telemetry"
	"github.com/opera-net/opera/scenario"
)

// SweepStatus is the coordinator-side counterpart of Snapshot: the live
// view of a sharded sweep, served over the same Source/HTTP layer.
type SweepStatus struct {
	Seq      uint64    `json:"seq"`
	WallTime time.Time `json:"wall_time"`

	Specs   int `json:"specs"`
	Workers int `json:"workers"`
	Shards  int `json:"shards"`
	Rounds  int `json:"rounds"`

	ShardsDispatched int `json:"shards_dispatched"`
	ShardsCompleted  int `json:"shards_completed"`
	ShardsFailed     int `json:"shards_failed"`
	ShardsRetried    int `json:"shards_retried"`

	// ResultsDone counts delivered scenarios; ResultsErr is the subset
	// whose Result carries an error (bad cell, not a crashed worker).
	ResultsDone int `json:"results_done"`
	ResultsErr  int `json:"results_err"`

	// Done flips when the sweep returns; Failed lists never-delivered
	// spec indices.
	Done   bool  `json:"done"`
	Failed []int `json:"failed,omitempty"`

	// Quantiles summarizes the pooled telemetry of every collector blob
	// delivered so far (PR 6 wire codec, merged in arrival order — fine
	// for display, unlike the report path which merges in spec order).
	Quantiles []ClassQuantiles `json:"quantiles,omitempty"`
}

// SweepTracker is a sweep.ProgressSink (satisfied structurally — obs does
// not import sweep) that folds progress callbacks into a published
// SweepStatus. Safe for concurrent use; readers get immutable copies via
// the same latest-wins pointer discipline as Mailbox.
type SweepTracker struct {
	mu     sync.Mutex
	seq    uint64
	st     SweepStatus
	pooled *telemetry.Collector

	cur atomic.Pointer[SweepStatus]
}

// NewSweepTracker returns a tracker ready to be passed as a sweep
// progress sink and served via NewMux/Serve.
func NewSweepTracker() *SweepTracker { return &SweepTracker{} }

// SweepStarted implements the sink.
func (t *SweepTracker) SweepStarted(specs, workers, shards int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.st.Specs, t.st.Workers, t.st.Shards = specs, workers, shards
	t.publishLocked()
}

// ShardDispatched implements the sink.
func (t *SweepTracker) ShardDispatched(round, shard int, indices []int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.st.ShardsDispatched++
	if round > 0 {
		t.st.ShardsRetried++
	}
	if round+1 > t.st.Rounds {
		t.st.Rounds = round + 1
	}
	t.publishLocked()
}

// ShardDone implements the sink.
func (t *SweepTracker) ShardDone(round, shard int, indices []int, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err != nil {
		t.st.ShardsFailed++
	} else {
		t.st.ShardsCompleted++
	}
	t.publishLocked()
}

// ResultDelivered implements the sink, folding the scenario's collector
// blob into the pooled quantile summary.
func (t *SweepTracker) ResultDelivered(index int, res scenario.Result, collector []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.st.ResultsDone++
	if res.Err != "" {
		t.st.ResultsErr++
	}
	if len(collector) > 0 {
		var col telemetry.Collector
		if err := col.UnmarshalBinary(collector); err == nil {
			if t.pooled == nil {
				t.pooled = &col
			} else {
				// Mixed sketch configs cannot pool; keep what we have.
				_ = t.pooled.Merge(&col)
			}
		}
	}
	t.publishLocked()
}

// SweepDone implements the sink.
func (t *SweepTracker) SweepDone(rounds int, failed []int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if rounds > t.st.Rounds {
		t.st.Rounds = rounds
	}
	t.st.Done = true
	t.st.Failed = append([]int(nil), failed...)
	t.publishLocked()
}

// publishLocked stamps and stores an immutable copy; caller holds t.mu.
func (t *SweepTracker) publishLocked() {
	t.seq++
	cp := t.st
	cp.Seq = t.seq
	//operalint:allow determrand -- wall clock is display-only status metadata
	cp.WallTime = time.Now()
	cp.Failed = append([]int(nil), t.st.Failed...)
	if t.pooled != nil {
		cp.Quantiles = []ClassQuantiles{classQuantiles("all", t.pooled.Merged())}
	}
	t.cur.Store(&cp)
}

// StatusSnapshot implements Source.
func (t *SweepTracker) StatusSnapshot() (any, uint64) {
	s := t.cur.Load()
	if s == nil {
		return nil, 0
	}
	return s, s.Seq
}
