package obs_test

import (
	"encoding/json"
	"testing"

	opera "github.com/opera-net/opera"
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/obs"
	"github.com/opera-net/opera/scenario"
)

// observedScenario is the PR's hard wall in miniature: a mixed workload
// (tagged low-latency + bulk), a mid-run fault schedule, sampling probes,
// and sketch retention — every subsystem an observer reads from.
func observedScenario(observer scenario.Observer) scenario.Scenario {
	return scenario.Scenario{
		Name: "obs-determinism",
		Kind: opera.KindOpera,
		Seed: 11,
		Options: []opera.Option{
			opera.WithRetention(opera.RetainSketch(opera.SketchOptions{})),
		},
		Workload: scenario.Merge(
			scenario.Tag("shuffle", scenario.Bulk(scenario.ShuffleN(12, 60_000, 0))),
			scenario.Tag("mice", scenario.ShuffleN(12, 2_000, 100*eventsim.Microsecond)),
		),
		Events: []scenario.Event{
			scenario.At(200*eventsim.Microsecond, scenario.LossyLink(3, 1, 0.3)),
			scenario.At(400*eventsim.Microsecond, scenario.FailLink(5, 2)),
			scenario.At(2*eventsim.Millisecond, scenario.RecoverLink(3, 1)),
		},
		Probes: []scenario.Probe{
			scenario.Sample("done", eventsim.Millisecond,
				func(cl *opera.Cluster, _ eventsim.Time) float64 {
					done, _ := cl.Metrics().DoneCount()
					return float64(done)
				}),
		},
		Duration: 4000 * eventsim.Millisecond,
		Observer: observer,
	}
}

// TestObserverDeterminism is the package's contract: attaching a
// Publisher sampling every 100 µs leaves the Result byte-identical to the
// unobserved run — same flow outcomes, same FCT stats, same probe series,
// same telemetry summary, same SimEvents count.
func TestObserverDeterminism(t *testing.T) {
	plain := scenario.Run(observedScenario(nil))
	if plain.Err != "" {
		t.Fatalf("plain run error: %s", plain.Err)
	}

	box := &obs.Mailbox{}
	pub := obs.NewPublisher(box, 100*eventsim.Microsecond)
	observed := scenario.Run(observedScenario(pub))
	if observed.Err != "" {
		t.Fatalf("observed run error: %s", observed.Err)
	}

	if !plain.Equal(observed) {
		pj, _ := json.MarshalIndent(plain, "", " ")
		oj, _ := json.MarshalIndent(observed, "", " ")
		t.Fatalf("observed run diverged from plain run\nplain:    %s\nobserved: %s", pj, oj)
	}

	// The observer itself must have seen the run: a snapshot was published
	// and reflects completed flows.
	s := box.Snapshot()
	if s == nil {
		t.Fatal("no snapshot published")
	}
	if s.Seq == 0 || s.FlowsDone == 0 {
		t.Fatalf("last snapshot looks empty: seq=%d flows_done=%d", s.Seq, s.FlowsDone)
	}
	if s.Engine.MetaFired == 0 {
		t.Fatal("expected meta events to have fired")
	}
	if s.Window == nil || len(s.Classes) == 0 || len(s.Tags) == 0 {
		t.Fatalf("telemetry views missing: window=%v classes=%d tags=%d",
			s.Window, len(s.Classes), len(s.Tags))
	}
}

// TestPublisherFaultVisibility pins the fault view: sampling between
// injection and recovery shows the active faults and their coordinates.
func TestPublisherFaultVisibility(t *testing.T) {
	box := &obs.Mailbox{}
	probe := &faultProbe{box: box}
	sc := observedScenario(probe)
	res := scenario.Run(sc)
	if res.Err != "" {
		t.Fatalf("run error: %s", res.Err)
	}
	if probe.at1ms == nil {
		t.Fatal("probe never sampled at 1 ms")
	}
	fs := probe.at1ms.Faults
	if fs == nil || len(fs.Active) != 2 {
		t.Fatalf("want 2 active faults at 1 ms, got %+v", fs)
	}
}

// faultProbe is a minimal observer capturing one snapshot at 1 ms, when
// the lossy(3,1) and down(5,2) faults are both applied.
type faultProbe struct {
	box   *obs.Mailbox
	cl    *opera.Cluster
	at1ms *obs.Snapshot
}

func (f *faultProbe) Attach(cl *opera.Cluster, _ eventsim.Time) {
	f.cl = cl
	cl.Engine().AtMetaCall(eventsim.Millisecond, f, nil)
}

func (f *faultProbe) OnEvent(any) {
	f.cl.Engine().MetaStep()
	f.at1ms = obs.Capture(f.cl)
}
