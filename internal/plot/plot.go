// Package plot renders small ASCII charts for terminal output — CDFs and
// time series from the experiment tables, so figure shapes can be eyeballed
// without leaving the repository (the CSVs under results/ remain the
// machine-readable artifacts).
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name string
	X, Y []float64
}

// Options controls chart geometry.
type Options struct {
	Width  int // plot area columns (default 60)
	Height int // plot area rows (default 16)
	LogX   bool
	Title  string
	XLabel string
	YLabel string
}

func (o *Options) defaults() {
	if o.Width <= 0 {
		o.Width = 60
	}
	if o.Height <= 0 {
		o.Height = 16
	}
}

var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render draws the series into a text chart. Each series gets a distinct
// marker; a legend and axis ranges are appended.
func Render(opt Options, series ...Series) string {
	opt.defaults()
	// Bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if opt.LogX {
				if x <= 0 {
					continue
				}
				x = math.Log10(x)
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if math.IsInf(minX, 1) || minX == maxX && minY == maxY {
		if math.IsInf(minX, 1) {
			return "(no data)\n"
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, opt.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opt.Width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if opt.LogX {
				if x <= 0 {
					continue
				}
				x = math.Log10(x)
			}
			col := int((x - minX) / (maxX - minX) * float64(opt.Width-1))
			row := opt.Height - 1 - int((y-minY)/(maxY-minY)*float64(opt.Height-1))
			if row >= 0 && row < opt.Height && col >= 0 && col < opt.Width {
				grid[row][col] = m
			}
		}
	}

	var b strings.Builder
	if opt.Title != "" {
		fmt.Fprintf(&b, "%s\n", opt.Title)
	}
	for r, row := range grid {
		yVal := maxY - (maxY-minY)*float64(r)/float64(opt.Height-1)
		fmt.Fprintf(&b, "%10.3g |%s|\n", yVal, string(row))
	}
	xlo, xhi := minX, maxX
	unit := ""
	if opt.LogX {
		xlo, xhi = math.Pow(10, minX), math.Pow(10, maxX)
		unit = " (log)"
	}
	fmt.Fprintf(&b, "%10s  %-*s\n", "", opt.Width, fmt.Sprintf("%.3g%s%s%.3g",
		xlo, strings.Repeat(" ", max(1, opt.Width-24)), unit+" ", xhi))
	if opt.XLabel != "" || opt.YLabel != "" {
		fmt.Fprintf(&b, "%10s  x: %s   y: %s\n", "", opt.XLabel, opt.YLabel)
	}
	for si, s := range series {
		fmt.Fprintf(&b, "%10s  %c %s\n", "", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// CDF builds a Series from sorted CDF points.
func CDF(name string, xs, fs []float64) Series {
	return Series{Name: name, X: xs, Y: fs}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
