package plot

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	out := Render(Options{Title: "t", Width: 30, Height: 8, XLabel: "hops", YLabel: "cdf"},
		Series{Name: "a", X: []float64{1, 2, 3}, Y: []float64{0.2, 0.6, 1.0}},
		Series{Name: "b", X: []float64{1, 2, 3}, Y: []float64{0.5, 0.9, 1.0}},
	)
	if !strings.Contains(out, "t\n") || !strings.Contains(out, "* a") || !strings.Contains(out, "o b") {
		t.Fatalf("render:\n%s", out)
	}
	if !strings.Contains(out, "x: hops") {
		t.Fatalf("labels missing:\n%s", out)
	}
	// Marker for the max point of series a should appear in the top row
	// region (y=1.0 shared with b's last point).
	lines := strings.Split(out, "\n")
	if len(lines) < 10 {
		t.Fatalf("too few lines: %d", len(lines))
	}
}

func TestRenderLogX(t *testing.T) {
	out := Render(Options{LogX: true, Width: 40, Height: 6},
		Series{Name: "flows", X: []float64{100, 1e4, 1e6, 1e9}, Y: []float64{0.1, 0.5, 0.9, 1}})
	if !strings.Contains(out, "(log)") {
		t.Fatalf("log axis not labelled:\n%s", out)
	}
	// Non-positive x values are skipped, not crashed on.
	out = Render(Options{LogX: true},
		Series{Name: "bad", X: []float64{0, 10}, Y: []float64{0, 1}})
	if out == "" {
		t.Fatal("empty render")
	}
}

func TestRenderEmpty(t *testing.T) {
	if out := Render(Options{}); out != "(no data)\n" {
		t.Fatalf("empty = %q", out)
	}
}

func TestRenderDegenerate(t *testing.T) {
	// Single point: bounds degenerate; must not divide by zero.
	out := Render(Options{}, Series{Name: "p", X: []float64{5}, Y: []float64{0.5}})
	if !strings.Contains(out, "p") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestCDFHelper(t *testing.T) {
	s := CDF("x", []float64{1, 2}, []float64{0.5, 1})
	if s.Name != "x" || len(s.X) != 2 {
		t.Fatal("bad series")
	}
}
