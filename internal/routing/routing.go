// Package routing builds and queries per-topology-slice forwarding tables.
//
// Opera's ToRs forward low-latency packets along expander paths that change
// every topology slice (§4.3): each ToR holds, per slice, a next-hop entry
// for every destination rack. This package precomputes those tables from
// port maps (which uplink reaches which rack during which slice), retaining
// every equal-cost uplink so the simulator can spray packets across the
// path diversity of each slice, and validates the loop-freedom invariant
// that makes ε a sound drain bound.
//
// The same builder serves the static expander baseline (a single eternal
// "slice") and the failure analysis (port maps with failed links masked
// out). It also implements the P4 rule-count model behind Table 1.
package routing

import (
	"fmt"
	"math/bits"

	"github.com/opera-net/opera/internal/topology"
)

// Unreachable is the distance stored for unreachable rack pairs.
const Unreachable = 0xFF

// PortMap describes connectivity during one topology slice:
// PortMap[rack][uplink] is the peer rack reached through that uplink, or -1
// if the uplink is unusable this slice (transitioning switch, self-loop
// matching entry, or failed link).
type PortMap [][]int32

// NumUplinks returns the uplink count (ports per rack).
func (pm PortMap) NumUplinks() int {
	if len(pm) == 0 {
		return 0
	}
	return len(pm[0])
}

// Tables holds per-slice next-hop state for every (source, destination)
// rack pair. Uplink sets are bitmasks (bit i = uplink i usable on a
// shortest path), so a table cell is five bytes; the paper-scale 108-rack
// network's full cycle fits in ~6 MB.
type Tables struct {
	N      int // racks
	U      int // uplinks per rack
	Slices int

	dist []uint8  // [slice*N*N + src*N + dst]
	mask []uint32 // same indexing; bit u set ⇒ uplink u lies on a shortest path
}

// Build constructs tables from one PortMap per slice. All maps must agree
// on rack and uplink counts, and uplinks must be at most 32.
func Build(maps []PortMap) (*Tables, error) {
	if len(maps) == 0 {
		return nil, fmt.Errorf("routing: no port maps")
	}
	n := len(maps[0])
	u := maps[0].NumUplinks()
	if u > 32 {
		return nil, fmt.Errorf("routing: %d uplinks exceed 32-bit mask", u)
	}
	t := &Tables{
		N:      n,
		U:      u,
		Slices: len(maps),
		dist:   make([]uint8, len(maps)*n*n),
		mask:   make([]uint32, len(maps)*n*n),
	}
	// Scratch BFS state reused across slices.
	distFrom := make([][]int32, n) // distFrom[v] filled per slice
	for i := range distFrom {
		distFrom[i] = make([]int32, n)
	}
	queue := make([]int32, 0, n)

	for s, pm := range maps {
		if len(pm) != n || pm.NumUplinks() != u {
			return nil, fmt.Errorf("routing: slice %d port map has inconsistent shape", s)
		}
		// BFS from every rack over this slice's connectivity.
		for src := 0; src < n; src++ {
			d := distFrom[src]
			for i := range d {
				d[i] = -1
			}
			d[src] = 0
			queue = queue[:0]
			queue = append(queue, int32(src))
			for len(queue) > 0 {
				v := queue[0]
				queue = queue[1:]
				for _, peer := range pm[v] {
					if peer < 0 || peer == v {
						continue
					}
					if d[peer] == -1 {
						d[peer] = d[v] + 1
						queue = append(queue, peer)
					}
				}
			}
		}
		// Fill next-hop masks: uplink k of src helps toward dst iff its
		// peer is one hop closer.
		base := s * n * n
		for src := 0; src < n; src++ {
			dSrc := distFrom[src]
			for dst := 0; dst < n; dst++ {
				idx := base + src*n + dst
				if dst == src {
					t.dist[idx] = 0
					continue
				}
				if dSrc[dst] < 0 {
					t.dist[idx] = Unreachable
					continue
				}
				t.dist[idx] = uint8(dSrc[dst])
				var m uint32
				for k, peer := range pm[src] {
					if peer < 0 || int(peer) == src {
						continue
					}
					if distFrom[peer][dst] == dSrc[dst]-1 {
						m |= 1 << uint(k)
					}
				}
				t.mask[idx] = m
			}
		}
	}
	return t, nil
}

// MustBuild is Build but panics on error.
func MustBuild(maps []PortMap) *Tables {
	t, err := Build(maps)
	if err != nil {
		panic(err)
	}
	return t
}

// Dist returns the hop distance from src to dst during slice s, or
// Unreachable.
func (t *Tables) Dist(slice, src, dst int) int {
	return int(t.dist[t.idx(slice, src, dst)])
}

// Mask returns the equal-cost uplink bitmask from src toward dst during
// slice s. A zero mask with src != dst means unreachable.
func (t *Tables) Mask(slice, src, dst int) uint32 {
	return t.mask[t.idx(slice, src, dst)]
}

// PickUplink selects one uplink from the equal-cost set using the caller's
// random value (e.g. per-packet), returning -1 if none. Selection is
// uniform across set bits.
func (t *Tables) PickUplink(slice, src, dst int, rnd uint32) int {
	m := t.mask[t.idx(slice, src, dst)]
	if m == 0 {
		return -1
	}
	k := int(rnd) % bits.OnesCount32(m)
	for {
		low := bits.TrailingZeros32(m)
		if k == 0 {
			return low
		}
		m &^= 1 << uint(low)
		k--
	}
}

// MaxDist returns the largest finite distance across all slices and pairs —
// the worst-case path length that sizes ε (§4.1).
func (t *Tables) MaxDist() int {
	max := 0
	for _, d := range t.dist {
		if d != Unreachable && int(d) > max {
			max = int(d)
		}
	}
	return max
}

func (t *Tables) idx(slice, src, dst int) int {
	if slice < 0 || slice >= t.Slices {
		panic(fmt.Sprintf("routing: slice %d out of range [0,%d)", slice, t.Slices))
	}
	return slice*t.N*t.N + src*t.N + dst
}

// Validate checks loop freedom: for every (slice, src, dst) and every
// uplink in the mask, the peer's distance to dst is exactly dist-1. This is
// the invariant that guarantees a packet forwarded within a single slice
// strictly approaches its destination.
func (t *Tables) Validate(maps []PortMap) error {
	if len(maps) != t.Slices {
		return fmt.Errorf("routing: validate: %d maps for %d slices", len(maps), t.Slices)
	}
	for s := 0; s < t.Slices; s++ {
		pm := maps[s]
		for src := 0; src < t.N; src++ {
			for dst := 0; dst < t.N; dst++ {
				if src == dst {
					continue
				}
				d := t.Dist(s, src, dst)
				m := t.Mask(s, src, dst)
				if d == Unreachable {
					if m != 0 {
						return fmt.Errorf("routing: slice %d (%d→%d): unreachable but mask %b", s, src, dst, m)
					}
					continue
				}
				if m == 0 {
					return fmt.Errorf("routing: slice %d (%d→%d): reachable (dist %d) but empty mask", s, src, dst, d)
				}
				for k := 0; k < t.U; k++ {
					if m&(1<<uint(k)) == 0 {
						continue
					}
					peer := pm[src][k]
					if peer < 0 {
						return fmt.Errorf("routing: slice %d (%d→%d): masked uplink %d unusable", s, src, dst, k)
					}
					if pd := t.Dist(s, int(peer), dst); pd != d-1 {
						return fmt.Errorf("routing: slice %d (%d→%d): uplink %d peer %d at dist %d, want %d",
							s, src, dst, k, peer, pd, d-1)
					}
				}
			}
		}
	}
	return nil
}

// OperaPortMaps derives one PortMap per slice-in-cycle from an Opera
// topology: uplink k of each rack reaches its matching peer, except when
// switch k is transitioning (drain rule, §3.1.1) or the matching entry is a
// self-loop.
func OperaPortMaps(o *topology.Opera) []PortMap {
	maps := make([]PortMap, o.SlicesPerCycle())
	for s := range maps {
		pm := make(PortMap, o.NumRacks())
		for r := range pm {
			pm[r] = make([]int32, o.Uplinks())
		}
		for sw := 0; sw < o.Uplinks(); sw++ {
			if o.IsTransitioning(sw, s) {
				for r := range pm {
					pm[r][sw] = -1
				}
				continue
			}
			m := o.SwitchMatching(sw, s)
			for r := range pm {
				peer := m.Peer(r)
				if peer == r {
					pm[r][sw] = -1
				} else {
					pm[r][sw] = int32(peer)
				}
			}
		}
		maps[s] = pm
	}
	return maps
}

// ExpanderPortMap derives the single static PortMap of an expander network:
// uplink k of each rack is its k-th neighbor.
func ExpanderPortMap(e *topology.Expander) []PortMap {
	pm := make(PortMap, e.NumRacks)
	for r := 0; r < e.NumRacks; r++ {
		ns := e.G.Neighbors(r)
		row := make([]int32, e.Degree)
		for i := range row {
			if i < len(ns) {
				row[i] = ns[i]
			} else {
				row[i] = -1
			}
		}
		pm[r] = row
	}
	return []PortMap{pm}
}
