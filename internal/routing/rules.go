package routing

// This file models the P4 forwarding-state footprint of §6.2 (Table 1).
//
// A straightforward Opera ruleset needs, per ToR:
//   - low-latency rules: one per (topology slice, non-local destination
//     rack) — N slices × (N-1) destinations;
//   - bulk rules: one per (topology slice, direct circuit) — each slice
//     offers u-1 usable direct circuits (one per non-transitioning switch).
//
// Total: N·(N-1) + N·(u-1) = N·(N+u-2) entries, which reproduces Table 1
// exactly for the paper's datacenter sizes.

// TofinoRuleCapacity is the approximate number of table entries the
// Barefoot Tofino 65x100GE switch of §6.2 accommodates, back-derived from
// the utilization column of Table 1 (1,461,600 entries = 85.9%).
const TofinoRuleCapacity = 1_700_000

// RuleCount returns the number of forwarding entries an Opera ToR needs for
// a datacenter with numRacks racks and uplinks rotor uplinks per ToR,
// assuming the ungrouped schedule (slices per cycle = numRacks).
func RuleCount(numRacks, uplinks int) int {
	if numRacks < 2 || uplinks < 1 {
		return 0
	}
	return numRacks*(numRacks-1) + numRacks*(uplinks-1)
}

// RuleUtilization returns RuleCount as a fraction of Tofino capacity.
func RuleUtilization(numRacks, uplinks int) float64 {
	return float64(RuleCount(numRacks, uplinks)) / float64(TofinoRuleCapacity)
}

// Table1Row is one row of Table 1.
type Table1Row struct {
	Racks       int
	Uplinks     int
	Entries     int
	Utilization float64 // fraction of switch capacity
}

// Table1Sizes lists the (racks, uplinks) datacenter sizes evaluated in
// Table 1 of the paper.
var Table1Sizes = []struct{ Racks, Uplinks int }{
	{108, 6},
	{252, 9},
	{520, 13},
	{768, 16},
	{1008, 18},
	{1200, 20},
}

// Table1 regenerates Table 1: entry counts and switch-memory utilization
// for Opera rulesets at increasing datacenter sizes.
func Table1() []Table1Row {
	rows := make([]Table1Row, len(Table1Sizes))
	for i, sz := range Table1Sizes {
		rows[i] = Table1Row{
			Racks:       sz.Racks,
			Uplinks:     sz.Uplinks,
			Entries:     RuleCount(sz.Racks, sz.Uplinks),
			Utilization: RuleUtilization(sz.Racks, sz.Uplinks),
		}
	}
	return rows
}

// CountRules measures the actual forwarding-state footprint of a built
// Opera ruleset, per ToR, the way the paper's P4 program lays it out
// (§4.3/§6.2):
//
//   - one low-latency rule per (topology slice, non-local destination
//     rack) — the match key the P4 table uses, regardless of how many
//     equal-cost uplinks the action set carries;
//   - one bulk rule per (topology slice, directly connected rack).
//
// It exists to validate the closed-form RuleCount model against the real
// tables this repository builds.
func CountRules(t *Tables, maps []PortMap) (lowLatency, bulk int) {
	for s := 0; s < t.Slices; s++ {
		src := 0 // per-ToR footprint: count rack 0's rules
		for dst := 0; dst < t.N; dst++ {
			if dst == src {
				continue
			}
			if t.Mask(s, src, dst) != 0 {
				lowLatency++
			}
		}
		for _, peer := range maps[s][src] {
			if peer >= 0 {
				bulk++
			}
		}
	}
	return lowLatency, bulk
}
