package routing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/opera-net/opera/internal/topology"
)

func lineMap(n int) PortMap {
	// racks in a line: 0-1-2-...-n-1, two uplinks each (left, right).
	pm := make(PortMap, n)
	for r := 0; r < n; r++ {
		left, right := int32(r-1), int32(r+1)
		if r == 0 {
			left = -1
		}
		if r == n-1 {
			right = -1
		}
		pm[r] = []int32{left, right}
	}
	return pm
}

func TestBuildLine(t *testing.T) {
	tb := MustBuild([]PortMap{lineMap(5)})
	if tb.Dist(0, 0, 4) != 4 {
		t.Fatalf("dist 0→4 = %d, want 4", tb.Dist(0, 0, 4))
	}
	if tb.Dist(0, 2, 2) != 0 {
		t.Fatal("self distance nonzero")
	}
	// From rack 2 toward 4, only the "right" uplink (index 1) helps.
	if m := tb.Mask(0, 2, 4); m != 0b10 {
		t.Fatalf("mask = %b, want 10", m)
	}
	if m := tb.Mask(0, 2, 0); m != 0b01 {
		t.Fatalf("mask = %b, want 01", m)
	}
	if err := tb.Validate([]PortMap{lineMap(5)}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildUnreachable(t *testing.T) {
	pm := PortMap{
		{1, -1},
		{0, -1},
		{3, -1},
		{2, -1},
	}
	tb := MustBuild([]PortMap{pm})
	if tb.Dist(0, 0, 2) != Unreachable {
		t.Fatal("disconnected pair not marked unreachable")
	}
	if tb.Mask(0, 0, 2) != 0 {
		t.Fatal("unreachable pair has next hops")
	}
	if tb.PickUplink(0, 0, 2, 99) != -1 {
		t.Fatal("PickUplink for unreachable should be -1")
	}
	if err := tb.Validate([]PortMap{pm}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Fatal("empty maps accepted")
	}
	wide := make(PortMap, 2)
	wide[0] = make([]int32, 33)
	wide[1] = make([]int32, 33)
	if _, err := Build([]PortMap{wide}); err == nil {
		t.Fatal(">32 uplinks accepted")
	}
	// inconsistent shapes
	if _, err := Build([]PortMap{lineMap(4), lineMap(5)}); err == nil {
		t.Fatal("inconsistent slice shapes accepted")
	}
}

func TestPickUplinkUniform(t *testing.T) {
	// Ring of 4: rack 0 to rack 2 has two equal-cost uplinks.
	pm := PortMap{
		{1, 3},
		{2, 0},
		{3, 1},
		{0, 2},
	}
	tb := MustBuild([]PortMap{pm})
	if tb.Dist(0, 0, 2) != 2 {
		t.Fatalf("dist = %d", tb.Dist(0, 0, 2))
	}
	counts := map[int]int{}
	for i := 0; i < 1000; i++ {
		counts[tb.PickUplink(0, 0, 2, uint32(i))]++
	}
	if len(counts) != 2 {
		t.Fatalf("uplink choices = %v, want both", counts)
	}
	if math.Abs(float64(counts[0]-counts[1])) > 100 {
		t.Fatalf("spray is unbalanced: %v", counts)
	}
}

func TestOperaTables(t *testing.T) {
	o := topology.MustNewOpera(topology.Config{
		NumRacks: 16, HostsPerRack: 4, NumSwitches: 4, Seed: 1,
	})
	maps := OperaPortMaps(o)
	if len(maps) != o.SlicesPerCycle() {
		t.Fatalf("%d maps for %d slices", len(maps), o.SlicesPerCycle())
	}
	tb := MustBuild(maps)
	if err := tb.Validate(maps); err != nil {
		t.Fatal(err)
	}
	// Every pair reachable every slice (the always-on guarantee, §3.1.2).
	for s := 0; s < tb.Slices; s++ {
		for a := 0; a < tb.N; a++ {
			for b := 0; b < tb.N; b++ {
				if a != b && tb.Dist(s, a, b) == Unreachable {
					t.Fatalf("slice %d: pair (%d,%d) unreachable", s, a, b)
				}
			}
		}
	}
	// Transitioning switches must never appear in masks.
	for s := 0; s < tb.Slices; s++ {
		for _, sw := range o.Transitioning(s) {
			for a := 0; a < tb.N; a++ {
				for b := 0; b < tb.N; b++ {
					if tb.Mask(s, a, b)&(1<<uint(sw)) != 0 {
						t.Fatalf("slice %d: transitioning switch %d in mask (%d→%d)", s, sw, a, b)
					}
				}
			}
		}
	}
}

func TestOperaPaperWorstCasePathLength(t *testing.T) {
	// §4.1 sizes ε from a worst-case path length of 5 ToR-to-ToR hops for
	// the 108-rack network (Figure 4 shows paths ≤ 5 hops). The builder
	// enforces this via design-time realization testing (§3.3).
	o := topology.MustNewOpera(topology.Config{
		NumRacks: 108, HostsPerRack: 6, NumSwitches: 6, Seed: 1, MaxDiameter: 5,
	})
	tb := MustBuild(OperaPortMaps(o))
	if max := tb.MaxDist(); max > 5 {
		t.Fatalf("worst-case path %d hops, paper expects <= 5", max)
	}
}

func TestExpanderPortMap(t *testing.T) {
	e := topology.MustNewExpander(32, 4, 5, 1)
	maps := ExpanderPortMap(e)
	if len(maps) != 1 {
		t.Fatalf("expander should have 1 slice, got %d", len(maps))
	}
	tb := MustBuild(maps)
	if err := tb.Validate(maps); err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 32; a++ {
		for b := 0; b < 32; b++ {
			if a != b && tb.Dist(0, a, b) == Unreachable {
				t.Fatalf("pair (%d,%d) unreachable in expander", a, b)
			}
		}
	}
}

// Property: tables built from random connected port maps always validate
// (loop freedom) and agree with direct BFS reachability.
func TestTablesValidateProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(10)
		u := 2 + rng.Intn(3)
		// Random symmetric port map built from u random matchings.
		pm := make(PortMap, n)
		for r := range pm {
			pm[r] = make([]int32, u)
			for k := range pm[r] {
				pm[r][k] = -1
			}
		}
		for k := 0; k < u; k++ {
			perm := rng.Perm(n)
			for i := 0; i+1 < n; i += 2 {
				a, b := perm[i], perm[i+1]
				pm[a][k] = int32(b)
				pm[b][k] = int32(a)
			}
		}
		tb, err := Build([]PortMap{pm})
		if err != nil {
			return false
		}
		return tb.Validate([]PortMap{pm}) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRuleCountTable1(t *testing.T) {
	// Exact reproduction of Table 1's entry counts.
	want := map[int]int{
		108:  12096,
		252:  65268,
		520:  276120,
		768:  600576,
		1008: 1032192,
		1200: 1461600,
	}
	for _, row := range Table1() {
		if got := row.Entries; got != want[row.Racks] {
			t.Errorf("racks=%d: entries=%d, want %d", row.Racks, got, want[row.Racks])
		}
	}
	// Utilization column (percent, one decimal).
	wantUtil := map[int]float64{108: 0.7, 252: 3.8, 520: 16.2, 768: 35.3, 1008: 60.7, 1200: 85.9}
	for _, row := range Table1() {
		got := math.Round(row.Utilization*1000) / 10
		if math.Abs(got-wantUtil[row.Racks]) > 0.15 {
			t.Errorf("racks=%d: utilization=%.1f%%, want %.1f%%", row.Racks, got, wantUtil[row.Racks])
		}
	}
}

func TestRuleCountDegenerate(t *testing.T) {
	if RuleCount(1, 6) != 0 || RuleCount(10, 0) != 0 {
		t.Fatal("degenerate sizes should count zero rules")
	}
}

func TestCountRulesMatchesModel(t *testing.T) {
	// Table 1's closed form N(N-1) + N(u-1) must equal the footprint of
	// the tables this repository actually builds. The low-latency count is
	// exact: every destination is reachable in every slice. The bulk count
	// is N(u-1) minus the self-loop slices: rack 0 has a self-loop entry
	// in exactly one matching, shown for GroupSize slices per cycle, and
	// one port is transitioning each slice.
	o := topology.MustNewOpera(topology.Config{
		NumRacks: 24, HostsPerRack: 4, NumSwitches: 4, Seed: 1,
	})
	maps := OperaPortMaps(o)
	tb := MustBuild(maps)
	ll, bulk := CountRules(tb, maps)
	n := o.NumRacks()
	u := o.Uplinks()
	if ll != n*(n-1) {
		t.Fatalf("low-latency rules = %d, want %d", ll, n*(n-1))
	}
	// Rack 0's self-loop is shown for GroupSize slices per cycle; in one
	// of those its port is also the transitioning one (already excluded),
	// so G-1 additional slices lose a bulk rule.
	wantBulk := n*(u-1) - (o.Config().GroupSize - 1)
	if bulk != wantBulk {
		t.Fatalf("bulk rules = %d, want %d", bulk, wantBulk)
	}
	// The model is within one self-loop hold of the measured count.
	model := RuleCount(n, u)
	if diff := model - (ll + bulk); diff < 0 || diff > o.Config().GroupSize {
		t.Fatalf("model %d vs measured %d", model, ll+bulk)
	}
}

func BenchmarkBuildOperaTables108(b *testing.B) {
	o := topology.MustNewOpera(topology.Config{
		NumRacks: 108, HostsPerRack: 6, NumSwitches: 6, Seed: 1,
	})
	maps := OperaPortMaps(o)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MustBuild(maps)
	}
}
