// Package prototype emulates the paper's §6 hardware prototype: eight ToR
// switches and four circuit switches realized as virtual switches inside a
// single Barefoot Tofino, with eight end hosts running an MPI shuffle and a
// low-latency RDMA ping-pong.
//
// What Figure 13 measures is a queueing effect, not optical behaviour: each
// P4 pipeline traversal costs ≈3 µs, and in the presence of bulk background
// traffic a low-latency packet can wait behind at most one MTU currently
// serializing at each of up to eight serialization points per direction
// (16 per ping-pong RTT), each worth up to 1.2 µs at 10 Gb/s. This package
// reproduces those RTT distributions by Monte-Carlo over the real 8-ToR
// Opera topology's path lengths — the substitution for the physical Tofino
// documented in DESIGN.md.
package prototype

import (
	"fmt"
	"math/rand"

	"github.com/opera-net/opera/internal/stats"
	"github.com/opera-net/opera/internal/topology"
)

// Params models the testbed's timing constants.
type Params struct {
	// PerHopPipeline is the P4 forwarding latency per switch traversal
	// (§6.1 reports ≈3 µs through the Tofino pipeline).
	PerHopPipelineUs float64
	// MTUSerializationUs is the worst-case blocking per serialization
	// point (one 1500 B MTU at 10 Gb/s).
	MTUSerializationUs float64
	// HostOverheadUs is the RoCE/MPI end-host overhead per RTT, with
	// HostJitterUs of tail variance.
	HostOverheadUs float64
	HostJitterUs   float64
	// Samples is the number of ping-pong exchanges to draw.
	Samples int
	Seed    int64
}

// DefaultParams matches §6.1.
func DefaultParams() Params {
	return Params{
		PerHopPipelineUs:   3.0,
		MTUSerializationUs: 1.2,
		HostOverheadUs:     2.0,
		HostJitterUs:       0.8,
		Samples:            20000,
		Seed:               1,
	}
}

// Testbed is the emulated 8-ToR, 4-circuit-switch prototype.
type Testbed struct {
	topo   *topology.Opera
	params Params
}

// New builds the testbed over the same 8-ToR topology as Figure 5.
func New(params Params) (*Testbed, error) {
	topo, err := topology.NewOpera(topology.Config{
		NumRacks:     8,
		HostsPerRack: 1,
		NumSwitches:  4,
		Seed:         params.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("prototype: %w", err)
	}
	return &Testbed{topo: topo, params: params}, nil
}

// RTTs runs the ping-pong experiment and returns per-exchange RTTs in
// microseconds, with and without bulk background traffic.
func (tb *Testbed) RTTs(withBulk bool) *stats.Sample {
	p := tb.params
	rng := rand.New(rand.NewSource(p.Seed + 17))
	var out stats.Sample
	n := tb.topo.NumRacks()
	slices := tb.topo.SlicesPerCycle()
	for i := 0; i < p.Samples; i++ {
		src := rng.Intn(n)
		dst := rng.Intn(n - 1)
		if dst >= src {
			dst++
		}
		// The ping lands in a random topology slice; use its expander
		// distance.
		slice := rng.Intn(slices)
		g := tb.topo.SliceGraph(slice)
		h := g.BFS(src)[dst]
		if h < 0 {
			continue // disconnected slice cannot occur post-validation
		}
		rtt := tb.oneWay(h, withBulk, rng) + tb.oneWay(h, withBulk, rng) +
			p.HostOverheadUs + rng.ExpFloat64()*p.HostJitterUs
		out.Add(rtt)
	}
	return &out
}

// oneWay returns the one-way latency in µs for a path of h ToR-to-ToR hops.
func (tb *Testbed) oneWay(h int, withBulk bool, rng *rand.Rand) float64 {
	p := tb.params
	// §6.1: ≈3 µs of P4 pipeline per ToR-to-ToR hop (ToR + emulated
	// circuit switch share the ASIC), "up to 9 µs depending on path
	// length" for the testbed's ≤3-hop paths.
	lat := float64(h) * p.PerHopPipelineUs
	// Serialization points: host→ToR, each hop's two emulated-circuit
	// links, ToR→host: 2 + 2h (≈8 for the longest paths, §6.1), each
	// blocking behind up to one MTU of bulk currently serializing.
	if withBulk {
		points := 2 + 2*h
		for i := 0; i < points; i++ {
			lat += rng.Float64() * p.MTUSerializationUs
		}
	}
	return lat
}

// Figure13 returns the two RTT distributions of Figure 13.
func Figure13(params Params) (withoutBulk, withBulk *stats.Sample, err error) {
	tb, err := New(params)
	if err != nil {
		return nil, nil, err
	}
	return tb.RTTs(false), tb.RTTs(true), nil
}
