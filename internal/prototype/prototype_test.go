package prototype

import (
	"testing"
)

func TestFigure13Shapes(t *testing.T) {
	without, with, err := Figure13(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if without.N() < 10000 || with.N() < 10000 {
		t.Fatalf("sample sizes %d/%d", without.N(), with.N())
	}
	// §6.1: without bulk, RTT is path-length dominated — up to ~9 µs each
	// way plus host overhead: median in the 5–20 µs band.
	medW := without.Median()
	if medW < 4 || medW > 20 {
		t.Fatalf("no-bulk median RTT = %vµs", medW)
	}
	// With bulk, queueing behind MTUs adds up to ~19.2 µs per RTT: the
	// distribution shifts right and smooths (Figure 13).
	if with.Median() <= without.Median() {
		t.Fatalf("bulk did not increase RTT: %v <= %v", with.Median(), without.Median())
	}
	shift := with.Percentile(99) - without.Percentile(99)
	if shift < 2 || shift > 25 {
		t.Fatalf("99p shift = %vµs, want within the 16×1.2µs budget", shift)
	}
	// Upper bound sanity: max RTT ≈ 2×(3 hops×3µs) + 16×1.2µs + overhead.
	if max := with.Max(); max > 50 {
		t.Fatalf("max RTT = %vµs, implausible", max)
	}
}

func TestTestbedDeterminism(t *testing.T) {
	a, _, err := Figure13(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Figure13(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if a.Mean() != b.Mean() {
		t.Fatal("prototype runs are not deterministic")
	}
}

func TestTestbedTopologyMatchesFigure5(t *testing.T) {
	tb, err := New(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if tb.topo.NumRacks() != 8 || tb.topo.Uplinks() != 4 {
		t.Fatalf("testbed is %d ToRs × %d switches, want 8×4", tb.topo.NumRacks(), tb.topo.Uplinks())
	}
	if tb.topo.MatchingsPerSwitch() != 2 {
		t.Fatalf("matchings per switch = %d, want 2 (A and B)", tb.topo.MatchingsPerSwitch())
	}
}
