// Package trace provides lightweight simulation telemetry: periodic
// sampling of port queue depths and utilization, and an append-only flow
// event log. The htsim lineage of this simulator exposes equivalent
// loggers; experiments use these to diagnose where queueing happens (e.g.
// confirming that Opera's low-latency queues stay within the 12 KB bound
// that ε is sized against, §4.1).
package trace

import (
	"fmt"
	"sort"
	"strings"

	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/sim"
	"github.com/opera-net/opera/internal/stats"
)

// PortProbe samples one port's queue depths on a fixed period.
type PortProbe struct {
	Name string

	Ctrl stats.Sample // bytes observed in the control/header queue
	LL   stats.Sample // bytes in the low-latency data queue
	Bulk stats.Sample // bytes in the bulk queue

	port *sim.Port
}

// Sampler drives a set of PortProbes from the simulation clock.
type Sampler struct {
	eng     *eventsim.Engine
	period  eventsim.Time
	probes  []*PortProbe
	stopped bool
}

// NewSampler creates a sampler with the given sampling period.
func NewSampler(eng *eventsim.Engine, period eventsim.Time) *Sampler {
	if period <= 0 {
		panic("trace: non-positive sampling period")
	}
	return &Sampler{eng: eng, period: period}
}

// Watch registers a port for sampling.
func (s *Sampler) Watch(name string, p *sim.Port) *PortProbe {
	probe := &PortProbe{Name: name, port: p}
	s.probes = append(s.probes, probe)
	return probe
}

// Start begins periodic sampling; call after registering probes.
func (s *Sampler) Start() {
	var tick func()
	tick = func() {
		if s.stopped {
			return
		}
		for _, pr := range s.probes {
			pr.Ctrl.Add(float64(pr.port.QueuedBytes(sim.ClassControl)))
			pr.LL.Add(float64(pr.port.QueuedBytes(sim.ClassLowLatency)))
			pr.Bulk.Add(float64(pr.port.QueuedBytes(sim.ClassBulk)))
		}
		s.eng.After(s.period, tick)
	}
	s.eng.After(s.period, tick)
}

// Stop ends sampling after the current tick.
func (s *Sampler) Stop() { s.stopped = true }

// Probes returns the registered probes.
func (s *Sampler) Probes() []*PortProbe { return s.probes }

// Report renders a per-port queue-depth summary sorted by peak LL depth.
func (s *Sampler) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %12s %12s %12s %12s\n",
		"port", "ll-mean(B)", "ll-max(B)", "bulk-max(B)", "ctrl-max(B)")
	probes := append([]*PortProbe(nil), s.probes...)
	sort.Slice(probes, func(i, j int) bool { return probes[i].LL.Max() > probes[j].LL.Max() })
	for _, pr := range probes {
		if pr.LL.N() == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-24s %12.0f %12.0f %12.0f %12.0f\n",
			pr.Name, pr.LL.Mean(), pr.LL.Max(), pr.Bulk.Max(), pr.Ctrl.Max())
	}
	return b.String()
}

// FlowEvent is one entry in a flow event log.
type FlowEvent struct {
	At    eventsim.Time
	Flow  int64
	What  string // "start", "done", "retransmit", ...
	Extra int64
}

// FlowLog is an append-only in-memory event log with O(1) append.
type FlowLog struct {
	events []FlowEvent
	limit  int
}

// NewFlowLog creates a log bounded to limit events (0 = unbounded).
func NewFlowLog(limit int) *FlowLog {
	return &FlowLog{limit: limit}
}

// Add appends an event unless the bound is reached.
func (l *FlowLog) Add(at eventsim.Time, flow int64, what string, extra int64) {
	if l.limit > 0 && len(l.events) >= l.limit {
		return
	}
	l.events = append(l.events, FlowEvent{At: at, Flow: flow, What: what, Extra: extra})
}

// Events returns the recorded events.
func (l *FlowLog) Events() []FlowEvent { return l.events }

// Filter returns events matching the predicate.
func (l *FlowLog) Filter(pred func(FlowEvent) bool) []FlowEvent {
	var out []FlowEvent
	for _, e := range l.events {
		if pred(e) {
			out = append(out, e)
		}
	}
	return out
}

// AttachFlowLifecycle wires a metrics collector's completion callback into
// the log, chaining any existing callback.
func AttachFlowLifecycle(m *sim.Metrics, l *FlowLog) {
	prev := m.OnFlowDone
	m.OnFlowDone = func(f *sim.Flow) {
		l.Add(f.End, f.ID, "done", f.Size)
		if prev != nil {
			prev(f)
		}
	}
}

// UtilizationReport summarizes transmitted bytes per class for a set of
// named ports over an interval, as fractions of link capacity.
func UtilizationReport(ports map[string]*sim.Port, interval eventsim.Time, rateGbps float64) string {
	capacity := float64(interval) * rateGbps / 8 // bytes over the interval
	names := make([]string, 0, len(ports))
	for n := range ports {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %10s %10s %10s\n", "port", "ctrl", "lowlat", "bulk")
	for _, n := range names {
		st := ports[n].Stats
		fmt.Fprintf(&b, "%-24s %9.1f%% %9.1f%% %9.1f%%\n", n,
			100*float64(st.Tx[sim.ClassControl].Bytes)/capacity,
			100*float64(st.Tx[sim.ClassLowLatency].Bytes)/capacity,
			100*float64(st.Tx[sim.ClassBulk].Bytes)/capacity)
	}
	return b.String()
}
