package trace

import (
	"strings"
	"testing"

	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/sim"
	"github.com/opera-net/opera/internal/topology"
)

type sink struct{}

func (sink) Receive(p *sim.Packet, _ *sim.Port) { p.Release() }

func TestSamplerObservesQueues(t *testing.T) {
	eng := eventsim.New()
	cfg := sim.DefaultConfig()
	pt := sim.NewPort(eng, &cfg, "p", sink{})
	pt.SetEnabled(false)
	for i := 0; i < 4; i++ {
		p := sim.NewPacket()
		p.Kind = sim.KindData
		p.Class = sim.ClassLowLatency
		p.Size = 1500
		pt.Enqueue(p)
	}
	s := NewSampler(eng, 10*eventsim.Microsecond)
	probe := s.Watch("p", pt)
	s.Start()
	eng.RunUntil(100 * eventsim.Microsecond)
	if probe.LL.N() < 5 {
		t.Fatalf("samples = %d", probe.LL.N())
	}
	if probe.LL.Max() != 6000 {
		t.Fatalf("max LL depth = %v, want 6000", probe.LL.Max())
	}
	pt.SetEnabled(true)
	eng.RunUntil(300 * eventsim.Microsecond)
	if probe.LL.Min() != 0 {
		t.Fatalf("queue never drained: min=%v", probe.LL.Min())
	}
	rep := s.Report()
	if !strings.Contains(rep, "p") || !strings.Contains(rep, "6000") {
		t.Fatalf("report:\n%s", rep)
	}
	s.Stop()
}

func TestSamplerPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewSampler(eventsim.New(), 0)
}

func TestFlowLog(t *testing.T) {
	l := NewFlowLog(3)
	l.Add(1, 10, "start", 0)
	l.Add(2, 10, "done", 500)
	l.Add(3, 11, "start", 0)
	l.Add(4, 11, "done", 900) // over limit, dropped
	if len(l.Events()) != 3 {
		t.Fatalf("events = %d", len(l.Events()))
	}
	done := l.Filter(func(e FlowEvent) bool { return e.What == "done" })
	if len(done) != 1 || done[0].Extra != 500 {
		t.Fatalf("filter = %+v", done)
	}
}

func TestAttachFlowLifecycle(t *testing.T) {
	m := sim.NewMetrics()
	l := NewFlowLog(0)
	var prevCalled bool
	m.OnFlowDone = func(*sim.Flow) { prevCalled = true }
	AttachFlowLifecycle(m, l)
	f := &sim.Flow{ID: 7, Size: 123}
	m.AddFlow(f)
	m.FlowDone(f, 99)
	if len(l.Events()) != 1 || l.Events()[0].Flow != 7 || l.Events()[0].At != 99 {
		t.Fatalf("log = %+v", l.Events())
	}
	if !prevCalled {
		t.Fatal("chained callback not invoked")
	}
}

func TestUtilizationReport(t *testing.T) {
	eng := eventsim.New()
	cfg := sim.DefaultConfig()
	cfg.DataQueueBytes = 1 << 20 // no trimming: this test checks accounting
	pt := sim.NewPort(eng, &cfg, "p", sink{})
	for i := 0; i < 10; i++ {
		p := sim.NewPacket()
		p.Kind = sim.KindData
		p.Class = sim.ClassLowLatency
		p.Size = 1500
		pt.Enqueue(p)
	}
	eng.Run()
	rep := UtilizationReport(map[string]*sim.Port{"p": pt}, 100*eventsim.Microsecond, 10)
	// 15 kB over a 125 kB interval = 12%.
	if !strings.Contains(rep, "12.0%") {
		t.Fatalf("report:\n%s", rep)
	}
}

func TestSamplerOnLiveCluster(t *testing.T) {
	// End-to-end: sample an Opera ToR's uplinks under traffic and verify
	// the low-latency queues respect the 12 KB bound ε is sized against.
	eng := eventsim.New()
	cfg := sim.DefaultConfig()
	topoCluster(t, eng, cfg)
}

func topoCluster(t *testing.T, eng *eventsim.Engine, cfg sim.Config) {
	t.Helper()
	// Built via the sim package directly to keep trace decoupled from the
	// public facade.
	top, err := topologyFor()
	if err != nil {
		t.Fatal(err)
	}
	net := sim.NewOperaNet(eng, cfg, top, 3)
	s := NewSampler(eng, 5*eventsim.Microsecond)
	for sw := 0; sw < top.Uplinks(); sw++ {
		s.Watch("tor0-up", net.ToR(0).Uplink(sw))
	}
	s.Start()
	net.Start()
	eng.RunUntil(2 * eventsim.Millisecond)
	for _, pr := range s.Probes() {
		if pr.LL.Max() > float64(cfg.DataQueueBytes) {
			t.Fatalf("LL queue exceeded bound: %v > %d", pr.LL.Max(), cfg.DataQueueBytes)
		}
	}
}

func topologyFor() (*topology.Opera, error) {
	return topology.NewOpera(topology.Config{
		NumRacks: 8, HostsPerRack: 2, NumSwitches: 4, Seed: 1,
	})
}
