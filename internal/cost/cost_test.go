package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTable2(t *testing.T) {
	if got := StaticPortCost(); got != 215 {
		t.Fatalf("static port = $%v, want $215", got)
	}
	if got := OperaPortCost(); got != 275 {
		t.Fatalf("opera port = $%v, want $275", got)
	}
	// Appendix A: α ≈ 1.3.
	if a := EstimatedAlpha(); math.Abs(a-1.2790697674418605) > 1e-12 {
		t.Fatalf("alpha = %v", a)
	}
	var static, opera float64
	for _, row := range Table2() {
		static += row.Static
		opera += row.Opera
	}
	if static != StaticPortCost() || opera != OperaPortCost() {
		t.Fatal("Table 2 rows do not sum to totals")
	}
}

func TestOversubscription(t *testing.T) {
	// The paper's central comparison: 3:1 Clos ⇒ α = 4/3.
	if f := Oversubscription(4.0 / 3.0); math.Abs(f-3) > 1e-12 {
		t.Fatalf("F(4/3) = %v, want 3", f)
	}
	if a := AlphaForOversubscription(3); math.Abs(a-4.0/3.0) > 1e-12 {
		t.Fatalf("alpha(3) = %v", a)
	}
	// α = 1 ⇒ F = 4 (fully "free" core ports buy a 4:1 Clos... i.e. more
	// oversubscribed at equal cost), α = 4 ⇒ F = 1 (fully provisioned).
	if f := Oversubscription(4); f != 1 {
		t.Fatalf("F(4) = %v", f)
	}
}

func TestHostsFormula(t *testing.T) {
	// k=12, α=4/3 (F=3): H = 3·216 = 648 — the paper's network.
	if h := Hosts(12, 4.0/3.0); h != 648 {
		t.Fatalf("H(12, 4/3) = %d, want 648", h)
	}
	// k=24 same α: 5184 hosts (§5.6).
	if h := Hosts(24, 4.0/3.0); h != 5184 {
		t.Fatalf("H(24, 4/3) = %d, want 5184", h)
	}
}

func TestExpanderUplinks(t *testing.T) {
	// k=12, α=4/3: u = (4/3)·12/(7/3) = 48/7 ≈ 6.86 → 7, the paper's u=7
	// expander with d=5 (650 hosts over 130 racks).
	if u := ExpanderUplinks(12, 4.0/3.0); u != 7 {
		t.Fatalf("u(12, 4/3) = %d, want 7", u)
	}
	if u := ExpanderUplinks(24, 1.0); u != 12 {
		t.Fatalf("u(24, 1) = %d, want 12", u)
	}
}

func TestEquivalentsPaperFamily(t *testing.T) {
	e := Equivalents(12, 4.0/3.0)
	if e.ExpanderU != 7 || e.ExpanderD != 5 {
		t.Fatalf("expander %d:%d, want 7:5", e.ExpanderU, e.ExpanderD)
	}
	if e.OperaHostsPerRack != 6 {
		t.Fatalf("opera d = %d", e.OperaHostsPerRack)
	}
	// The paper's family: 648-host Opera (108 racks) vs 650-host u=7
	// expander (130 racks).
	if e.Hosts != 648 || e.ExpanderRacks != 130 || e.OperaRacks != 108 {
		t.Fatalf("equivalents = %+v", e)
	}
	if math.Abs(e.ClosF-3) > 1e-12 {
		t.Fatalf("F = %v", e.ClosF)
	}
}

// Property: the cost-equivalent family is internally consistent for any
// reasonable (k, α): valid expander parity, Opera divisibility, and host
// counts within one rack of nominal.
func TestEquivalentsProperty(t *testing.T) {
	f := func(rawK, rawA uint8) bool {
		k := 8 + 2*int(rawK%25)                // 8..56 even
		alpha := 1.0 + float64(rawA%100)/100.0 // 1.00..1.99
		e := Equivalents(k, alpha)
		if e.ExpanderU <= 0 || e.ExpanderU >= k {
			return false
		}
		if e.ExpanderRacks*e.ExpanderU%2 != 0 {
			return false
		}
		if e.OperaRacks%2 != 0 || e.OperaRacks%(k/2) != 0 {
			return false
		}
		expHosts := e.ExpanderRacks * e.ExpanderD
		operaHosts := e.OperaRacks * e.OperaHostsPerRack
		near := func(h, ref, slack int) bool { return h >= ref-slack && h <= ref+slack }
		return near(expHosts, e.Hosts, 2*e.ExpanderD) && near(operaHosts, e.Hosts, k*(k/2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
