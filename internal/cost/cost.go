// Package cost implements the cost-normalization model of Appendix A: the
// α parameter relating an Opera "port" (ToR port + transceiver + fiber +
// rotor-switch port) to a static network "port" (ToR port + transceiver +
// fiber), the component cost table behind Table 2, and the cost-equivalent
// sizing formulas used by the Figure 12/15/16 sweeps.
package cost

import "math"

// Component prices in dollars, from Appendix A Table 2 (commodity prices
// from [29] plus rotor-switch parts amortized over 512-port switches).
const (
	SRTransceiver  = 80.0
	OpticalFiber   = 45.0 // $0.3/m × 150 m nominal run
	ToRPort        = 90.0
	FiberArray     = 30.0 // † per duplex fiber port
	OpticalLenses  = 15.0 // †
	BeamSteering   = 5.0  // †
	OpticalMapping = 10.0 // †
)

// Table2Row is one line of Table 2.
type Table2Row struct {
	Component string
	Static    float64
	Opera     float64
}

// Table2 reproduces the per-port cost comparison of Appendix A.
func Table2() []Table2Row {
	return []Table2Row{
		{"SR transceiver", SRTransceiver, SRTransceiver},
		{"Optical fiber ($0.3/m)", OpticalFiber, OpticalFiber},
		{"ToR port", ToRPort, ToRPort},
		{"Optical fiber array", 0, FiberArray},
		{"Optical lenses", 0, OpticalLenses},
		{"Beam-steering element", 0, BeamSteering},
		{"Optical mapping", 0, OpticalMapping},
	}
}

// StaticPortCost returns the static network per-port total ($215).
func StaticPortCost() float64 {
	return SRTransceiver + OpticalFiber + ToRPort
}

// OperaPortCost returns the Opera per-port total ($275).
func OperaPortCost() float64 {
	return StaticPortCost() + FiberArray + OpticalLenses + BeamSteering + OpticalMapping
}

// EstimatedAlpha returns Opera's estimated port-cost ratio (≈1.3).
func EstimatedAlpha() float64 { return OperaPortCost() / StaticPortCost() }

// Tiers is the folded-Clos tier count T used throughout Appendix A.
const Tiers = 3

// Oversubscription returns the folded-Clos oversubscription factor F that
// makes a T=3 Clos cost-equivalent at core-port premium α: α = 2(T-1)/F.
func Oversubscription(alpha float64) float64 {
	return 2 * (Tiers - 1) / alpha
}

// AlphaForOversubscription inverts Oversubscription.
func AlphaForOversubscription(f float64) float64 {
	return 2 * (Tiers - 1) / f
}

// Hosts returns the host count H of the cost-normalizing three-tier folded
// Clos with switch radix k at premium α: H = (4F/(F+1))·(k/2)³.
func Hosts(k int, alpha float64) int {
	f := Oversubscription(alpha)
	h := 4 * f / (f + 1) * math.Pow(float64(k)/2, Tiers)
	return int(h + 0.5)
}

// ExpanderUplinks returns the per-ToR fabric degree u of the
// cost-equivalent static expander: α = u/(k-u) ⇒ u = αk/(1+α), rounded to
// the nearest integer.
func ExpanderUplinks(k int, alpha float64) int {
	u := alpha * float64(k) / (1 + alpha)
	return int(u + 0.5)
}

// Equivalent describes the three cost-equivalent networks at (k, α).
type Equivalent struct {
	K     int
	Alpha float64
	Hosts int

	// Folded Clos with oversubscription F.
	ClosF float64

	// Expander with u fabric ports and d = k-u hosts per ToR.
	ExpanderU, ExpanderD, ExpanderRacks int

	// Opera with d = u = k/2.
	OperaHostsPerRack, OperaRacks int
}

// Equivalents derives the cost-equivalent family at radix k and premium α
// (Appendix A's comparison method). Each network's rack count is rounded
// to the nearest value satisfying its structural constraints (expander:
// n·u even for a u-regular graph; Opera: N even and divisible by the k/2
// rotor switches), so the host populations differ by at most a rack or
// two — exactly as the paper compares 648-host Clos/Opera against a
// 650-host expander.
func Equivalents(k int, alpha float64) Equivalent {
	e := Equivalent{K: k, Alpha: alpha}
	e.ClosF = Oversubscription(alpha)
	h := Hosts(k, alpha)
	e.Hosts = h
	e.ExpanderU = ExpanderUplinks(k, alpha)
	e.ExpanderD = k - e.ExpanderU
	u := e.ExpanderU
	e.ExpanderRacks = nearestValid(roundDiv(h, e.ExpanderD), func(n int) bool {
		return n > u+1 && n*u%2 == 0
	})
	operaD := k / 2
	c := k / 2
	e.OperaHostsPerRack = operaD
	e.OperaRacks = nearestValid(roundDiv(h, operaD), func(n int) bool {
		return n > 0 && n%2 == 0 && n%c == 0
	})
	return e
}

func roundDiv(a, b int) int { return (a + b/2) / b }

// nearestValid returns the value closest to x satisfying ok, searching
// outward.
func nearestValid(x int, ok func(int) bool) int {
	for delta := 0; ; delta++ {
		if x-delta > 0 && ok(x-delta) {
			return x - delta
		}
		if ok(x + delta) {
			return x + delta
		}
	}
}
