package experiments

import (
	"github.com/opera-net/opera/internal/cost"
	"github.com/opera-net/opera/internal/fluid"
	"github.com/opera-net/opera/internal/topology"
	"github.com/opera-net/opera/internal/workload"
)

// AlphaSweep is the x-axis of Figures 12 and 15.
var AlphaSweep = []float64{1.0, 1.25, 1.5, 1.75, 2.0}

// CostSweepWorkload names the Figure 12 traffic patterns.
type CostSweepWorkload string

// The three patterns of §5.6 plus the all-to-all reference line.
const (
	WorkloadHotRack     CostSweepWorkload = "hotrack"
	WorkloadSkew        CostSweepWorkload = "skew02"
	WorkloadPermutation CostSweepWorkload = "permutation"
	WorkloadAllToAll    CostSweepWorkload = "alltoall"
)

// FigCostSweep regenerates Figure 12 (k=24) or Figure 15 (k=12):
// normalized throughput of cost-equivalent Opera, expander and folded-Clos
// networks versus the port-cost premium α, for hot-rack, skew[0.2,1] and
// permutation workloads (plus Opera's all-to-all line on the permutation
// panel).
func FigCostSweep(k int, figName string) ([]Table, error) {
	return FigCostSweepAlphas(k, figName, AlphaSweep)
}

// FigCostSweepAlphas is FigCostSweep at selectable α resolution (the
// benchmark harness samples a single point; the cmd runs the full sweep).
func FigCostSweepAlphas(k int, figName string, alphas []float64) ([]Table, error) {
	t := Table{Name: figName,
		Header: []string{"workload", "alpha", "opera", "expander", "foldedclos", "opera_alltoall"}}
	for _, wl := range []CostSweepWorkload{WorkloadHotRack, WorkloadSkew, WorkloadPermutation} {
		for _, alpha := range alphas {
			eq := cost.Equivalents(k, alpha)
			operaTheta, err := operaFluid(eq, wl)
			if err != nil {
				return nil, err
			}
			expTheta, err := expanderFluid(eq, wl)
			if err != nil {
				return nil, err
			}
			closTheta := fluid.ClosThroughput(alpha)
			row := []any{string(wl), alpha, operaTheta, expTheta, closTheta}
			if wl == WorkloadPermutation {
				a2a, err := operaFluid(eq, WorkloadAllToAll)
				if err != nil {
					return nil, err
				}
				row = append(row, a2a)
			} else {
				row = append(row, "")
			}
			t.Add(row...)
		}
	}
	return []Table{t}, nil
}

// demandFor builds the rack-level demand matrix (host-rate units) for a
// pattern on a network with n racks and d hosts per rack.
func demandFor(wl CostSweepWorkload, n int, d float64, seed int64) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	switch wl {
	case WorkloadHotRack:
		m[0][1] = d
	case WorkloadSkew:
		// skew[0.2,1] per [29]: 20% of racks active at full load, pattern
		// a permutation among the active set.
		flows := workload.Skew(n, 1, 0.2, 1, seed)
		// Convert the all-to-all-among-active into per-rack totals of d:
		// normalize each active rack's egress to d.
		out := make([]float64, n)
		for _, f := range flows {
			m[f.Src][f.Dst] += 1
			out[f.Src]++
		}
		for a := 0; a < n; a++ {
			if out[a] > 0 {
				for b := 0; b < n; b++ {
					m[a][b] = m[a][b] / out[a] * d
				}
			}
		}
	case WorkloadPermutation:
		for a := 0; a < n; a++ {
			m[a][(a+n/2)%n] = d
		}
	case WorkloadAllToAll:
		per := d / float64(n-1)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a != b {
					m[a][b] = per
				}
			}
		}
	}
	return m
}

func operaFluid(eq cost.Equivalent, wl CostSweepWorkload) (float64, error) {
	o, err := topology.NewOpera(topology.Config{
		NumRacks:     eq.OperaRacks,
		HostsPerRack: eq.OperaHostsPerRack,
		NumSwitches:  eq.K / 2,
		Seed:         1,
		UseLifting:   eq.OperaRacks > 512,
	})
	if err != nil {
		return 0, err
	}
	demand := demandFor(wl, eq.OperaRacks, float64(eq.OperaHostsPerRack), 11)
	return fluid.OperaBulkThroughput(o, demand, fluid.DefaultRotorParams()), nil
}

func expanderFluid(eq cost.Equivalent, wl CostSweepWorkload) (float64, error) {
	// Average over realizations: single random regular graphs have
	// hotspot variance, especially for the single-pair hot-rack demand.
	const seeds = 3
	var sum float64
	for s := int64(1); s <= seeds; s++ {
		e, err := topology.NewExpander(eq.ExpanderRacks, eq.ExpanderD, eq.ExpanderU, s*101)
		if err != nil {
			return 0, err
		}
		demand := demandFor(wl, eq.ExpanderRacks, float64(eq.ExpanderD), 11+s)
		sum += fluid.ExpanderThroughput(e, demand)
	}
	return sum / seeds, nil
}

// Fig12CostSweepK24 regenerates Figure 12 (k = 24, 5,184-host networks).
func Fig12CostSweepK24() ([]Table, error) { return FigCostSweep(24, "fig12_cost_sweep_k24") }

// Fig15CostSweepK12 regenerates Figure 15 (k = 12, 648-host networks).
func Fig15CostSweepK12() ([]Table, error) { return FigCostSweep(12, "fig15_cost_sweep_k12") }

// AblationVLB quantifies the contribution of RotorLB's two-hop offloading
// (a design choice DESIGN.md calls out): Opera throughput with and without
// VLB for the skewed patterns at α = 4/3, k = 12.
func AblationVLB() ([]Table, error) {
	t := Table{Name: "ablation_vlb",
		Header: []string{"workload", "with_vlb", "without_vlb"}}
	eq := cost.Equivalents(12, 4.0/3.0)
	o, err := topology.NewOpera(topology.Config{
		NumRacks:     eq.OperaRacks,
		HostsPerRack: eq.OperaHostsPerRack,
		NumSwitches:  6,
		Seed:         1,
	})
	if err != nil {
		return nil, err
	}
	for _, wl := range []CostSweepWorkload{WorkloadHotRack, WorkloadSkew, WorkloadPermutation, WorkloadAllToAll} {
		demand := demandFor(wl, eq.OperaRacks, float64(eq.OperaHostsPerRack), 11)
		with := fluid.OperaBulkThroughput(o, demand, fluid.DefaultRotorParams())
		params := fluid.DefaultRotorParams()
		params.DisableVLB = true
		without := fluid.OperaBulkThroughput(o, demand, params)
		t.Add(string(wl), with, without)
	}
	return []Table{t}, nil
}
