package experiments

import (
	"context"
	"fmt"

	operapkg "github.com/opera-net/opera"
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/prototype"
	"github.com/opera-net/opera/internal/stats"
	"github.com/opera-net/opera/internal/workload"
	"github.com/opera-net/opera/scenario"
)

// SimOptions controls the packet-level experiment family.
type SimOptions struct {
	Scale Scale
	// Loads are offered-load fractions for the Poisson experiments.
	Loads []float64
	// Duration is the flow-arrival window; the simulation drains for up to
	// DrainFactor× longer.
	Duration    eventsim.Time
	DrainFactor int
	// MaxFlowBytes caps sampled flow sizes (0 = unlimited); small-scale
	// runs cap the heavy tail so runtimes stay test-friendly.
	MaxFlowBytes int64
	Seed         int64
}

// DefaultSimOptions returns small-scale settings (seconds per run).
func DefaultSimOptions() SimOptions {
	return SimOptions{
		Scale:        SmallScale(),
		Loads:        []float64{0.01, 0.10, 0.25},
		Duration:     20 * eventsim.Millisecond,
		DrainFactor:  15,
		MaxFlowBytes: 20_000_000,
		Seed:         1,
	}
}

// PaperSimOptions returns §5.1-scale settings (minutes per network).
func PaperSimOptions() SimOptions {
	return SimOptions{
		Scale:       PaperScale(),
		Loads:       []float64{0.01, 0.10, 0.25, 0.30, 0.40},
		Duration:    100 * eventsim.Millisecond,
		DrainFactor: 20,
		Seed:        1,
	}
}

// scaleOptions sizes a cluster of the given kind at scale s. Options apply
// in order, so the expander's cost-equivalent sizing overrides the rotor
// sizing for KindExpander.
func scaleOptions(kind operapkg.Kind, s Scale, appTagged bool) []operapkg.Option {
	opts := []operapkg.Option{
		operapkg.WithRacks(s.Racks),
		operapkg.WithHostsPerRack(s.HostsPerRack),
		operapkg.WithUplinks(s.Uplinks),
		operapkg.WithClos(s.ClosK, s.ClosF),
		operapkg.WithAppTaggedBulk(appTagged),
		operapkg.WithSeed(s.Seed),
	}
	if kind == operapkg.KindExpander {
		opts = append(opts,
			operapkg.WithRacks(s.ExpRacks),
			operapkg.WithHostsPerRack(s.ExpHosts),
			operapkg.WithUplinks(s.ExpDegree),
		)
	}
	return opts
}

// fctBuckets are the flow-size decade boundaries used to report FCT vs
// flow size (Figures 7 and 9).
var fctBuckets = []int64{1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000, 1 << 62}

func bucketOf(size int64) int {
	for i, b := range fctBuckets {
		if size < b {
			return i
		}
	}
	return len(fctBuckets) - 1
}

func bucketLabel(i int) string {
	names := []string{"<1KB", "1-10KB", "10-100KB", "100KB-1MB", "1-10MB", "10-100MB", ">=100MB"}
	return names[i]
}

// poissonCell describes one (network, load) point of a Poisson FCT sweep.
type poissonCell struct {
	name string
	kind operapkg.Kind
	load float64
}

// runPoissonFCT fans every (network, load) cell out through the scenario
// runner — independent clusters across all cores — then appends per-bucket
// FCT rows in cell order: 99th percentile (and mean at 1% load, following
// the paper's reporting) plus the completed fraction, which exposes
// saturation.
func runPoissonFCT(t *Table, cells []poissonCell, opt SimOptions, dist *workload.FlowSizeDist) error {
	scs := make([]scenario.Scenario, len(cells))
	for i, c := range cells {
		scs[i] = scenario.Scenario{
			Name:    c.name,
			Kind:    c.kind,
			Seed:    opt.Seed, // seeds the workload; cluster seed below
			Options: scaleOptions(c.kind, opt.Scale, false),
			// Streamed open-loop arrivals: the sweep never materializes a
			// flow list, so paper-scale load points stay O(active flows).
			Sources:  []scenario.Source{scenario.Poisson(dist, c.load, opt.Duration, opt.MaxFlowBytes)},
			Duration: opt.Duration * eventsim.Time(opt.DrainFactor),
		}
	}
	// Buckets are tabulated inside the per-cluster callback (distinct
	// per-index slots, so no locking) and each cluster is released as soon
	// as its cell is done — a paper-scale sweep never holds more clusters
	// than workers.
	type cellStats struct {
		buckets     []stats.Sample
		done, total int
	}
	tallies := make([]cellStats, len(cells))
	results, err := scenario.ForEachCluster(context.Background(), scs,
		func(i int, cl *operapkg.Cluster, _ scenario.Result) {
			cs := cellStats{buckets: make([]stats.Sample, len(fctBuckets))}
			for _, f := range cl.Metrics().Flows() {
				cs.total++
				if !f.Done {
					continue
				}
				cs.done++
				cs.buckets[bucketOf(f.Size)].Add(f.FCT().Micros())
			}
			tallies[i] = cs
		})
	if err != nil {
		return err
	}
	for i, cs := range tallies {
		if results[i].Err != "" {
			return fmt.Errorf("%s (load %.2f): %s", cells[i].name, cells[i].load, results[i].Err)
		}
		for b := range cs.buckets {
			if cs.buckets[b].N() == 0 {
				continue
			}
			t.Add(cells[i].name, cells[i].load, bucketLabel(b), cs.buckets[b].Mean(), cs.buckets[b].P99(),
				cs.buckets[b].N(), float64(cs.done)/float64(cs.total))
		}
	}
	return nil
}

var fctHeader = []string{"network", "load", "flow_size", "mean_fct_us", "p99_fct_us", "flows", "completed_frac"}

// Fig07Datamining regenerates Figure 7: Datamining FCTs vs offered load on
// the four architectures (plus hybrid RotorNet at +33% cost).
func Fig07Datamining(opt SimOptions) ([]Table, error) {
	t := Table{Name: fmt.Sprintf("fig07_datamining_fct_%s", opt.Scale.Name), Header: fctHeader}
	dist := workload.Datamining()
	var cells []poissonCell
	for _, n := range []struct {
		name string
		kind operapkg.Kind
	}{
		{"opera", operapkg.KindOpera},
		{"expander", operapkg.KindExpander},
		{"foldedclos", operapkg.KindFoldedClos},
		{"rotornet-hybrid", operapkg.KindRotorNetHybrid},
		{"rotornet", operapkg.KindRotorNet},
	} {
		for _, load := range opt.Loads {
			cells = append(cells, poissonCell{n.name, n.kind, load})
		}
	}
	if err := runPoissonFCT(&t, cells, opt, dist); err != nil {
		return nil, err
	}
	return []Table{t}, nil
}

// Fig09Websearch regenerates Figure 9: the all-indirect worst case.
func Fig09Websearch(opt SimOptions) ([]Table, error) {
	t := Table{Name: fmt.Sprintf("fig09_websearch_fct_%s", opt.Scale.Name), Header: fctHeader}
	dist := workload.Websearch()
	var cells []poissonCell
	for _, n := range []struct {
		name string
		kind operapkg.Kind
	}{
		{"opera", operapkg.KindOpera},
		{"expander", operapkg.KindExpander},
		{"foldedclos", operapkg.KindFoldedClos},
	} {
		for _, load := range opt.Loads {
			cells = append(cells, poissonCell{n.name, n.kind, load})
		}
	}
	if err := runPoissonFCT(&t, cells, opt, dist); err != nil {
		return nil, err
	}
	return []Table{t}, nil
}

// ShuffleOptions controls the Figure 8 experiment.
type ShuffleOptions struct {
	Scale     Scale
	FlowBytes int64
	// Stagger spreads static-network arrivals (the paper uses 10 ms).
	Stagger  eventsim.Time
	Deadline eventsim.Time
	// Participants caps how many hosts join the shuffle (0 = all). The
	// folded Clos's host count is quantized by its radix (192 at small
	// scale vs 64 for the others); capping keeps the workload identical
	// across networks.
	Participants int
	Seed         int64
}

// DefaultShuffleOptions returns small-scale settings.
func DefaultShuffleOptions() ShuffleOptions {
	return ShuffleOptions{
		Scale:        SmallScale(),
		FlowBytes:    100_000,
		Stagger:      1 * eventsim.Millisecond,
		Deadline:     2000 * eventsim.Millisecond,
		Participants: 64,
		Seed:         1,
	}
}

// Fig08Shuffle regenerates Figure 8: delivered throughput over time and
// the 99th-percentile FCT for a 100 KB all-to-all shuffle, application-
// tagged as bulk on Opera (all-direct paths).
func Fig08Shuffle(opt ShuffleOptions) ([]Table, error) {
	series := Table{Name: fmt.Sprintf("fig08_shuffle_throughput_%s", opt.Scale.Name),
		Header: []string{"network", "time_ms", "normalized_throughput"}}
	summary := Table{Name: fmt.Sprintf("fig08_shuffle_fct_%s", opt.Scale.Name),
		Header: []string{"network", "p99_fct_ms", "completed_frac", "bandwidth_tax"}}

	nets := []struct {
		name      string
		kind      operapkg.Kind
		appTagged bool
		stagger   eventsim.Time
	}{
		{"opera", operapkg.KindOpera, true, 0},
		{"expander", operapkg.KindExpander, false, opt.Stagger},
		{"foldedclos", operapkg.KindFoldedClos, false, opt.Stagger},
	}
	scs := make([]scenario.Scenario, len(nets))
	for i, n := range nets {
		scs[i] = scenario.Scenario{
			Name:     n.name,
			Kind:     n.kind,
			Seed:     opt.Seed,
			Options:  scaleOptions(n.kind, opt.Scale, n.appTagged),
			Sources:  []scenario.Source{scenario.Adapt(scenario.ShuffleN(opt.Participants, opt.FlowBytes, n.stagger))},
			Duration: opt.Deadline,
		}
	}
	clusters, results, err := scenario.CollectScenarios(context.Background(), scs)
	if err != nil {
		return nil, err
	}
	for i, cl := range clusters {
		n := nets[i]
		if cl == nil {
			return nil, fmt.Errorf("%s: %s", n.name, results[i].Err)
		}
		participants := cl.NumHosts()
		if opt.Participants > 0 && opt.Participants < participants {
			participants = opt.Participants
		}
		capacity := float64(participants) * 10e9 / 8 // bytes/s aggregate
		rates := cl.Metrics().DeliveredBytes.Rates()
		for j, r := range rates {
			series.Add(n.name, float64(j)*1000*cl.Metrics().DeliveredBytes.BinWidth(), r/capacity)
		}
		var fct stats.Sample
		var done, total int
		for _, f := range cl.Metrics().Flows() {
			total++
			if f.Done {
				done++
				fct.Add(f.FCT().Seconds() * 1000)
			}
		}
		summary.Add(n.name, fct.P99(), float64(done)/float64(total), cl.Metrics().AggregateTax())
	}
	return []Table{series, summary}, nil
}

// MixedOptions controls the Figure 10 experiment.
type MixedOptions struct {
	Scale Scale
	// WebsearchLoads are the low-latency load points.
	WebsearchLoads []float64
	Duration       eventsim.Time
	Seed           int64
}

// DefaultMixedOptions returns small-scale settings.
func DefaultMixedOptions() MixedOptions {
	return MixedOptions{
		Scale:          SmallScale(),
		WebsearchLoads: []float64{0.01, 0.05, 0.10},
		Duration:       30 * eventsim.Millisecond,
		Seed:           1,
	}
}

// rackSaturate is the Figure 10 underlay: every host keeps one large
// application-tagged bulk flow to its counterpart in every other rack,
// sized to fill the host link for the whole window.
func rackSaturate(window eventsim.Time) scenario.Workload {
	return func(numHosts, hostsPerRack int, _ int64) []workload.FlowSpec {
		perRack := numHosts / hostsPerRack
		bulkBytes := int64(float64(window.Seconds()) * 10e9 / 8 / float64(perRack-1))
		var bulk []workload.FlowSpec
		for h := 0; h < numHosts; h++ {
			for r := 0; r < perRack; r++ {
				if r == h/hostsPerRack {
					continue
				}
				bulk = append(bulk, workload.FlowSpec{
					Src: h, Dst: r*hostsPerRack + h%hostsPerRack, Bytes: bulkBytes,
				})
			}
		}
		return bulk
	}
}

// Fig10Mixed regenerates Figure 10: aggregate delivered throughput vs
// Websearch (low-latency) load with a saturating bulk shuffle underneath.
// The mixed workload rides the scenario tagging hooks — the bulk underlay
// is per-flow application-tagged (§3.4), websearch is classified by size —
// so every (network, load) cell fans out through the scenario runner, and
// a by-tag table breaks the aggregate down into its two components.
func Fig10Mixed(opt MixedOptions) ([]Table, error) {
	t := Table{Name: fmt.Sprintf("fig10_mixed_throughput_%s", opt.Scale.Name),
		Header: []string{"network", "websearch_load", "normalized_throughput"}}
	byTag := Table{Name: fmt.Sprintf("fig10_mixed_by_tag_%s", opt.Scale.Name),
		Header: []string{"network", "websearch_load", "tag", "throughput_gbps", "p99_fct_us", "flows_done", "flows_total"}}
	nets := []struct {
		name string
		kind operapkg.Kind
	}{
		{"opera", operapkg.KindOpera},
		{"expander", operapkg.KindExpander},
		{"foldedclos", operapkg.KindFoldedClos},
	}
	type cell struct {
		name   string
		kind   operapkg.Kind
		wsLoad float64
	}
	var cells []cell
	for _, n := range nets {
		for _, wsLoad := range opt.WebsearchLoads {
			cells = append(cells, cell{n.name, n.kind, wsLoad})
		}
	}
	scs := make([]scenario.Scenario, len(cells))
	for i, c := range cells {
		scs[i] = scenario.Scenario{
			Name:    c.name,
			Kind:    c.kind,
			Seed:    opt.Seed,
			Options: scaleOptions(c.kind, opt.Scale, false),
			Sources: []scenario.Source{
				scenario.TagSource("shuffle", scenario.BulkSource(scenario.Adapt(rackSaturate(opt.Duration)))),
				scenario.TagSource("websearch", scenario.Poisson(workload.Websearch(), c.wsLoad, opt.Duration, 0)),
			},
			Duration: opt.Duration,
		}
	}
	// Normalized throughput needs the delivery time series, so tabulate in
	// the per-cluster callback (distinct per-index slots, no locking).
	delivered := make([]float64, len(cells))
	results, err := scenario.ForEachCluster(context.Background(), scs,
		func(i int, cl *operapkg.Cluster, _ scenario.Result) {
			// Bytes delivered within the run window over the aggregate
			// host-link capacity of the same window.
			ts := cl.Metrics().DeliveredBytes
			var sum float64
			bins := int(opt.Duration.Seconds()/ts.BinWidth() + 0.5)
			for b := 0; b < bins; b++ {
				sum += ts.Rate(b) * ts.BinWidth()
			}
			capacity := float64(cl.NumHosts()) * 10e9 / 8 * opt.Duration.Seconds()
			delivered[i] = sum / capacity
		})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		if results[i].Err != "" {
			return nil, fmt.Errorf("%s (load %.2f): %s", c.name, c.wsLoad, results[i].Err)
		}
		t.Add(c.name, c.wsLoad, delivered[i])
		for _, tag := range []string{"shuffle", "websearch"} {
			s := results[i].ByTag[tag]
			byTag.Add(c.name, c.wsLoad, tag, s.ThroughputGbps, s.FCT.P99Us, s.FlowsDone, s.FlowsTotal)
		}
	}
	return []Table{t, byTag}, nil
}

// Fig13Prototype regenerates Figure 13's RTT distributions.
func Fig13Prototype(params prototype.Params) ([]Table, error) {
	without, with, err := prototype.Figure13(params)
	if err != nil {
		return nil, err
	}
	t := Table{Name: "fig13_prototype_rtt", Header: []string{"scenario", "rtt_us", "cdf"}}
	for _, p := range without.CDF() {
		t.Add("without_bulk", p.X, p.F)
	}
	for _, p := range with.CDF() {
		t.Add("with_bulk", p.X, p.F)
	}
	return []Table{t}, nil
}
