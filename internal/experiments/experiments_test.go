package experiments

import (
	"strings"
	"testing"

	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/prototype"
)

func TestTableCSV(t *testing.T) {
	tb := Table{Name: "x", Header: []string{"a", "b"}}
	tb.Add(1, 2.5)
	tb.Add("s", 0.0000012)
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,b\n1,2.5\n") {
		t.Fatalf("csv = %q", csv)
	}
	if err := tb.WriteCSV(t.TempDir()); err != nil {
		t.Fatal(err)
	}
}

func TestFig01(t *testing.T) {
	tables := Fig01FlowSizeCDFs()
	if len(tables) != 2 {
		t.Fatalf("%d tables", len(tables))
	}
	if len(tables[0].Rows) < 30 {
		t.Fatalf("flow CDF rows = %d", len(tables[0].Rows))
	}
}

func TestFig04SmallScale(t *testing.T) {
	tables, err := Fig04PathLengths(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	nets := map[string]bool{}
	for _, r := range rows {
		nets[r[0]] = true
	}
	if len(nets) != 3 {
		t.Fatalf("networks = %v", nets)
	}
}

func TestFig14(t *testing.T) {
	tables := Fig14CycleTime()
	first := tables[0].Rows[0]
	if first[0] != "12" || first[1] != "1" || first[2] != "1" {
		t.Fatalf("k=12 baseline row = %v", first)
	}
	// Grouped scaling is linear: k=48 grouped = 432/108 = 4.
	for _, r := range tables[0].Rows {
		if r[0] == "48" && r[2] != "4" {
			t.Fatalf("k=48 grouped = %v, want 4", r[2])
		}
	}
}

func TestFig17SmallScale(t *testing.T) {
	s := SmallScale()
	// Spectral analysis needs u >= 5-ish graphs to be meaningful but runs
	// at any scale; just verify structure.
	tables, err := Fig17SpectralGap(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) < s.Racks {
		t.Fatalf("rows = %d, want >= one per slice", len(tables[0].Rows))
	}
}

func TestTables1And2(t *testing.T) {
	t1 := Table1RuleCounts()
	if len(t1[0].Rows) != 6 {
		t.Fatalf("table1 rows = %d", len(t1[0].Rows))
	}
	if t1[0].Rows[0][2] != "12096" {
		t.Fatalf("table1 first entry count = %v", t1[0].Rows[0])
	}
	t2 := Table2Cost()
	found := false
	for _, r := range t2[0].Rows {
		if r[0] == "Total" && r[1] == "215" && r[2] == "275" {
			found = true
		}
	}
	if !found {
		t.Fatal("table2 totals missing")
	}
}

func TestFig11SmallScale(t *testing.T) {
	tables, err := Fig11FaultTolerance(SmallScale(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("%d tables", len(tables))
	}
	// No-loss regime at 1% links.
	for _, r := range tables[0].Rows {
		if r[0] == "links" && r[1] == "0.01" && r[3] != "0" {
			t.Fatalf("1%% link failures should lose nothing, got %v", r)
		}
	}
}

func TestFig19And20SmallScale(t *testing.T) {
	if _, err := Fig19ClosFailures(SmallScale(), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig20ExpanderFailures(SmallScale(), 1); err != nil {
		t.Fatal(err)
	}
}

func TestFig13(t *testing.T) {
	p := prototype.DefaultParams()
	p.Samples = 2000
	tables, err := Fig13Prototype(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) < 100 {
		t.Fatalf("rows = %d", len(tables[0].Rows))
	}
}

func TestFig15FluidSweep(t *testing.T) {
	tables, err := Fig15CostSweepK12()
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) != 3*len(AlphaSweep) {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestFig08SmallShuffle(t *testing.T) {
	if testing.Short() {
		t.Skip("packet-level experiment")
	}
	opt := DefaultShuffleOptions()
	opt.FlowBytes = 50_000
	tables, err := Fig08Shuffle(opt)
	if err != nil {
		t.Fatal(err)
	}
	// Summary: every network completes nearly all flows, and Opera's tax
	// is near zero (all-direct).
	sum := tables[1]
	for _, r := range sum.Rows {
		if r[2] == "0" {
			t.Fatalf("network %s completed nothing", r[0])
		}
	}
}

func TestFig10MixedTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("packet-level experiment")
	}
	opt := DefaultMixedOptions()
	opt.WebsearchLoads = []float64{0.05}
	opt.Duration = 5 * eventsim.Millisecond
	tables, err := Fig10Mixed(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("%d tables", len(tables))
	}
	if len(tables[0].Rows) != 3 {
		t.Fatalf("throughput rows = %d, want one per network", len(tables[0].Rows))
	}
	// The by-tag breakdown carries both workload components per cell.
	if len(tables[1].Rows) != 6 {
		t.Fatalf("by-tag rows = %d, want networks × tags", len(tables[1].Rows))
	}
	for _, r := range tables[1].Rows {
		if r[2] != "shuffle" && r[2] != "websearch" {
			t.Fatalf("unexpected tag %q", r[2])
		}
	}
}

func TestFig07TinyRun(t *testing.T) {
	if testing.Short() {
		t.Skip("packet-level experiment")
	}
	opt := DefaultSimOptions()
	opt.Loads = []float64{0.05}
	opt.Duration = 5 * eventsim.Millisecond
	opt.MaxFlowBytes = 2_000_000
	tables, err := Fig07Datamining(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) == 0 {
		t.Fatal("no FCT rows")
	}
}
