package experiments

import (
	"fmt"

	"github.com/opera-net/opera/internal/faults"
	"github.com/opera-net/opera/internal/topology"
)

// FailureFractions are the x-axis points of Figures 11 and 18–20.
var FailureFractions = []float64{0.01, 0.025, 0.05, 0.10, 0.20, 0.40}

// SwitchFailureFractions are the circuit-switch points (the paper sweeps
// to 50%).
var SwitchFailureFractions = []float64{0.01, 0.025, 0.05, 0.10, 0.20, 0.50}

// Fig11FaultTolerance regenerates Figure 11 (connectivity loss) and
// Figure 18 (path stretch) for Opera under link, ToR and circuit-switch
// failures. Trials averages over seeds.
func Fig11FaultTolerance(s Scale, trials int) ([]Table, error) {
	if trials <= 0 {
		trials = 3
	}
	conn := Table{Name: fmt.Sprintf("fig11_connectivity_%s", s.Name),
		Header: []string{"failure_type", "fraction", "worst_slice_loss", "across_all_slices_loss"}}
	paths := Table{Name: fmt.Sprintf("fig18_path_stretch_%s", s.Name),
		Header: []string{"failure_type", "fraction", "avg_path", "worst_path"}}

	o, err := topology.NewOpera(topology.Config{
		NumRacks: s.Racks, HostsPerRack: s.HostsPerRack, NumSwitches: s.Uplinks, Seed: s.Seed,
	})
	if err != nil {
		return nil, err
	}
	run := func(kind string, fLinks, fToRs, fSwitches func(frac float64) float64, fracs []float64) {
		for _, frac := range fracs {
			var worst, union, avg float64
			maxPath := 0
			for tr := 0; tr < trials; tr++ {
				r := faults.OperaFailures(o, fLinks(frac), fToRs(frac), fSwitches(frac), int64(tr)*31+7)
				worst += r.WorstSliceLoss
				union += r.UnionLoss
				avg += r.AvgPath
				if r.MaxPath > maxPath {
					maxPath = r.MaxPath
				}
			}
			n := float64(trials)
			conn.Add(kind, frac, worst/n, union/n)
			paths.Add(kind, frac, avg/n, maxPath)
		}
	}
	zero := func(float64) float64 { return 0 }
	id := func(f float64) float64 { return f }
	run("links", id, zero, zero, FailureFractions)
	run("tors", zero, id, zero, FailureFractions)
	run("switches", zero, zero, id, SwitchFailureFractions)
	return []Table{conn, paths}, nil
}

// Fig19ClosFailures regenerates Figure 19: the 3:1 folded Clos under link
// and switch failures.
func Fig19ClosFailures(s Scale, trials int) ([]Table, error) {
	if trials <= 0 {
		trials = 3
	}
	t := Table{Name: fmt.Sprintf("fig19_clos_failures_%s", s.Name),
		Header: []string{"failure_type", "fraction", "loss", "avg_path", "worst_path"}}
	c, err := topology.NewFoldedClos(s.ClosK, s.ClosF)
	if err != nil {
		return nil, err
	}
	for _, frac := range FailureFractions {
		var lossL, avgL, lossS, avgS float64
		maxL, maxS := 0, 0
		for tr := 0; tr < trials; tr++ {
			r := faults.ClosFailures(c, frac, 0, int64(tr)*17+3)
			lossL += r.Loss
			avgL += r.AvgPath
			if r.MaxPath > maxL {
				maxL = r.MaxPath
			}
			r = faults.ClosFailures(c, 0, frac, int64(tr)*17+3)
			lossS += r.Loss
			avgS += r.AvgPath
			if r.MaxPath > maxS {
				maxS = r.MaxPath
			}
		}
		n := float64(trials)
		t.Add("links", frac, lossL/n, avgL/n, maxL)
		t.Add("switches", frac, lossS/n, avgS/n, maxS)
	}
	return []Table{t}, nil
}

// Fig20ExpanderFailures regenerates Figure 20: the u=7 expander under
// link and ToR failures.
func Fig20ExpanderFailures(s Scale, trials int) ([]Table, error) {
	if trials <= 0 {
		trials = 3
	}
	t := Table{Name: fmt.Sprintf("fig20_expander_failures_%s", s.Name),
		Header: []string{"failure_type", "fraction", "loss", "avg_path", "worst_path"}}
	e, err := topology.NewExpander(s.ExpRacks, s.ExpHosts, s.ExpDegree, s.Seed)
	if err != nil {
		return nil, err
	}
	for _, frac := range FailureFractions {
		var lossL, avgL, lossT, avgT float64
		maxL, maxT := 0, 0
		for tr := 0; tr < trials; tr++ {
			r := faults.ExpanderFailures(e, frac, 0, int64(tr)*13+5)
			lossL += r.Loss
			avgL += r.AvgPath
			if r.MaxPath > maxL {
				maxL = r.MaxPath
			}
			r = faults.ExpanderFailures(e, 0, frac, int64(tr)*13+5)
			lossT += r.Loss
			avgT += r.AvgPath
			if r.MaxPath > maxT {
				maxT = r.MaxPath
			}
		}
		n := float64(trials)
		t.Add("links", frac, lossL/n, avgL/n, maxL)
		t.Add("tors", frac, lossT/n, avgT/n, maxT)
	}
	return []Table{t}, nil
}
