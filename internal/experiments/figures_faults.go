package experiments

import (
	"context"
	"fmt"
	"sync"

	operapkg "github.com/opera-net/opera"
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/faults"
	"github.com/opera-net/opera/internal/sim"
	"github.com/opera-net/opera/scenario"
)

// The fault-tolerance figures (11, 18–20) are declared as Scenarios: each
// (failure type, fraction) cell is one Scenario whose probes run the
// §5.5/Appendix E analysis against the built cluster's topology, and the
// scenario runner fans the cells out across cores. Probe values land in
// Result.Probes, from which the drivers assemble the same CSV rows the
// bespoke loops produced.

// FailureFractions are the x-axis points of Figures 11 and 18–20.
var FailureFractions = []float64{0.01, 0.025, 0.05, 0.10, 0.20, 0.40}

// SwitchFailureFractions are the circuit-switch points (the paper sweeps
// to 50%).
var SwitchFailureFractions = []float64{0.01, 0.025, 0.05, 0.10, 0.20, 0.50}

// analysisProbes builds one probe column per named value, all sharing a
// single cached run of an expensive whole-topology analysis: the first
// probe to fire computes every column, the rest just read their slot.
func analysisProbes(names []string, compute func(cl *operapkg.Cluster, out []float64)) []scenario.Probe {
	var once sync.Once
	vals := make([]float64, len(names))
	probes := make([]scenario.Probe, len(names))
	for i, name := range names {
		i := i
		probes[i] = scenario.Sample(name, 0, func(cl *operapkg.Cluster, _ eventsim.Time) float64 {
			once.Do(func() { compute(cl, vals) })
			return vals[i]
		})
	}
	return probes
}

// probeRow extracts the one-shot probe values of a Result in order.
func probeRow(res scenario.Result) ([]float64, error) {
	if res.Err != "" {
		return nil, fmt.Errorf("%s: %s", res.Name, res.Err)
	}
	out := make([]float64, len(res.Probes))
	for i, p := range res.Probes {
		if len(p.Values) == 0 {
			return nil, fmt.Errorf("%s: probe %s recorded nothing", res.Name, p.Name)
		}
		out[i] = p.Values[0]
	}
	return out, nil
}

// faultCell names one (failure type, fraction) point of a sweep.
type faultCell struct {
	kind string
	frac float64
}

// runFaultCells executes one Scenario per cell — topology-only, no
// workload — with the probes the builder supplies, returning the probe
// values per cell.
func runFaultCells(cells []faultCell, base scenario.Scenario, probes func(c faultCell) []scenario.Probe) ([][]float64, error) {
	scs := make([]scenario.Scenario, len(cells))
	for i, c := range cells {
		sc := base
		sc.Name = fmt.Sprintf("%s_%s_%g", base.Name, c.kind, c.frac)
		sc.Probes = probes(c)
		scs[i] = sc
	}
	results, err := scenario.RunScenarios(context.Background(), scs)
	if err != nil {
		return nil, err
	}
	rows := make([][]float64, len(cells))
	for i, res := range results {
		if rows[i], err = probeRow(res); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// Fig11FaultTolerance regenerates Figure 11 (connectivity loss) and
// Figure 18 (path stretch) for Opera under link, ToR and circuit-switch
// failures. Trials averages over seeds.
func Fig11FaultTolerance(s Scale, trials int) ([]Table, error) {
	if trials <= 0 {
		trials = 3
	}
	conn := Table{Name: fmt.Sprintf("fig11_connectivity_%s", s.Name),
		Header: []string{"failure_type", "fraction", "worst_slice_loss", "across_all_slices_loss"}}
	paths := Table{Name: fmt.Sprintf("fig18_path_stretch_%s", s.Name),
		Header: []string{"failure_type", "fraction", "avg_path", "worst_path"}}

	var cells []faultCell
	for _, frac := range FailureFractions {
		cells = append(cells, faultCell{"links", frac})
	}
	for _, frac := range FailureFractions {
		cells = append(cells, faultCell{"tors", frac})
	}
	for _, frac := range SwitchFailureFractions {
		cells = append(cells, faultCell{"switches", frac})
	}

	base := scenario.Scenario{
		Name: "fig11",
		Kind: operapkg.KindOpera,
		Seed: s.Seed,
		Options: []operapkg.Option{
			operapkg.WithRacks(s.Racks),
			operapkg.WithHostsPerRack(s.HostsPerRack),
			operapkg.WithUplinks(s.Uplinks),
		},
	}
	cols := []string{"worst_slice_loss", "across_all_slices_loss", "avg_path", "worst_path"}
	rows, err := runFaultCells(cells, base, func(c faultCell) []scenario.Probe {
		fLinks, fToRs, fSwitches := 0.0, 0.0, 0.0
		switch c.kind {
		case "links":
			fLinks = c.frac
		case "tors":
			fToRs = c.frac
		case "switches":
			fSwitches = c.frac
		}
		return analysisProbes(cols, func(cl *operapkg.Cluster, out []float64) {
			o := cl.OperaNet().Topology()
			var worst, union, avg float64
			maxPath := 0
			for tr := 0; tr < trials; tr++ {
				r := faults.OperaFailures(o, fLinks, fToRs, fSwitches, int64(tr)*31+7)
				worst += r.WorstSliceLoss
				union += r.UnionLoss
				avg += r.AvgPath
				if r.MaxPath > maxPath {
					maxPath = r.MaxPath
				}
			}
			n := float64(trials)
			out[0], out[1], out[2], out[3] = worst/n, union/n, avg/n, float64(maxPath)
		})
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		conn.Add(c.kind, c.frac, rows[i][0], rows[i][1])
		paths.Add(c.kind, c.frac, rows[i][2], int(rows[i][3]))
	}
	return []Table{conn, paths}, nil
}

// staticFaultFigure runs a Fig19/Fig20-style sweep: one Scenario per
// fraction and failure type on a static topology, probing loss and path
// stretch.
func staticFaultFigure(t *Table, base scenario.Scenario, kinds []string,
	analyze func(cl *operapkg.Cluster, kind string, frac float64, trial int) faults.StaticResult, trials int) error {
	var cells []faultCell
	for _, frac := range FailureFractions {
		for _, kind := range kinds {
			cells = append(cells, faultCell{kind, frac})
		}
	}
	cols := []string{"loss", "avg_path", "worst_path"}
	rows, err := runFaultCells(cells, base, func(c faultCell) []scenario.Probe {
		return analysisProbes(cols, func(cl *operapkg.Cluster, out []float64) {
			var loss, avg float64
			maxPath := 0
			for tr := 0; tr < trials; tr++ {
				r := analyze(cl, c.kind, c.frac, tr)
				loss += r.Loss
				avg += r.AvgPath
				if r.MaxPath > maxPath {
					maxPath = r.MaxPath
				}
			}
			n := float64(trials)
			out[0], out[1], out[2] = loss/n, avg/n, float64(maxPath)
		})
	})
	if err != nil {
		return err
	}
	for i, c := range cells {
		t.Add(c.kind, c.frac, rows[i][0], rows[i][1], int(rows[i][2]))
	}
	return nil
}

// Fig19ClosFailures regenerates Figure 19: the 3:1 folded Clos under link
// and switch failures.
func Fig19ClosFailures(s Scale, trials int) ([]Table, error) {
	if trials <= 0 {
		trials = 3
	}
	t := Table{Name: fmt.Sprintf("fig19_clos_failures_%s", s.Name),
		Header: []string{"failure_type", "fraction", "loss", "avg_path", "worst_path"}}
	base := scenario.Scenario{
		Name:    "fig19",
		Kind:    operapkg.KindFoldedClos,
		Seed:    s.Seed,
		Options: []operapkg.Option{operapkg.WithClos(s.ClosK, s.ClosF)},
	}
	err := staticFaultFigure(&t, base, []string{"links", "switches"},
		func(cl *operapkg.Cluster, kind string, frac float64, tr int) faults.StaticResult {
			c := cl.Network().(*sim.ClosNet).Topology()
			seed := int64(tr)*17 + 3
			if kind == "links" {
				return faults.ClosFailures(c, frac, 0, seed)
			}
			return faults.ClosFailures(c, 0, frac, seed)
		}, trials)
	if err != nil {
		return nil, err
	}
	return []Table{t}, nil
}

// Fig20ExpanderFailures regenerates Figure 20: the u=7 expander under
// link and ToR failures.
func Fig20ExpanderFailures(s Scale, trials int) ([]Table, error) {
	if trials <= 0 {
		trials = 3
	}
	t := Table{Name: fmt.Sprintf("fig20_expander_failures_%s", s.Name),
		Header: []string{"failure_type", "fraction", "loss", "avg_path", "worst_path"}}
	base := scenario.Scenario{
		Name: "fig20",
		Kind: operapkg.KindExpander,
		Seed: s.Seed,
		Options: []operapkg.Option{
			operapkg.WithRacks(s.ExpRacks),
			operapkg.WithHostsPerRack(s.ExpHosts),
			operapkg.WithUplinks(s.ExpDegree),
		},
	}
	err := staticFaultFigure(&t, base, []string{"links", "tors"},
		func(cl *operapkg.Cluster, kind string, frac float64, tr int) faults.StaticResult {
			e := cl.Network().(*sim.ExpanderNet).Topology()
			seed := int64(tr)*13 + 5
			if kind == "links" {
				return faults.ExpanderFailures(e, frac, 0, seed)
			}
			return faults.ExpanderFailures(e, 0, frac, seed)
		}, trials)
	if err != nil {
		return nil, err
	}
	return []Table{t}, nil
}
