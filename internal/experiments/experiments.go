// Package experiments contains one runner per table and figure of the
// Opera paper's evaluation (§5, §6 and the appendices). Each runner
// returns self-describing Tables that cmd/opera-experiments writes as CSV
// and the repository benchmarks summarize; EXPERIMENTS.md records the
// paper-vs-measured comparison for every artifact.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Table is a generic result table: one per plotted series or report.
type Table struct {
	Name   string // file stem, e.g. "fig04_path_length_cdf"
	Header []string
	Rows   [][]string
}

// Add appends a row, formatting each cell with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.6g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// CSV renders the table as CSV text.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteCSV writes the table to dir/<name>.csv.
func (t *Table) WriteCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, t.Name+".csv"), []byte(t.CSV()), 0o644)
}

// WriteAll writes a set of tables.
func WriteAll(dir string, tables []Table) error {
	for i := range tables {
		if err := tables[i].WriteCSV(dir); err != nil {
			return err
		}
	}
	return nil
}

// Scale fixes the network sizes an experiment family runs at.
type Scale struct {
	Name string

	// Opera / RotorNet sizing.
	Racks        int
	HostsPerRack int
	Uplinks      int

	// Static expander sizing (cost-equivalent flavor).
	ExpRacks  int
	ExpHosts  int
	ExpDegree int

	// Folded Clos sizing.
	ClosK, ClosF int

	Seed int64
}

// PaperScale is the 648-host family of §5: 108-rack Opera (k=12, u=6),
// 130-rack u=7 expander, 3:1 folded Clos.
func PaperScale() Scale {
	return Scale{
		Name:  "paper",
		Racks: 108, HostsPerRack: 6, Uplinks: 6,
		ExpRacks: 130, ExpHosts: 5, ExpDegree: 7,
		ClosK: 12, ClosF: 3,
		Seed: 1,
	}
}

// SmallScale is a 64-host family with the same structural ratios, sized so
// the packet-level experiments run in seconds for tests and benchmarks.
// (The folded Clos's dimensions are quantized by its radix; k=8, F=3 gives
// 192 hosts — load is defined per host, so comparisons remain aligned.)
func SmallScale() Scale {
	return Scale{
		Name:  "small",
		Racks: 16, HostsPerRack: 4, Uplinks: 4,
		ExpRacks: 16, ExpHosts: 4, ExpDegree: 5,
		ClosK: 8, ClosF: 3,
		Seed: 1,
	}
}
