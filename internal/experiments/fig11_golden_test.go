package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFig11CanaryGolden pins the small-scale Figure 11/18 CSVs byte-for-
// byte against a checked-in golden. The failure figures are pure
// functions of (topology, seed); any drift here means a change to the
// fault model or its sampling altered published numbers — which must be
// deliberate. Regenerate with UPDATE_GOLDEN=1 go test ./internal/experiments/
// -run TestFig11CanaryGolden and review the diff.
func TestFig11CanaryGolden(t *testing.T) {
	tables, err := Fig11FaultTolerance(SmallScale(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, tb := range tables {
		b.WriteString(tb.Name)
		b.WriteByte('\n')
		b.WriteString(tb.CSV())
	}
	got := b.String()

	golden := filepath.Join("testdata", "fig11_canary_small.golden")
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if got != string(want) {
		t.Fatalf("Fig11/18 CSVs drifted from golden — fault-model change?\n--- got ---\n%s\n--- want ---\n%s",
			got, want)
	}
}
