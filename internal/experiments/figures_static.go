package experiments

import (
	"fmt"
	"math/rand"

	"github.com/opera-net/opera/internal/cost"
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/graph"
	"github.com/opera-net/opera/internal/routing"
	"github.com/opera-net/opera/internal/topology"
	"github.com/opera-net/opera/internal/workload"
)

// Fig01FlowSizeCDFs regenerates Figure 1: flow-count and byte-weighted
// CDFs of the three published workloads.
func Fig01FlowSizeCDFs() []Table {
	flows := Table{Name: "fig01_flow_cdf", Header: []string{"workload", "bytes", "cdf_flows"}}
	bytes := Table{Name: "fig01_byte_cdf", Header: []string{"workload", "bytes", "cdf_bytes"}}
	for _, d := range []*workload.FlowSizeDist{
		workload.Datamining(), workload.Websearch(), workload.Hadoop(),
	} {
		for _, a := range d.Anchors() {
			flows.Add(d.Name, a.Bytes, a.F)
			bytes.Add(d.Name, a.Bytes, d.ByteFractionBelow(a.Bytes))
		}
	}
	return []Table{flows, bytes}
}

// Fig04PathLengths regenerates Figure 4: the CDF of ToR-to-ToR path
// lengths for cost-equivalent Opera, static expander and folded-Clos
// networks. Opera's CDF aggregates over every topology slice.
func Fig04PathLengths(s Scale) ([]Table, error) {
	t := Table{Name: fmt.Sprintf("fig04_path_length_cdf_%s", s.Name),
		Header: []string{"network", "hops", "cdf"}}

	cfg := topology.Config{
		NumRacks: s.Racks, HostsPerRack: s.HostsPerRack, NumSwitches: s.Uplinks, Seed: s.Seed,
	}
	if s.Racks >= 100 {
		// §3.3 design-time realization testing: the paper's 108-rack
		// network has worst-case slice paths of 5 hops (it sizes ε on it).
		cfg.MaxDiameter = 5
	}
	o, err := topology.NewOpera(cfg)
	if err != nil {
		return nil, err
	}
	agg := graph.PathStats{Hist: make([]int, 8)}
	for sl := 0; sl < o.SlicesPerCycle(); sl++ {
		ps := o.SliceGraph(sl).AllPairs()
		for h, c := range ps.Hist {
			for len(agg.Hist) <= h {
				agg.Hist = append(agg.Hist, 0)
			}
			agg.Hist[h] += c
		}
		agg.Pairs += ps.Pairs
		agg.Disconnected += ps.Disconnected
	}
	emitCDF(&t, "opera", agg)

	e, err := topology.NewExpander(s.ExpRacks, s.ExpHosts, s.ExpDegree, s.Seed)
	if err != nil {
		return nil, err
	}
	emitCDF(&t, fmt.Sprintf("expander-u%d", s.ExpDegree), e.G.AllPairs())

	c, err := topology.NewFoldedClos(s.ClosK, s.ClosF)
	if err != nil {
		return nil, err
	}
	emitCDF(&t, fmt.Sprintf("clos-%d:1", s.ClosF), c.ToRPathStats())
	return []Table{t}, nil
}

func emitCDF(t *Table, name string, ps graph.PathStats) {
	for h, f := range ps.CDF() {
		if h == 0 {
			continue
		}
		t.Add(name, h, f)
	}
}

// Fig14CycleTime regenerates Figure 14: relative cycle time vs ToR radix,
// with and without Appendix B's grouped reconfiguration.
func Fig14CycleTime() []Table {
	t := Table{Name: "fig14_cycle_time", Header: []string{"tor_radix", "no_groups", "groups_of_6"}}
	base := float64(topology.RelativeCycleSlices(12, 0))
	for k := 12; k <= 64; k += 4 {
		t.Add(k,
			float64(topology.RelativeCycleSlices(k, 0))/base,
			float64(topology.RelativeCycleSlices(k, 6))/base)
	}
	return []Table{t}
}

// Fig16PathVsScale regenerates Figure 16: average path length vs ToR radix
// for Opera and cost-equivalent expanders at several α values.
func Fig16PathVsScale(radices []int) ([]Table, error) {
	if len(radices) == 0 {
		radices = []int{12, 16, 24, 32, 48}
	}
	t := Table{Name: "fig16_path_vs_scale", Header: []string{"network", "tor_radix", "avg_path", "hosts"}}
	for _, k := range radices {
		// Opera at its native sizing (N = 3k²/4 racks). GroupSize equals the
		// switch count (single stagger group): grouping only shortens the
		// cycle and does not change per-slice path statistics.
		n := 3 * k * k / 4
		o, err := topology.NewOpera(topology.Config{
			NumRacks: n, HostsPerRack: k / 2, NumSwitches: k / 2, GroupSize: k / 2,
			Seed: 1, UseLifting: n > 512,
		})
		if err != nil {
			return nil, err
		}
		// Average over sampled slices (path statistics concentrate).
		var sum float64
		samples := 3
		for i := 0; i < samples; i++ {
			sl := i * o.SlicesPerCycle() / samples
			sum += o.SliceGraph(sl).AllPairs().Avg()
		}
		t.Add("opera", k, sum/float64(samples), o.NumHosts())

		for _, alpha := range []float64{1.0, 1.4, 2.0, 3.0} {
			eq := cost.Equivalents(k, alpha)
			if eq.ExpanderRacks < eq.ExpanderU+1 {
				continue
			}
			e, err := topology.NewExpander(eq.ExpanderRacks, eq.ExpanderD, eq.ExpanderU, 1)
			if err != nil {
				return nil, err
			}
			t.Add(fmt.Sprintf("expander-a%.1f", alpha), k, e.G.AllPairs().Avg(), eq.Hosts)
		}
	}
	return []Table{t}, nil
}

// Fig17SpectralGap regenerates Appendix D's Figure 17: spectral gap vs
// average/worst path length for every Opera topology slice against static
// expanders of varying degree on the same host population.
func Fig17SpectralGap(s Scale) ([]Table, error) {
	t := Table{Name: "fig17_spectral_gap",
		Header: []string{"network", "spectral_gap", "avg_path", "worst_path"}}
	o, err := topology.NewOpera(topology.Config{
		NumRacks: s.Racks, HostsPerRack: s.HostsPerRack, NumSwitches: s.Uplinks, Seed: s.Seed,
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(7))
	for sl := 0; sl < o.SlicesPerCycle(); sl++ {
		g := o.SliceGraph(sl)
		ps := g.AllPairs()
		t.Add("opera-slice", g.SpectralGap(400, rng), ps.Avg(), ps.Max())
	}
	// Static expanders u = 5..8 on k = 12 ToRs with ≈ the same host count
	// (Appendix D uses 644–650 hosts).
	hosts := s.Racks * s.HostsPerRack
	k := 2 * s.Uplinks
	for u := k/2 - 1; u <= k/2+2; u++ {
		d := k - u
		racks := hosts / d
		if racks%2 == 1 && racks*u%2 == 1 {
			racks--
		}
		e, err := topology.NewExpander(racks, d, u, 3)
		if err != nil {
			return nil, err
		}
		ps := e.G.AllPairs()
		t.Add(fmt.Sprintf("static-u%d", u), e.G.SpectralGap(400, rng), ps.Avg(), ps.Max())
	}
	// Reference: Ramanujan bound at the slice's active degree.
	t.Add("ramanujan-u5", graph.RamanujanGap(5), 0, 0)
	return []Table{t}, nil
}

// GuardBandSweep validates §3.5's synchronization-tolerance claim: "each
// µs of guard time contributes a 1% relative reduction in low-latency
// capacity and a 0.2% reduction for bulk traffic". It sweeps the guard
// band and reports both capacity factors from the slice-schedule model.
func GuardBandSweep(s Scale) ([]Table, error) {
	t := Table{Name: "ablation_guard_band",
		Header: []string{"guard_us", "lowlat_capacity", "bulk_capacity"}}
	for g := 0; g <= 8; g++ {
		o, err := topology.NewOpera(topology.Config{
			NumRacks: s.Racks, HostsPerRack: s.HostsPerRack, NumSwitches: s.Uplinks,
			GuardBand: eventsim.Time(g) * eventsim.Microsecond, Seed: s.Seed,
		})
		if err != nil {
			return nil, err
		}
		t.Add(g, o.LowLatencyCapacityFactor(), o.BulkCapacityFactor())
	}
	return []Table{t}, nil
}

// Table1RuleCounts regenerates Table 1.
func Table1RuleCounts() []Table {
	t := Table{Name: "table1_rule_counts",
		Header: []string{"racks", "uplinks", "entries", "utilization_pct"}}
	for _, row := range routing.Table1() {
		t.Add(row.Racks, row.Uplinks, row.Entries, row.Utilization*100)
	}
	return []Table{t}
}

// Table2Cost regenerates Table 2 and the α estimate.
func Table2Cost() []Table {
	t := Table{Name: "table2_port_cost", Header: []string{"component", "static_usd", "opera_usd"}}
	for _, row := range cost.Table2() {
		t.Add(row.Component, row.Static, row.Opera)
	}
	t.Add("Total", cost.StaticPortCost(), cost.OperaPortCost())
	t.Add("alpha", 1.0, cost.EstimatedAlpha())
	return []Table{t}
}
