// Package lintutil holds the helpers shared by the opera-lint analyzers:
// callee resolution, package classification by import-path base, and the
// `//operalint:allow` suppression directive.
//
// Directive convention: a comment of the form
//
//	//operalint:allow <check> [<check>...] [-- reason]
//
// suppresses the named checks on the directive's own line and on the line
// immediately below it, so both trailing and preceding placements work:
//
//	fc.eng.At(at, fn) //operalint:allow closuresched -- cold path
//
//	//operalint:allow maporder -- merged into per-key slots, order-free
//	for k, v := range m { ... }
//
// Like compiler directives, the comment must start exactly with
// "//operalint:" — no space after "//".
package lintutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PathBase returns the final element of an import path: the fixture
// package "sim" and the real "github.com/opera-net/opera/internal/sim"
// both report "sim". Analyzers classify packages by this base so their
// analysistest fixtures exercise the same code path as the real tree.
func PathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// PackageIs reports whether pkg's import-path base is one of names.
func PackageIs(pkg *types.Package, names ...string) bool {
	if pkg == nil {
		return false
	}
	base := PathBase(pkg.Path())
	for _, n := range names {
		if base == n {
			return true
		}
	}
	return false
}

// Callee resolves the object a call expression invokes: a *types.Func for
// ordinary function and method calls (including interface methods), a
// *types.Builtin for append and friends, nil for calls through function
// values or type conversions.
func Callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		// Package-qualified reference (pkg.F) or promoted field access.
		return info.Uses[fun.Sel]
	}
	return nil
}

// CalleeMethod resolves call to a method and reports the method object
// along with the base of its defining package — ("sim", Inject) for both
// sim.FaultInjector.Inject and a fixture's sim.Injector.Inject. ok is
// false for non-methods.
func CalleeMethod(info *types.Info, call *ast.CallExpr) (fn *types.Func, pkgBase string, ok bool) {
	fn, _ = Callee(info, call).(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return nil, "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil, "", false
	}
	return fn, PathBase(fn.Pkg().Path()), true
}

// IsEngineSchedule reports whether call invokes one of the eventsim
// engine's scheduling methods (At, After, AtCall, AfterCall,
// ContinueCall), returning the method name.
func IsEngineSchedule(info *types.Info, call *ast.CallExpr) (name string, ok bool) {
	fn, base, ok := CalleeMethod(info, call)
	if !ok || base != "eventsim" {
		return "", false
	}
	switch fn.Name() {
	case "At", "After", "AtCall", "AfterCall", "ContinueCall":
		return fn.Name(), true
	}
	return "", false
}

// An Allowlist records which checks are suppressed on which source lines.
type Allowlist struct {
	fset *token.FileSet
	// lines maps file name → line → space-joined allowed check names.
	lines map[string]map[int]string
}

const directivePrefix = "//operalint:allow"

// NewAllowlist scans the files' comments for //operalint:allow directives.
func NewAllowlist(fset *token.FileSet, files []*ast.File) *Allowlist {
	al := &Allowlist{fset: fset, lines: make(map[string]map[int]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, found := strings.CutPrefix(c.Text, directivePrefix)
				if !found || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				// Everything before a "--" separator names checks; the
				// rest is free-form rationale.
				if i := strings.Index(rest, "--"); i >= 0 {
					rest = rest[:i]
				}
				pos := fset.Position(c.Pos())
				m := al.lines[pos.Filename]
				if m == nil {
					m = make(map[int]string)
					al.lines[pos.Filename] = m
				}
				// The directive covers its own line (trailing form) and
				// the next line (preceding form).
				m[pos.Line] += " " + rest
				m[pos.Line+1] += " " + rest
			}
		}
	}
	return al
}

// Allows reports whether a directive suppresses check at pos.
func (al *Allowlist) Allows(pos token.Pos, check string) bool {
	p := al.fset.Position(pos)
	for _, name := range strings.Fields(al.lines[p.Filename][p.Line]) {
		if strings.Trim(name, ",") == check {
			return true
		}
	}
	return false
}
