// Package analysistest runs analyzers over fixture packages and checks
// their diagnostics against `// want` comments — a dependency-free subset
// of golang.org/x/tools/go/analysis/analysistest with the same fixture
// layout and annotation syntax, so the fixtures under each analyzer's
// testdata/src would work unchanged with the upstream harness.
//
// A fixture package lives at testdata/src/<name>; its import path is just
// <name>, which is why the analyzers classify packages by import-path
// base. Fixture packages may import each other by those short paths (a
// fixture "sim" package stands in for internal/sim) and may import the
// standard library, which is resolved through `go list -export`.
//
// Expectation syntax, per line:
//
//	eng.At(t, func() {}) // want `closure literal`
//
// Each backquoted or double-quoted string after "want" is a regular
// expression that must match exactly one diagnostic reported on that
// line; diagnostics with no matching want (and wants with no matching
// diagnostic) fail the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"github.com/opera-net/opera/internal/lint/analysis"
	"github.com/opera-net/opera/internal/lint/loadpkg"
)

// TestData returns the caller's testdata directory, the conventional
// fixture root.
func TestData() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return filepath.Join(wd, "testdata")
}

// Run analyzes each named fixture package under dir/src with a and
// reports any mismatch between diagnostics and want annotations.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	ld := &loader{
		root: filepath.Join(dir, "src"),
		fset: token.NewFileSet(),
		pkgs: make(map[string]*fixturePkg),
		std:  make(map[string]string),
	}
	ld.stdImp = loadpkg.ExportImporter(ld.fset, ld.std)
	for _, name := range pkgs {
		fp, err := ld.load(name)
		if err != nil {
			t.Errorf("%s: loading fixture %q: %v", a.Name, name, err)
			continue
		}
		check(t, ld.fset, a, fp)
	}
}

// fixturePkg is one loaded fixture package.
type fixturePkg struct {
	path  string
	files []*ast.File
	types *types.Package
	info  *types.Info
}

type loader struct {
	root    string
	fset    *token.FileSet
	pkgs    map[string]*fixturePkg
	std     map[string]string // import path → export-data file
	stdImp  types.Importer
	loading []string // active load stack, for cycle reporting
}

// Import implements types.Importer over fixture-relative paths first,
// falling back to standard-library export data.
func (ld *loader) Import(path string) (*types.Package, error) {
	if info, err := os.Stat(filepath.Join(ld.root, path)); err == nil && info.IsDir() {
		fp, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return fp.types, nil
	}
	exports, err := loadpkg.StdExports(path)
	if err != nil {
		return nil, err
	}
	for k, v := range exports {
		ld.std[k] = v
	}
	return ld.stdImp.Import(path)
}

func (ld *loader) load(path string) (*fixturePkg, error) {
	if fp, ok := ld.pkgs[path]; ok {
		return fp, nil
	}
	for _, active := range ld.loading {
		if active == path {
			return nil, fmt.Errorf("fixture import cycle through %q", path)
		}
	}
	ld.loading = append(ld.loading, path)
	defer func() { ld.loading = ld.loading[:len(ld.loading)-1] }()

	dir := filepath.Join(ld.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	fp := &fixturePkg{path: path, info: loadpkg.NewInfo()}
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		fp.files = append(fp.files, f)
	}
	conf := types.Config{Importer: ld}
	fp.types, err = conf.Check(path, ld.fset, fp.files, fp.info)
	if err != nil {
		return nil, err
	}
	ld.pkgs[path] = fp
	return fp, nil
}

// want is one expected diagnostic.
type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

func check(t *testing.T, fset *token.FileSet, a *analysis.Analyzer, fp *fixturePkg) {
	t.Helper()
	var wants []*want
	for _, f := range fp.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := fset.Position(c.Pos())
				ws, err := parseWants(c.Text, pos)
				if err != nil {
					t.Errorf("%s: %v", pos, err)
				}
				wants = append(wants, ws...)
			}
		}
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     fp.files,
		Pkg:       fp.types,
		TypesInfo: fp.info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Errorf("%s: running on %q: %v", a.Name, fp.path, err)
		return
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.rx.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s: %s", a.Name, pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: %s:%d: no diagnostic matched %q", a.Name, w.file, w.line, w.rx)
		}
	}
}

// parseWants extracts the expectations from one comment's text. Only
// comments of the exact form `// want "..."` are expectations; "want"
// appearing mid-sentence in prose is not.
func parseWants(text string, pos token.Position) ([]*want, error) {
	body, ok := strings.CutPrefix(text, "//")
	if !ok {
		return nil, nil // /* */ comments carry no expectations
	}
	rest, ok := strings.CutPrefix(strings.TrimSpace(body), "want ")
	if !ok {
		return nil, nil
	}
	rest = strings.TrimSpace(rest)
	var wants []*want
	for rest != "" {
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return nil, fmt.Errorf("malformed want expectation %q", rest)
		}
		pat, err := strconv.Unquote(q)
		if err != nil {
			return nil, fmt.Errorf("unquoting %q: %v", q, err)
		}
		rx, err := regexp.Compile(pat)
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %q: %v", pat, err)
		}
		wants = append(wants, &want{file: pos.Filename, line: pos.Line, rx: rx})
		rest = strings.TrimSpace(rest[len(q):])
	}
	return wants, nil
}
