// Package analysis is a minimal, dependency-free subset of
// golang.org/x/tools/go/analysis: just enough surface for the opera-lint
// analyzers and their tests.
//
// The repository builds hermetically — no module downloads — so vendoring
// the real x/tools module is not an option; instead this package mirrors
// its API shape (Analyzer, Pass, Diagnostic, Pass.Reportf) exactly. If the
// build environment ever grows a vendored golang.org/x/tools, the four
// analyzers under internal/lint can switch to it by changing only their
// import paths: every field and method used here has the same name and
// meaning as the upstream original.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static-analysis pass: a name, a documentation
// string, and a Run function applied once per type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//operalint:allow <name>` suppression directives (see the lintutil
	// package for the directive convention).
	Name string

	// Doc is the analyzer's documentation: a one-line summary, a blank
	// line, then detail.
	Doc string

	// Run applies the analyzer to a package. It must report findings via
	// pass.Report/Reportf rather than by returning them; the result value
	// exists only for x/tools API compatibility and is ignored by the
	// opera-lint driver.
	Run func(*Pass) (any, error)
}

// A Pass presents one type-checked package to an Analyzer's Run function.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet // positions for Files
	Files     []*ast.File    // the package's syntax, parsed with comments
	Pkg       *types.Package // the type-checked package
	TypesInfo *types.Info    // type information for Files

	// Report delivers one diagnostic. The driver and the analysistest
	// harness install their own sinks.
	Report func(Diagnostic)
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
