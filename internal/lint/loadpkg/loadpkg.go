// Package loadpkg loads and type-checks Go packages for the opera-lint
// analyzers without depending on golang.org/x/tools/go/packages.
//
// It shells out to `go list -export -deps -json` once per Load call: the
// go command resolves patterns, builds every dependency, and hands back
// compiler export data for each package in the graph. Target packages are
// then parsed from source (with comments, so suppression directives are
// visible) and type-checked against that export data — the same
// architecture as an x/tools unitchecker driver, using only the standard
// library's go/importer.
package loadpkg

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
)

// A Package is one parsed and type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File // non-test Go files, parsed with comments
	Types      *types.Package
	Info       *types.Info
	Err        error // listing, parse, or type-check failure
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") relative to dir and returns one
// Package per matched (non-dependency-only) package. Packages that fail
// to list, parse, or type-check are returned with Err set rather than
// aborting the whole load, so a driver can report every problem at once.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, &p)
		}
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		pkg := &Package{ImportPath: t.ImportPath, Dir: t.Dir, Fset: fset}
		pkgs = append(pkgs, pkg)
		if t.Error != nil {
			pkg.Err = errors.New(t.Error.Err)
			continue
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				pkg.Err = err
				break
			}
			pkg.Files = append(pkg.Files, f)
		}
		if pkg.Err != nil {
			continue
		}
		pkg.Info = NewInfo()
		conf := types.Config{Importer: imp}
		pkg.Types, pkg.Err = conf.Check(t.ImportPath, fset, pkg.Files, pkg.Info)
	}
	return pkgs, nil
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// ExportImporter returns a types.Importer that resolves import paths via
// gc export-data files, as produced by `go list -export` (exports maps
// import path → export file path).
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("loadpkg: no export data for %q", path)
		}
		return os.Open(f)
	})
}

var (
	stdExportMu    sync.Mutex
	stdExportCache = make(map[string]string)
)

// StdExports resolves export-data files for the given (typically standard
// library) import paths and their dependencies, caching results across
// calls. The analysistest harness uses it to type-check fixture packages
// that import packages like "time" or "math/rand".
func StdExports(paths ...string) (map[string]string, error) {
	stdExportMu.Lock()
	defer stdExportMu.Unlock()

	var missing []string
	for _, p := range paths {
		if _, ok := stdExportCache[p]; !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) > 0 {
		args := append([]string{
			"list", "-e", "-export", "-deps", "-json=ImportPath,Export",
		}, missing...)
		cmd := exec.Command("go", args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go list %v: %v\n%s", missing, err, stderr.Bytes())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); errors.Is(err, io.EOF) {
				break
			} else if err != nil {
				return nil, fmt.Errorf("go list %v: decoding output: %v", missing, err)
			}
			if p.Export != "" {
				stdExportCache[p.ImportPath] = p.Export
			}
		}
	}
	res := make(map[string]string, len(stdExportCache))
	for k, v := range stdExportCache {
		res[k] = v
	}
	return res, nil
}
