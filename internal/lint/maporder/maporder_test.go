package maporder_test

import (
	"testing"

	"github.com/opera-net/opera/internal/lint/analysistest"
	"github.com/opera-net/opera/internal/lint/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), maporder.Analyzer, "sim", "unordered", "freelist", "obs")
}
