// Package unordered is not one of the determinism-critical package
// bases, so the analyzer must stay silent even on an order-sensitive
// loop.
package unordered

func collect(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
