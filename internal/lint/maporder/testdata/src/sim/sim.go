package sim

import (
	"fmt"
	"io"
	"sort"

	"eventsim"
)

func badAppend(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `appends to a slice in iteration order`
		out = append(out, v)
	}
	return out
}

func goodSorted(m map[string]int) []int {
	keys := make([]string, 0, len(m))
	for k := range m { // good: the canonical collect-and-sort idiom
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]int, 0, len(keys))
	for _, k := range keys { // good: ranging a sorted slice
		out = append(out, m[k])
	}
	return out
}

func badFloat(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `accumulates floating-point values`
		sum += v
	}
	return sum
}

func goodInt(m map[string]int) int {
	var n int
	for _, v := range m { // good: integer addition is associative
		n += v
	}
	return n
}

func badSchedule(eng *eventsim.Engine, m map[int]eventsim.Time) {
	for _, t := range m { // want `schedules engine events in iteration order`
		eng.AtCall(t, nil, nil)
	}
}

func badWrite(w io.Writer, m map[string]int) {
	for k, v := range m { // want `writes output in iteration order`
		fmt.Fprintf(w, "%s,%d\n", k, v)
	}
}

func badNested(m map[string][]float64) []float64 {
	var out []float64
	for _, vs := range m { // want `appends to a slice in iteration order`
		for _, v := range vs {
			out = append(out, v)
		}
	}
	return out
}

func allowedLoop(m map[string]int) []int {
	var out []int
	//operalint:allow maporder -- caller sorts the result before use
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

func goodDisjoint(dst, src map[string]int) {
	for k, v := range src { // good: disjoint per-key writes are order-free
		dst[k] = v
	}
}
