// Package obs is a determinism-critical package base: snapshots are
// compared across observed and unobserved runs, so any map-ordered slice
// in one would diverge between processes.
package obs

type tally struct{ done int }

func snapshotTags(tags map[string]*tally, out []int) []int {
	for _, t := range tags { // want `map iteration order is randomized but this loop appends to a slice in iteration order`
		out = append(out, t.done)
	}
	return out
}

// collectKeys is the sanctioned key-collect idiom: gather, sort later.
func collectKeys(tags map[string]*tally) []string {
	keys := make([]string, 0, len(tags))
	for k := range tags {
		keys = append(keys, k)
	}
	return keys
}
