// Package freelist is a determinism-critical package base: pool reuse
// order decides which struct a flow gets, so anything feeding a pool
// from a map iteration is order-sensitive.
package freelist

func drain(pools map[int]*[]int, spill []int) []int {
	for _, p := range pools { // want `map iteration order is randomized but this loop appends to a slice in iteration order`
		spill = append(spill, (*p)...)
	}
	return spill
}
