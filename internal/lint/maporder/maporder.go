// Package maporder defines an analyzer that flags order-sensitive
// iteration over Go maps in the packages where map order has bitten
// before.
//
// Go randomizes map iteration order per run. That is harmless when each
// iteration touches disjoint state, but it silently breaks the
// repository's byte-identity contract when the body does anything whose
// result depends on visit order: appending to a slice (CSV rows, merge
// queues), scheduling engine events (tie-order is (time, seq) — seq is
// assignment order), writing output, or accumulating floats (addition is
// not associative in the last ulp — the exact hazard behind the "merge
// collectors in global index order" sweep landmine).
//
// The analyzer checks the packages where these invariants live (sim,
// telemetry, sweep, scenario). The canonical fix — collect the keys,
// sort, then iterate the sorted slice — is recognized: a loop whose only
// effect is appending the key itself to a slice is exempt. Loops that are
// order-insensitive for deeper reasons carry
// `//operalint:allow maporder -- reason`.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/opera-net/opera/internal/lint/analysis"
	"github.com/opera-net/opera/internal/lint/lintutil"
)

// orderedPackages are the import-path bases whose outputs must be
// byte-identical across runs.
var orderedPackages = []string{"sim", "telemetry", "sweep", "scenario", "freelist", "obs"}

var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag order-sensitive range-over-map loops in determinism-critical packages\n\n" +
		"Flags ranging over a map when the body appends to a slice, schedules\n" +
		"events, writes output, or accumulates floats; collect-and-sort the\n" +
		"keys first, or annotate with //operalint:allow maporder.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.PackageIs(pass.Pkg, orderedPackages...) {
		return nil, nil
	}
	allow := lintutil.NewAllowlist(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if allow.Allows(rng.Pos(), "maporder") {
				return true
			}
			if hazard := findHazard(pass.TypesInfo, rng); hazard != "" {
				pass.Reportf(rng.Pos(),
					"map iteration order is randomized but this loop %s; collect and sort the keys first, or annotate with //operalint:allow maporder", hazard)
			}
			return true
		})
	}
	return nil, nil
}

// findHazard scans the loop body for an operation whose outcome depends
// on iteration order, returning a description of the first one found.
func findHazard(info *types.Info, rng *ast.RangeStmt) string {
	keyIdent, _ := rng.Key.(*ast.Ident)
	var hazard string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if hazard != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			switch obj := lintutil.Callee(info, n).(type) {
			case *types.Builtin:
				if obj.Name() == "append" && !isKeyCollect(info, n, keyIdent) {
					hazard = "appends to a slice in iteration order"
				}
			case *types.Func:
				if name, ok := lintutil.IsEngineSchedule(info, n); ok {
					hazard = "schedules engine events in iteration order (Engine." + name + "; tie-order is scheduling order)"
				} else if isOutputWrite(obj) {
					hazard = "writes output in iteration order (" + obj.Name() + ")"
				}
			}
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if isFloat(info.TypeOf(n.Lhs[0])) {
					hazard = "accumulates floating-point values (addition is order-sensitive in the last ulp)"
				}
			}
		case *ast.IncDecStmt:
			if isFloat(info.TypeOf(n.X)) {
				hazard = "accumulates floating-point values (addition is order-sensitive in the last ulp)"
			}
		}
		return true
	})
	return hazard
}

// isFloat reports whether t's underlying type is a floating-point (or
// complex) basic type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isKeyCollect recognizes the canonical sort-the-keys idiom: an append
// whose sole appended element is the range key itself, as in
// keys = append(keys, k). Collected keys are order-free once sorted.
func isKeyCollect(info *types.Info, call *ast.CallExpr, key *ast.Ident) bool {
	if key == nil || len(call.Args) != 2 {
		return false
	}
	keyObj := info.Defs[key]
	if keyObj == nil {
		keyObj = info.Uses[key] // `for k = range m` over a pre-declared k
	}
	arg, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
	return ok && keyObj != nil && info.Uses[arg] == keyObj
}

// isOutputWrite reports whether fn is an output call: fmt's writer-style
// printers or a Write* method (io.Writer, strings.Builder, csv.Writer...).
func isOutputWrite(fn *types.Func) bool {
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
			return true
		}
	}
	if sig, _ := fn.Type().(*types.Signature); sig != nil && sig.Recv() != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune", "WriteAll":
			return true
		}
	}
	return false
}
