package consumer

import (
	"sim"
	"telemetry"
)

func bad(inj sim.FaultInjector, s, o *telemetry.Sketch, c *telemetry.Collector, blob []byte) {
	inj.Inject(sim.Target{}, sim.Fault{}, 5) // want `sim\.Inject error is discarded`
	inj.Recover(sim.Target{}, 5)             // want `sim\.Recover error is discarded`
	s.TryMerge(o)                            // want `telemetry\.TryMerge error is discarded`
	c.UnmarshalBinary(blob)                  // want `telemetry\.UnmarshalBinary error is discarded`
	_ = s.TryMerge(o)                        // want `telemetry\.TryMerge error is discarded`
	go c.UnmarshalBinary(blob)               // want `telemetry\.UnmarshalBinary error is discarded`
	defer c.UnmarshalBinary(blob)            // want `telemetry\.UnmarshalBinary error is discarded`
}

func concrete(inj sim.Injector) {
	inj.Inject(sim.Target{}, sim.Fault{}, 5) // want `sim\.Inject error is discarded`
}

func good(inj sim.FaultInjector, s, o *telemetry.Sketch, c *telemetry.Collector, blob []byte) error {
	if err := inj.Inject(sim.Target{}, sim.Fault{}, 5); err != nil {
		return err
	}
	err := s.TryMerge(o)
	if err != nil {
		return err
	}
	return c.UnmarshalBinary(blob)
}

func allowed(inj sim.FaultInjector) {
	inj.Recover(sim.Target{}, 5) //operalint:allow injecterr -- probing panic behavior only
}

type local struct{}

func (local) Inject() error { return nil }

func notWatched() {
	local{}.Inject() // good: not the sim package's Inject
}
