// Package telemetry is a fixture stand-in for internal/telemetry's
// merge and codec surface.
package telemetry

type Sketch struct{}

func (*Sketch) TryMerge(other *Sketch) error { return nil }

type Collector struct{}

func (*Collector) UnmarshalBinary(data []byte) error { return nil }
