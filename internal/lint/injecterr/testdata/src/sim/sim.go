// Package sim is a fixture stand-in for internal/sim's fault-injection
// surface.
package sim

type Time int64

type Target struct{}

type Fault struct{}

type FaultInjector interface {
	Inject(t Target, f Fault, at Time) error
	Recover(t Target, at Time) error
}

type Injector struct{}

func (Injector) Inject(t Target, f Fault, at Time) error { return nil }
func (Injector) Recover(t Target, at Time) error         { return nil }
