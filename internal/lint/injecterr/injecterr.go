// Package injecterr defines an errcheck-style analyzer for the error
// results that are silent no-ops when dropped.
//
// Three API families in this repository report failure only through their
// return value, and do nothing at all when the call is invalid:
// sim.FaultInjector.Inject/Recover (bad coordinates or an unsupported
// target mean the fault is never scheduled — the scenario then measures a
// healthy fabric and publishes wrong numbers), telemetry's Sketch.TryMerge
// (an alpha mismatch leaves the receiver untouched — a shard's samples
// vanish from the pooled quantiles), and the telemetry codec's
// UnmarshalBinary methods (a corrupt or version-skewed blob leaves the
// receiver untouched). A dropped error at any of these call sites is an
// experiment silently computing the wrong thing.
//
// The analyzer flags calls whose error result is discarded — expression
// statements, go/defer statements, and assignments to blank. Intentional
// drops carry `//operalint:allow injecterr -- reason`.
package injecterr

import (
	"go/ast"

	"github.com/opera-net/opera/internal/lint/analysis"
	"github.com/opera-net/opera/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "injecterr",
	Doc: "require checking the error results that are silent no-ops when dropped\n\n" +
		"Flags discarded errors from sim FaultInjector Inject/Recover,\n" +
		"telemetry TryMerge, and the telemetry codec's UnmarshalBinary; a\n" +
		"dropped error means the fault was never injected or the state never\n" +
		"merged. Annotate intentional drops with //operalint:allow injecterr.",
	Run: run,
}

// watched maps defining-package base → method names whose error result
// must be consumed.
var watched = map[string]map[string]string{
	"sim": {
		"Inject":  "the fault is never scheduled",
		"Recover": "the recovery is never scheduled",
	},
	"telemetry": {
		"TryMerge":        "the merge leaves the receiver untouched",
		"UnmarshalBinary": "a failed decode leaves the receiver untouched",
	},
}

func run(pass *analysis.Pass) (any, error) {
	allow := lintutil.NewAllowlist(pass.Fset, pass.Files)
	report := func(call *ast.CallExpr) {
		fn, base, ok := lintutil.CalleeMethod(pass.TypesInfo, call)
		if !ok {
			return
		}
		consequence, ok := watched[base][fn.Name()]
		if !ok || allow.Allows(call.Pos(), "injecterr") {
			return
		}
		pass.Reportf(call.Pos(),
			"%s.%s error is discarded — on failure %s, a silent no-op; check the error, or annotate with //operalint:allow injecterr", base, fn.Name(), consequence)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					report(call)
				}
			case *ast.GoStmt:
				report(n.Call)
			case *ast.DeferStmt:
				report(n.Call)
			case *ast.AssignStmt:
				// A call assigned entirely to blanks is still a drop.
				if len(n.Rhs) != 1 || !allBlank(n.Lhs) {
					return true
				}
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
					report(call)
				}
			}
			return true
		})
	}
	return nil, nil
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}
