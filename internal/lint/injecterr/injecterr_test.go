package injecterr_test

import (
	"testing"

	"github.com/opera-net/opera/internal/lint/analysistest"
	"github.com/opera-net/opera/internal/lint/injecterr"
)

func TestInjectErr(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), injecterr.Analyzer, "consumer")
}
