package noclosuresched_test

import (
	"testing"

	"github.com/opera-net/opera/internal/lint/analysistest"
	"github.com/opera-net/opera/internal/lint/noclosuresched"
)

func TestNoClosureSched(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), noclosuresched.Analyzer, "sim", "coldcode", "freelist", "obs")
}
