package sim

import "eventsim"

type pump struct{}

func (p *pump) OnEvent(arg any) {}

func schedule(eng *eventsim.Engine, p *pump) {
	eng.At(5, func() {})    // want `closure literal scheduled via Engine\.At allocates per event`
	eng.After(5, func() {}) // want `closure literal scheduled via Engine\.After allocates per event`

	eng.AtCall(5, p, nil)    // good: pre-bound form
	eng.AfterCall(5, p, nil) // good: pre-bound form

	//operalint:allow closuresched -- cold path: runs once at setup
	eng.At(5, func() {})
	eng.After(5, func() {}) //operalint:allow closuresched -- trailing form
}
