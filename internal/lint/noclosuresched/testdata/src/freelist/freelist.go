// Package freelist is a hot-path package base: its pools back per-event
// and per-flow state, so closure scheduling here allocates on the same
// critical path the pools exist to keep allocation-free.
package freelist

import "eventsim"

func warm(eng *eventsim.Engine) {
	eng.After(5, func() {}) // want `closure literal scheduled via Engine\.After allocates per event`
}
