// Package eventsim is a fixture stand-in for internal/eventsim: the
// analyzers match scheduling calls by package base and method name, so
// this skeleton exercises the same resolution path as the real engine.
package eventsim

type Time int64

type Event struct{}

type Handler interface{ OnEvent(arg any) }

type Engine struct{}

func (e *Engine) At(t Time, fn func()) *Event                    { return nil }
func (e *Engine) After(d Time, fn func()) *Event                 { return nil }
func (e *Engine) AtCall(t Time, h Handler, arg any) *Event       { return nil }
func (e *Engine) AfterCall(d Time, h Handler, arg any) *Event    { return nil }
func (e *Engine) ContinueCall(d Time, h Handler, arg any) *Event { return nil }
