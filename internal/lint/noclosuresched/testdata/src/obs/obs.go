// Package obs is a hot-path package base: observers schedule their
// sampling on the engine's meta-event surface, and a closure literal
// there would allocate once per sample for the whole run.
package obs

import "eventsim"

type publisher struct{ eng *eventsim.Engine }

func (p *publisher) OnEvent(arg any) {}

func (p *publisher) attach(at eventsim.Time) {
	p.eng.After(at, func() {}) // want `closure literal scheduled via Engine\.After allocates per event`
}

// rearm uses the pre-bound Handler form — allocation-free and unflagged.
func (p *publisher) rearm(at eventsim.Time) {
	p.eng.AtCall(at, p, nil)
}
