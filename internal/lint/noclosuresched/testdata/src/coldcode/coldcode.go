// Package coldcode is not one of the hot-path package bases, so closure
// scheduling here is fine and the analyzer must stay silent.
package coldcode

import "eventsim"

func setup(eng *eventsim.Engine) {
	eng.At(5, func() {})
	eng.After(5, func() {})
}
