// Package noclosuresched defines an analyzer that forbids closure-literal
// scheduling on the packet hot path.
//
// PR 4 made the packet hot path allocation-free by replacing every
// per-event closure with the engine's pre-bound forms: AtCall/AfterCall
// take a long-lived Handler plus a pointer-sized arg, so steady-state
// scheduling never touches the heap. A func-literal argument to
// eventsim.Engine.At or After silently reintroduces one allocation per
// event — invisible in review, visible only when the ≤2-allocs CI gate or
// a benchmark regresses. This analyzer flags the closure at the call site
// instead.
//
// Only the hot-path packages (internal/sim, internal/ndp,
// internal/rotorlb, internal/eventsim) are checked; genuinely cold paths
// inside them can carry `//operalint:allow closuresched -- reason`.
package noclosuresched

import (
	"go/ast"

	"github.com/opera-net/opera/internal/lint/analysis"
	"github.com/opera-net/opera/internal/lint/lintutil"
)

// hotPathPackages are the import-path bases where per-event allocations
// are on the packet-forwarding critical path.
var hotPathPackages = []string{"sim", "ndp", "rotorlb", "eventsim", "freelist", "obs"}

var Analyzer = &analysis.Analyzer{
	Name: "noclosuresched",
	Doc: "forbid closure-literal eventsim scheduling in hot-path packages\n\n" +
		"Flags func-literal arguments to eventsim.Engine.At/After in the packet\n" +
		"hot path; use the allocation-free AtCall/AfterCall pre-bound Handler\n" +
		"forms, or annotate a cold path with //operalint:allow closuresched.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.PackageIs(pass.Pkg, hotPathPackages...) {
		return nil, nil
	}
	allow := lintutil.NewAllowlist(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := lintutil.IsEngineSchedule(pass.TypesInfo, call)
			if !ok || (name != "At" && name != "After") {
				return true
			}
			for _, arg := range call.Args {
				if _, isLit := ast.Unparen(arg).(*ast.FuncLit); !isLit {
					continue
				}
				if allow.Allows(call.Pos(), "closuresched") {
					continue
				}
				pass.Reportf(call.Pos(),
					"closure literal scheduled via Engine.%s allocates per event on the hot path; use the pre-bound Engine.%sCall(t, Handler, arg) form, or annotate a cold path with //operalint:allow closuresched", name, name)
			}
			return true
		})
	}
	return nil, nil
}
