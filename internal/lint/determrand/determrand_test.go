package determrand_test

import (
	"testing"

	"github.com/opera-net/opera/internal/lint/analysistest"
	"github.com/opera-net/opera/internal/lint/determrand"
)

func TestDetermRand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), determrand.Analyzer, "simlib", "mainprog")
}
