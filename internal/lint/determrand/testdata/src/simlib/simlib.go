package simlib

import (
	"math/rand"
	"time"
)

func bad() {
	_ = time.Now()                                      // want `time\.Now reads the wall clock`
	_ = rand.Intn(4)                                    // want `math/rand\.Intn draws from the process-global RNG`
	rand.Shuffle(4, func(i, j int) {})                  // want `math/rand\.Shuffle draws from the process-global RNG`
	_ = rand.Float64()                                  // want `math/rand\.Float64 draws from the process-global RNG`
	_ = rand.New(rand.NewSource(time.Now().UnixNano())) // want `time\.Now reads the wall clock`
}

func good(seed int64, start time.Time) time.Duration {
	r := rand.New(rand.NewSource(seed)) // good: constructors are exempt
	_ = r.Intn(4)                       // good: methods on a seeded *rand.Rand
	r.Shuffle(4, func(i, j int) {})
	return 5 * time.Millisecond // good: time arithmetic without the wall clock
}

func allowed() time.Time {
	return time.Now() //operalint:allow determrand -- wall-clock progress logging
}
