// Command binaries may time themselves for progress output: package main
// is exempt and the analyzer must stay silent here.
package main

import (
	"math/rand"
	"time"
)

func main() {
	start := time.Now()
	_ = rand.Intn(4)
	_ = time.Since(start)
}
