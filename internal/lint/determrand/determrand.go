// Package determrand defines an analyzer that forbids wall-clock reads
// and globally-seeded randomness in simulation code.
//
// Every result this repository publishes depends on bit-exact
// reproducibility: the same seed must yield byte-identical figure CSVs at
// any parallelism, worker count, or shard order. That contract dies the
// moment library code reads the wall clock (time.Now and friends) or
// draws from math/rand's process-global generator (rand.Intn,
// rand.Shuffle, ...): the global source is shared across goroutines, so
// scenario fan-out makes draws race-ordered, and wall-clock seeds differ
// per run by construction.
//
// The analyzer applies to every non-main package (command binaries may
// time themselves for progress output); simulation code must derive
// *rand.Rand instances from the engine/scenario seed (rand.New(
// rand.NewSource(seed)) is fine — constructors are exempt) and take all
// times from the engine clock. Genuinely non-simulation uses can carry
// `//operalint:allow determrand -- reason`.
package determrand

import (
	"go/ast"
	"go/types"

	"github.com/opera-net/opera/internal/lint/analysis"
	"github.com/opera-net/opera/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "determrand",
	Doc: "forbid wall-clock time and global-RNG draws in simulation packages\n\n" +
		"Flags time.Now/Since/Until and package-level math/rand draws (Intn,\n" +
		"Shuffle, ...) outside package main; derive RNGs from the engine or\n" +
		"scenario seed and times from the engine clock, or annotate with\n" +
		"//operalint:allow determrand.",
	Run: run,
}

// wallClockFuncs are the time package's wall-clock reads.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors are the math/rand (and v2) package-level functions that
// build explicitly-seeded generators rather than drawing from the global
// one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil
	}
	allow := lintutil.NewAllowlist(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, _ := lintutil.Callee(pass.TypesInfo, call).(*types.Func)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if sig, _ := fn.Type().(*types.Signature); sig == nil || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are seeded by construction
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] && !allow.Allows(call.Pos(), "determrand") {
					pass.Reportf(call.Pos(),
						"time.%s reads the wall clock; simulation code must be deterministic — use the engine clock, or annotate with //operalint:allow determrand", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if randConstructors[fn.Name()] || allow.Allows(call.Pos(), "determrand") {
					return true
				}
				pass.Reportf(call.Pos(),
					"%s.%s draws from the process-global RNG; derive a generator from the engine/scenario seed (rand.New(rand.NewSource(seed))), or annotate with //operalint:allow determrand", fn.Pkg().Path(), fn.Name())
			}
			return true
		})
	}
	return nil, nil
}
