// Package fluid provides flow-level (fluid) steady-state throughput models
// for the cost-normalized comparisons of §5.6 (Figures 12 and 15), where
// the 5,184-host networks make packet-level simulation impractical — the
// paper's own figures report steady-state throughput, not packet dynamics.
//
//   - Folded Clos: throughput is oversubscription-limited and traffic
//     pattern independent: θ = min(1, 1/F(α)).
//   - Static expander: demands are routed over all shortest paths with
//     equal splitting (ECMP spraying, as the paper's NDP expander does) and
//     θ = min(1, 1/max-link-load).
//   - Opera / RotorNet: a slice-granularity RotorLB simulation — direct
//     service first, then two-hop VLB into spare circuit capacity — with
//     per-rack egress/ingress limits; θ is the delivered fraction at
//     steady state.
package fluid

import (
	"math"

	"github.com/opera-net/opera/internal/cost"
	"github.com/opera-net/opera/internal/graph"
	"github.com/opera-net/opera/internal/topology"
)

// ClosThroughput returns per-active-host throughput of the cost-equivalent
// folded Clos at premium α: the oversubscription bound, independent of
// traffic pattern (§5.6).
func ClosThroughput(alpha float64) float64 {
	f := cost.Oversubscription(alpha)
	return math.Min(1, 1/f)
}

// ExpanderThroughput returns per-active-host throughput of a static
// expander for the given rack-level demand matrix (entries in units of
// host line rate), under the routing the packet-level expander baseline
// uses: the source ToR sprays each demand equally across all of its
// fabric uplinks (first-hop diversity, as NDP spraying provides), after
// which packets follow shortest paths with equal-cost splitting at every
// hop. The answer is min(1, 1/max directed-link load), each fabric link
// having one host-rate of capacity per direction.
func ExpanderThroughput(e *topology.Expander, demand [][]float64) float64 {
	n := e.NumRacks
	// All-pairs distances.
	dist := make([][]int, n)
	for v := 0; v < n; v++ {
		dist[v] = e.G.BFS(v)
	}
	load := make(map[int]float64, n*e.Degree) // directed link loads, key x*n+y

	var total float64
	frac := make([]float64, n)
	// route propagates amt units from src toward dst (spray across src's
	// uplinks, then shortest-path DAG). transpose flips each link's load
	// accounting, which routes the geometrically identical reverse
	// direction: splitting each demand half forward, half reversed models
	// balanced first- AND last-hop diversity, as K-shortest-path multipath
	// achieves in practice [29].
	route := func(src, dst int, amt float64, transpose bool) {
		dt := dist[dst]
		for i := range frac {
			frac[i] = 0
		}
		add := func(x, y int, l float64) {
			if transpose {
				load[y*n+x] += l
			} else {
				load[x*n+y] += l
			}
		}
		ns := e.G.Neighbors(src)
		share := 1.0 / float64(len(ns))
		maxLevel := 0
		for _, y := range ns {
			add(src, int(y), amt*share)
			frac[y] += share
			if dt[y] > maxLevel {
				maxLevel = dt[y]
			}
		}
		for lvl := maxLevel; lvl >= 1; lvl-- {
			for x := 0; x < n; x++ {
				fx := frac[x]
				if fx == 0 || dt[x] != lvl || x == dst {
					continue
				}
				frac[x] = 0
				var hops []int32
				for _, y := range e.G.Neighbors(x) {
					if dt[y] == lvl-1 {
						hops = append(hops, y)
					}
				}
				if len(hops) == 0 {
					continue
				}
				hshare := fx / float64(len(hops))
				for _, y := range hops {
					add(x, int(y), amt*hshare)
					frac[y] += hshare
				}
			}
		}
	}
	type pairFlow struct {
		s, t int
		d    float64
	}
	var pairs []pairFlow
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			d := demand[s][t]
			if d == 0 || s == t || dist[s][t] == graph.Unreachable {
				continue
			}
			total += d
			pairs = append(pairs, pairFlow{s, t, d})
			route(s, t, d/2, false)
			route(t, s, d/2, true)
		}
	}
	if total == 0 {
		return 1
	}
	// Per-flow bottleneck: a flow's rate is limited by the most loaded
	// link carrying a meaningful share of it (max-min transports throttle
	// only the flows crossing a hotspot, not the whole pattern). Aggregate
	// throughput is the demand-weighted mean of per-flow rates.
	var delivered float64
	for _, pf := range pairs {
		marks := make(map[int]float64)
		collect := func(src, dst int, transpose bool) {
			dt := dist[dst]
			for i := range frac {
				frac[i] = 0
			}
			mark := func(x, y int, share float64) {
				if transpose {
					marks[y*n+x] += share
				} else {
					marks[x*n+y] += share
				}
			}
			ns := e.G.Neighbors(src)
			share := 0.5 / float64(len(ns))
			maxLevel := 0
			for _, y := range ns {
				mark(src, int(y), share)
				frac[y] += share
				if dt[y] > maxLevel {
					maxLevel = dt[y]
				}
			}
			for lvl := maxLevel; lvl >= 1; lvl-- {
				for x := 0; x < n; x++ {
					fx := frac[x]
					if fx == 0 || dt[x] != lvl || x == dst {
						continue
					}
					frac[x] = 0
					var hops []int32
					for _, y := range e.G.Neighbors(x) {
						if dt[y] == lvl-1 {
							hops = append(hops, y)
						}
					}
					if len(hops) == 0 {
						continue
					}
					hshare := fx / float64(len(hops))
					for _, y := range hops {
						mark(x, int(y), hshare)
						frac[y] += hshare
					}
				}
			}
		}
		collect(pf.s, pf.t, false)
		collect(pf.t, pf.s, true)
		var bottleneck float64
		for link, share := range marks {
			if share < 0.05 {
				continue // a sliver of the flow; max-min reroutes around it
			}
			if l := load[link]; l > bottleneck {
				bottleneck = l
			}
		}
		rate := 1.0
		if bottleneck > 1 {
			rate = 1 / bottleneck
		}
		delivered += pf.d * rate
	}
	return math.Min(1, delivered/total)
}

// RotorParams configures the slice-level RotorLB fluid simulation.
type RotorParams struct {
	// WarmupCycles and MeasureCycles control the measurement window.
	WarmupCycles, MeasureCycles int
	// DisableVLB turns off two-hop offloading (ablation).
	DisableVLB bool
}

// DefaultRotorParams returns sensible measurement windows.
func DefaultRotorParams() RotorParams {
	return RotorParams{WarmupCycles: 4, MeasureCycles: 8}
}

// OperaBulkThroughput simulates RotorLB at slice granularity on an Opera
// topology under the given rack-level demand rates (units of host line
// rate; an entry of 1.0 means one host's full rate from rack a to rack b)
// and returns delivered ÷ offered at steady state.
//
// Capacity units: one "unit" is one host-link-slice of bytes. A circuit
// carries its window fraction (≈ duty cycle) per slice; each rack can
// inject at most d units per slice (its hosts' NICs) and absorb at most d.
func OperaBulkThroughput(o *topology.Opera, demand [][]float64, p RotorParams) float64 {
	n := o.NumRacks()
	d := float64(o.HostsPerRack())
	slice := o.SliceDuration()
	windows := func(s int) []windowed {
		out := make([]windowed, 0, o.Uplinks())
		for sw := 0; sw < o.Uplinks(); sw++ {
			start, end := o.BulkWindow(sw, s)
			cap := float64(end-start) / float64(slice)
			if cap <= 0 {
				continue
			}
			out = append(out, windowed{sw: sw, cap: cap})
		}
		return out
	}
	peerOf := func(s, rack, sw int) int { return o.SwitchMatching(sw, s).Peer(rack) }
	threshold := float64(o.Config().GroupSize) // one cycle's direct drainage in units
	return rotorFluid(n, d, o.SlicesPerCycle(), windows, peerOf, demand, threshold, p)
}

// RotorNetBulkThroughput is the RotorNet counterpart: synchronized slots,
// single window per pair per cycle.
func RotorNetBulkThroughput(r *topology.RotorNet, demand [][]float64, p RotorParams) float64 {
	n := r.NumRacks
	d := float64(r.HostsPerRack)
	start, end := r.BulkWindow()
	cap := float64(end-start) / float64(r.SlotDuration)
	windows := func(s int) []windowed {
		out := make([]windowed, 0, r.NumSwitches)
		for sw := 0; sw < r.NumSwitches; sw++ {
			out = append(out, windowed{sw: sw, cap: cap})
		}
		return out
	}
	peerOf := func(s, rack, sw int) int { return r.SwitchMatching(sw, s).Peer(rack) }
	return rotorFluid(n, d, r.SlotsPerCycle(), windows, peerOf, demand, 1, p)
}

type windowed struct {
	sw  int
	cap float64 // units per slice
}

// rotorFluid is the shared slice-level RotorLB engine.
func rotorFluid(n int, hostsPerRack float64, slicesPerCycle int,
	windows func(slice int) []windowed,
	peerOf func(slice, rack, sw int) int,
	demand [][]float64, vlbThreshold float64, p RotorParams) float64 {

	if p.WarmupCycles == 0 && p.MeasureCycles == 0 {
		p = DefaultRotorParams()
	}
	own := make([][]float64, n)   // own queued units, by (src, dst)
	relay := make([][]float64, n) // relayed units stored at rack, by final dst
	for i := range own {
		own[i] = make([]float64, n)
		relay[i] = make([]float64, n)
	}
	var delivered, offered float64
	totalSlices := (p.WarmupCycles + p.MeasureCycles) * slicesPerCycle
	measureFrom := p.WarmupCycles * slicesPerCycle

	egress := make([]float64, n)
	ingress := make([]float64, n)

	for abs := 0; abs < totalSlices; abs++ {
		s := abs % slicesPerCycle
		measuring := abs >= measureFrom
		// Inject this slice's demand (rates × one slice).
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a != b && demand[a][b] > 0 {
					own[a][b] += demand[a][b]
					if measuring {
						offered += demand[a][b]
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			egress[i] = hostsPerRack // per-slice NIC budget
			ingress[i] = hostsPerRack
		}
		ws := windows(s)
		// used[a][i] tracks capacity consumed on rack a's i-th window, so
		// the VLB pass sees true spare capacity.
		used := make([][]float64, n)
		for a := range used {
			used[a] = make([]float64, len(ws))
		}
		// Pass 1: relayed then direct traffic on every circuit.
		for a := 0; a < n; a++ {
			for i, w := range ws {
				b := peerOf(s, a, w.sw)
				if b == a {
					continue
				}
				c := w.cap
				// Stored relay first (RotorLB service order).
				x := min3(relay[a][b], c, min2(egress[a], ingress[b]))
				relay[a][b] -= x
				c -= x
				egress[a] -= x
				ingress[b] -= x
				used[a][i] += x
				if measuring {
					delivered += x
				}
				// Own direct.
				y := min3(own[a][b], c, min2(egress[a], ingress[b]))
				own[a][b] -= y
				egress[a] -= y
				ingress[b] -= y
				used[a][i] += y
				if measuring {
					delivered += y
				}
			}
		}
		if !p.DisableVLB {
			// Pass 2: two-hop offloading — rack a pushes skewed backlog
			// own[a][c] through b into b's relay store, bounded by the
			// circuit's spare window and both racks' host budgets.
			for a := 0; a < n; a++ {
				for i, w := range ws {
					b := peerOf(s, a, w.sw)
					if b == a {
						continue
					}
					rem := w.cap - used[a][i]
					if rem <= 1e-12 {
						continue
					}
					for cdst := 0; cdst < n && rem > 1e-12; cdst++ {
						if cdst == a || cdst == b {
							continue
						}
						if own[a][cdst] <= vlbThreshold {
							continue // not skewed: direct circuits will drain it
						}
						x := min3(own[a][cdst]-vlbThreshold, rem, min2(egress[a], ingress[b]))
						if x <= 0 {
							continue
						}
						own[a][cdst] -= x
						relay[b][cdst] += x
						rem -= x
						used[a][i] += x
						egress[a] -= x
						ingress[b] -= x
					}
				}
			}
		}
	}
	if offered == 0 {
		return 1
	}
	// Steady-state delivered fraction; queues absorb the overload.
	theta := delivered / offered
	if theta > 1 {
		theta = 1
	}
	return theta
}

func min2(a, b float64) float64 { return math.Min(a, b) }

func min3(a, b, c float64) float64 { return math.Min(a, math.Min(b, c)) }
