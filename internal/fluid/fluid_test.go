package fluid

import (
	"math"
	"testing"

	"github.com/opera-net/opera/internal/topology"
)

func TestClosThroughput(t *testing.T) {
	// α = 4/3 ⇒ F = 3 ⇒ θ = 1/3, the paper's 3:1 baseline.
	if got := ClosThroughput(4.0 / 3.0); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("θ = %v, want 1/3", got)
	}
	// α = 4 ⇒ fully provisioned.
	if got := ClosThroughput(4); got != 1 {
		t.Fatalf("θ = %v, want 1", got)
	}
	// θ rises with α (extra capital buys capacity).
	if ClosThroughput(2) <= ClosThroughput(1) {
		t.Fatal("Clos throughput not increasing in α")
	}
}

// demand builds an n×n matrix with the given entries set.
func demandMatrix(n int, set func(m [][]float64)) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	set(m)
	return m
}

func TestExpanderHotRackNearFull(t *testing.T) {
	// A hot rack pair in a u=14 expander: shortest-path ECMP spreads the
	// d units over the rich 2-3 hop path diversity, so θ ≈ 1.
	e := topology.MustNewExpander(144, 10, 14, 1)
	dm := demandMatrix(144, func(m [][]float64) { m[0][1] = 10 })
	theta := ExpanderThroughput(e, dm)
	if theta < 0.6 {
		t.Fatalf("hot-rack θ = %v, want high (path diversity)", theta)
	}
}

func TestExpanderPermutationModerate(t *testing.T) {
	// Rack-level permutation at full load: multi-hop paths tax the
	// fabric; θ well below 1 but above the Clos's 1/3.
	e := topology.MustNewExpander(144, 10, 14, 1)
	dm := demandMatrix(144, func(m [][]float64) {
		for a := 0; a < 144; a++ {
			m[a][(a+72)%144] = 10
		}
	})
	theta := ExpanderThroughput(e, dm)
	if theta < 0.2 || theta > 0.9 {
		t.Fatalf("permutation θ = %v, want moderate", theta)
	}
}

func TestExpanderZeroDemand(t *testing.T) {
	e := topology.MustNewExpander(32, 4, 5, 1)
	if theta := ExpanderThroughput(e, demandMatrix(32, func([][]float64) {})); theta != 1 {
		t.Fatalf("θ = %v for zero demand", theta)
	}
}

func paperOpera(t *testing.T) *topology.Opera {
	t.Helper()
	return topology.MustNewOpera(topology.Config{
		NumRacks: 36, HostsPerRack: 6, NumSwitches: 6, Seed: 1,
	})
}

func TestOperaAllToAllNearDuty(t *testing.T) {
	// Uniform all-to-all at full load: every queue has demand for every
	// circuit, so Opera delivers ≈ its duty cycle with zero bandwidth tax
	// — the ≈4× advantage over static networks at α = 4/3 (Figure 12
	// right, "Opera all-to-all").
	o := paperOpera(t)
	n := o.NumRacks()
	perPair := float64(o.HostsPerRack()) / float64(n-1)
	dm := demandMatrix(n, func(m [][]float64) {
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a != b {
					m[a][b] = perPair
				}
			}
		}
	})
	theta := OperaBulkThroughput(o, dm, DefaultRotorParams())
	if theta < 0.85 {
		t.Fatalf("all-to-all θ = %v, want ≈ duty cycle", theta)
	}
}

func TestOperaHotRackUsesVLB(t *testing.T) {
	o := paperOpera(t)
	n := o.NumRacks()
	dm := demandMatrix(n, func(m [][]float64) { m[0][1] = float64(o.HostsPerRack()) })
	with := OperaBulkThroughput(o, dm, DefaultRotorParams())
	without := OperaBulkThroughput(o, dm, RotorParams{WarmupCycles: 4, MeasureCycles: 8, DisableVLB: true})
	// Direct-only: the pair's circuit exists for G slices per cycle out of
	// G·N/u ⇒ u/N of the time ⇒ θ ≈ (u/N)·(T_window/T) / d... tiny.
	if without > 0.2 {
		t.Fatalf("direct-only hot rack θ = %v, want small", without)
	}
	if with < 5*without {
		t.Fatalf("VLB should lift hot-rack θ: with=%v without=%v", with, without)
	}
}

func TestOperaPermutation(t *testing.T) {
	// Rack permutation at full load: direct capacity is u/N per pair, so
	// VLB carries most bytes at 2 hops ⇒ θ ≈ u·duty/(2d) ≈ 0.5.
	o := paperOpera(t)
	n := o.NumRacks()
	dm := demandMatrix(n, func(m [][]float64) {
		for a := 0; a < n; a++ {
			m[a][(a+n/2)%n] = float64(o.HostsPerRack())
		}
	})
	theta := OperaBulkThroughput(o, dm, DefaultRotorParams())
	if theta < 0.3 || theta > 0.75 {
		t.Fatalf("permutation θ = %v, want ≈0.5", theta)
	}
}

func TestRotorNetThroughput(t *testing.T) {
	r := topology.MustNewRotorNet(topology.RotorConfig{
		NumRacks: 36, HostsPerRack: 6, Uplinks: 6, Seed: 1,
	})
	n := 36
	perPair := 6.0 / float64(n-1)
	dm := demandMatrix(n, func(m [][]float64) {
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a != b {
					m[a][b] = perPair
				}
			}
		}
	})
	theta := RotorNetBulkThroughput(r, dm, DefaultRotorParams())
	if theta < 0.8 {
		t.Fatalf("RotorNet all-to-all θ = %v", theta)
	}
}

func TestOperaOverloadCapped(t *testing.T) {
	// Demands beyond capacity saturate: θ < 1 and delivered ≤ offered.
	o := paperOpera(t)
	n := o.NumRacks()
	dm := demandMatrix(n, func(m [][]float64) {
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a != b {
					m[a][b] = 1 // n-1 ≈ 35 host-rates per rack: 6× overload
				}
			}
		}
	})
	theta := OperaBulkThroughput(o, dm, DefaultRotorParams())
	if theta >= 0.5 || theta <= 0 {
		t.Fatalf("overload θ = %v", theta)
	}
}
