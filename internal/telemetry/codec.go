package telemetry

// Wire codec: compact, versioned binary encodings for Sketch, Window,
// TagTally and Collector, so process-sharded sweeps can stream collector
// state between workers and a coordinator and merge it losslessly.
//
// Every type implements encoding.BinaryMarshaler / BinaryUnmarshaler.
// The format is deterministic — encoding a value twice yields identical
// bytes (map-backed tag tallies are written in sorted name order) — and
// exact: floats travel as their IEEE-754 bit patterns, so a decoded value
// is deeply equal to the original and merging decoded shards produces
// byte-for-byte the same state as merging the originals. Counts use
// varints, which keeps a six-decade 1%-alpha sketch around 1–2 KiB.
//
// Layout (all objects): one kind byte, one version byte, then the
// version's payload. Decoders reject unknown kinds and versions with
// ErrCodecVersion, and any truncated or out-of-bounds payload with an
// error wrapping ErrCorrupt — a partial frame from a killed worker is a
// clean error, never a silently wrong merge.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

const (
	codecVersion = 1

	kindSketch    byte = 'S'
	kindWindow    byte = 'W'
	kindTagTally  byte = 'T'
	kindCollector byte = 'C'
)

// ErrCodecVersion is returned when decoding an encoding whose kind or
// version this build does not understand.
var ErrCodecVersion = errors.New("telemetry: unsupported codec kind or version")

// ErrCorrupt is returned (wrapped, with detail) when an encoding is
// truncated or internally inconsistent.
var ErrCorrupt = errors.New("telemetry: corrupt encoding")

// maxCodecElems bounds decoded element counts (buckets, bins, tags,
// classes, name bytes) so a corrupt length prefix cannot become a
// multi-gigabyte allocation.
const maxCodecElems = 1 << 24

// wbuf is an append-only encode buffer.
type wbuf struct{ b []byte }

func (w *wbuf) header(kind byte) { w.b = append(w.b, kind, codecVersion) }
func (w *wbuf) uvarint(v uint64) { w.b = binary.AppendUvarint(w.b, v) }
func (w *wbuf) varint(v int64)   { w.b = binary.AppendVarint(w.b, v) }
func (w *wbuf) f64(v float64)    { w.b = binary.LittleEndian.AppendUint64(w.b, math.Float64bits(v)) }
func (w *wbuf) str(s string)     { w.uvarint(uint64(len(s))); w.b = append(w.b, s...) }

// rbuf is a consume-only decode buffer; the first error sticks and turns
// every subsequent read into a zero-value no-op, so decoders can run
// straight-line and check err once.
type rbuf struct {
	b   []byte
	err error
}

func (r *rbuf) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
	}
}

func (r *rbuf) header(kind byte) {
	if r.err != nil {
		return
	}
	if len(r.b) < 2 {
		r.fail("truncated header")
		return
	}
	k, v := r.b[0], r.b[1]
	r.b = r.b[2:]
	if k != kind || v != codecVersion {
		r.err = fmt.Errorf("%w: kind %q version %d (want %q version %d)",
			ErrCodecVersion, k, v, kind, codecVersion)
	}
}

func (r *rbuf) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail("truncated uvarint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *rbuf) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail("truncated varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *rbuf) f64() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b))
	r.b = r.b[8:]
	return v
}

// count reads a length prefix for a sequence encoded in-line and bounds
// it, both against maxCodecElems and against the bytes actually remaining
// (elemSize ≥ 1 bytes per element), so corrupt prefixes fail before
// allocation.
func (r *rbuf) count(what string, elemSize int) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if v > maxCodecElems || int(v) > len(r.b)/elemSize+1 {
		r.fail("%s count %d out of bounds", what, v)
		return 0
	}
	return int(v)
}

// capacity reads a declared-geometry prefix (a window's span): it bounds
// the allocation but, unlike count, is not limited by remaining bytes —
// an empty window legitimately declares 128 bins and encodes none.
func (r *rbuf) capacity(what string) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if v > maxCodecElems {
		r.fail("%s capacity %d out of bounds", what, v)
		return 0
	}
	return int(v)
}

func (r *rbuf) str() string {
	n := r.count("string", 1)
	if r.err != nil {
		return ""
	}
	if len(r.b) < n {
		r.fail("truncated string")
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

// done errors unless the buffer was consumed exactly.
func (r *rbuf) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.b))
	}
	return nil
}

// --- Sketch ---

func (s *Sketch) marshalTo(w *wbuf) {
	w.header(kindSketch)
	w.f64(s.alpha)
	w.uvarint(s.count)
	w.f64(s.sum)
	w.f64(s.min)
	w.f64(s.max)
	w.uvarint(s.zero)
	w.varint(int64(s.base))
	w.uvarint(uint64(len(s.buckets)))
	for _, c := range s.buckets {
		w.uvarint(c)
	}
}

// MarshalBinary encodes the sketch in the telemetry wire format.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	var w wbuf
	s.marshalTo(&w)
	return w.b, nil
}

func (s *Sketch) unmarshalFrom(r *rbuf) {
	r.header(kindSketch)
	alpha := r.f64()
	if r.err == nil && !(alpha > 0 && alpha < 1) { // rejects NaN too
		r.fail("sketch alpha %v outside (0,1)", alpha)
	}
	count := r.uvarint()
	sum := r.f64()
	min := r.f64()
	max := r.f64()
	zero := r.uvarint()
	base := r.varint()
	n := r.count("sketch bucket", 1)
	if r.err != nil {
		return
	}
	fresh := NewSketch(alpha)
	fresh.count = count
	fresh.sum = sum
	fresh.min = min
	fresh.max = max
	fresh.zero = zero
	fresh.base = int(base)
	if n > 0 {
		fresh.buckets = make([]uint64, n)
		for i := range fresh.buckets {
			fresh.buckets[i] = r.uvarint()
		}
	}
	if r.err != nil {
		return
	}
	*s = *fresh
}

// UnmarshalBinary decodes an encoding produced by MarshalBinary into s,
// replacing its state. The receiver may be the zero Sketch.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	r := rbuf{b: data}
	s.unmarshalFrom(&r)
	return r.done()
}

// --- Window ---

func (w *Window) marshalTo(b *wbuf) {
	b.header(kindWindow)
	b.f64(w.binWidth)
	b.uvarint(uint64(len(w.ring)))
	b.varint(w.head)
	b.f64(w.total)
	// Live bins only, oldest first; slots outside the live range are
	// always zero, so this is lossless.
	first, n := w.bounds()
	for bin := first; bin < first+n; bin++ {
		b.f64(w.ring[bin%int64(len(w.ring))])
	}
}

// MarshalBinary encodes the window in the telemetry wire format.
func (w *Window) MarshalBinary() ([]byte, error) {
	var b wbuf
	w.marshalTo(&b)
	return b.b, nil
}

func (w *Window) unmarshalFrom(r *rbuf) {
	r.header(kindWindow)
	binWidth := r.f64()
	if r.err == nil && !(binWidth > 0) { // rejects NaN too
		r.fail("window bin width %v not positive", binWidth)
	}
	span := r.capacity("window bin")
	if r.err == nil && span == 0 {
		r.fail("window with zero bins")
	}
	head := r.varint()
	if r.err == nil && head < -1 {
		r.fail("window head %d", head)
	}
	total := r.f64()
	if r.err != nil {
		return
	}
	fresh := NewWindow(binWidth, span)
	fresh.head = head
	fresh.total = total
	first, n := fresh.bounds()
	for bin := first; bin < first+n; bin++ {
		fresh.ring[bin%int64(span)] = r.f64()
	}
	if r.err != nil {
		return
	}
	*w = *fresh
}

// UnmarshalBinary decodes an encoding produced by MarshalBinary into w,
// replacing its state. The receiver may be the zero Window.
func (w *Window) UnmarshalBinary(data []byte) error {
	r := rbuf{b: data}
	w.unmarshalFrom(&r)
	return r.done()
}

// --- TagTally ---

func (t *TagTally) marshalTo(w *wbuf) {
	w.header(kindTagTally)
	t.Sketch.marshalTo(w)
	w.varint(int64(t.Done))
	w.varint(int64(t.Total))
	w.varint(t.Bytes)
}

// MarshalBinary encodes the tally in the telemetry wire format.
func (t *TagTally) MarshalBinary() ([]byte, error) {
	var w wbuf
	t.marshalTo(&w)
	return w.b, nil
}

func (t *TagTally) unmarshalFrom(r *rbuf) {
	r.header(kindTagTally)
	var s Sketch
	s.unmarshalFrom(r)
	done := r.varint()
	total := r.varint()
	bytes := r.varint()
	if r.err != nil {
		return
	}
	t.Sketch = &s
	t.Done = int(done)
	t.Total = int(total)
	t.Bytes = bytes
}

// UnmarshalBinary decodes an encoding produced by MarshalBinary into t,
// replacing its state. The receiver may be the zero TagTally.
func (t *TagTally) UnmarshalBinary(data []byte) error {
	r := rbuf{b: data}
	t.unmarshalFrom(&r)
	return r.done()
}

// --- Collector ---

// MarshalBinary encodes the collector — options, per-class and per-tag
// sketches, trailing windows — in the telemetry wire format. Tags are
// written in sorted name order, so the encoding is a deterministic
// function of the collector's state.
func (c *Collector) MarshalBinary() ([]byte, error) {
	var w wbuf
	w.header(kindCollector)
	w.f64(c.opts.Alpha)
	w.f64(c.opts.WindowBin)
	w.varint(int64(c.opts.WindowBins))
	w.uvarint(uint64(len(c.classes)))
	for _, s := range c.classes {
		s.marshalTo(&w)
	}
	names := make([]string, 0, len(c.tags))
	for name := range c.tags {
		names = append(names, name)
	}
	sort.Strings(names)
	w.uvarint(uint64(len(names)))
	for _, name := range names {
		w.str(name)
		c.tags[name].marshalTo(&w)
	}
	c.delivered.marshalTo(&w)
	c.goodput.marshalTo(&w)
	c.uplink.marshalTo(&w)
	return w.b, nil
}

// UnmarshalBinary decodes an encoding produced by MarshalBinary into c,
// replacing its state. The receiver may be the zero Collector; the decoded
// collector is deeply equal to the encoded one, so merging after decode is
// indistinguishable from merging in-process.
func (c *Collector) UnmarshalBinary(data []byte) error {
	r := rbuf{b: data}
	r.header(kindCollector)
	var opts Opts
	opts.Alpha = r.f64()
	opts.WindowBin = r.f64()
	opts.WindowBins = int(r.varint())
	if r.err == nil {
		if err := opts.Validate(); err != nil {
			r.fail("collector options: %v", err)
		} else if opts != opts.withDefaults() {
			// Encoded collectors always carry resolved options; raw zeros
			// would silently re-default on a future version skew.
			r.fail("collector options not resolved: %+v", opts)
		}
	}
	numClasses := r.count("collector class", 2)
	if r.err != nil {
		return r.err
	}
	fresh := &Collector{opts: opts, classes: make([]*Sketch, numClasses)}
	for i := range fresh.classes {
		var s Sketch
		s.unmarshalFrom(&r)
		fresh.classes[i] = &s
	}
	numTags := r.count("collector tag", 2)
	if r.err != nil {
		return r.err
	}
	if numTags > 0 {
		fresh.tags = make(map[string]*TagTally, numTags)
		for i := 0; i < numTags; i++ {
			name := r.str()
			var t TagTally
			t.unmarshalFrom(&r)
			if r.err != nil {
				return r.err
			}
			if _, dup := fresh.tags[name]; dup {
				r.fail("duplicate tag %q", name)
				return r.err
			}
			fresh.tags[name] = &t
		}
	}
	var delivered, goodput, uplink Window
	delivered.unmarshalFrom(&r)
	goodput.unmarshalFrom(&r)
	uplink.unmarshalFrom(&r)
	if err := r.done(); err != nil {
		return err
	}
	fresh.delivered = &delivered
	fresh.goodput = &goodput
	fresh.uplink = &uplink
	*c = *fresh
	return nil
}
