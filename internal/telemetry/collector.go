package telemetry

import (
	"fmt"
	"math"
)

// Opts configures a Collector — the knobs sim.RetainSketch exposes.
type Opts struct {
	// Alpha is the quantile sketches' relative-error bound; 0 means
	// DefaultAlpha (1%).
	Alpha float64
	// WindowBin is the trailing-window bin width in seconds; 0 means 1 ms
	// (the bin width of the exact DeliveredBytes series).
	WindowBin float64
	// WindowBins is how many trailing bins the throughput and tax windows
	// retain; 0 means 128.
	WindowBins int
}

// Validate reports whether the options are usable: Alpha in (0,1) or the
// 0 default, WindowBin a positive finite bin width or the 0 default, and
// WindowBins a positive bin count or the 0 default. Constructors apply it
// so a bad bound fails loudly at construction with a clear message rather
// than as NaN quantiles downstream (NaN in particular slips past naive
// range checks: it compares false against every bound).
func (o Opts) Validate() error {
	if o.Alpha != 0 && !(o.Alpha > 0 && o.Alpha < 1) { // also rejects NaN
		return fmt.Errorf("telemetry: sketch alpha %v outside (0,1)", o.Alpha)
	}
	if o.WindowBin != 0 && (!(o.WindowBin > 0) || math.IsInf(o.WindowBin, 0)) {
		return fmt.Errorf("telemetry: window bin width %v s must be positive and finite", o.WindowBin)
	}
	if o.WindowBins < 0 {
		return fmt.Errorf("telemetry: window bin count %d must be positive", o.WindowBins)
	}
	return nil
}

func (o Opts) withDefaults() Opts {
	if o.Alpha == 0 {
		o.Alpha = DefaultAlpha
	}
	if o.WindowBin == 0 {
		o.WindowBin = 0.001
	}
	if o.WindowBins == 0 {
		o.WindowBins = 128
	}
	return o
}

// TagTally aggregates one workload tag's flows under sketch retention:
// completion counts, the FCT sketch of the finished ones, and their
// delivered application bytes. Bytes counts completed flows only — the
// in-flight bytes of unfinished flows are folded in when they complete,
// unlike the exact path which can scan retained flows at any time.
type TagTally struct {
	Sketch      *Sketch
	Done, Total int
	Bytes       int64
}

// Collector is the flat-memory aggregate sim.Metrics drives under sketch
// retention: one FCT sketch per service class, one per workload tag, and
// trailing windows of delivered / goodput / uplink bytes. All methods are
// O(1) (amortized) per observation; total state is O(classes + tags +
// window + sketch buckets) regardless of flow count.
type Collector struct {
	opts    Opts
	classes []*Sketch
	tags    map[string]*TagTally

	delivered *Window
	goodput   *Window
	uplink    *Window
}

// NewCollector returns an empty collector with per-class sketches for
// class indices [0, numClasses). It panics if the options fail Validate;
// callers that take options from external input (opera.New's retention
// policy) validate first and return the error.
func NewCollector(opts Opts, numClasses int) *Collector {
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	opts = opts.withDefaults()
	c := &Collector{
		opts:      opts,
		classes:   make([]*Sketch, numClasses),
		delivered: NewWindow(opts.WindowBin, opts.WindowBins),
		goodput:   NewWindow(opts.WindowBin, opts.WindowBins),
		uplink:    NewWindow(opts.WindowBin, opts.WindowBins),
	}
	for i := range c.classes {
		c.classes[i] = NewSketch(opts.Alpha)
	}
	return c
}

// Alpha returns the sketches' pinned relative-error bound.
func (c *Collector) Alpha() float64 { return c.opts.Alpha }

// FlowAdded accounts a newly registered flow (tagged ones count toward
// their tag's total).
func (c *Collector) FlowAdded(tag string) {
	if tag == "" {
		return
	}
	c.tally(tag).Total++
}

// FlowDone absorbs a completed flow: its completion time enters the class
// (and tag) sketch, and its delivered bytes the tag tally. After this the
// flow's state can be released.
func (c *Collector) FlowDone(class int, tag string, fctMicros float64, bytesRcvd int64) {
	c.classes[class].Add(fctMicros)
	if tag == "" {
		return
	}
	t := c.tally(tag)
	t.Done++
	t.Bytes += bytesRcvd
	t.Sketch.Add(fctMicros)
}

func (c *Collector) tally(tag string) *TagTally {
	t := c.tags[tag]
	if t == nil {
		if c.tags == nil {
			c.tags = make(map[string]*TagTally)
		}
		t = &TagTally{Sketch: NewSketch(c.opts.Alpha)}
		c.tags[tag] = t
	}
	return t
}

// RecordDelivered accounts application bytes arriving at a receiver.
func (c *Collector) RecordDelivered(tSeconds, bytes float64) {
	c.delivered.Record(tSeconds, bytes)
}

// RecordTax accounts one delivery's bandwidth-tax inputs: goodput bytes
// and their ToR-to-ToR traversal bytes.
func (c *Collector) RecordTax(tSeconds, goodput, uplink float64) {
	c.goodput.Record(tSeconds, goodput)
	c.uplink.Record(tSeconds, uplink)
}

// ClassSketch returns the FCT sketch of one service class.
func (c *Collector) ClassSketch(class int) *Sketch { return c.classes[class] }

// Merged returns a fresh sketch holding every class's observations —
// the "all flows" distribution. Classes partition flows, so this equals
// the sketch a single all-class feed would have produced.
func (c *Collector) Merged() *Sketch {
	s := NewSketch(c.opts.Alpha)
	for _, cs := range c.classes {
		s.Merge(cs)
	}
	return s
}

// Tags returns the per-tag tallies (nil map when no flow was tagged).
// Callers must not mutate.
func (c *Collector) Tags() map[string]*TagTally { return c.tags }

// Merge folds other's tally into t. Both sketches must share an alpha;
// TryMerge's error is propagated and t is left unchanged on mismatch.
func (t *TagTally) Merge(other *TagTally) error {
	if other == nil {
		return nil
	}
	if err := t.Sketch.TryMerge(other.Sketch); err != nil {
		return err
	}
	t.Done += other.Done
	t.Total += other.Total
	t.Bytes += other.Bytes
	return nil
}

// Merge folds other into c: per-class and per-tag sketches merge bucket-
// exactly, tag tallies and window totals add, and the trailing windows
// combine bin-aligned (see Window.Merge). Both collectors must have been
// built with identical options and class counts — the coordinator-side
// invariant for shards of one sweep cell — and an error is returned
// otherwise, before anything merges (matching options make every inner
// merge infallible, since all sketches and windows inherit their geometry
// from the options). other is left unchanged.
func (c *Collector) Merge(other *Collector) error {
	if other == nil {
		return nil
	}
	if other.opts != c.opts {
		return fmt.Errorf("telemetry: merging collectors with options %+v vs %+v", c.opts, other.opts)
	}
	if len(other.classes) != len(c.classes) {
		return fmt.Errorf("telemetry: merging collectors with %d vs %d classes", len(c.classes), len(other.classes))
	}
	for i, s := range other.classes {
		if err := c.classes[i].TryMerge(s); err != nil {
			return err
		}
	}
	for tag, t := range other.tags {
		if err := c.tally(tag).Merge(t); err != nil {
			return err
		}
	}
	if err := c.delivered.Merge(other.delivered); err != nil {
		return err
	}
	if err := c.goodput.Merge(other.goodput); err != nil {
		return err
	}
	return c.uplink.Merge(other.uplink)
}

// Delivered returns the trailing delivered-bytes window.
func (c *Collector) Delivered() *Window { return c.delivered }

// Goodput returns the trailing inter-rack goodput window.
func (c *Collector) Goodput() *Window { return c.goodput }

// Uplink returns the trailing ToR-to-ToR traversal-bytes window.
func (c *Collector) Uplink() *Window { return c.uplink }
