package telemetry

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// populatedSketch returns a sketch fed n lognormal observations from the
// seeded stream, the shape a shard's FCT sketch has on the wire.
func populatedSketch(t *testing.T, alpha float64, seed int64, n int) *Sketch {
	t.Helper()
	s := NewSketch(alpha)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		s.Add(math.Exp(rng.NormFloat64()*2 + 5))
	}
	return s
}

func roundTripSketch(t *testing.T, s *Sketch) *Sketch {
	t.Helper()
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got Sketch
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	return &got
}

func TestSketchCodecRoundTrip(t *testing.T) {
	for name, s := range map[string]*Sketch{
		"empty":     NewSketch(0.01),
		"populated": populatedSketch(t, 0.01, 1, 10_000),
		"zeroes": func() *Sketch {
			s := NewSketch(0.05)
			s.Add(0)
			s.Add(0)
			s.Add(3.5)
			return s
		}(),
	} {
		got := roundTripSketch(t, s)
		if !reflect.DeepEqual(got, s) {
			t.Errorf("%s: decoded sketch differs: got %+v want %+v", name, got, s)
		}
	}
}

func TestSketchCodecReencodeDeterministic(t *testing.T) {
	s := populatedSketch(t, 0.01, 7, 5_000)
	a, _ := s.MarshalBinary()
	b, _ := roundTripSketch(t, s).MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatalf("re-encoding a decoded sketch changed the bytes")
	}
}

// TestSketchMergeAfterDecode is the property process sharding rests on:
// decode(encode(shard)) merged into a total is indistinguishable — deeply
// equal state, identical quantiles — from merging the in-process shard.
func TestSketchMergeAfterDecode(t *testing.T) {
	shardA := populatedSketch(t, 0.01, 1, 20_000)
	shardB := populatedSketch(t, 0.01, 2, 30_000)

	direct := NewSketch(0.01)
	direct.Merge(shardA)
	direct.Merge(shardB)

	wire := NewSketch(0.01)
	wire.Merge(roundTripSketch(t, shardA))
	wire.Merge(roundTripSketch(t, shardB))

	if !reflect.DeepEqual(wire, direct) {
		t.Fatalf("merge-after-decode state differs from direct merge")
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
		if wire.Quantile(q) != direct.Quantile(q) {
			t.Fatalf("q%v: wire %v direct %v", q, wire.Quantile(q), direct.Quantile(q))
		}
	}
}

func populatedWindow(seed int64, n int) *Window {
	w := NewWindow(0.001, 64)
	rng := rand.New(rand.NewSource(seed))
	t := 0.0
	for i := 0; i < n; i++ {
		t += rng.Float64() * 0.0005
		w.Record(t, float64(rng.Intn(9000)+64))
	}
	return w
}

func TestWindowCodecRoundTrip(t *testing.T) {
	for name, w := range map[string]*Window{
		"empty":     NewWindow(0.001, 128),
		"populated": populatedWindow(3, 500),
		"partial": func() *Window {
			w := NewWindow(0.01, 16)
			w.Record(0.015, 10)
			return w
		}(),
	} {
		data, err := w.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var got Window
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if !reflect.DeepEqual(&got, w) {
			t.Errorf("%s: decoded window differs: got %+v want %+v", name, &got, w)
		}
	}
}

func TestTagTallyCodecRoundTrip(t *testing.T) {
	tt := &TagTally{Sketch: populatedSketch(t, 0.02, 4, 1_000), Done: 900, Total: 1_000, Bytes: 123_456_789}
	data, err := tt.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got TagTally
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(&got, tt) {
		t.Errorf("decoded tally differs: got %+v want %+v", &got, tt)
	}
}

// populatedCollector simulates a shard's collector: per-class FCTs, two
// tags, and throughput/tax windows.
func populatedCollector(seed int64, flows int) *Collector {
	c := NewCollector(Opts{}, 2)
	rng := rand.New(rand.NewSource(seed))
	t := 0.0
	for i := 0; i < flows; i++ {
		t += rng.Float64() * 0.0002
		tag := ""
		if i%3 == 0 {
			tag = "shuffle"
		} else if i%3 == 1 {
			tag = "websearch"
		}
		c.FlowAdded(tag)
		fct := math.Exp(rng.NormFloat64() + 6)
		bytes := int64(rng.Intn(1_000_000) + 64)
		c.FlowDone(i%2, tag, fct, bytes)
		c.RecordDelivered(t, float64(bytes))
		c.RecordTax(t, float64(bytes), float64(bytes)*1.3)
	}
	return c
}

func TestCollectorCodecRoundTrip(t *testing.T) {
	for name, c := range map[string]*Collector{
		"empty":     NewCollector(Opts{}, 2),
		"populated": populatedCollector(5, 3_000),
		"custom":    NewCollector(Opts{Alpha: 0.05, WindowBin: 0.002, WindowBins: 32}, 3),
	} {
		data, err := c.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var got Collector
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if !reflect.DeepEqual(&got, c) {
			t.Errorf("%s: decoded collector differs from original", name)
		}
		// Deterministic encoding: same state, same bytes.
		again, err := got.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", name, err)
		}
		if !bytes.Equal(again, data) {
			t.Errorf("%s: re-encoding a decoded collector changed the bytes", name)
		}
	}
}

// TestCollectorMergeAfterDecode pins the sweep coordinator's core move:
// shard collectors round-tripped through the wire merge to exactly the
// state of merging the originals — and both equal the collector a single
// process feeding all observations would hold, because the underlying
// sketches and windows are insertion-order independent.
func TestCollectorMergeAfterDecode(t *testing.T) {
	shardA := populatedCollector(11, 2_000)
	shardB := populatedCollector(12, 3_000)

	direct := NewCollector(Opts{}, 2)
	if err := direct.Merge(shardA); err != nil {
		t.Fatal(err)
	}
	if err := direct.Merge(shardB); err != nil {
		t.Fatal(err)
	}

	wire := NewCollector(Opts{}, 2)
	for _, shard := range []*Collector{shardA, shardB} {
		data, err := shard.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var decoded Collector
		if err := decoded.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		if err := wire.Merge(&decoded); err != nil {
			t.Fatal(err)
		}
	}

	if !reflect.DeepEqual(wire, direct) {
		t.Fatalf("merge-after-decode collector differs from direct merge")
	}
	a, _ := wire.MarshalBinary()
	b, _ := direct.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatalf("merged encodings differ")
	}
}

func TestCodecRejectsCorruptInput(t *testing.T) {
	good, err := populatedCollector(9, 500).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{0, 1, 2, len(good) / 2, len(good) - 1} {
			var c Collector
			if err := c.UnmarshalBinary(good[:cut]); err == nil {
				t.Errorf("cut=%d: truncated encoding decoded without error", cut)
			}
		}
	})
	t.Run("trailing-bytes", func(t *testing.T) {
		var c Collector
		if err := c.UnmarshalBinary(append(append([]byte{}, good...), 0x00)); err == nil ||
			!errors.Is(err, ErrCorrupt) {
			t.Errorf("trailing byte: got %v, want ErrCorrupt", err)
		}
	})
	t.Run("wrong-kind", func(t *testing.T) {
		var s Sketch
		if err := s.UnmarshalBinary(good); err == nil || !errors.Is(err, ErrCodecVersion) {
			t.Errorf("collector bytes into sketch: got %v, want ErrCodecVersion", err)
		}
	})
	t.Run("future-version", func(t *testing.T) {
		bad := append([]byte{}, good...)
		bad[1] = codecVersion + 1
		var c Collector
		if err := c.UnmarshalBinary(bad); err == nil || !errors.Is(err, ErrCodecVersion) {
			t.Errorf("future version: got %v, want ErrCodecVersion", err)
		}
	})
	t.Run("huge-count", func(t *testing.T) {
		// A sketch claiming 2^40 buckets must fail the bounds check, not
		// attempt the allocation.
		var w wbuf
		w.header(kindSketch)
		w.f64(0.01)
		w.uvarint(0) // count
		w.f64(0)     // sum
		w.f64(math.Inf(1))
		w.f64(math.Inf(-1))
		w.uvarint(0)       // zero
		w.varint(0)        // base
		w.uvarint(1 << 40) // buckets: absurd
		var s Sketch
		if err := s.UnmarshalBinary(w.b); err == nil || !errors.Is(err, ErrCorrupt) {
			t.Errorf("huge bucket count: got %v, want ErrCorrupt", err)
		}
	})
}

// TestCodecErrorLeavesReceiverUntouched: a failed UnmarshalBinary must not
// half-overwrite a live collector the coordinator is merging into.
func TestCodecErrorLeavesReceiverUntouched(t *testing.T) {
	c := populatedCollector(21, 100)
	want, _ := c.MarshalBinary()
	bad, _ := populatedCollector(22, 100).MarshalBinary()
	if err := c.UnmarshalBinary(bad[:len(bad)-3]); err == nil {
		t.Fatal("truncated decode succeeded")
	}
	got, _ := c.MarshalBinary()
	if !bytes.Equal(got, want) {
		t.Fatal("failed decode mutated the receiver")
	}
}
