package telemetry

import (
	"math"
	"testing"
)

func TestWindowRetainsTrailingBins(t *testing.T) {
	w := NewWindow(0.001, 4) // 4 × 1 ms
	for i := 0; i < 10; i++ {
		w.Record(float64(i)*0.001, float64(i+1)) // bin i gets i+1
	}
	if w.Total() != 55 {
		t.Fatalf("Total = %v, want 55 (exact, including rotated-out bins)", w.Total())
	}
	first, rates := w.Rates()
	if first != 6 || len(rates) != 4 {
		t.Fatalf("Rates window = bin %d × %d, want 6 × 4", first, len(rates))
	}
	// Bins 6..9 hold 7..10; rates divide by the 1 ms width.
	for i, want := range []float64{7000, 8000, 9000, 10000} {
		if math.Abs(rates[i]-want) > 1e-9 {
			t.Fatalf("rate[%d] = %v, want %v", i, rates[i], want)
		}
	}
	if got := w.WindowTotal(); got != 7+8+9+10 {
		t.Fatalf("WindowTotal = %v, want 34", got)
	}
}

func TestWindowGapZeroesSkippedBins(t *testing.T) {
	w := NewWindow(0.001, 4)
	w.Record(0, 5)
	w.Record(0.002, 3) // skips bin 1
	_, rates := w.Rates()
	if len(rates) != 3 || rates[0] != 5000 || rates[1] != 0 || rates[2] != 3000 {
		t.Fatalf("rates = %v, want [5000 0 3000]", rates)
	}
	// A gap wider than the whole window leaves only zeros behind it.
	w.Record(1.0, 7)
	first, rates := w.Rates()
	if first != 997 || len(rates) != 4 {
		t.Fatalf("post-gap window = bin %d × %d", first, len(rates))
	}
	if rates[0] != 0 || rates[1] != 0 || rates[2] != 0 || rates[3] != 7000 {
		t.Fatalf("post-gap rates = %v", rates)
	}
	if w.Total() != 15 {
		t.Fatalf("Total = %v, want 15", w.Total())
	}
}

func TestWindowEmptyAndPanics(t *testing.T) {
	w := NewWindow(0.01, 8)
	if first, rates := w.Rates(); first != 0 || rates != nil {
		t.Fatal("empty window should report no rates")
	}
	if w.WindowTotal() != 0 {
		t.Fatal("empty window total should be 0")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("negative time should panic")
			}
		}()
		w.Record(-1, 1)
	}()
	w.Record(1.0, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("recording below the trailing window should panic")
			}
		}()
		w.Record(0.5, 1) // bin 50 << head 100 − 8
	}()
}
