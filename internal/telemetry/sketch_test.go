package telemetry

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// checkQuantile asserts the sketch's pinned guarantee against the exact
// sorted sample: Quantile(q) must be within alpha relative error of the
// order statistics anchoring the type-7 rank h = q·(n−1).
func checkQuantile(t *testing.T, s *Sketch, sorted []float64, q float64) {
	t.Helper()
	got := s.Quantile(q)
	h := q * float64(len(sorted)-1)
	lo := sorted[int(math.Floor(h))]
	hi := sorted[int(math.Ceil(h))]
	a := s.Alpha()
	const slack = 1e-12
	if got < lo*(1-a)-slack || got > hi*(1+a)+slack {
		t.Fatalf("Quantile(%v) = %v outside [%v, %v] (order stats %v..%v, alpha %v)",
			q, got, lo*(1-a), hi*(1+a), lo, hi, a)
	}
}

// quantileProbes are the ranks every accuracy test checks — the paper's
// tail metrics plus the median.
var quantileProbes = []float64{0, 0.10, 0.50, 0.90, 0.99, 0.999, 1}

func TestSketchRankGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dists := map[string]func() float64{
		// Log-normal spanning several decades, like FCT distributions.
		"lognormal": func() float64 { return math.Exp(rng.NormFloat64()*2 + 5) },
		// Heavy-tailed Pareto-like: the datamining shape.
		"heavytail": func() float64 { return 10 / math.Pow(rng.Float64()+1e-9, 1.5) },
		"uniform":   func() float64 { return rng.Float64() * 1000 },
		"constant":  func() float64 { return 42 },
		// Two-point mass: exercises buckets with large counts.
		"bimodal": func() float64 {
			if rng.Intn(2) == 0 {
				return 3
			}
			return 30_000
		},
	}
	for name, draw := range dists {
		t.Run(name, func(t *testing.T) {
			s := NewSketch(0.01)
			xs := make([]float64, 50_000)
			for i := range xs {
				xs[i] = draw()
				s.Add(xs[i])
			}
			sort.Float64s(xs)
			for _, q := range quantileProbes {
				checkQuantile(t, s, xs, q)
			}
			if s.Min() != xs[0] || s.Max() != xs[len(xs)-1] {
				t.Fatalf("min/max not exact: %v/%v vs %v/%v", s.Min(), s.Max(), xs[0], xs[len(xs)-1])
			}
		})
	}
}

// The sketch state is a pure function of the observation multiset:
// shuffling the insertion order changes nothing (Sum to within an ulp).
func TestSketchInsertionOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 10_000)
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64() * 3)
	}
	a, b := NewSketch(0.01), NewSketch(0.01)
	for _, x := range xs {
		a.Add(x)
	}
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, x := range xs {
		b.Add(x)
	}
	for _, q := range quantileProbes {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("Quantile(%v): %v vs %v after shuffle", q, a.Quantile(q), b.Quantile(q))
		}
	}
	if a.Count() != b.Count() || a.Min() != b.Min() || a.Max() != b.Max() {
		t.Fatal("count/min/max differ after shuffle")
	}
	if rel := math.Abs(a.Sum()-b.Sum()) / a.Sum(); rel > 1e-12 {
		t.Fatalf("sums differ by %v relative", rel)
	}
}

// Merging is exactly associative: any merge tree over shards produces
// identical bucket state, hence identical quantiles — the property that
// lets process-sharded sweeps combine results.
func TestSketchMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	shards := make([]*Sketch, 5)
	whole := NewSketch(0.01)
	for i := range shards {
		shards[i] = NewSketch(0.01)
		for j := 0; j < 4_000; j++ {
			x := math.Exp(rng.NormFloat64()*2 + float64(i))
			shards[i].Add(x)
			whole.Add(x)
		}
	}
	// Left fold, right fold, and pairwise tree.
	left := NewSketch(0.01)
	for _, sh := range shards {
		left.Merge(sh)
	}
	right := NewSketch(0.01)
	for i := len(shards) - 1; i >= 0; i-- {
		right.Merge(shards[i])
	}
	ab, cd := NewSketch(0.01), NewSketch(0.01)
	ab.Merge(shards[0])
	ab.Merge(shards[1])
	cd.Merge(shards[2])
	cd.Merge(shards[3])
	tree := NewSketch(0.01)
	tree.Merge(ab)
	tree.Merge(cd)
	tree.Merge(shards[4])

	for _, o := range []*Sketch{right, tree, whole} {
		if left.Count() != o.Count() || left.Min() != o.Min() || left.Max() != o.Max() {
			t.Fatal("count/min/max differ across merge orders")
		}
		for _, q := range quantileProbes {
			if left.Quantile(q) != o.Quantile(q) {
				t.Fatalf("Quantile(%v) differs across merge orders: %v vs %v", q, left.Quantile(q), o.Quantile(q))
			}
		}
		if rel := math.Abs(left.Sum()-o.Sum()) / left.Sum(); rel > 1e-12 {
			t.Fatalf("sums differ by %v relative", rel)
		}
	}
}

func TestSketchEmptyAndEdgeValues(t *testing.T) {
	s := NewSketch(0)
	if s.Alpha() != DefaultAlpha {
		t.Fatalf("default alpha = %v", s.Alpha())
	}
	if !math.IsNaN(s.Quantile(0.5)) || !math.IsNaN(s.Mean()) || !math.IsNaN(s.Min()) {
		t.Fatal("empty sketch should answer NaN")
	}
	s.Add(0) // underflow bucket
	s.Add(5)
	if s.Count() != 2 || s.Min() != 0 || s.Max() != 5 {
		t.Fatalf("count/min/max: %d %v %v", s.Count(), s.Min(), s.Max())
	}
	if q := s.Quantile(0); q != 0 {
		t.Fatalf("Quantile(0) = %v", q)
	}
	if q := s.Quantile(1); q != 5 {
		t.Fatalf("Quantile(1) = %v", q)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("negative Add should panic")
			}
		}()
		s.Add(-1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("alpha-mismatched Merge should panic")
			}
		}()
		o := NewSketch(0.05)
		o.Add(1)
		s.Merge(o)
	}()
}

// A single observation is reported within alpha at every rank, and the
// merged empty sketch is a no-op.
func TestSketchSingletonAndEmptyMerge(t *testing.T) {
	s := NewSketch(0.01)
	s.Add(123.456)
	for _, q := range quantileProbes {
		got := s.Quantile(q)
		if math.Abs(got-123.456)/123.456 > 0.01 {
			t.Fatalf("Quantile(%v) = %v, want ~123.456", q, got)
		}
	}
	before := *s
	s.Merge(NewSketch(0.01))
	s.Merge(nil)
	if !reflect.DeepEqual(before.buckets, s.buckets) || before.count != s.count {
		t.Fatal("merging an empty sketch changed state")
	}
}
