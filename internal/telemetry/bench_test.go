package telemetry

import (
	"math"
	"math/rand"
	"testing"
)

// BenchmarkSketchAdd measures the per-observation cost of the quantile
// sketch — the incremental work FlowDone pays under sketch retention. The
// values are pre-drawn so the benchmark isolates Add from the RNG.
func BenchmarkSketchAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1<<14)
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64()*2 + 5)
	}
	s := NewSketch(0.01)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(xs[i&(1<<14-1)])
	}
}

// BenchmarkWindowRecord measures the trailing-window ring update — the
// per-delivery cost of the windowed throughput/tax series.
func BenchmarkWindowRecord(b *testing.B) {
	w := NewWindow(0.001, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Record(float64(i)*1e-6, 1500)
	}
}
