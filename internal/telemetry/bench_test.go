package telemetry

import (
	"math"
	"math/rand"
	"testing"
)

// BenchmarkSketchAdd measures the per-observation cost of the quantile
// sketch — the incremental work FlowDone pays under sketch retention. The
// values are pre-drawn so the benchmark isolates Add from the RNG.
func BenchmarkSketchAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1<<14)
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64()*2 + 5)
	}
	s := NewSketch(0.01)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(xs[i&(1<<14-1)])
	}
}

// BenchmarkWindowRecord measures the trailing-window ring update — the
// per-delivery cost of the windowed throughput/tax series.
func BenchmarkWindowRecord(b *testing.B) {
	w := NewWindow(0.001, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Record(float64(i)*1e-6, 1500)
	}
}

// benchCollector builds a representative shard collector: two classes,
// two tags, ~10k completions — the state one worker ships per scenario.
func benchCollector(seed int64) *Collector {
	c := NewCollector(Opts{}, 2)
	rng := rand.New(rand.NewSource(seed))
	t := 0.0
	for i := 0; i < 10_000; i++ {
		t += rng.Float64() * 1e-5
		tag := ""
		if i%2 == 0 {
			tag = "websearch"
		}
		c.FlowAdded(tag)
		bytes := int64(rng.Intn(100_000) + 64)
		c.FlowDone(i%2, tag, math.Exp(rng.NormFloat64()*2+5), bytes)
		c.RecordDelivered(t, float64(bytes))
		c.RecordTax(t, float64(bytes), float64(bytes)*1.3)
	}
	return c
}

// BenchmarkCollectorEncode measures the wire codec's serialization cost —
// what a worker pays per finished scenario before streaming the blob.
func BenchmarkCollectorEncode(b *testing.B) {
	c := benchCollector(1)
	data, _ := c.MarshalBinary()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollectorDecode measures the coordinator-side deserialization
// cost per received shard blob.
func BenchmarkCollectorDecode(b *testing.B) {
	data, _ := benchCollector(1).MarshalBinary()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var c Collector
		if err := c.UnmarshalBinary(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMergeShards measures merging 8 decoded shard collectors into a
// pooled cell — the coordinator's per-cell aggregation under -replicas.
func BenchmarkMergeShards(b *testing.B) {
	shards := make([]*Collector, 8)
	for i := range shards {
		data, _ := benchCollector(int64(i + 1)).MarshalBinary()
		var c Collector
		if err := c.UnmarshalBinary(data); err != nil {
			b.Fatal(err)
		}
		shards[i] = &c
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pooled := NewCollector(Opts{}, 2)
		for _, s := range shards {
			if err := pooled.Merge(s); err != nil {
				b.Fatal(err)
			}
		}
	}
}
