// Package telemetry provides the streaming statistics that keep unbounded
// simulations flat-memory: mergeable quantile sketches with a pinned
// relative-error bound, trailing-window counters, and the per-class /
// per-tag Collector that sim.Metrics drives under sketch retention.
//
// The repository's exact primitives (internal/stats) retain every
// observation, which is the right trade for figure reproduction — a few
// million samples, byte-exact percentiles — but grows without bound on the
// ROADMAP's month-long soaks. Everything in this package is O(1) per
// observation and O(log range) space, and every structure merges, so
// results from process-sharded sweeps can be combined where raw flow lists
// cannot.
package telemetry

import (
	"errors"
	"fmt"
	"math"
)

// ErrAlphaMismatch is the defined diagnostic for merging sketches with
// different relative-error bounds: their log-spaced buckets disagree on
// boundaries, so their counts cannot be combined. Sketch.TryMerge returns
// it (wrapped, with both alphas); Sketch.Merge panics with the same error
// value, so a recover can identify it with errors.Is. The wire codec makes
// cross-process mismatches reachable, which is why the failure is defined
// rather than undefined behavior.
var ErrAlphaMismatch = errors.New("telemetry: sketch alpha mismatch")

// DefaultAlpha is the sketches' default relative-error bound: quantile
// estimates are within ±1% of the true value.
const DefaultAlpha = 0.01

// minIndexable is the smallest observation given its own log-spaced
// bucket; values in [0, minIndexable] share one underflow bucket. Flow
// completion times are recorded in microseconds and the simulator's
// physics keep them well above a nanosecond, so the underflow bucket is
// effectively unused.
const minIndexable = 1e-9

// Sketch is a mergeable streaming quantile sketch over non-negative
// observations, in the DDSketch family: log-spaced buckets of width γ =
// (1+α)/(1−α) hold exact counts, so Quantile answers carry a guaranteed
// relative error of at most α. It fits the role the literature usually
// hands to t-digest or KLL with two properties those lack:
//
//   - Insertion-order independence: the state is a pure function of the
//     observation multiset (bucket counts commute), so a simulation's
//     sketch is deterministic under any event interleaving that preserves
//     the observations — stronger than "deterministic given insertion
//     order". (Sum alone accumulates in arrival order and can differ in
//     the last ulp across orders; Count, Min, Max and all quantiles are
//     exactly order-independent.)
//   - Exact merge associativity: Merge adds bucket counts, so any merge
//     tree over per-shard sketches yields identical quantiles — the
//     property process-sharded sweeps need.
//
// Space is O(log(max/min)/α): ~1 000 buckets for six decades at α = 1%.
// The zero value is not usable; construct with NewSketch.
type Sketch struct {
	alpha   float64
	gamma   float64
	lgGamma float64 // ln γ, the bucket index divisor

	count    uint64
	sum      float64
	min, max float64
	zero     uint64 // observations in [0, minIndexable]

	// buckets[i] counts observations x with ceil(ln x / ln γ) == base+i,
	// i.e. x in (γ^(base+i−1), γ^(base+i)].
	base    int
	buckets []uint64
}

// NewSketch returns an empty sketch with the given relative-error bound
// (0 means DefaultAlpha). Alpha must be below 1.
func NewSketch(alpha float64) *Sketch {
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	if !(alpha > 0 && alpha < 1) { // also rejects NaN
		panic(fmt.Sprintf("telemetry: alpha %v outside (0,1)", alpha))
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{
		alpha:   alpha,
		gamma:   gamma,
		lgGamma: math.Log(gamma),
		min:     math.Inf(1),
		max:     math.Inf(-1),
	}
}

// Alpha returns the sketch's relative-error bound.
func (s *Sketch) Alpha() float64 { return s.alpha }

// Add records one observation. Observations must be non-negative.
func (s *Sketch) Add(x float64) {
	if x < 0 || math.IsNaN(x) {
		panic(fmt.Sprintf("telemetry: observation %v not representable", x))
	}
	s.count++
	s.sum += x
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
	if x <= minIndexable {
		s.zero++
		return
	}
	s.bump(s.index(x), 1)
}

// index maps a positive observation to its bucket index.
func (s *Sketch) index(x float64) int {
	return int(math.Ceil(math.Log(x) / s.lgGamma))
}

// bump adds n to the bucket at absolute index idx, growing the store as
// needed.
func (s *Sketch) bump(idx int, n uint64) {
	switch {
	case len(s.buckets) == 0:
		s.base = idx
		s.buckets = append(s.buckets, 0)
	case idx < s.base:
		grown := make([]uint64, s.base-idx+len(s.buckets))
		copy(grown[s.base-idx:], s.buckets)
		s.buckets = grown
		s.base = idx
	case idx >= s.base+len(s.buckets):
		for idx >= s.base+len(s.buckets) {
			s.buckets = append(s.buckets, 0)
		}
	}
	s.buckets[idx-s.base] += n
}

// Count returns the number of observations.
func (s *Sketch) Count() uint64 { return s.count }

// Sum returns the (exact) sum of observations. Unlike the quantiles it is
// accumulated in arrival order, so it may differ in the last ulp between
// reorderings of the same multiset.
func (s *Sketch) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or NaN if empty.
func (s *Sketch) Mean() float64 {
	if s.count == 0 {
		return math.NaN()
	}
	return s.sum / float64(s.count)
}

// Min returns the smallest observation (exact), or NaN if empty.
func (s *Sketch) Min() float64 {
	if s.count == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest observation (exact), or NaN if empty.
func (s *Sketch) Max() float64 {
	if s.count == 0 {
		return math.NaN()
	}
	return s.max
}

// Quantile returns an estimate of the q-th quantile (q in [0,1]) with
// relative error at most Alpha: the returned value v satisfies
// |v − x| ≤ Alpha·x for x the order statistic of zero-based rank
// ⌊q·(n−1)⌋ — the lower anchor of the type-7 interpolation the exact
// stats.Percentile uses, so the two agree to within the bound wherever
// adjacent order statistics do. Returns NaN if the sketch is empty.
func (s *Sketch) Quantile(q float64) float64 {
	if s.count == 0 {
		return math.NaN()
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("telemetry: quantile %v out of range", q))
	}
	rank := q * float64(s.count-1)
	cum := float64(s.zero)
	if cum > rank {
		return s.min
	}
	for i, c := range s.buckets {
		cum += float64(c)
		if cum > rank {
			v := 2 * math.Pow(s.gamma, float64(s.base+i)) / (s.gamma + 1)
			// Clamp to the observed range: the end buckets are only
			// partially filled, and min/max are tracked exactly.
			if v < s.min {
				v = s.min
			}
			if v > s.max {
				v = s.max
			}
			return v
		}
	}
	return s.max
}

// Merge folds other into s. Both sketches must share the same Alpha (they
// would otherwise disagree on bucket boundaries); Merge panics with an
// error matching ErrAlphaMismatch otherwise — use TryMerge where a
// mismatch is reachable input, e.g. state decoded from another process.
// Merging adds bucket counts, so it is exactly associative and
// commutative, and other is left unchanged.
func (s *Sketch) Merge(other *Sketch) {
	if err := s.TryMerge(other); err != nil {
		panic(err)
	}
}

// TryMerge is Merge returning an error wrapping ErrAlphaMismatch instead
// of panicking when the relative-error bounds differ. On error s is left
// unchanged.
func (s *Sketch) TryMerge(other *Sketch) error {
	if other == nil || other.count == 0 {
		return nil
	}
	if other.alpha != s.alpha {
		return fmt.Errorf("%w: %v vs %v", ErrAlphaMismatch, s.alpha, other.alpha)
	}
	s.count += other.count
	s.sum += other.sum
	s.zero += other.zero
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	for i, c := range other.buckets {
		if c != 0 {
			s.bump(other.base+i, c)
		}
	}
	return nil
}
