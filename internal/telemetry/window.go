package telemetry

import (
	"errors"
	"fmt"
	"math"
)

// ErrWindowMismatch is returned by Window.Merge when the two windows have
// different bin widths or spans — their bins would not align.
var ErrWindowMismatch = errors.New("telemetry: window geometry mismatch")

// Window accumulates amounts into fixed-width time bins like
// stats.TimeSeries, but retains only the trailing Span bins — a ring — plus
// an exact running total, so unbounded runs hold O(Span) state instead of
// one bin per elapsed interval. It backs the throughput and bandwidth-tax
// series of sketch-retention runs: the recent window stays inspectable
// while month-old bins are forgotten (their contribution survives in
// Total).
//
// Record times must be non-negative; the simulator's clock is monotone, so
// bins older than the trailing window are never recorded into (Record
// panics if one is — it would silently vanish from the rates otherwise).
type Window struct {
	binWidth float64 // seconds per bin
	ring     []float64
	head     int64 // absolute index of the newest bin covered; -1 when empty
	total    float64
}

// NewWindow returns a window of bins trailing bins of the given width in
// seconds.
func NewWindow(binWidthSeconds float64, bins int) *Window {
	if !(binWidthSeconds > 0) || math.IsInf(binWidthSeconds, 0) { // also rejects NaN
		panic("telemetry: bin width must be positive and finite")
	}
	if bins <= 0 {
		panic("telemetry: non-positive bin count")
	}
	return &Window{binWidth: binWidthSeconds, ring: make([]float64, bins), head: -1}
}

// BinWidth returns the width of each bin in seconds.
func (w *Window) BinWidth() float64 { return w.binWidth }

// Span returns how many trailing bins are retained.
func (w *Window) Span() int { return len(w.ring) }

// Record adds amount at time t seconds.
func (w *Window) Record(t, amount float64) {
	if t < 0 {
		panic("telemetry: negative time")
	}
	bin := int64(t / w.binWidth)
	switch {
	case w.head < 0 || bin-w.head >= int64(len(w.ring)):
		// First record, or a gap longer than the whole window: every
		// retained bin is zero.
		for i := range w.ring {
			w.ring[i] = 0
		}
		w.head = bin
	case bin > w.head:
		for w.head < bin {
			w.head++
			w.ring[w.head%int64(len(w.ring))] = 0
		}
	case bin <= w.head-int64(len(w.ring)):
		panic(fmt.Sprintf("telemetry: record at bin %d below trailing window ending at %d", bin, w.head))
	}
	w.ring[bin%int64(len(w.ring))] += amount
	w.total += amount
}

// Total returns the exact all-time sum, including amounts whose bins have
// rotated out of the window.
func (w *Window) Total() float64 { return w.total }

// WindowTotal returns the sum over the retained trailing bins only.
func (w *Window) WindowTotal() float64 {
	var sum float64
	first, n := w.bounds()
	for b := first; b < first+n; b++ {
		sum += w.ring[b%int64(len(w.ring))]
	}
	return sum
}

// Rates returns the trailing window as per-second rates, oldest first,
// along with the absolute index of the first returned bin (firstBin ×
// BinWidth seconds is its start time). Empty windows return (0, nil).
func (w *Window) Rates() (firstBin int64, rates []float64) {
	first, n := w.bounds()
	if n == 0 {
		return 0, nil
	}
	rates = make([]float64, n)
	for i := range rates {
		rates[i] = w.ring[(first+int64(i))%int64(len(w.ring))] / w.binWidth
	}
	return first, rates
}

// Merge folds other into w: totals add exactly, and each live bin of
// other that still falls inside the merged trailing window (which ends at
// the later of the two heads) adds into the corresponding bin of w. Bins
// of other that the merged window has already rotated past are dropped
// from the ring — exactly as if their amounts had been recorded into w at
// their original times — but survive in Total. The merged state is a pure
// function of the multiset of inputs, so Merge is associative and
// commutative up to float addition order — exactly so when amounts are
// integral (the collector records byte counts, which stay exact below
// 2^53); other is left unchanged.
//
// Both windows must share the same bin width and span; Merge returns
// ErrWindowMismatch otherwise.
func (w *Window) Merge(other *Window) error {
	if other == nil {
		return nil
	}
	if other.binWidth != w.binWidth || len(other.ring) != len(w.ring) {
		return fmt.Errorf("%w: %v s × %d bins vs %v s × %d bins",
			ErrWindowMismatch, w.binWidth, len(w.ring), other.binWidth, len(other.ring))
	}
	if other.head > w.head {
		// Advance w's coverage without touching its contents: live bins
		// that remain inside the new trailing range keep their slots (the
		// slot index depends only on the absolute bin), bins that fall out
		// must be zeroed exactly as Record's rotation would.
		first, n := w.bounds()
		newFirst := other.head - int64(len(w.ring)) + 1
		for bin := first; bin < first+n && bin < newFirst; bin++ {
			w.ring[bin%int64(len(w.ring))] = 0
		}
		w.head = other.head
	}
	first, n := other.bounds()
	for bin := first; bin < first+n; bin++ {
		if bin > w.head-int64(len(w.ring)) {
			w.ring[bin%int64(len(w.ring))] += other.ring[bin%int64(len(other.ring))]
		}
	}
	w.total += other.total
	return nil
}

// bounds returns the absolute index of the oldest retained bin and how
// many bins are live.
func (w *Window) bounds() (first, n int64) {
	if w.head < 0 {
		return 0, 0
	}
	first = w.head - int64(len(w.ring)) + 1
	if first < 0 {
		first = 0
	}
	return first, w.head - first + 1
}
