package telemetry

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
)

// TestSketchMergeAlphaMismatchPanics pins the defined diagnostic for
// merging sketches with different relative-error bounds: Merge panics
// with an error matching ErrAlphaMismatch (previously the behavior was
// only an ad-hoc message), and TryMerge returns the same error. The wire
// codec makes cross-process mismatches reachable, so the failure mode is
// part of the API.
func TestSketchMergeAlphaMismatchPanics(t *testing.T) {
	a := NewSketch(0.01)
	b := NewSketch(0.02)
	b.Add(1)

	if err := a.TryMerge(b); !errors.Is(err, ErrAlphaMismatch) {
		t.Fatalf("TryMerge: got %v, want ErrAlphaMismatch", err)
	}
	if a.Count() != 0 {
		t.Fatal("failed TryMerge mutated the receiver")
	}

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Merge with mismatched alpha did not panic")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrAlphaMismatch) {
			t.Fatalf("Merge panicked with %v, want an error matching ErrAlphaMismatch", r)
		}
		if !strings.Contains(err.Error(), "0.01") || !strings.Contains(err.Error(), "0.02") {
			t.Fatalf("diagnostic %q does not name both alphas", err)
		}
	}()
	a.Merge(b)
}

func TestWindowMergeGeometryMismatch(t *testing.T) {
	w := NewWindow(0.001, 64)
	if err := w.Merge(NewWindow(0.002, 64)); !errors.Is(err, ErrWindowMismatch) {
		t.Fatalf("bin-width mismatch: got %v", err)
	}
	if err := w.Merge(NewWindow(0.001, 32)); !errors.Is(err, ErrWindowMismatch) {
		t.Fatalf("span mismatch: got %v", err)
	}
	if err := w.Merge(nil); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
}

// TestWindowMergeMatchesInterleavedRecording: merging per-shard windows
// must equal recording every (time, amount) pair into one window, for any
// split — the insertion-order-independence property sharding needs.
func TestWindowMergeMatchesInterleavedRecording(t *testing.T) {
	type rec struct{ t, v float64 }
	var recs []rec
	for i := 0; i < 400; i++ {
		recs = append(recs, rec{t: float64(i) * 0.0004, v: float64(i%97 + 1)})
	}

	one := NewWindow(0.001, 32)
	for _, r := range recs {
		one.Record(r.t, r.v)
	}

	a, b := NewWindow(0.001, 32), NewWindow(0.001, 32)
	for i, r := range recs {
		if i%3 == 0 {
			a.Record(r.t, r.v)
		} else {
			b.Record(r.t, r.v)
		}
	}
	merged := NewWindow(0.001, 32)
	if err := merged.Merge(a); err != nil {
		t.Fatal(err)
	}
	if err := merged.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged, one) {
		t.Fatalf("merged shards differ from single-feed window:\nmerged %+v\nsingle %+v", merged, one)
	}

	// Reverse merge order: identical (commutativity on this input).
	rev := NewWindow(0.001, 32)
	if err := rev.Merge(b); err != nil {
		t.Fatal(err)
	}
	if err := rev.Merge(a); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rev, one) {
		t.Fatalf("reverse merge order differs from single-feed window")
	}
}

// TestWindowMergeAssociative checks tree-shape independence on integral
// amounts, including shards whose heads differ by more than a whole span
// (forcing rotation drops during the merge).
func TestWindowMergeAssociative(t *testing.T) {
	mk := func(start float64, n int) *Window {
		w := NewWindow(0.001, 16)
		for i := 0; i < n; i++ {
			w.Record(start+float64(i)*0.0007, float64(i%13+1))
		}
		return w
	}
	ws := []*Window{mk(0, 40), mk(0.050, 40), mk(0.005, 10)}

	leftFold := NewWindow(0.001, 16)
	for _, w := range ws {
		if err := leftFold.Merge(w); err != nil {
			t.Fatal(err)
		}
	}
	// ((b ⊔ c) ⊔ a)
	other := NewWindow(0.001, 16)
	for _, w := range []*Window{ws[1], ws[2], ws[0]} {
		if err := other.Merge(w); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(other, leftFold) {
		t.Fatalf("merge is order-dependent:\n%+v\n%+v", other, leftFold)
	}
	if got, want := leftFold.Total(), ws[0].Total()+ws[1].Total()+ws[2].Total(); got != want {
		t.Fatalf("merged total %v, want %v", got, want)
	}
}

func TestOptsValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Opts
		ok   bool
	}{
		{"zero-defaults", Opts{}, true},
		{"typical", Opts{Alpha: 0.05, WindowBin: 0.002, WindowBins: 64}, true},
		{"alpha-negative", Opts{Alpha: -0.01}, false},
		{"alpha-one", Opts{Alpha: 1}, false},
		{"alpha-nan", Opts{Alpha: math.NaN()}, false},
		{"bin-negative", Opts{WindowBin: -1}, false},
		{"bin-nan", Opts{WindowBin: math.NaN()}, false},
		{"bin-inf", Opts{WindowBin: math.Inf(1)}, false},
		{"bins-negative", Opts{WindowBins: -5}, false},
	} {
		err := tc.opts.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// TestNewCollectorRejectsNaNAlpha: before Validate existed, a NaN alpha
// slipped through NewSketch's range check (NaN compares false against
// every bound) and produced NaN quantiles downstream. Now it fails at
// construction with a clear message.
func TestNewCollectorRejectsNaNAlpha(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCollector with NaN alpha did not panic")
		}
	}()
	NewCollector(Opts{Alpha: math.NaN()}, 2)
}

func TestCollectorMergeMismatch(t *testing.T) {
	a := NewCollector(Opts{}, 2)
	if err := a.Merge(NewCollector(Opts{Alpha: 0.05}, 2)); err == nil {
		t.Fatal("merging collectors with different alphas succeeded")
	}
	if err := a.Merge(NewCollector(Opts{}, 3)); err == nil {
		t.Fatal("merging collectors with different class counts succeeded")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
}
