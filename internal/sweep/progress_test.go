package sweep

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/opera-net/opera/scenario"
)

// recordSink records every progress event as one line, in callback order.
type recordSink struct {
	mu     sync.Mutex
	events []string
}

func (r *recordSink) add(format string, args ...any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, fmt.Sprintf(format, args...))
}

func (r *recordSink) SweepStarted(specs, workers, shards int) {
	r.add("started specs=%d workers=%d shards=%d", specs, workers, shards)
}

func (r *recordSink) ShardDispatched(round, shard int, indices []int) {
	r.add("dispatched round=%d shard=%d n=%d", round, shard, len(indices))
}

func (r *recordSink) ShardDone(round, shard int, indices []int, err error) {
	r.add("done round=%d shard=%d n=%d err=%v", round, shard, len(indices), err != nil)
}

func (r *recordSink) ResultDelivered(index int, res scenario.Result, collector []byte) {
	r.add("result index=%d", index)
}

func (r *recordSink) SweepDone(rounds int, failed []int) {
	r.add("finished rounds=%d failed=%d", rounds, len(failed))
}

func (r *recordSink) snapshot() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.events...)
}

// TestProgressRetryOrdering pins the event sequence through a worker
// crash: one shard per round, the round-0 worker dies after two frames,
// so the retry round re-dispatches exactly the missing indices — and the
// sink sees dispatch → partial delivery → failed done → retry-dispatch →
// remaining delivery → clean done → finished, in that order. The same
// run's LogProgress output must carry the retry-dispatch line.
func TestProgressRetryOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns packet-level worker processes")
	}
	g := testGrid()
	specs, _, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("test grid has %d specs, want 4", len(specs))
	}

	command, fired := crashOnce(2)
	rec := &recordSink{}
	var logBuf bytes.Buffer
	rep, err := Run(context.Background(), specs, Options{
		Workers:  1,
		Shards:   1,
		Retries:  2,
		Command:  command,
		Progress: MultiProgress(rec, LogProgress(&logBuf)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !fired.Load() {
		t.Fatal("crash injection never fired")
	}
	if len(rep.Failed) > 0 {
		t.Fatalf("failed cells after retry: %v", rep.Failed)
	}
	if rep.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2", rep.Rounds)
	}

	want := []string{
		"started specs=4 workers=1 shards=1",
		"dispatched round=0 shard=0 n=4",
		"result index=0",
		"result index=1",
		"done round=0 shard=0 n=4 err=true",
		"dispatched round=1 shard=0 n=2",
		"result index=2",
		"result index=3",
		"done round=1 shard=0 n=2 err=false",
		"finished rounds=2 failed=0",
	}
	got := rec.snapshot()
	if len(got) != len(want) {
		t.Fatalf("event count = %d, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event[%d] = %q, want %q\nfull sequence:\n%s",
				i, got[i], want[i], strings.Join(got, "\n"))
		}
	}

	log := logBuf.String()
	for _, needle := range []string{"sweep started", "dispatch round 0", "shard failed round 0", "retry-dispatch round 1", "shard done round 1", "all cells delivered"} {
		if !strings.Contains(log, needle) {
			t.Fatalf("log output missing %q:\n%s", needle, log)
		}
	}
}

// TestRunLocalProgress covers the in-process path: per-result delivery
// and completion events with no shard traffic.
func TestRunLocalProgress(t *testing.T) {
	g := testGrid()
	specs, _, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordSink{}
	rep, err := RunLocalProgress(context.Background(), specs, 1, rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failed) > 0 {
		t.Fatalf("failed cells: %v", rep.Failed)
	}
	got := rec.snapshot()
	want := []string{
		"started specs=4 workers=1 shards=0",
		"result index=0",
		"result index=1",
		"result index=2",
		"result index=3",
		"finished rounds=1 failed=0",
	}
	if len(got) != len(want) {
		t.Fatalf("event count = %d, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
