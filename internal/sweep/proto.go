// Package sweep shards a grid of scenario Specs across worker processes
// and merges the shards back into one report — the multi-process
// counterpart of scenario.RunScenarios.
//
// The protocol is deliberately small. The coordinator gob-encodes one
// ShardSpec (a slice of Specs plus their global indices) onto each
// worker's stdin; the worker runs the specs in order and streams one
// gob-encoded Frame per finished scenario back over stdout, then exits.
// Because every scenario's Result is a pure function of its Spec and the
// telemetry collectors merge associatively, the coordinator can place
// frames by global index and re-dispatch only the indices a crashed or
// timed-out worker never delivered: the merged output is byte-identical
// to a single-process run no matter how the work was sharded, shuffled,
// or retried.
package sweep

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"strconv"

	"github.com/opera-net/opera/scenario"
)

// ShardSpec is the coordinator→worker work order: the specs one worker
// process runs, paired with their global indices into the sweep so the
// coordinator can place results without trusting arrival order.
type ShardSpec struct {
	// Indices[k] is the global sweep index of Specs[k].
	Indices []int
	Specs   []scenario.Spec
}

// Frame is one worker→coordinator message: a finished scenario's global
// index, its Result, and the telemetry collector's wire encoding (nil
// when the spec does not use sketch retention).
type Frame struct {
	Index     int
	Result    scenario.Result
	Collector []byte
}

// crashAfterEnv is test-only fault injection: when set to n, a worker
// exits hard (simulating a crash) after emitting n frames. The retry
// tests use it to kill a shard mid-sweep and prove the merged output
// still matches a local run.
const crashAfterEnv = "OPERA_SWEEP_TEST_CRASH_AFTER"

// ServeShard is the worker side of the protocol: decode one ShardSpec
// from r, run each spec, and stream a Frame per result to w. It returns
// only on a malformed shard or a broken pipe; a healthy worker processes
// the whole shard and returns nil.
func ServeShard(r io.Reader, w io.Writer) error {
	var shard ShardSpec
	if err := gob.NewDecoder(r).Decode(&shard); err != nil {
		return fmt.Errorf("sweep: worker: decode shard: %w", err)
	}
	if len(shard.Indices) != len(shard.Specs) {
		return fmt.Errorf("sweep: worker: shard pairs %d indices with %d specs",
			len(shard.Indices), len(shard.Specs))
	}
	crashAfter := -1
	if s := os.Getenv(crashAfterEnv); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			return fmt.Errorf("sweep: worker: bad %s: %w", crashAfterEnv, err)
		}
		crashAfter = n
	}
	enc := gob.NewEncoder(w)
	for k, sp := range shard.Specs {
		if crashAfter >= 0 && k >= crashAfter {
			os.Exit(3)
		}
		res, blob := runSpec(sp)
		if err := enc.Encode(Frame{Index: shard.Indices[k], Result: res, Collector: blob}); err != nil {
			return fmt.Errorf("sweep: worker: send frame: %w", err)
		}
	}
	return nil
}

// runSpec resolves and runs one Spec, returning its Result and, under
// sketch retention, the collector's wire encoding. A spec that fails to
// resolve yields a Result carrying only the error — the same shape a
// failed cluster build produces — so bad cells surface in the report
// instead of killing the shard.
func runSpec(sp scenario.Spec) (scenario.Result, []byte) {
	sc, err := sp.Scenario()
	if err != nil {
		return scenario.Result{Name: sp.Name, Seed: sp.Seed, Err: err.Error()}, nil
	}
	cl, res := scenario.Collect(sc)
	if cl == nil {
		return res, nil
	}
	tel := cl.Metrics().Telemetry()
	if tel == nil {
		return res, nil
	}
	blob, err := tel.MarshalBinary()
	if err != nil {
		res.Err = fmt.Sprintf("sweep: encode collector: %v", err)
		return res, nil
	}
	return res, blob
}
