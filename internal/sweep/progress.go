package sweep

import (
	"fmt"
	"io"
	"log"

	"github.com/opera-net/opera/scenario"
)

// ProgressSink observes a sweep as it runs: shard dispatch, completion,
// retries, and per-scenario result delivery. Run was previously silent
// between start and return; a sink makes a long sweep legible — to a
// human on stderr (LogProgress) or to a status endpoint (obs.SweepTracker).
//
// Callbacks fire from coordinator goroutines concurrently, so
// implementations must be safe for concurrent use. They run inline on the
// dispatch/delivery path: keep them fast and never block.
type ProgressSink interface {
	// SweepStarted fires once, before the first dispatch round.
	SweepStarted(specs, workers, shards int)
	// ShardDispatched fires as shard (its index within the round) is
	// handed to a worker; round > 0 means a retry of previously
	// undelivered indices. indices must not be mutated or retained.
	ShardDispatched(round, shard int, indices []int)
	// ShardDone fires when a shard attempt finishes; err is non-nil on
	// crash, timeout, or protocol failure (its indices may be retried).
	ShardDone(round, shard int, indices []int, err error)
	// ResultDelivered fires per finished scenario, in arrival order.
	ResultDelivered(index int, res scenario.Result, collector []byte)
	// SweepDone fires once after the last round; failed lists spec
	// indices never delivered.
	SweepDone(rounds int, failed []int)
}

// nopProgress is the sink used when Options.Progress is nil.
type nopProgress struct{}

func (nopProgress) SweepStarted(int, int, int)                   {}
func (nopProgress) ShardDispatched(int, int, []int)              {}
func (nopProgress) ShardDone(int, int, []int, error)             {}
func (nopProgress) ResultDelivered(int, scenario.Result, []byte) {}
func (nopProgress) SweepDone(int, []int)                         {}

// LogProgress returns a sink writing structured one-line events to w
// (typically stderr) with wall-clock timestamps. Per-result delivery is
// deliberately not logged — shard granularity keeps a thousand-cell sweep
// readable.
func LogProgress(w io.Writer) ProgressSink {
	return &logProgress{l: log.New(w, "opera-sweep: ", log.LstdFlags|log.Lmicroseconds)}
}

type logProgress struct{ l *log.Logger }

func (p *logProgress) SweepStarted(specs, workers, shards int) {
	p.l.Printf("sweep started: %d scenario(s), %d worker(s), %d shard(s)/round", specs, workers, shards)
}

func (p *logProgress) ShardDispatched(round, shard int, indices []int) {
	verb := "dispatch"
	if round > 0 {
		verb = "retry-dispatch"
	}
	p.l.Printf("%s round %d shard %d: %s", verb, round, shard, indexSpan(indices))
}

func (p *logProgress) ShardDone(round, shard int, indices []int, err error) {
	if err != nil {
		p.l.Printf("shard failed round %d shard %d: %s: %v", round, shard, indexSpan(indices), err)
		return
	}
	p.l.Printf("shard done round %d shard %d: %s", round, shard, indexSpan(indices))
}

func (p *logProgress) ResultDelivered(int, scenario.Result, []byte) {}

func (p *logProgress) SweepDone(rounds int, failed []int) {
	if len(failed) > 0 {
		p.l.Printf("sweep done: %d round(s), %d cell(s) FAILED %v", rounds, len(failed), failed)
		return
	}
	p.l.Printf("sweep done: %d round(s), all cells delivered", rounds)
}

// indexSpan renders a shard's global indices compactly: count plus the
// min..max range (shards are contiguous in round 0 but can be sparse on
// retry, so the range is a summary, not an enumeration).
func indexSpan(indices []int) string {
	if len(indices) == 0 {
		return "0 scenario(s)"
	}
	lo, hi := indices[0], indices[0]
	for _, i := range indices[1:] {
		if i < lo {
			lo = i
		}
		if i > hi {
			hi = i
		}
	}
	if lo == hi {
		return fmt.Sprintf("1 scenario(s) [%d]", lo)
	}
	return fmt.Sprintf("%d scenario(s) [%d..%d]", len(indices), lo, hi)
}

// MultiProgress fans every event out to each sink in order — e.g. stderr
// logging plus a live status endpoint.
func MultiProgress(sinks ...ProgressSink) ProgressSink { return multiProgress(sinks) }

type multiProgress []ProgressSink

func (m multiProgress) SweepStarted(specs, workers, shards int) {
	for _, s := range m {
		s.SweepStarted(specs, workers, shards)
	}
}

func (m multiProgress) ShardDispatched(round, shard int, indices []int) {
	for _, s := range m {
		s.ShardDispatched(round, shard, indices)
	}
}

func (m multiProgress) ShardDone(round, shard int, indices []int, err error) {
	for _, s := range m {
		s.ShardDone(round, shard, indices, err)
	}
}

func (m multiProgress) ResultDelivered(index int, res scenario.Result, collector []byte) {
	for _, s := range m {
		s.ResultDelivered(index, res, collector)
	}
}

func (m multiProgress) SweepDone(rounds int, failed []int) {
	for _, s := range m {
		s.SweepDone(rounds, failed)
	}
}
