package sweep

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"sync"
	"time"

	opera "github.com/opera-net/opera"
	"github.com/opera-net/opera/scenario"
)

// CommandFunc builds the subprocess one shard attempt runs in. The
// command must read a gob ShardSpec from stdin and stream gob Frames to
// stdout — i.e. run ServeShard. It is called once per attempt, so a
// fresh Cmd must be returned every time.
type CommandFunc func(ctx context.Context) *exec.Cmd

// SelfWorker launches the current executable with -worker — the default
// CommandFunc when coordinator and worker share a binary (opera-sweep).
func SelfWorker(ctx context.Context) *exec.Cmd {
	exe, err := os.Executable()
	if err != nil {
		exe = os.Args[0]
	}
	return exec.CommandContext(ctx, exe, "-worker")
}

// Options shapes a sharded Run.
type Options struct {
	// Workers caps concurrent worker processes (<= 0: GOMAXPROCS).
	Workers int
	// Shards is how many pieces each dispatch round splits the remaining
	// work into (<= 0: Workers). More shards than workers bounds the
	// re-run cost of one crash at the price of more process launches.
	Shards int
	// Retries is how many re-dispatch rounds may follow the first before
	// still-missing scenarios are reported failed (< 0 behaves as 0).
	Retries int
	// Timeout bounds one shard attempt's wall-clock time (0 = none); a
	// timed-out worker is killed and its missing indices re-dispatched.
	Timeout time.Duration
	// Command launches a worker (nil: SelfWorker).
	Command CommandFunc
	// ShuffleDispatch scrambles shard dispatch order with ShuffleSeed —
	// used by the determinism tests to prove result placement does not
	// depend on scheduling.
	ShuffleDispatch bool
	ShuffleSeed     int64
	// Progress observes dispatch/completion/delivery (nil: no reporting).
	// It must be safe for concurrent use; see ProgressSink.
	Progress ProgressSink
}

// Report is a finished sweep. Results and Collectors are in spec order
// regardless of sharding; scenarios that no worker ever delivered carry
// an Err in their Result and are listed in Failed, so partial failure is
// visible without invalidating the cells that did complete.
type Report struct {
	Results []scenario.Result
	// Collectors holds each scenario's telemetry wire blob (nil without
	// sketch retention or for failed cells).
	Collectors [][]byte
	// Failed lists spec indices never delivered after all retries.
	Failed []int
	// Rounds is how many dispatch rounds ran (1 = no retries needed).
	Rounds int
	// WorkerErrs collects per-attempt diagnostics (crashes, timeouts,
	// protocol errors), sorted for stable output.
	WorkerErrs []string
}

// Run executes every spec across worker subprocesses and merges the
// shards. Failed shards are retried in later rounds — only the missing
// indices are re-dispatched — and exhausted retries surface in
// Report.Failed rather than as an error: the error return is reserved
// for the coordinator itself (context cancellation). Results are
// identical to RunLocal for the scenarios that completed, at any
// Workers/Shards/shuffle setting.
func Run(ctx context.Context, specs []scenario.Spec, opt Options) (Report, error) {
	rep := Report{
		Results:    make([]scenario.Result, len(specs)),
		Collectors: make([][]byte, len(specs)),
	}
	if len(specs) == 0 {
		return rep, nil
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shardCount := opt.Shards
	if shardCount <= 0 {
		shardCount = workers
	}
	retries := opt.Retries
	if retries < 0 {
		retries = 0
	}
	command := opt.Command
	if command == nil {
		command = SelfWorker
	}
	prog := opt.Progress
	if prog == nil {
		prog = nopProgress{}
	}
	prog.SweepStarted(len(specs), workers, shardCount)

	done := make([]bool, len(specs))
	missing := make([]int, len(specs))
	for i := range missing {
		missing[i] = i
	}
	var mu sync.Mutex // guards rep.Results/Collectors/WorkerErrs and done

	for round := 0; round <= retries && len(missing) > 0 && ctx.Err() == nil; round++ {
		rep.Rounds++
		batch := partition(missing, shardCount)
		order := make([]int, len(batch))
		for i := range order {
			order[i] = i
		}
		if opt.ShuffleDispatch {
			rng := rand.New(rand.NewSource(opt.ShuffleSeed + int64(round)))
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for _, bi := range order {
			shard := ShardSpec{Indices: batch[bi], Specs: make([]scenario.Spec, len(batch[bi]))}
			for k, gi := range shard.Indices {
				shard.Specs[k] = specs[gi]
			}
			wg.Add(1)
			sem <- struct{}{}
			prog.ShardDispatched(round, bi, shard.Indices)
			go func(round, bi int, shard ShardSpec) {
				defer wg.Done()
				defer func() { <-sem }()
				err := runShard(ctx, opt.Timeout, command, shard, func(f Frame) error {
					mu.Lock()
					defer mu.Unlock()
					if f.Index < 0 || f.Index >= len(specs) {
						return fmt.Errorf("sweep: worker returned out-of-range index %d", f.Index)
					}
					rep.Results[f.Index] = f.Result
					rep.Collectors[f.Index] = f.Collector
					done[f.Index] = true
					prog.ResultDelivered(f.Index, f.Result, f.Collector)
					return nil
				})
				prog.ShardDone(round, bi, shard.Indices, err)
				if err != nil {
					mu.Lock()
					rep.WorkerErrs = append(rep.WorkerErrs, err.Error())
					mu.Unlock()
				}
			}(round, bi, shard)
		}
		wg.Wait()
		var still []int
		for _, gi := range missing {
			if !done[gi] {
				still = append(still, gi)
			}
		}
		missing = still
	}
	sort.Strings(rep.WorkerErrs)
	for _, gi := range missing {
		rep.Failed = append(rep.Failed, gi)
		sp := specs[gi]
		res := scenario.Result{Name: sp.Name, Seed: sp.Seed,
			Err: fmt.Sprintf("sweep: not delivered after %d dispatch round(s)", rep.Rounds)}
		if k, err := opera.ParseKind(sp.Network); err == nil {
			res.Kind = k
		}
		rep.Results[gi] = res
	}
	prog.SweepDone(rep.Rounds, rep.Failed)
	return rep, ctx.Err()
}

// runShard runs one shard attempt in a subprocess, delivering each
// decoded Frame as it arrives so a crash mid-shard still banks the
// results streamed before it.
func runShard(ctx context.Context, timeout time.Duration, command CommandFunc, shard ShardSpec, deliver func(Frame) error) error {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	cmd := command(ctx)
	if cmd == nil {
		return errors.New("sweep: CommandFunc returned nil")
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return fmt.Errorf("sweep: worker stdin: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return fmt.Errorf("sweep: worker stdout: %w", err)
	}
	if cmd.Stderr == nil {
		cmd.Stderr = os.Stderr
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("sweep: start worker: %w", err)
	}

	encErr := make(chan error, 1)
	go func() {
		err := gob.NewEncoder(stdin).Encode(shard)
		stdin.Close()
		encErr <- err
	}()

	dec := gob.NewDecoder(stdout)
	got := 0
	var failure error
	for {
		var f Frame
		if err := dec.Decode(&f); err != nil {
			if err != io.EOF {
				failure = fmt.Errorf("sweep: decode frame: %w", err)
			}
			break
		}
		if err := deliver(f); err != nil {
			failure = err
			break
		}
		got++
	}
	if failure != nil {
		// Stop reading before the worker finishes writing: kill it so Wait
		// cannot deadlock on a full pipe.
		_ = cmd.Process.Kill()
	}
	waitErr := cmd.Wait()
	if err := <-encErr; err != nil && failure == nil {
		failure = fmt.Errorf("sweep: send shard: %w", err)
	}
	if failure != nil {
		return failure
	}
	if waitErr != nil {
		return fmt.Errorf("sweep: worker exited after %d/%d results: %w", got, len(shard.Specs), waitErr)
	}
	if got != len(shard.Specs) {
		return fmt.Errorf("sweep: worker returned %d/%d results", got, len(shard.Specs))
	}
	return nil
}

// partition splits indices into at most n contiguous, near-equal chunks.
func partition(indices []int, n int) [][]int {
	if len(indices) == 0 {
		return nil
	}
	if n > len(indices) {
		n = len(indices)
	}
	if n < 1 {
		n = 1
	}
	out := make([][]int, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*len(indices)/n, (i+1)*len(indices)/n
		out = append(out, indices[lo:hi])
	}
	return out
}

// RunLocal runs every spec in-process across parallelism goroutines
// (<= 0: GOMAXPROCS) — the reference a sharded Run must reproduce
// byte-for-byte, and the -workers 0 path of opera-sweep.
func RunLocal(ctx context.Context, specs []scenario.Spec, parallelism int) (Report, error) {
	return RunLocalProgress(ctx, specs, parallelism, nil)
}

// RunLocalProgress is RunLocal with a progress sink. There are no worker
// processes, so no shard events fire — only SweepStarted, per-scenario
// ResultDelivered, and SweepDone (shards reported as 0).
func RunLocalProgress(ctx context.Context, specs []scenario.Spec, parallelism int, prog ProgressSink) (Report, error) {
	if prog == nil {
		prog = nopProgress{}
	}
	rep := Report{
		Results:    make([]scenario.Result, len(specs)),
		Collectors: make([][]byte, len(specs)),
		Rounds:     1,
	}
	if len(specs) == 0 {
		return rep, nil
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	prog.SweepStarted(len(specs), parallelism, 0)
	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism && w < len(specs); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				rep.Results[i], rep.Collectors[i] = runSpec(specs[i])
				prog.ResultDelivered(i, rep.Results[i], rep.Collectors[i])
			}
		}()
	}
	var err error
feed:
	for i := range specs {
		if ctx.Err() != nil {
			err = ctx.Err()
			markSkipped(&rep, specs, i, err)
			break
		}
		select {
		case <-ctx.Done():
			err = ctx.Err()
			markSkipped(&rep, specs, i, err)
			break feed
		case indices <- i:
		}
	}
	close(indices)
	wg.Wait()
	prog.SweepDone(rep.Rounds, rep.Failed)
	return rep, err
}

// markSkipped records cancellation for specs from index from on.
func markSkipped(rep *Report, specs []scenario.Spec, from int, err error) {
	for j := from; j < len(specs); j++ {
		rep.Failed = append(rep.Failed, j)
		rep.Results[j] = scenario.Result{Name: specs[j].Name, Seed: specs[j].Seed, Err: err.Error()}
	}
}
