package sweep

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"reflect"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/experiments"
	"github.com/opera-net/opera/scenario"
)

// workerEnv flips the test binary into worker mode: TestMain intercepts
// it before any test runs, so the coordinator tests can launch their own
// binary as the shard subprocess (the standard helper-process pattern).
const workerEnv = "OPERA_SWEEP_WORKER"

func TestMain(m *testing.M) {
	if os.Getenv(workerEnv) == "1" {
		if err := ServeShard(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// testWorker launches this test binary in worker mode.
func testWorker(ctx context.Context) *exec.Cmd {
	cmd := exec.CommandContext(ctx, os.Args[0])
	cmd.Env = append(os.Environ(), workerEnv+"=1")
	return cmd
}

// crashOnce wraps testWorker so exactly one launched process crashes
// after emitting `after` frames — a shard dying mid-sweep.
func crashOnce(after int) (CommandFunc, *atomic.Bool) {
	var fired atomic.Bool
	return func(ctx context.Context) *exec.Cmd {
		cmd := testWorker(ctx)
		if fired.CompareAndSwap(false, true) {
			cmd.Env = append(cmd.Env, crashAfterEnv+"="+strconv.Itoa(after))
		}
		return cmd
	}, &fired
}

// crashAlways makes every worker exit before its first frame.
func crashAlways(ctx context.Context) *exec.Cmd {
	cmd := testWorker(ctx)
	cmd.Env = append(cmd.Env, crashAfterEnv+"=0")
	return cmd
}

// testGrid is a sweep small enough to run many times per test binary:
// one network, one load, four seed replicas, 2 ms arrival window.
func testGrid() Grid {
	return Grid{
		Networks:     []string{"opera"},
		Workload:     "websearch",
		Loads:        []float64{0.05},
		DurationMs:   2,
		DrainFactor:  8,
		MaxFlowBytes: 500_000,
		Replicas:     4,
		Sketch:       true,
	}
}

// mustCSV renders the sweep tables and concatenates their CSV text.
func mustCSV(t *testing.T, g Grid, rep Report) string {
	t.Helper()
	specs, cells, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	tables, err := Tables(g, specs, cells, rep)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, tb := range tables {
		b.WriteString(tb.Name)
		b.WriteByte('\n')
		b.WriteString(tb.CSV())
	}
	return b.String()
}

// TestShardedMatchesLocal is the subsystem's core determinism claim:
// the same grid run in-process, sharded across one worker, and sharded
// across four shuffled workers yields per-index equal Results, equal
// collector blobs, and byte-identical CSV tables.
func TestShardedMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns packet-level worker processes")
	}
	g := testGrid()
	specs, _, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}

	local, err := RunLocal(context.Background(), specs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(local.Failed) > 0 {
		t.Fatalf("local run failed cells: %v", local.Failed)
	}

	one, err := Run(context.Background(), specs, Options{Workers: 1, Command: testWorker})
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(context.Background(), specs, Options{
		Workers: 4, Shards: 4, Command: testWorker,
		ShuffleDispatch: true, ShuffleSeed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}

	for name, rep := range map[string]Report{"workers=1": one, "workers=4": four} {
		if len(rep.Failed) > 0 {
			t.Fatalf("%s: failed cells %v: %v", name, rep.Failed, rep.WorkerErrs)
		}
		for i := range specs {
			if !rep.Results[i].Equal(local.Results[i]) {
				t.Errorf("%s: result %d differs from local:\ngot  %+v\nwant %+v",
					name, i, rep.Results[i], local.Results[i])
			}
			if !bytes.Equal(rep.Collectors[i], local.Collectors[i]) {
				t.Errorf("%s: collector blob %d differs from local", name, i)
			}
		}
		if got, want := mustCSV(t, g, rep), mustCSV(t, g, local); got != want {
			t.Errorf("%s: merged CSVs differ from local run:\n%s\n--- want ---\n%s", name, got, want)
		}
	}
}

// TestFaultedSweepShardedMatchesLocal: a grid carrying a fault schedule
// — random cable cuts plus a lossy gray link, the failure figures' shape
// — still shards byte-identically. The EventSpec list rides the gob wire
// with the rest of each Spec, so every worker injects the same faults at
// the same virtual times.
func TestFaultedSweepShardedMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns packet-level worker processes")
	}
	g := testGrid()
	g.Replicas = 2
	g.Events = []scenario.EventSpec{
		{At: 500 * eventsim.Microsecond, Op: "fail-random-links", Fraction: 0.05},
		{At: 700 * eventsim.Microsecond,
			Target: scenario.TargetSpec{Kind: "link", Switch: 2, Port: 1},
			Fault:  scenario.FaultSpec{Kind: "lossy", Rate: 0.3}},
	}
	specs, _, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}

	local, err := RunLocal(context.Background(), specs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(local.Failed) > 0 {
		t.Fatalf("local faulted run failed cells: %v", local.Failed)
	}

	one, err := Run(context.Background(), specs, Options{Workers: 1, Command: testWorker})
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(context.Background(), specs, Options{
		Workers: 4, Shards: 4, Command: testWorker,
		ShuffleDispatch: true, ShuffleSeed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, rep := range map[string]Report{"workers=1": one, "workers=4": four} {
		if len(rep.Failed) > 0 {
			t.Fatalf("%s: failed cells %v: %v", name, rep.Failed, rep.WorkerErrs)
		}
		for i := range specs {
			if !rep.Results[i].Equal(local.Results[i]) {
				t.Errorf("%s: faulted result %d differs from local", name, i)
			}
			if !bytes.Equal(rep.Collectors[i], local.Collectors[i]) {
				t.Errorf("%s: faulted collector blob %d differs from local", name, i)
			}
		}
		if got, want := mustCSV(t, g, rep), mustCSV(t, g, local); got != want {
			t.Errorf("%s: faulted merged CSVs differ from local run", name)
		}
	}
}

// TestWorkerCrashRetry kills one worker mid-shard and checks the retry
// rounds re-dispatch exactly the missing scenarios: the merged report is
// still byte-identical to a local run, with the crash surfaced in
// WorkerErrs rather than in the results.
func TestWorkerCrashRetry(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns packet-level worker processes")
	}
	g := testGrid()
	specs, _, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	local, err := RunLocal(context.Background(), specs, 0)
	if err != nil {
		t.Fatal(err)
	}

	cmd, fired := crashOnce(1) // die after banking one result
	rep, err := Run(context.Background(), specs, Options{
		Workers: 2, Shards: 2, Retries: 3, Command: cmd,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !fired.Load() {
		t.Fatal("crash injection never armed a worker")
	}
	if len(rep.Failed) > 0 {
		t.Fatalf("failed cells after retries: %v (%v)", rep.Failed, rep.WorkerErrs)
	}
	if rep.Rounds < 2 {
		t.Fatalf("crash did not force a retry round: rounds=%d errs=%v", rep.Rounds, rep.WorkerErrs)
	}
	if len(rep.WorkerErrs) == 0 {
		t.Fatal("crashed shard left no diagnostic")
	}
	for i := range specs {
		if !rep.Results[i].Equal(local.Results[i]) {
			t.Fatalf("result %d differs from local after crash+retry", i)
		}
	}
	if got, want := mustCSV(t, g, rep), mustCSV(t, g, local); got != want {
		t.Fatalf("merged CSVs differ from local run after crash+retry")
	}
}

// TestRetriesExhausted: when every attempt crashes, the sweep reports
// the missing cells instead of spinning or erroring out.
func TestRetriesExhausted(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	g := testGrid()
	g.Replicas = 2
	specs, _, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), specs, Options{
		Workers: 2, Retries: 1, Command: crashAlways,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2 (first dispatch + one retry)", rep.Rounds)
	}
	if len(rep.Failed) != len(specs) {
		t.Fatalf("failed = %v, want all %d specs", rep.Failed, len(specs))
	}
	for i, r := range rep.Results {
		if r.Err == "" {
			t.Errorf("result %d carries no error", i)
		}
		if r.Name != specs[i].Name {
			t.Errorf("result %d lost its spec name: %q", i, r.Name)
		}
	}
	if len(rep.WorkerErrs) == 0 {
		t.Fatal("no worker diagnostics recorded")
	}
	// Partial failure still renders: failed rows keep name/seed and the
	// error column.
	if !strings.Contains(mustCSV(t, g, rep), "not delivered") {
		t.Fatal("failed cells not surfaced in the results table")
	}
}

// TestWorkerTimeout: a hung worker is killed at Timeout and its shard
// counted missing.
func TestWorkerTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	g := testGrid()
	g.Replicas = 1
	specs, _, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rep, err := Run(context.Background(), specs, Options{
		Workers: 1, Retries: 0, Timeout: 100 * time.Millisecond,
		Command: func(ctx context.Context) *exec.Cmd {
			return exec.CommandContext(ctx, "sleep", "60")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("timeout did not bound the attempt: %v", elapsed)
	}
	if len(rep.Failed) != len(specs) {
		t.Fatalf("failed = %v, want all %d specs", rep.Failed, len(specs))
	}
	if len(rep.WorkerErrs) == 0 {
		t.Fatal("timed-out shard left no diagnostic")
	}
}

func TestPartition(t *testing.T) {
	idx := func(n int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = i * 10
		}
		return out
	}
	for _, tc := range []struct {
		n, shards int
		want      [][]int
	}{
		{0, 4, nil},
		{1, 4, [][]int{{0}}},
		{4, 2, [][]int{{0, 10}, {20, 30}}},
		{5, 2, [][]int{{0, 10}, {20, 30, 40}}},
		{3, 5, [][]int{{0}, {10}, {20}}},
		{4, 0, [][]int{{0, 10, 20, 30}}},
	} {
		got := partition(idx(tc.n), tc.shards)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("partition(%d items, %d shards) = %v, want %v", tc.n, tc.shards, got, tc.want)
		}
	}
	// Every index appears exactly once regardless of shard count.
	in := idx(17)
	var flat []int
	for _, s := range partition(in, 5) {
		flat = append(flat, s...)
	}
	if !reflect.DeepEqual(flat, in) {
		t.Fatalf("partition dropped or reordered indices: %v", flat)
	}
}

func TestGridExpand(t *testing.T) {
	g := Grid{
		Networks: []string{"opera", "expander"},
		Loads:    []float64{0.1, 0.25},
		Replicas: 3,
		Seed:     5,
		Sketch:   true,
	}
	specs, cells, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 12 || len(cells) != 4 {
		t.Fatalf("got %d specs, %d cells; want 12, 4", len(specs), len(cells))
	}
	names := map[string]bool{}
	next := 0
	for _, c := range cells {
		if len(c.Indices) != 3 {
			t.Fatalf("cell %s/%g has %d replicas, want 3", c.Network, c.Load, len(c.Indices))
		}
		for r, i := range c.Indices {
			if i != next {
				t.Fatalf("cell indices not in expansion order: got %d, want %d", i, next)
			}
			next++
			sp := specs[i]
			if sp.Seed != 5+int64(r) {
				t.Errorf("%s replica %d: seed %d, want %d", sp.Name, r, sp.Seed, 5+int64(r))
			}
			if sp.Network != c.Network || !sp.Retention.Sketch {
				t.Errorf("spec %d does not match its cell: %+v", i, sp)
			}
			if names[sp.Name] {
				t.Errorf("duplicate spec name %q", sp.Name)
			}
			names[sp.Name] = true
		}
	}
	// The expander cells use the cost-equivalent sizing.
	for _, sp := range specs {
		if sp.Network == "expander" && sp.Uplinks != experiments.SmallScale().ExpDegree {
			t.Errorf("expander spec %q kept rotor sizing", sp.Name)
		}
	}
}

func TestGridExpandErrors(t *testing.T) {
	for name, g := range map[string]Grid{
		"bad-scale":    {Scale: "medium"},
		"bad-workload": {Workload: "uniform"},
		"bad-network":  {Networks: []string{"torus"}},
		"bad-load":     {Loads: []float64{-0.1}},
		"bad-duration": {DurationMs: -1},
	} {
		if _, _, err := g.Expand(); err == nil {
			t.Errorf("%s: Expand succeeded, want error", name)
		}
	}
}

func TestMeanCI95(t *testing.T) {
	// xs = {1,2,3,4}: mean 2.5, sd sqrt(5/3), df 3 → t 3.182.
	mean, half := meanCI95([]float64{1, 2, 3, 4})
	if mean != 2.5 {
		t.Fatalf("mean = %v, want 2.5", mean)
	}
	want := 3.182 * 0.6454972243679028 // t * sd/sqrt(n)
	if diff := half - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("ci half-width = %v, want %v", half, want)
	}
	if _, h := meanCI95([]float64{7}); h != 0 {
		t.Fatalf("single sample produced an interval: %v", h)
	}
	if m, h := meanCI95(nil); m != 0 || h != 0 {
		t.Fatalf("empty sample produced %v ± %v", m, h)
	}
}

func TestTValue95(t *testing.T) {
	for df, want := range map[int]float64{
		1: 12.706, 3: 3.182, 30: 2.042,
		35: 2.042, // rounds down to df 30
		50: 2.021, 1000: 1.960,
	} {
		if got := tValue95(df); got != want {
			t.Errorf("tValue95(%d) = %v, want %v", df, got, want)
		}
	}
}
