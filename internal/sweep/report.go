package sweep

import (
	"fmt"
	"math"

	"github.com/opera-net/opera/internal/experiments"
	"github.com/opera-net/opera/internal/telemetry"
	"github.com/opera-net/opera/scenario"
)

// Tables renders a finished sweep into the experiments CSV tables:
//
//   - sweep_results: one row per scenario, in spec order — the same
//     summary columns whether the sweep ran local or sharded.
//   - sweep_cells (Replicas > 1): per (network, load) cell, the mean and
//     two-sided 95% Student-t confidence half-width over seed replicas
//     for tail FCT and throughput.
//   - sweep_telemetry (Sketch): per cell, quantiles of the POOLED
//     collector — every replica's sketch merged into one, which is the
//     distribution over all replicas' flows rather than a mean of
//     per-replica quantiles.
//
// Everything is emitted in deterministic order (spec order, cell order,
// replica merges ascending by index), so two Reports with equal contents
// render byte-identical CSVs regardless of how the sweep was sharded.
func Tables(g Grid, specs []scenario.Spec, cells []Cell, rep Report) ([]experiments.Table, error) {
	g = g.withDefaults()
	if len(rep.Results) != len(specs) {
		return nil, fmt.Errorf("sweep: report has %d results for %d specs", len(rep.Results), len(specs))
	}

	netOf := make([]string, len(specs))
	loadOf := make([]float64, len(specs))
	for _, c := range cells {
		for _, i := range c.Indices {
			if i < 0 || i >= len(specs) {
				return nil, fmt.Errorf("sweep: cell %s/%g references spec %d of %d", c.Network, c.Load, i, len(specs))
			}
			netOf[i], loadOf[i] = c.Network, c.Load
		}
	}

	results := experiments.Table{
		Name: "sweep_results",
		Header: []string{"name", "network", "load", "seed", "completed", "flows_done", "flows_total",
			"fct_mean_us", "fct_p50_us", "fct_p99_us", "fct_max_us", "tput_gbps", "tax", "err"},
	}
	for i, r := range rep.Results {
		results.Add(r.Name, netOf[i], loadOf[i], r.Seed, r.Completed, r.FlowsDone, r.FlowsTotal,
			r.All.MeanUs, r.All.P50Us, r.All.P99Us, r.All.MaxUs, r.ThroughputGbps, r.AggregateTax, r.Err)
	}
	tables := []experiments.Table{results}

	if g.Replicas > 1 {
		cellsT := experiments.Table{
			Name: "sweep_cells",
			Header: []string{"network", "load", "replicas",
				"fct_p99_us_mean", "fct_p99_us_ci95", "fct_mean_us_mean", "fct_mean_us_ci95",
				"tput_gbps_mean", "tput_gbps_ci95"},
		}
		for _, c := range cells {
			var p99s, means, tputs []float64
			for _, i := range c.Indices {
				r := rep.Results[i]
				if r.Err != "" {
					continue
				}
				p99s = append(p99s, r.All.P99Us)
				means = append(means, r.All.MeanUs)
				tputs = append(tputs, r.ThroughputGbps)
			}
			p99m, p99h := meanCI95(p99s)
			mm, mh := meanCI95(means)
			tm, th := meanCI95(tputs)
			cellsT.Add(c.Network, c.Load, len(p99s), p99m, p99h, mm, mh, tm, th)
		}
		tables = append(tables, cellsT)
	}

	if g.Sketch {
		telT := experiments.Table{
			Name: "sweep_telemetry",
			Header: []string{"network", "load", "n",
				"fct_mean_us", "fct_p50_us", "fct_p90_us", "fct_p99_us", "fct_p999_us", "fct_max_us", "window_tax"},
		}
		for _, c := range cells {
			pooled, err := pooledCollector(rep.Collectors, c.Indices)
			if err != nil {
				return nil, fmt.Errorf("sweep: cell %s/%g: %w", c.Network, c.Load, err)
			}
			if pooled == nil {
				continue
			}
			s := pooled.Merged()
			tax := 0.0
			if good := pooled.Goodput().WindowTotal(); good > 0 {
				tax = pooled.Uplink().WindowTotal()/good - 1
			}
			telT.Add(c.Network, c.Load, s.Count(), s.Mean(),
				s.Quantile(0.50), s.Quantile(0.90), s.Quantile(0.99), s.Quantile(0.999), s.Max(), tax)
		}
		tables = append(tables, telT)
	}
	return tables, nil
}

// pooledCollector decodes and merges a cell's collector blobs in index
// order; nil when the cell shipped no telemetry.
func pooledCollector(blobs [][]byte, indices []int) (*telemetry.Collector, error) {
	var pooled *telemetry.Collector
	for _, i := range indices {
		if i < 0 || i >= len(blobs) || blobs[i] == nil {
			continue
		}
		var col telemetry.Collector
		if err := col.UnmarshalBinary(blobs[i]); err != nil {
			return nil, fmt.Errorf("decode collector %d: %w", i, err)
		}
		if pooled == nil {
			pooled = &col
		} else if err := pooled.Merge(&col); err != nil {
			return nil, fmt.Errorf("merge collector %d: %w", i, err)
		}
	}
	return pooled, nil
}

// meanCI95 returns the sample mean and the half-width of its two-sided
// 95% Student-t confidence interval; the half-width is 0 with fewer
// than two samples.
func meanCI95(xs []float64) (mean, half float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	return mean, tValue95(n-1) * sd / math.Sqrt(float64(n))
}

// Two-sided 95% Student-t critical values; untabulated degrees of
// freedom round DOWN to the nearest entry (a slightly wider, i.e.
// conservative, interval).
var (
	t95df = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
		16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 40, 60, 120}
	t95v = []float64{12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
		2.021, 2.000, 1.980}
)

func tValue95(df int) float64 {
	if df < 1 {
		return 0
	}
	if df >= 1000 {
		return 1.960
	}
	v := t95v[0]
	for i, d := range t95df {
		if df < d {
			break
		}
		v = t95v[i]
	}
	return v
}
