package sweep

import (
	"fmt"

	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/experiments"
	"github.com/opera-net/opera/scenario"
)

// Grid declares a sweep: the cross product of Networks × Loads, each
// cell replicated Replicas times at consecutive seeds (Seed, Seed+1, …)
// so per-cell confidence intervals can be reported. Expand turns it into
// the flat spec list the coordinator shards; the JSON tags make a Grid
// file (opera-sweep -grid) a one-to-one mirror of this struct.
type Grid struct {
	// Networks are architecture names ("opera", "expander", …); empty
	// defaults to the three-way paper comparison set.
	Networks []string `json:"networks"`
	// Workload picks the flow-size distribution: "datamining" (default)
	// or "websearch".
	Workload string `json:"workload"`
	// Loads are offered-load fractions of aggregate host bandwidth.
	Loads []float64 `json:"loads"`
	// Scale is "small" (64-host test family, default) or "paper" (§5's
	// 648-host family).
	Scale string `json:"scale"`
	// DurationMs is the flow-arrival window in milliseconds of virtual
	// time (default 20); the run drains for up to DrainFactor× longer.
	DurationMs  float64 `json:"duration_ms"`
	DrainFactor int     `json:"drain_factor"`
	// MaxFlowBytes caps sampled flow sizes; 0 defaults to 20 MB at small
	// scale (keeping the heavy tail test-friendly) and unlimited at
	// paper scale.
	MaxFlowBytes int64 `json:"max_flow_bytes"`
	// Seed is the base seed; replica r of every cell runs at Seed+r.
	Seed     int64 `json:"seed"`
	Replicas int   `json:"replicas"`
	// Sketch switches runs to streaming sketch retention, at relative
	// error Alpha (0 = the telemetry default 1%), and adds the pooled
	// sweep_telemetry table.
	Sketch bool    `json:"sketch"`
	Alpha  float64 `json:"alpha"`
	// Events is a fault schedule applied to every cell (the failure
	// figures' sweeps), serialized with the specs to worker shards.
	Events []scenario.EventSpec `json:"events,omitempty"`
}

// Cell is one (network, load) point of the grid and the spec indices of
// its seed replicas, in replica order.
type Cell struct {
	Network string
	Load    float64
	// Indices are the cell's spec indices, ascending — pooled collector
	// merges walk them in this order so merged state is reproducible.
	Indices []int
}

// withDefaults fills unset Grid fields; idempotent.
func (g Grid) withDefaults() Grid {
	if len(g.Networks) == 0 {
		g.Networks = []string{"opera", "expander", "foldedclos"}
	}
	if g.Workload == "" {
		g.Workload = "datamining"
	}
	if len(g.Loads) == 0 {
		g.Loads = []float64{0.01, 0.10, 0.25}
	}
	if g.Scale == "" {
		g.Scale = "small"
	}
	if g.DurationMs == 0 {
		g.DurationMs = 20
	}
	if g.DrainFactor == 0 {
		g.DrainFactor = 15
	}
	if g.MaxFlowBytes == 0 && g.Scale == "small" {
		g.MaxFlowBytes = 20_000_000
	}
	if g.Seed == 0 {
		g.Seed = 1
	}
	if g.Replicas <= 0 {
		g.Replicas = 1
	}
	return g
}

// Expand resolves the grid into the flat spec list a sweep runs plus the
// cell structure the report aggregates over. Expansion order — networks
// outer, loads inner, replicas innermost — is fixed, so equal Grids
// expand to equal spec lists in every process.
func (g Grid) Expand() ([]scenario.Spec, []Cell, error) {
	g = g.withDefaults()
	var scale experiments.Scale
	switch g.Scale {
	case "small":
		scale = experiments.SmallScale()
	case "paper":
		scale = experiments.PaperScale()
	default:
		return nil, nil, fmt.Errorf("sweep: unknown scale %q (want small or paper)", g.Scale)
	}
	switch g.Workload {
	case "datamining", "websearch":
	default:
		return nil, nil, fmt.Errorf("sweep: unknown workload %q (want datamining or websearch)", g.Workload)
	}
	window := eventsim.Time(g.DurationMs * float64(eventsim.Millisecond))
	if window <= 0 {
		return nil, nil, fmt.Errorf("sweep: duration %v ms must be positive", g.DurationMs)
	}
	if g.DrainFactor < 1 {
		return nil, nil, fmt.Errorf("sweep: drain factor %d must be at least 1", g.DrainFactor)
	}

	var specs []scenario.Spec
	var cells []Cell
	for _, net := range g.Networks {
		for _, load := range g.Loads {
			if !(load > 0) {
				return nil, nil, fmt.Errorf("sweep: load %v must be positive", load)
			}
			cell := Cell{Network: net, Load: load}
			for r := 0; r < g.Replicas; r++ {
				seed := g.Seed + int64(r)
				sp := scenario.Spec{
					Name:     fmt.Sprintf("%s-load%g-seed%d", net, load, seed),
					Network:  net,
					Seed:     seed,
					Duration: window * eventsim.Time(g.DrainFactor),
					Racks:    scale.Racks, HostsPerRack: scale.HostsPerRack, Uplinks: scale.Uplinks,
					ClosK: scale.ClosK, ClosF: scale.ClosF,
					Sources: []scenario.SourceSpec{{
						Type: "poisson", Dist: g.Workload, Load: load,
						Window: window, MaxFlowBytes: g.MaxFlowBytes,
					}},
				}
				if net == "expander" {
					// Cost-equivalent expander sizing, mirroring the
					// experiments package's scaleOptions override.
					sp.Racks, sp.HostsPerRack, sp.Uplinks = scale.ExpRacks, scale.ExpHosts, scale.ExpDegree
				}
				if g.Sketch {
					sp.Retention = scenario.RetentionSpec{Sketch: true, Alpha: g.Alpha}
				}
				sp.Events = g.Events
				if _, err := sp.Scenario(); err != nil {
					return nil, nil, err
				}
				cell.Indices = append(cell.Indices, len(specs))
				specs = append(specs, sp)
			}
			cells = append(cells, cell)
		}
	}
	return specs, cells, nil
}
