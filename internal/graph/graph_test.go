package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// ring returns an n-cycle.
func ring(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

// complete returns K_n.
func complete(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

func TestAddEdgeDedup(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(0, 1)
	g.AddEdge(1, 1) // self-loop ignored
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge (0,1) missing")
	}
	if g.HasEdge(1, 1) || g.HasEdge(0, 2) {
		t.Fatal("phantom edge present")
	}
	if g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Fatalf("degrees wrong: %d, %d", g.Degree(0), g.Degree(2))
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	g := New(2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range edge did not panic")
		}
	}()
	g.AddEdge(0, 5)
}

func TestBFSRing(t *testing.T) {
	g := ring(8)
	dist := g.BFS(0)
	want := []int{0, 1, 2, 3, 4, 3, 2, 1}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("dist = %v, want %v", dist, want)
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	dist := g.BFS(0)
	if dist[2] != Unreachable || dist[3] != Unreachable {
		t.Fatalf("dist = %v, want unreachable for 2,3", dist)
	}
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
}

func TestAllPairsComplete(t *testing.T) {
	g := complete(6)
	ps := g.AllPairs()
	if ps.Pairs != 30 {
		t.Fatalf("Pairs = %d, want 30", ps.Pairs)
	}
	if ps.Hist[1] != 30 {
		t.Fatalf("Hist[1] = %d, want 30", ps.Hist[1])
	}
	if ps.Avg() != 1.0 {
		t.Fatalf("Avg = %v, want 1", ps.Avg())
	}
	if ps.Max() != 1 {
		t.Fatalf("Max = %v, want 1", ps.Max())
	}
	if ps.Disconnected != 0 || ps.ConnectivityLoss() != 0 {
		t.Fatal("complete graph should have no disconnections")
	}
}

func TestAllPairsRingCDF(t *testing.T) {
	g := ring(6)
	ps := g.AllPairs()
	// In a 6-cycle: each node has 2 at dist 1, 2 at dist 2, 1 at dist 3.
	if ps.Hist[1] != 12 || ps.Hist[2] != 12 || ps.Hist[3] != 6 {
		t.Fatalf("Hist = %v", ps.Hist)
	}
	cdf := ps.CDF()
	if math.Abs(cdf[1]-12.0/30.0) > 1e-12 || math.Abs(cdf[3]-1.0) > 1e-12 {
		t.Fatalf("CDF = %v", cdf)
	}
	wantAvg := (12*1.0 + 12*2 + 6*3) / 30.0
	if math.Abs(ps.Avg()-wantAvg) > 1e-12 {
		t.Fatalf("Avg = %v, want %v", ps.Avg(), wantAvg)
	}
}

func TestAllPairsAmongSubset(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	// nodes 3,4 isolated ("failed"); restrict to surviving 0,1,2
	ps := g.AllPairsAmong([]int{0, 1, 2})
	if ps.Pairs != 6 || ps.Disconnected != 0 {
		t.Fatalf("stats = %+v", ps)
	}
}

func TestRemoveNodeAndEdge(t *testing.T) {
	g := complete(4)
	g.RemoveNode(0)
	if g.Degree(0) != 0 {
		t.Fatal("removed node still has edges")
	}
	for v := 1; v < 4; v++ {
		if g.HasEdge(v, 0) {
			t.Fatal("neighbor still links to removed node")
		}
	}
	if !g.Connected() == false {
		// 0 is isolated: graph is disconnected overall
		t.Log("graph disconnected as expected")
	}
	ps := g.AllPairsAmong([]int{1, 2, 3})
	if ps.Disconnected != 0 {
		t.Fatal("survivors should remain connected")
	}
	g.RemoveEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Fatal("edge still present after removal")
	}
	g.RemoveEdge(1, 2) // idempotent
}

func TestClone(t *testing.T) {
	g := ring(5)
	c := g.Clone()
	c.RemoveEdge(0, 1)
	if !g.HasEdge(0, 1) {
		t.Fatal("mutation of clone affected original")
	}
	if c.HasEdge(0, 1) {
		t.Fatal("clone edge not removed")
	}
}

func TestNextHopsRing(t *testing.T) {
	g := ring(6)
	nh := g.NextHops(0)
	// dst 1: only neighbor 1. dst 3 (antipode): both 1 and 5 tie.
	if len(nh[1]) != 1 || nh[1][0] != 1 {
		t.Fatalf("nh[1] = %v", nh[1])
	}
	if len(nh[3]) != 2 || nh[3][0] != 1 || nh[3][1] != 5 {
		t.Fatalf("nh[3] = %v, want [1 5]", nh[3])
	}
	if nh[0] != nil {
		t.Fatal("nh[src] should be nil")
	}
}

func TestNextHopsUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	nh := g.NextHops(0)
	if nh[2] != nil {
		t.Fatalf("nh to unreachable node = %v, want nil", nh[2])
	}
}

// Property: next hops always make strict progress — following any listed
// next hop decreases BFS distance by exactly 1. This is the loop-freedom
// invariant the per-slice routing tables rely on.
func TestNextHopsProgressProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(24)
		g := New(n)
		// random connected-ish graph: ring + random chords
		for i := 0; i < n; i++ {
			g.AddEdge(i, (i+1)%n)
		}
		for i := 0; i < n; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		src := rng.Intn(n)
		dist := g.BFS(src)
		nh := g.NextHops(src)
		for dst := 0; dst < n; dst++ {
			if dst == src {
				continue
			}
			if len(nh[dst]) == 0 {
				return dist[dst] == Unreachable
			}
			for _, hop := range nh[dst] {
				hd := g.BFS(int(hop))[dst]
				if hd != dist[dst]-1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Reference check: BFS distances match Floyd–Warshall on random graphs.
func TestBFSAgainstFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(15)
		g := New(n)
		for i := 0; i < 2*n; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		const inf = 1 << 29
		fw := make([][]int, n)
		for i := range fw {
			fw[i] = make([]int, n)
			for j := range fw[i] {
				if i != j {
					fw[i][j] = inf
				}
			}
		}
		for v := 0; v < n; v++ {
			for _, nb := range g.Neighbors(v) {
				fw[v][nb] = 1
			}
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if fw[i][k]+fw[k][j] < fw[i][j] {
						fw[i][j] = fw[i][k] + fw[k][j]
					}
				}
			}
		}
		for src := 0; src < n; src++ {
			dist := g.BFS(src)
			for dst := 0; dst < n; dst++ {
				want := fw[src][dst]
				if want == inf {
					want = Unreachable
				}
				if dist[dst] != want {
					t.Fatalf("n=%d src=%d dst=%d: BFS=%d FW=%d", n, src, dst, dist[dst], want)
				}
			}
		}
	}
}

func TestSpectralGapCompleteGraph(t *testing.T) {
	// K_n: adjacency eigenvalues are n-1 (once) and -1 (n-1 times).
	// Gap = (n-1) - 1 = n-2.
	rng := rand.New(rand.NewSource(1))
	g := complete(10)
	gap := g.SpectralGap(400, rng)
	if math.Abs(gap-8) > 0.05 {
		t.Fatalf("K10 spectral gap = %v, want 8", gap)
	}
}

func TestSpectralGapRing(t *testing.T) {
	// Odd cycle C_21 (non-bipartite): eigenvalues 2cos(2πk/21); the largest
	// nontrivial magnitude is |2cos(20π/21)| = 2cos(π/21).
	rng := rand.New(rand.NewSource(2))
	g := ring(21)
	gap := g.SpectralGap(2000, rng)
	want := 2 - 2*math.Cos(math.Pi/21)
	if math.Abs(gap-want) > 0.02 {
		t.Fatalf("C21 gap = %v, want %v", gap, want)
	}
}

func TestSpectralGapEvenRingBipartite(t *testing.T) {
	// Even cycles are bipartite: λn = -2 ties with λ1 = 2 in magnitude, so
	// the gap is ~0 regardless of the second signed eigenvalue.
	rng := rand.New(rand.NewSource(5))
	g := ring(20)
	gap := g.SpectralGap(1500, rng)
	if math.Abs(gap) > 0.02 {
		t.Fatalf("C20 gap = %v, want ~0", gap)
	}
}

func TestSpectralGapBipartite(t *testing.T) {
	// Complete bipartite K_{5,5} is 5-regular with λn = -5, so the
	// magnitude-based gap must be ~0 (bipartite graphs are poor expanders
	// in this metric).
	rng := rand.New(rand.NewSource(3))
	g := New(10)
	for i := 0; i < 5; i++ {
		for j := 5; j < 10; j++ {
			g.AddEdge(i, j)
		}
	}
	gap := g.SpectralGap(600, rng)
	if gap > 0.1 {
		t.Fatalf("K5,5 gap = %v, want ~0", gap)
	}
}

func TestSpectralGapTinyAndEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if g := New(1); g.SpectralGap(10, rng) != 0 {
		t.Fatal("single node gap should be 0")
	}
	g := New(4) // no edges
	if gap := g.SpectralGap(50, rng); math.Abs(gap) > 1e-9 {
		t.Fatalf("edgeless gap = %v, want 0", gap)
	}
}

func TestRamanujanGap(t *testing.T) {
	if got := RamanujanGap(6); math.Abs(got-(6-2*math.Sqrt(5))) > 1e-12 {
		t.Fatalf("RamanujanGap(6) = %v", got)
	}
	if RamanujanGap(0.5) != 0 {
		t.Fatal("degenerate degree should return 0")
	}
}

func BenchmarkAllPairs108(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := New(108)
	for i := 0; i < 108; i++ {
		g.AddEdge(i, (i+1)%108)
	}
	for i := 0; i < 5*108; i++ {
		g.AddEdge(rng.Intn(108), rng.Intn(108))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.AllPairs()
	}
}
