// Package graph implements the graph algorithms behind Opera's analysis:
// breadth-first shortest paths, all-pairs path-length distributions,
// connectivity accounting under failures, equal-cost next-hop enumeration,
// and spectral-gap estimation for expander quality (Appendix D of the
// paper).
//
// Graphs are simple undirected adjacency structures over integer node IDs
// (racks, in Opera's case). They are deliberately small and dense in use —
// hundreds to a few thousand nodes — so adjacency lists plus O(V·E) BFS
// sweeps are exact and fast; no approximation is needed anywhere.
package graph

import (
	"fmt"
	"sort"
)

// Unreachable is the distance reported for disconnected node pairs.
const Unreachable = -1

// Graph is an undirected graph over nodes 0..N-1. Parallel edges are
// collapsed; self-loops are ignored (an Opera matching that maps a rack to
// itself provides no connectivity and is modelled as an unused port).
type Graph struct {
	n   int
	adj [][]int32
	set []map[int32]struct{} // lazily built edge membership for AddEdge dedup
}

// New returns an empty graph with n nodes.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Graph{
		n:   n,
		adj: make([][]int32, n),
		set: make([]map[int32]struct{}, n),
	}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// Degree returns the number of distinct neighbors of node v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the adjacency list of v. The caller must not modify it.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[v] }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// AddEdge inserts the undirected edge (a, b). Self-loops and duplicate edges
// are silently ignored so callers can union matchings without bookkeeping.
func (g *Graph) AddEdge(a, b int) {
	if a == b {
		return
	}
	if a < 0 || a >= g.n || b < 0 || b >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", a, b, g.n))
	}
	if g.hasEdge(a, b) {
		return
	}
	g.ensureSet(b)
	g.adj[a] = append(g.adj[a], int32(b))
	g.adj[b] = append(g.adj[b], int32(a))
	g.set[a][int32(b)] = struct{}{}
	g.set[b][int32(a)] = struct{}{}
}

// HasEdge reports whether the undirected edge (a, b) is present.
func (g *Graph) HasEdge(a, b int) bool {
	if a == b || a < 0 || a >= g.n || b < 0 || b >= g.n {
		return false
	}
	return g.hasEdge(a, b)
}

func (g *Graph) hasEdge(a, b int) bool {
	g.ensureSet(a)
	_, ok := g.set[a][int32(b)]
	return ok
}

// ensureSet lazily (re)builds the membership map for node v from its
// adjacency list.
func (g *Graph) ensureSet(v int) {
	if g.set[v] == nil {
		g.set[v] = make(map[int32]struct{}, 8)
		for _, x := range g.adj[v] {
			g.set[v][x] = struct{}{}
		}
	}
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := New(g.n)
	for v, ns := range g.adj {
		out.adj[v] = append([]int32(nil), ns...)
	}
	return out
}

// RemoveNode disconnects v from all neighbors (the node ID remains valid but
// isolated). It models a failed rack or switch.
func (g *Graph) RemoveNode(v int) {
	for _, nb := range g.adj[v] {
		g.removeDirected(int(nb), v)
	}
	g.adj[v] = g.adj[v][:0]
	g.set[v] = nil
}

// RemoveEdge deletes the undirected edge (a, b) if present.
func (g *Graph) RemoveEdge(a, b int) {
	if !g.HasEdge(a, b) {
		return
	}
	g.removeDirected(a, b)
	g.removeDirected(b, a)
}

func (g *Graph) removeDirected(from, to int) {
	ns := g.adj[from]
	for i, x := range ns {
		if int(x) == to {
			ns[i] = ns[len(ns)-1]
			g.adj[from] = ns[:len(ns)-1]
			break
		}
	}
	if g.set[from] != nil {
		delete(g.set[from], int32(to))
	}
}

// BFS computes hop distances from src to every node. Unreachable nodes get
// distance Unreachable. The returned slice has length N.
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	queue := make([]int32, 0, g.n)
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		dv := dist[v]
		for _, nb := range g.adj[v] {
			if dist[nb] == Unreachable {
				dist[nb] = dv + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}

// PathStats summarizes an all-pairs path-length computation.
type PathStats struct {
	// Hist[h] counts ordered node pairs at distance h (Hist[0] is unused).
	Hist []int
	// Disconnected counts ordered pairs with no path.
	Disconnected int
	// Pairs is the number of ordered pairs considered (N*(N-1) by default).
	Pairs int
}

// Avg returns the mean path length over connected pairs, or 0 if none.
func (ps PathStats) Avg() float64 {
	var sum, n float64
	for h, c := range ps.Hist {
		sum += float64(h) * float64(c)
		n += float64(c)
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// Max returns the largest finite distance (the diameter over connected
// pairs), or 0 if no pair is connected.
func (ps PathStats) Max() int {
	for h := len(ps.Hist) - 1; h >= 1; h-- {
		if ps.Hist[h] > 0 {
			return h
		}
	}
	return 0
}

// CDF returns the cumulative fraction of connected, ordered pairs within
// each hop count h = 1..Max. Disconnected pairs are excluded, matching how
// Figure 4 of the paper plots path-length CDFs.
func (ps PathStats) CDF() []float64 {
	max := ps.Max()
	out := make([]float64, max+1)
	var total float64
	for _, c := range ps.Hist {
		total += float64(c)
	}
	if total == 0 {
		return out
	}
	cum := 0.0
	for h := 1; h <= max; h++ {
		cum += float64(ps.Hist[h])
		out[h] = cum / total
	}
	return out
}

// ConnectivityLoss returns the fraction of ordered pairs that are
// disconnected, the metric of Figure 11.
func (ps PathStats) ConnectivityLoss() float64 {
	if ps.Pairs == 0 {
		return 0
	}
	return float64(ps.Disconnected) / float64(ps.Pairs)
}

// AllPairs runs BFS from every node and aggregates the distance histogram
// over ordered pairs (u, v), u != v.
func (g *Graph) AllPairs() PathStats {
	return g.AllPairsAmong(nil)
}

// AllPairsAmong restricts the all-pairs statistics to the given node subset
// (both endpoints must be in the subset). A nil subset means all nodes. This
// supports the paper's failure analysis, where connectivity loss is measured
// among non-failed ToRs only.
func (g *Graph) AllPairsAmong(subset []int) PathStats {
	nodes := subset
	if nodes == nil {
		nodes = make([]int, g.n)
		for i := range nodes {
			nodes[i] = i
		}
	}
	inSubset := make([]bool, g.n)
	for _, v := range nodes {
		inSubset[v] = true
	}
	ps := PathStats{Hist: make([]int, 8)}
	for _, src := range nodes {
		dist := g.BFS(src)
		for _, dst := range nodes {
			if dst == src {
				continue
			}
			ps.Pairs++
			d := dist[dst]
			if d == Unreachable {
				ps.Disconnected++
				continue
			}
			for len(ps.Hist) <= d {
				ps.Hist = append(ps.Hist, 0)
			}
			ps.Hist[d]++
		}
	}
	return ps
}

// Connected reports whether all nodes with at least one edge plus all nodes
// in 0..N-1 form a single connected component. Isolated nodes make the graph
// disconnected unless N <= 1.
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	dist := g.BFS(0)
	for _, d := range dist {
		if d == Unreachable {
			return false
		}
	}
	return true
}

// NextHops returns, for a BFS from src, the set of equal-cost first-hop
// neighbors toward every destination: result[dst] lists every neighbor nb of
// src with dist(nb, dst) == dist(src, dst) - 1. result[src] is nil.
// Destinations that are unreachable get nil.
//
// This is the routing-table construction for Opera's low-latency expander
// paths: retaining all equal-cost next hops lets the simulator spray packets
// NDP-style across the path diversity of each topology slice.
func (g *Graph) NextHops(src int) [][]int32 {
	distFromSrc := g.BFS(src)
	result := make([][]int32, g.n)
	// dist(nb, dst) for each neighbor nb is needed; run BFS per neighbor.
	nbDist := make(map[int32][]int, len(g.adj[src]))
	for _, nb := range g.adj[src] {
		nbDist[nb] = g.BFS(int(nb))
	}
	for dst := 0; dst < g.n; dst++ {
		if dst == src || distFromSrc[dst] == Unreachable {
			continue
		}
		for _, nb := range g.adj[src] {
			if int(nb) == dst {
				result[dst] = append(result[dst], nb)
				continue
			}
			if d := nbDist[nb][dst]; d != Unreachable && d == distFromSrc[dst]-1 {
				result[dst] = append(result[dst], nb)
			}
		}
		sort.Slice(result[dst], func(i, j int) bool { return result[dst][i] < result[dst][j] })
	}
	return result
}
