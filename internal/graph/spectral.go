package graph

import (
	"math"
	"math/rand"
)

// SpectralGap estimates the spectral gap d - λ of the graph, where d is the
// (average) degree and λ = max(|λ₂|, |λₙ|) is the largest nontrivial
// adjacency eigenvalue magnitude. For a d-regular graph this is the standard
// expander metric from Alon [6]: a Ramanujan-quality expander achieves
// d - 2·sqrt(d-1). Appendix D of the paper plots exactly this quantity for
// Opera's topology slices against static expanders.
//
// The estimate uses shifted power iteration with deflation of the dominant
// eigenvector, which is exact in the limit and converges geometrically; iters
// controls the iteration count (a few hundred suffices for the graph sizes
// in this repository). rng seeds the start vectors so results are
// deterministic per seed.
func (g *Graph) SpectralGap(iters int, rng *rand.Rand) float64 {
	if g.n < 2 {
		return 0
	}
	d := g.avgDegree()
	lambda2 := g.secondEigenvalue(iters, rng)
	return d - lambda2
}

func (g *Graph) avgDegree() float64 {
	var sum float64
	for v := 0; v < g.n; v++ {
		sum += float64(len(g.adj[v]))
	}
	return sum / float64(g.n)
}

// secondEigenvalue returns max(|λ₂|, |λₙ|): the magnitude of the largest
// eigenvalue of the adjacency matrix restricted to the space orthogonal to
// the dominant (Perron) eigenvector.
//
// Plain power iteration on A fails when |λ₁| = |λₙ| (e.g. bipartite graphs,
// where λₙ = -d ties with λ₁ = d), so both ends of the spectrum are found
// with shifted iterations that make the target eigenvalue strictly dominant:
// B = A + s·I isolates the largest signed eigenvalue, C = s·I - A the
// smallest, with s chosen above the spectral radius.
func (g *Graph) secondEigenvalue(iters int, rng *rand.Rand) float64 {
	if iters <= 0 {
		iters = 300
	}
	s := g.maxDegree() + 1 // spectral radius ≤ max degree < s
	// Dominant (Perron) eigenvector v1 of A, via B = A + s·I (all
	// eigenvalues of B are positive, so iteration converges even on
	// bipartite graphs). v1 ≈ uniform for regular graphs; it is computed
	// explicitly to tolerate the slight irregularity of Opera slices, where
	// matchings may contain self-loops.
	v1 := g.powerIterate(1, s, nil, iters, rng)
	// λ₂ (largest signed, excluding Perron): iterate B deflating v1.
	x2 := g.powerIterate(1, s, v1, iters, rng)
	lam2 := g.rayleigh(x2)
	// λₙ (most negative): iterate C = s·I - A; its dominant eigenvector is
	// λₙ's. Deflating v1 is harmless and guards near-regular graphs.
	xn := g.powerIterate(-1, s, v1, iters, rng)
	lamN := g.rayleigh(xn)
	return math.Max(math.Abs(lam2), math.Abs(lamN))
}

func (g *Graph) maxDegree() float64 {
	max := 0
	for v := 0; v < g.n; v++ {
		if len(g.adj[v]) > max {
			max = len(g.adj[v])
		}
	}
	return float64(max)
}

// powerIterate runs power iteration on the matrix scale·A + shift·I. If
// deflate is non-nil, every iterate is projected orthogonal to it. Returns
// the final unit vector.
func (g *Graph) powerIterate(scale, shift float64, deflate []float64, iters int, rng *rand.Rand) []float64 {
	n := g.n
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	if deflate != nil {
		projectOut(x, deflate)
	}
	normalize(x)
	y := make([]float64, n)
	for it := 0; it < iters; it++ {
		g.matVecShifted(x, y, scale, shift)
		if deflate != nil {
			projectOut(y, deflate)
		}
		if norm(y) < 1e-30 {
			// Degenerate (e.g. edgeless graph): restart from random.
			for i := range y {
				y[i] = rng.Float64()*2 - 1
			}
			if deflate != nil {
				projectOut(y, deflate)
			}
		}
		normalize(y)
		x, y = y, x
	}
	return x
}

// matVec computes y = A·x using adjacency lists.
func (g *Graph) matVec(x, y []float64) { g.matVecShifted(x, y, 1, 0) }

// matVecShifted computes y = scale·(A·x) + shift·x.
func (g *Graph) matVecShifted(x, y []float64, scale, shift float64) {
	for v := 0; v < g.n; v++ {
		var sum float64
		for _, nb := range g.adj[v] {
			sum += x[nb]
		}
		y[v] = scale*sum + shift*x[v]
	}
}

// rayleigh returns xᵀAx / xᵀx.
func (g *Graph) rayleigh(x []float64) float64 {
	y := make([]float64, g.n)
	g.matVec(x, y)
	var num, den float64
	for i := range x {
		num += x[i] * y[i]
		den += x[i] * x[i]
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func projectOut(x, dir []float64) {
	var dot, dd float64
	for i := range x {
		dot += x[i] * dir[i]
		dd += dir[i] * dir[i]
	}
	if dd == 0 {
		return
	}
	c := dot / dd
	for i := range x {
		x[i] -= c * dir[i]
	}
}

func norm(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

func normalize(x []float64) {
	n := norm(x)
	if n == 0 {
		return
	}
	for i := range x {
		x[i] /= n
	}
}

// RamanujanGap returns the best possible spectral gap d - 2·sqrt(d-1) of a
// d-regular Ramanujan expander, the reference line for Appendix D.
func RamanujanGap(d float64) float64 {
	if d < 1 {
		return 0
	}
	return d - 2*math.Sqrt(d-1)
}
