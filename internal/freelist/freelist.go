// Package freelist provides the typed object free list backing the
// simulator's hot-path pools: the event engine's Event pool and NDP's
// sendFlow/recvFlow pools.
//
// The simulator's engines are single-goroutine by design, so Pool is a
// plain LIFO slice rather than a sync.Pool: no locking, and — unlike
// sync.Pool, which the garbage collector clears — the pool survives GC
// cycles, so steady-state reuse never silently degrades back into
// allocation. Callers own the reset discipline: Pool neither zeroes
// objects on Put nor initializes them on Get, because each pool's reset
// cost differs (the event engine zeroes whole structs, the NDP flow pools
// keep bitmap capacity and clear only the words in use).
//
// Pool is NOT safe for concurrent use. Each pool must stay confined to
// the goroutine of the engine it serves, exactly like the engine itself.
package freelist

// Pool is a LIFO free list of *T. The zero value is an empty pool, ready
// for use.
type Pool[T any] struct {
	items []*T
}

// Get removes and returns the most recently Put object, or nil when the
// pool is empty — the caller allocates on nil, which confines allocation
// to startup and new high-water marks of concurrently live objects.
func (p *Pool[T]) Get() *T {
	n := len(p.items)
	if n == 0 {
		return nil
	}
	x := p.items[n-1]
	p.items[n-1] = nil
	p.items = p.items[:n-1]
	return x
}

// Put returns an object to the pool. The caller must have dropped every
// other reference to it and cleared any pointer fields that should not
// keep their referents alive.
func (p *Pool[T]) Put(x *T) {
	p.items = append(p.items, x)
}

// Len reports how many objects are pooled (free, not in use).
func (p *Pool[T]) Len() int { return len(p.items) }
