package freelist

import "testing"

type obj struct{ n int }

func TestPoolLIFO(t *testing.T) {
	var p Pool[obj]
	if p.Get() != nil {
		t.Fatal("Get on empty pool should return nil")
	}
	a, b := &obj{1}, &obj{2}
	p.Put(a)
	p.Put(b)
	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2", p.Len())
	}
	if got := p.Get(); got != b {
		t.Fatalf("Get = %v, want last Put (%v)", got, b)
	}
	if got := p.Get(); got != a {
		t.Fatalf("Get = %v, want first Put (%v)", got, a)
	}
	if p.Get() != nil || p.Len() != 0 {
		t.Fatal("pool not empty after draining")
	}
}

// The pool itself must not allocate in steady state: Put/Get cycles reuse
// the backing slice once it has grown.
func TestPoolSteadyStateAllocs(t *testing.T) {
	var p Pool[obj]
	objs := make([]*obj, 64)
	for i := range objs {
		objs[i] = &obj{i}
		p.Put(objs[i])
	}
	for range objs {
		p.Get()
	}
	avg := testing.AllocsPerRun(200, func() {
		for _, o := range objs {
			p.Put(o)
		}
		for range objs {
			p.Get()
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state Put/Get allocates %.1f/op, want 0", avg)
	}
}
