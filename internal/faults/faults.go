// Package faults implements the failure analysis of §5.5 and Appendix E:
// random link, ToR, and circuit-switch failures are injected into Opera and
// the baseline topologies, and the impact is measured as connectivity loss
// (fraction of disconnected rack pairs, Figure 11) and path stretch
// (average/worst path length among survivors, Figures 18–20).
//
// Opera's routing reacts to failures by recomputing paths on the surviving
// graph (§3.6.2); this package models the post-convergence state.
package faults

import (
	"math/rand"

	"github.com/opera-net/opera/internal/graph"
	"github.com/opera-net/opera/internal/topology"
)

// OperaResult aggregates failure impact on an Opera network across one
// full cycle of topology slices.
type OperaResult struct {
	// WorstSliceLoss is the largest fraction of disconnected ordered
	// surviving-ToR pairs in any single slice.
	WorstSliceLoss float64
	// UnionLoss counts pairs disconnected in at least one slice, as a
	// fraction — the paper's "across all slices" series.
	UnionLoss float64
	// AvgPath and MaxPath summarize finite path lengths over all slices.
	AvgPath float64
	MaxPath int
}

// OperaFailures injects the given failure fractions (of ToR-to-rotor
// links, of ToRs, and of rotor switches) and measures connectivity and
// path length across every slice of the cycle. Loss is measured among
// non-failed ToRs, as in Figure 11.
func OperaFailures(o *topology.Opera, fLinks, fToRs, fSwitches float64, seed int64) OperaResult {
	rng := rand.New(rand.NewSource(seed))
	n := o.NumRacks()
	u := o.Uplinks()

	linkDown := sampleMatrix(n, u, fLinks, rng) // [rack][switch]
	torDown := sampleSet(n, fToRs, rng)
	swDown := sampleSet(u, fSwitches, rng)

	survivors := make([]int, 0, n)
	for r := 0; r < n; r++ {
		if !torDown[r] {
			survivors = append(survivors, r)
		}
	}
	if len(survivors) < 2 {
		return OperaResult{}
	}

	// Pair index helper over all racks (union bookkeeping).
	disconnectedOnce := make(map[int64]struct{})
	var worst float64
	var pathSum, pathCnt float64
	maxPath := 0

	for s := 0; s < o.SlicesPerCycle(); s++ {
		g := graph.New(n)
		for sw := 0; sw < u; sw++ {
			if swDown[sw] || o.IsTransitioning(sw, s) {
				continue
			}
			m := o.SwitchMatching(sw, s)
			for a := 0; a < n; a++ {
				b := m.Peer(a)
				if b <= a {
					continue
				}
				if torDown[a] || torDown[b] || linkDown[a][sw] || linkDown[b][sw] {
					continue
				}
				g.AddEdge(a, b)
			}
		}
		ps := g.AllPairsAmong(survivors)
		loss := ps.ConnectivityLoss()
		if loss > worst {
			worst = loss
		}
		if loss > 0 {
			// Record which pairs were disconnected this slice.
			for _, a := range survivors {
				dist := g.BFS(a)
				for _, b := range survivors {
					if a != b && dist[b] == graph.Unreachable {
						disconnectedOnce[int64(a)*int64(n)+int64(b)] = struct{}{}
					}
				}
			}
		}
		for h, c := range ps.Hist {
			pathSum += float64(h) * float64(c)
			pathCnt += float64(c)
		}
		if m := ps.Max(); m > maxPath {
			maxPath = m
		}
	}

	pairs := float64(len(survivors)) * float64(len(survivors)-1)
	res := OperaResult{
		WorstSliceLoss: worst,
		UnionLoss:      float64(len(disconnectedOnce)) / pairs,
		MaxPath:        maxPath,
	}
	if pathCnt > 0 {
		res.AvgPath = pathSum / pathCnt
	}
	return res
}

// StaticResult aggregates failure impact on a static topology.
type StaticResult struct {
	Loss    float64 // fraction of disconnected ordered surviving-ToR pairs
	AvgPath float64
	MaxPath int
}

// ExpanderFailures injects link and ToR failures into a static expander
// (Figure 20).
func ExpanderFailures(e *topology.Expander, fLinks, fToRs float64, seed int64) StaticResult {
	rng := rand.New(rand.NewSource(seed))
	g := e.G.Clone()
	// Sample failed edges.
	type edge struct{ a, b int }
	var edges []edge
	for v := 0; v < g.N(); v++ {
		for _, nb := range g.Neighbors(v) {
			if int(nb) > v {
				edges = append(edges, edge{v, int(nb)})
			}
		}
	}
	for _, ed := range edges {
		if rng.Float64() < fLinks {
			g.RemoveEdge(ed.a, ed.b)
		}
	}
	torDown := sampleSet(g.N(), fToRs, rng)
	survivors := make([]int, 0, g.N())
	for v := 0; v < g.N(); v++ {
		if torDown[v] {
			g.RemoveNode(v)
		} else {
			survivors = append(survivors, v)
		}
	}
	return staticStats(g, survivors)
}

// ClosFailures injects link and switch failures into a folded Clos
// (Figure 19). Links are inter-switch links; switch failures hit the
// aggregation and core tiers (failed ToRs would take their hosts with
// them, which Figure 19 separates out via the link series).
func ClosFailures(c *topology.FoldedClos, fLinks, fSwitches float64, seed int64) StaticResult {
	rng := rand.New(rand.NewSource(seed))
	g := c.RackGraph()
	type edge struct{ a, b int }
	var edges []edge
	for v := 0; v < g.N(); v++ {
		for _, nb := range g.Neighbors(v) {
			if int(nb) > v {
				edges = append(edges, edge{v, int(nb)})
			}
		}
	}
	for _, ed := range edges {
		if rng.Float64() < fLinks {
			g.RemoveEdge(ed.a, ed.b)
		}
	}
	// Upper-tier switches: indices >= NumToRs.
	for v := c.NumToRs; v < g.N(); v++ {
		if rng.Float64() < fSwitches {
			g.RemoveNode(v)
		}
	}
	survivors := make([]int, c.NumToRs)
	for i := range survivors {
		survivors[i] = i
	}
	return staticStats(g, survivors)
}

func staticStats(g *graph.Graph, survivors []int) StaticResult {
	ps := g.AllPairsAmong(survivors)
	res := StaticResult{
		Loss:    ps.ConnectivityLoss(),
		MaxPath: ps.Max(),
	}
	res.AvgPath = ps.Avg()
	return res
}

func sampleSet(n int, frac float64, rng *rand.Rand) []bool {
	out := make([]bool, n)
	k := int(frac*float64(n) + 0.5)
	for _, idx := range rng.Perm(n)[:min(k, n)] {
		out[idx] = true
	}
	return out
}

func sampleMatrix(n, m int, frac float64, rng *rand.Rand) [][]bool {
	out := make([][]bool, n)
	for i := range out {
		out[i] = make([]bool, m)
	}
	k := int(frac*float64(n*m) + 0.5)
	for _, idx := range rng.Perm(n * m)[:min(k, n*m)] {
		out[idx/m][idx%m] = true
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
