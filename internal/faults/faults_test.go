package faults

import (
	"testing"

	"github.com/opera-net/opera/internal/topology"
)

func smallOpera(t *testing.T) *topology.Opera {
	t.Helper()
	return topology.MustNewOpera(topology.Config{
		NumRacks: 24, HostsPerRack: 4, NumSwitches: 4, Seed: 1,
	})
}

func TestOperaNoFailures(t *testing.T) {
	o := smallOpera(t)
	res := OperaFailures(o, 0, 0, 0, 1)
	if res.WorstSliceLoss != 0 || res.UnionLoss != 0 {
		t.Fatalf("loss without failures: %+v", res)
	}
	if res.AvgPath < 1 || res.MaxPath < 2 {
		t.Fatalf("implausible path stats: %+v", res)
	}
}

func TestOperaSmallFailuresNoLoss(t *testing.T) {
	// §5.5: Opera withstands a few percent of link failures with no
	// connectivity loss.
	o := smallOpera(t)
	res := OperaFailures(o, 0.02, 0, 0, 2)
	if res.WorstSliceLoss > 0.01 {
		t.Fatalf("2%% links: worst-slice loss %v", res.WorstSliceLoss)
	}
}

func TestOperaFailureMonotonicity(t *testing.T) {
	o := smallOpera(t)
	none := OperaFailures(o, 0, 0, 0, 3)
	low := OperaFailures(o, 0.05, 0, 0, 3)
	high := OperaFailures(o, 0.4, 0, 0, 3)
	if high.UnionLoss < low.UnionLoss {
		t.Fatalf("loss not monotone: 5%%=%v 40%%=%v", low.UnionLoss, high.UnionLoss)
	}
	if high.UnionLoss < high.WorstSliceLoss {
		t.Fatalf("union (%v) < worst slice (%v)", high.UnionLoss, high.WorstSliceLoss)
	}
	// In the low-loss regime failures stretch paths (Figure 18). At high
	// loss the finite-path average is survivorship-biased, so it is not
	// compared.
	if low.AvgPath < none.AvgPath {
		t.Fatalf("path stretch decreased: %v → %v", none.AvgPath, low.AvgPath)
	}
}

func TestOperaSwitchFailures(t *testing.T) {
	// 6 rotor switches, as in the paper: tolerating 1 failed switch leaves
	// u-1-1 = 4 active matchings in the worst slice — still an expander.
	// (Figure 11 shows the 108-rack network tolerates 2 of 6.)
	o := topology.MustNewOpera(topology.Config{
		NumRacks: 36, HostsPerRack: 6, NumSwitches: 6, Seed: 1,
	})
	res := OperaFailures(o, 0, 0, 1.0/6.0, 4)
	if res.UnionLoss > 0.05 {
		t.Fatalf("1/6 switches: loss %v", res.UnionLoss)
	}
	// Losing 4 of 6 leaves 1-2 matchings per slice: mass disconnection.
	res = OperaFailures(o, 0, 0, 4.0/6.0, 4)
	if res.UnionLoss < 0.2 {
		t.Fatalf("4/6 switches: loss only %v", res.UnionLoss)
	}
}

func TestOperaToRFailures(t *testing.T) {
	o := smallOpera(t)
	res := OperaFailures(o, 0, 0.1, 0, 5)
	// Loss measured among survivors only; small ToR failure fractions
	// should leave survivors connected.
	if res.WorstSliceLoss > 0.05 {
		t.Fatalf("10%% ToRs: worst-slice loss %v among survivors", res.WorstSliceLoss)
	}
}

func TestOperaAllToRsDown(t *testing.T) {
	o := smallOpera(t)
	res := OperaFailures(o, 0, 1.0, 0, 6)
	if res.WorstSliceLoss != 0 || res.UnionLoss != 0 || res.AvgPath != 0 {
		t.Fatalf("degenerate failure should zero out: %+v", res)
	}
}

func TestExpanderFailures(t *testing.T) {
	e := topology.MustNewExpander(50, 4, 7, 1)
	clean := ExpanderFailures(e, 0, 0, 1)
	if clean.Loss != 0 {
		t.Fatalf("clean expander loss %v", clean.Loss)
	}
	light := ExpanderFailures(e, 0.05, 0, 2)
	if light.Loss > 0.01 {
		t.Fatalf("5%% links: loss %v (u=7 is robust)", light.Loss)
	}
	// At 75% link loss the residual ~1.75-regular graph falls apart.
	heavy := ExpanderFailures(e, 0.75, 0, 3)
	if heavy.Loss <= light.Loss {
		t.Fatalf("loss not increasing: %v vs %v", light.Loss, heavy.Loss)
	}
	// Moderate failures stretch paths without disconnecting.
	stretched := ExpanderFailures(e, 0.3, 0, 5)
	if stretched.AvgPath < clean.AvgPath {
		t.Fatalf("no path stretch under failures: %v vs %v", stretched.AvgPath, clean.AvgPath)
	}
}

func TestExpanderToRFailures(t *testing.T) {
	e := topology.MustNewExpander(50, 4, 7, 1)
	res := ExpanderFailures(e, 0, 0.2, 4)
	if res.Loss > 0.05 {
		t.Fatalf("20%% ToR failures: survivor loss %v", res.Loss)
	}
}

func TestClosFailures(t *testing.T) {
	c := topology.MustNewFoldedClos(12, 3)
	clean := ClosFailures(c, 0, 0, 1)
	if clean.Loss != 0 {
		t.Fatalf("clean Clos loss %v", clean.Loss)
	}
	if clean.MaxPath != 4 {
		t.Fatalf("clean Clos max ToR path %d, want 4", clean.MaxPath)
	}
	// A 3:1 Clos has only u=3 uplinks per ToR: moderate link failures can
	// strand ToRs — its fault tolerance is worse than the u=7 expander
	// (Appendix E).
	heavy := ClosFailures(c, 0.4, 0, 2)
	if heavy.Loss == 0 {
		t.Fatalf("40%% link failures should disconnect some Clos ToRs")
	}
	sw := ClosFailures(c, 0, 0.3, 3)
	if sw.Loss < 0 || sw.AvgPath < 2 {
		t.Fatalf("implausible switch-failure stats: %+v", sw)
	}
}

func TestClosVsExpanderVsOperaRelativeRobustness(t *testing.T) {
	// Appendix E ordering at matched failure fraction: the u=7 expander
	// tolerates link failures better than the 3:1 Clos.
	e := topology.MustNewExpander(130, 5, 7, 1)
	c := topology.MustNewFoldedClos(12, 3)
	frac := 0.25
	eLoss := ExpanderFailures(e, frac, 0, 5).Loss
	cLoss := ClosFailures(c, frac, 0, 5).Loss
	if eLoss > cLoss {
		t.Fatalf("expander (%v) should beat Clos (%v) at %v link failures", eLoss, cLoss, frac)
	}
}
