//go:build race

package opera_test

// raceEnabled reports that this test binary was built with -race; the
// flat-memory soak skips itself there — its heap-growth bound is a
// numeric property the race allocator distorts, and nothing in it is
// concurrent.
const raceEnabled = true
