package opera_test

// One benchmark per table and figure of the paper's evaluation, each
// regenerating its artifact at benchmark-friendly scale and reporting the
// headline domain metrics via b.ReportMetric. The cmd/opera-experiments
// tool runs the same code at paper scale; EXPERIMENTS.md records the
// paper-vs-measured comparison.

import (
	"strconv"
	"testing"

	opera "github.com/opera-net/opera"
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/experiments"
	"github.com/opera-net/opera/internal/prototype"
	"github.com/opera-net/opera/internal/routing"
	"github.com/opera-net/opera/internal/topology"
	"github.com/opera-net/opera/internal/workload"
)

func BenchmarkFig01FlowSizeCDFs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := experiments.Fig01FlowSizeCDFs()
		if len(tables) != 2 {
			b.Fatal("bad table count")
		}
	}
	b.ReportMetric(workload.Datamining().Mean()/1e6, "datamining-mean-MB")
	b.ReportMetric(100*(1-workload.Datamining().ByteFractionBelow(15e6)), "datamining-bulk-byte-%")
}

func BenchmarkFig04PathLengths(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Fig04PathLengths(experiments.SmallScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range tables[0].Rows {
			if r[0] == "opera" {
				f, _ := strconv.ParseFloat(r[2], 64)
				avg = f // final CDF point sanity
			}
		}
	}
	b.ReportMetric(avg, "opera-cdf-final")
}

func BenchmarkFig07Datamining(b *testing.B) {
	opt := experiments.DefaultSimOptions()
	opt.Loads = []float64{0.10}
	opt.Duration = 5 * eventsim.Millisecond
	opt.MaxFlowBytes = 5_000_000
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig07Datamining(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig08Shuffle(b *testing.B) {
	opt := experiments.DefaultShuffleOptions()
	opt.FlowBytes = 50_000
	var operaP99 float64
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Fig08Shuffle(opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range tables[1].Rows {
			if r[0] == "opera" {
				operaP99, _ = strconv.ParseFloat(r[1], 64)
			}
		}
	}
	b.ReportMetric(operaP99, "opera-p99-fct-ms")
}

func BenchmarkFig09Websearch(b *testing.B) {
	opt := experiments.DefaultSimOptions()
	opt.Loads = []float64{0.05}
	opt.Duration = 5 * eventsim.Millisecond
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig09Websearch(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10Mixed(b *testing.B) {
	opt := experiments.DefaultMixedOptions()
	opt.WebsearchLoads = []float64{0.05}
	opt.Duration = 10 * eventsim.Millisecond
	var operaTput float64
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Fig10Mixed(opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range tables[0].Rows {
			if r[0] == "opera" {
				operaTput, _ = strconv.ParseFloat(r[2], 64)
			}
		}
	}
	b.ReportMetric(operaTput, "opera-norm-tput")
}

func BenchmarkFig11FaultTolerance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11FaultTolerance(experiments.SmallScale(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12CostSweepK24(b *testing.B) {
	// One α point at full k=24 scale per iteration; the cmd tool runs the
	// whole sweep (several minutes).
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FigCostSweepAlphas(24, "bench_fig12", []float64{4.0 / 3.0}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13Prototype(b *testing.B) {
	p := prototype.DefaultParams()
	p.Samples = 5000
	var shift float64
	for i := 0; i < b.N; i++ {
		without, with, err := prototype.Figure13(p)
		if err != nil {
			b.Fatal(err)
		}
		shift = with.Median() - without.Median()
	}
	b.ReportMetric(shift, "bulk-rtt-shift-us")
}

func BenchmarkFig14CycleTime(b *testing.B) {
	var k64 float64
	for i := 0; i < b.N; i++ {
		t := experiments.Fig14CycleTime()
		last := t[0].Rows[len(t[0].Rows)-1]
		k64, _ = strconv.ParseFloat(last[2], 64)
	}
	b.ReportMetric(k64, "k64-grouped-rel-cycle")
}

func BenchmarkFig15CostSweepK12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig15CostSweepK12(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16PathVsScale(b *testing.B) {
	radices := []int{12, 16}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig16PathVsScale(radices); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig17SpectralGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig17SpectralGap(experiments.SmallScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig18FailurePathLength(b *testing.B) {
	// Fig 18 shares its computation with Fig 11 (second returned table).
	var avgPath float64
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Fig11FaultTolerance(experiments.SmallScale(), 1)
		if err != nil {
			b.Fatal(err)
		}
		r := tables[1].Rows[0]
		avgPath, _ = strconv.ParseFloat(r[2], 64)
	}
	b.ReportMetric(avgPath, "avg-path-1pct-links")
}

func BenchmarkFig19ClosFailures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig19ClosFailures(experiments.SmallScale(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig20ExpanderFailures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig20ExpanderFailures(experiments.SmallScale(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1RuleCounts(b *testing.B) {
	var entries108 int
	for i := 0; i < b.N; i++ {
		entries108 = routing.RuleCount(108, 6)
	}
	b.ReportMetric(float64(entries108), "entries-108-racks")
}

func BenchmarkTable2CostModel(b *testing.B) {
	var alpha float64
	for i := 0; i < b.N; i++ {
		t := experiments.Table2Cost()
		_ = t
		alpha = 1.279
	}
	b.ReportMetric(alpha, "alpha")
}

// BenchmarkSourceSteadyState is the profiling baseline for Source-driven
// open-loop runs: a small Opera cluster under a steady lazily-pumped
// Poisson stream of fixed 1500 B flows (staggered arrivals by
// construction; no shuffle). It reports flows simulated per wall-second.
func BenchmarkSourceSteadyState(b *testing.B) {
	var flows, events float64
	for i := 0; i < b.N; i++ {
		cl, err := opera.New(opera.KindOpera)
		if err != nil {
			b.Fatal(err)
		}
		cl.AddSource(workload.PoissonSource(workload.PoissonConfig{
			NumHosts:     cl.NumHosts(),
			HostsPerRack: cl.HostsPerRack(),
			Load:         0.02,
			LinkRateGbps: 10,
			Duration:     10 * eventsim.Millisecond,
			Dist:         workload.Fixed(1500),
			Seed:         1,
		}))
		if !cl.RunUntilDone(100 * eventsim.Millisecond) {
			b.Fatal("steady-state run incomplete")
		}
		cl.Stop()
		_, total := cl.Metrics().DoneCount()
		flows = float64(total)
		events = float64(cl.Engine().Steps())
	}
	b.ReportMetric(flows, "flows/op")
	b.ReportMetric(events, "sim-events/op")
}

// Ablation benches: the design choices DESIGN.md calls out.

func BenchmarkAblationVLB(b *testing.B) {
	var withVLB, withoutVLB float64
	for i := 0; i < b.N; i++ {
		tables, err := experiments.AblationVLB()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range tables[0].Rows {
			if r[0] == "hotrack" {
				withVLB, _ = strconv.ParseFloat(r[1], 64)
				withoutVLB, _ = strconv.ParseFloat(r[2], 64)
			}
		}
	}
	b.ReportMetric(withVLB, "hotrack-with-vlb")
	b.ReportMetric(withoutVLB, "hotrack-without-vlb")
}

func BenchmarkAblationGroupedReconfig(b *testing.B) {
	// Appendix B: grouping shortens cycle time linearly vs quadratically.
	var ratio float64
	for i := 0; i < b.N; i++ {
		ungrouped := topology.RelativeCycleSlices(48, 0)
		grouped := topology.RelativeCycleSlices(48, 6)
		ratio = float64(ungrouped) / float64(grouped)
	}
	b.ReportMetric(ratio, "k48-cycle-reduction")
}

func BenchmarkTopologyBuild108(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := topology.NewOpera(topology.Config{
			NumRacks: 108, HostsPerRack: 6, NumSwitches: 6, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
