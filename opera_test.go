package opera_test

import (
	"testing"

	opera "github.com/opera-net/opera"
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/sim"
	"github.com/opera-net/opera/internal/workload"
)

func TestClusterKinds(t *testing.T) {
	kinds := []opera.Kind{
		opera.KindOpera, opera.KindExpander, opera.KindFoldedClos,
		opera.KindRotorNet, opera.KindRotorNetHybrid,
	}
	for _, k := range kinds {
		cl, err := opera.NewCluster(opera.ClusterConfig{
			Kind:         k,
			Racks:        16,
			HostsPerRack: 4,
			Uplinks:      4,
			ClosK:        8,
			ClosF:        3,
			Seed:         1,
		})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if cl.NumHosts() == 0 {
			t.Fatalf("%v: no hosts", k)
		}
		if cl.Kind() != k {
			t.Fatalf("kind mismatch")
		}
		// One small flow end to end on every architecture.
		f := cl.AddFlow(workload.FlowSpec{Src: 0, Dst: cl.NumHosts() - 1, Bytes: 3000})
		if !cl.RunUntilDone(500 * eventsim.Millisecond) {
			t.Fatalf("%v: flow incomplete (%d/%d bytes)", k, f.BytesRcvd, f.Size)
		}
	}
}

func TestClusterClassification(t *testing.T) {
	cl, err := opera.NewCluster(opera.ClusterConfig{
		Kind: opera.KindOpera, Racks: 16, HostsPerRack: 4, Uplinks: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	small := cl.AddFlow(workload.FlowSpec{Src: 0, Dst: 20, Bytes: 1000})
	big := cl.AddFlow(workload.FlowSpec{Src: 1, Dst: 21, Bytes: 20_000_000})
	tagged := cl.AddBulkFlow(workload.FlowSpec{Src: 2, Dst: 22, Bytes: 1000})
	if small.Class != sim.ClassLowLatency {
		t.Fatalf("small flow class = %v", small.Class)
	}
	if big.Class != sim.ClassBulk {
		t.Fatalf("big flow class = %v", big.Class)
	}
	if tagged.Class != sim.ClassBulk {
		t.Fatalf("tagged flow class = %v", tagged.Class)
	}
}

func TestClusterCustomThreshold(t *testing.T) {
	cl, err := opera.NewCluster(opera.ClusterConfig{
		Kind: opera.KindOpera, Racks: 16, HostsPerRack: 4, Uplinks: 4,
		BulkThreshold: 1000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := cl.AddFlow(workload.FlowSpec{Src: 0, Dst: 30, Bytes: 2000})
	if f.Class != sim.ClassBulk {
		t.Fatal("custom threshold ignored")
	}
}

func TestClusterRejectsBadConfig(t *testing.T) {
	if _, err := opera.NewCluster(opera.ClusterConfig{
		Kind: opera.KindOpera, Racks: 15, HostsPerRack: 4, Uplinks: 4,
	}); err == nil {
		t.Fatal("odd rack count accepted")
	}
	if _, err := opera.NewCluster(opera.ClusterConfig{
		Kind: opera.KindFoldedClos, ClosK: 7, ClosF: 3,
	}); err == nil {
		t.Fatal("odd Clos radix accepted")
	}
	if _, err := opera.NewCluster(opera.ClusterConfig{Kind: opera.Kind(99)}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestClusterDelayedArrival(t *testing.T) {
	cl, err := opera.NewCluster(opera.ClusterConfig{
		Kind: opera.KindOpera, Racks: 16, HostsPerRack: 4, Uplinks: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := cl.AddFlow(workload.FlowSpec{
		Src: 0, Dst: 40, Bytes: 1500, Arrival: 5 * eventsim.Millisecond,
	})
	cl.Run(4 * eventsim.Millisecond)
	if f.Done || f.BytesRcvd > 0 {
		t.Fatal("flow ran before its arrival time")
	}
	if !cl.RunUntilDone(100 * eventsim.Millisecond) {
		t.Fatal("flow incomplete")
	}
	if f.Start < 5*eventsim.Millisecond {
		t.Fatalf("start = %v, want >= arrival", f.Start)
	}
}

func TestKindString(t *testing.T) {
	if opera.KindOpera.String() != "opera" || opera.KindRotorNetHybrid.String() != "rotornet-hybrid" {
		t.Fatal("kind names wrong")
	}
}
