package opera_test

import (
	"fmt"
	"log"

	opera "github.com/opera-net/opera"
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/workload"
)

// Building a cluster and inspecting its shape is fully deterministic.
func ExampleNewCluster() {
	cl, err := opera.NewCluster(opera.ClusterConfig{
		Kind:         opera.KindOpera,
		Racks:        16,
		HostsPerRack: 4,
		Uplinks:      4,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cl.Kind(), cl.NumHosts(), "hosts,", cl.HostsPerRack(), "per rack")
	// Output: opera 64 hosts, 4 per rack
}

// Flows below the 15 MB threshold are latency-sensitive; larger ones are
// bulk; application tagging overrides size.
func ExampleCluster_AddFlow() {
	cl, err := opera.NewCluster(opera.ClusterConfig{
		Kind: opera.KindOpera, Racks: 16, HostsPerRack: 4, Uplinks: 4, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	rpc := cl.AddFlow(workload.FlowSpec{Src: 0, Dst: 42, Bytes: 6_000})
	big := cl.AddFlow(workload.FlowSpec{Src: 1, Dst: 43, Bytes: 30_000_000})
	tagged := cl.AddBulkFlow(workload.FlowSpec{Src: 2, Dst: 44, Bytes: 6_000})
	fmt.Println(rpc.Class, big.Class, tagged.Class)

	if !cl.RunUntilDone(2000 * eventsim.Millisecond) {
		log.Fatal("incomplete")
	}
	done, total := cl.Metrics().DoneCount()
	fmt.Println(done, "of", total, "flows complete")
	// Output:
	// lowlat bulk bulk
	// 3 of 3 flows complete
}
