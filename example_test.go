package opera_test

import (
	"context"
	"fmt"
	"log"

	opera "github.com/opera-net/opera"
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/workload"
	"github.com/opera-net/opera/scenario"
)

// Clusters are assembled from functional options over per-kind defaults;
// building one and inspecting its shape is fully deterministic.
func ExampleNew() {
	cl, err := opera.New(opera.KindOpera,
		opera.WithRacks(16),
		opera.WithHostsPerRack(4),
		opera.WithUplinks(4),
		opera.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cl.Kind(), cl.NumHosts(), "hosts,", cl.HostsPerRack(), "per rack")
	// Output: opera 64 hosts, 4 per rack
}

// The legacy config-struct constructor remains as a shim over the same
// registry-driven builder.
func ExampleNewCluster() {
	cl, err := opera.NewCluster(opera.ClusterConfig{
		Kind:         opera.KindOpera,
		Racks:        16,
		HostsPerRack: 4,
		Uplinks:      4,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cl.Kind(), cl.NumHosts(), "hosts,", cl.HostsPerRack(), "per rack")
	// Output: opera 64 hosts, 4 per rack
}

// Flows below the 15 MB threshold are latency-sensitive; larger ones are
// bulk; application tagging overrides size.
func ExampleCluster_AddFlow() {
	cl, err := opera.New(opera.KindOpera, opera.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	rpc := cl.AddFlow(workload.FlowSpec{Src: 0, Dst: 42, Bytes: 6_000})
	big := cl.AddFlow(workload.FlowSpec{Src: 1, Dst: 43, Bytes: 30_000_000})
	tagged := cl.AddBulkFlow(workload.FlowSpec{Src: 2, Dst: 44, Bytes: 6_000})
	fmt.Println(rpc.Class, big.Class, tagged.Class)

	if !cl.RunUntilDone(2000 * eventsim.Millisecond) {
		log.Fatal("incomplete")
	}
	done, total := cl.Metrics().DoneCount()
	fmt.Println(done, "of", total, "flows complete")
	// Output:
	// lowlat bulk bulk
	// 3 of 3 flows complete
}

// Whole parameter sweeps fan out across goroutines through the scenario
// runner; results are deterministic at any parallelism.
func ExampleRunScenarios() {
	scs := []scenario.Scenario{
		{
			Name: "opera", Kind: opera.KindOpera, Seed: 1,
			Workload: scenario.ShuffleN(8, 40_000, 0),
			Duration: 2000 * eventsim.Millisecond,
		},
		{
			Name: "expander", Kind: opera.KindExpander, Seed: 1,
			Workload: scenario.ShuffleN(8, 40_000, eventsim.Millisecond),
			Duration: 2000 * eventsim.Millisecond,
		},
	}
	results, err := scenario.RunScenarios(context.Background(), scs, scenario.Parallelism(2))
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("%s: %d/%d flows\n", r.Name, r.FlowsDone, r.FlowsTotal)
	}
	// Output:
	// opera: 56/56 flows
	// expander: 56/56 flows
}
