package opera_test

import (
	"math/rand"
	"testing"

	opera "github.com/opera-net/opera"
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/workload"
)

// Property: on every architecture, for randomized flow sets (sizes spanning
// both service classes, random endpoints and arrival times), every flow
// completes with exactly its byte count delivered — the end-to-end
// conservation invariant of the whole stack (transports, queues, slices,
// NACK requeues).
func TestClusterConservationProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("packet-level property test")
	}
	kinds := []opera.Kind{opera.KindOpera, opera.KindExpander, opera.KindFoldedClos, opera.KindRotorNetHybrid}
	for trial := 0; trial < 6; trial++ {
		seed := int64(trial*7 + 1)
		rng := rand.New(rand.NewSource(seed))
		kind := kinds[trial%len(kinds)]
		cl, err := opera.NewCluster(opera.ClusterConfig{
			Kind:         kind,
			Racks:        16,
			HostsPerRack: 4,
			Uplinks:      4,
			ClosK:        8,
			ClosF:        3,
			// A low threshold exercises the bulk path with modest flows.
			BulkThreshold: 200_000,
			Seed:          seed,
		})
		if err != nil {
			t.Fatalf("trial %d (%v): %v", trial, kind, err)
		}
		n := cl.NumHosts()
		numFlows := 20 + rng.Intn(40)
		var flows []*simFlowRef
		for i := 0; i < numFlows; i++ {
			src := rng.Intn(n)
			dst := rng.Intn(n - 1)
			if dst >= src {
				dst++
			}
			size := int64(64 + rng.Intn(500_000))
			if rng.Intn(4) == 0 {
				size += 300_000 // push some over the bulk threshold
			}
			f := cl.AddFlow(workload.FlowSpec{
				Src: src, Dst: dst, Bytes: size,
				Arrival: eventsim.Time(rng.Intn(2_000_000)), // within 2 ms
			})
			flows = append(flows, &simFlowRef{size: size, done: &f.Done, rcvd: &f.BytesRcvd})
		}
		if !cl.RunUntilDone(4000 * eventsim.Millisecond) {
			done, total := cl.Metrics().DoneCount()
			t.Fatalf("trial %d (%v): %d/%d flows completed", trial, kind, done, total)
		}
		for i, f := range flows {
			if *f.rcvd != f.size {
				t.Fatalf("trial %d (%v) flow %d: delivered %d of %d bytes",
					trial, kind, i, *f.rcvd, f.size)
			}
		}
	}
}

type simFlowRef struct {
	size int64
	done *bool
	rcvd *int64
}
