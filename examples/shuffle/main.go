// Shuffle compares a MapReduce-style all-to-all shuffle (§5.2, Figure 8)
// across Opera and the two static baselines: Opera's application-tagged
// bulk service carries every flow over direct circuits, avoiding the
// bandwidth tax that throttles the expander and the capacity limit of the
// oversubscribed folded Clos. The three clusters run concurrently through
// the scenario runner.
//
// By default the shuffle runs among 16 hosts with arrivals staggered over
// 1 ms, which finishes in seconds; -full restores the paper's 64-host
// simultaneous-start shuffle (4032 flows — several minutes of wall time).
//
//	go run ./examples/shuffle
//	go run ./examples/shuffle -full
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	opera "github.com/opera-net/opera"
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/scenario"
)

const flowBytes = 100_000 // the Facebook Hadoop median inter-rack flow

func main() {
	full := flag.Bool("full", false, "run the full 64-host simultaneous shuffle (several minutes)")
	flag.Parse()

	participants := 16
	if *full {
		participants = 64
	}
	fmt.Printf("all-to-all shuffle among %d hosts, %d B per flow (Figure 8 scenario)\n\n",
		participants, flowBytes)

	base := []opera.Option{
		opera.WithRacks(16),
		opera.WithHostsPerRack(4),
		opera.WithUplinks(4),
		opera.WithClos(8, 3),
	}
	scs := []scenario.Scenario{
		// Opera: flows application-tagged as bulk, all started simultaneously
		// (RotorLB handles simultaneous starts gracefully, §5.2).
		{
			Name: "opera", Kind: opera.KindOpera, Seed: 1,
			Options:  append(append([]opera.Option{}, base...), opera.WithAppTaggedBulk(true)),
			Workload: scenario.ShuffleN(participants, flowBytes, 0),
			Duration: 5000 * eventsim.Millisecond,
		},
		// Static networks get staggered arrivals to avoid startup effects,
		// and a capped participant count so the workload matches despite
		// the Clos's larger quantized host count.
		{
			Name: "expander", Kind: opera.KindExpander, Seed: 1,
			Options:  base,
			Workload: scenario.ShuffleN(participants, flowBytes, eventsim.Millisecond),
			Duration: 5000 * eventsim.Millisecond,
		},
		{
			Name: "foldedclos", Kind: opera.KindFoldedClos, Seed: 1,
			Options:  base,
			Workload: scenario.ShuffleN(participants, flowBytes, eventsim.Millisecond),
			Duration: 5000 * eventsim.Millisecond,
		},
	}

	results, err := scenario.RunScenarios(context.Background(), scs, scenario.Parallelism(3))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s %14s %14s\n", "network", "p99 FCT (ms)", "bandwidth tax")
	for _, r := range results {
		if r.Err != "" {
			log.Fatalf("%s: %s", r.Name, r.Err)
		}
		if !r.Completed {
			log.Fatalf("%s: only %d/%d flows completed", r.Name, r.FlowsDone, r.FlowsTotal)
		}
		fmt.Printf("%-12s %14.1f %13.0f%%\n", r.Name, r.All.P99Us/1000, 100*r.AggregateTax)
	}
	fmt.Println("\nOpera's direct circuits carry shuffle cheaply while the expander")
	fmt.Println("pays (pathlen-1)× tax and the 3:1 Clos is capacity-bound.")
	if !*full {
		fmt.Println("(16 hosts leave Opera some VLB relaying; -full runs the paper's")
		fmt.Println("64-host shuffle, where direct circuits drive the tax to zero.)")
	}
}
