// Shuffle compares a MapReduce-style all-to-all shuffle (§5.2, Figure 8)
// across Opera and the two static baselines: Opera's application-tagged
// bulk service carries every flow over direct circuits, avoiding the
// bandwidth tax that throttles the expander and the capacity limit of the
// oversubscribed folded Clos.
//
//	go run ./examples/shuffle
package main

import (
	"fmt"
	"log"

	opera "github.com/opera-net/opera"
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/stats"
	"github.com/opera-net/opera/internal/workload"
)

const flowBytes = 100_000 // the Facebook Hadoop median inter-rack flow

func run(kind opera.Kind, appTagged bool, stagger eventsim.Time) (p99ms float64, tax float64) {
	cl, err := opera.NewCluster(opera.ClusterConfig{
		Kind:          kind,
		Racks:         16,
		HostsPerRack:  4,
		Uplinks:       4,
		ClosK:         8,
		ClosF:         3,
		AppTaggedBulk: appTagged,
		Seed:          1,
	})
	if err != nil {
		log.Fatal(err)
	}
	cl.AddFlows(workload.Shuffle(cl.NumHosts(), flowBytes, stagger, 1))
	if !cl.RunUntilDone(5000 * eventsim.Millisecond) {
		done, total := cl.Metrics().DoneCount()
		log.Fatalf("%v: only %d/%d flows completed", kind, done, total)
	}
	var fct stats.Sample
	for _, f := range cl.Metrics().Flows() {
		fct.Add(f.FCT().Seconds() * 1000)
	}
	return fct.P99(), cl.Metrics().AggregateTax()
}

func main() {
	fmt.Printf("all-to-all shuffle, %d B per flow (Figure 8 scenario)\n\n", flowBytes)
	fmt.Printf("%-12s %14s %14s\n", "network", "p99 FCT (ms)", "bandwidth tax")
	// Opera: flows application-tagged as bulk, all started simultaneously
	// (RotorLB handles simultaneous starts gracefully, §5.2).
	p99, tax := run(opera.KindOpera, true, 0)
	fmt.Printf("%-12s %14.1f %13.0f%%\n", "opera", p99, 100*tax)
	// Static networks get staggered arrivals to avoid startup effects.
	p99, tax = run(opera.KindExpander, false, 1*eventsim.Millisecond)
	fmt.Printf("%-12s %14.1f %13.0f%%\n", "expander", p99, 100*tax)
	p99, tax = run(opera.KindFoldedClos, false, 1*eventsim.Millisecond)
	fmt.Printf("%-12s %14.1f %13.0f%%\n", "foldedclos", p99, 100*tax)
	fmt.Println("\nOpera's direct circuits carry shuffle with no bandwidth tax;")
	fmt.Println("the expander pays (pathlen-1)× tax and the 3:1 Clos is capacity-bound.")
}
