// Costsweep reproduces the cost-normalized comparison of §5.6 (Figure 15,
// k = 12): for each port-cost premium α, cost-equivalent Opera, expander
// and folded-Clos networks are derived (Appendix A) and their steady-state
// throughput computed for the hot-rack, skew[0.2,1] and permutation
// workloads via the fluid models.
//
//	go run ./examples/costsweep
package main

import (
	"fmt"
	"log"

	"github.com/opera-net/opera/internal/cost"
	"github.com/opera-net/opera/internal/experiments"
)

func main() {
	fmt.Printf("Cost-equivalent families at k=12 (Appendix A):\n")
	for _, alpha := range []float64{1.0, 4.0 / 3.0, 2.0} {
		eq := cost.Equivalents(12, alpha)
		fmt.Printf("  α=%.2f: %4d hosts | Clos F=%.1f:1 | expander u=%d,d=%d (%d racks) | Opera d=u=%d (%d racks)\n",
			alpha, eq.Hosts, eq.ClosF, eq.ExpanderU, eq.ExpanderD, eq.ExpanderRacks,
			eq.OperaHostsPerRack, eq.OperaRacks)
	}
	fmt.Printf("\nOpera's port premium from Table 2: α ≈ %.2f ($%v vs $%v)\n\n",
		cost.EstimatedAlpha(), cost.OperaPortCost(), cost.StaticPortCost())

	tables, err := experiments.Fig15CostSweepK12()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %-6s %8s %10s %12s %10s\n",
		"workload", "alpha", "opera", "expander", "foldedclos", "opera-a2a")
	for _, r := range tables[0].Rows {
		fmt.Printf("%-12s %-6s %8s %10s %12s %10s\n", r[0], r[1], r[2], r[3], r[4], r[5])
	}
	fmt.Println("\nOpera wins for skewed and permutation traffic while circuit ports")
	fmt.Println("stay cheaper than ≈1.8× a packet port; its all-to-all line shows")
	fmt.Println("the ≈4× advantage over the 3:1 Clos at the estimated α (§5.6).")
}
