// Quickstart: build a small Opera network, send a mix of latency-sensitive
// and bulk flows, and print what the fabric did with them.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	opera "github.com/opera-net/opera"
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/sim"
	"github.com/opera-net/opera/internal/workload"
)

func main() {
	// A 16-rack Opera network: 4 hosts per rack, 4 rotor circuit switches.
	// Every rack pair gets a direct circuit once per cycle; at any instant
	// the active matchings form an expander for low-latency traffic.
	cl, err := opera.New(opera.KindOpera,
		opera.WithRacks(16),
		opera.WithHostsPerRack(4),
		opera.WithUplinks(4),
		opera.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("cluster: %d hosts on %s\n", cl.NumHosts(), cl.Kind())

	// A latency-sensitive RPC: 6 KB from host 0 to a host ten racks away.
	// It is classified below the 15 MB threshold, so it rides NDP over the
	// current topology slice's expander immediately.
	rpc := cl.AddFlow(workload.FlowSpec{Src: 0, Dst: 42, Bytes: 6_000})

	// A bulk transfer: 30 MB between the same racks. It waits at the host
	// and rides bandwidth-tax-free direct circuits as the rotor switches
	// bring them around.
	bulk := cl.AddFlow(workload.FlowSpec{Src: 1, Dst: 43, Bytes: 30_000_000})

	if !cl.RunUntilDone(2000 * eventsim.Millisecond) {
		log.Fatal("flows did not complete")
	}

	fmt.Printf("RPC   (%5d B, %s): FCT = %v\n", rpc.Size, rpc.Class, rpc.FCT())
	fmt.Printf("bulk  (%d B, %s): FCT = %v, retransmits = %d\n",
		bulk.Size, bulk.Class, bulk.FCT(), bulk.Retransmits)

	m := cl.Metrics()
	fmt.Printf("low-latency bandwidth tax: %.0f%% (multi-hop expander paths)\n",
		100*m.BandwidthTax(sim.ClassLowLatency))
	fmt.Printf("bulk bandwidth tax:        %.0f%% (direct circuits)\n",
		100*m.BandwidthTax(sim.ClassBulk))
}
