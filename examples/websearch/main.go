// Websearch reproduces Opera's worst case (§5.3, Figure 9): the Microsoft
// Websearch workload tops out near 30 MB, so with the 15 MB threshold
// essentially every byte is latency-sensitive and rides indirect expander
// paths, paying the bandwidth tax on all of it. Opera tracks the static
// networks' FCTs at low load but admits less total load — the price of
// provisioning most capacity as time-multiplexed direct circuits. The
// whole (network × load) grid runs concurrently through the scenario
// runner.
//
//	go run ./examples/websearch
package main

import (
	"context"
	"fmt"
	"log"

	opera "github.com/opera-net/opera"
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/workload"
	"github.com/opera-net/opera/scenario"
)

func main() {
	fmt.Println("Websearch workload (all-indirect worst case, Figure 9)")

	kinds := []opera.Kind{opera.KindOpera, opera.KindExpander, opera.KindFoldedClos}
	loads := []float64{0.01, 0.05, 0.10}
	duration := 20 * eventsim.Millisecond

	var scs []scenario.Scenario
	for _, kind := range kinds {
		for _, load := range loads {
			scs = append(scs, scenario.Scenario{
				Name: fmt.Sprintf("%s load %.2f", kind, load),
				Kind: kind,
				Seed: 3,
				Options: []opera.Option{
					opera.WithRacks(16),
					opera.WithHostsPerRack(4),
					opera.WithUplinks(4),
					opera.WithClos(8, 3),
					opera.WithSeed(1),
				},
				Sources:  []scenario.Source{scenario.Poisson(workload.Websearch(), load, duration, 0)},
				Duration: duration * 20,
			})
		}
	}
	results, err := scenario.RunScenarios(context.Background(), scs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %12s %12s %10s\n", "scenario", "p50 (µs)", "p99 (µs)", "completed")
	for _, r := range results {
		if r.Err != "" {
			log.Fatalf("%s: %s", r.Name, r.Err)
		}
		fmt.Printf("%-22s %12.1f %12.1f %9.1f%%\n",
			r.Name, r.All.P50Us, r.All.P99Us,
			100*float64(r.FlowsDone)/float64(r.FlowsTotal))
	}
	fmt.Println("\nAt these loads all three networks deliver comparable FCTs (§5.3);")
	fmt.Println("Opera saturates first (≈10% load at paper scale) since every byte")
	fmt.Println("pays the expander bandwidth tax on its under-provisioned packet paths.")
}
