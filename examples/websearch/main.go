// Websearch reproduces Opera's worst case (§5.3, Figure 9): the Microsoft
// Websearch workload tops out near 30 MB, so with the 15 MB threshold
// essentially every byte is latency-sensitive and rides indirect expander
// paths, paying the bandwidth tax on all of it. Opera tracks the static
// networks' FCTs at low load but admits less total load — the price of
// provisioning most capacity as time-multiplexed direct circuits.
//
//	go run ./examples/websearch
package main

import (
	"fmt"
	"log"

	opera "github.com/opera-net/opera"
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/sim"
	"github.com/opera-net/opera/internal/workload"
)

func run(kind opera.Kind, load float64) (p50, p99 float64, completed float64) {
	cl, err := opera.NewCluster(opera.ClusterConfig{
		Kind:         kind,
		Racks:        16,
		HostsPerRack: 4,
		Uplinks:      4,
		ClosK:        8,
		ClosF:        3,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	duration := 20 * eventsim.Millisecond
	cl.AddFlows(workload.Poisson(workload.PoissonConfig{
		NumHosts:     cl.NumHosts(),
		HostsPerRack: cl.HostsPerRack(),
		Load:         load,
		LinkRateGbps: 10,
		Duration:     duration,
		Dist:         workload.Websearch(),
		Seed:         3,
	}))
	cl.RunUntilDone(duration * 20)
	m := cl.Metrics()
	s := m.FCTSample(func(f *sim.Flow) bool { return f.Done })
	done, total := m.DoneCount()
	return s.Median(), s.P99(), float64(done) / float64(total)
}

func main() {
	fmt.Println("Websearch workload (all-indirect worst case, Figure 9)")
	fmt.Printf("\n%-12s %-6s %12s %12s %10s\n", "network", "load", "p50 (µs)", "p99 (µs)", "completed")
	for _, n := range []struct {
		name string
		kind opera.Kind
	}{
		{"opera", opera.KindOpera},
		{"expander", opera.KindExpander},
		{"foldedclos", opera.KindFoldedClos},
	} {
		for _, load := range []float64{0.01, 0.05, 0.10} {
			p50, p99, done := run(n.kind, load)
			fmt.Printf("%-12s %-6.2f %12.1f %12.1f %9.1f%%\n", n.name, load, p50, p99, 100*done)
		}
	}
	fmt.Println("\nAt these loads all three networks deliver comparable FCTs (§5.3);")
	fmt.Println("Opera saturates first (≈10% load at paper scale) since every byte")
	fmt.Println("pays the expander bandwidth tax on its under-provisioned packet paths.")
}
