// Datamining reproduces the headline mixed-traffic scenario (§5.1,
// Figure 7): the Microsoft Datamining workload — a heavy-tailed mix where
// nearly all bytes live in multi-megabyte flows — offered to Opera at
// increasing load. Flows under the 15 MB threshold ride NDP over the
// time-varying expander; the heavy tail waits briefly and rides direct
// circuits tax-free. The load sweep fans out across cores through the
// scenario runner.
//
//	go run ./examples/datamining
package main

import (
	"context"
	"fmt"
	"log"

	opera "github.com/opera-net/opera"
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/workload"
	"github.com/opera-net/opera/scenario"
)

func main() {
	dist := workload.Datamining()
	fmt.Printf("Datamining workload: mean flow %.1f MB, %.0f%% of bytes in flows >= 15 MB\n\n",
		dist.Mean()/1e6, 100*(1-dist.ByteFractionBelow(15e6)))

	loads := []float64{0.01, 0.10, 0.25}
	duration := 50 * eventsim.Millisecond
	var scs []scenario.Scenario
	for _, load := range loads {
		scs = append(scs, scenario.Scenario{
			Name: fmt.Sprintf("load %.2f", load),
			Kind: opera.KindOpera,
			// Workload arrivals use seed 7; the topology seed comes from
			// WithSeed, applied after the runner's default.
			Seed: 7,
			Options: []opera.Option{
				opera.WithRacks(16),
				opera.WithHostsPerRack(4),
				opera.WithUplinks(4),
				opera.WithSeed(1),
			},
			// Cap the extreme tail (up to 1 GB) so the example runs in
			// seconds; the shape of the comparison is unchanged. The source
			// streams arrivals lazily — nothing is materialized up front.
			Sources:  []scenario.Source{scenario.Poisson(dist, load, duration, 30_000_000)},
			Duration: duration * 100,
		})
	}
	results, err := scenario.RunScenarios(context.Background(), scs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %10s %12s %12s %12s %10s\n",
		"load", "flows", "LL p99 (µs)", "bulk p99(ms)", "agg tax", "completed")
	for _, r := range results {
		if r.Err != "" {
			log.Fatalf("%s: %s", r.Name, r.Err)
		}
		fmt.Printf("%-10s %10d %12.1f %12.1f %11.1f%% %9.1f%%\n",
			r.Name, r.FlowsTotal, r.LowLat.P99Us, r.Bulk.P99Us/1000,
			100*r.AggregateTax, 100*float64(r.FlowsDone)/float64(r.FlowsTotal))
	}
	fmt.Println("\nEvery flow completes and low-latency FCTs stay microsecond-scale as")
	fmt.Println("load grows. Note on the tax column: at this 64-host scale few bulk")
	fmt.Println("flows overlap, so RotorLB finds idle circuits and indirects (VLB)")
	fmt.Println("aggressively — faster completions at a 2-hop tax. At the paper's")
	fmt.Println("648-host scale concurrent flows consume the spare capacity, VLB")
	fmt.Println("recedes, and the aggregate tax lands at ≈8.4% (§5.1).")

	// The same sweep cell under streaming retention: completed flows feed
	// quantile sketches (±1% pinned error) instead of being retained, so a
	// soak of any length runs in flat memory — and the Result grows deeper
	// tail quantiles.
	sk := scs[len(scs)-1]
	sk.Name = "sketch"
	sk.Options = append(sk.Options, opera.WithRetention(opera.RetainSketch(opera.SketchOptions{})))
	r := scenario.Run(sk)
	if r.Err != "" {
		log.Fatalf("sketch run: %s", r.Err)
	}
	fmt.Printf("\nStreaming retention at load %.2f (flat memory, ±%.0f%% quantiles):\n",
		loads[len(loads)-1], 100*r.Telemetry.ErrorBound)
	fmt.Printf("  all flows: n=%d p50=%.1fµs p99=%.1fµs p99.9=%.1fµs max=%.1fµs\n",
		r.Telemetry.All.N, r.Telemetry.All.P50Us, r.Telemetry.All.P99Us,
		r.Telemetry.All.P999Us, r.Telemetry.All.MaxUs)
}
