// Datamining reproduces the headline mixed-traffic scenario (§5.1,
// Figure 7): the Microsoft Datamining workload — a heavy-tailed mix where
// nearly all bytes live in multi-megabyte flows — offered to Opera at
// increasing load. Flows under the 15 MB threshold ride NDP over the
// time-varying expander; the heavy tail waits briefly and rides direct
// circuits tax-free.
//
//	go run ./examples/datamining
package main

import (
	"fmt"
	"log"

	opera "github.com/opera-net/opera"
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/sim"
	"github.com/opera-net/opera/internal/workload"
)

func main() {
	dist := workload.Datamining()
	fmt.Printf("Datamining workload: mean flow %.1f MB, %.0f%% of bytes in flows >= 15 MB\n\n",
		dist.Mean()/1e6, 100*(1-dist.ByteFractionBelow(15e6)))
	fmt.Printf("%-6s %10s %12s %12s %12s %10s\n",
		"load", "flows", "LL p99 (µs)", "bulk p99(ms)", "agg tax", "completed")

	for _, load := range []float64{0.01, 0.10, 0.25} {
		cl, err := opera.NewCluster(opera.ClusterConfig{
			Kind:         opera.KindOpera,
			Racks:        16,
			HostsPerRack: 4,
			Uplinks:      4,
			Seed:         1,
		})
		if err != nil {
			log.Fatal(err)
		}
		duration := 50 * eventsim.Millisecond
		flows := workload.Poisson(workload.PoissonConfig{
			NumHosts:     cl.NumHosts(),
			HostsPerRack: cl.HostsPerRack(),
			Load:         load,
			LinkRateGbps: 10,
			Duration:     duration,
			Dist:         dist,
			Seed:         7,
		})
		// Cap the extreme tail (up to 1 GB) so the example runs in
		// seconds; the shape of the comparison is unchanged.
		for i := range flows {
			if flows[i].Bytes > 30_000_000 {
				flows[i].Bytes = 30_000_000
			}
		}
		cl.AddFlows(flows)
		cl.RunUntilDone(duration * 100)

		m := cl.Metrics()
		ll := m.FCTSample(func(f *sim.Flow) bool { return f.Class == sim.ClassLowLatency && f.Done })
		bulk := m.FCTSample(func(f *sim.Flow) bool { return f.Class == sim.ClassBulk && f.Done })
		done, total := m.DoneCount()
		bulkP99 := 0.0
		if bulk.N() > 0 {
			bulkP99 = bulk.P99() / 1000
		}
		fmt.Printf("%-6.2f %10d %12.1f %12.1f %11.1f%% %9.1f%%\n",
			load, total, ll.P99(), bulkP99,
			100*m.AggregateTax(), 100*float64(done)/float64(total))
	}
	fmt.Println("\nEvery flow completes and low-latency FCTs stay microsecond-scale as")
	fmt.Println("load grows. Note on the tax column: at this 64-host scale few bulk")
	fmt.Println("flows overlap, so RotorLB finds idle circuits and indirects (VLB)")
	fmt.Println("aggressively — faster completions at a 2-hop tax. At the paper's")
	fmt.Println("648-host scale concurrent flows consume the spare capacity, VLB")
	fmt.Println("recedes, and the aggregate tax lands at ≈8.4% (§5.1).")
}
