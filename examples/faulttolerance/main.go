// Faulttolerance reproduces the §5.5 failure analysis (Figure 11) on the
// paper's 108-rack network: random link, ToR and circuit-switch failures
// are injected, and connectivity loss plus path stretch are measured
// across every topology slice. A packet-level epilogue then injects a
// live link failure into a running Opera cluster (built through the
// options API) and shows flows completing around it.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"

	opera "github.com/opera-net/opera"
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/faults"
	"github.com/opera-net/opera/internal/topology"
	"github.com/opera-net/opera/scenario"
)

func main() {
	o, err := topology.NewOpera(topology.Config{
		NumRacks:     108,
		HostsPerRack: 6,
		NumSwitches:  6,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Opera 108-rack fault tolerance (Figure 11 / Figure 18)")
	fmt.Printf("\n%-10s %-9s %16s %16s %10s %10s\n",
		"failure", "fraction", "worst-slice loss", "across-all loss", "avg path", "max path")

	show := func(kind string, fracs []float64, inject func(frac float64) faults.OperaResult) {
		for _, frac := range fracs {
			r := inject(frac)
			fmt.Printf("%-10s %-9.3f %16.4f %16.4f %10.2f %10d\n",
				kind, frac, r.WorstSliceLoss, r.UnionLoss, r.AvgPath, r.MaxPath)
		}
	}
	show("links", []float64{0.01, 0.04, 0.10, 0.20}, func(f float64) faults.OperaResult {
		return faults.OperaFailures(o, f, 0, 0, 42)
	})
	show("tors", []float64{0.01, 0.07, 0.20}, func(f float64) faults.OperaResult {
		return faults.OperaFailures(o, 0, f, 0, 42)
	})
	show("switches", []float64{1.0 / 6, 2.0 / 6, 3.0 / 6}, func(f float64) faults.OperaResult {
		return faults.OperaFailures(o, 0, 0, f, 42)
	})

	fmt.Println("\nThe paper reports no connectivity loss up to ≈4% of links,")
	fmt.Println("≈7% of ToRs, or 2 of 6 circuit switches — failures cost path")
	fmt.Println("stretch first, disconnection only much later (§5.5, App. E).")

	// Packet level: fail a live link mid-run — declared as a Scenario
	// fault schedule — and watch traffic route around it via the
	// hello-protocol epidemic (§3.6.2), with a probe tracking completion.
	res := scenario.Run(scenario.Scenario{
		Name: "opera-link-failure",
		Kind: opera.KindOpera,
		Seed: 1,
		Options: []opera.Option{
			opera.WithRacks(16),
			opera.WithHostsPerRack(4),
			opera.WithUplinks(4),
		},
		Workload: scenario.ShuffleN(16, 30_000, eventsim.Millisecond),
		Events: []scenario.Event{
			scenario.At(500*eventsim.Microsecond, scenario.FailLink(3, 2)),
		},
		Probes: []scenario.Probe{
			scenario.Sample("done_flows", eventsim.Millisecond,
				func(cl *opera.Cluster, _ eventsim.Time) float64 {
					done, _ := cl.Metrics().DoneCount()
					return float64(done)
				}),
		},
		Duration: 4000 * eventsim.Millisecond,
	})
	if res.Err != "" {
		log.Fatal(res.Err)
	}
	fmt.Printf("\npacket-level check: link (rack 3, switch 2) failed at 500 µs;")
	fmt.Printf(" %d/%d flows still completed (complete=%v, bulk NACKs=%d)\n",
		res.FlowsDone, res.FlowsTotal, res.Completed, res.BulkNACKs)
	fmt.Printf("done flows per ms: %v\n", res.Probes[0].Values)
}
