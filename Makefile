# The lint target is the contract: CI's fast lane runs exactly `make lint`,
# so a clean `make lint` locally means the static-analysis gate passes.
GO ?= go

.PHONY: lint test short race fmt check bench

## lint: go vet + the opera-lint determinism/hot-path analyzers over ./...
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/opera-lint ./...

## test: tier-1 — build everything, run the full test suite
test:
	$(GO) build ./...
	$(GO) test ./...

## short: the fast-lane test pass (skips the slow packet-level suites)
short:
	$(GO) test -short ./...

## race: the race-detector passes CI runs
race:
	$(GO) test -race ./scenario/ ./internal/workload/ ./internal/sweep/ ./internal/telemetry/ ./internal/obs/
	$(GO) test -race -short -run 'Source' .
	$(GO) test -race -run 'Fault|Flap|Lossy' ./internal/sim/ ./scenario/

## bench: engine/transport hot-path benchmarks -> BENCH_engine.json
## (PortEnqueue, EngineSchedule dense/sparse wheel-vs-heap, SourceSteadyState)
bench:
	$(GO) run ./cmd/opera-bench -out BENCH_engine.json

## fmt: list files needing gofmt (exits nonzero if any)
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

## check: everything a PR should pass locally before push
check: fmt lint short
