package scenario

import (
	"context"
	"runtime"
	"sync"

	opera "github.com/opera-net/opera"
)

// RunOption adjusts how a batch of Scenarios is executed.
type RunOption func(*runConfig)

type runConfig struct {
	parallelism int
}

// Parallelism caps how many clusters simulate concurrently. The default
// is GOMAXPROCS; Parallelism(1) runs sequentially. Results are identical
// at every setting.
func Parallelism(n int) RunOption {
	return func(rc *runConfig) {
		if n > 0 {
			rc.parallelism = n
		}
	}
}

// RunScenarios executes every Scenario, fanning clusters out across
// goroutines, and returns Results in Scenario order. Each cluster is
// independent — own event engine, own seeds — so the returned Results are
// byte-identical to a sequential run regardless of Parallelism.
//
// On context cancellation, scenarios not yet started are skipped (their
// Result carries Err and nothing else) and ctx.Err() is returned;
// already-running scenarios finish.
func RunScenarios(ctx context.Context, scs []Scenario, opts ...RunOption) ([]Result, error) {
	return runAll(ctx, scs, nil, opts)
}

// CollectScenarios is RunScenarios for callers that also need the
// finished clusters (raw flows, delivery time series): clusters[i] belongs
// to scs[i] and is nil when that scenario failed or was skipped. It holds
// every cluster in memory until all scenarios finish — for large sweeps
// prefer ForEachCluster, which releases each cluster as soon as it has
// been inspected.
func CollectScenarios(ctx context.Context, scs []Scenario, opts ...RunOption) ([]*opera.Cluster, []Result, error) {
	clusters := make([]*opera.Cluster, len(scs))
	results, err := ForEachCluster(ctx, scs, func(i int, cl *opera.Cluster, _ Result) {
		clusters[i] = cl
	}, opts...)
	return clusters, results, err
}

// ForEachCluster runs every Scenario and invokes fn with each finished
// cluster as soon as that scenario completes, then drops the cluster so
// it can be garbage-collected while the rest of the sweep runs. fn is
// called from worker goroutines — concurrently up to the configured
// Parallelism — so it must synchronize any shared state it touches
// (writing to distinct per-index slots is safe). fn is not called for
// scenarios that failed to build or were skipped on cancellation; their
// Results carry Err. Results are returned in Scenario order.
func ForEachCluster(ctx context.Context, scs []Scenario, fn func(i int, cl *opera.Cluster, res Result), opts ...RunOption) ([]Result, error) {
	return runAll(ctx, scs, fn, opts)
}

func runAll(ctx context.Context, scs []Scenario, fn func(int, *opera.Cluster, Result), opts []RunOption) ([]Result, error) {
	rc := runConfig{parallelism: runtime.GOMAXPROCS(0)}
	for _, opt := range opts {
		opt(&rc)
	}
	results := make([]Result, len(scs))

	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < rc.parallelism && w < len(scs); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				cl, res := Collect(scs[i])
				results[i] = res
				if fn != nil && cl != nil {
					fn(i, cl, res)
				}
			}
		}()
	}

	var err error
	skipFrom := func(i int) {
		err = ctx.Err()
		for j := i; j < len(scs); j++ {
			results[j] = Result{Name: scs[j].Name, Kind: scs[j].Kind, Seed: scs[j].Seed, Err: err.Error()}
		}
	}
feed:
	for i := range scs {
		// Check cancellation before offering work: the select below picks
		// randomly when a worker is ready AND the context is done, which
		// would keep feeding an already-cancelled sweep.
		if ctx.Err() != nil {
			skipFrom(i)
			break
		}
		select {
		case <-ctx.Done():
			skipFrom(i)
			break feed
		case indices <- i:
		}
	}
	close(indices)
	wg.Wait()
	return results, err
}
