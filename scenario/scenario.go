// Package scenario turns single-cluster simulations into declarative,
// parallel parameter sweeps. A Scenario names an architecture, its
// traffic (streaming Sources, or a legacy materialized Workload), a run
// deadline and a seed; RunScenarios fans independent clusters out across
// goroutines and returns one Result per Scenario.
//
// Every cluster owns its event engine and randomness, so a Scenario's
// Result is a pure function of the Scenario value: RunScenarios produces
// identical Results at any parallelism, and sweeps can safely use all
// cores.
//
//	results, err := scenario.RunScenarios(ctx, []scenario.Scenario{
//		{Name: "opera", Kind: opera.KindOpera, Seed: 1,
//			Workload: scenario.Shuffle(100_000, 0),
//			Duration: 2000 * eventsim.Millisecond},
//		{Name: "expander", Kind: opera.KindExpander, Seed: 1,
//			Workload: scenario.Shuffle(100_000, eventsim.Millisecond),
//			Duration: 2000 * eventsim.Millisecond},
//	}, scenario.Parallelism(4))
package scenario

import (
	"reflect"

	opera "github.com/opera-net/opera"
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/sim"
	"github.com/opera-net/opera/internal/stats"
	"github.com/opera-net/opera/internal/telemetry"
	"github.com/opera-net/opera/internal/workload"
)

// Workload generates the flow list for a cluster of the given shape. The
// seed is the Scenario's; generators that want their own stream may ignore
// it.
//
// Workload is the legacy materialized contract: the whole flow list exists
// in memory before the first packet moves. New code should prefer Sources
// — the streaming contract the cluster drives lazily — and can bridge an
// existing Workload with Adapt. Internally every Workload already runs
// through the same Source machinery.
type Workload func(numHosts, hostsPerRack int, seed int64) []workload.FlowSpec

// Env describes the concrete cluster a Source will feed — the information
// a generator needs to calibrate itself, resolved after the cluster is
// built so generators adapt to the architecture's actual sizing.
type Env struct {
	NumHosts     int
	HostsPerRack int
	// LinkRateGbps is the cluster's configured host link rate, so offered
	// load fractions are correct on non-10G sizings.
	LinkRateGbps float64
	// Seed is the Scenario's seed.
	Seed int64
}

// Source constructs a streaming flow source for a concrete cluster. The
// cluster pulls it lazily — one arrival event at a time — so sources with
// millions of flows, or no end at all, run in O(active-flows) memory.
// Populate Scenario.Sources with these.
type Source func(env Env) workload.Source

// Adapt bridges a legacy Workload into a Source: the flow list is
// materialized once per run and replayed in arrival order. Memory stays
// O(flow list), so prefer native streaming constructors for large runs.
func Adapt(w Workload) Source {
	return func(env Env) workload.Source {
		return workload.FromSpecs(w(env.NumHosts, env.HostsPerRack, env.Seed))
	}
}

// Shuffle is an all-to-all shuffle of fixed-size flows (§5.2) across every
// host, with arrivals spread over stagger.
func Shuffle(flowBytes int64, stagger eventsim.Time) Workload {
	return ShuffleN(0, flowBytes, stagger)
}

// ShuffleN is Shuffle among only the first participants hosts (0 = all) —
// architectures quantize host counts differently (a k=8 folded Clos has
// 192 hosts vs the small testbed's 64), and capping keeps one workload
// identical across them.
func ShuffleN(participants int, flowBytes int64, stagger eventsim.Time) Workload {
	return func(numHosts, hostsPerRack int, seed int64) []workload.FlowSpec {
		if participants > 0 && participants < numHosts {
			numHosts = participants
		}
		return workload.Shuffle(numHosts, flowBytes, stagger, seed)
	}
}

// Poisson offers Poisson arrivals drawn from a flow-size distribution at a
// fraction of aggregate host bandwidth for the given window, streamed
// lazily at the cluster's configured link rate. maxFlowBytes caps sampled
// sizes (0 = unlimited).
func Poisson(dist *workload.FlowSizeDist, load float64, window eventsim.Time, maxFlowBytes int64) Source {
	return func(env Env) workload.Source {
		return workload.CapBytes(workload.PoissonSource(workload.PoissonConfig{
			NumHosts:     env.NumHosts,
			HostsPerRack: env.HostsPerRack,
			Load:         load,
			LinkRateGbps: env.LinkRateGbps,
			Duration:     window,
			Dist:         dist,
			Seed:         env.Seed,
		}), maxFlowBytes)
	}
}

// Ramp is Poisson with a time-varying load: loadAt gives the offered load
// at each virtual time and peakLoad is its ceiling (see workload.Ramp).
func Ramp(dist *workload.FlowSizeDist, peakLoad float64, loadAt func(t eventsim.Time) float64, window eventsim.Time, maxFlowBytes int64) Source {
	return func(env Env) workload.Source {
		return workload.CapBytes(workload.Ramp(workload.PoissonConfig{
			NumHosts:     env.NumHosts,
			HostsPerRack: env.HostsPerRack,
			Load:         peakLoad,
			LinkRateGbps: env.LinkRateGbps,
			Duration:     window,
			Dist:         dist,
			Seed:         env.Seed,
		}, loadAt), maxFlowBytes)
	}
}

// Incast fires bursts of fanin simultaneous senders into one random
// receiver every period, bursts times (see workload.Incast).
func Incast(fanin int, bytes int64, period eventsim.Time, bursts int) Source {
	return func(env Env) workload.Source {
		return workload.Incast(workload.IncastConfig{
			NumHosts: env.NumHosts,
			Fanin:    fanin,
			Bytes:    bytes,
			Period:   period,
			Bursts:   bursts,
			Dst:      -1,
			Seed:     env.Seed,
		})
	}
}

// Fixed replays a precomputed flow list.
func Fixed(flows []workload.FlowSpec) Workload {
	return func(int, int, int64) []workload.FlowSpec { return flows }
}

// TagSource labels every flow of a source — the streaming form of Tag.
func TagSource(tag string, s Source) Source {
	return func(env Env) workload.Source { return workload.TagSource(tag, s(env)) }
}

// BulkSource application-tags every flow of a source for bulk service —
// the streaming form of Bulk (§3.4).
func BulkSource(s Source) Source {
	return func(env Env) workload.Source { return workload.BulkSource(s(env)) }
}

// Take caps a source at its first n flows.
func Take(s Source, n int) Source {
	return func(env Env) workload.Source { return workload.Take(s(env), n) }
}

// MergeSources interleaves sources into one arrival-ordered stream.
// Listing several entries in Scenario.Sources is equivalent; MergeSources
// exists for composing before further wrapping.
func MergeSources(ss ...Source) Source {
	return func(env Env) workload.Source {
		inner := make([]workload.Source, len(ss))
		for i, s := range ss {
			inner[i] = s(env)
		}
		return workload.Merge(inner...)
	}
}

// Scenario is one self-contained simulation: an architecture, its sizing
// options, a workload and a deadline — plus optional hooks: a timed fault
// schedule (Events) and sampling probes (Probes).
type Scenario struct {
	// Name labels the scenario in its Result.
	Name string
	// Kind picks the architecture; Options size it (applied after
	// WithSeed(Seed), so an explicit WithSeed among Options wins).
	Kind    opera.Kind
	Options []opera.Option
	// Workload generates a materialized flow list; nil means none. Tagged
	// flows (see Tag) produce per-tag breakdowns in Result.ByTag.
	// Deprecated-leaning: the list is adapted into a lazily driven Source
	// internally; prefer Sources for anything large or unbounded.
	Workload Workload
	// Sources stream flows lazily into the cluster: each entry is built
	// against the concrete cluster (Env) and pulled one arrival at a time,
	// so memory stays O(active flows) regardless of total flow count.
	// Workload and Sources compose; all entries run concurrently in
	// virtual time.
	Sources []Source
	// Events schedules mid-run actions — fault injection and recovery —
	// at fixed virtual times (see At, FailLink, FailSwitch, RecoverLink).
	// Random actions draw from a generator derived from Seed, so the
	// schedule is as deterministic as the workload.
	Events []Event
	// Probes sample the running cluster into Result.Probes time series
	// (see Sample).
	Probes []Probe
	// Duration is the RunUntilDone deadline in virtual time; the run ends
	// earlier once every flow completes or the event queue drains.
	Duration eventsim.Time
	// Seed seeds the cluster topology, the workload generator, and the
	// fault schedule's randomness.
	Seed int64
	// Observer, when non-nil, is attached to the built cluster just
	// before the run starts — the opt-in live-observation hook
	// (internal/obs.Publisher implements it). Observers sample through
	// the engine's meta-event surface and must be read-only: the Result
	// of an observed run is byte-identical to the unobserved run, which
	// TestObserverDeterminism asserts. Observers are process-local and
	// are not part of the Spec wire form.
	Observer Observer
}

// Observer is the live-observation hook of a Scenario: Attach is called
// with the built cluster and the run's deadline after workloads, fault
// schedules and probes are installed, immediately before RunUntilDone.
// Implementations schedule their sampling via the engine's meta-event
// entry points (eventsim.AtMetaCall) so the run's results, effort counts
// and early-exit behavior are unchanged by observation.
type Observer interface {
	Attach(cl *opera.Cluster, deadline eventsim.Time)
}

// FCTStats summarizes a flow-completion-time sample in microseconds.
// Under the default RetainAll retention the values are exact; under
// RetainSketch the percentiles come from the streaming sketch and carry
// its pinned relative-error bound (Result.Telemetry.ErrorBound) while N,
// MeanUs and MaxUs stay exact.
type FCTStats struct {
	N                           int
	MeanUs, P50Us, P99Us, MaxUs float64
}

func fctStats(s *stats.Sample) FCTStats {
	if s.N() == 0 {
		return FCTStats{}
	}
	return FCTStats{N: s.N(), MeanUs: s.Mean(), P50Us: s.Median(), P99Us: s.P99(), MaxUs: s.Max()}
}

func sketchFCT(s *telemetry.Sketch) FCTStats {
	if s.Count() == 0 {
		return FCTStats{}
	}
	return FCTStats{N: int(s.Count()), MeanUs: s.Mean(),
		P50Us: s.Quantile(0.50), P99Us: s.Quantile(0.99), MaxUs: s.Max()}
}

// TagStats summarizes one workload tag's flows: completion counts, FCTs
// of the finished ones, and delivered application bandwidth over the
// virtual time simulated.
type TagStats struct {
	FlowsDone  int
	FlowsTotal int
	FCT        FCTStats
	// ThroughputGbps is the tag's delivered application bandwidth over
	// the virtual time actually simulated.
	ThroughputGbps float64
}

// Result reports one finished Scenario. It is a pure function of the
// Scenario value: RunScenarios at any Parallelism yields identical
// Results for identical Scenarios, which tests assert with Equal (the
// ByTag and Probes fields make Result non-comparable with ==).
type Result struct {
	Name string
	Kind opera.Kind
	Seed int64

	// Completed reports whether every flow finished before Duration.
	Completed  bool
	FlowsDone  int
	FlowsTotal int

	// All, LowLat and Bulk summarize completion times of finished flows,
	// overall and per service class.
	All, LowLat, Bulk FCTStats

	// ByTag breaks flows down by workload tag (see Tag); nil when the
	// workload is untagged.
	ByTag map[string]TagStats

	// Probes holds one recorded series per Scenario probe, in Probes
	// order; nil when the Scenario has none.
	Probes []ProbeSeries

	// Telemetry carries the streaming-retention summaries — extended
	// quantiles at the sketch's pinned error bound and the trailing
	// throughput/tax window — when the Scenario's Options include
	// opera.WithRetention(opera.RetainSketch(…)); nil under the default
	// RetainAll. Result.Equal covers it.
	Telemetry *TelemetrySummary

	// ThroughputGbps is delivered application bandwidth over the virtual
	// time actually simulated.
	ThroughputGbps float64
	// AggregateTax is the overall bandwidth tax (extra ToR-to-ToR
	// traversals per goodput byte).
	AggregateTax float64
	// BulkNACKs counts §4.2.2 circuit NACKs.
	BulkNACKs uint64
	// SimEvents counts discrete events executed.
	SimEvents uint64

	// Err is non-empty when the cluster could not be built, a hook could
	// not be scheduled, or the run was cancelled; all measurement fields
	// are then zero.
	Err string
}

// QuantileSummary is one sketch's quantile readout in microseconds: the
// paper's tail metrics plus the deeper tail a streaming soak exists to
// observe. N, MeanUs and MaxUs are exact; the percentiles carry the
// sketch's relative-error bound.
type QuantileSummary struct {
	N                                          int
	MeanUs, P50Us, P90Us, P99Us, P999Us, MaxUs float64
}

// TelemetrySummary reports a sketch-retention run: quantile summaries per
// service class and the trailing windowed series that replace the exact
// (unbounded) per-flow and per-bin records. Per-tag quantiles surface
// through Result.ByTag as usual; note that under sketch retention a tag's
// ThroughputGbps counts completed flows' bytes only (in-flight bytes fold
// in on completion).
type TelemetrySummary struct {
	// ErrorBound is the sketches' pinned relative-error bound α: every
	// reported percentile is within ±α of the exact order statistic.
	ErrorBound float64

	// All, LowLat and Bulk summarize completion times overall and per
	// service class.
	All, LowLat, Bulk QuantileSummary

	// WindowGbps is the trailing delivered-throughput window, oldest bin
	// first: WindowBinMs-wide bins starting at WindowStartMs of virtual
	// time. Older bins have rotated out (their bytes remain in
	// Result.ThroughputGbps, which is exact over the whole run).
	WindowBinMs   float64
	WindowStartMs float64
	WindowGbps    []float64

	// WindowTax is the bandwidth tax over the trailing window only —
	// the recent-behavior counterpart of Result.AggregateTax.
	WindowTax float64
}

func quantileSummary(s *telemetry.Sketch) QuantileSummary {
	if s.Count() == 0 {
		return QuantileSummary{}
	}
	return QuantileSummary{
		N: int(s.Count()), MeanUs: s.Mean(), MaxUs: s.Max(),
		P50Us: s.Quantile(0.50), P90Us: s.Quantile(0.90),
		P99Us: s.Quantile(0.99), P999Us: s.Quantile(0.999),
	}
}

// Equal reports whether two Results are identical, including per-tag
// breakdowns, probe series and telemetry summaries — the determinism
// relation RunScenarios guarantees across Parallelism settings.
func (r Result) Equal(o Result) bool { return reflect.DeepEqual(r, o) }

// Collect runs one Scenario and returns the finished cluster alongside its
// Result, for callers that need raw flows or time series beyond the
// Result summary. The cluster is nil when construction failed.
func Collect(sc Scenario) (*opera.Cluster, Result) {
	res := Result{Name: sc.Name, Kind: sc.Kind, Seed: sc.Seed}
	opts := make([]opera.Option, 0, len(sc.Options)+1)
	opts = append(opts, opera.WithSeed(sc.Seed))
	opts = append(opts, sc.Options...)
	cl, err := opera.New(sc.Kind, opts...)
	if err != nil {
		res.Err = err.Error()
		return nil, res
	}
	if sc.Workload != nil {
		cl.AddSource(workload.FromSpecs(sc.Workload(cl.NumHosts(), cl.HostsPerRack(), sc.Seed)))
	}
	env := Env{
		NumHosts:     cl.NumHosts(),
		HostsPerRack: cl.HostsPerRack(),
		LinkRateGbps: cl.Network().Config().LinkRateGbps,
		Seed:         sc.Seed,
	}
	for _, s := range sc.Sources {
		if s != nil {
			cl.AddSource(s(env))
		}
	}
	probes, err := applyHooks(cl, sc)
	if err != nil {
		res.Err = err.Error()
		return nil, res
	}
	if sc.Observer != nil {
		sc.Observer.Attach(cl, sc.Duration)
	}
	res.Completed = cl.RunUntilDone(sc.Duration)
	cl.Stop()

	m := cl.Metrics()
	elapsed := cl.Engine().Now().Seconds()
	res.FlowsDone, res.FlowsTotal = m.DoneCount()
	if tel := m.Telemetry(); tel != nil {
		fillFromTelemetry(&res, tel, elapsed)
	} else {
		summarize(&res, m, elapsed)
	}
	if elapsed > 0 {
		res.ThroughputGbps = m.DeliveredTotal() * 8 / elapsed / 1e9
	}
	res.Probes = probes
	res.AggregateTax = m.AggregateTax()
	res.BulkNACKs = cl.BulkNACKCount()
	res.SimEvents = cl.Engine().Steps()
	return cl, res
}

// summarize fills the Result's FCT and per-tag fields from retained flows
// in ONE pass over Metrics.Flows() — the overall and per-class samples and
// every tag tally accumulate together, where the former shape scanned the
// full flow list once per summary (4+ scans on a large sweep).
func summarize(res *Result, m *sim.Metrics, elapsedSeconds float64) {
	type tally struct {
		fct         stats.Sample
		done, total int
		bytesRcvd   int64
	}
	var all, lowLat, bulk stats.Sample
	var tallies map[string]*tally
	for _, f := range m.Flows() {
		if f.Tag != "" {
			if tallies == nil {
				tallies = make(map[string]*tally)
			}
			t := tallies[f.Tag]
			if t == nil {
				t = &tally{}
				tallies[f.Tag] = t
			}
			t.total++
			t.bytesRcvd += f.BytesRcvd
			if f.Done {
				t.done++
				t.fct.Add(f.FCT().Micros())
			}
		}
		if !f.Done {
			continue
		}
		v := f.FCT().Micros()
		all.Add(v)
		switch f.Class {
		case sim.ClassLowLatency:
			lowLat.Add(v)
		case sim.ClassBulk:
			bulk.Add(v)
		}
	}
	res.All = fctStats(&all)
	res.LowLat = fctStats(&lowLat)
	res.Bulk = fctStats(&bulk)
	if len(tallies) == 0 {
		return
	}
	res.ByTag = make(map[string]TagStats, len(tallies))
	for tag, t := range tallies {
		ts := TagStats{FlowsDone: t.done, FlowsTotal: t.total, FCT: fctStats(&t.fct)}
		if elapsedSeconds > 0 {
			ts.ThroughputGbps = float64(t.bytesRcvd) * 8 / elapsedSeconds / 1e9
		}
		res.ByTag[tag] = ts
	}
}

// fillFromTelemetry is summarize's sketch-retention counterpart: no flows
// were retained, so the FCT summaries, per-tag breakdown and the
// TelemetrySummary all come from the streaming collector.
func fillFromTelemetry(res *Result, tel *telemetry.Collector, elapsedSeconds float64) {
	allSketch := tel.Merged()
	lowLat := tel.ClassSketch(int(sim.ClassLowLatency))
	bulk := tel.ClassSketch(int(sim.ClassBulk))
	res.All = sketchFCT(allSketch)
	res.LowLat = sketchFCT(lowLat)
	res.Bulk = sketchFCT(bulk)

	if tags := tel.Tags(); len(tags) > 0 {
		res.ByTag = make(map[string]TagStats, len(tags))
		for tag, t := range tags {
			ts := TagStats{FlowsDone: t.Done, FlowsTotal: t.Total, FCT: sketchFCT(t.Sketch)}
			if elapsedSeconds > 0 {
				ts.ThroughputGbps = float64(t.Bytes) * 8 / elapsedSeconds / 1e9
			}
			res.ByTag[tag] = ts
		}
	}

	sum := &TelemetrySummary{
		ErrorBound: tel.Alpha(),
		All:        quantileSummary(allSketch),
		LowLat:     quantileSummary(lowLat),
		Bulk:       quantileSummary(bulk),
	}
	w := tel.Delivered()
	sum.WindowBinMs = w.BinWidth() * 1000
	if first, rates := w.Rates(); len(rates) > 0 {
		sum.WindowStartMs = float64(first) * w.BinWidth() * 1000
		sum.WindowGbps = make([]float64, len(rates))
		for i, r := range rates {
			sum.WindowGbps[i] = r * 8 / 1e9
		}
	}
	if good := tel.Goodput().WindowTotal(); good > 0 {
		sum.WindowTax = tel.Uplink().WindowTotal()/good - 1
	}
	res.Telemetry = sum
}

// Run executes one Scenario and returns its Result.
func Run(sc Scenario) Result {
	_, res := Collect(sc)
	return res
}
