// Spec is the declarative, serializable face of a Scenario: where a
// Scenario carries live function values (Sources, Events, Probes) that
// cannot cross a process boundary, a Spec is plain data — strings,
// numbers, nested structs — that gob/JSON round-trips exactly. The sweep
// coordinator partitions grids of Specs into shards, ships them to worker
// processes, and every worker reconstructs the identical Scenario value
// with Spec.Scenario(), so a sharded run is a pure reordering of the same
// deterministic per-scenario computations a local RunScenarios performs.
package scenario

import (
	"fmt"

	opera "github.com/opera-net/opera"
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/sim"
	"github.com/opera-net/opera/internal/workload"
)

// Spec describes one Scenario as plain serializable data. The zero value
// of every sizing field keeps opera.New's defaults (the examples' 16×4
// small testbed), mirroring how an Options-free Scenario behaves.
type Spec struct {
	// Name labels the scenario in its Result.
	Name string
	// Network is the architecture name ("opera", "expander", "foldedclos",
	// "rotornet", "rotornet-hybrid", or anything registered through
	// opera.RegisterKind).
	Network string
	// Seed seeds topology, workload and fault randomness (Scenario.Seed).
	Seed int64
	// Duration is the RunUntilDone deadline in virtual time.
	Duration eventsim.Time

	// Sizing (zero = opera.New default). For expanders Uplinks is the
	// fabric degree; for the folded Clos ClosK/ClosF are used instead.
	Racks        int
	HostsPerRack int
	Uplinks      int
	ClosK        int
	ClosF        int
	// AppTaggedBulk forces every flow to bulk service (§5.2).
	AppTaggedBulk bool
	// MaxSliceDiameter bounds Opera slice diameters (0 = no bound).
	MaxSliceDiameter int

	// Sources stream flows into the cluster, in order.
	Sources []SourceSpec

	// Events is the fault schedule, as plain data (gob/JSON round-trips
	// exactly), so sharded sweeps can run the failure figures.
	Events []EventSpec

	// Retention selects the metrics retention policy.
	Retention RetentionSpec
}

// EventSpec describes one scheduled fault event as plain serializable
// data — the declarative face of a scenario.Event. Op selects the
// operation; unused fields are ignored.
type EventSpec struct {
	// At is the virtual time the event fires.
	At eventsim.Time
	// Op is "inject" (the default when empty), "recover", or
	// "fail-random-links".
	Op string
	// Target locates the fault for inject and recover.
	Target TargetSpec
	// Fault describes what goes wrong for inject ops (zero value = a
	// clean down).
	Fault FaultSpec
	// Fraction is the cable fraction for fail-random-links.
	Fraction float64
}

// TargetSpec is the serializable form of a sim.Target.
type TargetSpec struct {
	// Kind is "link", "tor" or "switch".
	Kind string
	// Tier, Switch and Port form the link coordinate (Kind "link"):
	// tier 0 is the flat {rack, uplink} space every fabric interprets;
	// the folded Clos additionally takes its explicit cable tiers.
	Tier   int
	Switch int
	Port   int
	// ID is the rack (Kind "tor") or switch (Kind "switch") index; for
	// switches Tier qualifies the plane (0 = the fabric's default; the
	// Clos requires sim.ClosTierAgg or sim.ClosTierCore).
	ID int
}

// FaultSpec is the serializable form of a sim.Fault.
type FaultSpec struct {
	// Kind is "down" (the default when empty), "lossy", "degraded" or
	// "flapping".
	Kind string
	// Rate is the lossy per-packet drop probability, in (0,1].
	Rate float64
	// RateFraction is the degraded fraction of nominal rate, in (0,1).
	RateFraction float64
	// Up and Down are the flapping phase lengths.
	Up, Down eventsim.Time
}

// target resolves the spec into a sim.Target.
func (ts TargetSpec) target() (sim.Target, error) {
	switch ts.Kind {
	case "link":
		return sim.LinkTarget(sim.LinkID{Tier: ts.Tier, Switch: ts.Switch, Port: ts.Port}), nil
	case "tor":
		return sim.ToRTarget(ts.ID), nil
	case "switch":
		return sim.TierSwitchTarget(ts.Tier, ts.ID), nil
	default:
		return sim.Target{}, fmt.Errorf("scenario: unknown target kind %q (want link, tor or switch)", ts.Kind)
	}
}

// fault resolves the spec into a sim.Fault.
func (fs FaultSpec) fault() (sim.Fault, error) {
	switch fs.Kind {
	case "", "down":
		return sim.DownFault(), nil
	case "lossy":
		return sim.LossyFault(fs.Rate), nil
	case "degraded":
		return sim.DegradedFault(fs.RateFraction), nil
	case "flapping":
		return sim.FlappingFault(fs.Up, fs.Down), nil
	default:
		return sim.Fault{}, fmt.Errorf("scenario: unknown fault kind %q (want down, lossy, degraded or flapping)", fs.Kind)
	}
}

// event resolves the spec into a scheduled Event. Coordinate validation
// is deferred to the injector at run time (it is fabric-interpreted);
// kind strings and fault parameters are checked here.
func (es EventSpec) event() (Event, error) {
	switch es.Op {
	case "", "inject":
		t, err := es.Target.target()
		if err != nil {
			return Event{}, err
		}
		f, err := es.Fault.fault()
		if err != nil {
			return Event{}, err
		}
		if err := f.Validate(); err != nil {
			return Event{}, err
		}
		return At(es.At, Inject(t, f)), nil
	case "recover":
		t, err := es.Target.target()
		if err != nil {
			return Event{}, err
		}
		return At(es.At, Recover(t)), nil
	case "fail-random-links":
		return At(es.At, FailRandomLinks(es.Fraction)), nil
	default:
		return Event{}, fmt.Errorf("scenario: unknown event op %q (want inject, recover or fail-random-links)", es.Op)
	}
}

// SourceSpec describes one streaming workload source. Type selects the
// generator; the other fields parameterize it (unused ones are ignored).
type SourceSpec struct {
	// Type is "poisson", "shuffle" or "incast".
	Type string

	// Dist names the flow-size distribution for poisson sources:
	// "datamining" (Fig. 1's heavy-tailed trace) or "websearch".
	Dist string
	// Load is the poisson source's offered fraction of aggregate host
	// bandwidth.
	Load float64
	// Window is the poisson arrival window (arrivals stop after it).
	Window eventsim.Time
	// MaxFlowBytes caps sampled poisson flow sizes (0 = unlimited).
	MaxFlowBytes int64

	// FlowBytes sizes each shuffle or incast flow.
	FlowBytes int64
	// Stagger spreads shuffle arrivals.
	Stagger eventsim.Time
	// Participants caps how many hosts join the shuffle (0 = all).
	Participants int

	// Fanin, Period and Bursts shape the incast source.
	Fanin  int
	Period eventsim.Time
	Bursts int

	// Tag labels every flow of this source (Result.ByTag); empty = none.
	Tag string
	// Bulk application-tags every flow for bulk service (§3.4).
	Bulk bool
}

// RetentionSpec selects the metrics retention policy: the zero value is
// RetainAll (exact, unbounded memory); Sketch true is RetainSketch with
// the given options (zero fields take telemetry defaults).
type RetentionSpec struct {
	Sketch bool
	// Alpha is the quantile sketches' relative-error bound (0 = 1%).
	Alpha float64
	// WindowBin / WindowBins shape the trailing throughput window
	// (0 = 1 ms × 128 bins).
	WindowBin  float64
	WindowBins int
}

// source resolves the spec into a scenario Source.
func (ss SourceSpec) source() (Source, error) {
	var src Source
	switch ss.Type {
	case "poisson":
		var dist *workload.FlowSizeDist
		switch ss.Dist {
		case "datamining":
			dist = workload.Datamining()
		case "websearch":
			dist = workload.Websearch()
		default:
			return nil, fmt.Errorf("scenario: unknown flow-size distribution %q (want datamining or websearch)", ss.Dist)
		}
		if !(ss.Load > 0) {
			return nil, fmt.Errorf("scenario: poisson source load %v must be positive", ss.Load)
		}
		if ss.Window <= 0 {
			return nil, fmt.Errorf("scenario: poisson source window %v must be positive", ss.Window)
		}
		src = Poisson(dist, ss.Load, ss.Window, ss.MaxFlowBytes)
	case "shuffle":
		if ss.FlowBytes <= 0 {
			return nil, fmt.Errorf("scenario: shuffle flow size %d must be positive", ss.FlowBytes)
		}
		src = Adapt(ShuffleN(ss.Participants, ss.FlowBytes, ss.Stagger))
	case "incast":
		if ss.Fanin <= 0 || ss.FlowBytes <= 0 || ss.Bursts <= 0 {
			return nil, fmt.Errorf("scenario: incast wants positive fanin, flow size and bursts (got %d, %d, %d)",
				ss.Fanin, ss.FlowBytes, ss.Bursts)
		}
		src = Incast(ss.Fanin, ss.FlowBytes, ss.Period, ss.Bursts)
	default:
		return nil, fmt.Errorf("scenario: unknown source type %q (want poisson, shuffle or incast)", ss.Type)
	}
	if ss.Bulk {
		src = BulkSource(src)
	}
	if ss.Tag != "" {
		src = TagSource(ss.Tag, src)
	}
	return src, nil
}

// Scenario resolves the Spec into the Scenario value it describes. The
// mapping is deterministic — two processes resolving equal Specs build
// clusters, workloads and retention identically — which is what lets a
// sharded sweep reproduce a local run byte-for-byte.
func (sp Spec) Scenario() (Scenario, error) {
	kind, err := opera.ParseKind(sp.Network)
	if err != nil {
		return Scenario{}, err
	}
	if sp.Duration <= 0 {
		return Scenario{}, fmt.Errorf("scenario: spec %q: duration %v must be positive", sp.Name, sp.Duration)
	}
	var opts []opera.Option
	if sp.Racks != 0 {
		opts = append(opts, opera.WithRacks(sp.Racks))
	}
	if sp.HostsPerRack != 0 {
		opts = append(opts, opera.WithHostsPerRack(sp.HostsPerRack))
	}
	if sp.Uplinks != 0 {
		opts = append(opts, opera.WithUplinks(sp.Uplinks))
	}
	if sp.ClosK != 0 || sp.ClosF != 0 {
		opts = append(opts, opera.WithClos(sp.ClosK, sp.ClosF))
	}
	if sp.AppTaggedBulk {
		opts = append(opts, opera.WithAppTaggedBulk(true))
	}
	if sp.MaxSliceDiameter != 0 {
		opts = append(opts, opera.WithMaxSliceDiameter(sp.MaxSliceDiameter))
	}
	if sp.Retention.Sketch {
		sketchOpts := opera.SketchOptions{
			Alpha:      sp.Retention.Alpha,
			WindowBin:  sp.Retention.WindowBin,
			WindowBins: sp.Retention.WindowBins,
		}
		if err := sketchOpts.Validate(); err != nil {
			return Scenario{}, fmt.Errorf("scenario: spec %q: %w", sp.Name, err)
		}
		opts = append(opts, opera.WithRetention(opera.RetainSketch(sketchOpts)))
	}
	if len(sp.Sources) == 0 {
		return Scenario{}, fmt.Errorf("scenario: spec %q has no sources", sp.Name)
	}
	sources := make([]Source, len(sp.Sources))
	for i, ss := range sp.Sources {
		src, err := ss.source()
		if err != nil {
			return Scenario{}, fmt.Errorf("scenario: spec %q source %d: %w", sp.Name, i, err)
		}
		sources[i] = src
	}
	var events []Event
	if len(sp.Events) > 0 {
		events = make([]Event, len(sp.Events))
		for i, es := range sp.Events {
			ev, err := es.event()
			if err != nil {
				return Scenario{}, fmt.Errorf("scenario: spec %q event %d: %w", sp.Name, i, err)
			}
			events[i] = ev
		}
	}
	return Scenario{
		Name:     sp.Name,
		Kind:     kind,
		Options:  opts,
		Sources:  sources,
		Events:   events,
		Duration: sp.Duration,
		Seed:     sp.Seed,
	}, nil
}
