package scenario_test

import (
	"context"
	"testing"

	opera "github.com/opera-net/opera"
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/scenario"
)

// sweep is a small cross-architecture, cross-seed batch: enough scenarios
// to keep four workers busy, small enough to finish in seconds.
func sweep() []scenario.Scenario {
	var scs []scenario.Scenario
	for _, kind := range []opera.Kind{
		opera.KindOpera, opera.KindExpander, opera.KindFoldedClos,
		opera.KindRotorNet, opera.KindRotorNetHybrid,
	} {
		for _, seed := range []int64{1, 2} {
			scs = append(scs, scenario.Scenario{
				Name:     kind.String(),
				Kind:     kind,
				Seed:     seed,
				Options:  []opera.Option{opera.WithBulkThreshold(20_000)},
				Workload: scenario.ShuffleN(12, 25_000, eventsim.Millisecond),
				Duration: 4000 * eventsim.Millisecond,
			})
		}
	}
	return scs
}

// Parallel execution must produce byte-identical Results to sequential
// execution: every cluster owns its engine and randomness, so Results are
// a pure function of the Scenario values.
func TestRunScenariosDeterministicUnderParallelism(t *testing.T) {
	scs := sweep()
	sequential, err := scenario.RunScenarios(context.Background(), scs, scenario.Parallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := scenario.RunScenarios(context.Background(), scs, scenario.Parallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(sequential) != len(scs) || len(parallel) != len(scs) {
		t.Fatalf("result counts: sequential=%d parallel=%d want %d", len(sequential), len(parallel), len(scs))
	}
	for i := range scs {
		if !sequential[i].Equal(parallel[i]) {
			t.Errorf("scenario %d (%s seed %d): results diverge\n sequential: %+v\n parallel:   %+v",
				i, scs[i].Name, scs[i].Seed, sequential[i], parallel[i])
		}
		if sequential[i].Err != "" {
			t.Errorf("scenario %d (%s): %s", i, scs[i].Name, sequential[i].Err)
		}
		if !sequential[i].Completed {
			t.Errorf("scenario %d (%s): incomplete (%d/%d flows)",
				i, scs[i].Name, sequential[i].FlowsDone, sequential[i].FlowsTotal)
		}
	}
}

// Re-running the same Scenario must reproduce the same Result exactly —
// the per-seed determinism RunScenarios' parallel guarantee rests on.
func TestRunIsDeterministicPerSeed(t *testing.T) {
	sc := scenario.Scenario{
		Name:     "opera",
		Kind:     opera.KindOpera,
		Seed:     3,
		Workload: scenario.ShuffleN(12, 25_000, 0),
		Duration: 4000 * eventsim.Millisecond,
	}
	a := scenario.Run(sc)
	b := scenario.Run(sc)
	if !a.Equal(b) {
		t.Fatalf("same scenario, different results:\n a: %+v\n b: %+v", a, b)
	}
	if a.Err != "" || !a.Completed {
		t.Fatalf("run failed: %+v", a)
	}
	if a.FlowsTotal == 0 || a.ThroughputGbps <= 0 {
		t.Fatalf("implausible result: %+v", a)
	}
}

// A failed build surfaces through Result.Err, not an error return.
func TestRunScenariosBuildError(t *testing.T) {
	scs := []scenario.Scenario{{
		Name:    "bad",
		Kind:    opera.KindOpera,
		Seed:    1,
		Options: []opera.Option{opera.WithRacks(15)}, // Opera needs even racks
	}}
	results, err := scenario.RunScenarios(context.Background(), scs)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == "" {
		t.Fatal("expected build error in Result.Err")
	}
}

// Cancellation skips unstarted scenarios and reports ctx.Err.
func TestRunScenariosCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	scs := sweep()
	results, err := scenario.RunScenarios(ctx, scs, scenario.Parallelism(2))
	if err == nil {
		t.Fatal("expected context error")
	}
	skipped := 0
	for _, r := range results {
		if r.Err == context.Canceled.Error() {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatal("no scenarios marked cancelled")
	}
}

// ForEachCluster hands every successfully built cluster to the callback
// (concurrently, per-index) and skips failed builds.
func TestForEachCluster(t *testing.T) {
	scs := sweep()[:4]
	scs = append(scs, scenario.Scenario{
		Name:    "bad",
		Kind:    opera.KindOpera,
		Seed:    1,
		Options: []opera.Option{opera.WithRacks(15)},
	})
	seen := make([]bool, len(scs))
	results, err := scenario.ForEachCluster(context.Background(), scs,
		func(i int, cl *opera.Cluster, res scenario.Result) {
			seen[i] = cl != nil
		}, scenario.Parallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range scs[:4] {
		if !seen[i] {
			t.Errorf("callback missed scenario %d", i)
		}
		if results[i].Err != "" {
			t.Errorf("scenario %d: %s", i, results[i].Err)
		}
	}
	if seen[4] {
		t.Error("callback invoked for failed build")
	}
	if results[4].Err == "" {
		t.Error("failed build missing Err")
	}
}

// CollectScenarios returns the finished clusters for inspection.
func TestCollectScenarios(t *testing.T) {
	scs := sweep()[:2]
	clusters, results, err := scenario.CollectScenarios(context.Background(), scs, scenario.Parallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	for i, cl := range clusters {
		if cl == nil {
			t.Fatalf("cluster %d missing", i)
		}
		done, total := cl.Metrics().DoneCount()
		if done != results[i].FlowsDone || total != results[i].FlowsTotal {
			t.Fatalf("cluster %d: metrics %d/%d, result %d/%d",
				i, done, total, results[i].FlowsDone, results[i].FlowsTotal)
		}
	}
}
