package scenario_test

import (
	"context"
	"math"
	"testing"

	opera "github.com/opera-net/opera"
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/stats"
	"github.com/opera-net/opera/internal/workload"
	"github.com/opera-net/opera/scenario"
)

const sketchAlpha = 0.01

// fig7Cell is the (opera, load 0.25) cell of the Figure 7 sweep — the
// Datamining Poisson workload at DefaultSimOptions sizing and the figure
// seed — with the retention policy under test. The workload is tagged so
// the per-tag sketch path is exercised alongside the per-class one.
// Datamining's multi-megabyte mean flow keeps arrival counts modest (the
// figure buckets for the same reason); the bracket assertions below hold
// at any N, and the statistical weight comes from the 50 000-sample
// sketch unit tests plus the root package's 100k-flow soak.
func fig7Cell(retention opera.RetentionPolicy) scenario.Scenario {
	return scenario.Scenario{
		Name: "fig7-dm",
		Kind: opera.KindOpera,
		Seed: 1, // the figure seed (DefaultSimOptions)
		Options: []opera.Option{
			opera.WithRacks(16), opera.WithHostsPerRack(4), opera.WithUplinks(4),
			opera.WithSeed(1), opera.WithRetention(retention),
		},
		Sources: []scenario.Source{scenario.TagSource("dm",
			scenario.Poisson(workload.Datamining(), 0.25, 20*eventsim.Millisecond, 20_000_000))},
		Duration: 300 * eventsim.Millisecond,
	}
}

// checkWithinBound asserts the sketch guarantee against the exact sample:
// the estimate must lie within ±alpha of the order statistics bracketing
// the type-7 rank of percentile p.
func checkWithinBound(t *testing.T, what string, got float64, exact *stats.Sample, p float64) {
	t.Helper()
	sorted := exact.Values()
	h := p / 100 * float64(len(sorted)-1)
	lo := sorted[int(math.Floor(h))]
	hi := sorted[int(math.Ceil(h))]
	if got < lo*(1-sketchAlpha)-1e-9 || got > hi*(1+sketchAlpha)+1e-9 {
		t.Errorf("%s p%v = %v outside sketch bound [%v, %v] (exact %v)",
			what, p, got, lo*(1-sketchAlpha), hi*(1+sketchAlpha), exact.Percentile(p))
	}
}

// RetainSketch reproduces the Fig 7 workload's tail statistics within the
// sketch's pinned error bound of the exact RetainAll values, while
// retaining no flows.
func TestRetainSketchMatchesExactOnFig7Workload(t *testing.T) {
	if testing.Short() {
		t.Skip("packet-level accuracy run in -short mode")
	}
	if raceEnabled {
		t.Skip("numeric accuracy check, nothing concurrent — skipped under -race")
	}
	// Exact side: default retention, raw flows from the finished cluster.
	cl, exactRes := scenario.Collect(fig7Cell(opera.RetainAll()))
	if exactRes.Err != "" {
		t.Fatal(exactRes.Err)
	}
	exactAll := cl.Metrics().FCTSample(nil)
	if exactAll.N() < 30 {
		t.Fatalf("Fig 7 cell produced only %d flows; accuracy check needs a spread of FCTs", exactAll.N())
	}

	skRes := scenario.Run(fig7Cell(opera.RetainSketch(opera.SketchOptions{Alpha: sketchAlpha})))
	if skRes.Err != "" {
		t.Fatal(skRes.Err)
	}
	if skRes.Telemetry == nil {
		t.Fatal("RetainSketch Result should carry a TelemetrySummary")
	}
	if skRes.Telemetry.ErrorBound != sketchAlpha {
		t.Fatalf("ErrorBound = %v, want %v", skRes.Telemetry.ErrorBound, sketchAlpha)
	}

	// Same workload, same seeds, same arrivals: counts agree exactly.
	if skRes.FlowsTotal != exactRes.FlowsTotal || skRes.FlowsDone != exactRes.FlowsDone {
		t.Fatalf("flow counts diverge: sketch (%d/%d) vs exact (%d/%d)",
			skRes.FlowsDone, skRes.FlowsTotal, exactRes.FlowsDone, exactRes.FlowsTotal)
	}
	if skRes.All.N != exactAll.N() {
		t.Fatalf("All.N = %d, want %d", skRes.All.N, exactAll.N())
	}
	// Mean and throughput are exact in both modes (modulo float summation
	// order), as is the bandwidth tax.
	if rel := math.Abs(skRes.All.MeanUs-exactAll.Mean()) / exactAll.Mean(); rel > 1e-9 {
		t.Fatalf("mean diverges by %v relative", rel)
	}
	if rel := math.Abs(skRes.ThroughputGbps-exactRes.ThroughputGbps) / exactRes.ThroughputGbps; rel > 1e-9 {
		t.Fatalf("throughput diverges by %v relative", rel)
	}
	if skRes.AggregateTax != exactRes.AggregateTax {
		t.Fatalf("tax diverges: %v vs %v", skRes.AggregateTax, exactRes.AggregateTax)
	}

	checkWithinBound(t, "all", skRes.All.P50Us, exactAll, 50)
	checkWithinBound(t, "all", skRes.All.P99Us, exactAll, 99)
	checkWithinBound(t, "all", skRes.Telemetry.All.P999Us, exactAll, 99.9)
	if skRes.All.MaxUs != exactAll.Max() {
		t.Fatalf("max should be exact: %v vs %v", skRes.All.MaxUs, exactAll.Max())
	}

	// Per-tag sketches see the same flows (everything is tagged "dm").
	dm, ok := skRes.ByTag["dm"]
	if !ok {
		t.Fatal("sketch retention lost the per-tag breakdown")
	}
	if dm.FlowsTotal != exactRes.FlowsTotal || dm.FCT.N != exactAll.N() {
		t.Fatalf("tag counts diverge: %d/%d vs %d/%d", dm.FCT.N, dm.FlowsTotal, exactAll.N(), exactRes.FlowsTotal)
	}
	checkWithinBound(t, "tag dm", dm.FCT.P99Us, exactAll, 99)

	// And the flows really were released.
	skCl, _ := scenario.Collect(fig7Cell(opera.RetainSketch(opera.SketchOptions{Alpha: sketchAlpha})))
	if n := len(skCl.Metrics().Flows()); n != 0 {
		t.Fatalf("RetainSketch retained %d flows", n)
	}
}

// Sketch-retention sweeps stay deterministic across parallelism — the
// Result (including the TelemetrySummary and its windowed series) is a
// pure function of the Scenario value.
func TestRetainSketchParallelDeterminism(t *testing.T) {
	mk := func() []scenario.Scenario {
		var scs []scenario.Scenario
		for _, kind := range []opera.Kind{opera.KindOpera, opera.KindExpander} {
			for _, load := range []float64{0.02, 0.05} {
				scs = append(scs, scenario.Scenario{
					Name: "sk", Kind: kind, Seed: 11,
					Options: []opera.Option{
						opera.WithRetention(opera.RetainSketch(opera.SketchOptions{})),
					},
					Sources: []scenario.Source{scenario.TagSource("ws",
						scenario.Poisson(workload.Websearch(), load, 4*eventsim.Millisecond, 1_000_000))},
					Duration: 60 * eventsim.Millisecond,
				})
			}
		}
		return scs
	}
	seq, err := scenario.RunScenarios(context.Background(), mk(), scenario.Parallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := scenario.RunScenarios(context.Background(), mk(), scenario.Parallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i].Err != "" {
			t.Fatalf("scenario %d: %s", i, seq[i].Err)
		}
		if !seq[i].Equal(par[i]) {
			t.Fatalf("scenario %d diverges across parallelism:\nP1: %+v\nP8: %+v", i, seq[i], par[i])
		}
		if seq[i].Telemetry == nil || seq[i].Telemetry.All.N == 0 {
			t.Fatalf("scenario %d: empty telemetry summary", i)
		}
	}
}

// Default retention carries no telemetry summary and keeps Result shape
// unchanged.
func TestRetainAllHasNoTelemetry(t *testing.T) {
	res := scenario.Run(scenario.Scenario{
		Name: "plain", Kind: opera.KindOpera, Seed: 3,
		Workload: scenario.ShuffleN(8, 50_000, eventsim.Millisecond),
		Duration: 500 * eventsim.Millisecond,
	})
	if res.Err != "" {
		t.Fatal(res.Err)
	}
	if res.Telemetry != nil {
		t.Fatal("RetainAll Result should not carry telemetry")
	}
}

// Fault events now apply to RotorNet — the third fabric with a
// FaultInjector — and compose with sketch retention.
func TestFaultEventsOnRotorNet(t *testing.T) {
	res := scenario.Run(scenario.Scenario{
		Name: "rotor-faulted", Kind: opera.KindRotorNet, Seed: 5,
		Options: []opera.Option{
			opera.WithRacks(8), opera.WithHostsPerRack(2), opera.WithUplinks(4),
			opera.WithRetention(opera.RetainSketch(opera.SketchOptions{})),
		},
		Workload: scenario.Bulk(scenario.ShuffleN(8, 100_000, 100*eventsim.Microsecond)),
		Events: []scenario.Event{
			scenario.At(0, scenario.FailLink(2, 1)),
			scenario.At(5*eventsim.Millisecond, scenario.RecoverLink(2, 1)),
		},
		Duration: 2000 * eventsim.Millisecond,
	})
	if res.Err != "" {
		t.Fatalf("fault events on rotornet should be supported: %s", res.Err)
	}
	if !res.Completed {
		t.Fatalf("faulted rotornet shuffle incomplete: %d/%d", res.FlowsDone, res.FlowsTotal)
	}
	if res.Telemetry == nil || res.Bulk.N != res.FlowsDone {
		t.Fatalf("telemetry summary missing or inconsistent: %+v", res.Telemetry)
	}
}
