//go:build !race

package scenario_test

// raceEnabled reports whether this test binary was built with -race.
const raceEnabled = false
