package scenario_test

import (
	"context"
	"testing"

	opera "github.com/opera-net/opera"
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/sim"
	"github.com/opera-net/opera/internal/workload"
	"github.com/opera-net/opera/scenario"
)

// Gray-failure schedules at the scenario layer: lossy, degraded and
// flapping links are part of the deterministic Scenario contract.

// graySweep is a batch mixing every gray fault kind with clean cuts,
// across two fabrics.
func graySweep() []scenario.Scenario {
	return []scenario.Scenario{
		{
			Name: "opera-gray",
			Kind: opera.KindOpera,
			Seed: 7,
			Events: []scenario.Event{
				scenario.At(100*eventsim.Microsecond, scenario.LossyLink(2, 1, 0.3)),
				scenario.At(200*eventsim.Microsecond, scenario.DegradedLink(5, 0, 0.5)),
				scenario.At(300*eventsim.Microsecond, scenario.FlappingLink(9, 3, eventsim.Millisecond, eventsim.Millisecond)),
				scenario.At(400*eventsim.Microsecond, scenario.FailLink(1, 1)),
				scenario.At(5*eventsim.Millisecond, scenario.RecoverLink(2, 1)),
				scenario.At(5*eventsim.Millisecond, scenario.RecoverLink(9, 3)),
			},
			Workload: scenario.ShuffleN(12, 25_000, eventsim.Millisecond),
			Duration: 4000 * eventsim.Millisecond,
		},
		{
			Name: "clos-gray",
			Kind: opera.KindFoldedClos,
			Seed: 7,
			Events: []scenario.Event{
				scenario.At(100*eventsim.Microsecond, scenario.LossyLink(0, 1, 0.5)),
				scenario.At(200*eventsim.Microsecond, scenario.FlappingLink(3, 0, 500*eventsim.Microsecond, 500*eventsim.Microsecond)),
				scenario.At(6*eventsim.Millisecond, scenario.RecoverLink(3, 0)),
			},
			Workload: scenario.ShuffleN(12, 25_000, eventsim.Millisecond),
			Duration: 4000 * eventsim.Millisecond,
		},
	}
}

// Gray faults preserve the runner's core guarantee: byte-identical
// Results at any parallelism. The lossy draws come from per-link seeded
// generators, so scheduling order cannot perturb them.
func TestGrayFaultDeterminismUnderParallelism(t *testing.T) {
	scs := graySweep()
	seq, err := scenario.RunScenarios(context.Background(), scs, scenario.Parallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := scenario.RunScenarios(context.Background(), scs, scenario.Parallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := range scs {
		if seq[i].Err != "" {
			t.Fatalf("scenario %d (%s): %s", i, scs[i].Name, seq[i].Err)
		}
		if !seq[i].Equal(par[i]) {
			t.Errorf("scenario %d (%s): gray-fault results diverge across parallelism", i, scs[i].Name)
		}
		if !seq[i].Completed {
			t.Errorf("scenario %d (%s): incomplete (%d/%d flows)",
				i, scs[i].Name, seq[i].FlowsDone, seq[i].FlowsTotal)
		}
	}
}

// A flap cycle that is recovered before any flow arrives leaves no
// residue: the faulted run's flow metrics match the no-fault baseline
// exactly (tables rebuild to the healthy state, impairments clear, and
// nothing was queued on the flapping cable). SimEvents differs — the
// flap transitions themselves — so the comparison is per-field, not
// Result.Equal.
func TestFlapRecoveryRestoresBaselineFaultFree(t *testing.T) {
	// Flows arrive strictly after the flap is recovered at 5 ms.
	late := make([]workload.FlowSpec, 0, 24)
	for _, f := range workload.Shuffle(12, 25_000, eventsim.Millisecond, 1) {
		f.Arrival += 6 * eventsim.Millisecond
		late = append(late, f)
	}
	mk := func(events []scenario.Event) scenario.Scenario {
		return scenario.Scenario{
			Name: "flap-baseline", Kind: opera.KindOpera, Seed: 1,
			Workload: scenario.Fixed(late),
			Events:   events,
			Duration: 4000 * eventsim.Millisecond,
		}
	}
	base := scenario.Run(mk(nil))
	flapped := scenario.Run(mk([]scenario.Event{
		scenario.At(200*eventsim.Microsecond, scenario.FlappingLink(4, 2, 700*eventsim.Microsecond, 900*eventsim.Microsecond)),
		scenario.At(5*eventsim.Millisecond, scenario.RecoverLink(4, 2)),
	}))
	if base.Err != "" || flapped.Err != "" {
		t.Fatalf("errs: base=%q flapped=%q", base.Err, flapped.Err)
	}
	if !base.Completed || !flapped.Completed {
		t.Fatalf("completion: base=%v flapped=%v", base.Completed, flapped.Completed)
	}
	if flapped.FlowsDone != base.FlowsDone || flapped.FlowsTotal != base.FlowsTotal {
		t.Fatalf("flow counts diverge: base %d/%d, flapped %d/%d",
			base.FlowsDone, base.FlowsTotal, flapped.FlowsDone, flapped.FlowsTotal)
	}
	if flapped.All != base.All {
		t.Fatalf("FCT stats diverge after full recovery:\n base:    %+v\n flapped: %+v", base.All, flapped.All)
	}
	if flapped.ThroughputGbps != base.ThroughputGbps {
		t.Fatalf("throughput diverges after full recovery: base %g, flapped %g",
			base.ThroughputGbps, flapped.ThroughputGbps)
	}
}

// The folded Clos runs a full failure-figure-style scenario end to end:
// random cable failures across both tiers plus an aggregation-switch
// outage with recovery, under a real workload — flows complete, traffic
// moves, and the Result is parallelism-independent.
func TestClosFailureFigureScenario(t *testing.T) {
	mk := func() []scenario.Scenario {
		return []scenario.Scenario{{
			Name: "clos-failure-figure",
			Kind: opera.KindFoldedClos,
			Seed: 3,
			Events: []scenario.Event{
				scenario.At(200*eventsim.Microsecond, scenario.FailRandomLinks(0.04)),
				scenario.At(400*eventsim.Microsecond, scenario.FailTierSwitch(sim.ClosTierAgg, 1)),
				scenario.At(8*eventsim.Millisecond, scenario.RecoverTierSwitch(sim.ClosTierAgg, 1)),
			},
			Workload: scenario.ShuffleN(16, 25_000, eventsim.Millisecond),
			Duration: 4000 * eventsim.Millisecond,
		}}
	}
	seq, err := scenario.RunScenarios(context.Background(), mk(), scenario.Parallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := scenario.RunScenarios(context.Background(), mk(), scenario.Parallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	res := seq[0]
	if res.Err != "" {
		t.Fatal(res.Err)
	}
	if !res.Completed || res.FlowsDone != res.FlowsTotal {
		t.Fatalf("faulted Clos run incomplete: %d/%d", res.FlowsDone, res.FlowsTotal)
	}
	if res.ThroughputGbps <= 0 {
		t.Fatalf("faulted Clos moved no traffic: %+v", res)
	}
	if !res.Equal(par[0]) {
		t.Fatal("Clos failure-figure scenario not deterministic across parallelism")
	}
}
