package scenario_test

import (
	"context"
	"testing"

	opera "github.com/opera-net/opera"
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/sim"
	"github.com/opera-net/opera/internal/workload"
	"github.com/opera-net/opera/scenario"
)

// sourceSweep exercises the streaming workload surface across
// architectures: lazy Poisson, a tagged two-source mix, incast bursts,
// and an adapted legacy shuffle, each at two seeds. (The folded Clos is
// left to the legacy sweep — its 192 hosts dominate race-detector time.)
func sourceSweep() []scenario.Scenario {
	var scs []scenario.Scenario
	for _, kind := range []opera.Kind{opera.KindOpera, opera.KindExpander} {
		for _, seed := range []int64{1, 2} {
			scs = append(scs,
				scenario.Scenario{
					Name: "poisson-" + kind.String(),
					Kind: kind,
					Seed: seed,
					// Fixed-size flows keep the arrival rate high enough for a
					// short window (heavy-tailed means imply few arrivals).
					Sources:  []scenario.Source{scenario.Poisson(workload.Fixed(100_000), 0.02, 4*eventsim.Millisecond, 0)},
					Duration: 2000 * eventsim.Millisecond,
				},
				scenario.Scenario{
					Name: "mixed-" + kind.String(),
					Kind: kind,
					Seed: seed,
					Sources: []scenario.Source{
						scenario.TagSource("bulk", scenario.BulkSource(scenario.Adapt(scenario.ShuffleN(8, 20_000, eventsim.Millisecond)))),
						scenario.TagSource("web", scenario.Poisson(workload.Websearch(), 0.01, 4*eventsim.Millisecond, 200_000)),
					},
					Duration: 2000 * eventsim.Millisecond,
				},
				scenario.Scenario{
					Name:     "incast-" + kind.String(),
					Kind:     kind,
					Seed:     seed,
					Sources:  []scenario.Source{scenario.Incast(8, 20_000, eventsim.Millisecond, 4)},
					Duration: 2000 * eventsim.Millisecond,
				})
		}
	}
	return scs
}

// Source-driven scenarios keep the runner's core guarantee: identical
// Results at any parallelism (this test also runs under -race in CI's
// fast lane).
func TestSourceScenarioDeterminismUnderParallelism(t *testing.T) {
	scs := sourceSweep()
	sequential, err := scenario.RunScenarios(context.Background(), scs, scenario.Parallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := scenario.RunScenarios(context.Background(), scs, scenario.Parallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := range scs {
		if sequential[i].Err != "" {
			t.Fatalf("scenario %d (%s): %s", i, scs[i].Name, sequential[i].Err)
		}
		if !sequential[i].Equal(parallel[i]) {
			t.Errorf("scenario %d (%s seed %d): results diverge\n sequential: %+v\n parallel:   %+v",
				i, scs[i].Name, scs[i].Seed, sequential[i], parallel[i])
		}
		if !sequential[i].Completed {
			t.Errorf("scenario %d (%s): incomplete (%d/%d flows)",
				i, scs[i].Name, sequential[i].FlowsDone, sequential[i].FlowsTotal)
		}
		if sequential[i].FlowsTotal == 0 {
			t.Errorf("scenario %d (%s): no flows", i, scs[i].Name)
		}
	}
}

// Rerunning a Source scenario reproduces the same Result exactly — the
// per-seed determinism the parallel guarantee rests on.
func TestSourceScenarioDeterministicPerSeed(t *testing.T) {
	sc := sourceSweep()[1] // the two-source mixed scenario on Opera
	a := scenario.Run(sc)
	b := scenario.Run(sc)
	if a.Err != "" {
		t.Fatal(a.Err)
	}
	if !a.Equal(b) {
		t.Fatalf("same scenario, different results:\n a: %+v\n b: %+v", a, b)
	}
	if len(a.ByTag) != 2 {
		t.Fatalf("ByTag = %v, want bulk+web", a.ByTag)
	}
}

// scenario.Poisson calibrates against the cluster's configured link rate:
// the same load fraction on a faster link must offer proportionally more
// flows (regression for the hardcoded-10G bug).
func TestPoissonDerivesClusterLinkRate(t *testing.T) {
	run := func(rate float64) int {
		cfg := sim.DefaultConfig()
		cfg.LinkRateGbps = rate
		res := scenario.Run(scenario.Scenario{
			Name:     "rate",
			Kind:     opera.KindOpera,
			Seed:     1,
			Options:  []opera.Option{opera.WithSimConfig(cfg)},
			Sources:  []scenario.Source{scenario.Poisson(workload.Fixed(1500), 0.01, 4*eventsim.Millisecond, 0)},
			Duration: 5 * eventsim.Millisecond,
		})
		if res.Err != "" {
			t.Fatal(res.Err)
		}
		return res.FlowsTotal
	}
	at10, at40 := run(10), run(40)
	ratio := float64(at40) / float64(at10)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("flow count ratio 40G/10G = %.2f (%d vs %d), want ≈4", ratio, at40, at10)
	}
}

// Workload and Sources compose on one Scenario.
func TestWorkloadAndSourcesCompose(t *testing.T) {
	res := scenario.Run(scenario.Scenario{
		Name:     "both",
		Kind:     opera.KindOpera,
		Seed:     1,
		Workload: scenario.Tag("legacy", scenario.ShuffleN(4, 10_000, 0)),
		Sources:  []scenario.Source{scenario.TagSource("stream", scenario.Poisson(workload.Fixed(50_000), 0.02, 2*eventsim.Millisecond, 0))},
		Duration: 2000 * eventsim.Millisecond,
	})
	if res.Err != "" {
		t.Fatal(res.Err)
	}
	if res.ByTag["legacy"].FlowsTotal != 4*3 || res.ByTag["stream"].FlowsTotal == 0 {
		t.Fatalf("composition lost a side: %+v", res.ByTag)
	}
	if !res.Completed {
		t.Fatalf("incomplete: %d/%d", res.FlowsDone, res.FlowsTotal)
	}
}

// A Ramp source admits fewer flows than its ceiling Poisson but remains
// deterministic and completes.
func TestRampSourceScenario(t *testing.T) {
	window := 4 * eventsim.Millisecond
	ramp := scenario.Ramp(workload.Fixed(100_000), 0.04,
		func(t eventsim.Time) float64 { return 0.04 * float64(t) / float64(window) },
		window, 0)
	mk := func() scenario.Scenario {
		return scenario.Scenario{
			Name: "ramp", Kind: opera.KindOpera, Seed: 5,
			Sources:  []scenario.Source{ramp},
			Duration: 2000 * eventsim.Millisecond,
		}
	}
	a, b := scenario.Run(mk()), scenario.Run(mk())
	if a.Err != "" {
		t.Fatal(a.Err)
	}
	if !a.Equal(b) {
		t.Fatal("ramp scenario not deterministic")
	}
	ceiling := scenario.Run(scenario.Scenario{
		Name: "ceiling", Kind: opera.KindOpera, Seed: 5,
		Sources:  []scenario.Source{scenario.Poisson(workload.Fixed(100_000), 0.04, window, 0)},
		Duration: 2000 * eventsim.Millisecond,
	})
	if a.FlowsTotal == 0 || a.FlowsTotal >= ceiling.FlowsTotal {
		t.Fatalf("ramp flows = %d, ceiling = %d; want 0 < ramp < ceiling", a.FlowsTotal, ceiling.FlowsTotal)
	}
}
