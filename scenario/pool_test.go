package scenario_test

import (
	"testing"

	"github.com/opera-net/opera/scenario"
)

// The eventsim engine recycles Event objects on a free list. A mixed Opera
// scenario — tags, a fault-and-recovery schedule, probes — churns that pool
// through millions of recycle/reuse cycles (every packet serialization,
// propagation, pull pace, RTO re-arm and slice tick). Running the identical
// scenario twice must produce byte-identical Results: any pool-state leak
// into scheduling order (a stale cancelled flag, a corrupted tie-break seq)
// would show up as diverging FCTs or probe series. Equal-ns event ties are
// the sensitive part — see the fig08 canary — and the second run starts
// from a fresh engine while the first has already churned its pool, so both
// cold and churned pools must agree. Engine-level recycle-after-cancel and
// tie-order-after-churn tests live in internal/eventsim.
func TestPooledEngineDeterminism(t *testing.T) {
	sc := hookSweep()[0] // tagged mixed workload + faults + probes on Opera
	first := scenario.Run(sc)
	if first.Err != "" {
		t.Fatal(first.Err)
	}
	second := scenario.Run(sc)
	if !first.Equal(second) {
		t.Fatalf("identical scenario diverged across pooled-engine runs\n first: %+v\n second: %+v",
			first, second)
	}
	if !first.Completed {
		t.Fatalf("scenario incomplete: %d/%d flows", first.FlowsDone, first.FlowsTotal)
	}
}
