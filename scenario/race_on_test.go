//go:build race

package scenario_test

// raceEnabled reports that this test binary was built with -race; heavy
// packet-level tests that assert numeric properties (not concurrency)
// skip themselves to keep the race lane fast.
const raceEnabled = true
