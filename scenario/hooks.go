package scenario

import (
	"fmt"
	"math/rand"

	opera "github.com/opera-net/opera"
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/sim"
	"github.com/opera-net/opera/internal/workload"
)

// This file is the Scenario hooks layer: workload tagging, a timed fault
// schedule, and pluggable probes. Together they let the paper's
// beyond-FCT experiments — §5.2's app-tagged mixed workloads and §5.5's
// fault sweeps — be written as plain Scenario values and fanned out
// through RunScenarios like any other sweep.

// Tag wraps a Workload so every generated flow carries the given tag.
// Tagged flows appear as a per-tag breakdown in Result.ByTag.
func Tag(tag string, w Workload) Workload {
	return func(numHosts, hostsPerRack int, seed int64) []workload.FlowSpec {
		return workload.Tagged(tag, w(numHosts, hostsPerRack, seed))
	}
}

// Bulk wraps a Workload so every generated flow is application-tagged for
// bulk service regardless of its size (§3.4) — the per-flow form of
// opera.WithAppTaggedBulk, for mixed workloads where only one component
// is tagged.
func Bulk(w Workload) Workload {
	return func(numHosts, hostsPerRack int, seed int64) []workload.FlowSpec {
		return workload.Bulked(w(numHosts, hostsPerRack, seed))
	}
}

// Merge concatenates workloads into one flow list, in argument order.
func Merge(ws ...Workload) Workload {
	return func(numHosts, hostsPerRack int, seed int64) []workload.FlowSpec {
		var out []workload.FlowSpec
		for _, w := range ws {
			out = append(out, w(numHosts, hostsPerRack, seed)...)
		}
		return out
	}
}

// Event is one scheduled action on a running cluster: At names the virtual
// time, Action what happens. Build Events with the At constructor:
//
//	scenario.At(500*eventsim.Microsecond, scenario.FailLink(3, 2))
type Event struct {
	At     eventsim.Time
	Action Action
}

// At schedules an Action at the given virtual time.
func At(t eventsim.Time, a Action) Event { return Event{At: t, Action: a} }

// Action is a deferred operation on the cluster. Actions that draw
// randomness (FailRandomLinks) use a generator derived from the
// Scenario's seed, so a Scenario's fault schedule is as deterministic as
// its workload.
type Action struct {
	name  string
	apply func(cl *opera.Cluster, rng *rand.Rand, at eventsim.Time) error
}

func (a Action) String() string { return a.name }

// faultAction wraps an injector operation with the capability check: the
// fabric must model runtime faults (today: Opera, the expander and
// RotorNet; the folded Clos stays deferred on multi-tier link
// coordinates).
func faultAction(name string, f func(inj sim.FaultInjector, cl *opera.Cluster, rng *rand.Rand, at eventsim.Time) error) Action {
	return Action{name: name, apply: func(cl *opera.Cluster, rng *rand.Rand, at eventsim.Time) error {
		inj := cl.Faults()
		if inj == nil {
			return fmt.Errorf("scenario: %s: architecture %v does not support runtime fault injection", name, cl.Kind())
		}
		return f(inj, cl, rng, at)
	}}
}

func checkRack(cl *opera.Cluster, name string, rack int) error {
	if rack < 0 || rack >= cl.Network().NumRacks() {
		return fmt.Errorf("scenario: %s: rack %d out of range [0,%d)", name, rack, cl.Network().NumRacks())
	}
	return nil
}

func checkSwitch(cl *opera.Cluster, name string, sw int) error {
	if u, ok := cl.Network().(interface{ Uplinks() int }); ok {
		if sw < 0 || sw >= u.Uplinks() {
			return fmt.Errorf("scenario: %s: switch %d out of range [0,%d)", name, sw, u.Uplinks())
		}
	} else if sw < 0 {
		return fmt.Errorf("scenario: %s: negative switch %d", name, sw)
	}
	return nil
}

// FailLink fails the rack↔switch cable.
func FailLink(rack, sw int) Action {
	name := fmt.Sprintf("fail-link(%d,%d)", rack, sw)
	return faultAction(name, func(inj sim.FaultInjector, cl *opera.Cluster, _ *rand.Rand, at eventsim.Time) error {
		if err := checkRack(cl, name, rack); err != nil {
			return err
		}
		if err := checkSwitch(cl, name, sw); err != nil {
			return err
		}
		inj.FailLink(rack, sw, at)
		return nil
	})
}

// FailToR fails a whole ToR: its hosts drop off and its circuits go dark.
func FailToR(rack int) Action {
	name := fmt.Sprintf("fail-tor(%d)", rack)
	return faultAction(name, func(inj sim.FaultInjector, cl *opera.Cluster, _ *rand.Rand, at eventsim.Time) error {
		if err := checkRack(cl, name, rack); err != nil {
			return err
		}
		inj.FailToR(rack, at)
		return nil
	})
}

// FailSwitch fails a rotor switch entirely.
func FailSwitch(sw int) Action {
	name := fmt.Sprintf("fail-switch(%d)", sw)
	return faultAction(name, func(inj sim.FaultInjector, cl *opera.Cluster, _ *rand.Rand, at eventsim.Time) error {
		if err := checkSwitch(cl, name, sw); err != nil {
			return err
		}
		inj.FailSwitch(sw, at)
		return nil
	})
}

// RecoverLink brings a failed rack↔switch cable back up.
func RecoverLink(rack, sw int) Action {
	name := fmt.Sprintf("recover-link(%d,%d)", rack, sw)
	return faultAction(name, func(inj sim.FaultInjector, cl *opera.Cluster, _ *rand.Rand, at eventsim.Time) error {
		if err := checkRack(cl, name, rack); err != nil {
			return err
		}
		if err := checkSwitch(cl, name, sw); err != nil {
			return err
		}
		inj.RecoverLink(rack, sw, at)
		return nil
	})
}

// RecoverToR brings a failed ToR back online.
func RecoverToR(rack int) Action {
	name := fmt.Sprintf("recover-tor(%d)", rack)
	return faultAction(name, func(inj sim.FaultInjector, cl *opera.Cluster, _ *rand.Rand, at eventsim.Time) error {
		if err := checkRack(cl, name, rack); err != nil {
			return err
		}
		inj.RecoverToR(rack, at)
		return nil
	})
}

// RecoverSwitch brings a failed rotor switch back into rotation.
func RecoverSwitch(sw int) Action {
	name := fmt.Sprintf("recover-switch(%d)", sw)
	return faultAction(name, func(inj sim.FaultInjector, cl *opera.Cluster, _ *rand.Rand, at eventsim.Time) error {
		if err := checkSwitch(cl, name, sw); err != nil {
			return err
		}
		inj.RecoverSwitch(sw, at)
		return nil
	})
}

// FailRandomLinks fails the given fraction of physical cables, chosen
// uniformly (the sampling of §5.5's link-failure sweeps) from the
// Scenario-seeded generator: the same Scenario fails the same links.
// Fabrics whose coordinate space names each cable from both ends (the
// expander) expose a deduplicated link universe so the fraction counts
// cables, not endpoints.
func FailRandomLinks(fraction float64) Action {
	name := fmt.Sprintf("fail-random-links(%g)", fraction)
	return faultAction(name, func(inj sim.FaultInjector, cl *opera.Cluster, rng *rand.Rand, at eventsim.Time) error {
		if !(fraction >= 0 && fraction <= 1) { // also rejects NaN
			return fmt.Errorf("scenario: %s: fraction must be in [0,1]", name)
		}
		if dl, ok := inj.(interface{ DistinctLinks() [][2]int }); ok {
			links := dl.DistinctLinks()
			k := int(fraction*float64(len(links)) + 0.5)
			if k > len(links) {
				k = len(links)
			}
			for _, idx := range rng.Perm(len(links))[:k] {
				inj.FailLink(links[idx][0], links[idx][1], at)
			}
			return nil
		}
		// Fabrics whose (rack, switch) coordinates map 1:1 to cables
		// (Opera: one port per rack per rotor switch).
		u, ok := cl.Network().(interface{ Uplinks() int })
		if !ok {
			return fmt.Errorf("scenario: %s: architecture %v does not expose uplinks", name, cl.Kind())
		}
		n, m := cl.Network().NumRacks(), u.Uplinks()
		k := int(fraction*float64(n*m) + 0.5)
		if k > n*m {
			k = n * m
		}
		for _, idx := range rng.Perm(n * m)[:k] {
			inj.FailLink(idx/m, idx%m, at)
		}
		return nil
	})
}

// Probe periodically samples a running cluster into a named time-series
// column of the Result. Build Probes with Sample.
type Probe struct {
	// Name labels the series in Result.Probes.
	Name string
	// Every is the sampling period: the probe fires at Every, 2·Every, …
	// up to the Scenario's Duration. Zero samples exactly once, at the
	// start of the run.
	Every eventsim.Time
	// Fn computes the sample. It runs inside the simulation (or, for
	// one-shot probes, immediately before it) and must only read.
	Fn func(cl *opera.Cluster, now eventsim.Time) float64
}

// Sample is a convenience constructor for Probe.
//
//	scenario.Sample("done_flows", eventsim.Millisecond,
//		func(cl *opera.Cluster, _ eventsim.Time) float64 {
//			done, _ := cl.Metrics().DoneCount()
//			return float64(done)
//		})
func Sample(name string, every eventsim.Time, fn func(cl *opera.Cluster, now eventsim.Time) float64) Probe {
	return Probe{Name: name, Every: every, Fn: fn}
}

// ProbeSeries is one probe's recorded samples, in firing order: sample i
// of a periodic probe was taken at virtual time (i+1)·Every; a one-shot
// probe (Every == 0) has a single sample from the start of the run.
type ProbeSeries struct {
	Name   string
	Every  eventsim.Time
	Values []float64
}

// eventSeedSalt decorrelates the fault-schedule generator from the
// topology and workload generators, which consume Scenario.Seed directly.
const eventSeedSalt = 0x5ca1ab1e

// applyHooks schedules the Scenario's fault events and starts its probes
// on a freshly built cluster. The returned series are filled in as the
// simulation runs.
func applyHooks(cl *opera.Cluster, sc Scenario) ([]ProbeSeries, error) {
	if len(sc.Events) > 0 {
		rng := rand.New(rand.NewSource(sc.Seed ^ eventSeedSalt))
		for _, ev := range sc.Events {
			if ev.At < 0 {
				return nil, fmt.Errorf("scenario: event %v at negative time %v", ev.Action, ev.At)
			}
			if ev.Action.apply == nil {
				return nil, fmt.Errorf("scenario: event at %v has no action", ev.At)
			}
			if err := ev.Action.apply(cl, rng, ev.At); err != nil {
				return nil, err
			}
		}
	}
	if len(sc.Probes) == 0 {
		return nil, nil
	}
	series := make([]ProbeSeries, len(sc.Probes))
	for i, p := range sc.Probes {
		if p.Fn == nil {
			return nil, fmt.Errorf("scenario: probe %q has no sample function", p.Name)
		}
		series[i] = ProbeSeries{Name: p.Name, Every: p.Every}
		if p.Every == 0 {
			series[i].Values = []float64{p.Fn(cl, cl.Engine().Now())}
			continue
		}
		if p.Every < 0 {
			return nil, fmt.Errorf("scenario: probe %q has negative period %v", p.Name, p.Every)
		}
		i, p := i, p
		var tick func()
		tick = func() {
			series[i].Values = append(series[i].Values, p.Fn(cl, cl.Engine().Now()))
			if next := cl.Engine().Now() + p.Every; next <= sc.Duration {
				cl.Engine().At(next, tick)
			}
		}
		if p.Every <= sc.Duration {
			cl.Engine().At(p.Every, tick)
		}
	}
	return series, nil
}
