package scenario

import (
	"fmt"
	"math/rand"

	opera "github.com/opera-net/opera"
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/sim"
	"github.com/opera-net/opera/internal/workload"
)

// This file is the Scenario hooks layer: workload tagging, a timed fault
// schedule, and pluggable probes. Together they let the paper's
// beyond-FCT experiments — §5.2's app-tagged mixed workloads and §5.5's
// fault sweeps — be written as plain Scenario values and fanned out
// through RunScenarios like any other sweep.

// Tag wraps a Workload so every generated flow carries the given tag.
// Tagged flows appear as a per-tag breakdown in Result.ByTag.
func Tag(tag string, w Workload) Workload {
	return func(numHosts, hostsPerRack int, seed int64) []workload.FlowSpec {
		return workload.Tagged(tag, w(numHosts, hostsPerRack, seed))
	}
}

// Bulk wraps a Workload so every generated flow is application-tagged for
// bulk service regardless of its size (§3.4) — the per-flow form of
// opera.WithAppTaggedBulk, for mixed workloads where only one component
// is tagged.
func Bulk(w Workload) Workload {
	return func(numHosts, hostsPerRack int, seed int64) []workload.FlowSpec {
		return workload.Bulked(w(numHosts, hostsPerRack, seed))
	}
}

// Merge concatenates workloads into one flow list, in argument order.
func Merge(ws ...Workload) Workload {
	return func(numHosts, hostsPerRack int, seed int64) []workload.FlowSpec {
		var out []workload.FlowSpec
		for _, w := range ws {
			out = append(out, w(numHosts, hostsPerRack, seed)...)
		}
		return out
	}
}

// Event is one scheduled action on a running cluster: At names the virtual
// time, Action what happens. Build Events with the At constructor:
//
//	scenario.At(500*eventsim.Microsecond, scenario.FailLink(3, 2))
type Event struct {
	At     eventsim.Time
	Action Action
}

// At schedules an Action at the given virtual time.
func At(t eventsim.Time, a Action) Event { return Event{At: t, Action: a} }

// Action is a deferred operation on the cluster. Actions that draw
// randomness (FailRandomLinks) use a generator derived from the
// Scenario's seed, so a Scenario's fault schedule is as deterministic as
// its workload.
type Action struct {
	name  string
	apply func(cl *opera.Cluster, rng *rand.Rand, at eventsim.Time) error
}

func (a Action) String() string { return a.name }

// faultAction wraps an injector operation with the capability check: the
// fabric must model runtime faults. All four architectures do (Opera, the
// expander, the folded Clos and RotorNet); a fabric outside the registry
// that does not implement sim.FaultNetwork reports it here. Target errors
// (a switch target on the expander, a tier the fabric lacks) surface from
// the injector itself, wrapped with the action name.
func faultAction(name string, f func(inj sim.FaultInjector, cl *opera.Cluster, rng *rand.Rand, at eventsim.Time) error) Action {
	return Action{name: name, apply: func(cl *opera.Cluster, rng *rand.Rand, at eventsim.Time) error {
		inj := cl.Faults()
		if inj == nil {
			return fmt.Errorf("scenario: %s: architecture %v does not support runtime fault injection", name, cl.Kind())
		}
		return f(inj, cl, rng, at)
	}}
}

// injectAction builds an Action that injects one structured fault.
func injectAction(name string, target sim.Target, fault sim.Fault) Action {
	return faultAction(name, func(inj sim.FaultInjector, _ *opera.Cluster, _ *rand.Rand, at eventsim.Time) error {
		if err := inj.Inject(target, fault, at); err != nil {
			return fmt.Errorf("scenario: %s: %w", name, err)
		}
		return nil
	})
}

// Inject schedules an arbitrary structured fault — the fully general form
// of the convenience constructors below:
//
//	scenario.At(t, scenario.Inject(
//		sim.SwitchTarget(sim.ClosTierCore, 3), sim.DownFault()))
func Inject(target sim.Target, fault sim.Fault) Action {
	return injectAction(fmt.Sprintf("inject(%v,%v)", target, fault), target, fault)
}

// Recover schedules the recovery of any previously injected fault on the
// target (down, gray, or flapping).
func Recover(target sim.Target) Action {
	name := fmt.Sprintf("recover(%v)", target)
	return faultAction(name, func(inj sim.FaultInjector, _ *opera.Cluster, _ *rand.Rand, at eventsim.Time) error {
		if err := inj.Recover(target, at); err != nil {
			return fmt.Errorf("scenario: %s: %w", name, err)
		}
		return nil
	})
}

// FailLink fails the rack↔switch cable (a flat tier-0 link coordinate,
// which every fabric interprets — on the folded Clos it names a ToR
// uplink).
func FailLink(rack, sw int) Action {
	return injectAction(fmt.Sprintf("fail-link(%d,%d)", rack, sw),
		sim.LinkTarget(sim.FlatLink(rack, sw)), sim.DownFault())
}

// FailToR fails a whole ToR: its hosts drop off and its circuits go dark.
func FailToR(rack int) Action {
	return injectAction(fmt.Sprintf("fail-tor(%d)", rack),
		sim.ToRTarget(rack), sim.DownFault())
}

// FailSwitch fails a tier-0 fabric switch entirely (Opera/RotorNet: a
// rotor switch). Fabrics without tier-0 switches report
// sim.ErrUnsupportedTarget; multi-tier fabrics take FailTierSwitch.
func FailSwitch(sw int) Action {
	return injectAction(fmt.Sprintf("fail-switch(%d)", sw),
		sim.SwitchTarget(sw), sim.DownFault())
}

// FailTierSwitch fails a switch addressed by tier — the folded Clos's
// aggregation (sim.ClosTierAgg) and core (sim.ClosTierCore) layers.
func FailTierSwitch(tier, id int) Action {
	return injectAction(fmt.Sprintf("fail-switch(t%d,%d)", tier, id),
		sim.TierSwitchTarget(tier, id), sim.DownFault())
}

// LossyLink makes the rack↔switch cable drop the given fraction of
// packets that complete serialization (a gray failure: the link stays
// up and keeps attracting traffic).
func LossyLink(rack, sw int, rate float64) Action {
	return injectAction(fmt.Sprintf("lossy-link(%d,%d,%g)", rack, sw, rate),
		sim.LinkTarget(sim.FlatLink(rack, sw)), sim.LossyFault(rate))
}

// DegradedLink derates the rack↔switch cable to the given fraction of
// line rate (a gray failure: serialization slows, nothing is dropped).
func DegradedLink(rack, sw int, fraction float64) Action {
	return injectAction(fmt.Sprintf("degraded-link(%d,%d,%g)", rack, sw, fraction),
		sim.LinkTarget(sim.FlatLink(rack, sw)), sim.DegradedFault(fraction))
}

// FlappingLink cycles the rack↔switch cable: up for the given duration,
// then down, repeating until recovered.
func FlappingLink(rack, sw int, up, down eventsim.Time) Action {
	return injectAction(fmt.Sprintf("flapping-link(%d,%d,%v,%v)", rack, sw, up, down),
		sim.LinkTarget(sim.FlatLink(rack, sw)), sim.FlappingFault(up, down))
}

// RecoverLink brings a failed rack↔switch cable back up (and clears any
// gray impairment or flap cycle on it).
func RecoverLink(rack, sw int) Action {
	name := fmt.Sprintf("recover-link(%d,%d)", rack, sw)
	return faultAction(name, func(inj sim.FaultInjector, _ *opera.Cluster, _ *rand.Rand, at eventsim.Time) error {
		if err := inj.Recover(sim.LinkTarget(sim.FlatLink(rack, sw)), at); err != nil {
			return fmt.Errorf("scenario: %s: %w", name, err)
		}
		return nil
	})
}

// RecoverToR brings a failed ToR back online.
func RecoverToR(rack int) Action {
	name := fmt.Sprintf("recover-tor(%d)", rack)
	return faultAction(name, func(inj sim.FaultInjector, _ *opera.Cluster, _ *rand.Rand, at eventsim.Time) error {
		if err := inj.Recover(sim.ToRTarget(rack), at); err != nil {
			return fmt.Errorf("scenario: %s: %w", name, err)
		}
		return nil
	})
}

// RecoverSwitch brings a failed tier-0 fabric switch back.
func RecoverSwitch(sw int) Action {
	name := fmt.Sprintf("recover-switch(%d)", sw)
	return faultAction(name, func(inj sim.FaultInjector, _ *opera.Cluster, _ *rand.Rand, at eventsim.Time) error {
		if err := inj.Recover(sim.SwitchTarget(sw), at); err != nil {
			return fmt.Errorf("scenario: %s: %w", name, err)
		}
		return nil
	})
}

// RecoverTierSwitch brings a tier-addressed switch back.
func RecoverTierSwitch(tier, id int) Action {
	name := fmt.Sprintf("recover-switch(t%d,%d)", tier, id)
	return faultAction(name, func(inj sim.FaultInjector, _ *opera.Cluster, _ *rand.Rand, at eventsim.Time) error {
		if err := inj.Recover(sim.TierSwitchTarget(tier, id), at); err != nil {
			return fmt.Errorf("scenario: %s: %w", name, err)
		}
		return nil
	})
}

// FailRandomLinks fails the given fraction of physical cables, chosen
// uniformly (the sampling of §5.5's link-failure sweeps) from the
// Scenario-seeded generator: the same Scenario fails the same links. The
// sample space is the injector's Links() universe — one coordinate per
// physical cable on every fabric (the expander deduplicates its
// two-ended naming; the Clos spans both cable tiers), so the fraction
// counts cables, not endpoints.
func FailRandomLinks(fraction float64) Action {
	name := fmt.Sprintf("fail-random-links(%g)", fraction)
	return faultAction(name, func(inj sim.FaultInjector, _ *opera.Cluster, rng *rand.Rand, at eventsim.Time) error {
		if !(fraction >= 0 && fraction <= 1) { // also rejects NaN
			return fmt.Errorf("scenario: %s: fraction must be in [0,1]", name)
		}
		links := inj.Links()
		k := int(fraction*float64(len(links)) + 0.5)
		if k > len(links) {
			k = len(links)
		}
		for _, idx := range rng.Perm(len(links))[:k] {
			if err := inj.Inject(sim.LinkTarget(links[idx]), sim.DownFault(), at); err != nil {
				return fmt.Errorf("scenario: %s: %w", name, err)
			}
		}
		return nil
	})
}

// Probe periodically samples a running cluster into a named time-series
// column of the Result. Build Probes with Sample.
type Probe struct {
	// Name labels the series in Result.Probes.
	Name string
	// Every is the sampling period: the probe fires at Every, 2·Every, …
	// up to the Scenario's Duration. Zero samples exactly once, at the
	// start of the run.
	Every eventsim.Time
	// Fn computes the sample. It runs inside the simulation (or, for
	// one-shot probes, immediately before it) and must only read.
	Fn func(cl *opera.Cluster, now eventsim.Time) float64
}

// Sample is a convenience constructor for Probe.
//
//	scenario.Sample("done_flows", eventsim.Millisecond,
//		func(cl *opera.Cluster, _ eventsim.Time) float64 {
//			done, _ := cl.Metrics().DoneCount()
//			return float64(done)
//		})
func Sample(name string, every eventsim.Time, fn func(cl *opera.Cluster, now eventsim.Time) float64) Probe {
	return Probe{Name: name, Every: every, Fn: fn}
}

// ProbeSeries is one probe's recorded samples, in firing order: sample i
// of a periodic probe was taken at virtual time (i+1)·Every; a one-shot
// probe (Every == 0) has a single sample from the start of the run.
type ProbeSeries struct {
	Name   string
	Every  eventsim.Time
	Values []float64
}

// eventSeedSalt decorrelates the fault-schedule generator from the
// topology and workload generators, which consume Scenario.Seed directly.
const eventSeedSalt = 0x5ca1ab1e

// applyHooks schedules the Scenario's fault events and starts its probes
// on a freshly built cluster. The returned series are filled in as the
// simulation runs.
func applyHooks(cl *opera.Cluster, sc Scenario) ([]ProbeSeries, error) {
	if len(sc.Events) > 0 {
		rng := rand.New(rand.NewSource(sc.Seed ^ eventSeedSalt))
		for _, ev := range sc.Events {
			if ev.At < 0 {
				return nil, fmt.Errorf("scenario: event %v at negative time %v", ev.Action, ev.At)
			}
			if ev.Action.apply == nil {
				return nil, fmt.Errorf("scenario: event at %v has no action", ev.At)
			}
			if err := ev.Action.apply(cl, rng, ev.At); err != nil {
				return nil, err
			}
		}
	}
	if len(sc.Probes) == 0 {
		return nil, nil
	}
	series := make([]ProbeSeries, len(sc.Probes))
	for i, p := range sc.Probes {
		if p.Fn == nil {
			return nil, fmt.Errorf("scenario: probe %q has no sample function", p.Name)
		}
		series[i] = ProbeSeries{Name: p.Name, Every: p.Every}
		if p.Every == 0 {
			series[i].Values = []float64{p.Fn(cl, cl.Engine().Now())}
			continue
		}
		if p.Every < 0 {
			return nil, fmt.Errorf("scenario: probe %q has negative period %v", p.Name, p.Every)
		}
		i, p := i, p
		var tick func()
		tick = func() {
			series[i].Values = append(series[i].Values, p.Fn(cl, cl.Engine().Now()))
			if next := cl.Engine().Now() + p.Every; next <= sc.Duration {
				cl.Engine().At(next, tick)
			}
		}
		if p.Every <= sc.Duration {
			cl.Engine().At(p.Every, tick)
		}
	}
	return series, nil
}
