package scenario

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"strings"
	"testing"

	opera "github.com/opera-net/opera"
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/workload"
)

// TestSpecMatchesHandBuiltScenario: a Spec-resolved scenario must produce
// a Result identical to the equivalent hand-built Scenario — the bridge
// that lets sharded sweeps reproduce local runs.
func TestSpecMatchesHandBuiltScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("packet-level scenario run")
	}
	sp := Spec{
		Name:     "cell",
		Network:  "opera",
		Seed:     3,
		Duration: 8 * eventsim.Millisecond,
		Sources: []SourceSpec{{
			Type: "poisson", Dist: "websearch", Load: 0.05,
			Window: 2 * eventsim.Millisecond, MaxFlowBytes: 1_000_000, Tag: "ws",
		}},
		Retention: RetentionSpec{Sketch: true},
	}
	sc, err := sp.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	got := Run(sc)
	if got.Err != "" {
		t.Fatalf("spec scenario failed: %s", got.Err)
	}

	want := Run(Scenario{
		Name:    "cell",
		Kind:    opera.KindOpera,
		Seed:    3,
		Options: []opera.Option{opera.WithRetention(opera.RetainSketch(opera.SketchOptions{}))},
		Sources: []Source{TagSource("ws",
			Poisson(workload.Websearch(), 0.05, 2*eventsim.Millisecond, 1_000_000))},
		Duration: 8 * eventsim.Millisecond,
	})
	if !got.Equal(want) {
		t.Fatalf("spec-built result differs from hand-built:\ngot  %+v\nwant %+v", got, want)
	}
	if got.Telemetry == nil {
		t.Fatal("sketch retention spec produced no telemetry summary")
	}
}

// TestSpecGobRoundTrip: a Spec must survive the coordinator→worker wire
// (gob) and resolve to the same Scenario on the far side.
func TestSpecGobRoundTrip(t *testing.T) {
	sp := Spec{
		Name: "x", Network: "expander", Seed: 9, Duration: eventsim.Millisecond,
		Racks: 8, HostsPerRack: 3, Uplinks: 5,
		Sources: []SourceSpec{
			{Type: "shuffle", FlowBytes: 50_000, Stagger: 10 * eventsim.Microsecond, Participants: 16},
			{Type: "incast", Fanin: 8, FlowBytes: 2_000, Period: 100 * eventsim.Microsecond, Bursts: 3, Bulk: true, Tag: "in"},
		},
		Retention: RetentionSpec{Sketch: true, Alpha: 0.02},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(sp); err != nil {
		t.Fatal(err)
	}
	var got Spec
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sp) {
		t.Fatalf("gob round trip changed the spec:\ngot  %+v\nwant %+v", got, sp)
	}
	if _, err := got.Scenario(); err != nil {
		t.Fatalf("round-tripped spec does not resolve: %v", err)
	}
}

func TestSpecErrors(t *testing.T) {
	base := Spec{
		Name: "e", Network: "opera", Duration: eventsim.Millisecond,
		Sources: []SourceSpec{{Type: "poisson", Dist: "datamining", Load: 0.1, Window: eventsim.Millisecond}},
	}
	for name, mutate := range map[string]func(*Spec){
		"unknown-network":  func(sp *Spec) { sp.Network = "torus" },
		"no-sources":       func(sp *Spec) { sp.Sources = nil },
		"zero-duration":    func(sp *Spec) { sp.Duration = 0 },
		"unknown-type":     func(sp *Spec) { sp.Sources[0].Type = "fractal" },
		"unknown-dist":     func(sp *Spec) { sp.Sources[0].Dist = "uniform" },
		"zero-load":        func(sp *Spec) { sp.Sources[0].Load = 0 },
		"zero-window":      func(sp *Spec) { sp.Sources[0].Window = 0 },
		"bad-alpha":        func(sp *Spec) { sp.Retention = RetentionSpec{Sketch: true, Alpha: 1.5} },
		"shuffle-no-bytes": func(sp *Spec) { sp.Sources[0] = SourceSpec{Type: "shuffle"} },
		"incast-no-fanin":  func(sp *Spec) { sp.Sources[0] = SourceSpec{Type: "incast", FlowBytes: 100, Bursts: 1} },
	} {
		sp := base
		sp.Sources = append([]SourceSpec{}, base.Sources...)
		mutate(&sp)
		if _, err := sp.Scenario(); err == nil {
			t.Errorf("%s: Scenario() succeeded, want error", name)
		}
	}
}

// TestSpecEventsGobRoundTrip: a fault schedule rides the same wire as
// the rest of the Spec — every event op and fault kind survives gob and
// resolves back into scheduled Events.
func TestSpecEventsGobRoundTrip(t *testing.T) {
	sp := Spec{
		Name: "faulted", Network: "foldedclos", Seed: 4, Duration: 10 * eventsim.Millisecond,
		ClosK: 8, ClosF: 3,
		Sources: []SourceSpec{{Type: "shuffle", FlowBytes: 25_000, Stagger: 10 * eventsim.Microsecond}},
		Events: []EventSpec{
			{At: 100 * eventsim.Microsecond, Target: TargetSpec{Kind: "link", Switch: 2, Port: 1}},
			{At: 200 * eventsim.Microsecond, Op: "inject",
				Target: TargetSpec{Kind: "link", Tier: 2, Switch: 0, Port: 3},
				Fault:  FaultSpec{Kind: "lossy", Rate: 0.25}},
			{At: 300 * eventsim.Microsecond, Op: "inject",
				Target: TargetSpec{Kind: "link", Switch: 5, Port: 0},
				Fault:  FaultSpec{Kind: "degraded", RateFraction: 0.5}},
			{At: 400 * eventsim.Microsecond, Op: "inject",
				Target: TargetSpec{Kind: "link", Switch: 7, Port: 2},
				Fault:  FaultSpec{Kind: "flapping", Up: eventsim.Millisecond, Down: eventsim.Millisecond}},
			{At: 500 * eventsim.Microsecond, Op: "inject",
				Target: TargetSpec{Kind: "switch", Tier: 2, ID: 1}},
			{At: 600 * eventsim.Microsecond, Op: "inject", Target: TargetSpec{Kind: "tor", ID: 9}},
			{At: 700 * eventsim.Microsecond, Op: "fail-random-links", Fraction: 0.05},
			{At: 2 * eventsim.Millisecond, Op: "recover", Target: TargetSpec{Kind: "link", Switch: 2, Port: 1}},
		},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(sp); err != nil {
		t.Fatal(err)
	}
	var got Spec
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sp) {
		t.Fatalf("gob round trip changed the spec:\ngot  %+v\nwant %+v", got, sp)
	}
	sc, err := got.Scenario()
	if err != nil {
		t.Fatalf("round-tripped spec does not resolve: %v", err)
	}
	if len(sc.Events) != len(sp.Events) {
		t.Fatalf("resolved %d events, want %d", len(sc.Events), len(sp.Events))
	}
	for i, ev := range sc.Events {
		if ev.At != sp.Events[i].At {
			t.Fatalf("event %d fires at %v, want %v", i, ev.At, sp.Events[i].At)
		}
	}
}

// Bad event specs are rejected at Spec.Scenario() with the event index
// in the message — before any worker spends simulation time on them.
func TestSpecEventErrors(t *testing.T) {
	base := Spec{
		Name: "ev", Network: "opera", Duration: eventsim.Millisecond,
		Sources: []SourceSpec{{Type: "shuffle", FlowBytes: 1000}},
	}
	for name, ev := range map[string]EventSpec{
		"unknown-op":      {Op: "melt"},
		"unknown-target":  {Target: TargetSpec{Kind: "cable"}},
		"unknown-fault":   {Target: TargetSpec{Kind: "link"}, Fault: FaultSpec{Kind: "cosmic"}},
		"bad-lossy-rate":  {Target: TargetSpec{Kind: "link"}, Fault: FaultSpec{Kind: "lossy", Rate: 2}},
		"bad-degraded":    {Target: TargetSpec{Kind: "link"}, Fault: FaultSpec{Kind: "degraded", RateFraction: 1}},
		"bad-flap":        {Target: TargetSpec{Kind: "link"}, Fault: FaultSpec{Kind: "flapping", Up: -1}},
		"recover-no-kind": {Op: "recover", Target: TargetSpec{Kind: "socket"}},
	} {
		sp := base
		sp.Events = []EventSpec{ev}
		_, err := sp.Scenario()
		if err == nil {
			t.Errorf("%s: Scenario() succeeded, want error", name)
			continue
		}
		if !strings.Contains(err.Error(), "event 0") {
			t.Errorf("%s: error %v does not locate the event", name, err)
		}
	}
}

// TestSpecErrorsNameTheProblem spot-checks that diagnostics carry enough
// context to find the bad cell in a thousand-spec grid.
func TestSpecErrorsNameTheProblem(t *testing.T) {
	sp := Spec{Name: "grid-cell-7", Network: "opera", Duration: eventsim.Millisecond,
		Sources: []SourceSpec{{Type: "poisson", Dist: "zipf", Load: 0.1, Window: eventsim.Millisecond}}}
	_, err := sp.Scenario()
	if err == nil || !strings.Contains(err.Error(), "grid-cell-7") || !strings.Contains(err.Error(), "zipf") {
		t.Fatalf("error %v does not name the spec and the bad distribution", err)
	}
}
